package esplang_test

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"strings"
	"testing"

	esplang "esplang"
	"esplang/internal/gobackend"
	"esplang/internal/ir"
	"esplang/internal/obs"
)

// Differential tests for the fourth engine tier: the AOT-compiled native
// engine runs each sample program in a generated subprocess and must be
// observationally indistinguishable from the in-process baseline — same
// run result, same fault (down to file:line), same cycle meter, same
// statistics, same output snapshots, and the same event-trace digest.
// Everything skips cleanly when the host has no Go toolchain.

func requireToolchain(t *testing.T) {
	t.Helper()
	if _, err := gobackend.Toolchain(); err != nil {
		t.Skipf("compiled engine unavailable: %v", err)
	}
}

func traceSum(evs []obs.Event) string {
	h := fnv.New64a()
	for _, e := range evs {
		fmt.Fprintln(h, e)
	}
	return fmt.Sprintf("%d events, fnv %x", len(evs), h.Sum64())
}

// compiledRequest mirrors feedInputs as a wire request: the same input
// scripts for the same channels, serialized as value trees the generated
// binary rebuilds children-first.
func compiledRequest(t *testing.T, prog *esplang.Program, trace bool) *gobackend.Request {
	t.Helper()
	req := &gobackend.Request{
		MaxLive: 64,
		Trace:   trace,
		Writers: map[string][]gobackend.Item{},
		Readers: map[string]int{},
	}
	for _, ch := range prog.IR.Channels {
		switch ch.Ext {
		case ir.ExtReader:
			req.Readers[ch.Name] = 0
		case ir.ExtWriter:
			switch ch.Name {
			case "inC": // add5.esp / fifo.esp: interface feed, Put($v)
				var items []gobackend.Item
				for _, v := range []int64{1, 7, 42, -3, 100, 5} {
					items = append(items, gobackend.Item{Case: 0, Val: gobackend.Scalar(v)})
				}
				req.Writers[ch.Name] = items
			case "userReqC": // appendixb.esp: Send / Update union cases
				userT := ch.Elem
				sendT, updateT := userT.Fields[0].Type, userT.Fields[1].Type
				update := func(vaddr, paddr int64) gobackend.Item {
					return gobackend.Item{Case: 1, Val: gobackend.Union(userT.ID(), 1,
						gobackend.Record(updateT.ID(), gobackend.Scalar(vaddr), gobackend.Scalar(paddr)))}
				}
				send := func(dest, vaddr, size int64) gobackend.Item {
					return gobackend.Item{Case: 0, Val: gobackend.Union(userT.ID(), 0,
						gobackend.Record(sendT.ID(), gobackend.Scalar(dest), gobackend.Scalar(vaddr), gobackend.Scalar(size)))}
				}
				req.Writers[ch.Name] = []gobackend.Item{
					update(3, 777), update(5, 1234),
					send(9, 3, 4), send(2, 5, 2), send(7, 12, 3),
				}
			default:
				t.Fatalf("no input script for external writer %q", ch.Name)
			}
		}
	}
	return req
}

// compiledBaselineRun runs path in-process under the baseline engine with
// the canonical inputs, rendering the full observable surface the
// subprocess protocol carries. With trace set an event log is attached
// and its digest included; without it the machine is quiet — the
// configuration under which the generated dispatchers take the fused
// fast path on the compiled side.
func compiledBaselineRun(t *testing.T, path string, trace bool) string {
	t.Helper()
	prog, err := esplang.CompileFile(path, esplang.CompileOptions{VerifyIR: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := prog.Machine(esplang.MachineConfig{MaxLiveObjects: 64, Engine: esplang.EngineBaseline})
	var log *obs.EventLog
	if trace {
		log = obs.NewEventLog()
		m.SetTracer(log)
	}
	readers := feedInputs(t, prog, m)
	res := m.Run()

	var b bytes.Buffer
	fmt.Fprintf(&b, "result: %v\n", res)
	if f := m.Fault(); f != nil {
		fmt.Fprintf(&b, "fault: %v\n", f)
	} else {
		b.WriteString("fault: none\n")
	}
	st := m.Stats
	st.DirectXfers = 0
	fmt.Fprintf(&b, "cycles: %d\nstats: %+v\n", m.Cycles, st)
	for _, ch := range prog.IR.Channels {
		r, ok := readers[ch.Name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%s:", ch.Name)
		for _, v := range r.Values {
			b.WriteString(" ")
			b.WriteString(renderSnap(v))
		}
		b.WriteString("\n")
	}
	if trace {
		fmt.Fprintf(&b, "trace: %s\n", traceSum(log.Events()))
	}
	return b.String()
}

// compiledEngineRun builds path with the Go backend and runs the
// generated binary with the same inputs, rendering identically.
func compiledEngineRun(t *testing.T, path string, trace bool) string {
	t.Helper()
	prog, err := esplang.CompileFile(path, esplang.CompileOptions{VerifyIR: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	runner, err := gobackend.BuildProgram(prog, gobackend.BuildOptions{
		Name: prog.Name, File: prog.File, VerifyIR: true,
	})
	if err != nil {
		t.Fatalf("build generated package: %v", err)
	}
	res, err := runner.Run(compiledRequest(t, prog, trace))
	if err != nil {
		t.Fatalf("run generated binary: %v", err)
	}

	var b bytes.Buffer
	fmt.Fprintf(&b, "result: %v\n", res.Result)
	if res.Fault != nil {
		fmt.Fprintf(&b, "fault: %v\n", res.Fault)
	} else {
		b.WriteString("fault: none\n")
	}
	st := res.Stats
	st.DirectXfers = 0
	fmt.Fprintf(&b, "cycles: %d\nstats: %+v\n", res.Cycles, st)
	for _, ch := range prog.IR.Channels {
		vals, ok := res.Outputs[ch.Name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%s:", ch.Name)
		for _, v := range vals {
			b.WriteString(" ")
			b.WriteString(renderSnap(v))
		}
		b.WriteString("\n")
	}
	if trace {
		fmt.Fprintf(&b, "trace: %s\n", res.Trace)
	}
	return b.String()
}

// TestEngineDifferentialCompiled: every sample program behaves
// identically under the AOT-compiled engine and the baseline — the
// fourth column of the engine matrix. Each program runs twice: traced
// (the child attaches an event log, so the generated dispatchers use
// the general per-process functions and the trace digests must match)
// and quiet (no observers, so statically-paired processes run through
// the fused fast path with inline rendezvous and deferred context
// switches — cycles and stats must still be bit-identical).
func TestEngineDifferentialCompiled(t *testing.T) {
	requireToolchain(t)
	files, err := filepath.Glob("testdata/*.esp")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	for _, f := range files {
		for _, mode := range []struct {
			name  string
			trace bool
		}{{"traced", true}, {"quiet", false}} {
			t.Run(filepath.Base(f)+"/"+mode.name, func(t *testing.T) {
				base := compiledBaselineRun(t, f, mode.trace)
				got := compiledEngineRun(t, f, mode.trace)
				if got != base {
					t.Errorf("compiled engine diverges from baseline:\n--- baseline ---\n%s--- compiled ---\n%s", base, got)
				}
			})
		}
	}
}

// TestEngineDifferentialCompiledFaults: the generated code materializes
// the exact baseline fault for every seeded fault program, including the
// source file:line carried across the subprocess boundary.
func TestEngineDifferentialCompiledFaults(t *testing.T) {
	requireToolchain(t)
	for _, tc := range faultPrograms {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := esplang.Compile(tc.src, esplang.CompileOptions{File: tc.name + ".esp"})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			m := prog.Machine(esplang.MachineConfig{Engine: esplang.EngineBaseline})
			if err := m.BindReader("outC", &esplang.CollectReader{}); err != nil {
				t.Fatal(err)
			}
			m.Run()
			f := m.Fault()
			if f == nil {
				t.Fatal("baseline: expected a fault")
			}
			st := m.Stats
			st.DirectXfers = 0
			base := fmt.Sprintf("fault: %v\ncycles: %d\nstats: %+v\n", f, m.Cycles, st)

			runner, err := gobackend.BuildProgram(prog, gobackend.BuildOptions{File: tc.name + ".esp"})
			if err != nil {
				t.Fatalf("build generated package: %v", err)
			}
			res, err := runner.Run(&gobackend.Request{Readers: map[string]int{"outC": 0}})
			if err != nil {
				t.Fatalf("run generated binary: %v", err)
			}
			if res.Fault == nil {
				t.Fatal("compiled: expected a fault")
			}
			cst := res.Stats
			cst.DirectXfers = 0
			got := fmt.Sprintf("fault: %v\ncycles: %d\nstats: %+v\n", res.Fault, res.Cycles, cst)
			if got != base {
				t.Errorf("compiled fault diverges:\n--- baseline ---\n%s--- compiled ---\n%s", base, got)
			}
			if !strings.Contains(got, tc.name+".esp:") {
				t.Errorf("compiled fault lost its source location:\n%s", got)
			}
		})
	}
}
