// Command benchrec records the PR's headline benchmarks — the Figure 5
// firmware workloads and the §5.3 verification runs — under the four
// execution engine tiers and writes the numbers (ns/op, allocs/op,
// verifier states and states/sec, and the cross-engine speedups) to a
// JSON file, so performance claims are checked in, reproducible, and
// easy to diff across commits:
//
// It also measures the flight recorder's hot-path overhead (the
// VMThroughput workload with and without a recorder attached).
//
// The compiled tier runs the VMThroughput workload only: the program is
// AOT-compiled to a native Go binary (cached) and iterated inside one
// subprocess via the wire protocol's Repeat field, so the reported
// ns/op amortizes child startup to nothing and measures the generated
// code's steady state. It needs a host Go toolchain and is skipped with
// a note when none is on PATH.
//
// The verification workloads also run under ample-set partial-order
// reduction ("<workload>/por"); the "<workload>/por_state_reduction"
// speedup entry records the full-search/reduced-search state ratio.
//
//	go run ./cmd/benchrec -out BENCH_PR10.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"

	esplang "esplang"
	"esplang/internal/gobackend"
	"esplang/internal/nic"
	"esplang/internal/obs"
	"esplang/internal/vmmc"
)

// Bench is one recorded benchmark run.
type Bench struct {
	Name        string             `json:"name"`
	Engine      string             `json:"engine"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file layout of BENCH_PR10.json. The speedup maps compare
// the engines inside this build (fused over baseline, and process-fused
// over fused — the PR6 headline); SeedBenches and the vs-seed maps
// (present when scripts/bench.sh was given a -seed ref) compare this
// build against the repo's own `go test -bench` numbers at the pre-PR
// commit, run on the same machine.
type Report struct {
	GOOS    string  `json:"goos"`
	GOARCH  string  `json:"goarch"`
	NumCPU  int     `json:"num_cpu"`
	Benches []Bench `json:"benchmarks"`
	// SpeedupsOver is the generic cross-tier map: one
	// "<workload>/<tier>_over_<tier>" key per adjacent-tier (and
	// headline compiled-over-baseline) ratio. The two legacy maps below
	// carry the same fused/procfused numbers under their PR6-era keys so
	// existing tooling keeps parsing.
	SpeedupsOver map[string]float64 `json:"speedups"`
	Speedups     map[string]float64 `json:"speedups_fused_over_baseline"`
	SpeedupsPF   map[string]float64 `json:"speedups_procfused_over_fused"`
	// RecorderOverhead is the flight recorder's hot-path cost per engine:
	// VMThroughput/recorder over plain VMThroughput, as a percentage —
	// the median of interleaved per-round ratios (see recordPair), so it
	// is drift-corrected and may differ slightly from the ratio of the
	// two best-of-N ns_per_op entries above.
	RecorderOverhead map[string]float64 `json:"recorder_overhead_pct,omitempty"`
	SeedBenches      []Bench            `json:"seed_benchmarks,omitempty"`
	SpeedupsVsSeed   map[string]float64 `json:"speedups_fused_over_seed,omitempty"`
	SpeedupsPFSeed   map[string]float64 `json:"speedups_procfused_over_seed,omitempty"`
}

// seedNames maps the pre-PR repo benchmark names (as printed by `go test
// -bench` at the seed commit) to this tool's workload names.
var seedNames = map[string]string{
	"BenchmarkFig5aLatency/vmmcESP/64B":     "Fig5aLatency/64B",
	"BenchmarkFig5aLatency/vmmcESP/4096B":   "Fig5aLatency/4096B",
	"BenchmarkFig5bBandwidth/vmmcESP/1024B": "Fig5bBandwidth/1024B",
	"BenchmarkVerifyMemSafety":              "VerifyMemSafety",
	"BenchmarkVerifyFirmwareModel":          "VerifyFirmwareModel",
}

// parseSeedBench reads `go test -bench` output from the seed commit and
// returns the runs it recognizes, renamed to this tool's workload names.
func parseSeedBench(path string) ([]Bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Bench
	for _, line := range strings.Split(string(data), "\n") {
		f := strings.Fields(line)
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || f[3] != "ns/op" {
			continue
		}
		name, ok := seedNames[strings.TrimRight(f[0], "-0123456789")]
		if !ok {
			continue
		}
		b := Bench{Name: name, Engine: "seed", Metrics: map[string]float64{}}
		fmt.Sscanf(f[1], "%d", &b.Iterations)
		fmt.Sscanf(f[2], "%f", &b.NsPerOp)
		for i := 4; i+1 < len(f); i += 2 {
			var v float64
			if _, err := fmt.Sscanf(f[i], "%f", &v); err == nil {
				b.Metrics[f[i+1]] = v
			}
		}
		if states, ok := b.Metrics["states"]; ok && b.NsPerOp > 0 {
			b.Metrics["states/sec"] = states / (b.NsPerOp / 1e9)
		}
		out = append(out, b)
	}
	return out, nil
}

// workload is one benchmark body, parameterized by engine (vmmc.Engine
// is set by the caller before the run; vo carries it to the verifier).
type workload struct {
	name string
	run  func(b *testing.B, engine esplang.Engine, vo esplang.VerifyOptions)
}

// vmSrc is the exec-bound workload: a rendezvous loop with arithmetic
// between communications, so the instruction-dispatch cost the fused
// engine removes dominates instead of the NIC simulation.
const vmSrc = `
channel c: int
channel done: int external reader
process producer {
    $n = 0;
    $acc = 1;
    while (n < 400) {
        acc = (acc * 3) % 9973;
        acc = acc + n;
        out( c, acc);
        n = n + 1;
    }
}
process consumer {
    $n = 0;
    $sum = 0;
    while (n < 400) {
        in( c, $v);
        sum = sum + v;
        n = n + 1;
    }
    out( done, sum);
}
`

var vmProg *esplang.Program

func vmProgram(b *testing.B) *esplang.Program {
	if vmProg == nil {
		p, err := esplang.Compile(vmSrc, esplang.CompileOptions{})
		if err != nil {
			b.Fatal(err)
		}
		vmProg = p
	}
	return vmProg
}

var workloads = []workload{
	{"VMThroughput", func(b *testing.B, engine esplang.Engine, _ esplang.VerifyOptions) {
		prog := vmProgram(b)
		for i := 0; i < b.N; i++ {
			m := prog.Machine(esplang.MachineConfig{Engine: engine})
			if err := m.BindReader("done", &esplang.CollectReader{}); err != nil {
				b.Fatal(err)
			}
			m.Run()
			if f := m.Fault(); f != nil {
				b.Fatal(f)
			}
		}
	}},
	{"VMThroughput/recorder", func(b *testing.B, engine esplang.Engine, _ esplang.VerifyOptions) {
		// The same workload with a flight recorder attached; the gap to
		// plain VMThroughput is the recorder's hot-path overhead. The
		// recorder is reused across runs (the production pattern — one
		// long-lived ring per deployment) so the measurement is the
		// recording cost, not ring construction.
		prog := vmProgram(b)
		rec := obs.NewFlightRecorder(0)
		for i := 0; i < b.N; i++ {
			m := prog.Machine(esplang.MachineConfig{Engine: engine})
			m.SetRecorder(rec)
			if err := m.BindReader("done", &esplang.CollectReader{}); err != nil {
				b.Fatal(err)
			}
			m.Run()
			if f := m.Fault(); f != nil {
				b.Fatal(f)
			}
		}
	}},
	{"Fig5aLatency/64B", func(b *testing.B, _ esplang.Engine, _ esplang.VerifyOptions) {
		cfg := nic.DefaultConfig()
		var last float64
		for i := 0; i < b.N; i++ {
			v, err := vmmc.PingPong(vmmc.ESP, cfg, 64, 40)
			if err != nil {
				b.Fatal(err)
			}
			last = v
		}
		b.ReportMetric(last/1000, "us-latency")
	}},
	{"Fig5aLatency/4096B", func(b *testing.B, _ esplang.Engine, _ esplang.VerifyOptions) {
		cfg := nic.DefaultConfig()
		var last float64
		for i := 0; i < b.N; i++ {
			v, err := vmmc.PingPong(vmmc.ESP, cfg, 4096, 40)
			if err != nil {
				b.Fatal(err)
			}
			last = v
		}
		b.ReportMetric(last/1000, "us-latency")
	}},
	{"Fig5bBandwidth/1024B", func(b *testing.B, _ esplang.Engine, _ esplang.VerifyOptions) {
		cfg := nic.DefaultConfig()
		var last float64
		for i := 0; i < b.N; i++ {
			v, err := vmmc.OneWay(vmmc.ESP, cfg, 1024, 30)
			if err != nil {
				b.Fatal(err)
			}
			last = v
		}
		b.ReportMetric(last, "MB/s")
	}},
	{"Fig5cBidirectional/1024B", func(b *testing.B, _ esplang.Engine, _ esplang.VerifyOptions) {
		cfg := nic.DefaultConfig()
		var last float64
		for i := 0; i < b.N; i++ {
			v, err := vmmc.Bidirectional(vmmc.ESP, cfg, 1024, 15)
			if err != nil {
				b.Fatal(err)
			}
			last = v
		}
		b.ReportMetric(last, "MB/s-total")
	}},
	{"VerifyMemSafety", func(b *testing.B, _ esplang.Engine, vo esplang.VerifyOptions) {
		var states int
		for i := 0; i < b.N; i++ {
			res, err := vmmc.VerifyMemSafety(vmmc.BugNone, vo)
			if err != nil {
				b.Fatal(err)
			}
			if res.Violation != nil {
				b.Fatalf("violation: %v", res.Violation)
			}
			states = res.States
		}
		b.ReportMetric(float64(states), "states")
	}},
	{"VerifyFirmwareModel", func(b *testing.B, _ esplang.Engine, vo esplang.VerifyOptions) {
		cfg := nic.DefaultConfig()
		var states int
		for i := 0; i < b.N; i++ {
			res, err := vmmc.VerifyFirmware(cfg, 2, vo)
			if err != nil {
				b.Fatal(err)
			}
			if res.Violation != nil {
				b.Fatalf("violation: %v", res.Violation)
			}
			states = res.States
		}
		b.ReportMetric(float64(states), "states")
	}},
	{"VerifyMemSafety/por", func(b *testing.B, _ esplang.Engine, vo esplang.VerifyOptions) {
		vo.Reduction = esplang.AmpleSets
		var states int
		for i := 0; i < b.N; i++ {
			res, err := vmmc.VerifyMemSafety(vmmc.BugNone, vo)
			if err != nil {
				b.Fatal(err)
			}
			if res.Violation != nil {
				b.Fatalf("violation: %v", res.Violation)
			}
			states = res.States
		}
		b.ReportMetric(float64(states), "states")
	}},
	{"VerifyFirmwareModel/por", func(b *testing.B, _ esplang.Engine, vo esplang.VerifyOptions) {
		// The PR10 headline: the same firmware verification under
		// ample-set partial-order reduction. The states metric is the one
		// that matters — the "/por_state_reduction" speedup entry records
		// how many fewer states the reduced search visits for the same
		// verdict.
		vo.Reduction = esplang.AmpleSets
		cfg := nic.DefaultConfig()
		var states int
		for i := 0; i < b.N; i++ {
			res, err := vmmc.VerifyFirmware(cfg, 2, vo)
			if err != nil {
				b.Fatal(err)
			}
			if res.Violation != nil {
				b.Fatalf("violation: %v", res.Violation)
			}
			states = res.States
		}
		b.ReportMetric(float64(states), "states")
	}},
}

func findWorkload(name string) workload {
	for _, w := range workloads {
		if w.name == name {
			return w
		}
	}
	return workload{}
}

func runOnce(wl workload, engine esplang.Engine, vo esplang.VerifyOptions) testing.BenchmarkResult {
	runtime.GC()
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		wl.run(b, engine, vo)
	})
}

// record runs one workload under one engine `repeat` times and keeps the
// fastest run: best-of-N is the standard defense against scheduler and
// frequency noise on shared machines, and both engines get the same
// treatment so the ratio stays fair.
func record(name string, engine esplang.Engine, repeat int) Bench {
	vmmc.Engine = engine
	vo := esplang.VerifyOptions{Engine: engine}
	wl := findWorkload(name)
	var r testing.BenchmarkResult
	for i := 0; i < repeat; i++ {
		got := runOnce(wl, engine, vo)
		if i == 0 || got.NsPerOp() < r.NsPerOp() {
			r = got
		}
	}
	return toBench(name, engine, r)
}

// recordPair measures two workloads with their repeats interleaved
// (off, on, off, on, ...) instead of all-off-then-all-on. For the
// recorder-overhead pair the on/off *ratio* is the reported number, and
// machine-speed drift — routine on shared runners — would bias a
// sequential measurement. The returned ratio is the median of the
// per-round on/off ratios: each round's two runs are seconds apart, so
// drift cancels within a round, and the median discards rounds hit by
// a scheduler hiccup. (Dividing two independent best-of-N values does
// neither — the bests can come from different drift windows.) The
// returned Benches are still best-of-N like every other workload.
func recordPair(offName, onName string, engine esplang.Engine, repeat int) (Bench, Bench, float64) {
	vmmc.Engine = engine
	vo := esplang.VerifyOptions{Engine: engine}
	offW, onW := findWorkload(offName), findWorkload(onName)
	var offR, onR testing.BenchmarkResult
	ratios := make([]float64, 0, repeat)
	for i := 0; i < repeat; i++ {
		offGot := runOnce(offW, engine, vo)
		onGot := runOnce(onW, engine, vo)
		ratios = append(ratios, float64(onGot.NsPerOp())/float64(offGot.NsPerOp()))
		if i == 0 || offGot.NsPerOp() < offR.NsPerOp() {
			offR = offGot
		}
		if i == 0 || onGot.NsPerOp() < onR.NsPerOp() {
			onR = onGot
		}
	}
	sort.Float64s(ratios)
	return toBench(offName, engine, offR), toBench(onName, engine, onR), ratios[len(ratios)/2]
}

// recordCompiledVM measures the VMThroughput workload on the AOT tier:
// one generated binary (warm build cache after the first call), iterated
// inside the subprocess via the protocol's Repeat field. The child times
// its own repeat loop, so process startup, request parsing, and the
// child-side recompile are excluded — the number is the generated code's
// steady-state ns per machine run, directly comparable to the in-process
// tiers' ns/op. Iteration count is calibrated to ~300ms of child wall
// time; best of `repeat` runs, like every other workload.
func recordCompiledVM(repeat int) (Bench, error) {
	runner, err := gobackend.Build(vmSrc, gobackend.BuildOptions{})
	if err != nil {
		return Bench{}, err
	}
	run := func(n int) (*gobackend.Result, error) {
		res, err := runner.Run(&gobackend.Request{
			Repeat:  n,
			Readers: map[string]int{"done": 0},
		})
		if err != nil {
			return nil, err
		}
		if res.Fault != nil {
			return nil, fmt.Errorf("workload faulted: %v", res.Fault)
		}
		return res, nil
	}
	const targetNS = 300e6
	n := 50
	res, err := run(n)
	if err != nil {
		return Bench{}, err
	}
	for res.NS < targetNS/2 && n < 1_000_000 {
		n = int(float64(n) * targetNS / float64(res.NS+1))
		if res, err = run(n); err != nil {
			return Bench{}, err
		}
	}
	best := float64(res.NS) / float64(n)
	for i := 1; i < repeat; i++ {
		if res, err = run(n); err != nil {
			return Bench{}, err
		}
		if got := float64(res.NS) / float64(n); got < best {
			best = got
		}
	}
	return Bench{
		Name:       "VMThroughput",
		Engine:     esplang.EngineCompiled.String(),
		Iterations: n,
		NsPerOp:    best,
		Metrics:    map[string]float64{},
	}, nil
}

func toBench(name string, engine esplang.Engine, r testing.BenchmarkResult) Bench {
	rec := Bench{
		Name:        name,
		Engine:      engine.String(),
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Metrics:     map[string]float64{},
	}
	for k, v := range r.Extra {
		if k == "allocs/op" || k == "B/op" {
			continue
		}
		rec.Metrics[k] = v
	}
	if states, ok := rec.Metrics["states"]; ok && rec.NsPerOp > 0 {
		rec.Metrics["states/sec"] = states / (rec.NsPerOp / 1e9)
	}
	return rec
}

func main() {
	out := flag.String("out", "BENCH_PR10.json", "output JSON path")
	repeat := flag.Int("repeat", 5, "runs per benchmark; the fastest is recorded")
	seedBench := flag.String("seed-bench", "", "optional `go test -bench` output from the pre-PR commit to compare against")
	engineList := flag.String("engines", "baseline,fused,procfused,compiled",
		"comma-separated engine tiers to record (the fusion axis; compiled records VMThroughput only and needs a host Go toolchain)")
	only := flag.String("workloads", "",
		"comma-separated workload name prefixes to record (default all)")
	flag.Parse()

	wanted := func(name string) bool {
		if *only == "" {
			return true
		}
		for _, p := range strings.Split(*only, ",") {
			if p = strings.TrimSpace(p); p != "" && strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}

	var engines []esplang.Engine
	for _, name := range strings.Split(*engineList, ",") {
		switch strings.TrimSpace(name) {
		case "baseline":
			engines = append(engines, esplang.EngineBaseline)
		case "fused":
			engines = append(engines, esplang.EngineFused)
		case "procfused":
			engines = append(engines, esplang.EngineProcFused)
		case "compiled":
			if _, err := gobackend.Toolchain(); err != nil {
				fmt.Fprintf(os.Stderr, "benchrec: skipping the compiled tier: %v\n", err)
				continue
			}
			engines = append(engines, esplang.EngineCompiled)
		case "":
		default:
			fmt.Fprintf(os.Stderr, "benchrec: unknown engine %q (want baseline, fused, procfused, compiled)\n", name)
			os.Exit(1)
		}
	}

	rep := Report{
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		SpeedupsOver: map[string]float64{},
		Speedups:     map[string]float64{},
		SpeedupsPF:   map[string]float64{},
	}
	byKey := map[string]Bench{}
	recRatio := map[string]float64{}
	report := func(rec Bench) {
		rep.Benches = append(rep.Benches, rec)
		byKey[rec.Name+"/"+rec.Engine] = rec
		fmt.Printf("%-28s %-9s %12.0f ns/op %8d allocs/op", rec.Name, rec.Engine, rec.NsPerOp, rec.AllocsPerOp)
		for k, v := range rec.Metrics {
			fmt.Printf("  %s=%.1f", k, v)
		}
		fmt.Println()
	}
	for _, wl := range workloads {
		if !wanted(wl.name) {
			continue
		}
		switch wl.name {
		case "VMThroughput":
			// The recorder-overhead pair is measured interleaved (see
			// recordPair) because its on/off ratio is the headline number.
			for _, engine := range engines {
				if engine == esplang.EngineCompiled {
					rec, err := recordCompiledVM(*repeat)
					if err != nil {
						fmt.Fprintf(os.Stderr, "benchrec: compiled tier: %v\n", err)
						os.Exit(1)
					}
					report(rec)
					continue
				}
				off, on, ratio := recordPair("VMThroughput", "VMThroughput/recorder", engine, *repeat)
				report(off)
				report(on)
				recRatio[engine.String()] = ratio
			}
		case "VMThroughput/recorder":
			// Recorded pairwise with VMThroughput above.
		default:
			for _, engine := range engines {
				if engine == esplang.EngineCompiled {
					continue // the compiled tier records VMThroughput only
				}
				report(record(wl.name, engine, *repeat))
			}
		}
	}
	for _, wl := range workloads {
		base, fused := byKey[wl.name+"/baseline"], byKey[wl.name+"/fused"]
		pfused, compiled := byKey[wl.name+"/procfused"], byKey[wl.name+"/compiled"]
		if base.NsPerOp > 0 && fused.NsPerOp > 0 {
			rep.Speedups[wl.name] = base.NsPerOp / fused.NsPerOp
			rep.SpeedupsOver[wl.name+"/fused_over_baseline"] = base.NsPerOp / fused.NsPerOp
		}
		if bs, fs := base.Metrics["states/sec"], fused.Metrics["states/sec"]; bs > 0 {
			rep.Speedups[wl.name+"/states-per-sec"] = fs / bs
		}
		if fused.NsPerOp > 0 && pfused.NsPerOp > 0 {
			rep.SpeedupsPF[wl.name] = fused.NsPerOp / pfused.NsPerOp
			rep.SpeedupsOver[wl.name+"/procfused_over_fused"] = fused.NsPerOp / pfused.NsPerOp
		}
		if fs, ps := fused.Metrics["states/sec"], pfused.Metrics["states/sec"]; fs > 0 {
			rep.SpeedupsPF[wl.name+"/states-per-sec"] = ps / fs
		}
		if compiled.NsPerOp > 0 {
			if base.NsPerOp > 0 {
				rep.SpeedupsOver[wl.name+"/compiled_over_baseline"] = base.NsPerOp / compiled.NsPerOp
			}
			if pfused.NsPerOp > 0 {
				rep.SpeedupsOver[wl.name+"/compiled_over_procfused"] = pfused.NsPerOp / compiled.NsPerOp
			}
		}
	}
	// POR state reduction: full-search states over ample-set states for
	// each verification workload. The state counts are engine-independent
	// (the reduction is a property of the search, not the execution
	// tier), so the first tier with both runs recorded is reported.
	for _, wl := range workloads {
		porName := wl.name + "/por"
		if findWorkload(porName).run == nil {
			continue
		}
		for _, engine := range engines {
			e := engine.String()
			full, por := byKey[wl.name+"/"+e], byKey[porName+"/"+e]
			if fs, ps := full.Metrics["states"], por.Metrics["states"]; fs > 0 && ps > 0 {
				rep.SpeedupsOver[wl.name+"/por_state_reduction"] = fs / ps
				break
			}
		}
	}
	rep.RecorderOverhead = map[string]float64{}
	for _, engine := range engines {
		e := engine.String()
		if ratio, ok := recRatio[e]; ok {
			rep.RecorderOverhead[e] = (ratio - 1) * 100
			fmt.Printf("recorder-overhead %-10s %+.1f%%\n", e, rep.RecorderOverhead[e])
		}
	}
	if *seedBench != "" {
		seeds, err := parseSeedBench(*seedBench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrec: seed bench: %v\n", err)
			os.Exit(1)
		}
		rep.SeedBenches = seeds
		rep.SpeedupsVsSeed = map[string]float64{}
		rep.SpeedupsPFSeed = map[string]float64{}
		for _, s := range seeds {
			fused, ok := byKey[s.Name+"/fused"]
			if ok && s.NsPerOp > 0 && fused.NsPerOp > 0 {
				rep.SpeedupsVsSeed[s.Name] = s.NsPerOp / fused.NsPerOp
				if ss, fs := s.Metrics["states/sec"], fused.Metrics["states/sec"]; ss > 0 {
					rep.SpeedupsVsSeed[s.Name+"/states-per-sec"] = fs / ss
				}
			}
			pfused, ok := byKey[s.Name+"/procfused"]
			if ok && s.NsPerOp > 0 && pfused.NsPerOp > 0 {
				rep.SpeedupsPFSeed[s.Name] = s.NsPerOp / pfused.NsPerOp
				if ss, ps := s.Metrics["states/sec"], pfused.Metrics["states/sec"]; ss > 0 {
					rep.SpeedupsPFSeed[s.Name+"/states-per-sec"] = ps / ss
				}
			}
		}
		for k, v := range rep.SpeedupsVsSeed {
			fmt.Printf("speedup-vs-seed %-32s %.2fx\n", k, v)
		}
		for k, v := range rep.SpeedupsPFSeed {
			fmt.Printf("speedup-procfused-vs-seed %-32s %.2fx\n", k, v)
		}
	}
	for k, v := range rep.Speedups {
		fmt.Printf("speedup %-40s %.2fx\n", k, v)
	}
	for k, v := range rep.SpeedupsPF {
		fmt.Printf("speedup-procfused %-40s %.2fx\n", k, v)
	}
	{
		var keys []string
		for k := range rep.SpeedupsOver {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("speedup-tier %-44s %.2fx\n", k, rep.SpeedupsOver[k])
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrec: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(rep)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrec: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
