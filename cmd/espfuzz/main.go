// Command espfuzz fuzzes the whole ESP toolchain differentially: it
// generates well-typed programs (and mutates existing corpus programs),
// runs every one through the three VM engines × optimizer
// configurations, the model checker, espvet, and the C/Promela
// backends, and reports any divergence or crash as a toolchain bug.
//
// Failures are auto-minimized by delta debugging over the AST and
// written as self-contained reproducer programs. Everything is
// deterministic under -seed, so a CI failure replays locally:
//
//	espfuzz -seed 1 -n 1000 -corpus testdata -mutants 10
//
// Exit status: 0 when every program behaved consistently, 1 when the
// oracle found bugs (reproducers written to -out), 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"esplang/internal/fuzz"
	"esplang/internal/gobackend"
	"esplang/internal/obs"
)

func main() {
	var (
		seed        = flag.Int64("seed", 1, "base seed; program i uses seed+i")
		n           = flag.Int("n", 1000, "number of generated programs")
		mutants     = flag.Int("mutants", 0, "mutants per corpus program")
		corpus      = flag.String("corpus", "", "directory of .esp programs to mutate")
		out         = flag.String("out", "espfuzz-found", "directory for minimized reproducers")
		minBudget   = flag.Int("minimize", 300, "max candidate evaluations per minimization")
		mcStates    = flag.Int("mc-states", 20000, "model-checker state bound per program")
		skipMC      = flag.Bool("no-mc", false, "skip the model-checker oracle stages")
		compiledOn  = flag.Bool("compiled", false, "add the AOT-compiled engine oracle stage: build every program into a generated Go binary and compare it against the baseline (needs a host Go toolchain; by far the slowest stage)")
		verbose     = flag.Bool("v", false, "print every program's outcome")
		maxFailures = flag.Int("max-failures", 20, "stop after this many distinct failures")
		progress    = flag.Bool("progress", false, "print a periodic progress line to stderr (programs/s, compile rate, divergences)")
		progressI   = flag.Duration("progress-interval", 5*time.Second, "interval between -progress lines")
		telemetry   = flag.String("telemetry", "", "serve live telemetry on this address (e.g. 127.0.0.1:9464): /metrics, /statusz, /progress")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: espfuzz [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	opts := fuzz.Options{MCMaxStates: *mcStates, SkipMC: *skipMC, Compiled: *compiledOn}
	if *compiledOn {
		if _, err := gobackend.Toolchain(); err != nil {
			fmt.Fprintf(os.Stderr, "espfuzz: -compiled: %v (the stage would skip on every program; drop the flag or install Go)\n", err)
			os.Exit(2)
		}
	}

	start := time.Now()
	// Campaign counters live in a metrics registry so the stderr progress
	// line and the telemetry server's /metrics report the same numbers.
	reg := obs.NewMetrics()
	f := &fuzzer{
		opts: opts, out: *out, minBudget: *minBudget, verbose: *verbose, maxFailures: *maxFailures,
		programs:    reg.Counter("fuzz_programs_total"),
		compiled:    reg.Counter("fuzz_compiled_total"),
		divergences: reg.Counter("fuzz_divergences_total"),
		start:       start,
	}
	if *progress {
		f.progressEvery = *progressI
		f.lastProgress = start
	}
	if *telemetry != "" {
		srv, err := obs.NewServer(*telemetry, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "espfuzz: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		srv.SetStatus(func(w io.Writer) {
			fmt.Fprintf(w, "campaign: espfuzz seed=%d n=%d\n", *seed, *n)
		})
		srv.SetProgress(func(w io.Writer) { fmt.Fprintln(w, f.progressLine()) })
		fmt.Fprintf(os.Stderr, "telemetry: serving on http://%s\n", srv.Addr())
	}

	for i := 0; i < *n && !f.stop(); i++ {
		g := fuzz.Generate(*seed + int64(i))
		f.one(g.Name(), g.Source)
	}

	if *corpus != "" && *mutants > 0 {
		files, err := filepath.Glob(filepath.Join(*corpus, "*.esp"))
		if err != nil || len(files) == 0 {
			fmt.Fprintf(os.Stderr, "espfuzz: no corpus programs in %s\n", *corpus)
			os.Exit(2)
		}
		sort.Strings(files)
		for fi, path := range files {
			src, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "espfuzz: %v\n", err)
				os.Exit(2)
			}
			base := filepath.Base(path)
			for j := 0; j < *mutants && !f.stop(); j++ {
				mseed := *seed*1_000_003 + int64(fi)*10_007 + int64(j)
				msrc, err := fuzz.Mutate(string(src), mseed, 1+j%3)
				if err != nil {
					fmt.Fprintf(os.Stderr, "espfuzz: mutate %s: %v\n", base, err)
					os.Exit(2)
				}
				f.one(fmt.Sprintf("mut-%s-%d", base[:len(base)-len(".esp")], mseed), msrc)
			}
		}
	}

	fmt.Printf("espfuzz: %d programs in %v\n", f.total, time.Since(start).Round(time.Millisecond))
	var outcomes []string
	for o := range f.outcomes {
		outcomes = append(outcomes, o)
	}
	sort.Strings(outcomes)
	for _, o := range outcomes {
		fmt.Printf("  %-28s %d\n", o, f.outcomes[o])
	}
	if f.failures > 0 {
		fmt.Printf("espfuzz: %d FAILING program(s); reproducers in %s\n", f.failures, f.out)
		os.Exit(1)
	}
	fmt.Println("espfuzz: no divergences, no crashes")
}

type fuzzer struct {
	opts        fuzz.Options
	out         string
	minBudget   int
	verbose     bool
	maxFailures int

	// The counters are shared with the telemetry server's registry, so
	// progressLine may be called concurrently from an HTTP handler; it
	// must only read these atomics and the immutable start time.
	programs    *obs.Counter
	compiled    *obs.Counter
	divergences *obs.Counter
	start       time.Time

	progressEvery time.Duration // 0 = no stderr progress line
	lastProgress  time.Time

	total    int
	failures int
	outcomes map[string]int
}

func (f *fuzzer) stop() bool { return f.failures >= f.maxFailures }

// progressLine renders the campaign state: throughput, how many
// generated programs made it past the front end, and divergences so far.
func (f *fuzzer) progressLine() string {
	n := f.programs.Value()
	elapsed := time.Since(f.start)
	rate := float64(n) / elapsed.Seconds()
	compileRate := 0.0
	if n > 0 {
		compileRate = 100 * float64(f.compiled.Value()) / float64(n)
	}
	return fmt.Sprintf("espfuzz: %d programs in %v (%.1f/s), %.1f%% compile, %d divergence(s)",
		n, elapsed.Round(time.Second), rate, compileRate, f.divergences.Value())
}

// one runs the differential oracle on a single program, minimizing and
// persisting any failure.
func (f *fuzzer) one(name, src string) {
	f.total++
	f.programs.Inc()
	rep := fuzz.RunDifferential(name, src, f.opts)
	if f.outcomes == nil {
		f.outcomes = map[string]int{}
	}
	f.outcomes[rep.Outcome]++
	if rep.Outcome != "parse-error" && rep.Outcome != "compile-error" {
		f.compiled.Inc()
	}
	if f.progressEvery > 0 && time.Since(f.lastProgress) >= f.progressEvery {
		f.lastProgress = time.Now()
		fmt.Fprintln(os.Stderr, f.progressLine())
	}
	if f.verbose {
		fmt.Printf("%s\n", rep)
	}
	if !rep.Failed() {
		return
	}
	f.failures++
	f.divergences.Inc()
	fmt.Fprintf(os.Stderr, "FAIL %s\n%s\n", name, rep)

	// Minimize while the failure signature is preserved. The
	// model-checker stages only run during minimization when the
	// original failure involved them.
	key := rep.Key()
	mopts := f.opts
	if !hasMCStage(rep) {
		mopts.SkipMC = true
	}
	min := fuzz.Minimize(src, func(cand string) bool {
		r := fuzz.RunDifferential(name, cand, mopts)
		return r.Key() == key
	}, f.minBudget)

	if err := os.MkdirAll(f.out, 0o777); err != nil {
		fmt.Fprintf(os.Stderr, "espfuzz: %v\n", err)
		return
	}
	write := func(file, data string) {
		if err := os.WriteFile(filepath.Join(f.out, file), []byte(data), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "espfuzz: %v\n", err)
		}
	}
	write(name+".esp", min)
	write(name+".orig.esp", src)
	write(name+".report.txt", rep.String()+"\n")
	fmt.Fprintf(os.Stderr, "minimized reproducer: %s\n", filepath.Join(f.out, name+".esp"))
}

func hasMCStage(rep *fuzz.Report) bool {
	for _, b := range rep.Bugs {
		if len(b.Stage) >= 2 && b.Stage[:2] == "mc" {
			return true
		}
	}
	return false
}
