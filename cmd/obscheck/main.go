// Command obscheck validates observability artifacts produced by the
// other tools, for use in CI and scripts:
//
//	obscheck -trace out.json      check a Chrome trace-event JSON file
//	obscheck -metrics snap.json   check a metrics snapshot round-trips
//	obscheck -postmortem dump.txt check a flight-recorder postmortem dump
//
// -trace verifies the file parses as trace-event JSON, every event has a
// phase, and Begin/End spans balance on every track. -metrics verifies
// the snapshot parses and survives a decode/encode round trip unchanged.
// -postmortem verifies the dump's header totals, monotonic timestamps,
// consecutive sequence numbers, balanced process spans, and that the
// per-kind event counts match the header. Any failure exits nonzero with
// a diagnostic.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"esplang/internal/obs"
)

func main() {
	var (
		tracePath   = flag.String("trace", "", "Chrome trace-event JSON file to validate")
		metricsPath = flag.String("metrics", "", "metrics snapshot JSON file to validate")
		pmPath      = flag.String("postmortem", "", "flight-recorder postmortem dump to validate")
	)
	flag.Parse()
	if *tracePath == "" && *metricsPath == "" && *pmPath == "" || flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: obscheck [-trace out.json] [-metrics snap.json] [-postmortem dump.txt]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	if *tracePath != "" {
		data, err := os.ReadFile(*tracePath)
		if err != nil {
			fail(err)
		}
		n, err := obs.ValidateChromeTrace(data)
		if err != nil {
			fail(fmt.Errorf("%s: %w", *tracePath, err))
		}
		fmt.Printf("%s: valid trace, %d events\n", *tracePath, n)
	}

	if *metricsPath != "" {
		data, err := os.ReadFile(*metricsPath)
		if err != nil {
			fail(err)
		}
		snap, err := obs.ParseSnapshot(data)
		if err != nil {
			fail(fmt.Errorf("%s: %w", *metricsPath, err))
		}
		var buf bytes.Buffer
		if err := snap.WriteJSON(&buf); err != nil {
			fail(err)
		}
		snap2, err := obs.ParseSnapshot(buf.Bytes())
		if err != nil {
			fail(fmt.Errorf("%s: re-encoded snapshot does not parse: %w", *metricsPath, err))
		}
		if !snap.Equal(snap2) {
			fail(fmt.Errorf("%s: snapshot does not round-trip", *metricsPath))
		}
		fmt.Printf("%s: valid snapshot, %d counters, %d gauges, %d histograms\n",
			*metricsPath, len(snap.Counters), len(snap.Gauges), len(snap.Histograms))
	}

	if *pmPath != "" {
		data, err := os.ReadFile(*pmPath)
		if err != nil {
			fail(err)
		}
		n, err := obs.ValidatePostmortem(data)
		if err != nil {
			fail(fmt.Errorf("%s: %w", *pmPath, err))
		}
		fmt.Printf("%s: valid postmortem, %d events\n", *pmPath, n)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
	os.Exit(1)
}
