// Command obscheck validates observability artifacts produced by the
// other tools, for use in CI and scripts:
//
//	obscheck -trace out.json      check a Chrome trace-event JSON file
//	obscheck -metrics snap.json   check a metrics snapshot round-trips
//
// -trace verifies the file parses as trace-event JSON, every event has a
// phase, and Begin/End spans balance on every track. -metrics verifies
// the snapshot parses and survives a decode/encode round trip unchanged.
// Any failure exits nonzero with a diagnostic.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"esplang/internal/obs"
)

func main() {
	var (
		tracePath   = flag.String("trace", "", "Chrome trace-event JSON file to validate")
		metricsPath = flag.String("metrics", "", "metrics snapshot JSON file to validate")
	)
	flag.Parse()
	if *tracePath == "" && *metricsPath == "" || flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: obscheck [-trace out.json] [-metrics snap.json]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	if *tracePath != "" {
		data, err := os.ReadFile(*tracePath)
		if err != nil {
			fail(err)
		}
		n, err := obs.ValidateChromeTrace(data)
		if err != nil {
			fail(fmt.Errorf("%s: %w", *tracePath, err))
		}
		fmt.Printf("%s: valid trace, %d events\n", *tracePath, n)
	}

	if *metricsPath != "" {
		data, err := os.ReadFile(*metricsPath)
		if err != nil {
			fail(err)
		}
		snap, err := obs.ParseSnapshot(data)
		if err != nil {
			fail(fmt.Errorf("%s: %w", *metricsPath, err))
		}
		var buf bytes.Buffer
		if err := snap.WriteJSON(&buf); err != nil {
			fail(err)
		}
		snap2, err := obs.ParseSnapshot(buf.Bytes())
		if err != nil {
			fail(fmt.Errorf("%s: re-encoded snapshot does not parse: %w", *metricsPath, err))
		}
		if !snap.Equal(snap2) {
			fail(fmt.Errorf("%s: snapshot does not round-trip", *metricsPath))
		}
		fmt.Printf("%s: valid snapshot, %d counters, %d gauges, %d histograms\n",
			*metricsPath, len(snap.Counters), len(snap.Gauges), len(snap.Histograms))
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
	os.Exit(1)
}
