// Command espverify model-checks an ESP program — the role SPIN plays in
// the paper's Figure 4. The program must be closed: test-driver processes
// written in ESP (the analogue of test.SPIN) stand in for the external
// environment.
//
// Usage:
//
//	espverify [flags] program.esp
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	esplang "esplang"
	"esplang/internal/obs"
)

func main() {
	var (
		mode      = flag.String("mode", "exhaustive", "exploration mode: exhaustive, bitstate, simulation (§5.1)")
		workers   = flag.Int("workers", 0, "parallel search workers (0 = all cores; 1 = deterministic)")
		maxStates = flag.Int("max-states", 0, "state bound (0 = default)")
		maxDepth  = flag.Int("max-depth", 0, "depth bound (0 = default)")
		bits      = flag.Uint("bits", 24, "bitstate mode: log2 of the bit array size")
		seed      = flag.Int64("seed", 1, "simulation mode: random seed")
		runs      = flag.Int("runs", 100, "simulation mode: number of walks")
		maxLive   = flag.Int("max-objects", 0, "objectId table size; exhausting it is a leak (§5.2)")
		endRecv   = flag.Bool("end-recv-ok", false, "treat all-receive-blocked states as valid end states")
		noDead    = flag.Bool("no-deadlock", false, "do not report deadlocks")
		progressC = flag.String("progress-channels", "", "comma-separated progress channels: report non-progress cycles (starvation) instead of safety")
		progress  = flag.Bool("progress", false, "print periodic search progress to stderr (states, frontier, states/s, memory)")
		progressI = flag.Duration("progress-interval", 2*time.Second, "interval between -progress samples")
		metricsF  = flag.String("metrics", "", "write a JSON metrics snapshot of the search to this file at exit")
		engineN   = flag.String("engine", "fused", "VM engine driving the search: fused, procfused, or baseline (verdicts and state counts are identical)")
		fuse      = flag.Bool("fuse", false, "drive the search with the process-fused engine (shorthand for -engine procfused)")
		noFuse    = flag.Bool("no-fuse", false, "disable static process fusion in the optimizer; every rendezvous stays dynamic")
		por       = flag.Bool("por", false, "partial-order reduction: explore one ample subset of independent transitions per state (verdict-preserving)")
		porStats  = flag.Bool("por-stats", false, "with -por (implied): print ample-set hit rate, proviso fallbacks, and deferred-transition counts after the search")
		noVet     = flag.Bool("no-vet", false, "do not print espvet static-analysis findings before checking")
		postmort  = flag.Bool("postmortem", false, "print the counterexample's flight-recorder postmortem (last events leading into the violation)")
		telemetry = flag.String("telemetry", "", "serve live telemetry on this address (e.g. 127.0.0.1:9464): /metrics, /statusz, /progress")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: espverify [flags] program.esp")
		flag.PrintDefaults()
		os.Exit(2)
	}
	engine, err := esplang.ParseEngine(*engineN)
	if err != nil {
		fmt.Fprintf(os.Stderr, "espverify: %v\n", err)
		os.Exit(2)
	}
	if *fuse {
		engine = esplang.EngineProcFused
	}
	copts := esplang.CompileOptions{}
	if *noFuse {
		passes := esplang.OptAll()
		passes.FuseProcs = false
		copts.Passes = passes
	}
	prog, err := esplang.CompileFile(flag.Arg(0), copts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "espverify: %v\n", err)
		os.Exit(1)
	}
	// Static findings print before the search starts: a finding the
	// counterexample then confirms is tagged below, and a leak/deadlock
	// the search misses (open systems, bounds) is still surfaced here.
	if !*noVet && len(prog.Findings) > 0 {
		fmt.Fprint(os.Stderr, prog.RenderFindings())
	}

	opts := esplang.VerifyOptions{
		Workers:         *workers,
		MaxStates:       *maxStates,
		MaxDepth:        *maxDepth,
		BitstateBits:    *bits,
		Seed:            *seed,
		SimRuns:         *runs,
		MaxLiveObjects:  *maxLive,
		EndRecvOK:       *endRecv,
		NoDeadlockCheck: *noDead,
		Engine:          engine,
	}
	if *por || *porStats {
		opts.Reduction = esplang.AmpleSets
	}
	var reg *obs.Metrics
	if *metricsF != "" || *telemetry != "" {
		reg = obs.NewMetrics()
		opts.Metrics = reg
	}
	var srv *obs.Server
	if *telemetry != "" {
		var err error
		srv, err = obs.NewServer(*telemetry, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "espverify: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		progName := flag.Arg(0)
		srv.SetStatus(func(w io.Writer) {
			fmt.Fprintf(w, "program: %s\nmode: %s\nengine: %v\n", progName, *mode, engine)
		})
		fmt.Fprintf(os.Stderr, "telemetry: serving on http://%s\n", srv.Addr())
	}
	if *progress || srv != nil {
		// The latest sample feeds both the stderr progress line and the
		// telemetry server's /progress endpoint.
		var mu sync.Mutex
		var latest esplang.ProgressInfo
		var have bool
		opts.Progress = func(info esplang.ProgressInfo) {
			mu.Lock()
			latest, have = info, true
			mu.Unlock()
			if *progress {
				fmt.Fprintln(os.Stderr, info)
			}
		}
		opts.ProgressInterval = *progressI
		if srv != nil {
			srv.SetProgress(func(w io.Writer) {
				mu.Lock()
				defer mu.Unlock()
				if !have {
					fmt.Fprintln(w, "search not started")
					return
				}
				fmt.Fprintln(w, latest)
			})
		}
	}
	switch *mode {
	case "exhaustive":
		opts.Mode = esplang.Exhaustive
	case "bitstate":
		opts.Mode = esplang.BitState
	case "simulation":
		opts.Mode = esplang.Simulation
	default:
		fmt.Fprintf(os.Stderr, "espverify: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	var res *esplang.VerifyResult
	if *progressC != "" {
		res = prog.VerifyProgress(strings.Split(*progressC, ","), opts)
	} else {
		res = prog.Verify(opts)
	}
	if reg != nil {
		f, err := os.Create(*metricsF)
		if err == nil {
			err = reg.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "espverify: writing metrics: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Println(res)
	if *porStats && res.POR != nil {
		p := res.POR
		fmt.Printf("por: ample at %d/%d states (%.1f%% hit rate), %d proviso fallbacks, %d transitions deferred (lower bound on successors avoided)\n",
			p.AmpleStates, p.AmpleStates+p.FullStates, 100*p.HitRate(),
			p.ProvisoFallbacks, p.DeferredTransitions)
	}
	if res.Violation != nil {
		fmt.Println("counterexample:")
		for i, step := range res.Violation.Trace {
			fmt.Printf("  %3d. %s\n", i+1, step.Desc)
		}
		if f := prog.ConfirmFinding(res.Violation); f != nil {
			fmt.Printf("confirms static finding: %s\n", f)
		}
		if *postmort && res.Violation.Postmortem != "" {
			fmt.Println("postmortem (counterexample replay):")
			fmt.Print(res.Violation.Postmortem)
		}
		if srv != nil {
			srv.Close()
		}
		os.Exit(1)
	}
}
