// Command espfmt pretty-prints ESP source in the canonical style (the
// ast printer's output, which reparses to an identical tree).
//
// Usage:
//
//	espfmt file.esp          # print formatted source to stdout
//	espfmt -w file.esp ...   # rewrite files in place
//	espfmt -d file.esp       # exit 1 if the file is not formatted
package main

import (
	"flag"
	"fmt"
	"os"

	"esplang/internal/ast"
	"esplang/internal/parser"
)

func main() {
	write := flag.Bool("w", false, "write result back to the file")
	diff := flag.Bool("d", false, "exit non-zero when a file is not canonically formatted")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: espfmt [-w|-d] file.esp ...")
		os.Exit(2)
	}
	exit := 0
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "espfmt: %v\n", err)
			exit = 1
			continue
		}
		tree, err := parser.Parse(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "espfmt: %s: %v\n", path, err)
			exit = 1
			continue
		}
		formatted := ast.Print(tree)
		switch {
		case *write:
			if err := os.WriteFile(path, []byte(formatted), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "espfmt: %v\n", err)
				exit = 1
			}
		case *diff:
			if formatted != string(src) {
				fmt.Printf("%s: not formatted\n", path)
				exit = 1
			}
		default:
			fmt.Print(formatted)
		}
	}
	os.Exit(exit)
}
