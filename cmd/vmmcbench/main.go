// Command vmmcbench regenerates every figure and table of the paper's
// evaluation (§4.6, §5.3, §6.2) on the simulated Myrinet testbed:
//
//	vmmcbench -fig 5a      one-way latency vs message size (Figure 5a)
//	vmmcbench -fig 5b      one-way bandwidth vs message size (Figure 5b)
//	vmmcbench -fig 5c      bidirectional bandwidth vs message size (Figure 5c)
//	vmmcbench -table loc   lines-of-code comparison (§4.6)
//	vmmcbench -table verify verification statistics (§5.3)
//	vmmcbench -table overhead runtime primitive costs and ablations (§6.1/§6.2)
//	vmmcbench -all         everything
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	esplang "esplang"
	"esplang/internal/nic"
	"esplang/internal/obs"
	"esplang/internal/opt"
	"esplang/internal/vmmc"
)

var flavors = []vmmc.Flavor{vmmc.ESP, vmmc.Orig, vmmc.OrigNoFastPaths}

// mcWorkers is the -mc-workers flag: the worker-pool size the §5.3
// verification runs hand to the model checker.
var mcWorkers int

// mcEngine is the -engine flag: the VM engine the verification runs use.
var mcEngine esplang.Engine

// mcMetrics, when -telemetry is set, routes the §5.3 verification
// searches' counters into the telemetry registry.
var mcMetrics *obs.Metrics

func main() {
	var (
		fig    = flag.String("fig", "", "figure to regenerate: 5a, 5b, 5c")
		table  = flag.String("table", "", "table to regenerate: loc, verify, overhead")
		all    = flag.Bool("all", false, "regenerate everything")
		count  = flag.Int("count", 40, "messages per bandwidth measurement")
		round  = flag.Int("rounds", 20, "round trips per latency measurement")
		mcW    = flag.Int("mc-workers", 0, "verification tables: parallel model-checker workers (0 = all cores)")
		trace  = flag.String("trace", "", "run one traced ESP ping-pong and write its Chrome trace-event JSON here (open in Perfetto)")
		prof   = flag.Bool("profile", false, "run one traced ESP ping-pong and print the firmware's hot-line cycle profile")
		tsize  = flag.Int("trace-size", 1024, "message size for -trace/-profile")
		engN   = flag.String("engine", "fused", "VM engine for firmware runs and verification: fused, procfused, or baseline (figures and verdicts are engine-independent)")
		fuse   = flag.Bool("fuse", false, "run firmware on the process-fused engine (shorthand for -engine procfused)")
		noFuse = flag.Bool("no-fuse", false, "pin firmware to the plain fused engine (dynamic rendezvous only; shorthand for -engine fused)")
		telem  = flag.String("telemetry", "", "serve live telemetry on this address (e.g. 127.0.0.1:9464): every cluster the run builds feeds one /metrics registry")
	)
	flag.Parse()
	mcWorkers = *mcW
	engine, err := esplang.ParseEngine(*engN)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vmmcbench: %v\n", err)
		os.Exit(2)
	}
	if *fuse {
		engine = esplang.EngineProcFused
	}
	if *noFuse {
		engine = esplang.EngineFused
	}
	vmmc.Engine = engine
	mcEngine = engine

	if *telem != "" {
		// One registry aggregates every cluster built during the run (the
		// vmmc.Metrics package hook) and the §5.3 verification searches.
		reg := obs.NewMetrics()
		vmmc.Metrics = reg
		mcMetrics = reg
		srv, err := obs.NewServer(*telem, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vmmcbench: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		srv.SetStatus(func(w io.Writer) {
			fmt.Fprintf(w, "campaign: vmmcbench\nengine: %v\n", engine)
		})
		fmt.Fprintf(os.Stderr, "telemetry: serving on http://%s\n", srv.Addr())
	}

	if *trace != "" || *prof {
		traceRun(*trace, *prof, *tsize, *round)
		if *fig == "" && *table == "" && !*all {
			return
		}
	}

	if *all {
		fig5a(*round)
		fig5b(*count)
		fig5c(*count)
		tableLoc()
		tableVerify()
		tableOverhead()
		return
	}
	ran := false
	switch *fig {
	case "5a":
		fig5a(*round)
		ran = true
	case "5b":
		fig5b(*count)
		ran = true
	case "5c":
		fig5c(*count)
		ran = true
	case "":
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
	switch *table {
	case "loc":
		tableLoc()
		ran = true
	case "verify":
		tableVerify()
		ran = true
	case "overhead":
		tableOverhead()
		ran = true
	case "":
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(2)
	}
	if !ran {
		flag.PrintDefaults()
		os.Exit(2)
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "vmmcbench: %v\n", err)
		os.Exit(1)
	}
}

// traceRun runs one fully observed ESP ping-pong (the Figure 5a workload)
// and writes the timeline and/or prints the firmware cycle profile.
func traceRun(tracePath string, profile bool, size, rounds int) {
	lat, tr, p, _, err := vmmc.TracePingPong(vmmc.ESP, nic.DefaultConfig(), size, rounds)
	die(err)
	fmt.Printf("traced ESP ping-pong: %d B, %d rounds, %.1f us one-way\n", size, rounds, lat/1000)
	if tracePath != "" {
		f, err := os.Create(tracePath)
		die(err)
		err = tr.Write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		die(err)
		fmt.Printf("wrote %d trace events to %s\n", tr.Len(), tracePath)
	}
	if profile {
		fmt.Print(p.Report(vmmc.ESPSource(nic.DefaultConfig()), 10))
		fmt.Print(p.KindTable())
	}
	fmt.Println()
}

var latencySizes = []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
var bwSizes = []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536}

func fig5a(rounds int) {
	fmt.Println("Figure 5(a): one-way latency (us) vs message size")
	fmt.Printf("%8s %12s %12s %22s\n", "size", "vmmcESP", "vmmcOrig", "vmmcOrigNoFastPaths")
	cfg := nic.DefaultConfig()
	for _, size := range latencySizes {
		row := [3]float64{}
		for i, fl := range flavors {
			v, err := vmmc.PingPong(fl, cfg, size, rounds)
			die(err)
			row[i] = v / 1000
		}
		fmt.Printf("%8d %12.1f %12.1f %22.1f\n", size, row[0], row[1], row[2])
	}
	fmt.Println()
}

func fig5b(count int) {
	fmt.Println("Figure 5(b): one-way bandwidth (MB/s) vs message size")
	fmt.Printf("%8s %12s %12s %22s\n", "size", "vmmcESP", "vmmcOrig", "vmmcOrigNoFastPaths")
	cfg := nic.DefaultConfig()
	for _, size := range bwSizes {
		row := [3]float64{}
		for i, fl := range flavors {
			v, err := vmmc.OneWay(fl, cfg, size, count)
			die(err)
			row[i] = v
		}
		fmt.Printf("%8d %12.1f %12.1f %22.1f\n", size, row[0], row[1], row[2])
	}
	fmt.Println()
}

func fig5c(count int) {
	fmt.Println("Figure 5(c): bidirectional bandwidth (MB/s, total) vs message size")
	fmt.Printf("%8s %12s %12s %22s\n", "size", "vmmcESP", "vmmcOrig", "vmmcOrigNoFastPaths")
	cfg := nic.DefaultConfig()
	for _, size := range bwSizes {
		row := [3]float64{}
		for i, fl := range flavors {
			v, err := vmmc.Bidirectional(fl, cfg, size, count/2)
			die(err)
			row[i] = v
		}
		fmt.Printf("%8d %12.1f %12.1f %22.1f\n", size, row[0], row[1], row[2])
	}
	fmt.Println()
}

func tableLoc() {
	fmt.Println("Table: lines of code (§4.6)")
	cfg := nic.DefaultConfig()
	prog, err := esplang.Compile(vmmc.ESPSource(cfg), esplang.CompileOptions{})
	die(err)
	s := prog.Stats()
	fmt.Printf("  %-34s %8s %10s\n", "", "paper", "this repo")
	fmt.Printf("  %-34s %8d %10d\n", "ESP firmware lines", 500, s.SourceLines)
	fmt.Printf("  %-34s %8d %10d\n", "  of which declarations", 200, s.DeclLines)
	fmt.Printf("  %-34s %8d %10d\n", "  of which process code", 300, s.ProcessLines)
	fmt.Printf("  %-34s %8d %10d\n", "processes", 7, s.Processes)
	fmt.Printf("  %-34s %8d %10d\n", "channels", 17, s.Channels)
	fmt.Printf("  %-34s %8s %10s\n", "helper code (C / Go bridge)", "~3000 C", "see espfw.go")
	fmt.Printf("  %-34s %8s %10s\n", "original firmware", "15600 C", "orig.go")
	fmt.Println()
}

func tableVerify() {
	fmt.Println("Table: verification statistics (§5.3)")
	cfg := nic.DefaultConfig()
	vo := esplang.VerifyOptions{Workers: mcWorkers, Engine: mcEngine, Metrics: mcMetrics}

	res, err := vmmc.VerifyFirmware(cfg, 2, vo)
	die(err)
	fmt.Printf("  firmware model, 2 msgs (exhaustive):  %s\n", res)
	fmt.Println("    paper: biggest process 2251 states, 0.5 s, 2.2 MB")

	res, err = vmmc.VerifyRetrans(2, 3, false, vo)
	die(err)
	fmt.Printf("  retransmission protocol:              %s\n", res)

	res, err = vmmc.VerifyRetrans(2, 3, true, vo)
	die(err)
	fmt.Printf("  retransmission protocol, seeded bug:  %s\n", res)

	for _, bug := range []vmmc.MemBug{vmmc.BugNone, vmmc.BugLeak, vmmc.BugUseAfterFree, vmmc.BugDoubleFree} {
		res, err = vmmc.VerifyMemSafety(bug, vo)
		die(err)
		fmt.Printf("  memory safety (%-14s):        %s\n", bug, res)
	}
	fmt.Println("    paper: seeded memory bugs were found in every case")
	fmt.Println()
}

// overheadProbe is a small ESP program exercising the runtime primitives.
const overheadProbe = `
type dataT = array of int
type msgT = record of { tag: int, data: dataT }
channel c: msgT
channel done: int external reader
process producer {
    $n = 0;
    while (n < 200) {
        $d: dataT = { 8 -> n};
        out( c, { n, d});
        unlink( d);
        n = n + 1;
    }
}
process consumer {
    $n = 0;
    while (n < 200) {
        in( c, { $tag, $data});
        unlink( data);
        n = n + 1;
    }
    out( done, 1);
}
`

// optProbe exercises the optimizer: constant expressions, copies through
// temporaries, constant branches, and a dead-source mutability cast.
const optProbe = `
channel c: array of int
channel done: int external reader
process maker {
    $n = 0;
    while (n < 100) {
        $hdrWords = (16 + 4 * 2) / 4;
        $size = hdrWords;
        $total = size;
        $a: #array of int = #{ 4 -> total};
        if (true) { a[0] = total + 1 * 1; }
        out( c, immutable(a));
        n = n + 1;
    }
}
process user {
    $n = 0;
    while (n < 100) {
        in( c, $d);
        assert( d[0] == 7);
        unlink( d);
        n = n + 1;
    }
    out( done, 1);
}
`

func runProbe(cfg esplang.MachineConfig) *esplang.Machine {
	prog, err := esplang.Compile(overheadProbe, esplang.CompileOptions{})
	die(err)
	m := prog.Machine(cfg)
	die(m.BindReader("done", &esplang.CollectReader{}))
	m.Run()
	if m.Fault() != nil {
		die(fmt.Errorf("probe fault: %v", m.Fault()))
	}
	return m
}

func tableOverhead() {
	fmt.Println("Table: runtime primitive costs and ablations (§6.1, §6.2)")

	base := runProbe(esplang.MachineConfig{})
	fmt.Printf("  default (bit-masks, refcount transfer):   %8d cycles, %d instrs, %d ctx switches\n",
		base.Cycles, base.Stats.Instrs, base.Stats.CtxSwitches)
	fmt.Printf("    events: %s\n", base.Stats)

	q := runProbe(esplang.MachineConfig{UseWaitQueues: true})
	fmt.Printf("  ablation: per-pattern wait queues (§6.1): %8d cycles (%+.1f%%), %d queue ops\n",
		q.Cycles, pct(q.Cycles, base.Cycles), q.Stats.QueueOps)

	d := runProbe(esplang.MachineConfig{ForceDeepCopy: true})
	fmt.Printf("  ablation: physical deep copies (§6.2):    %8d cycles (%+.1f%%), %d words copied\n",
		d.Cycles, pct(d.Cycles, base.Cycles), d.Stats.DeepCopied)

	// Optimizer ablation: instruction counts with and without the §6.1
	// passes, on a probe with foldable expressions, copies, and a
	// dead-source mutability cast.
	progOpt, err := esplang.Compile(optProbe, esplang.CompileOptions{Passes: opt.All()})
	die(err)
	progRaw, err := esplang.Compile(optProbe, esplang.CompileOptions{NoOptimize: true})
	die(err)
	fmt.Printf("  ablation: IR optimizations off:           %8d -> %d IR instructions\n",
		progRaw.Stats().Instructions, progOpt.Stats().Instructions)

	fmt.Printf("  context switch: program counter only (%d cycles); rendezvous %d cycles\n",
		5, 8)
	fmt.Println()
}

func pct(a, b int64) float64 {
	return (float64(a)/float64(b) - 1) * 100
}
