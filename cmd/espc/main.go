// Command espc is the ESP compiler driver: from one ESP program it emits
// the two targets of the paper's Figure 4 — a C file to build into device
// firmware, and a Promela specification for the SPIN model checker.
//
// Usage:
//
//	espc [flags] program.esp
//
// With no output flags it writes program.c and program.pml next to the
// input. -mc additionally model-checks the program with the bundled
// checker (-mc-workers sizes its parallel search). Compile errors are
// reported with caret-marked source excerpts:
//
//	program.esp:12:9: error: undefined variable x
//	    out( c, x);
//	            ^
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	esplang "esplang"
	"esplang/internal/diag"
	"esplang/internal/gobackend"
)

func main() {
	var (
		cOut      = flag.String("c", "", "C output path (default: <input>.c)")
		pmlOut    = flag.String("pml", "", "Promela output path (default: <input>.pml)")
		noC       = flag.Bool("no-c", false, "skip the C target")
		noPml     = flag.Bool("no-pml", false, "skip the Promela target")
		noOpt     = flag.Bool("O0", false, "disable the §6.1 IR optimizations")
		disasm    = flag.Bool("S", false, "print the compiled IR to stdout")
		dumpIR    = flag.Bool("dump-ir", false, "print the compiled IR to stdout (alias of -S)")
		dumpFused = flag.Bool("dump-fused", false, "print the fused-engine superinstruction translation to stdout")
		dumpSched = flag.Bool("dump-schedule", false, "print the static rendezvous schedule (fused channels, dynamic fallbacks, interleave order) to stdout")
		dumpIndep = flag.Bool("dump-indep", false, "print the transition-independence table (channel touch sets, heap cleanliness, ref-flow regions, independent pairs) to stdout")
		vet       = flag.Bool("vet", false, "print espvet static-analysis findings to stderr")
		vetErr    = flag.Bool("vet-err", false, "like -vet, but findings fail the build (exit 1)")
		vetOff    = flag.String("vet-disable", "", "comma-separated espvet check IDs or names to suppress")
		stats     = flag.Bool("stats", false, "print program statistics")
		optStats  = flag.Bool("opt-stats", false, "print per-pass optimizer statistics")
		verifyIR  = flag.Bool("verify-ir", false, "check IR structural invariants after compilation and after every optimizer pass")
		maxObjs   = flag.Int("max-objects", 1024, "C target: static heap size")
		instances = flag.Int("instances", 1, "Promela target: program copies")
		bound     = flag.Int("bound", 16, "Promela target: default objectId table size")
		emitGo    = flag.String("emit-go", "", "write the AOT Go backend's generated source tree (main.go + go.mod) into this directory; `go build` there produces the compiled-engine binary")
		mcRun     = flag.Bool("mc", false, "model-check the program with the bundled checker (the program must be closed); a violation exits nonzero")
		mcWorkers = flag.Int("mc-workers", 0, "model checker: parallel search workers (0 = all cores; 1 = deterministic)")
		mcProg    = flag.Bool("mc-progress", false, "model checker: print periodic search progress to stderr")
		mcPOR     = flag.Bool("mc-por", false, "model checker: ample-set partial-order reduction (verdict-preserving)")
		engineN   = flag.String("engine", "fused", "model checker: VM engine driving the search, fused, procfused, or baseline")
		fuse      = flag.Bool("fuse", false, "model checker: drive the search with the process-fused engine (shorthand for -engine procfused)")
		noFuse    = flag.Bool("no-fuse", false, "disable static process fusion in the optimizer; every rendezvous stays dynamic")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: espc [flags] program.esp")
		flag.PrintDefaults()
		os.Exit(2)
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "espc: %v\n", err)
		os.Exit(1)
	}
	vetDisable := map[string]bool{}
	for _, key := range strings.Split(*vetOff, ",") {
		if key = strings.TrimSpace(key); key != "" {
			vetDisable[key] = true
		}
	}
	copts := esplang.CompileOptions{
		Name:       in,
		File:       in,
		NoOptimize: *noOpt,
		VerifyIR:   *verifyIR,
		VetDisable: vetDisable,
	}
	if *noFuse {
		passes := esplang.OptAll()
		passes.FuseProcs = false
		copts.Passes = passes
	}
	prog, err := esplang.Compile(string(src), copts)
	if err != nil {
		fmt.Fprintln(os.Stderr, diag.RenderError(err, in, string(src)))
		os.Exit(1)
	}
	if (*vet || *vetErr) && len(prog.Findings) > 0 {
		fmt.Fprint(os.Stderr, prog.RenderFindings())
		if *vetErr {
			os.Exit(1)
		}
	}

	base := strings.TrimSuffix(in, filepath.Ext(in))
	if *disasm || *dumpIR {
		fmt.Print(prog.Disasm())
	}
	if *dumpFused {
		fmt.Print(prog.DisasmFused())
	}
	if *dumpSched {
		fmt.Print(prog.DumpSchedule())
	}
	if *dumpIndep {
		fmt.Print(prog.DumpIndependence())
	}
	if *stats {
		s := prog.Stats()
		fmt.Printf("%d processes, %d channels, %d lines (%d decl + %d process), %d IR instructions\n",
			s.Processes, s.Channels, s.SourceLines, s.DeclLines, s.ProcessLines, s.Instructions)
	}
	if *optStats {
		if prog.OptStats != nil {
			fmt.Print(prog.OptStats.String())
		} else {
			fmt.Println("optimizer: disabled (-O0)")
		}
	}
	if !*noC {
		path := *cOut
		if path == "" {
			path = base + ".c"
		}
		c := prog.C(esplang.COptions{MaxObjects: *maxObjs})
		if err := os.WriteFile(path, []byte(c), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "espc: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
	if !*noPml {
		path := *pmlOut
		if path == "" {
			path = base + ".pml"
		}
		pml := prog.Promela(esplang.PromelaOptions{Instances: *instances, DefaultBound: *bound})
		if err := os.WriteFile(path, []byte(pml), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "espc: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
	if *emitGo != "" {
		if *noFuse {
			// The generated harness recompiles the embedded source with
			// default passes; a custom pass set would produce different IR
			// than the step functions were generated from.
			fmt.Fprintln(os.Stderr, "espc: -emit-go does not support -no-fuse")
			os.Exit(2)
		}
		mainSrc, err := gobackend.Emit(prog, gobackend.Options{NoOptimize: *noOpt, VerifyIR: *verifyIR})
		if err != nil {
			fmt.Fprintf(os.Stderr, "espc: %v\n", err)
			os.Exit(1)
		}
		if err := gobackend.WriteTree(*emitGo, mainSrc); err != nil {
			fmt.Fprintf(os.Stderr, "espc: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", filepath.Join(*emitGo, "main.go"))
		fmt.Printf("wrote %s\n", filepath.Join(*emitGo, "go.mod"))
	}
	if *mcRun {
		engine, err := esplang.ParseEngine(*engineN)
		if err != nil {
			fmt.Fprintf(os.Stderr, "espc: %v\n", err)
			os.Exit(2)
		}
		if *fuse {
			engine = esplang.EngineProcFused
		}
		vo := esplang.VerifyOptions{Workers: *mcWorkers, EndRecvOK: true, Engine: engine}
		if *mcPOR {
			vo.Reduction = esplang.AmpleSets
		}
		if *mcProg {
			vo.Progress = func(info esplang.ProgressInfo) { fmt.Fprintln(os.Stderr, info) }
		}
		res := prog.Verify(vo)
		fmt.Println(res)
		if res.Violation != nil {
			fmt.Println("counterexample:")
			for i, step := range res.Violation.Trace {
				fmt.Printf("  %3d. %s\n", i+1, step.Desc)
			}
			os.Exit(1)
		}
	}
}
