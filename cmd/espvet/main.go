// Command espvet runs the static-analysis suite over ESP programs and
// reports memory-safety and channel-protocol findings with caret-marked
// source excerpts — the compile-time complement to espverify's
// exhaustive model checking.
//
// Usage:
//
//	espvet [flags] file.esp... | dir...
//
// Directory arguments vet every *.esp file directly inside them (not
// recursively). Exit status: 0 when every program is clean, 1 when any
// finding was reported, 2 on usage or compile errors.
//
//	$ espvet testdata/vet/double_free.esp
//	testdata/vet/double_free.esp:11:5: warning: d is released twice [ESPV004]
//	    unlink( d); // BUG: d was already released
//	    ^
//	testdata/vet/double_free.esp:10:5: note: first released here
//	    unlink( d);
//	    ^
//
// -list prints the check catalogue; -disable suppresses checks by ID
// ("ESPV002") or name ("leak"), comma-separated.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	esplang "esplang"
	"esplang/internal/diag"
)

func main() {
	var (
		disable = flag.String("disable", "", "comma-separated check IDs or names to suppress (e.g. ESPV021,leak)")
		list    = flag.Bool("list", false, "print the check catalogue and exit")
		quiet   = flag.Bool("q", false, "suppress source excerpts; print one line per finding")
	)
	flag.Parse()

	if *list {
		for _, c := range esplang.VetChecks() {
			fmt.Printf("%s  %-16s %s\n", c.ID, c.Name, c.Doc)
		}
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: espvet [flags] file.esp... | dir...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	vetDisable := map[string]bool{}
	if *disable != "" {
		known := map[string]bool{}
		for _, c := range esplang.VetChecks() {
			known[c.ID], known[c.Name] = true, true
		}
		for _, key := range strings.Split(*disable, ",") {
			key = strings.TrimSpace(key)
			if key == "" {
				continue
			}
			if !known[key] {
				fmt.Fprintf(os.Stderr, "espvet: unknown check %q (see espvet -list)\n", key)
				os.Exit(2)
			}
			vetDisable[key] = true
		}
	}

	files, err := expandArgs(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "espvet: %v\n", err)
		os.Exit(2)
	}
	os.Exit(sweep(files, vetDisable, *quiet, os.Stdout, os.Stderr))
}

// sweepFinding pins one finding to the program (and path) it came from,
// so findings from a multi-file sweep can be ordered globally.
type sweepFinding struct {
	path string
	prog *esplang.Program
	f    *esplang.Finding
}

// sweep vets every file and reports the findings of the whole sweep in
// one global (file, span, check ID) order, so multi-file runs are
// byte-stable regardless of compilation order. Returns the exit status:
// 0 clean, 1 findings, 2 compile/read errors.
func sweep(files []string, vetDisable map[string]bool, quiet bool, out, errw io.Writer) int {
	exit := 0
	var all []sweepFinding
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(errw, "espvet: %v\n", err)
			exit = 2
			continue
		}
		prog, err := esplang.Compile(string(src), esplang.CompileOptions{
			Name:       path,
			File:       path,
			VetDisable: vetDisable,
		})
		if err != nil {
			fmt.Fprintln(errw, diag.RenderError(err, path, string(src)))
			exit = 2
			continue
		}
		for _, f := range prog.Findings {
			all = append(all, sweepFinding{path: path, prog: prog, f: f})
		}
	}
	if len(all) == 0 {
		return exit
	}
	if exit == 0 {
		exit = 1
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.path != b.path {
			return a.path < b.path
		}
		if a.f.Pos.Line != b.f.Pos.Line {
			return a.f.Pos.Line < b.f.Pos.Line
		}
		if a.f.Pos.Column != b.f.Pos.Column {
			return a.f.Pos.Column < b.f.Pos.Column
		}
		return a.f.Check.ID < b.f.Check.ID
	})
	if quiet {
		for _, sf := range all {
			fmt.Fprintf(out, "%s:%s\n", sf.path, sf.f)
		}
		return exit
	}
	for _, sf := range all {
		fmt.Fprint(out, sf.prog.RenderFinding(sf.f))
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "%d finding(s)\n", len(all))
	return exit
}

// expandArgs resolves the file/directory arguments to a sorted,
// deduplicated list of .esp files. Directories contribute their direct
// *.esp entries.
func expandArgs(args []string) ([]string, error) {
	seen := map[string]bool{}
	var files []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			files = append(files, p)
		}
	}
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			add(arg)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(arg, "*.esp"))
		if err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("no .esp files in %s", arg)
		}
		for _, m := range matches {
			add(m)
		}
	}
	sort.Strings(files)
	return files, nil
}
