// Command espvet runs the static-analysis suite over ESP programs and
// reports memory-safety and channel-protocol findings with caret-marked
// source excerpts — the compile-time complement to espverify's
// exhaustive model checking.
//
// Usage:
//
//	espvet [flags] file.esp... | dir...
//
// Directory arguments vet every *.esp file directly inside them (not
// recursively). Exit status: 0 when every program is clean, 1 when any
// finding was reported, 2 on usage or compile errors.
//
//	$ espvet testdata/vet/double_free.esp
//	testdata/vet/double_free.esp:11:5: warning: d is released twice [ESPV004]
//	    unlink( d); // BUG: d was already released
//	    ^
//	testdata/vet/double_free.esp:10:5: note: first released here
//	    unlink( d);
//	    ^
//
// -list prints the check catalogue; -disable suppresses checks by ID
// ("ESPV002") or name ("leak"), comma-separated.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	esplang "esplang"
	"esplang/internal/diag"
)

func main() {
	var (
		disable = flag.String("disable", "", "comma-separated check IDs or names to suppress (e.g. ESPV021,leak)")
		list    = flag.Bool("list", false, "print the check catalogue and exit")
		quiet   = flag.Bool("q", false, "suppress source excerpts; print one line per finding")
	)
	flag.Parse()

	if *list {
		for _, c := range esplang.VetChecks() {
			fmt.Printf("%s  %-16s %s\n", c.ID, c.Name, c.Doc)
		}
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: espvet [flags] file.esp... | dir...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	vetDisable := map[string]bool{}
	if *disable != "" {
		known := map[string]bool{}
		for _, c := range esplang.VetChecks() {
			known[c.ID], known[c.Name] = true, true
		}
		for _, key := range strings.Split(*disable, ",") {
			key = strings.TrimSpace(key)
			if key == "" {
				continue
			}
			if !known[key] {
				fmt.Fprintf(os.Stderr, "espvet: unknown check %q (see espvet -list)\n", key)
				os.Exit(2)
			}
			vetDisable[key] = true
		}
	}

	files, err := expandArgs(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "espvet: %v\n", err)
		os.Exit(2)
	}

	exit := 0
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "espvet: %v\n", err)
			exit = 2
			continue
		}
		prog, err := esplang.Compile(string(src), esplang.CompileOptions{
			Name:       path,
			File:       path,
			VetDisable: vetDisable,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, diag.RenderError(err, path, string(src)))
			exit = 2
			continue
		}
		if len(prog.Findings) == 0 {
			continue
		}
		if exit == 0 {
			exit = 1
		}
		if *quiet {
			for _, f := range prog.Findings {
				fmt.Printf("%s:%s\n", path, f)
			}
		} else {
			fmt.Print(prog.RenderFindings())
		}
	}
	os.Exit(exit)
}

// expandArgs resolves the file/directory arguments to a sorted,
// deduplicated list of .esp files. Directories contribute their direct
// *.esp entries.
func expandArgs(args []string) ([]string, error) {
	seen := map[string]bool{}
	var files []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			files = append(files, p)
		}
	}
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			add(arg)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(arg, "*.esp"))
		if err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("no .esp files in %s", arg)
		}
		for _, m := range matches {
			add(m)
		}
	}
	sort.Strings(files)
	return files, nil
}
