package main

import (
	"bytes"
	"os"
	"testing"
)

// TestSweepDeterministic locks the multi-file sweep output: two sweeps
// over the whole vet corpus must be byte-identical, and the quiet-mode
// transcript must match the golden (findings globally ordered by file,
// span, check ID).
func TestSweepDeterministic(t *testing.T) {
	files, err := expandArgs([]string{"../../testdata/vet"})
	if err != nil {
		t.Fatal(err)
	}

	run := func() (string, int) {
		var out, errw bytes.Buffer
		exit := sweep(files, nil, true, &out, &errw)
		if errw.Len() != 0 {
			t.Fatalf("sweep errors:\n%s", errw.String())
		}
		return out.String(), exit
	}

	got, exit := run()
	if exit != 1 {
		t.Fatalf("exit = %d, want 1 (corpus has findings)", exit)
	}
	again, _ := run()
	if got != again {
		t.Fatalf("sweep output not byte-stable:\n--- first ---\n%s--- second ---\n%s", got, again)
	}

	const golden = "testdata/sweep.golden"
	if os.Getenv("ESP_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with ESP_UPDATE_GOLDEN=1 to create)", err)
	}
	if got != string(want) {
		t.Errorf("sweep output differs from %s (run with ESP_UPDATE_GOLDEN=1 to update)\ngot:\n%s", golden, got)
	}
}
