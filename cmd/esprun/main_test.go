package main

import (
	"reflect"
	"testing"

	esplang "esplang"
	"esplang/internal/vm"
)

func TestDistributeInputsRoundRobin(t *testing.T) {
	got := distributeInputs([]int64{1, 2, 3, 4, 5}, 2)
	want := [][]int64{{1, 3, 5}, {2, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("distributeInputs = %v, want %v", got, want)
	}
	if got := distributeInputs(nil, 3); len(got) != 3 {
		t.Errorf("empty inputs must still produce one (empty) feed per channel, got %v", got)
	}
}

func TestHasExtWriter(t *testing.T) {
	closed := esplang.MustCompile(`
channel c: int
process p { out( c, 1); }
process q { in( c, $v); }
`, esplang.CompileOptions{})
	if hasExtWriter(closed) {
		t.Error("closed program reported an external writer; esprun would block on stdin")
	}
	open := esplang.MustCompile(`
channel inC: int external writer
interface feed( out inC) { Put( $v) }
process p { in( inC, $v); }
`, esplang.CompileOptions{})
	if !hasExtWriter(open) {
		t.Error("external-writer program not detected")
	}
}

// TestBindChannelsRoundRobin runs a two-writer program end to end through
// the same binding path main uses: stdin integers must be dealt
// round-robin across the writer channels in declaration order, as the
// command documentation promises.
func TestBindChannelsRoundRobin(t *testing.T) {
	prog := esplang.MustCompile(`
channel aC: int external writer
channel bC: int external writer
channel outC: int external reader
interface feedA( out aC) { PutA( $v) }
interface feedB( out bC) { PutB( $v) }

process sum {
    $n = 0;
    while (n < 2) {
        in( aC, $x);
        in( bC, $y);
        out( outC, x * 100 + y);
        n = n + 1;
    }
}
`, esplang.CompileOptions{})
	m := prog.Machine(esplang.MachineConfig{})
	collect := &esplang.CollectReader{}
	err := bindChannels(prog, m, []int64{1, 2, 3, 4}, func(string) vm.ExternalReader { return collect })
	if err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res != vm.RunHalted {
		t.Fatalf("run: %v (fault: %v)", res, m.Fault())
	}
	// Round-robin: aC gets 1,3 and bC gets 2,4 — so sum emits 102, 304.
	var got []int64
	for _, v := range collect.Values {
		got = append(got, v.Int())
	}
	if want := []int64{102, 304}; !reflect.DeepEqual(got, want) {
		t.Errorf("outputs %v, want %v (inputs not dealt round-robin)", got, want)
	}
}

// TestBindChannelsRejectsCompositeWriter keeps the stdin contract honest:
// a writer channel whose interface case is not a single scalar cannot be
// fed integers.
func TestBindChannelsRejectsCompositeWriter(t *testing.T) {
	prog := esplang.MustCompile(`
type pair = record of { a: int, b: int }
channel inC: pair external writer
interface feed( out inC) { Put( {$a, $b}) }
process p { in( inC, {$a, $b}); }
`, esplang.CompileOptions{})
	m := prog.Machine(esplang.MachineConfig{})
	err := bindChannels(prog, m, nil, func(string) vm.ExternalReader { return &esplang.CollectReader{} })
	if err == nil {
		t.Error("composite-payload writer channel accepted for stdin feeding")
	}
}
