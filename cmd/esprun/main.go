// Command esprun executes an ESP program on the bundled virtual machine,
// binding its external channels to standard input and output:
//
//   - whitespace-separated integers read from stdin are dealt round-robin
//     to the external-writer channels in declaration order (the first
//     integer to the first channel, the second to the second, wrapping
//     around); every writer channel needs a single one-scalar interface
//     case. Programs with no external-writer channel never touch stdin,
//     so they run without blocking at an interactive terminal;
//   - every external-reader channel prints "<channel>: <value>" lines.
//
// This is the quickest way to try a program:
//
//	echo "1 10 37" | esprun add5.esp
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	esplang "esplang"
	"esplang/internal/gobackend"
	"esplang/internal/ir"
	"esplang/internal/obs"
	"esplang/internal/vm"
)

func main() {
	var (
		maxObjects = flag.Int("max-objects", 4096, "live-object bound (0 = unlimited)")
		maxCycles  = flag.Int64("max-cycles", 0, "total cycle budget; exceeding it is a step-budget fault (0 = unlimited — firmware runs forever)")
		showStats  = flag.Bool("stats", false, "print machine statistics at exit")
		showCycles = flag.Bool("cycles", false, "print consumed cycles at exit")
		tracePath  = flag.String("trace", "", "write a Chrome trace-event JSON file of the run (open in Perfetto or chrome://tracing; timestamps are VM cycles)")
		profile    = flag.Bool("profile", false, "print the hot-line cycle profile and per-event breakdown at exit")
		profileTop = flag.Int("profile-top", 10, "lines shown by -profile")
		engineName = flag.String("engine", "fused", "execution engine: fused (superinstructions), procfused (adds static rendezvous scheduling), compiled (AOT-generated native code in a subprocess; needs a host Go toolchain), or baseline; identical semantics and cycle accounting")
		fuse       = flag.Bool("fuse", false, "run the process-fused engine (shorthand for -engine procfused)")
		noFuse     = flag.Bool("no-fuse", false, "disable static process fusion in the optimizer; every rendezvous stays dynamic")
		flight     = flag.Int("flight", obs.DefaultRingSize, "flight-recorder ring size; the recorder is always on so a fault prints a postmortem of the last events (0 disables it)")
		pmPath     = flag.String("postmortem", "", "write the full flight-recorder dump to this file at exit (obscheck -postmortem validates the format)")
		telemetry  = flag.String("telemetry", "", "serve live telemetry on this address (e.g. 127.0.0.1:9464): /metrics, /statusz, /trace?last=N")
		linger     = flag.Duration("telemetry-linger", 0, "keep the telemetry server up this long after the run ends, so scrapers can collect final state")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: esprun [flags] program.esp  (stdin feeds external inputs)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	engine, err := esplang.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "esprun: %v\n", err)
		os.Exit(2)
	}
	if *fuse {
		engine = esplang.EngineProcFused
	}
	copts := esplang.CompileOptions{}
	if *noFuse {
		passes := esplang.OptAll()
		passes.FuseProcs = false
		copts.Passes = passes
	}
	prog, err := esplang.CompileFile(flag.Arg(0), copts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "esprun: %v\n", err)
		os.Exit(1)
	}
	if engine == esplang.EngineCompiled {
		// The compiled engine executes in a generated subprocess; the
		// in-process observability hooks below cannot attach to it.
		for _, bad := range []struct {
			set  bool
			flag string
		}{{*tracePath != "", "-trace"}, {*profile, "-profile"}, {*telemetry != "", "-telemetry"},
			{*pmPath != "", "-postmortem"}, {*noFuse, "-no-fuse"}} {
			if bad.set {
				fmt.Fprintf(os.Stderr, "esprun: %s is not supported with -engine compiled (the program runs in a generated subprocess)\n", bad.flag)
				os.Exit(2)
			}
		}
		os.Exit(runCompiledEngine(prog, *maxObjects, *maxCycles, *showStats, *showCycles))
	}
	m := prog.Machine(esplang.MachineConfig{MaxLiveObjects: *maxObjects, MaxCycles: *maxCycles, Engine: engine})

	var tr *obs.ChromeTracer
	if *tracePath != "" {
		tr = obs.NewChromeTracer(1) // timestamps are VM cycles
		m.SetTracer(tr)
	}
	var prof *obs.Profiler
	if *profile {
		prof = obs.NewProfiler(flag.Arg(0))
		m.SetProfiler(prof)
	}
	var rec *obs.FlightRecorder
	if *flight > 0 {
		rec = obs.NewFlightRecorder(*flight)
		m.SetRecorder(rec)
	}
	var srv *obs.Server
	if *telemetry != "" {
		reg := obs.NewMetrics()
		m.SetMetrics(reg)
		var err error
		srv, err = obs.NewServer(*telemetry, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "esprun: %v\n", err)
			os.Exit(1)
		}
		srv.SetRecorder(rec)
		progName, eng := flag.Arg(0), engine
		srv.SetStatus(func(w io.Writer) {
			fmt.Fprintf(w, "program: %s\nengine: %v\n", progName, eng)
		})
		fmt.Fprintf(os.Stderr, "telemetry: serving on http://%s\n", srv.Addr())
	}

	// Read all stdin integers up front — but only when the program has an
	// external-writer channel to feed. A program with none would otherwise
	// block forever at an interactive terminal waiting for EOF it never
	// needs.
	var inputs []int64
	if hasExtWriter(prog) {
		sc := bufio.NewScanner(os.Stdin)
		sc.Split(bufio.ScanWords)
		for sc.Scan() {
			v, err := strconv.ParseInt(sc.Text(), 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "esprun: bad input %q\n", sc.Text())
				os.Exit(1)
			}
			inputs = append(inputs, v)
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "esprun: reading stdin: %v\n", err)
			os.Exit(1)
		}
	}
	if err := bindChannels(prog, m, inputs, func(name string) vm.ExternalReader {
		return printReader{name}
	}); err != nil {
		fmt.Fprintf(os.Stderr, "esprun: %v\n", err)
		os.Exit(1)
	}

	res := m.Run()

	// The trace and profile are written even when the run faulted — a
	// fault is exactly when the timeline is most useful.
	if tr != nil {
		f, err := os.Create(*tracePath)
		if err == nil {
			err = tr.Write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "esprun: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: wrote %d events to %s\n", tr.Len(), *tracePath)
	}
	if prof != nil {
		fmt.Fprint(os.Stderr, prof.Report(prog.Source, *profileTop))
		fmt.Fprint(os.Stderr, prof.KindTable())
	}
	if *pmPath != "" && rec != nil {
		if err := os.WriteFile(*pmPath, []byte(m.Postmortem(0)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "esprun: writing postmortem: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "postmortem: wrote %d events to %s\n", len(rec.Snapshot(0)), *pmPath)
	}
	if srv != nil {
		if *linger > 0 {
			time.Sleep(*linger)
		}
		srv.Close()
	}
	if res == vm.RunFault {
		fmt.Fprintf(os.Stderr, "esprun: %v\n", m.Fault())
		if rec != nil {
			// The flight recorder was on: show what the machine was doing
			// in the cycles leading up to the fault.
			fmt.Fprint(os.Stderr, m.Postmortem(obs.PostmortemEvents))
		}
		os.Exit(1)
	}
	if *showCycles {
		fmt.Fprintf(os.Stderr, "cycles: %d\n", m.Cycles)
	}
	if *showStats {
		fmt.Fprintf(os.Stderr, "stats: %s\n", m.Stats)
	}
}

// runCompiledEngine is the -engine compiled path: build the generated
// package (cached), feed the stdin integers round-robin as wire trees,
// and print the collected outputs per reader channel in declaration
// order. Returns the process exit code.
func runCompiledEngine(prog *esplang.Program, maxObjects int, maxCycles int64, showStats, showCycles bool) int {
	if _, err := gobackend.Toolchain(); err != nil {
		fmt.Fprintf(os.Stderr, "esprun: -engine compiled needs a host Go toolchain: %v\n", err)
		fmt.Fprintln(os.Stderr, "esprun: install Go or use -engine fused/procfused/baseline (identical semantics, interpreted)")
		return 1
	}
	runner, err := gobackend.BuildProgram(prog, gobackend.BuildOptions{Name: prog.Name, File: prog.File})
	if err != nil {
		fmt.Fprintf(os.Stderr, "esprun: building generated package: %v\n", err)
		return 1
	}
	var inputs []int64
	if hasExtWriter(prog) {
		sc := bufio.NewScanner(os.Stdin)
		sc.Split(bufio.ScanWords)
		for sc.Scan() {
			v, err := strconv.ParseInt(sc.Text(), 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "esprun: bad input %q\n", sc.Text())
				return 1
			}
			inputs = append(inputs, v)
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "esprun: reading stdin: %v\n", err)
			return 1
		}
	}
	req := &gobackend.Request{
		MaxLive:   maxObjects,
		MaxCycles: maxCycles,
		Writers:   map[string][]gobackend.Item{},
		Readers:   map[string]int{},
	}
	var writers []*ir.Channel
	for _, ch := range prog.IR.Channels {
		switch ch.Ext {
		case ir.ExtWriter:
			if len(ch.Cases) != 1 || len(ch.Cases[0].ParamTypes) != 1 || !ch.Cases[0].ParamTypes[0].IsScalar() {
				fmt.Fprintf(os.Stderr, "esprun: channel %s needs a single one-scalar interface case to read from stdin\n", ch.Name)
				return 1
			}
			writers = append(writers, ch)
		case ir.ExtReader:
			req.Readers[ch.Name] = 0
		}
	}
	for i, feed := range distributeInputs(inputs, len(writers)) {
		items := make([]gobackend.Item, len(feed))
		for j, v := range feed {
			items[j] = gobackend.Item{Case: 0, Val: gobackend.Scalar(v)}
		}
		req.Writers[writers[i].Name] = items
	}
	res, err := runner.Run(req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "esprun: running generated binary: %v\n", err)
		return 1
	}
	for _, ch := range prog.IR.Channels {
		for _, s := range res.Outputs[ch.Name] {
			fmt.Printf("%s: %s\n", ch.Name, format(s))
		}
	}
	if res.Result == vm.RunFault {
		fmt.Fprintf(os.Stderr, "esprun: %v\n", res.Fault)
		return 1
	}
	if showCycles {
		fmt.Fprintf(os.Stderr, "cycles: %d\n", res.Cycles)
	}
	if showStats {
		fmt.Fprintf(os.Stderr, "stats: %s\n", res.Stats)
	}
	return 0
}

// hasExtWriter reports whether the program declares any external-writer
// channel, i.e. whether esprun has anything to feed from stdin.
func hasExtWriter(prog *esplang.Program) bool {
	for _, ch := range prog.IR.Channels {
		if ch.Ext == ir.ExtWriter {
			return true
		}
	}
	return false
}

// distributeInputs deals the stdin integers round-robin over n writer
// channels in declaration order: input i goes to channel i mod n.
func distributeInputs(inputs []int64, n int) [][]int64 {
	feeds := make([][]int64, n)
	for i, v := range inputs {
		feeds[i%n] = append(feeds[i%n], v)
	}
	return feeds
}

// bindChannels attaches stdin-fed queue writers (round-robin over the
// writer channels in declaration order) and newReader-built readers to
// every external channel of the program.
func bindChannels(prog *esplang.Program, m *esplang.Machine, inputs []int64, newReader func(name string) vm.ExternalReader) error {
	var writers []*ir.Channel
	for _, ch := range prog.IR.Channels {
		switch ch.Ext {
		case ir.ExtWriter:
			if len(ch.Cases) != 1 || len(ch.Cases[0].ParamTypes) != 1 || !ch.Cases[0].ParamTypes[0].IsScalar() {
				return fmt.Errorf("channel %s needs a single one-scalar interface case to read from stdin", ch.Name)
			}
			writers = append(writers, ch)
		case ir.ExtReader:
			if err := m.BindReader(ch.Name, newReader(ch.Name)); err != nil {
				return err
			}
		}
	}
	if len(writers) == 0 {
		return nil
	}
	for i, feed := range distributeInputs(inputs, len(writers)) {
		q := &esplang.QueueWriter{}
		for _, v := range feed {
			v := v
			q.Push(0, func(*esplang.Machine) esplang.Value { return esplang.IntVal(v) })
		}
		if err := m.BindWriter(writers[i].Name, q); err != nil {
			return err
		}
	}
	return nil
}

// printReader prints every received value.
type printReader struct{ name string }

func (printReader) Ready(*vm.Machine) bool { return true }

func (r printReader) Put(_ *vm.Machine, v vm.Value) {
	fmt.Printf("%s: %s\n", r.name, format(vm.Snap(v)))
}

func format(s vm.Snapshot) string {
	if s.Obj == nil {
		return fmt.Sprintf("%d", s.Scalar)
	}
	out := "{"
	for i := range s.Obj.Elems {
		if i > 0 {
			out += ", "
		}
		out += format(s.Field(i))
	}
	return out + "}"
}
