// Command esprun executes an ESP program on the bundled virtual machine,
// binding its external channels to standard input and output:
//
//   - every external-writer channel with a single scalar-parameter
//     interface case reads whitespace-separated integers from stdin;
//   - every external-reader channel prints "<channel>: <value>" lines.
//
// This is the quickest way to try a program:
//
//	echo "1 10 37" | esprun add5.esp
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	esplang "esplang"
	"esplang/internal/ir"
	"esplang/internal/obs"
	"esplang/internal/vm"
)

func main() {
	var (
		maxObjects = flag.Int("max-objects", 4096, "live-object bound (0 = unlimited)")
		showStats  = flag.Bool("stats", false, "print machine statistics at exit")
		showCycles = flag.Bool("cycles", false, "print consumed cycles at exit")
		tracePath  = flag.String("trace", "", "write a Chrome trace-event JSON file of the run (open in Perfetto or chrome://tracing; timestamps are VM cycles)")
		profile    = flag.Bool("profile", false, "print the hot-line cycle profile and per-event breakdown at exit")
		profileTop = flag.Int("profile-top", 10, "lines shown by -profile")
		engineName = flag.String("engine", "fused", "execution engine: fused (superinstructions), procfused (adds static rendezvous scheduling), or baseline; identical semantics and cycle accounting")
		fuse       = flag.Bool("fuse", false, "run the process-fused engine (shorthand for -engine procfused)")
		noFuse     = flag.Bool("no-fuse", false, "disable static process fusion in the optimizer; every rendezvous stays dynamic")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: esprun [flags] program.esp  (stdin feeds external inputs)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	engine, err := esplang.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "esprun: %v\n", err)
		os.Exit(2)
	}
	if *fuse {
		engine = esplang.EngineProcFused
	}
	copts := esplang.CompileOptions{}
	if *noFuse {
		passes := esplang.OptAll()
		passes.FuseProcs = false
		copts.Passes = passes
	}
	prog, err := esplang.CompileFile(flag.Arg(0), copts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "esprun: %v\n", err)
		os.Exit(1)
	}
	m := prog.Machine(esplang.MachineConfig{MaxLiveObjects: *maxObjects, Engine: engine})

	var tr *obs.ChromeTracer
	if *tracePath != "" {
		tr = obs.NewChromeTracer(1) // timestamps are VM cycles
		m.SetTracer(tr)
	}
	var prof *obs.Profiler
	if *profile {
		prof = obs.NewProfiler(flag.Arg(0))
		m.SetProfiler(prof)
	}

	// Read all stdin integers up front; feed them round-robin to the
	// external writer channels in declaration order.
	var inputs []int64
	sc := bufio.NewScanner(os.Stdin)
	sc.Split(bufio.ScanWords)
	for sc.Scan() {
		v, err := strconv.ParseInt(sc.Text(), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "esprun: bad input %q\n", sc.Text())
			os.Exit(1)
		}
		inputs = append(inputs, v)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "esprun: reading stdin: %v\n", err)
		os.Exit(1)
	}

	bound := false
	for _, ch := range prog.IR.Channels {
		switch ch.Ext {
		case ir.ExtWriter:
			if len(ch.Cases) != 1 || len(ch.Cases[0].ParamTypes) != 1 || !ch.Cases[0].ParamTypes[0].IsScalar() {
				fmt.Fprintf(os.Stderr, "esprun: channel %s needs a single one-scalar interface case to read from stdin\n", ch.Name)
				os.Exit(1)
			}
			q := &esplang.QueueWriter{}
			for _, v := range inputs {
				v := v
				q.Push(0, func(*esplang.Machine) esplang.Value { return esplang.IntVal(v) })
			}
			inputs = nil // first writer channel consumes stdin
			if err := m.BindWriter(ch.Name, q); err != nil {
				fmt.Fprintf(os.Stderr, "esprun: %v\n", err)
				os.Exit(1)
			}
			bound = true
		case ir.ExtReader:
			name := ch.Name
			if err := m.BindReader(ch.Name, printReader{name}); err != nil {
				fmt.Fprintf(os.Stderr, "esprun: %v\n", err)
				os.Exit(1)
			}
		}
	}
	_ = bound

	res := m.Run()

	// The trace and profile are written even when the run faulted — a
	// fault is exactly when the timeline is most useful.
	if tr != nil {
		f, err := os.Create(*tracePath)
		if err == nil {
			err = tr.Write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "esprun: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: wrote %d events to %s\n", tr.Len(), *tracePath)
	}
	if prof != nil {
		fmt.Fprint(os.Stderr, prof.Report(prog.Source, *profileTop))
		fmt.Fprint(os.Stderr, prof.KindTable())
	}
	if res == vm.RunFault {
		fmt.Fprintf(os.Stderr, "esprun: %v\n", m.Fault())
		os.Exit(1)
	}
	if *showCycles {
		fmt.Fprintf(os.Stderr, "cycles: %d\n", m.Cycles)
	}
	if *showStats {
		fmt.Fprintf(os.Stderr, "stats: %s\n", m.Stats)
	}
}

// printReader prints every received value.
type printReader struct{ name string }

func (printReader) Ready(*vm.Machine) bool { return true }

func (r printReader) Put(_ *vm.Machine, v vm.Value) {
	fmt.Printf("%s: %s\n", r.name, format(vm.Snap(v)))
}

func format(s vm.Snapshot) string {
	if s.Obj == nil {
		return fmt.Sprintf("%d", s.Scalar)
	}
	out := "{"
	for i := range s.Obj.Elems {
		if i > 0 {
			out += ", "
		}
		out += format(s.Field(i))
	}
	return out + "}"
}
