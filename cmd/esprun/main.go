// Command esprun executes an ESP program on the bundled virtual machine,
// binding its external channels to standard input and output:
//
//   - every external-writer channel with a single scalar-parameter
//     interface case reads whitespace-separated integers from stdin;
//   - every external-reader channel prints "<channel>: <value>" lines.
//
// This is the quickest way to try a program:
//
//	echo "1 10 37" | esprun add5.esp
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	esplang "esplang"
	"esplang/internal/ir"
	"esplang/internal/vm"
)

func main() {
	var (
		maxObjects = flag.Int("max-objects", 4096, "live-object bound (0 = unlimited)")
		showStats  = flag.Bool("stats", false, "print machine statistics at exit")
		showCycles = flag.Bool("cycles", false, "print consumed cycles at exit")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: esprun [flags] program.esp  (stdin feeds external inputs)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	prog, err := esplang.CompileFile(flag.Arg(0), esplang.CompileOptions{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "esprun: %v\n", err)
		os.Exit(1)
	}
	m := prog.Machine(esplang.MachineConfig{MaxLiveObjects: *maxObjects})

	// Read all stdin integers up front; feed them round-robin to the
	// external writer channels in declaration order.
	var inputs []int64
	sc := bufio.NewScanner(os.Stdin)
	sc.Split(bufio.ScanWords)
	for sc.Scan() {
		v, err := strconv.ParseInt(sc.Text(), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "esprun: bad input %q\n", sc.Text())
			os.Exit(1)
		}
		inputs = append(inputs, v)
	}

	bound := false
	for _, ch := range prog.IR.Channels {
		switch ch.Ext {
		case ir.ExtWriter:
			if len(ch.Cases) != 1 || len(ch.Cases[0].ParamTypes) != 1 || !ch.Cases[0].ParamTypes[0].IsScalar() {
				fmt.Fprintf(os.Stderr, "esprun: channel %s needs a single one-scalar interface case to read from stdin\n", ch.Name)
				os.Exit(1)
			}
			q := &esplang.QueueWriter{}
			for _, v := range inputs {
				v := v
				q.Push(0, func(*esplang.Machine) esplang.Value { return esplang.IntVal(v) })
			}
			inputs = nil // first writer channel consumes stdin
			if err := m.BindWriter(ch.Name, q); err != nil {
				fmt.Fprintf(os.Stderr, "esprun: %v\n", err)
				os.Exit(1)
			}
			bound = true
		case ir.ExtReader:
			name := ch.Name
			if err := m.BindReader(ch.Name, printReader{name}); err != nil {
				fmt.Fprintf(os.Stderr, "esprun: %v\n", err)
				os.Exit(1)
			}
		}
	}
	_ = bound

	res := m.Run()
	if res == vm.RunFault {
		fmt.Fprintf(os.Stderr, "esprun: %v\n", m.Fault())
		os.Exit(1)
	}
	if *showCycles {
		fmt.Fprintf(os.Stderr, "cycles: %d\n", m.Cycles)
	}
	if *showStats {
		fmt.Fprintf(os.Stderr, "stats: %+v\n", m.Stats)
	}
}

// printReader prints every received value.
type printReader struct{ name string }

func (printReader) Ready(*vm.Machine) bool { return true }

func (r printReader) Put(_ *vm.Machine, v vm.Value) {
	fmt.Printf("%s: %s\n", r.name, format(vm.Snap(v)))
}

func format(s vm.Snapshot) string {
	if s.Obj == nil {
		return fmt.Sprintf("%d", s.Scalar)
	}
	out := "{"
	for i := range s.Obj.Elems {
		if i > 0 {
			out += ", "
		}
		out += format(s.Field(i))
	}
	return out + "}"
}
