package vm_test

import (
	"testing"

	"esplang/internal/vm"
)

func TestAltAllGuardsFalseBlocksForever(t *testing.T) {
	// Guards are evaluated once at alt entry (§4.2); with every guard
	// false the process is permanently blocked — idle at run time,
	// deadlock under the checker.
	src := `
channel a: int
channel b: int
process p {
    $g = false;
    alt {
        case( g, in( a, $x)) { skip; }
        case( g, out( b, 1)) { skip; }
    }
}
process q { out( a, 5); }
`
	m := newMachine(t, src, vm.Config{})
	if res := m.Run(); res != vm.RunIdle {
		t.Fatalf("result %v, want idle (fault: %v)", res, m.Fault())
	}
	mm := newMachine(t, src, vm.Config{Manual: true})
	mm.Settle()
	if !mm.Deadlocked() {
		t.Error("all-guards-false alt not reported as deadlock")
	}
}

func TestDynamicEqualityDispatch(t *testing.T) {
	// A pattern testing a runtime variable: the receiver takes only the
	// message whose first field equals its expected counter — others stay
	// queued with their senders.
	m := newMachine(t, `
type msgT = record of { seq: int, v: int }
channel c: msgT
channel outC: int external reader
process s1 { out( c, { 2, 200}); }
process s2 { out( c, { 1, 100}); }
process s3 { out( c, { 3, 300}); }
process r {
    $expect = 1;
    while (expect <= 3) {
        in( c, { expect, $v});
        out( outC, v);
        expect = expect + 1;
    }
}
`, vm.Config{})
	out := &vm.CollectReader{}
	if err := m.BindReader("outC", out); err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res != vm.RunHalted {
		t.Fatalf("result %v (fault: %v)", res, m.Fault())
	}
	want := []int64{100, 200, 300}
	for i, w := range want {
		if out.Values[i].Int() != w {
			t.Errorf("output %d = %d, want %d (dynamic dispatch order)", i, out.Values[i].Int(), w)
		}
	}
}

func TestNegativeArithmetic(t *testing.T) {
	m := newMachine(t, `
channel outC: int external reader
process p {
    $a = -7;
    out( outC, -a);
    out( outC, a % 3);
    out( outC, a / 2);
    out( outC, 0 - 5 * -1);
}
`, vm.Config{})
	out := &vm.CollectReader{}
	if err := m.BindReader("outC", out); err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res != vm.RunHalted {
		t.Fatalf("result %v (fault: %v)", res, m.Fault())
	}
	// Go semantics for / and % on negatives (truncated division).
	want := []int64{7, -1, -3, 5}
	for i, w := range want {
		if out.Values[i].Int() != w {
			t.Errorf("output %d = %d, want %d", i, out.Values[i].Int(), w)
		}
	}
}

func TestExternalReaderBackpressure(t *testing.T) {
	// A reader that accepts only 2 values: the producer blocks on the
	// third send and the machine goes idle mid-stream.
	m := newMachine(t, `
channel outC: int external reader
process p {
    $i = 0;
    while (i < 5) {
        out( outC, i);
        i = i + 1;
    }
}
`, vm.Config{})
	out := &vm.CollectReader{Limit: 2}
	if err := m.BindReader("outC", out); err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res != vm.RunIdle {
		t.Fatalf("result %v, want idle", res)
	}
	if len(out.Values) != 2 {
		t.Fatalf("reader took %d values, limit was 2", len(out.Values))
	}
	// Lifting the limit and re-running drains the rest.
	out.Limit = 0
	if res := m.Run(); res != vm.RunHalted {
		t.Fatalf("resumed run: %v (fault: %v)", res, m.Fault())
	}
	if len(out.Values) != 5 {
		t.Errorf("total values = %d, want 5", len(out.Values))
	}
}

func TestWaitQueueModeAltCleanup(t *testing.T) {
	// In wait-queue mode, an alt blocked on several channels must be
	// removed from every queue when one arm fires; the follow-up traffic
	// would otherwise pair against stale entries.
	m := newMachine(t, `
channel a: int
channel b: int
channel outC: int external reader
process chooser {
    $n = 0;
    while (n < 4) {
        alt {
            case( in( a, $x)) { out( outC, x); }
            case( in( b, $y)) { out( outC, y + 100); }
        }
        n = n + 1;
    }
}
process sa { out( a, 1); out( a, 2); }
process sb { out( b, 3); out( b, 4); }
`, vm.Config{UseWaitQueues: true})
	out := &vm.CollectReader{}
	if err := m.BindReader("outC", out); err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res != vm.RunHalted {
		t.Fatalf("result %v (fault: %v)", res, m.Fault())
	}
	if len(out.Values) != 4 {
		t.Fatalf("got %d outputs, want 4", len(out.Values))
	}
	if m.Stats.QueueOps == 0 {
		t.Error("queue mode charged no queue operations")
	}
	sum := int64(0)
	for _, v := range out.Values {
		sum += v.Int()
	}
	if sum != 1+2+103+104 {
		t.Errorf("outputs %v (sum %d), want values 1,2,103,104 in some order", out.Values, sum)
	}
}

func TestSelfInLocalPattern(t *testing.T) {
	// '@' in a local destructuring pattern asserts the field equals the
	// process id (process ids are assigned in declaration order).
	m := newMachine(t, `
type r = record of { pid: int, v: int }
channel outC: int external reader
process p {
    $x: r = { 0, 42};
    { @, $v} = x;
    out( outC, v);
    unlink( x);
}
`, vm.Config{})
	out := &vm.CollectReader{}
	if err := m.BindReader("outC", out); err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res != vm.RunHalted {
		t.Fatalf("result %v (fault: %v)", res, m.Fault())
	}
	if out.Values[0].Int() != 42 {
		t.Errorf("got %d", out.Values[0].Int())
	}
}

func TestLocalPatternMismatchFaults(t *testing.T) {
	m := newMachine(t, `
type r = record of { tag: int, v: int }
process p {
    $x: r = { 1, 42};
    { 2, $v} = x; // tag test fails
    unlink( x);
}
`, vm.Config{})
	if res := m.Run(); res != vm.RunFault {
		t.Fatalf("result %v, want fault", res)
	}
	if m.Fault().Kind != vm.FaultAssert {
		t.Errorf("fault %v, want assertion (pattern match)", m.Fault().Kind)
	}
}

func TestUnionOfRecordRefcounts(t *testing.T) {
	// A union wrapping a record wrapping an array: the nested transfer
	// keeps exactly the receiver's references alive.
	m := newMachine(t, `
type dataT = array of int
type pktT = record of { n: int, data: dataT }
type envT = union of { pkt: pktT, nop: int }
channel c: envT
channel done: int external reader
process w {
    $k = 0;
    while (k < 10) {
        $d: dataT = { 4 -> k};
        out( c, { pkt |> { k, d}});
        unlink( d);
        out( c, { nop |> 0});
        k = k + 1;
    }
}
process rPkt {
    while (true) {
        in( c, { pkt |> { $n, $data}});
        assert( data[0] == n);
        unlink( data);
    }
}
process rNop {
    $seen = 0;
    while (seen < 10) {
        in( c, { nop |> $z});
        seen = seen + 1;
    }
    out( done, seen);
}
`, vm.Config{MaxLiveObjects: 24})
	d := &vm.CollectReader{}
	if err := m.BindReader("done", d); err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res != vm.RunIdle {
		t.Fatalf("result %v (fault: %v)", res, m.Fault())
	}
	if len(d.Values) != 1 || d.Values[0].Int() != 10 {
		t.Fatalf("done = %v", d.Values)
	}
	if m.Heap().Live() != 0 {
		t.Errorf("heap live = %d, want 0", m.Heap().Live())
	}
}

func TestStepBudgetInsideAltBody(t *testing.T) {
	m := newMachine(t, `
channel c: int
process p {
    alt {
        case( in( c, $x)) {
            while (true) { skip; }
        }
    }
}
process q { out( c, 1); }
`, vm.Config{StepBudget: 500})
	if res := m.Run(); res != vm.RunFault {
		t.Fatalf("result %v, want step-budget fault", res)
	}
	if m.Fault().Kind != vm.FaultStep {
		t.Errorf("fault %v", m.Fault().Kind)
	}
}

func TestManyProcessesManyChannels(t *testing.T) {
	// A 10-stage pipeline: stresses scheduling and wait bookkeeping
	// (also the 64-bit wait masks with >32 channels would go here if the
	// VM used fixed-width masks; it scans descriptors instead).
	src := `
channel c0: int external writer
interface i( out c0) { Put( $v) }
channel outC: int external reader
`
	for i := 0; i < 10; i++ {
		src += "\nchannel d" + string(rune('0'+i)) + ": int"
	}
	src += "\nprocess s0 { while (true) { in( c0, $v); out( d0, v + 1); } }"
	for i := 1; i < 10; i++ {
		a := string(rune('0' + i - 1))
		b := string(rune('0' + i))
		src += "\nprocess s" + b + " { while (true) { in( d" + a + ", $v); out( d" + b + ", v + 1); } }"
	}
	src += "\nprocess sink { while (true) { in( d9, $v); out( outC, v); } }"

	m := newMachine(t, src, vm.Config{})
	in := &vm.QueueWriter{}
	out := &vm.CollectReader{}
	if err := m.BindWriter("c0", in); err != nil {
		t.Fatal(err)
	}
	if err := m.BindReader("outC", out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		v := int64(i * 100)
		in.Push(0, func(*vm.Machine) vm.Value { return vm.IntVal(v) })
	}
	if res := m.Run(); res != vm.RunIdle {
		t.Fatalf("result %v (fault: %v)", res, m.Fault())
	}
	if len(out.Values) != 5 {
		t.Fatalf("got %d outputs", len(out.Values))
	}
	for i, s := range out.Values {
		if s.Int() != int64(i*100+10) {
			t.Errorf("output %d = %d, want %d", i, s.Int(), i*100+10)
		}
	}
}
