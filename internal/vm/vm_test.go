package vm_test

import (
	"strings"
	"testing"

	"esplang/internal/check"
	"esplang/internal/compile"
	"esplang/internal/ir"
	"esplang/internal/parser"
	"esplang/internal/vm"
)

// compileSrc parses, checks, and lowers an ESP program.
func compileSrc(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := parser.Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := check.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return compile.Program(prog, info)
}

func newMachine(t *testing.T, src string, cfg vm.Config) *vm.Machine {
	t.Helper()
	return vm.New(compileSrc(t, src), cfg)
}

const add5Src = `
channel inC: int external writer
channel outC: int external reader
interface inI( out inC) { Put( $v) }
process add5 {
    while (true) {
        in( inC, $i);
        out( outC, i+5);
    }
}
`

func TestAdd5External(t *testing.T) {
	m := newMachine(t, add5Src, vm.Config{})
	in := &vm.QueueWriter{}
	outv := &vm.CollectReader{}
	if err := m.BindWriter("inC", in); err != nil {
		t.Fatal(err)
	}
	if err := m.BindReader("outC", outv); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{1, 10, 37} {
		v := v
		in.Push(0, func(_ *vm.Machine) vm.Value { return vm.IntVal(v) })
	}
	res := m.Run()
	if res != vm.RunIdle {
		t.Fatalf("run result %v (fault: %v)", res, m.Fault())
	}
	want := []int64{6, 15, 42}
	if len(outv.Values) != len(want) {
		t.Fatalf("got %d outputs, want %d", len(outv.Values), len(want))
	}
	for i, w := range want {
		if outv.Values[i].Int() != w {
			t.Errorf("output %d = %d, want %d", i, outv.Values[i].Int(), w)
		}
	}
}

func TestInternalRendezvous(t *testing.T) {
	m := newMachine(t, `
channel c: int
channel outC: int external reader
process producer {
    $i = 0;
    while (i < 5) {
        out( c, i*i);
        i = i + 1;
    }
}
process consumer {
    $n = 0;
    while (n < 5) {
        in( c, $v);
        out( outC, v);
        n = n + 1;
    }
}
`, vm.Config{})
	outv := &vm.CollectReader{}
	if err := m.BindReader("outC", outv); err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res != vm.RunHalted {
		t.Fatalf("run result %v (fault: %v)", res, m.Fault())
	}
	want := []int64{0, 1, 4, 9, 16}
	for i, w := range want {
		if outv.Values[i].Int() != w {
			t.Errorf("output %d = %d, want %d", i, outv.Values[i].Int(), w)
		}
	}
}

func TestFifoAltWithGuards(t *testing.T) {
	// The paper's §4.2 FIFO buffer between a fast producer and a consumer.
	m := newMachine(t, `
const CAP = 4;
channel chan1: int external writer
channel chan2: int external reader
interface i1( out chan1) { Msg( $v) }
process fifo {
    $q: #array of int = #{ CAP -> 0};
    $hd = 0;
    $tl = 0;
    while (true) {
        alt {
            case( !(tl - hd == CAP), in( chan1, $v)) { q[tl % CAP] = v; tl = tl + 1; }
            case( !(tl == hd), out( chan2, q[hd % CAP])) { hd = hd + 1; }
        }
    }
}
`, vm.Config{})
	in := &vm.QueueWriter{}
	outv := &vm.CollectReader{}
	if err := m.BindWriter("chan1", in); err != nil {
		t.Fatal(err)
	}
	if err := m.BindReader("chan2", outv); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		v := i * 7
		in.Push(0, func(_ *vm.Machine) vm.Value { return vm.IntVal(v) })
	}
	if res := m.Run(); res != vm.RunIdle {
		t.Fatalf("run result %v (fault: %v)", res, m.Fault())
	}
	if len(outv.Values) != 10 {
		t.Fatalf("got %d outputs, want 10", len(outv.Values))
	}
	for i, s := range outv.Values {
		if s.Int() != int64(i*7) {
			t.Errorf("output %d = %d, want %d (FIFO order violated)", i, s.Int(), i*7)
		}
	}
}

const pageTableSrc = `
type dataT = array of int
type sendT = record of { dest: int, vAddr: int, size: int}
type updateT = record of { vAddr: int, pAddr: int}
type userT = union of { send: sendT, update: updateT}

const TABLE_SIZE = 16;

channel ptReqC: record of { ret: int, vAddr: int}
channel ptReplyC: record of { ret: int, pAddr: int}
channel dmaReqC: record of { ret: int, pAddr: int, size: int}
channel dmaDataC: record of { ret: int, data: dataT}
channel SM2C: record of { dest: int, data: dataT} external reader
channel userReqC: userT external writer

interface userReq( out userReqC) {
    Send( { send |> { $dest, $vAddr, $size}}),
    Update( { update |> { $vAddr, $pAddr}}),
}

process pageTable {
    $table: #array of int = #{ TABLE_SIZE -> 0, ... };
    while (true) {
        alt {
            case( in( ptReqC, { $ret, $vAddr})) {
                out( ptReplyC, { ret, table[vAddr]});
            }
            case( in( userReqC, { update |> { $vAddr, $pAddr}})) {
                table[vAddr] = pAddr;
            }
        }
    }
}

process dma {
    while (true) {
        in( dmaReqC, { $ret, $pAddr, $size});
        $data: dataT = { size -> pAddr};
        out( dmaDataC, { ret, data});
        unlink( data);
    }
}

process SM1 {
    while (true) {
        in( userReqC, { send |> { $dest, $vAddr, $size}});
        out( ptReqC, { @, vAddr});
        in( ptReplyC, { @, $pAddr});
        out( dmaReqC, { @, pAddr, size});
        in( dmaDataC, { @, $sendData});
        out( SM2C, { dest, sendData});
        unlink( sendData);
    }
}
`

func TestAppendixB(t *testing.T) {
	m := newMachine(t, pageTableSrc, vm.Config{MaxLiveObjects: 64})
	user := &vm.QueueWriter{}
	net := &vm.CollectReader{}
	if err := m.BindWriter("userReqC", user); err != nil {
		t.Fatal(err)
	}
	if err := m.BindReader("SM2C", net); err != nil {
		t.Fatal(err)
	}

	// Update the page table: vAddr 3 -> pAddr 777, then send from vAddr 3.
	user.Push(1, func(mm *vm.Machine) vm.Value {
		updateT := mm.Prog.ChannelByName("userReqC").Elem.Fields[1].Type
		userT := mm.Prog.ChannelByName("userReqC").Elem
		rec := mm.NewRecordV(updateT, vm.IntVal(3), vm.IntVal(777))
		return mm.NewUnionV(userT, 1, rec)
	})
	user.Push(0, func(mm *vm.Machine) vm.Value {
		sendT := mm.Prog.ChannelByName("userReqC").Elem.Fields[0].Type
		userT := mm.Prog.ChannelByName("userReqC").Elem
		rec := mm.NewRecordV(sendT, vm.IntVal(9), vm.IntVal(3), vm.IntVal(4))
		return mm.NewUnionV(userT, 0, rec)
	})

	if res := m.Run(); res != vm.RunIdle {
		t.Fatalf("run result %v (fault: %v)", res, m.Fault())
	}
	if len(net.Values) != 1 {
		t.Fatalf("got %d network messages, want 1", len(net.Values))
	}
	msg := net.Values[0]
	if msg.Field(0).Int() != 9 {
		t.Errorf("dest = %d, want 9", msg.Field(0).Int())
	}
	data := msg.Field(1)
	if data.Obj == nil || len(data.Obj.Elems) != 4 {
		t.Fatalf("data = %+v, want 4-element array", data.Obj)
	}
	// dma fills the array with pAddr = translated address 777.
	for i := 0; i < 4; i++ {
		if data.Field(i).Int() != 777 {
			t.Errorf("data[%d] = %d, want 777 (address translation failed)", i, data.Field(i).Int())
		}
	}
	// No leaks: everything allocated during the exchange must be freed.
	if live := m.Heap().Live(); live != 1 {
		// pageTable's table array stays live (1 object).
		t.Errorf("heap live = %d, want 1 (pageTable's table)", live)
	}
}

func TestUnionDispatchAcrossProcesses(t *testing.T) {
	// The §4.2 dispatch example: process C's out is routed by pattern.
	m := newMachine(t, `
type userT = union of { send: int, update: int}
channel c: userT
channel aOut: int external reader
channel bOut: int external reader
process a {
    while (true) { in( c, { send |> $v}); out( aOut, v); }
}
process b {
    while (true) { in( c, { update |> $v}); out( bOut, v); }
}
process w {
    out( c, { send |> 1});
    out( c, { update |> 2});
    out( c, { send |> 3});
}
`, vm.Config{})
	av := &vm.CollectReader{}
	bv := &vm.CollectReader{}
	if err := m.BindReader("aOut", av); err != nil {
		t.Fatal(err)
	}
	if err := m.BindReader("bOut", bv); err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res != vm.RunIdle {
		t.Fatalf("run result %v (fault: %v)", res, m.Fault())
	}
	if len(av.Values) != 2 || av.Values[0].Int() != 1 || av.Values[1].Int() != 3 {
		t.Errorf("process a received %v, want [1 3]", av.Values)
	}
	if len(bv.Values) != 1 || bv.Values[0].Int() != 2 {
		t.Errorf("process b received %v, want [2]", bv.Values)
	}
}

func TestSelfDispatch(t *testing.T) {
	// The ret-field convention: two clients of one server, replies routed
	// by @.
	m := newMachine(t, `
type reqT = record of { ret: int, v: int}
type repT = record of { ret: int, v: int}
channel req: reqT
channel rep: repT
channel out1: int external reader
channel out2: int external reader
process server {
    while (true) {
        in( req, { $ret, $v});
        out( rep, { ret, v*10});
    }
}
process client1 {
    out( req, { @, 1});
    in( rep, { @, $r});
    out( out1, r);
}
process client2 {
    out( req, { @, 2});
    in( rep, { @, $r});
    out( out2, r);
}
`, vm.Config{})
	o1 := &vm.CollectReader{}
	o2 := &vm.CollectReader{}
	if err := m.BindReader("out1", o1); err != nil {
		t.Fatal(err)
	}
	if err := m.BindReader("out2", o2); err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res != vm.RunIdle {
		t.Fatalf("run result %v (fault: %v)", res, m.Fault())
	}
	if len(o1.Values) != 1 || o1.Values[0].Int() != 10 {
		t.Errorf("client1 got %v, want [10]", o1.Values)
	}
	if len(o2.Values) != 1 || o2.Values[0].Int() != 20 {
		t.Errorf("client2 got %v, want [20]", o2.Values)
	}
}

func TestLocalPatternMatch(t *testing.T) {
	m := newMachine(t, `
type sendT = record of { dest: int, vAddr: int, size: int}
type userT = union of { send: sendT}
channel outC: int external reader
process p {
    $ur2: userT = { send |> { 5, 10000, 512}};
    { send |> { $dest, $vAddr, $size}} = ur2;
    out( outC, dest + vAddr + size);
    unlink( ur2);
}
`, vm.Config{MaxLiveObjects: 8})
	o := &vm.CollectReader{}
	if err := m.BindReader("outC", o); err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res != vm.RunHalted {
		t.Fatalf("run result %v (fault: %v)", res, m.Fault())
	}
	if o.Values[0].Int() != 10517 {
		t.Errorf("got %d, want 10517", o.Values[0].Int())
	}
	if live := m.Heap().Live(); live != 0 {
		t.Errorf("heap live = %d, want 0", live)
	}
}

func TestAssertFault(t *testing.T) {
	m := newMachine(t, `process p { $x = 3; assert( x == 4); }`, vm.Config{})
	if res := m.Run(); res != vm.RunFault {
		t.Fatalf("run result %v, want fault", res)
	}
	f := m.Fault()
	if f.Kind != vm.FaultAssert {
		t.Errorf("fault kind %v, want assert", f.Kind)
	}
	if !strings.Contains(f.Error(), "x == 4") {
		t.Errorf("fault %q does not mention the expression", f.Error())
	}
}

func TestArithmeticFaults(t *testing.T) {
	tests := []struct {
		src  string
		kind vm.FaultKind
	}{
		{`process p { $x = 0; $y = 5 / x; }`, vm.FaultDivByZero},
		{`process p { $x = 0; $y = 5 % x; }`, vm.FaultDivByZero},
		{`process p { $a: array of int = { 3 -> 0}; $y = a[5]; }`, vm.FaultIndexOOB},
		{`process p { $a: array of int = { 3 -> 0}; $y = a[0-1]; }`, vm.FaultIndexOOB},
	}
	for _, tt := range tests {
		m := newMachine(t, tt.src, vm.Config{})
		if res := m.Run(); res != vm.RunFault {
			t.Errorf("%q: result %v, want fault", tt.src, res)
			continue
		}
		if m.Fault().Kind != tt.kind {
			t.Errorf("%q: fault %v, want %v", tt.src, m.Fault().Kind, tt.kind)
		}
	}
}

func TestUseAfterFreeDetected(t *testing.T) {
	m := newMachine(t, `
process p {
    $a: #array of int = #{ 4 -> 0};
    unlink( a);
    a[0] = 1;
}
`, vm.Config{})
	if res := m.Run(); res != vm.RunFault {
		t.Fatalf("result %v, want fault", res)
	}
	if m.Fault().Kind != vm.FaultUseAfterFree {
		t.Errorf("fault %v, want use-after-free", m.Fault().Kind)
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	m := newMachine(t, `
process p {
    $a: #array of int = #{ 4 -> 0};
    unlink( a);
    unlink( a);
}
`, vm.Config{})
	if res := m.Run(); res != vm.RunFault {
		t.Fatalf("result %v, want fault", res)
	}
	if m.Fault().Kind != vm.FaultDoubleFree {
		t.Errorf("fault %v, want double free", m.Fault().Kind)
	}
}

func TestLeakDetectedViaObjectBound(t *testing.T) {
	// The §5.2 leak detector: a loop that allocates without unlinking runs
	// out of objectIds.
	m := newMachine(t, `
channel c: int external writer
interface i( out c) { Tick( $v) }
process p {
    while (true) {
        in( c, $v);
        $a: array of int = { 4 -> v};
    }
}
`, vm.Config{MaxLiveObjects: 8})
	in := &vm.QueueWriter{}
	if err := m.BindWriter("c", in); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		in.Push(0, func(_ *vm.Machine) vm.Value { return vm.IntVal(1) })
	}
	if res := m.Run(); res != vm.RunFault {
		t.Fatalf("result %v, want fault (leak)", res)
	}
	if m.Fault().Kind != vm.FaultOutOfObjects {
		t.Errorf("fault %v, want out-of-objects", m.Fault().Kind)
	}
}

func TestRefcountTransferNoLeak(t *testing.T) {
	// A ref payload bounced through two processes must end with exactly
	// the receiver's reference.
	m := newMachine(t, `
type dataT = array of int
type msgT = record of { tag: int, data: dataT}
channel c: msgT
channel done: int external reader
process producer {
    $n = 0;
    while (n < 50) {
        $d: dataT = { 8 -> n};
        out( c, { n, d});
        unlink( d);
        n = n + 1;
    }
}
process consumer {
    $n = 0;
    while (n < 50) {
        in( c, { $tag, $data});
        assert( data[0] == tag);
        unlink( data);
        n = n + 1;
    }
    out( done, 1);
}
`, vm.Config{MaxLiveObjects: 16})
	d := &vm.CollectReader{}
	if err := m.BindReader("done", d); err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res != vm.RunHalted {
		t.Fatalf("result %v (fault: %v)", res, m.Fault())
	}
	if m.Heap().Live() != 0 {
		t.Errorf("heap live = %d, want 0", m.Heap().Live())
	}
}

func TestWholeValueBindingSharing(t *testing.T) {
	// Sender keeps its variable after sending; receiver binds the whole
	// value. Both unlink; no leak, no double free.
	m := newMachine(t, `
type dataT = array of int
channel c: dataT
channel done: int external reader
process sender {
    $d: dataT = { 4 -> 42};
    out( c, d);
    assert( d[0] == 42);
    unlink( d);
}
process receiver {
    in( c, $x);
    assert( x[3] == 42);
    unlink( x);
    out( done, 1);
}
`, vm.Config{MaxLiveObjects: 8})
	d := &vm.CollectReader{}
	if err := m.BindReader("done", d); err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res != vm.RunHalted {
		t.Fatalf("result %v (fault: %v)", res, m.Fault())
	}
	if m.Heap().Live() != 0 {
		t.Errorf("heap live = %d, want 0", m.Heap().Live())
	}
}

func TestBreakAndNestedLoops(t *testing.T) {
	m := newMachine(t, `
channel outC: int external reader
process p {
    $total = 0;
    $i = 0;
    while (true) {
        if (i == 5) { break; }
        $j = 0;
        while (true) {
            if (j == 3) { break; }
            total = total + 1;
            j = j + 1;
        }
        i = i + 1;
    }
    out( outC, total);
}
`, vm.Config{})
	o := &vm.CollectReader{}
	if err := m.BindReader("outC", o); err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res != vm.RunHalted {
		t.Fatalf("result %v (fault: %v)", res, m.Fault())
	}
	if o.Values[0].Int() != 15 {
		t.Errorf("total = %d, want 15", o.Values[0].Int())
	}
}

func TestShortCircuit(t *testing.T) {
	// Division by zero on the right of && must not evaluate when the left
	// is false.
	m := newMachine(t, `
channel outC: int external reader
process p {
    $x = 0;
    $ok = false;
    if (x != 0 && 10 / x > 1) { ok = true; }
    if (x == 0 || 10 / x > 1) { out( outC, 1); }
}
`, vm.Config{})
	o := &vm.CollectReader{}
	if err := m.BindReader("outC", o); err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res != vm.RunHalted {
		t.Fatalf("result %v (fault: %v)", res, m.Fault())
	}
	if len(o.Values) != 1 {
		t.Errorf("short-circuit || failed")
	}
}

func TestMutabilityCastRoundTrip(t *testing.T) {
	m := newMachine(t, `
channel c: array of int
channel done: int external reader
process maker {
    $a: #array of int = #{ 4 -> 0};
    a[0] = 9;
    a[3] = 7;
    out( c, immutable(a));
    unlink( a);
}
process user {
    in( c, $d);
    $mcopy = mutable(d);
    mcopy[1] = d[0] + d[3];
    assert( mcopy[1] == 16);
    unlink( d);
    unlink( mcopy);
    out( done, 1);
}
`, vm.Config{MaxLiveObjects: 8})
	d := &vm.CollectReader{}
	if err := m.BindReader("done", d); err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res != vm.RunHalted {
		t.Fatalf("result %v (fault: %v)", res, m.Fault())
	}
	if m.Heap().Live() != 0 {
		t.Errorf("heap live = %d, want 0", m.Heap().Live())
	}
}

func runBothModes(t *testing.T, src string, drive func(m *vm.Machine) []int64) {
	t.Helper()
	var results [][]int64
	for _, cfg := range []vm.Config{{}, {UseWaitQueues: true}, {ForceDeepCopy: true}} {
		m := newMachine(t, src, cfg)
		results = append(results, drive(m))
	}
	for i := 1; i < len(results); i++ {
		if len(results[i]) != len(results[0]) {
			t.Fatalf("mode %d produced %d values, mode 0 produced %d", i, len(results[i]), len(results[0]))
		}
		for j := range results[i] {
			if results[i][j] != results[0][j] {
				t.Errorf("mode %d value %d = %d, mode 0 = %d", i, j, results[i][j], results[0][j])
			}
		}
	}
}

func TestModesAgree(t *testing.T) {
	// Wait-queue mode and deep-copy mode must be observationally identical
	// to the default (bit-mask, refcount-transfer) mode.
	runBothModes(t, pageTableSrc, func(m *vm.Machine) []int64 {
		user := &vm.QueueWriter{}
		net := &vm.CollectReader{}
		if err := m.BindWriter("userReqC", user); err != nil {
			t.Fatal(err)
		}
		if err := m.BindReader("SM2C", net); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			va := int64(i % 3)
			pa := int64(100 + i)
			user.Push(1, func(mm *vm.Machine) vm.Value {
				updateT := mm.Prog.ChannelByName("userReqC").Elem.Fields[1].Type
				userT := mm.Prog.ChannelByName("userReqC").Elem
				return mm.NewUnionV(userT, 1, mm.NewRecordV(updateT, vm.IntVal(va), vm.IntVal(pa)))
			})
			dest, size := int64(i), int64(2+i%2)
			user.Push(0, func(mm *vm.Machine) vm.Value {
				sendT := mm.Prog.ChannelByName("userReqC").Elem.Fields[0].Type
				userT := mm.Prog.ChannelByName("userReqC").Elem
				return mm.NewUnionV(userT, 0, mm.NewRecordV(sendT, vm.IntVal(dest), vm.IntVal(va), vm.IntVal(size)))
			})
		}
		if res := m.Run(); res != vm.RunIdle {
			t.Fatalf("result %v (fault: %v)", res, m.Fault())
		}
		var flat []int64
		for _, v := range net.Values {
			flat = append(flat, v.Field(0).Int())
			data := v.Field(1)
			flat = append(flat, int64(len(data.Obj.Elems)))
			for i := range data.Obj.Elems {
				flat = append(flat, data.Field(i).Int())
			}
		}
		return flat
	})
}

func TestManualModeEnabledComms(t *testing.T) {
	m := newMachine(t, `
channel c: int
process sender { out( c, 42); }
process receiver { in( c, $v); assert( v == 42); }
`, vm.Config{Manual: true})
	m.Settle()
	if !m.Quiescent() {
		t.Fatal("machine not quiescent after settle")
	}
	comms := m.EnabledComms()
	if len(comms) != 1 {
		t.Fatalf("got %d enabled comms, want 1: %v", len(comms), comms)
	}
	m.FireComm(comms[0])
	if m.Fault() != nil {
		t.Fatalf("fault: %v", m.Fault())
	}
	if !m.AllHalted() {
		t.Error("processes did not halt after the transfer")
	}
}

func TestManualModeAltChoices(t *testing.T) {
	// Two senders to one alt: two distinct enabled transitions.
	m := newMachine(t, `
channel a: int
channel b: int
process s1 { out( a, 1); }
process s2 { out( b, 2); }
process chooser {
    alt {
        case( in( a, $x)) { in( b, $y); }
        case( in( b, $y)) { in( a, $x); }
    }
}
`, vm.Config{Manual: true})
	m.Settle()
	comms := m.EnabledComms()
	if len(comms) != 2 {
		t.Fatalf("got %d enabled comms, want 2: %v", len(comms), comms)
	}
	// Fire transitions until completion: the chosen arm's body receives
	// the other message, so two transitions are needed in total.
	fired := 0
	for !m.AllHalted() {
		next := m.EnabledComms()
		if len(next) == 0 {
			t.Fatalf("stuck after %d transitions", fired)
		}
		m.FireComm(next[0])
		if m.Fault() != nil {
			t.Fatalf("fault: %v", m.Fault())
		}
		fired++
	}
	if fired != 2 {
		t.Errorf("fired %d transitions, want 2", fired)
	}
}

func TestManualDeadlockDetection(t *testing.T) {
	m := newMachine(t, `
channel a: int
channel b: int
process p { in( a, $x); out( b, 1); }
process q { in( b, $y); out( a, 2); }
`, vm.Config{Manual: true})
	m.Settle()
	if !m.Deadlocked() {
		t.Error("classic cross-wait deadlock not detected")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := newMachine(t, `
channel c: int
process sender { $i = 0; while (i < 3) { out( c, i); i = i + 1; } }
process receiver { $n = 0; while (n < 3) { in( c, $v); n = n + 1; } }
`, vm.Config{Manual: true})
	m.Settle()
	snap := m.EncodeState()
	cl := m.Clone()
	if cl.EncodeState() != snap {
		t.Fatal("clone state differs from original")
	}
	comms := m.EnabledComms()
	m.FireComm(comms[0])
	if m.EncodeState() == snap {
		t.Error("state unchanged after firing a transition")
	}
	if cl.EncodeState() != snap {
		t.Error("clone mutated by running the original")
	}
	// The clone can take the same step and reach the same state.
	cl.FireComm(comms[0])
	if cl.EncodeState() != m.EncodeState() {
		t.Error("same transition from same state produced different states")
	}
}

func TestAltSendPostponedAllocation(t *testing.T) {
	// The §6.1 optimization: the out arm's record is only allocated when
	// the arm commits. With no receiver ever ready, no allocation happens.
	src := `
type msgT = record of { a: int, b: int}
channel c: msgT
channel tick: int external writer
interface ti( out tick) { T( $v) }
process p {
    $n = 0;
    while (true) {
        alt {
            case( in( tick, $v)) { n = n + 1; }
            case( out( c, { n, n})) { skip; }
        }
    }
}
process q {
    while (true) {
        in( tick, $v);
    }
}
`
	_ = src
	// The two processes both read tick; patterns overlap, so this program
	// is rejected. Use a simpler single-process probe instead.
	m := newMachine(t, `
type msgT = record of { a: int, b: int}
channel c: msgT
channel tick: int external writer
interface ti( out tick) { T( $v) }
process p {
    $n = 0;
    while (n < 5) {
        alt {
            case( in( tick, $v)) { n = n + 1; }
            case( out( c, { n, n})) { skip; }
        }
    }
}
`, vm.Config{})
	in := &vm.QueueWriter{}
	if err := m.BindWriter("tick", in); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		in.Push(0, func(_ *vm.Machine) vm.Value { return vm.IntVal(1) })
	}
	if res := m.Run(); res != vm.RunHalted {
		t.Fatalf("result %v (fault: %v)", res, m.Fault())
	}
	if m.Stats.Allocs != 0 {
		t.Errorf("allocations = %d, want 0 (out-arm value must not be evaluated)", m.Stats.Allocs)
	}
}

func TestCyclesAccumulate(t *testing.T) {
	m := newMachine(t, add5Src, vm.Config{})
	in := &vm.QueueWriter{}
	outv := &vm.CollectReader{}
	if err := m.BindWriter("inC", in); err != nil {
		t.Fatal(err)
	}
	if err := m.BindReader("outC", outv); err != nil {
		t.Fatal(err)
	}
	in.Push(0, func(_ *vm.Machine) vm.Value { return vm.IntVal(1) })
	m.Run()
	if m.Cycles <= 0 {
		t.Error("no cycles charged")
	}
	if m.Stats.Instrs <= 0 || m.Stats.Rendezvous < 1 {
		t.Errorf("stats not collected: %+v", m.Stats)
	}
}

func TestStepBudget(t *testing.T) {
	m := newMachine(t, `process p { while (true) { skip; } }`, vm.Config{StepBudget: 1000})
	if res := m.Run(); res != vm.RunFault {
		t.Fatalf("result %v, want fault", res)
	}
	if m.Fault().Kind != vm.FaultStep {
		t.Errorf("fault %v, want step budget", m.Fault().Kind)
	}
}

// An infinite rendezvous loop resets the per-process step budget at
// every blocking point, so only the total cycle budget can stop it. All
// engines must truncate at the same process (cycle accounting is
// bit-identical across them).
func TestMaxCyclesStopsInfiniteRendezvous(t *testing.T) {
	src := `
channel c: int
process spin { while (true) { out( c, 1); } }
process drain { while (true) { in( c, $v); } }
`
	var faults []string
	for _, eng := range []vm.Engine{vm.EngineBaseline, vm.EngineFused, vm.EngineProcFused} {
		m := newMachine(t, src, vm.Config{MaxCycles: 50_000, Engine: eng})
		if res := m.Run(); res != vm.RunFault {
			t.Fatalf("engine %v: result %v, want fault", eng, res)
		}
		f := m.Fault()
		if f.Kind != vm.FaultStep {
			t.Fatalf("engine %v: fault %v, want step budget", eng, f.Kind)
		}
		faults = append(faults, f.Error())
	}
	if faults[0] != faults[1] || faults[1] != faults[2] {
		t.Errorf("engines truncate at different points:\n%s\n%s\n%s", faults[0], faults[1], faults[2])
	}
}
