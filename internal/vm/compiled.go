package vm

import (
	"fmt"

	"esplang/internal/ir"
	"esplang/internal/obs"
)

// Compiled-engine bridge.
//
// The gobackend emitter translates each process body into a Go function
// (stack slots in Go locals, control flow as labeled gotos) that keeps
// pure instructions inline and calls the CG* methods below for every
// operation that can fault, allocate, trace, or block. The bridge bodies
// are verbatim transcriptions of the corresponding execBase cases, so
// every charge, Stats bump, trace event, and fault message lands in the
// same order the baseline oracle produces — the differential suite
// compares the two bit-for-bit.
//
// Generated code runs in a separate process (espc -emit-go builds a main
// package that links this package through the esplang module), so the
// bridge is exported API of the vm package, reachable through the
// esplang.Machine alias.

// CompiledProc is one generated native step function: run process p until
// it blocks, halts, or faults (the compiled analogue of execBase).
type CompiledProc func(m *Machine, p *ProcInst)

// InstallCompiled installs the generated step functions of the compiled
// engine, one per process in process order. The machine must have been
// created with Config.Engine == EngineCompiled (without installed
// functions such a machine runs the baseline loop).
func (m *Machine) InstallCompiled(fns []CompiledProc) error {
	if m.Config.Engine != EngineCompiled {
		return fmt.Errorf("vm: InstallCompiled on a %s-engine machine", m.Config.Engine)
	}
	if len(fns) != len(m.Procs) {
		return fmt.Errorf("vm: InstallCompiled: %d step functions for %d processes", len(fns), len(m.Procs))
	}
	m.compiled = fns
	return nil
}

// CGBudgetFault charges the base instructions the baseline would still
// have executed when a bulk-charged segment of n instructions crosses the
// step budget, and faults at the component the baseline would have
// faulted at. Mirrors execFused's group budget handling: with b =
// steps-n instructions already run, the first j = budget-b components are
// charged and the fault pc is base+j.
func (m *Machine) CGBudgetFault(p *ProcInst, base int, n, steps int64) {
	j := m.Config.StepBudget - (steps - n)
	m.Cycles += j * m.Cost.PerInstr
	m.Stats.Instrs += j
	p.PC = base + int(j)
	m.setFault(&Fault{Kind: FaultStep,
		Msg: fmt.Sprintf("process executed more than %d instructions without blocking", m.Config.StepBudget)}, p)
}

// CGBadResume reports a resume at a pc the generated dispatch table does
// not know — an emitter bug, never a program bug.
func (m *Machine) CGBadResume(p *ProcInst, pc int) {
	m.setFault(&Fault{Kind: FaultInternal,
		Msg: fmt.Sprintf("compiled engine: resume at unexpected pc %d", pc)}, p)
}

// CGHalt terminates the process (the Halt opcode).
func (m *Machine) CGHalt(p *ProcInst) { p.Status = PHalted }

// CGDivFault reports division (or modulo) by zero; the operands were
// consumed by the generated code.
func (m *Machine) CGDivFault(p *ProcInst, mod bool) {
	msg := "division by zero"
	if mod {
		msg = "modulo by zero"
	}
	m.setFault(&Fault{Kind: FaultDivByZero, Msg: msg}, p)
}

// CGAssertFault reports a failed assert (the condition was already popped
// and tested by the generated code).
func (m *Machine) CGAssertFault(p *ProcInst, idx int) {
	info := m.Prog.Asserts[idx]
	m.setFault(&Fault{Kind: FaultAssert,
		Msg: fmt.Sprintf("assert(%s) failed", info.Expr), Pos: info.Pos}, p)
}

// CGNewRecord runs the NewRecord opcode against p's architectural stack:
// the generated code spills the nf field operands into p.Stack first and
// reloads the pushed reference afterwards. Returns false on fault.
func (m *Machine) CGNewRecord(p *ProcInst, typeID, nf int, mask int64) bool {
	t := m.Prog.Universe.ByID(typeID)
	o := m.heap.Alloc(t, nf)
	if o == nil {
		m.setFault(&Fault{Kind: FaultOutOfObjects, Msg: "allocation failed: live-object bound exceeded"}, p)
		return false
	}
	m.chargeEv(obs.KindAlloc, m.Cost.Alloc)
	m.Stats.Allocs++
	m.traceAlloc(p.ID)
	for i := nf - 1; i >= 0; i-- {
		v := p.pop()
		o.Elems[i] = v
		if v.IsRef && mask&(1<<i) == 0 {
			if f := m.heap.Link(v.Ref); f != nil {
				m.setFault(f, p)
				return false
			}
			m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
			m.Stats.RefOps++
		}
	}
	p.push(RefVal(o))
	return true
}

// CGNewUnion runs the NewUnion opcode on an operand held in a Go local.
func (m *Machine) CGNewUnion(p *ProcInst, payload Value, typeID, tag int, absorb bool) (Value, bool) {
	t := m.Prog.Universe.ByID(typeID)
	o := m.heap.Alloc(t, 1)
	if o == nil {
		m.setFault(&Fault{Kind: FaultOutOfObjects, Msg: "allocation failed: live-object bound exceeded"}, p)
		return Value{}, false
	}
	m.chargeEv(obs.KindAlloc, m.Cost.Alloc)
	m.Stats.Allocs++
	m.traceAlloc(p.ID)
	o.Tag = tag
	o.Elems[0] = payload
	if payload.IsRef && !absorb {
		if f := m.heap.Link(payload.Ref); f != nil {
			m.setFault(f, p)
			return Value{}, false
		}
		m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
		m.Stats.RefOps++
	}
	return RefVal(o), true
}

// CGNewArray runs the NewArray opcode (operands: init on top of count).
func (m *Machine) CGNewArray(p *ProcInst, count, init Value, typeID int) (Value, bool) {
	if count.Int < 0 {
		m.setFault(&Fault{Kind: FaultIndexOOB, Msg: fmt.Sprintf("array size %d is negative", count.Int)}, p)
		return Value{}, false
	}
	if count.Int > MaxAllocElems {
		m.setFault(&Fault{Kind: FaultOutOfObjects, Msg: fmt.Sprintf("array size %d exceeds the %d-element object limit", count.Int, MaxAllocElems)}, p)
		return Value{}, false
	}
	t := m.Prog.Universe.ByID(typeID)
	o := m.heap.Alloc(t, int(count.Int))
	if o == nil {
		m.setFault(&Fault{Kind: FaultOutOfObjects, Msg: "allocation failed: live-object bound exceeded"}, p)
		return Value{}, false
	}
	m.chargeEv(obs.KindAlloc, m.Cost.Alloc)
	m.Stats.Allocs++
	m.traceAlloc(p.ID)
	for i := range o.Elems {
		o.Elems[i] = init
	}
	return RefVal(o), true
}

// CGGetField runs the GetField opcode.
func (m *Machine) CGGetField(p *ProcInst, v Value, idx int) (Value, bool) {
	o := m.checkObj(v, p)
	if o == nil {
		return Value{}, false
	}
	return o.Elems[idx], true
}

// CGSetField runs the SetField opcode (ov is the record, v the value).
func (m *Machine) CGSetField(p *ProcInst, ov, v Value, idx int) bool {
	o := m.checkObj(ov, p)
	if o == nil {
		return false
	}
	old := o.Elems[idx]
	o.Elems[idx] = v
	if v.IsRef {
		if f := m.heap.Link(v.Ref); f != nil {
			m.setFault(f, p)
			return false
		}
		m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
		m.Stats.RefOps++
	}
	if old.IsRef {
		if f := m.heap.Unlink(old.Ref); f != nil {
			m.setFault(f, p)
			return false
		}
		m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
		m.Stats.RefOps++
	}
	return true
}

// CGGetIndex runs the GetIndex opcode.
func (m *Machine) CGGetIndex(p *ProcInst, ov, iv Value) (Value, bool) {
	o := m.checkObj(ov, p)
	if o == nil {
		return Value{}, false
	}
	if iv.Int < 0 || int(iv.Int) >= len(o.Elems) {
		m.setFault(&Fault{Kind: FaultIndexOOB,
			Msg: fmt.Sprintf("index %d out of bounds for array of %d", iv.Int, len(o.Elems))}, p)
		return Value{}, false
	}
	return o.Elems[iv.Int], true
}

// CGSetIndex runs the SetIndex opcode.
func (m *Machine) CGSetIndex(p *ProcInst, ov, iv, v Value) bool {
	o := m.checkObj(ov, p)
	if o == nil {
		return false
	}
	if iv.Int < 0 || int(iv.Int) >= len(o.Elems) {
		m.setFault(&Fault{Kind: FaultIndexOOB,
			Msg: fmt.Sprintf("index %d out of bounds for array of %d", iv.Int, len(o.Elems))}, p)
		return false
	}
	o.Elems[iv.Int] = v
	return true
}

// CGUnionGet runs the UnionGet opcode.
func (m *Machine) CGUnionGet(p *ProcInst, v Value, tag int) (Value, bool) {
	o := m.checkObj(v, p)
	if o == nil {
		return Value{}, false
	}
	if o.Tag != tag {
		m.setFault(&Fault{Kind: FaultTagMismatch,
			Msg: fmt.Sprintf("union has tag %d, pattern requires %d", o.Tag, tag)}, p)
		return Value{}, false
	}
	return o.Elems[0], true
}

// CGLink runs the Link opcode.
func (m *Machine) CGLink(p *ProcInst, v Value) bool {
	o := m.checkObj(v, p)
	if o == nil {
		return false
	}
	if f := m.heap.Link(o); f != nil {
		m.setFault(f, p)
		return false
	}
	m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
	m.Stats.RefOps++
	return true
}

// CGUnlink runs the Unlink opcode.
func (m *Machine) CGUnlink(p *ProcInst, v Value) bool {
	if !v.IsRef || v.Ref == nil {
		m.setFault(&Fault{Kind: FaultInternal, Msg: "unlink of scalar"}, p)
		return false
	}
	if f := m.heap.Unlink(v.Ref); f != nil {
		m.setFault(f, p)
		return false
	}
	m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
	m.Stats.RefOps++
	return true
}

// CGCastCopy runs the CastCopy opcode.
func (m *Machine) CGCastCopy(p *ProcInst, v Value, typeID int) (Value, bool) {
	o := m.checkObj(v, p)
	if o == nil {
		return Value{}, false
	}
	t := m.Prog.Universe.ByID(typeID)
	n := m.heap.Alloc(t, len(o.Elems))
	if n == nil {
		m.setFault(&Fault{Kind: FaultOutOfObjects, Msg: "allocation failed: live-object bound exceeded"}, p)
		return Value{}, false
	}
	m.chargeEv(obs.KindAlloc, m.Cost.Alloc)
	m.Stats.Allocs++
	m.traceAlloc(p.ID)
	n.Tag = o.Tag
	copy(n.Elems, o.Elems)
	for _, e := range n.Elems {
		if e.IsRef {
			if f := m.heap.Link(e.Ref); f != nil {
				m.setFault(f, p)
				return Value{}, false
			}
			m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
			m.Stats.RefOps++
		}
	}
	return RefVal(n), true
}

// CGCastReuse runs the CastReuse opcode.
func (m *Machine) CGCastReuse(p *ProcInst, v Value, typeID int) (Value, bool) {
	o := m.checkObj(v, p)
	if o == nil {
		return Value{}, false
	}
	o.Type = m.Prog.Universe.ByID(typeID)
	return RefVal(o), true
}

// CGSend runs the Send/SendCommit opcode with the value already popped
// into v. It returns true when the rendezvous completed and the process
// continues at resumePC; false when the process blocked or the machine
// faulted (the generated function returns to the scheduler either way).
func (m *Machine) CGSend(p *ProcInst, v Value, chanID, flags, resumePC int, commit bool) bool {
	p.Pending = v
	p.PendingFlags = flags
	p.WaitChan = chanID
	p.ResumePC = resumePC
	if (!m.Config.Manual || commit) && m.tryCompleteSend(p) {
		return m.flt == nil
	}
	if m.flt != nil {
		return false
	}
	if commit {
		m.setFault(&Fault{Kind: FaultNoMatchingPort,
			Msg: fmt.Sprintf("committed send on channel %s matches no waiting receiver",
				m.Prog.Channels[chanID].Name)}, p)
		return false
	}
	p.Status = PBlockedSend
	m.regSend(p, chanID)
	return false
}

// CGRecv runs the Recv opcode. Same return convention as CGSend.
func (m *Machine) CGRecv(p *ProcInst, chanID, portIdx, resumePC int) bool {
	p.WaitChan = chanID
	p.WaitPort = portIdx
	p.ResumePC = resumePC
	if !m.Config.Manual && m.tryCompleteRecv(p) {
		return m.flt == nil
	}
	if m.flt != nil {
		return false
	}
	p.Status = PBlockedRecv
	m.regRecv(p, chanID)
	return false
}

// CGAlt runs the Alt opcode. cont=true means the process continues at
// next; cont=false means it parked (blocked alt / collapsed blocked recv)
// or the machine faulted.
func (m *Machine) CGAlt(p *ProcInst, altIdx int) (next int, cont bool) {
	p.AltIdx = altIdx
	if m.Config.Manual {
		p.Status = PBlockedAlt
		return 0, false
	}
	next, cont = m.altStep(p)
	if m.flt != nil {
		return 0, false
	}
	return next, cont
}

// CGSendDirScalar is the statically-matched send fast path. The emitter
// uses it only when the optimizer's schedule proves the channel has
// exactly one sending and one receiving site (plain Send/Recv, no alt
// arms, no external binding), the element type is scalar, and the
// receiver's port pattern is a wildcard or a single bind — so a match
// can never fail and moves no references. The charge sequence is the
// baseline's: one MaskCheck for the partner search, then on success one
// PatternNode (the single pattern node the match walks) and the
// Rendezvous charge; on a miss the sender blocks after the single
// MaskCheck, exactly like the full-table scan over a program where no
// other process can touch the channel.
func (m *Machine) CGSendDirScalar(p *ProcInst, v Value, chanID, flags, resumePC, partner, port, slot int, bind bool) bool {
	m.chargeEv(obs.KindMaskCheck, m.Cost.MaskCheck)
	m.Stats.MaskChecks++
	r := m.Procs[partner]
	if r.Status == PBlockedRecv && r.WaitChan == chanID && r.WaitPort == port {
		m.chargeEv(obs.KindPattern, m.Cost.PatternNode)
		m.Stats.PatternNodes++
		m.chargeEv(obs.KindRendezvous, m.Cost.Rendezvous)
		m.Stats.Rendezvous++
		m.traceRendezvous(chanID, p.ID, r.ID)
		if bind {
			r.Locals[slot] = v
		}
		m.Stats.DirectXfers++
		m.unblock(r, r.ResumePC)
		return true
	}
	p.Pending = v
	p.PendingFlags = flags
	p.WaitChan = chanID
	p.ResumePC = resumePC
	p.Status = PBlockedSend
	return false
}

// CGRecvDirScalar is the receive half of the statically-matched fast
// path (same emission conditions as CGSendDirScalar). On a miss the
// failed search pays a second MaskCheck — the baseline's phase-2
// alt-arm pass — before blocking.
func (m *Machine) CGRecvDirScalar(p *ProcInst, chanID, portIdx, resumePC, partner, slot int, bind bool) bool {
	m.chargeEv(obs.KindMaskCheck, m.Cost.MaskCheck)
	m.Stats.MaskChecks++
	s := m.Procs[partner]
	if s.Status == PBlockedSend && s.WaitChan == chanID {
		m.chargeEv(obs.KindPattern, m.Cost.PatternNode)
		m.Stats.PatternNodes++
		m.chargeEv(obs.KindRendezvous, m.Cost.Rendezvous)
		m.Stats.Rendezvous++
		m.traceRendezvous(chanID, s.ID, p.ID)
		if bind {
			p.Locals[slot] = s.Pending
		}
		m.Stats.DirectXfers++
		m.unblock(s, s.ResumePC)
		return true
	}
	m.chargeEv(obs.KindMaskCheck, m.Cost.MaskCheck)
	m.Stats.MaskChecks++
	p.WaitChan = chanID
	p.WaitPort = portIdx
	p.ResumePC = resumePC
	p.Status = PBlockedRecv
	return false
}

// CGQuiet reports that no per-event observer is attached — no tracer, no
// flight recorder, no metrics sink, no profiler, and no wait-queue
// accounting. The generated fused fast path (two statically-paired
// processes compiled into one function with inline rendezvous and
// deferred context switches) only runs on a quiet machine; with any
// observer attached the generated dispatchers fall back to the general
// per-process step functions, whose bridge calls emit every event the
// baseline does.
func (m *Machine) CGQuiet() bool {
	return m.tracer == nil && m.rec == nil && m.mCtx == nil && m.prof == nil &&
		!m.Config.UseWaitQueues
}

// CGXfer is the fused fast path's deferred context switch. The partner r
// was made ready by an earlier inline rendezvous in the same generated
// function — without an enqueue, because the very next block point of
// the running process would immediately pop it again — and the running
// process has now blocked or halted. CGXfer performs exactly the
// bookkeeping RunReady does when it pops a ready process: the
// cycle-budget check (fault attributed to r, same message) and the
// context-switch charge. It returns false when control must return to
// the scheduler instead: a fault is pending, r is not ready, or the
// cycle budget is exhausted. The caller only invokes it on a quiet
// machine (CGQuiet), so the profiler line attribution and the
// tracer/recorder/metrics branches of RunReady are all no-ops here.
func (m *Machine) CGXfer(r *ProcInst) bool {
	if m.flt != nil || r.Status != PReady {
		return false
	}
	if m.Config.MaxCycles > 0 && m.Cycles >= m.Config.MaxCycles {
		m.setFault(&Fault{Kind: FaultStep, Msg: fmt.Sprintf("cycle budget exhausted: machine exceeded %d cycles", m.Config.MaxCycles)}, r)
		return false
	}
	m.Cycles += m.Cost.CtxSwitch
	m.Stats.CtxSwitches++
	return true
}

// CGSpill exposes the architectural stack for the generated spill/reload
// sequences: it truncates or extends p.Stack to depth d within its fixed
// capacity. The generated code then stores its live Go-local slots into
// the slice before a stack-consuming bridge call or a blocking point.
func CGSpill(p *ProcInst, d int) []Value {
	p.Stack = p.Stack[:d]
	return p.Stack
}

// ir dependency kept explicit: the bridge shares FlagFreeAfter semantics
// with the interpreter (flags travel through p.PendingFlags untouched).
var _ = ir.FlagFreeAfter
