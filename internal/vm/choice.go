package vm

import (
	"fmt"

	"esplang/internal/ir"
)

// CommChoice identifies one enabled communication in a quiescent manual-
// mode machine: a (sender, receiver) pair on a channel, each side either a
// plain blocked send/recv (arm == -1) or an arm of a blocked alt.
type CommChoice struct {
	Chan        int
	Sender      int
	SenderArm   int // -1 = plain Send
	Receiver    int
	ReceiverArm int // -1 = plain Recv
}

// String renders the choice for traces.
func (c CommChoice) String() string {
	return fmt.Sprintf("chan%d: proc%d(arm%d) -> proc%d(arm%d)",
		c.Chan, c.Sender, c.SenderArm, c.Receiver, c.ReceiverArm)
}

// Settle runs all ready processes to their next blocking points (manual
// mode). After Settle the machine is quiescent, faulted, or halted.
func (m *Machine) Settle() {
	m.RunReady()
}

// EnabledComms enumerates the communications possible in the current
// quiescent state. Plain senders are matched against receiver patterns
// (their value exists); alt send arms are enabled whenever a receiver
// waits on the channel — whether the lazily evaluated value will match is
// resolved when the transition fires, and a mismatch is a fault, exactly
// as at run time.
func (m *Machine) EnabledComms() []CommChoice {
	var out []CommChoice
	for si, s := range m.Procs {
		switch s.Status {
		case PBlockedSend:
			m.enumReceivers(s.WaitChan, si, -1, s, nil, &out)
		case PBlockedAlt:
			def := s.Def.Alts[s.AltIdx]
			for ai := range def.Arms {
				arm := &def.Arms[ai]
				if !arm.IsSend || !guardTrue(s, arm) {
					continue
				}
				m.enumReceivers(arm.Chan, si, ai, nil, arm.OutPat, &out)
			}
		}
	}
	return out
}

// OfferedChannels appends to buf the channels process pi currently
// offers a communication on: the waited channel of a blocked send or
// receive, or the channels of every guard-enabled arm of a blocked alt.
// A halted or faulted process offers nothing. The model checker's
// partial-order reduction uses this to close an ample candidate set over
// everything the member processes could synchronize on right now.
func (m *Machine) OfferedChannels(pi int, buf []int) []int {
	p := m.Procs[pi]
	switch p.Status {
	case PBlockedSend, PBlockedRecv:
		buf = append(buf, p.WaitChan)
	case PBlockedAlt:
		def := p.Def.Alts[p.AltIdx]
		for ai := range def.Arms {
			arm := &def.Arms[ai]
			if guardTrue(p, arm) {
				buf = append(buf, arm.Chan)
			}
		}
	}
	return buf
}

// enumReceivers appends a choice for every receiver able (or potentially
// able) to take a message on chanID from sender si. When s is non-nil the
// sender's pending value is matched against receiver patterns.
func (m *Machine) enumReceivers(chanID, si, sArm int, s *ProcInst, outPat *ir.Pat, out *[]CommChoice) {
	for ri, r := range m.Procs {
		if ri == si {
			continue
		}
		switch r.Status {
		case PBlockedRecv:
			if r.WaitChan != chanID {
				continue
			}
			if s != nil && !m.match(r.Def.Ports[r.WaitPort].Pat, s.Pending, r) {
				continue
			}
			if outPat != nil && !patsOverlap(outPat, r.Def.Ports[r.WaitPort].Pat) {
				continue
			}
			*out = append(*out, CommChoice{Chan: chanID, Sender: si, SenderArm: sArm, Receiver: ri, ReceiverArm: -1})
		case PBlockedAlt:
			def := r.Def.Alts[r.AltIdx]
			for ai := range def.Arms {
				arm := &def.Arms[ai]
				if arm.IsSend || arm.Chan != chanID || !guardTrue(r, arm) {
					continue
				}
				if s != nil && !m.match(r.Def.Ports[arm.Port].Pat, s.Pending, r) {
					continue
				}
				if outPat != nil && !patsOverlap(outPat, r.Def.Ports[arm.Port].Pat) {
					continue
				}
				*out = append(*out, CommChoice{Chan: chanID, Sender: si, SenderArm: sArm, Receiver: ri, ReceiverArm: ai})
			}
		}
	}
}

// FireComm commits the chosen communication and settles the machine
// (manual mode). The choice must come from EnabledComms on the current
// state.
func (m *Machine) FireComm(c CommChoice) {
	if c.Sender < 0 || c.Sender >= len(m.Procs) || c.Receiver < 0 || c.Receiver >= len(m.Procs) {
		m.fault(&Fault{Kind: FaultInternal,
			Msg: fmt.Sprintf("FireComm: process index out of range (%s)", c)})
		return
	}
	s := m.Procs[c.Sender]
	r := m.Procs[c.Receiver]

	// Resolve the receiver side to a (port, resume) pair.
	port, resume := r.WaitPort, r.ResumePC
	if c.ReceiverArm >= 0 {
		arm := &r.Def.Alts[r.AltIdx].Arms[c.ReceiverArm]
		port, resume = arm.Port, arm.BodyPC
	}

	if c.SenderArm < 0 {
		// Plain sender: the value exists; deliver directly.
		if !m.deliver(s.Pending, s.PendingFlags, s.ID, r, port) {
			m.fault(&Fault{Kind: FaultInternal,
				Msg: fmt.Sprintf("FireComm: value does not match receiver pattern (%s)", c)})
			return
		}
		m.unblock(r, resume)
		m.unblock(s, s.ResumePC)
		m.Settle()
		return
	}

	// Alt send arm: start the sender at the arm's evaluation code and pin
	// the coming SendCommit to this receiver (and its arm). The receiver
	// stays parked as-is.
	_ = port
	_ = resume
	sarm := &s.Def.Alts[s.AltIdx].Arms[c.SenderArm]
	m.commitTarget = c.Receiver
	m.commitArm = c.ReceiverArm
	m.unblock(s, sarm.EvalPC)
	m.Settle()
	m.commitTarget, m.commitArm = -1, -1
}

// ReplayComms re-fires a recorded communication sequence on a machine at
// its initial quiescent state (after Settle). Execution between blocking
// points is deterministic, so replaying the choices recorded by a search
// passes through exactly the states the search saw — the model checker
// rebuilds counterexample traces this way from compact parent chains
// instead of retaining a machine clone per search level. Replay stops at
// the first fault, which it returns (nil if the whole sequence fired).
func (m *Machine) ReplayComms(cs []CommChoice) *Fault {
	for _, c := range cs {
		if m.flt != nil {
			return m.flt
		}
		m.FireComm(c)
	}
	return m.flt
}

// Deadlocked reports whether the quiescent machine is stuck: not all
// processes halted, no communication enabled, and no external input
// possible. The paper's verifier reports this state (§5.1).
func (m *Machine) Deadlocked() bool {
	if m.flt != nil || !m.Quiescent() || m.AllHalted() {
		return false
	}
	return len(m.EnabledComms()) == 0
}

// AtRest reports whether every process is halted or blocked waiting to
// receive (plain recv, or an alt whose enabled arms are all receives).
// For firmware models this is the idle state — everything is parked
// waiting for input — and the model checker can treat it as a valid end
// state (the analogue of SPIN's end-state labels) when the test driver is
// bounded.
func (m *Machine) AtRest() bool {
	for _, p := range m.Procs {
		switch p.Status {
		case PHalted, PBlockedRecv:
			continue
		case PBlockedAlt:
			def := p.Def.Alts[p.AltIdx]
			for ai := range def.Arms {
				arm := &def.Arms[ai]
				if guardTrue(p, arm) && arm.IsSend {
					return false
				}
			}
		default:
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Cloning (model-checker state save/restore)

// Clone deep-copies the machine state: processes, locals, stacks, pending
// values, and the reachable heap. External bindings are shared (the model
// checker does not use them), and statistics are reset on the clone.
func (m *Machine) Clone() *Machine {
	n := &Machine{
		Prog:         m.Prog,
		Cost:         m.Cost,
		Config:       m.Config,
		fused:        m.fused, // immutable, shared
		sched:        m.sched, // immutable, shared
		extW:         m.extW,
		extR:         m.extR,
		commitTarget: m.commitTarget,
		commitArm:    m.commitArm,
		flt:          m.flt,
	}
	n.heap = Heap{MaxLive: m.heap.MaxLive, nextID: m.heap.nextID, live: m.heap.live,
		allocs: m.heap.allocs, frees: m.heap.frees}
	seen := make(map[*Object]*Object)
	var cpv func(v Value) Value
	cpv = func(v Value) Value {
		if !v.IsRef || v.Ref == nil {
			return v
		}
		if o, ok := seen[v.Ref]; ok {
			return RefVal(o)
		}
		o := v.Ref
		no := &Object{ID: o.ID, Type: o.Type, RC: o.RC, Freed: o.Freed, Tag: o.Tag,
			Elems: make([]Value, len(o.Elems))}
		seen[o] = no
		for i, e := range o.Elems {
			no.Elems[i] = cpv(e)
		}
		return RefVal(no)
	}
	for _, p := range m.Procs {
		np := &ProcInst{
			Def: p.Def, ID: p.ID, PC: p.PC, Status: p.Status,
			PendingFlags: p.PendingFlags,
			WaitChan:     p.WaitChan, WaitPort: p.WaitPort,
			AltIdx: p.AltIdx, ResumePC: p.ResumePC,
			Locals: make([]Value, len(p.Locals)),
			Stack:  make([]Value, len(p.Stack)),
		}
		for i, v := range p.Locals {
			np.Locals[i] = cpv(v)
		}
		for i, v := range p.Stack {
			np.Stack[i] = cpv(v)
		}
		np.Pending = cpv(p.Pending)
		n.Procs = append(n.Procs, np)
	}
	n.ready = append([]int(nil), m.ready...)
	if m.Config.UseWaitQueues {
		n.sendQ = make(map[int][]int, len(m.sendQ))
		n.recvQ = make(map[int][]int, len(m.recvQ))
		for k, v := range m.sendQ {
			n.sendQ[k] = append([]int(nil), v...)
		}
		for k, v := range m.recvQ {
			n.recvQ[k] = append([]int(nil), v...)
		}
	}
	n.hookHeap()
	return n
}
