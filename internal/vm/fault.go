package vm

import (
	"fmt"

	"esplang/internal/token"
)

// FaultKind classifies runtime faults. Every kind except FaultInternal
// corresponds to a property the verifier checks (§5).
type FaultKind int

// Fault kinds.
const (
	FaultNone FaultKind = iota
	FaultAssert
	FaultUseAfterFree
	FaultDoubleFree
	FaultNegativeRC
	FaultOutOfObjects // live-object bound exceeded: a memory leak (§5.2)
	FaultDivByZero
	FaultIndexOOB
	FaultTagMismatch
	FaultNoMatchingPort
	FaultStackOverflow
	FaultStep // step budget exhausted (runaway local loop)
	FaultInternal
)

func (k FaultKind) String() string {
	switch k {
	case FaultAssert:
		return "assertion failure"
	case FaultUseAfterFree:
		return "use after free"
	case FaultDoubleFree:
		return "double free"
	case FaultNegativeRC:
		return "negative reference count"
	case FaultOutOfObjects:
		return "out of objects (memory leak)"
	case FaultDivByZero:
		return "division by zero"
	case FaultIndexOOB:
		return "array index out of bounds"
	case FaultTagMismatch:
		return "union tag mismatch"
	case FaultNoMatchingPort:
		return "value matches no receive pattern"
	case FaultStackOverflow:
		return "operand stack overflow"
	case FaultStep:
		return "step budget exhausted"
	case FaultInternal:
		return "internal error"
	}
	return "no fault"
}

// Fault is a runtime error, attributed to a process and source position
// when known.
type Fault struct {
	Kind FaultKind
	Msg  string
	Proc string
	PC   int
	Pos  token.Pos
	// File is the ESP source path of the faulting program ("" when the
	// program was compiled from memory without a path).
	File string
}

// Location renders the fault's source location: "file:line:col" when the
// program carries a source path, "line:col" otherwise, "" when unknown.
func (f *Fault) Location() string {
	if !f.Pos.IsValid() {
		return ""
	}
	if f.File != "" {
		return fmt.Sprintf("%s:%s", f.File, f.Pos)
	}
	return f.Pos.String()
}

func (f *Fault) Error() string {
	loc := ""
	if f.Proc != "" {
		loc = fmt.Sprintf(" in process %s", f.Proc)
		if l := f.Location(); l != "" {
			loc += fmt.Sprintf(" at %s", l)
		}
	}
	return fmt.Sprintf("%s%s: %s", f.Kind, loc, f.Msg)
}
