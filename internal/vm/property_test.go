package vm_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"esplang/internal/vm"
)

// TestPropertyFIFOPreservesSequences: any integer sequence pushed through
// the ESP FIFO process comes out identical — a property of the whole
// pipeline (compiler, pattern dispatch, alt guards, scheduler).
func TestPropertyFIFOPreservesSequences(t *testing.T) {
	prog := compileSrc(t, `
const CAP = 4;
channel chan1: int external writer
channel chan2: int external reader
interface i1( out chan1) { Msg( $v) }
process fifo {
    $q: #array of int = #{ CAP -> 0};
    $hd = 0;
    $tl = 0;
    while (true) {
        alt {
            case( !(tl - hd == CAP), in( chan1, $v)) { q[tl % CAP] = v; tl = tl + 1; }
            case( !(tl == hd), out( chan2, q[hd % CAP])) { hd = hd + 1; }
        }
    }
}
`)
	f := func(vals []int16) bool {
		m := vm.New(prog, vm.Config{MaxLiveObjects: 16})
		in := &vm.QueueWriter{}
		out := &vm.CollectReader{}
		if err := m.BindWriter("chan1", in); err != nil {
			t.Fatal(err)
		}
		if err := m.BindReader("chan2", out); err != nil {
			t.Fatal(err)
		}
		for _, v := range vals {
			v := int64(v)
			in.Push(0, func(*vm.Machine) vm.Value { return vm.IntVal(v) })
		}
		if m.Run() == vm.RunFault {
			return false
		}
		if len(out.Values) != len(vals) {
			return false
		}
		for i, v := range vals {
			if out.Values[i].Int() != int64(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyNoLeaksUnderRandomTraffic: the producer/consumer pipeline
// with explicit refcounting ends with an empty heap for any message count.
func TestPropertyNoLeaksUnderRandomTraffic(t *testing.T) {
	mkSrc := `
type dataT = array of int
type msgT = record of { tag: int, data: dataT }
channel c: msgT
channel feed: int external writer
channel done: int external reader
interface f( out feed) { N( $v) }
process producer {
    while (true) {
        in( feed, $n);
        $d: dataT = { 3 -> n};
        out( c, { n, d});
        unlink( d);
    }
}
process consumer {
    while (true) {
        in( c, { $tag, $data});
        assert( data[0] == tag);
        unlink( data);
        out( done, tag);
    }
}
`
	prog := compileSrc(t, mkSrc)
	f := func(n uint8) bool {
		count := int(n % 40)
		m := vm.New(prog, vm.Config{MaxLiveObjects: 16})
		in := &vm.QueueWriter{}
		out := &vm.CollectReader{}
		if err := m.BindWriter("feed", in); err != nil {
			t.Fatal(err)
		}
		if err := m.BindReader("done", out); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < count; i++ {
			i := int64(i)
			in.Push(0, func(*vm.Machine) vm.Value { return vm.IntVal(i) })
		}
		if m.Run() == vm.RunFault {
			return false
		}
		return len(out.Values) == count && m.Heap().Live() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEncodeStateDeterministic: two machines run through the same
// manual-mode transition sequence produce identical state encodings at
// every step (the model checker's dedup depends on it).
func TestPropertyEncodeStateDeterministic(t *testing.T) {
	src := `
type r = record of { ret: int, v: int }
channel req: r
channel rep: r
process server {
    while (true) {
        in( req, { $ret, $v});
        out( rep, { ret, v + 1});
    }
}
process clientA {
    $n = 0;
    while (n < 3) {
        out( req, { @, n});
        in( rep, { @, $x});
        n = n + 1;
    }
}
process clientB {
    $n = 0;
    while (n < 3) {
        out( req, { @, n * 10});
        in( rep, { @, $x});
        n = n + 1;
    }
}
`
	prog := compileSrc(t, src)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := vm.New(prog, vm.Config{Manual: true})
		b := vm.New(prog, vm.Config{Manual: true})
		a.Settle()
		b.Settle()
		for step := 0; step < 20; step++ {
			if a.EncodeState() != b.EncodeState() {
				return false
			}
			comms := a.EnabledComms()
			if len(comms) == 0 {
				break
			}
			c := comms[rng.Intn(len(comms))]
			a.FireComm(c)
			b.FireComm(c)
			if (a.Fault() == nil) != (b.Fault() == nil) {
				return false
			}
			if a.Fault() != nil {
				break
			}
		}
		return a.EncodeState() == b.EncodeState()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCloneTransparent: running a cloned machine through the same
// choices yields the same encodings as the original (the checker's
// save/restore).
func TestPropertyCloneTransparent(t *testing.T) {
	prog := compileSrc(t, `
channel c: int
channel d: int
process p1 { $i = 0; while (i < 4) { out( c, i); in( d, $r); i = i + 1; } }
process p2 { while (true) { in( c, $v); out( d, v * 2); } }
`)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := vm.New(prog, vm.Config{Manual: true})
		m.Settle()
		for step := 0; step < 10; step++ {
			comms := m.EnabledComms()
			if len(comms) == 0 {
				break
			}
			cl := m.Clone()
			c := comms[rng.Intn(len(comms))]
			m.FireComm(c)
			cl.FireComm(c)
			if m.EncodeState() != cl.EncodeState() {
				return false
			}
			m = cl // continue on the clone: must behave identically
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyModesAgreeOnArithmetic: the three transfer/blocking
// implementations compute identical results for random inputs.
func TestPropertyModesAgreeOnArithmetic(t *testing.T) {
	prog := compileSrc(t, `
channel inC: int external writer
channel outC: int external reader
interface i( out inC) { Put( $v) }
process calc {
    while (true) {
        in( inC, $x);
        $y = x * 3 - 7;
        if (y < 0) { y = -y; }
        out( outC, y % 1000);
    }
}
`)
	run := func(cfg vm.Config, vals []int16) ([]int64, bool) {
		m := vm.New(prog, cfg)
		in := &vm.QueueWriter{}
		out := &vm.CollectReader{}
		if err := m.BindWriter("inC", in); err != nil {
			t.Fatal(err)
		}
		if err := m.BindReader("outC", out); err != nil {
			t.Fatal(err)
		}
		for _, v := range vals {
			v := int64(v)
			in.Push(0, func(*vm.Machine) vm.Value { return vm.IntVal(v) })
		}
		if m.Run() == vm.RunFault {
			return nil, false
		}
		var res []int64
		for _, s := range out.Values {
			res = append(res, s.Int())
		}
		return res, true
	}
	f := func(vals []int16) bool {
		a, ok1 := run(vm.Config{}, vals)
		b, ok2 := run(vm.Config{UseWaitQueues: true}, vals)
		c, ok3 := run(vm.Config{ForceDeepCopy: true}, vals)
		if !ok1 || !ok2 || !ok3 || len(a) != len(b) || len(a) != len(c) {
			return false
		}
		for i := range a {
			if a[i] != b[i] || a[i] != c[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
