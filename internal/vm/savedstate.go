package vm

import "esplang/internal/types"

// SavedState is a compact, self-contained snapshot of a machine's
// semantic state: process scheduling descriptors, locals, stacks, the
// reachable heap graph (flattened into index-linked arenas), and the heap
// counters. Unlike Clone it shares nothing with the machine that produced
// it, so restoring it into any machine of the same program is safe, and
// a SavedState can be reused (Save overwrites in place) so the model
// checker's state expansion allocates only while a snapshot's arenas are
// still growing toward the program's steady-state size.
//
// Save requires the bit-mask blocking mode (Config.UseWaitQueues off):
// wait queues are derivable state the snapshot does not carry.
type SavedState struct {
	procs   []procSnap
	vals    []Value // per process: locals, then stack, concatenated
	objs    []objSnap
	objVals []Value // object elements, blocked per object
	ready   []int

	live         int
	nextID       int
	allocs       int64
	frees        int64
	commitTarget int
	commitArm    int
	flt          *Fault
}

type procSnap struct {
	status       ProcStatus
	pc           int32
	waitChan     int32
	waitPort     int32
	altIdx       int32
	resumePC     int32
	pendingFlags int32
	nStack       int32
	pending      Value
}

type objSnap struct {
	typ   *types.Type
	id    int32
	rc    int32
	tag   int32
	off   int32 // first element in objVals
	n     int32 // element count
	freed bool
}

// Ref encoding inside snapshot arenas: a reference value stores the
// owning object's snapshot index in Int ({IsRef: true, Int: idx}); a
// genuine nil reference stores -1.

// encObj records o (and, recursively, everything it references) into the
// snapshot, returning o's snapshot index. gen is the marking generation
// of this Save traversal.
func (s *SavedState) encObj(o *Object, gen int64) int32 {
	if o.mark == gen {
		return o.markIdx
	}
	o.mark = gen
	idx := int32(len(s.objs))
	o.markIdx = idx
	off := len(s.objVals)
	s.objVals = append(s.objVals, o.Elems...)
	s.objs = append(s.objs, objSnap{
		typ: o.Type, id: int32(o.ID), rc: int32(o.RC), tag: int32(o.Tag),
		off: int32(off), n: int32(len(o.Elems)), freed: o.Freed,
	})
	// Rewrite reference elements to index encoding. Indexing through off
	// (not a saved sub-slice) keeps this correct across arena reallocation
	// by the recursive calls.
	for i, e := range o.Elems {
		if e.IsRef {
			s.objVals[off+i] = s.encVal(e, gen)
		}
	}
	return idx
}

func (s *SavedState) encVal(v Value, gen int64) Value {
	if !v.IsRef {
		return v
	}
	if v.Ref == nil {
		return Value{IsRef: true, Int: -1}
	}
	return Value{IsRef: true, Int: int64(s.encObj(v.Ref, gen))}
}

// Save captures the machine's semantic state into dst, reusing its
// buffers; a nil dst allocates a fresh SavedState. Statistics and the
// cycle meter are not captured (matching Clone, which resets them).
func (m *Machine) Save(dst *SavedState) *SavedState {
	if m.Config.UseWaitQueues {
		panic("vm: Save does not support wait-queue mode")
	}
	s := dst
	if s == nil {
		s = &SavedState{}
	}
	s.procs = s.procs[:0]
	s.vals = s.vals[:0]
	s.objs = s.objs[:0]
	s.objVals = s.objVals[:0]
	s.ready = append(s.ready[:0], m.ready...)
	s.live = m.heap.live
	s.nextID = m.heap.nextID
	s.allocs = m.heap.allocs
	s.frees = m.heap.frees
	s.commitTarget = m.commitTarget
	s.commitArm = m.commitArm
	s.flt = m.flt

	m.markGen++
	gen := m.markGen
	for _, p := range m.Procs {
		s.procs = append(s.procs, procSnap{
			status:       p.Status,
			pc:           int32(p.PC),
			waitChan:     int32(p.WaitChan),
			waitPort:     int32(p.WaitPort),
			altIdx:       int32(p.AltIdx),
			resumePC:     int32(p.ResumePC),
			pendingFlags: int32(p.PendingFlags),
			nStack:       int32(len(p.Stack)),
			pending:      s.encVal(p.Pending, gen),
		})
		for _, v := range p.Locals {
			s.vals = append(s.vals, s.encVal(v, gen))
		}
		for _, v := range p.Stack {
			s.vals = append(s.vals, s.encVal(v, gen))
		}
	}
	return s
}

// decSnapVal translates a snapshot-encoded value back into a live value
// over the machine's restored object pool.
func (m *Machine) decSnapVal(v Value) Value {
	if !v.IsRef {
		return v
	}
	if v.Int < 0 {
		return Value{IsRef: true}
	}
	return Value{IsRef: true, Ref: m.objPool[v.Int]}
}

// RestoreState overwrites the machine's semantic state with s, which must
// come from a machine of the same program. Heap objects are rebuilt into
// a pool private to this machine, reused across restores, so a restore
// in steady state performs no allocation. (The pool is deliberately NOT
// the execution heap's free list — Heap.Alloc never reuses objects, the
// §5.2 use-after-free property; only whole-state replacement may recycle
// them, because it retires every reference to the previous state at
// once.)
func (m *Machine) RestoreState(s *SavedState) {
	m.heap.live = s.live
	m.heap.nextID = s.nextID
	m.heap.allocs = s.allocs
	m.heap.frees = s.frees
	m.commitTarget = s.commitTarget
	m.commitArm = s.commitArm
	m.flt = s.flt
	m.ready = append(m.ready[:0], s.ready...)

	for len(m.objPool) < len(s.objs) {
		m.objPool = append(m.objPool, &Object{})
	}
	// Pass 1: headers and element storage (targets must exist before any
	// reference decodes).
	for i := range s.objs {
		os := &s.objs[i]
		o := m.objPool[i]
		o.ID = int(os.id)
		o.Type = os.typ
		o.RC = int(os.rc)
		o.Freed = os.freed
		o.Tag = int(os.tag)
		if cap(o.Elems) < int(os.n) {
			o.Elems = make([]Value, os.n)
		} else {
			o.Elems = o.Elems[:os.n]
		}
	}
	// Pass 2: elements.
	for i := range s.objs {
		os := &s.objs[i]
		o := m.objPool[i]
		for j := 0; j < int(os.n); j++ {
			o.Elems[j] = m.decSnapVal(s.objVals[int(os.off)+j])
		}
	}

	k := 0
	for i, p := range m.Procs {
		ps := &s.procs[i]
		p.Status = ps.status
		p.PC = int(ps.pc)
		p.WaitChan = int(ps.waitChan)
		p.WaitPort = int(ps.waitPort)
		p.AltIdx = int(ps.altIdx)
		p.ResumePC = int(ps.resumePC)
		p.PendingFlags = int(ps.pendingFlags)
		p.Pending = m.decSnapVal(ps.pending)
		for j := range p.Locals {
			p.Locals[j] = m.decSnapVal(s.vals[k])
			k++
		}
		p.Stack = p.Stack[:0]
		for j := int32(0); j < ps.nStack; j++ {
			p.Stack = append(p.Stack, m.decSnapVal(s.vals[k]))
			k++
		}
	}
	// Wait queues are only populated in queue mode, which Save rejects;
	// clear any leftovers so a restored machine is self-consistent.
	for id := range m.sendQ {
		delete(m.sendQ, id)
	}
	for id := range m.recvQ {
		delete(m.recvQ, id)
	}
}
