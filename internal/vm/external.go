package vm

import (
	"fmt"

	"esplang/internal/ir"
	"esplang/internal/obs"
	"esplang/internal/types"
)

// ExternalWriter is the Go-side binding of a channel with an external
// writer (§4.5): the environment produces messages that ESP processes
// receive. It is the runtime analogue of the generated C functions
// XxxIsReady + one function per interface case.
type ExternalWriter interface {
	// Ready reports whether a message is available, and if so which
	// interface case of the channel it belongs to.
	Ready(m *Machine) (caseIdx int, ok bool)
	// Take consumes the pending message for the given case and returns it
	// as a machine value. Implementations build values with the machine's
	// New* helpers; the returned value is treated as a fresh temporary
	// (the machine releases its allocation reference after transfer).
	Take(m *Machine, caseIdx int) Value
}

// ExternalReader is the Go-side binding of a channel with an external
// reader: ESP processes send messages that the environment consumes. The
// value passed to Put is only valid during the call (as with the
// generated C interface, which hands over pointers).
type ExternalReader interface {
	// Ready reports whether the environment will accept a message now.
	Ready(m *Machine) bool
	// Put delivers a message. Implementations must copy out any data they
	// need before returning.
	Put(m *Machine, v Value)
}

// ---------------------------------------------------------------------------
// Convenience bindings used by tests, examples, and the NIC substrate.

// QueueWriter is an ExternalWriter backed by a FIFO of prebuilt messages.
// Each queued item carries the interface case index and a builder
// function invoked at Take time (so allocation happens on the machine
// that consumes the message).
type QueueWriter struct {
	items []QueueItem
}

// QueueItem is one pending external message.
type QueueItem struct {
	Case  int
	Build func(m *Machine) Value
}

// Push queues a message.
func (q *QueueWriter) Push(caseIdx int, build func(m *Machine) Value) {
	q.items = append(q.items, QueueItem{Case: caseIdx, Build: build})
}

// Len returns the number of queued messages.
func (q *QueueWriter) Len() int { return len(q.items) }

// Ready implements ExternalWriter.
func (q *QueueWriter) Ready(_ *Machine) (int, bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].Case, true
}

// Take implements ExternalWriter.
func (q *QueueWriter) Take(m *Machine, caseIdx int) Value {
	it := q.items[0]
	q.items = q.items[1:]
	if it.Case != caseIdx {
		panic(fmt.Sprintf("vm: QueueWriter.Take case %d, queued %d", caseIdx, it.Case))
	}
	return it.Build(m)
}

// CollectReader is an ExternalReader that snapshots every received value
// into a Go-native representation (see Snapshot).
type CollectReader struct {
	Values []Snapshot
	// Limit, when positive, makes Ready return false once len(Values)
	// reaches it (useful for bounded test runs).
	Limit int
}

// Ready implements ExternalReader.
func (r *CollectReader) Ready(_ *Machine) bool {
	return r.Limit <= 0 || len(r.Values) < r.Limit
}

// Put implements ExternalReader.
func (r *CollectReader) Put(_ *Machine, v Value) {
	r.Values = append(r.Values, Snap(v))
}

// Snapshot is a Go-native deep copy of a machine value: an int64 for
// scalars, or a *SnapObject for references.
type Snapshot struct {
	Scalar int64
	Obj    *SnapObject
}

// SnapObject mirrors Object outside the machine heap.
type SnapObject struct {
	Type  *types.Type
	Tag   int
	Elems []Snapshot
}

// Snap deep-copies a machine value into a Snapshot.
func Snap(v Value) Snapshot {
	if !v.IsRef {
		return Snapshot{Scalar: v.Int}
	}
	o := &SnapObject{Type: v.Ref.Type, Tag: v.Ref.Tag, Elems: make([]Snapshot, len(v.Ref.Elems))}
	for i, e := range v.Ref.Elems {
		o.Elems[i] = Snap(e)
	}
	return Snapshot{Obj: o}
}

// Int returns the snapshot's scalar value (0 for references).
func (s Snapshot) Int() int64 { return s.Scalar }

// Field returns the i'th element of a snapshotted object.
func (s Snapshot) Field(i int) Snapshot {
	if s.Obj == nil || i >= len(s.Obj.Elems) {
		return Snapshot{}
	}
	return s.Obj.Elems[i]
}

// ---------------------------------------------------------------------------
// Value construction helpers for external bindings.

// NewRecordV allocates a record object from the given element values.
// Reference elements are treated as fresh (absorbed).
func (m *Machine) NewRecordV(t *types.Type, elems ...Value) Value {
	o := m.heap.Alloc(t, len(elems))
	if o == nil {
		m.fault(&Fault{Kind: FaultOutOfObjects, Msg: "allocation failed: live-object bound exceeded"})
		return Value{}
	}
	m.chargeEv(obs.KindAlloc, m.Cost.Alloc)
	m.Stats.Allocs++
	m.traceAlloc(-1)
	copy(o.Elems, elems)
	return RefVal(o)
}

// NewUnionV allocates a union object.
func (m *Machine) NewUnionV(t *types.Type, tag int, payload Value) Value {
	o := m.heap.Alloc(t, 1)
	if o == nil {
		m.fault(&Fault{Kind: FaultOutOfObjects, Msg: "allocation failed: live-object bound exceeded"})
		return Value{}
	}
	m.chargeEv(obs.KindAlloc, m.Cost.Alloc)
	m.Stats.Allocs++
	m.traceAlloc(-1)
	o.Tag = tag
	o.Elems[0] = payload
	return RefVal(o)
}

// NewArrayV allocates an array object of n elements initialized to init.
func (m *Machine) NewArrayV(t *types.Type, n int, init Value) Value {
	o := m.heap.Alloc(t, n)
	if o == nil {
		m.fault(&Fault{Kind: FaultOutOfObjects, Msg: "allocation failed: live-object bound exceeded"})
		return Value{}
	}
	m.chargeEv(obs.KindAlloc, m.Cost.Alloc)
	m.Stats.Allocs++
	m.traceAlloc(-1)
	for i := range o.Elems {
		o.Elems[i] = init
	}
	return RefVal(o)
}

// NewArrayFromInts allocates an int array with the given contents.
func (m *Machine) NewArrayFromInts(t *types.Type, data []int64) Value {
	o := m.heap.Alloc(t, len(data))
	if o == nil {
		m.fault(&Fault{Kind: FaultOutOfObjects, Msg: "allocation failed: live-object bound exceeded"})
		return Value{}
	}
	m.chargeEv(obs.KindAlloc, m.Cost.Alloc)
	m.Stats.Allocs++
	m.traceAlloc(-1)
	for i, d := range data {
		o.Elems[i] = IntVal(d)
	}
	return RefVal(o)
}

// IfaceCaseByName returns the index of the named interface case of the
// channel, or -1.
func IfaceCaseByName(ch *ir.Channel, name string) int {
	for i, c := range ch.Cases {
		if c.Name == name {
			return i
		}
	}
	return -1
}
