package vm

import "fmt"

// Engine selects the interpreter implementation. The fused engine is the
// default (the zero value): it runs the load-time translation of
// ir.FuseProgram and is observably identical to the baseline — same
// Stats, same cycle meter, same faults, same trace events — just faster.
// The baseline engine remains as the differential-testing oracle. The
// process-fused engine additionally executes the optimizer's static
// rendezvous schedule: direct-transfer instructions on
// statically-matched channels, narrowed partner scans everywhere else,
// and heap-object recycling — still observably identical, with one
// extra diagnostic counter (Stats.DirectXfers) that charges no cycles.
// The compiled engine executes ahead-of-time generated Go code (see
// internal/gobackend): one native function per process, installed with
// Machine.InstallCompiled. A machine configured for EngineCompiled but
// without installed functions falls back to the baseline loop, so the
// configuration is always safe to run in-process.
type Engine uint8

// Engines.
const (
	EngineFused Engine = iota
	EngineBaseline
	EngineProcFused
	EngineCompiled
)

func (e Engine) String() string {
	switch e {
	case EngineFused:
		return "fused"
	case EngineBaseline:
		return "baseline"
	case EngineProcFused:
		return "procfused"
	case EngineCompiled:
		return "compiled"
	}
	return "engine?"
}

// ParseEngine parses the -engine flag syntax.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "fused":
		return EngineFused, nil
	case "baseline":
		return EngineBaseline, nil
	case "procfused":
		return EngineProcFused, nil
	case "compiled":
		return EngineCompiled, nil
	}
	return EngineFused, fmt.Errorf("unknown engine %q (want baseline, fused, procfused, or compiled)", s)
}
