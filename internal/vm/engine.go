package vm

import "fmt"

// Engine selects the interpreter implementation. The fused engine is the
// default (the zero value): it runs the load-time translation of
// ir.FuseProgram and is observably identical to the baseline — same
// Stats, same cycle meter, same faults, same trace events — just faster.
// The baseline engine remains as the differential-testing oracle.
type Engine uint8

// Engines.
const (
	EngineFused Engine = iota
	EngineBaseline
)

func (e Engine) String() string {
	switch e {
	case EngineFused:
		return "fused"
	case EngineBaseline:
		return "baseline"
	}
	return "engine?"
}

// ParseEngine parses the -engine flag syntax.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "fused":
		return EngineFused, nil
	case "baseline":
		return EngineBaseline, nil
	}
	return EngineFused, fmt.Errorf("unknown engine %q (want baseline or fused)", s)
}
