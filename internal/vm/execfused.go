package vm

import (
	"fmt"

	"esplang/internal/ir"
	"esplang/internal/obs"
)

// execFused runs process p until it blocks, halts, or faults, using the
// fused translation of its code (see internal/ir/fused.go). It is charged
// and observed exactly like execBase:
//
//   - a fused instruction covering N base instructions bulk-charges
//     N*PerInstr cycles and N Stats.Instrs at group entry — legal because
//     fusion only groups instructions whose interior components are pure
//     (no faults, no trace events), so no observer can see the meter
//     between them;
//   - the step budget is enforced at the same base-instruction boundary:
//     if a group would cross it, only the components the baseline would
//     have executed are charged and the fault pc is the component the
//     baseline would have faulted at (the values computed by the already-
//     charged components are not materialized — the machine is stopping);
//   - components that can fault or emit a trace event are always the last
//     of their group, with p.PC adjusted to their base pc first, so fault
//     attribution and trace timestamps are bit-identical.
//
// execFused only runs when no profiler is installed (exec falls back to
// execBase otherwise): per-line cycle attribution needs the baseline's
// per-instruction charge points.
func (m *Machine) execFused(p *ProcInst) {
	fp := m.fused[p.ID]
	code := fp.Code
	var steps int64

	// Resume points are always group heads (entry points are never fused
	// into a group interior), so the translation is defined here.
	pcF := int(fp.Map[p.PC])
	if pcF < 0 {
		m.setFault(&Fault{Kind: FaultInternal, Msg: "resume inside a fused group"}, p)
		return
	}

	for m.flt == nil {
		fi := &code[pcF]
		n := int64(fi.N)
		steps += n
		if steps > m.Config.StepBudget {
			// The baseline executes components one at a time: with b =
			// steps-n base instructions already run, it charges the first
			// j = budget-b components of this group and faults at the next.
			j := m.Config.StepBudget - (steps - n)
			if fi.Op == ir.FXferRec && j >= 1 {
				// The budget admits the NewRecord but not the Send: the
				// baseline completes the allocation (it is observable — heap
				// state, Stats, trace) before faulting at the Send's pc.
				m.Cycles += m.Cost.PerInstr
				m.Stats.Instrs++
				p.PC = int(fi.Base)
				if !m.xferRecAlloc(p, fi) {
					return
				}
				p.PC = int(fi.Base) + 1
				m.setFault(&Fault{Kind: FaultStep,
					Msg: fmt.Sprintf("process executed more than %d instructions without blocking", m.Config.StepBudget)}, p)
				return
			}
			m.Cycles += j * m.Cost.PerInstr
			m.Stats.Instrs += j
			p.PC = int(fi.Base) + int(j)
			m.setFault(&Fault{Kind: FaultStep,
				Msg: fmt.Sprintf("process executed more than %d instructions without blocking", m.Config.StepBudget)}, p)
			return
		}
		m.Cycles += n * m.Cost.PerInstr
		m.Stats.Instrs += n
		p.PC = int(fi.Base)

		switch fi.Op {
		case ir.FNop:
			pcF++
		case ir.FConst:
			p.push(Value{Int: fi.Val})
			pcF++
		case ir.FSelfID:
			p.push(IntVal(int64(p.ID)))
			pcF++
		case ir.FLoad:
			p.push(p.Locals[fi.A])
			pcF++
		case ir.FStore:
			p.Locals[fi.A] = p.pop()
			pcF++
		case ir.FDup:
			p.push(p.Stack[len(p.Stack)-1])
			pcF++
		case ir.FPop:
			p.pop()
			pcF++

		case ir.FNeg:
			v := p.pop()
			p.push(IntVal(-v.Int))
			pcF++
		case ir.FNot:
			v := p.pop()
			p.push(BoolVal(v.Int == 0))
			pcF++
		case ir.FAdd:
			y := p.pop()
			x := p.pop()
			p.push(IntVal(x.Int + y.Int))
			pcF++
		case ir.FSub:
			y := p.pop()
			x := p.pop()
			p.push(IntVal(x.Int - y.Int))
			pcF++
		case ir.FMul:
			y := p.pop()
			x := p.pop()
			p.push(IntVal(x.Int * y.Int))
			pcF++
		case ir.FDiv:
			y := p.pop()
			x := p.pop()
			if y.Int == 0 {
				m.setFault(&Fault{Kind: FaultDivByZero, Msg: "division by zero"}, p)
				return
			}
			p.push(IntVal(x.Int / y.Int))
			pcF++
		case ir.FMod:
			y := p.pop()
			x := p.pop()
			if y.Int == 0 {
				m.setFault(&Fault{Kind: FaultDivByZero, Msg: "modulo by zero"}, p)
				return
			}
			p.push(IntVal(x.Int % y.Int))
			pcF++
		case ir.FEq:
			y := p.pop()
			x := p.pop()
			p.push(BoolVal(x.Int == y.Int))
			pcF++
		case ir.FNe:
			y := p.pop()
			x := p.pop()
			p.push(BoolVal(x.Int != y.Int))
			pcF++
		case ir.FLt:
			y := p.pop()
			x := p.pop()
			p.push(BoolVal(x.Int < y.Int))
			pcF++
		case ir.FLe:
			y := p.pop()
			x := p.pop()
			p.push(BoolVal(x.Int <= y.Int))
			pcF++
		case ir.FGt:
			y := p.pop()
			x := p.pop()
			p.push(BoolVal(x.Int > y.Int))
			pcF++
		case ir.FGe:
			y := p.pop()
			x := p.pop()
			p.push(BoolVal(x.Int >= y.Int))
			pcF++

		case ir.FJump:
			pcF = int(fi.A)
		case ir.FJumpFalse:
			if p.pop().Int == 0 {
				pcF = int(fi.A)
			} else {
				pcF++
			}
		case ir.FJumpTrue:
			if p.pop().Int != 0 {
				pcF = int(fi.A)
			} else {
				pcF++
			}

		case ir.FNewRecord:
			o := m.heap.Alloc(fi.Type, int(fi.B))
			if o == nil {
				m.setFault(&Fault{Kind: FaultOutOfObjects, Msg: "allocation failed: live-object bound exceeded"}, p)
				return
			}
			m.chargeEv(obs.KindAlloc, m.Cost.Alloc)
			m.Stats.Allocs++
			m.traceAlloc(p.ID)
			for i := int(fi.B) - 1; i >= 0; i-- {
				v := p.pop()
				o.Elems[i] = v
				if v.IsRef && fi.Val&(1<<i) == 0 {
					if f := m.heap.Link(v.Ref); f != nil {
						m.setFault(f, p)
						return
					}
					m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
					m.Stats.RefOps++
				}
			}
			p.push(RefVal(o))
			pcF++
		case ir.FNewUnion:
			v := p.pop()
			o := m.heap.Alloc(fi.Type, 1)
			if o == nil {
				m.setFault(&Fault{Kind: FaultOutOfObjects, Msg: "allocation failed: live-object bound exceeded"}, p)
				return
			}
			m.chargeEv(obs.KindAlloc, m.Cost.Alloc)
			m.Stats.Allocs++
			m.traceAlloc(p.ID)
			o.Tag = int(fi.B)
			o.Elems[0] = v
			if v.IsRef && fi.Val&1 == 0 {
				if f := m.heap.Link(v.Ref); f != nil {
					m.setFault(f, p)
					return
				}
				m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
				m.Stats.RefOps++
			}
			p.push(RefVal(o))
			pcF++
		case ir.FNewArray:
			init := p.pop()
			count := p.pop()
			if count.Int < 0 {
				m.setFault(&Fault{Kind: FaultIndexOOB, Msg: fmt.Sprintf("array size %d is negative", count.Int)}, p)
				return
			}
			if count.Int > MaxAllocElems {
				m.setFault(&Fault{Kind: FaultOutOfObjects, Msg: fmt.Sprintf("array size %d exceeds the %d-element object limit", count.Int, MaxAllocElems)}, p)
				return
			}
			o := m.heap.Alloc(fi.Type, int(count.Int))
			if o == nil {
				m.setFault(&Fault{Kind: FaultOutOfObjects, Msg: "allocation failed: live-object bound exceeded"}, p)
				return
			}
			m.chargeEv(obs.KindAlloc, m.Cost.Alloc)
			m.Stats.Allocs++
			m.traceAlloc(p.ID)
			for i := range o.Elems {
				o.Elems[i] = init
			}
			p.push(RefVal(o))
			pcF++

		case ir.FGetField:
			o := m.checkObj(p.pop(), p)
			if o == nil {
				return
			}
			p.push(o.Elems[fi.A])
			pcF++
		case ir.FSetField:
			v := p.pop()
			o := m.checkObj(p.pop(), p)
			if o == nil {
				return
			}
			old := o.Elems[fi.A]
			o.Elems[fi.A] = v
			if v.IsRef {
				if f := m.heap.Link(v.Ref); f != nil {
					m.setFault(f, p)
					return
				}
				m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
				m.Stats.RefOps++
			}
			if old.IsRef {
				if f := m.heap.Unlink(old.Ref); f != nil {
					m.setFault(f, p)
					return
				}
				m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
				m.Stats.RefOps++
			}
			pcF++
		case ir.FGetIndex:
			i := p.pop()
			o := m.checkObj(p.pop(), p)
			if o == nil {
				return
			}
			if i.Int < 0 || int(i.Int) >= len(o.Elems) {
				m.setFault(&Fault{Kind: FaultIndexOOB,
					Msg: fmt.Sprintf("index %d out of bounds for array of %d", i.Int, len(o.Elems))}, p)
				return
			}
			p.push(o.Elems[i.Int])
			pcF++
		case ir.FSetIndex:
			v := p.pop()
			i := p.pop()
			o := m.checkObj(p.pop(), p)
			if o == nil {
				return
			}
			if i.Int < 0 || int(i.Int) >= len(o.Elems) {
				m.setFault(&Fault{Kind: FaultIndexOOB,
					Msg: fmt.Sprintf("index %d out of bounds for array of %d", i.Int, len(o.Elems))}, p)
				return
			}
			o.Elems[i.Int] = v
			pcF++
		case ir.FUnionGet:
			o := m.checkObj(p.pop(), p)
			if o == nil {
				return
			}
			if o.Tag != int(fi.A) {
				m.setFault(&Fault{Kind: FaultTagMismatch,
					Msg: fmt.Sprintf("union has tag %d, pattern requires %d", o.Tag, fi.A)}, p)
				return
			}
			p.push(o.Elems[0])
			pcF++

		case ir.FLink:
			o := m.checkObj(p.pop(), p)
			if o == nil {
				return
			}
			if f := m.heap.Link(o); f != nil {
				m.setFault(f, p)
				return
			}
			m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
			m.Stats.RefOps++
			pcF++
		case ir.FUnlink:
			v := p.pop()
			if !v.IsRef || v.Ref == nil {
				m.setFault(&Fault{Kind: FaultInternal, Msg: "unlink of scalar"}, p)
				return
			}
			if f := m.heap.Unlink(v.Ref); f != nil {
				m.setFault(f, p)
				return
			}
			m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
			m.Stats.RefOps++
			pcF++
		case ir.FCastCopy:
			o := m.checkObj(p.pop(), p)
			if o == nil {
				return
			}
			no := m.heap.Alloc(fi.Type, len(o.Elems))
			if no == nil {
				m.setFault(&Fault{Kind: FaultOutOfObjects, Msg: "allocation failed: live-object bound exceeded"}, p)
				return
			}
			m.chargeEv(obs.KindAlloc, m.Cost.Alloc)
			m.Stats.Allocs++
			m.traceAlloc(p.ID)
			no.Tag = o.Tag
			copy(no.Elems, o.Elems)
			for _, e := range no.Elems {
				if e.IsRef {
					if f := m.heap.Link(e.Ref); f != nil {
						m.setFault(f, p)
						return
					}
					m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
					m.Stats.RefOps++
				}
			}
			p.push(RefVal(no))
			pcF++
		case ir.FCastReuse:
			o := m.checkObj(p.pop(), p)
			if o == nil {
				return
			}
			o.Type = fi.Type
			p.push(RefVal(o))
			pcF++

		case ir.FAssert:
			v := p.pop()
			if v.Int == 0 {
				info := m.Prog.Asserts[fi.A]
				m.setFault(&Fault{Kind: FaultAssert,
					Msg: fmt.Sprintf("assert(%s) failed", info.Expr), Pos: info.Pos}, p)
				return
			}
			pcF++

		case ir.FHalt:
			p.Status = PHalted
			return

		case ir.FSend, ir.FSendCommit, ir.FLoadSend, ir.FConstSend:
			var v Value
			var chanID, flags int
			isCommit := fi.Op == ir.FSendCommit
			switch fi.Op {
			case ir.FSend, ir.FSendCommit:
				v = p.pop()
				chanID, flags = int(fi.A), int(fi.B)
			case ir.FLoadSend:
				v = p.Locals[fi.A]
				chanID, flags = int(fi.B), int(fi.C)
				p.PC = int(fi.Base) + 1 // the Send component's pc
			case ir.FConstSend:
				v = Value{Int: fi.Val}
				chanID, flags = int(fi.B), int(fi.C)
				p.PC = int(fi.Base) + 1
			}
			p.Pending = v
			p.PendingFlags = flags
			p.WaitChan = chanID
			p.ResumePC = int(fi.Base) + int(fi.N)
			if (!m.Config.Manual || isCommit) && m.tryCompleteSend(p) {
				if m.flt != nil {
					return
				}
				pcF = int(fp.Map[p.ResumePC])
				continue
			}
			if m.flt != nil {
				return
			}
			if isCommit {
				m.setFault(&Fault{Kind: FaultNoMatchingPort,
					Msg: fmt.Sprintf("committed send on channel %s matches no waiting receiver",
						m.Prog.Channels[chanID].Name)}, p)
				return
			}
			p.Status = PBlockedSend
			m.regSend(p, chanID)
			return

		case ir.FRecv:
			p.WaitChan = int(fi.A)
			p.WaitPort = int(fi.B)
			p.ResumePC = int(fi.Base) + 1
			if !m.Config.Manual && m.tryCompleteRecv(p) {
				if m.flt != nil {
					return
				}
				pcF = int(fp.Map[p.ResumePC])
				continue
			}
			if m.flt != nil {
				return
			}
			p.Status = PBlockedRecv
			m.regRecv(p, int(fi.A))
			return

		case ir.FSendDir:
			v := p.pop()
			p.Pending = v
			p.PendingFlags = int(fi.B)
			p.WaitChan = int(fi.A)
			p.ResumePC = int(fi.Base) + int(fi.N)
			if next, ok := m.fusedSendDir(p, fp, fi); ok {
				pcF = next
				continue
			}
			return

		case ir.FRecvDir:
			chanID := int(fi.A)
			p.WaitChan = chanID
			p.WaitPort = int(fi.B)
			p.ResumePC = int(fi.Base) + int(fi.N)
			if m.sched != nil {
				// Static rendezvous: the schedule proves process fi.C is the
				// only sender on this channel, so the partner search inspects
				// it alone, for the one MaskCheck the narrowed phase-1 scan
				// pays.
				m.chargeEv(obs.KindMaskCheck, m.Cost.MaskCheck)
				m.Stats.MaskChecks++
				s := m.Procs[fi.C]
				if s.Status == PBlockedSend && s.WaitChan == chanID &&
					m.deliver(s.Pending, s.PendingFlags, s.ID, p, p.WaitPort) {
					if m.flt != nil {
						return
					}
					m.Stats.DirectXfers++
					m.unblock(s, s.ResumePC)
					pcF = int(fp.Map[p.ResumePC])
					continue
				}
				if m.flt != nil {
					return
				}
				// The baseline's failed search pays a second MaskCheck (the
				// phase-2 alt-arm pass) before blocking.
				m.chargeEv(obs.KindMaskCheck, m.Cost.MaskCheck)
				m.Stats.MaskChecks++
				p.Status = PBlockedRecv
				return
			}
			// No static schedule (manual or queue mode): the generic path.
			if !m.Config.Manual && m.tryCompleteRecv(p) {
				if m.flt != nil {
					return
				}
				pcF = int(fp.Map[p.ResumePC])
				continue
			}
			if m.flt != nil {
				return
			}
			p.Status = PBlockedRecv
			m.regRecv(p, chanID)
			return

		case ir.FXferRec:
			// The NewRecord half can fault and emits an alloc trace, both of
			// which must observe the meter exactly as the baseline leaves it
			// after one instruction — so the prologue's two-instruction bulk
			// charge is unwound to one here, and the Send's instruction is
			// charged once the record exists.
			m.Cycles -= m.Cost.PerInstr
			m.Stats.Instrs--
			if !m.xferRecAlloc(p, fi) {
				return
			}
			m.Cycles += m.Cost.PerInstr
			m.Stats.Instrs++
			p.PC = int(fi.Base) + 1
			v := p.pop()
			flags := 0
			if fi.Sense {
				flags = ir.FlagFreeAfter
			}
			p.Pending = v
			p.PendingFlags = flags
			p.WaitChan = int(fi.A)
			p.ResumePC = int(fi.Base) + int(fi.N)
			if next, ok := m.fusedSendDir(p, fp, fi); ok {
				pcF = next
				continue
			}
			return

		case ir.FAlt:
			p.AltIdx = int(fi.A)
			if m.Config.Manual {
				p.Status = PBlockedAlt
				return
			}
			next, cont := m.altStep(p)
			if m.flt != nil {
				return
			}
			if cont {
				// altStep's continuation pcs (arm eval/body starts) are
				// entry points, so their translation is defined.
				pcF = int(fp.Map[next])
				continue
			}
			return // altStep parked p (blocked alt or collapsed blocked recv)

		// Superinstructions.
		case ir.FIncrLocal:
			p.Locals[fi.A] = Value{Int: p.Locals[fi.A].Int + fi.Val}
			pcF++
		case ir.FLCCmpBr:
			if fusedCmp(fi.Sub, p.Locals[fi.A].Int, fi.Val) == fi.Sense {
				pcF = int(fi.B)
			} else {
				pcF++
			}
		case ir.FLLCmpBr:
			if fusedCmp(fi.Sub, p.Locals[fi.A].Int, p.Locals[fi.C].Int) == fi.Sense {
				pcF = int(fi.B)
			} else {
				pcF++
			}
		case ir.FCmpBr:
			y := p.pop()
			x := p.pop()
			if fusedCmp(fi.Sub, x.Int, y.Int) == fi.Sense {
				pcF = int(fi.B)
			} else {
				pcF++
			}
		case ir.FLCBin:
			r, ok := fusedBin(fi.Sub, p.Locals[fi.A].Int, fi.Val)
			if !ok {
				p.PC = int(fi.Base) + 2 // the Div/Mod component's pc
				m.setFault(&Fault{Kind: FaultDivByZero, Msg: divMsg(fi.Sub)}, p)
				return
			}
			p.push(r)
			pcF++
		case ir.FLLBin:
			r, ok := fusedBin(fi.Sub, p.Locals[fi.A].Int, p.Locals[fi.C].Int)
			if !ok {
				p.PC = int(fi.Base) + 2
				m.setFault(&Fault{Kind: FaultDivByZero, Msg: divMsg(fi.Sub)}, p)
				return
			}
			p.push(r)
			pcF++
		case ir.FLCBinSt:
			r, _ := fusedBin(fi.Sub, p.Locals[fi.A].Int, fi.Val) // Sub is pure here
			p.Locals[fi.B] = r
			pcF++
		case ir.FLLBinSt:
			r, _ := fusedBin(fi.Sub, p.Locals[fi.A].Int, p.Locals[fi.C].Int)
			p.Locals[fi.B] = r
			pcF++
		case ir.FConstSt:
			p.Locals[fi.B] = Value{Int: fi.Val}
			pcF++
		case ir.FMove:
			p.Locals[fi.B] = p.Locals[fi.A]
			pcF++
		case ir.FLoadField:
			v := p.Locals[fi.A]
			p.PC = int(fi.Base) + 1 // the GetField component's pc
			o := m.checkObj(v, p)
			if o == nil {
				return
			}
			p.push(o.Elems[fi.B])
			pcF++

		default:
			m.setFault(&Fault{Kind: FaultInternal, Msg: fmt.Sprintf("bad fused opcode %s", fi.Op)}, p)
			return
		}
	}
}

// fusedSendDir performs the send half of FSendDir/FXferRec: the value and
// blocking descriptor are already on p. It returns the fused pc to
// continue at and true, or false when p blocked or faulted (the caller
// returns). With the static schedule live, the partner search inspects
// only process fi.C — the schedule proves it is the only process with a
// receive site on the channel — for the same single MaskCheck the
// narrowed scan pays.
func (m *Machine) fusedSendDir(p *ProcInst, fp *ir.FusedProc, fi *ir.FInstr) (int, bool) {
	chanID := p.WaitChan
	if m.sched != nil {
		m.chargeEv(obs.KindMaskCheck, m.Cost.MaskCheck)
		m.Stats.MaskChecks++
		r := m.Procs[fi.C]
		if r.Status == PBlockedRecv && r.WaitChan == chanID &&
			m.deliver(p.Pending, p.PendingFlags, p.ID, r, r.WaitPort) {
			if m.flt != nil {
				return 0, false
			}
			m.Stats.DirectXfers++
			m.unblock(r, r.ResumePC)
			p.Pending = Value{}
			return int(fp.Map[p.ResumePC]), true
		}
		if m.flt != nil {
			return 0, false
		}
		// The channel is internal (fused pairs always are), so there is no
		// external binding to consult: block.
		p.Status = PBlockedSend
		return 0, false
	}
	// No static schedule (manual mode, wait queues): the generic send path.
	if !m.Config.Manual && m.tryCompleteSend(p) {
		if m.flt != nil {
			return 0, false
		}
		return int(fp.Map[p.ResumePC]), true
	}
	if m.flt != nil {
		return 0, false
	}
	p.Status = PBlockedSend
	m.regSend(p, chanID)
	return 0, false
}

// xferRecAlloc runs the NewRecord half of an FXferRec exactly as the
// baseline would: allocate, absorb or link the B fields popped from the
// stack, push the result. Returns false when it faulted (the caller must
// have set p.PC to the NewRecord's base pc and charged exactly one
// PerInstr beforehand, so fault attribution and the meter match the
// baseline).
func (m *Machine) xferRecAlloc(p *ProcInst, fi *ir.FInstr) bool {
	o := m.heap.Alloc(fi.Type, int(fi.B))
	if o == nil {
		m.setFault(&Fault{Kind: FaultOutOfObjects, Msg: "allocation failed: live-object bound exceeded"}, p)
		return false
	}
	m.chargeEv(obs.KindAlloc, m.Cost.Alloc)
	m.Stats.Allocs++
	m.traceAlloc(p.ID)
	for i := int(fi.B) - 1; i >= 0; i-- {
		v := p.pop()
		o.Elems[i] = v
		if v.IsRef && fi.Val&(1<<i) == 0 {
			if f := m.heap.Link(v.Ref); f != nil {
				m.setFault(f, p)
				return false
			}
			m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
			m.Stats.RefOps++
		}
	}
	p.push(RefVal(o))
	return true
}

// fusedCmp evaluates a comparison operator on raw ints.
func fusedCmp(op ir.Op, x, y int64) bool {
	switch op {
	case ir.Eq:
		return x == y
	case ir.Ne:
		return x != y
	case ir.Lt:
		return x < y
	case ir.Le:
		return x <= y
	case ir.Gt:
		return x > y
	default: // ir.Ge
		return x >= y
	}
}

// fusedBin evaluates a binary operator; ok is false on division or modulo
// by zero (the caller faults without pushing).
func fusedBin(op ir.Op, x, y int64) (Value, bool) {
	switch op {
	case ir.Add:
		return IntVal(x + y), true
	case ir.Sub:
		return IntVal(x - y), true
	case ir.Mul:
		return IntVal(x * y), true
	case ir.Div:
		if y == 0 {
			return Value{}, false
		}
		return IntVal(x / y), true
	case ir.Mod:
		if y == 0 {
			return Value{}, false
		}
		return IntVal(x % y), true
	default:
		return BoolVal(fusedCmp(op, x, y)), true
	}
}

func divMsg(op ir.Op) string {
	if op == ir.Mod {
		return "modulo by zero"
	}
	return "division by zero"
}
