package vm

import (
	"fmt"

	"esplang/internal/ir"
	"esplang/internal/obs"
)

// push/pop are the interpreter's stack primitives. They are methods (not
// per-exec closures) so a scheduling quantum allocates nothing: the old
// closure trio (push/pop/checkObj) cost three heap allocations every time
// a process was resumed, which dominated short quanta.
func (p *ProcInst) push(v Value) { p.Stack = append(p.Stack, v) }

func (p *ProcInst) pop() Value {
	n := len(p.Stack) - 1
	v := p.Stack[n]
	p.Stack = p.Stack[:n]
	return v
}

// checkObj verifies the object is live before access: the memory safety
// property the verifier checks exhaustively (§5.2).
func (m *Machine) checkObj(v Value, p *ProcInst) *Object {
	if !v.IsRef || v.Ref == nil {
		m.setFault(&Fault{Kind: FaultInternal, Msg: "scalar where reference expected"}, p)
		return nil
	}
	if v.Ref.Freed {
		m.setFault(&Fault{Kind: FaultUseAfterFree,
			Msg: fmt.Sprintf("access to freed object %s", v.Ref)}, p)
		return nil
	}
	return v.Ref
}

// exec runs process p until it blocks, halts, or faults, dispatching to
// the engine the machine was configured with. The fused engine bows out
// while a profiler is installed: per-line cycle attribution needs the
// per-instruction charge points of the baseline loop, and profiled runs
// are not on the hot path.
func (m *Machine) exec(p *ProcInst) {
	if m.compiled != nil && m.prof == nil {
		m.compiled[p.ID](m, p)
		return
	}
	if m.fused != nil && m.prof == nil {
		m.execFused(p)
		return
	}
	m.execBase(p)
}

// execBase is the baseline interpreter and the differential-testing
// oracle for the fused engine. It implements the non-preemptive execution
// discipline of §6.1: between blocking points a process runs
// uninterrupted.
func (m *Machine) execBase(p *ProcInst) {
	code := p.Def.Code
	pc := p.PC
	var steps int64

	for m.flt == nil {
		steps++
		if steps > m.Config.StepBudget {
			p.PC = pc
			m.setFault(&Fault{Kind: FaultStep,
				Msg: fmt.Sprintf("process executed more than %d instructions without blocking", m.Config.StepBudget)}, p)
			return
		}
		in := code[pc]
		if m.prof != nil {
			m.curLine = in.Pos.Line
		}
		m.chargeEv(obs.KindInstr, m.Cost.PerInstr)
		m.Stats.Instrs++
		p.PC = pc

		switch in.Op {
		case ir.Nop:
			pc++
		case ir.Const:
			p.push(Value{Int: in.Val})
			pc++
		case ir.SelfID:
			p.push(IntVal(int64(p.ID)))
			pc++
		case ir.LoadLocal:
			p.push(p.Locals[in.A])
			pc++
		case ir.StoreLocal:
			p.Locals[in.A] = p.pop()
			pc++
		case ir.Dup:
			p.push(p.Stack[len(p.Stack)-1])
			pc++
		case ir.Pop:
			p.pop()
			pc++

		case ir.Neg:
			v := p.pop()
			p.push(IntVal(-v.Int))
			pc++
		case ir.Not:
			v := p.pop()
			p.push(BoolVal(v.Int == 0))
			pc++
		case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Mod,
			ir.Eq, ir.Ne, ir.Lt, ir.Le, ir.Gt, ir.Ge:
			y := p.pop()
			x := p.pop()
			var r Value
			switch in.Op {
			case ir.Add:
				r = IntVal(x.Int + y.Int)
			case ir.Sub:
				r = IntVal(x.Int - y.Int)
			case ir.Mul:
				r = IntVal(x.Int * y.Int)
			case ir.Div:
				if y.Int == 0 {
					m.setFault(&Fault{Kind: FaultDivByZero, Msg: "division by zero"}, p)
					return
				}
				r = IntVal(x.Int / y.Int)
			case ir.Mod:
				if y.Int == 0 {
					m.setFault(&Fault{Kind: FaultDivByZero, Msg: "modulo by zero"}, p)
					return
				}
				r = IntVal(x.Int % y.Int)
			case ir.Eq:
				r = BoolVal(x.Int == y.Int)
			case ir.Ne:
				r = BoolVal(x.Int != y.Int)
			case ir.Lt:
				r = BoolVal(x.Int < y.Int)
			case ir.Le:
				r = BoolVal(x.Int <= y.Int)
			case ir.Gt:
				r = BoolVal(x.Int > y.Int)
			case ir.Ge:
				r = BoolVal(x.Int >= y.Int)
			}
			p.push(r)
			pc++

		case ir.Jump:
			pc = in.A
		case ir.JumpIfFalse:
			if p.pop().Int == 0 {
				pc = in.A
			} else {
				pc++
			}
		case ir.JumpIfTrue:
			if p.pop().Int != 0 {
				pc = in.A
			} else {
				pc++
			}

		case ir.NewRecord:
			t := m.Prog.Universe.ByID(in.A)
			o := m.heap.Alloc(t, in.B)
			if o == nil {
				m.setFault(&Fault{Kind: FaultOutOfObjects, Msg: "allocation failed: live-object bound exceeded"}, p)
				return
			}
			m.chargeEv(obs.KindAlloc, m.Cost.Alloc)
			m.Stats.Allocs++
			m.traceAlloc(p.ID)
			for i := in.B - 1; i >= 0; i-- {
				v := p.pop()
				o.Elems[i] = v
				// Borrowed (non-fresh) reference children are linked; fresh
				// temporaries are absorbed (their allocation ref moves into
				// the record).
				if v.IsRef && in.Val&(1<<i) == 0 {
					if f := m.heap.Link(v.Ref); f != nil {
						m.setFault(f, p)
						return
					}
					m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
					m.Stats.RefOps++
				}
			}
			p.push(RefVal(o))
			pc++
		case ir.NewUnion:
			t := m.Prog.Universe.ByID(in.A)
			v := p.pop()
			o := m.heap.Alloc(t, 1)
			if o == nil {
				m.setFault(&Fault{Kind: FaultOutOfObjects, Msg: "allocation failed: live-object bound exceeded"}, p)
				return
			}
			m.chargeEv(obs.KindAlloc, m.Cost.Alloc)
			m.Stats.Allocs++
			m.traceAlloc(p.ID)
			o.Tag = in.B
			o.Elems[0] = v
			if v.IsRef && in.Val&1 == 0 {
				if f := m.heap.Link(v.Ref); f != nil {
					m.setFault(f, p)
					return
				}
				m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
				m.Stats.RefOps++
			}
			p.push(RefVal(o))
			pc++
		case ir.NewArray:
			t := m.Prog.Universe.ByID(in.A)
			init := p.pop()
			count := p.pop()
			if count.Int < 0 {
				m.setFault(&Fault{Kind: FaultIndexOOB, Msg: fmt.Sprintf("array size %d is negative", count.Int)}, p)
				return
			}
			if count.Int > MaxAllocElems {
				m.setFault(&Fault{Kind: FaultOutOfObjects, Msg: fmt.Sprintf("array size %d exceeds the %d-element object limit", count.Int, MaxAllocElems)}, p)
				return
			}
			o := m.heap.Alloc(t, int(count.Int))
			if o == nil {
				m.setFault(&Fault{Kind: FaultOutOfObjects, Msg: "allocation failed: live-object bound exceeded"}, p)
				return
			}
			m.chargeEv(obs.KindAlloc, m.Cost.Alloc)
			m.Stats.Allocs++
			m.traceAlloc(p.ID)
			for i := range o.Elems {
				o.Elems[i] = init
			}
			p.push(RefVal(o))
			pc++

		case ir.GetField:
			o := m.checkObj(p.pop(), p)
			if o == nil {
				return
			}
			p.push(o.Elems[in.A])
			pc++
		case ir.SetField:
			v := p.pop()
			o := m.checkObj(p.pop(), p)
			if o == nil {
				return
			}
			old := o.Elems[in.A]
			o.Elems[in.A] = v
			if v.IsRef {
				if f := m.heap.Link(v.Ref); f != nil {
					m.setFault(f, p)
					return
				}
				m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
				m.Stats.RefOps++
			}
			if old.IsRef {
				if f := m.heap.Unlink(old.Ref); f != nil {
					m.setFault(f, p)
					return
				}
				m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
				m.Stats.RefOps++
			}
			pc++
		case ir.GetIndex:
			i := p.pop()
			o := m.checkObj(p.pop(), p)
			if o == nil {
				return
			}
			if i.Int < 0 || int(i.Int) >= len(o.Elems) {
				m.setFault(&Fault{Kind: FaultIndexOOB,
					Msg: fmt.Sprintf("index %d out of bounds for array of %d", i.Int, len(o.Elems))}, p)
				return
			}
			p.push(o.Elems[i.Int])
			pc++
		case ir.SetIndex:
			v := p.pop()
			i := p.pop()
			o := m.checkObj(p.pop(), p)
			if o == nil {
				return
			}
			if i.Int < 0 || int(i.Int) >= len(o.Elems) {
				m.setFault(&Fault{Kind: FaultIndexOOB,
					Msg: fmt.Sprintf("index %d out of bounds for array of %d", i.Int, len(o.Elems))}, p)
				return
			}
			o.Elems[i.Int] = v
			pc++
		case ir.UnionGet:
			o := m.checkObj(p.pop(), p)
			if o == nil {
				return
			}
			if o.Tag != in.A {
				m.setFault(&Fault{Kind: FaultTagMismatch,
					Msg: fmt.Sprintf("union has tag %d, pattern requires %d", o.Tag, in.A)}, p)
				return
			}
			p.push(o.Elems[0])
			pc++

		case ir.Link:
			o := m.checkObj(p.pop(), p)
			if o == nil {
				return
			}
			if f := m.heap.Link(o); f != nil {
				m.setFault(f, p)
				return
			}
			m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
			m.Stats.RefOps++
			pc++
		case ir.Unlink:
			v := p.pop()
			if !v.IsRef || v.Ref == nil {
				m.setFault(&Fault{Kind: FaultInternal, Msg: "unlink of scalar"}, p)
				return
			}
			if f := m.heap.Unlink(v.Ref); f != nil {
				m.setFault(f, p)
				return
			}
			m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
			m.Stats.RefOps++
			pc++
		case ir.CastCopy:
			o := m.checkObj(p.pop(), p)
			if o == nil {
				return
			}
			t := m.Prog.Universe.ByID(in.A)
			n := m.heap.Alloc(t, len(o.Elems))
			if n == nil {
				m.setFault(&Fault{Kind: FaultOutOfObjects, Msg: "allocation failed: live-object bound exceeded"}, p)
				return
			}
			m.chargeEv(obs.KindAlloc, m.Cost.Alloc)
			m.Stats.Allocs++
			m.traceAlloc(p.ID)
			n.Tag = o.Tag
			copy(n.Elems, o.Elems)
			for _, e := range n.Elems {
				if e.IsRef {
					if f := m.heap.Link(e.Ref); f != nil {
						m.setFault(f, p)
						return
					}
					m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
					m.Stats.RefOps++
				}
			}
			p.push(RefVal(n))
			pc++
		case ir.CastReuse:
			// Optimizer-inserted: the source object is dead afterwards, so
			// it is retyped in place (§4.2: "the compiler can avoid
			// creating a new object").
			o := m.checkObj(p.pop(), p)
			if o == nil {
				return
			}
			o.Type = m.Prog.Universe.ByID(in.A)
			p.push(RefVal(o))
			pc++

		case ir.Assert:
			v := p.pop()
			if v.Int == 0 {
				info := m.Prog.Asserts[in.A]
				m.setFault(&Fault{Kind: FaultAssert,
					Msg: fmt.Sprintf("assert(%s) failed", info.Expr), Pos: info.Pos}, p)
				return
			}
			pc++

		case ir.Halt:
			p.Status = PHalted
			p.PC = pc
			return

		case ir.Send, ir.SendCommit:
			v := p.pop()
			p.Pending = v
			p.PendingFlags = in.B
			p.WaitChan = in.A
			p.ResumePC = pc + 1
			if (!m.Config.Manual || in.Op == ir.SendCommit) && m.tryCompleteSend(p) {
				if m.flt != nil {
					return
				}
				pc = p.ResumePC
				continue
			}
			if m.flt != nil {
				return
			}
			if in.Op == ir.SendCommit {
				// A committed send found no matching receiver: the value
				// did not match the pattern of the process that made the
				// alt arm look ready.
				m.setFault(&Fault{Kind: FaultNoMatchingPort,
					Msg: fmt.Sprintf("committed send on channel %s matches no waiting receiver",
						m.Prog.Channels[in.A].Name)}, p)
				return
			}
			p.Status = PBlockedSend
			m.regSend(p, in.A)
			return

		case ir.Recv:
			p.WaitChan = in.A
			p.WaitPort = in.B
			p.ResumePC = pc + 1
			if !m.Config.Manual && m.tryCompleteRecv(p) {
				if m.flt != nil {
					return
				}
				pc = p.ResumePC
				continue
			}
			if m.flt != nil {
				return
			}
			p.Status = PBlockedRecv
			m.regRecv(p, in.A)
			return

		case ir.Alt:
			p.AltIdx = in.A
			if m.Config.Manual {
				p.Status = PBlockedAlt
				return
			}
			next, cont := m.altStep(p)
			if m.flt != nil {
				return
			}
			if cont {
				pc = next
				continue
			}
			return // altStep parked p (blocked alt or collapsed blocked recv)

		default:
			m.setFault(&Fault{Kind: FaultInternal, Msg: fmt.Sprintf("bad opcode %s", in.Op)}, p)
			return
		}
	}
}
