package vm

import (
	"fmt"

	"esplang/internal/ir"
	"esplang/internal/obs"
)

// ProcStatus is the scheduling state of a process instance.
type ProcStatus uint8

// Process states. A blocked process is parked at a Send/Recv/Alt
// instruction; only its program counter and blocking descriptor are live —
// the paper's stack-less context switch (§6.1).
const (
	PReady ProcStatus = iota
	PBlockedSend
	PBlockedRecv
	PBlockedAlt
	PHalted
)

func (s ProcStatus) String() string {
	switch s {
	case PReady:
		return "ready"
	case PBlockedSend:
		return "blocked(send)"
	case PBlockedRecv:
		return "blocked(recv)"
	case PBlockedAlt:
		return "blocked(alt)"
	case PHalted:
		return "halted"
	}
	return "?"
}

// ProcInst is one running process.
type ProcInst struct {
	Def    *ir.Proc
	ID     int
	PC     int
	Locals []Value
	Stack  []Value
	Status ProcStatus

	// Blocked-send state.
	Pending      Value
	PendingFlags int

	// Blocking descriptor: the channel (send/recv), port (recv), alt
	// table index (alt), and the pc to resume at once the communication
	// completes.
	WaitChan int
	WaitPort int
	AltIdx   int
	ResumePC int
}

// Config controls machine behavior.
type Config struct {
	// Manual disables eager rendezvous: Send/Recv/Alt block immediately
	// and communications are fired explicitly (model-checker mode).
	// SendCommit still auto-completes: it is the second half of an
	// already-chosen transition.
	Manual bool
	// UseWaitQueues selects the per-channel wait-queue implementation of
	// blocking instead of the paper's per-process bit-mask scan (§6.1
	// ablation).
	UseWaitQueues bool
	// ForceDeepCopy makes every rendezvous physically deep-copy the
	// message instead of adjusting reference counts (§6.2 ablation).
	ForceDeepCopy bool
	// MaxLiveObjects bounds the heap; exceeding it faults (leak
	// detection, §5.2). Zero means unlimited.
	MaxLiveObjects int
	// StepBudget bounds the instructions one process may execute between
	// blocking points (runaway-loop guard). Zero means the default.
	StepBudget int64
	// MaxCycles, when positive, bounds the machine's total cycle meter:
	// once exceeded, the next process resumption faults. StepBudget
	// cannot catch a program that rendezvouses forever (each blocking
	// point resets the per-process counter), so an infinite producer/
	// consumer ping-pong runs — and a tracer accumulates — without
	// bound. Cycle accounting is bit-identical across engines, so every
	// engine truncates the same program at the same process and point.
	// Zero means unlimited (the firmware default: a switch program is
	// supposed to run forever).
	MaxCycles int64
	// Engine selects the interpreter (zero value: the fused engine).
	Engine Engine
}

const defaultStepBudget = 50_000_000

// Machine executes one compiled ESP program.
type Machine struct {
	Prog   *ir.Program
	Procs  []*ProcInst
	Cost   CostModel
	Stats  Stats
	Cycles int64
	Config Config

	heap  Heap
	ready []int // LIFO stack of ready proc indices (stack-based policy, §6.1)
	flt   *Fault

	// fused is the fused-engine translation of the program, nil when the
	// baseline engine was selected. It is immutable and shared by clones.
	fused []*ir.FusedProc

	// compiled holds the generated native step functions of the compiled
	// engine (one per process, installed by InstallCompiled); nil for
	// every other engine, in which case an EngineCompiled machine runs
	// the baseline loop.
	compiled []CompiledProc

	// sched is the runtime form of the static rendezvous schedule
	// (process-fused engine, auto + bit-mask mode only; nil otherwise).
	// Immutable and shared by clones; schedStore is its backing storage
	// so New performs no extra allocation for it.
	sched      *schedRT
	schedStore schedRT

	// State-snapshot scratch (see savedstate.go and encode.go): a
	// per-machine generation counter for object-graph marking, the
	// encoder's reusable buffer, and the pool of objects RestoreState
	// rebuilds the heap into. None of this is shared between machines.
	markGen int64
	encBuf  []byte
	objPool []*Object

	// Sorted external-channel ID lists, rebuilt lazily after every
	// BindWriter/BindReader, so Poll does not sort on every call.
	extWIDsC []int
	extRIDsC []int

	// commitTarget/commitArm pin the receiver (and its alt arm, or -1)
	// the next SendCommit must deliver to; set by the model checker's
	// FireComm, -1 otherwise.
	commitTarget int
	commitArm    int

	// External bindings, indexed by channel ID (nil = unbound). Slices
	// rather than maps: tryCompleteSend/Recv and Poll consult them on
	// every communication, and the index is hot enough that map hashing
	// showed up in firmware profiles.
	extW []ExternalWriter
	extR []ExternalReader

	// Wait-queue mode state (UseWaitQueues; nil maps otherwise — the
	// unconditional reads and deletes below are no-ops on nil).
	sendQ map[int][]int
	recvQ map[int][]int

	// Observability (all nil/zero when off — see obs.go). curLine is the
	// source line of the instruction being executed, maintained only while
	// a profiler is installed. allIdx caches the all-processes index list
	// the bit-mask candidate scan returns, built lazily on first use.
	tracer obs.Tracer
	rec    *obs.FlightRecorder
	// Pre-packed Record arguments, built by SetRecorder so every trace
	// site is two loads and a call: PA(id, 0) words by proc ID, and NK
	// words (kind + interned name) by proc ID, channel ID, or status.
	// recStop is indexed p.Status&7 so the bounds check folds away.
	recPA    []uint64
	recStart []uint64
	recStop  [8]uint64
	recRend  []uint64
	recPoll  []uint64
	prof     *obs.Profiler
	clock    func() int64
	curLine  int
	allIdx   []int

	metrics *obs.Metrics
	mRend   []*obs.Counter
	mCtx    *obs.Counter
	mAllocs *obs.Counter
	mFrees  *obs.Counter
	mPolls  *obs.Counter
	mReady  *obs.Histogram
}

// New creates a machine for prog. All processes start ready, in
// declaration order.
func New(prog *ir.Program, cfg Config) *Machine {
	if cfg.StepBudget == 0 {
		cfg.StepBudget = defaultStepBudget
	}
	m := &Machine{
		Prog:         prog,
		Config:       cfg,
		Cost:         DefaultCostModel(),
		extW:         make([]ExternalWriter, len(prog.Channels)),
		extR:         make([]ExternalReader, len(prog.Channels)),
		commitTarget: -1,
		commitArm:    -1,
	}
	if cfg.UseWaitQueues {
		m.sendQ = make(map[int][]int)
		m.recvQ = make(map[int][]int)
	}
	m.heap.MaxLive = cfg.MaxLiveObjects
	switch cfg.Engine {
	case EngineFused:
		m.fused = prog.Fused
		if m.fused == nil {
			// The program was not fused ahead of time (optimizer skipped or
			// bypassed); translate locally without touching the shared
			// program.
			m.fused = ir.FuseProgram(prog)
		}
	case EngineProcFused:
		m.fused = prog.FusedSched
		if m.fused == nil {
			// No schedule-aware translation cached (process fusion off in
			// the optimizer): run the plain fused form; the schedule fast
			// paths stay off.
			m.fused = prog.Fused
			if m.fused == nil {
				m.fused = ir.FuseProgram(prog)
			}
		} else if !cfg.Manual && !cfg.UseWaitQueues && prog.Schedule != nil {
			// The static schedule drives the fast paths only in auto,
			// bit-mask mode: Manual machines (the model checker) enumerate
			// communications themselves, and queue mode's charges are tied
			// to the dynamic queues.
			m.schedStore = schedRT{writers: prog.Schedule.Writers,
				readers: prog.Schedule.Readers, internal: prog.Schedule.Internal}
			m.sched = &m.schedStore
		}
		if !cfg.Manual {
			// Recycle the element storage of freed objects: the snapshot
			// machinery of Manual machines owns object lifetimes,
			// everything else is free to reuse the backing arrays. Object
			// shells are never reused (they tombstone dangling
			// references), so this is observable on no program — buggy or
			// not.
			m.heap.recycle = true
		}
	case EngineCompiled:
		// The compiled engine mirrors the baseline's rendezvous machinery
		// exactly (full-table partner scans, no static schedule), so the
		// generated code's accounting is bit-identical to the oracle by
		// construction. Element-storage recycling is unobservable (see the
		// ProcFused case above), so the native code gets it too. Until
		// InstallCompiled provides the generated step functions, the
		// machine runs the baseline loop.
		if !cfg.Manual {
			m.heap.recycle = true
		}
	}
	// Process instances, locals, and stacks live in two block allocations:
	// firmware benchmarks build a machine per run, and the per-process
	// make calls were a measurable slice of their profiles. The full slice
	// expressions below wall each region off so an append past a stack's
	// capacity reallocates instead of bleeding into its neighbor.
	insts := make([]ProcInst, len(prog.Procs))
	nvals := 0
	for _, pd := range prog.Procs {
		nvals += pd.NumLocals + pd.MaxStack
	}
	vals := make([]Value, nvals)
	m.Procs = make([]*ProcInst, len(prog.Procs))
	off := 0
	for i, pd := range prog.Procs {
		p := &insts[i]
		p.Def = pd
		p.ID = pd.ID
		p.Locals = vals[off : off+pd.NumLocals : off+pd.NumLocals]
		off += pd.NumLocals
		p.Stack = vals[off : off : off+pd.MaxStack]
		off += pd.MaxStack
		m.Procs[i] = p
	}
	// Push in reverse so the first-declared process runs first.
	m.ready = make([]int, 0, len(m.Procs)+4)
	for i := len(m.Procs) - 1; i >= 0; i-- {
		m.ready = append(m.ready, i)
	}
	m.hookHeap()
	return m
}

// Heap exposes the machine's heap (read-mostly; external bindings
// allocate through the New*V helpers).
func (m *Machine) Heap() *Heap { return &m.heap }

// Fault returns the first runtime fault, or nil.
func (m *Machine) Fault() *Fault { return m.flt }

// BindWriter attaches an external writer to the named channel.
func (m *Machine) BindWriter(chanName string, w ExternalWriter) error {
	ch := m.Prog.ChannelByName(chanName)
	if ch == nil {
		return fmt.Errorf("vm: no channel %q", chanName)
	}
	if ch.Ext != ir.ExtWriter {
		return fmt.Errorf("vm: channel %q is not an external-writer channel", chanName)
	}
	m.extW[ch.ID] = w
	m.extWIDsC = nil
	return nil
}

// BindReader attaches an external reader to the named channel.
func (m *Machine) BindReader(chanName string, r ExternalReader) error {
	ch := m.Prog.ChannelByName(chanName)
	if ch == nil {
		return fmt.Errorf("vm: no channel %q", chanName)
	}
	if ch.Ext != ir.ExtReader {
		return fmt.Errorf("vm: channel %q is not an external-reader channel", chanName)
	}
	m.extR[ch.ID] = r
	m.extRIDsC = nil
	return nil
}

func (m *Machine) setFault(f *Fault, p *ProcInst) {
	if m.flt != nil {
		return
	}
	if p != nil {
		f.Proc = p.Def.Name
		f.PC = p.PC
		if p.PC >= 0 && p.PC < len(p.Def.Code) {
			f.Pos = p.Def.Code[p.PC].Pos
		}
	}
	if f.File == "" {
		f.File = m.Prog.File
	}
	m.flt = f
	if m.tracer != nil || m.rec != nil {
		proc := -1
		if p != nil {
			proc = p.ID
		}
		if m.tracer != nil {
			m.tracer.Fault(m.now(), proc, f.Msg)
		}
		if m.rec != nil {
			m.rec.Fault(m.now(), proc, f.Msg)
		}
	}
}

// fault records a fault with no process attribution (used by external
// bindings and allocation helpers).
func (m *Machine) fault(f *Fault) { m.setFault(f, nil) }

// RunResult says why Run returned.
type RunResult int

// Run outcomes.
const (
	RunIdle   RunResult = iota // no ready process and no external input
	RunHalted                  // every process halted
	RunFault                   // a fault occurred (see Fault)
)

func (r RunResult) String() string {
	switch r {
	case RunIdle:
		return "idle"
	case RunHalted:
		return "halted"
	case RunFault:
		return "fault"
	}
	return "?"
}

// Run executes until every process halts, a fault occurs, or the machine
// goes idle (all processes blocked and no external input available). It
// is the firmware's main loop: drain ready work, then poll external
// channels (§6.1's idle loop).
func (m *Machine) Run() RunResult {
	for {
		m.RunReady()
		if m.flt != nil {
			return RunFault
		}
		if m.AllHalted() {
			return RunHalted
		}
		if !m.Poll() {
			return RunIdle
		}
	}
}

// RunReady executes ready processes until none remain or a fault occurs.
func (m *Machine) RunReady() {
	for m.flt == nil && len(m.ready) > 0 {
		idx := m.ready[len(m.ready)-1]
		m.ready = m.ready[:len(m.ready)-1]
		p := m.Procs[idx]
		if p.Status != PReady {
			continue // stale entry
		}
		if m.Config.MaxCycles > 0 && m.Cycles >= m.Config.MaxCycles {
			m.setFault(&Fault{Kind: FaultStep, Msg: fmt.Sprintf("cycle budget exhausted: machine exceeded %d cycles", m.Config.MaxCycles)}, p)
			return
		}
		if m.prof != nil && p.PC >= 0 && p.PC < len(p.Def.Code) {
			// Attribute the switch to the line being resumed.
			m.curLine = p.Def.Code[p.PC].Pos.Line
		}
		m.chargeEv(obs.KindCtxSwitch, m.Cost.CtxSwitch)
		m.Stats.CtxSwitches++
		if m.mCtx != nil {
			m.mCtx.Inc()
			m.mReady.Observe(int64(len(m.ready)))
		}
		if m.tracer != nil || m.rec != nil {
			ts := m.now()
			if m.tracer != nil {
				m.tracer.ProcStart(ts, p.ID, p.Def.Name)
			}
			if m.rec != nil {
				m.rec.Record(ts, m.recPA[p.ID], m.recStart[p.ID])
			}
			m.exec(p)
			ts = m.now()
			if m.tracer != nil {
				m.tracer.ProcStop(ts, p.ID, p.Status.String())
			}
			if m.rec != nil {
				m.rec.Record(ts, m.recPA[p.ID], m.recStop[p.Status&7])
			}
			continue
		}
		m.exec(p)
	}
}

// AllHalted reports whether every process has terminated.
func (m *Machine) AllHalted() bool {
	for _, p := range m.Procs {
		if p.Status != PHalted {
			return false
		}
	}
	return true
}

// Quiescent reports whether no process is ready (all blocked or halted).
func (m *Machine) Quiescent() bool {
	for _, p := range m.Procs {
		if p.Status == PReady {
			return false
		}
	}
	return true
}

func (m *Machine) enqueue(idx int) {
	m.ready = append(m.ready, idx)
}

// ---------------------------------------------------------------------------
// Wait registration (bit-mask mode is implicit: the candidate scans below
// walk the process table checking each process's blocking descriptor,
// charging MaskCheck per look — the paper's colocated bit-masks. Queue
// mode maintains explicit per-channel queues and pays QueueOp for every
// insertion and removal, including removal from all queues when an alt
// unblocks.)

func (m *Machine) regSend(p *ProcInst, chanID int) {
	if !m.Config.UseWaitQueues {
		return
	}
	m.sendQ[chanID] = append(m.sendQ[chanID], p.ID)
	m.chargeEv(obs.KindQueueOp, m.Cost.QueueOp)
	m.Stats.QueueOps++
}

func (m *Machine) regRecv(p *ProcInst, chanID int) {
	if !m.Config.UseWaitQueues {
		return
	}
	m.recvQ[chanID] = append(m.recvQ[chanID], p.ID)
	m.chargeEv(obs.KindQueueOp, m.Cost.QueueOp)
	m.Stats.QueueOps++
}

// unregister removes p from every wait queue (queue mode only). This is
// the cost the paper's bit-mask design avoids: an alt may sit in several
// queues, possibly mid-queue.
func (m *Machine) unregister(p *ProcInst) {
	if !m.Config.UseWaitQueues {
		return
	}
	for chanID, q := range m.sendQ {
		m.sendQ[chanID] = removeID(q, p.ID, m)
	}
	for chanID, q := range m.recvQ {
		m.recvQ[chanID] = removeID(q, p.ID, m)
	}
}

func removeID(q []int, id int, m *Machine) []int {
	for i, v := range q {
		m.chargeEv(obs.KindQueueOp, m.Cost.QueueOp)
		m.Stats.QueueOps++
		if v == id {
			return append(q[:i], q[i+1:]...)
		}
	}
	return q
}

// candidates returns the process indices to examine when looking for a
// partner blocked on chanID in the given direction. In bit-mask mode the
// whole search costs one or two mask-word checks — the masks of several
// processes are colocated in one integer (§6.1) — so the charge is per
// search, not per process examined.
func (m *Machine) candidates(chanID int, send bool) []int {
	if m.Config.UseWaitQueues {
		if send {
			return m.sendQ[chanID]
		}
		return m.recvQ[chanID]
	}
	m.chargeEv(obs.KindMaskCheck, m.Cost.MaskCheck)
	m.Stats.MaskChecks++
	return m.scanList(chanID, send)
}

// scanList returns the process indices the partner scans walk for
// chanID: the whole table, or — when the static schedule is available —
// only the processes with a reachable site on the channel. The narrowed
// lists are in ascending process order, so a scan finds the same first
// partner the full walk would. Charge-free: bit-mask searches pay per
// search in candidates, and Poll pays per external poll.
func (m *Machine) scanList(chanID int, send bool) []int {
	if m.sched != nil {
		if send {
			return m.sched.writers[chanID]
		}
		return m.sched.readers[chanID]
	}
	if len(m.allIdx) != len(m.Procs) {
		// Built once per machine (the process set is fixed after New) and
		// only ever read by the scan loops, so the scan is allocation-free.
		m.allIdx = make([]int, len(m.Procs))
		for i := range m.Procs {
			m.allIdx[i] = i
		}
	}
	return m.allIdx
}

// schedRT is the runtime form of the static rendezvous schedule: the
// per-channel candidate lists the scan loops iterate (ascending process
// indices), and the internal-channel flags that let the rendezvous path
// skip the external-binding lookups. Built once in New from the
// program's Schedule; immutable thereafter.
type schedRT struct {
	writers  [][]int
	readers  [][]int
	internal []bool
}
