package vm_test

import (
	"testing"

	"esplang/internal/opt"
	"esplang/internal/vm"
)

// TestCycleDecompositionExact pins the §6.2 accounting identity on every
// engine: the cycle meter is exactly the dot product of the event counters
// with the cost model. There is no Frees term (a free is bookkeeping the
// collector does between instructions, never charged), and DirectXfers —
// the process-fused engine's diagnostic — must contribute nothing: a
// direct transfer is a rendezvous that already paid the Rendezvous price.
func TestCycleDecompositionExact(t *testing.T) {
	engines := []struct {
		name string
		eng  vm.Engine
	}{
		{"baseline", vm.EngineBaseline},
		{"fused", vm.EngineFused},
		{"procfused", vm.EngineProcFused},
	}
	var cycles [3]int64
	for i, e := range engines {
		t.Run(e.name, func(t *testing.T) {
			prog := compileSrc(t, pingPongSrc)
			if _, err := opt.Run(prog, opt.All()); err != nil {
				t.Fatalf("opt: %v", err)
			}
			m := vm.New(prog, vm.Config{Engine: e.eng})
			if err := m.BindReader("outC", &vm.CollectReader{}); err != nil {
				t.Fatal(err)
			}
			if res := m.Run(); res == vm.RunFault {
				t.Fatalf("run result %v (fault: %v)", res, m.Fault())
			}
			c := m.Cost
			s := m.Stats
			want := s.Instrs*c.PerInstr +
				s.CtxSwitches*c.CtxSwitch +
				s.Rendezvous*c.Rendezvous +
				s.Allocs*c.Alloc +
				s.RefOps*c.RefOp +
				s.PatternNodes*c.PatternNode +
				s.MaskChecks*c.MaskCheck +
				s.QueueOps*c.QueueOp +
				s.Polls*c.ExternalPoll +
				s.DeepCopied*c.DeepCopyWord
			if m.Cycles != want {
				t.Errorf("cycle meter %d, decomposition says %d (stats: %s)",
					m.Cycles, want, s)
			}
			if e.eng == vm.EngineProcFused {
				if s.DirectXfers == 0 {
					t.Error("process-fused engine took no direct transfers on a fusable pair")
				}
				if s.DirectXfers > s.Rendezvous {
					t.Errorf("directxfers %d exceeds rendezvous %d", s.DirectXfers, s.Rendezvous)
				}
			} else if s.DirectXfers != 0 {
				t.Errorf("engine %s counted %d direct transfers", e.name, s.DirectXfers)
			}
			cycles[i] = m.Cycles
		})
	}
	if cycles[0] != cycles[1] || cycles[0] != cycles[2] {
		t.Errorf("engines disagree on total cycles: baseline=%d fused=%d procfused=%d",
			cycles[0], cycles[1], cycles[2])
	}
}
