package vm_test

import (
	"fmt"
	"testing"

	"esplang/internal/vm"
)

// mcSrc is a small manual-mode workload with a heap graph flowing
// through a rendezvous — the shape the model checker snapshots.
const mcSrc = `
type dataT = array of int
type msgT = record of { tag: int, data: dataT }
channel c: msgT
process producer {
    $n = 0;
    while (n < 3) {
        $d: dataT = { 2 -> n};
        out( c, { n, d});
        unlink( d);
        n = n + 1;
    }
}
process consumer {
    $n = 0;
    while (n < 3) {
        in( c, { $tag, $data});
        assert( data[0] >= 0);
        unlink( data);
        n = n + 1;
    }
}
`

func snapMachine(t *testing.T, src string) *vm.Machine {
	t.Helper()
	m := newMachine(t, src, vm.Config{Manual: true, MaxLiveObjects: 16})
	m.Cost = vm.ZeroCostModel()
	m.Settle()
	if f := m.Fault(); f != nil {
		t.Fatalf("settle fault: %v", f)
	}
	return m
}

// TestSavedStateRoundTrip: Save, mutate, RestoreState — the canonical
// encoding must come back bit-identical, transition after transition.
func TestSavedStateRoundTrip(t *testing.T) {
	m := snapMachine(t, mcSrc)
	var snap vm.SavedState
	for depth := 0; depth < 10; depth++ {
		comms := m.EnabledComms()
		if len(comms) == 0 {
			break
		}
		before := m.EncodeState()
		m.Save(&snap)

		m.FireComm(comms[0])
		if f := m.Fault(); f != nil {
			t.Fatalf("depth %d: fault: %v", depth, f)
		}
		after := m.EncodeState()
		if after == before {
			t.Fatalf("depth %d: transition did not change the encoded state", depth)
		}

		m.RestoreState(&snap)
		if got := m.EncodeState(); got != before {
			t.Fatalf("depth %d: restore does not round-trip:\nbefore %q\nafter  %q", depth, before, got)
		}
		// Advance for the next iteration.
		m.FireComm(comms[0])
	}
}

// TestSavedStateRestoreIntoSibling: a snapshot is self-contained, so
// restoring it into a different machine of the same program reproduces
// the state — the model checker's workers rely on exactly this.
func TestSavedStateRestoreIntoSibling(t *testing.T) {
	m1 := snapMachine(t, mcSrc)
	for i := 0; i < 3; i++ {
		comms := m1.EnabledComms()
		if len(comms) == 0 {
			break
		}
		m1.FireComm(comms[0])
	}
	snap := m1.Save(nil)
	want := m1.EncodeState()

	m2 := snapMachine(t, mcSrc)
	m2.RestoreState(snap)
	if got := m2.EncodeState(); got != want {
		t.Fatalf("sibling restore diverges:\nwant %q\ngot  %q", want, got)
	}
	// The sibling must be able to continue executing from the restored
	// state with identical behavior.
	c1, c2 := m1.EnabledComms(), m2.EnabledComms()
	if len(c1) != len(c2) {
		t.Fatalf("enabled comms diverge: %d vs %d", len(c1), len(c2))
	}
	if len(c1) > 0 {
		m1.FireComm(c1[0])
		m2.FireComm(c2[0])
		if m1.EncodeState() != m2.EncodeState() {
			t.Fatal("post-restore transitions diverge")
		}
	}
}

// TestSavedStateMatchesClone: restoring a snapshot reproduces the same
// semantic state as the (allocation-heavy) Clone it replaces.
func TestSavedStateMatchesClone(t *testing.T) {
	m := snapMachine(t, mcSrc)
	for i := 0; i < 2; i++ {
		if comms := m.EnabledComms(); len(comms) > 0 {
			m.FireComm(comms[0])
		}
	}
	clone := m.Clone()
	snap := m.Save(nil)

	m2 := snapMachine(t, mcSrc)
	m2.RestoreState(snap)
	if clone.EncodeState() != m2.EncodeState() {
		t.Fatal("Clone and Save/RestoreState disagree on the semantic state")
	}
}

// TestSavedStateSteadyStateAllocFree: once the snapshot arenas and the
// restore pool have grown to the workload's size, Save into an existing
// snapshot and RestoreState allocate nothing.
func TestSavedStateSteadyStateAllocFree(t *testing.T) {
	m := snapMachine(t, mcSrc)
	var snap vm.SavedState
	m.Save(&snap)
	m.RestoreState(&snap) // warm the object pool
	allocs := testing.AllocsPerRun(100, func() {
		m.Save(&snap)
		m.RestoreState(&snap)
	})
	if allocs > 0 {
		t.Errorf("steady-state Save+RestoreState allocates %.1f objects per cycle, want 0", allocs)
	}
}

// TestSaveRejectsWaitQueueMode: wait queues are derivable state the
// snapshot does not carry, so Save must refuse rather than silently
// drop them.
func TestSaveRejectsWaitQueueMode(t *testing.T) {
	m := newMachine(t, mcSrc, vm.Config{Manual: true, UseWaitQueues: true})
	defer func() {
		if recover() == nil {
			t.Fatal("Save in wait-queue mode did not panic")
		}
	}()
	m.Save(nil)
}

// countSrc builds a scalar rendezvous loop: two processes meeting n
// times. Execution of this program must not allocate per operation —
// the guard for the interpreter's closure-free hot path.
func countSrc(n int) string {
	return fmt.Sprintf(`
channel c: int
channel doneC: int external reader
process ping {
    $i = 0;
    while (i < %d) {
        out( c, i);
        i = i + 1;
    }
}
process pong {
    $i = 0;
    while (i < %d) {
        in( c, $v);
        i = i + 1;
    }
    out( doneC, 1);
}
`, n, n)
}

// TestExecAllocsIndependentOfWorkload: the interpreter loops (both
// engines) perform no per-instruction or per-context-switch heap
// allocation: total Go allocations for a 10x longer scalar workload must
// not grow with it.
func TestExecAllocsIndependentOfWorkload(t *testing.T) {
	for _, engine := range []vm.Engine{vm.EngineBaseline, vm.EngineFused} {
		t.Run(engine.String(), func(t *testing.T) {
			run := func(n int) float64 {
				prog := compileSrc(t, countSrc(n))
				return testing.AllocsPerRun(10, func() {
					m := vm.New(prog, vm.Config{Engine: engine})
					if err := m.BindReader("doneC", &vm.CollectReader{}); err != nil {
						t.Fatal(err)
					}
					if res := m.Run(); res != vm.RunHalted {
						t.Fatalf("run: %v (fault %v)", res, m.Fault())
					}
				})
			}
			short, long := run(50), run(500)
			// Machine construction allocates a fixed amount; the 10x longer
			// run may only add scheduling-slice noise, not O(n) closures.
			if long > short+8 {
				t.Errorf("allocations scale with workload: %d iters -> %.0f allocs, %d iters -> %.0f allocs",
					50, short, 500, long)
			}
		})
	}
}

// BenchmarkExecAllocs reports allocs/op for the scalar rendezvous loop
// under both engines — the benchmark-time guard that the hot path stays
// allocation-free (check the allocs/op column).
func BenchmarkExecAllocs(b *testing.B) {
	for _, engine := range []vm.Engine{vm.EngineBaseline, vm.EngineFused} {
		b.Run(engine.String(), func(b *testing.B) {
			prog, err := compileBench(countSrc(200))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := vm.New(prog, vm.Config{Engine: engine})
				if err := m.BindReader("doneC", &vm.CollectReader{}); err != nil {
					b.Fatal(err)
				}
				if res := m.Run(); res != vm.RunHalted {
					b.Fatalf("run: %v", res)
				}
			}
		})
	}
}

// BenchmarkSaveRestore measures the model checker's per-transition state
// capture: Save into a reused snapshot plus RestoreState.
func BenchmarkSaveRestore(b *testing.B) {
	prog, err := compileBench(mcSrc)
	if err != nil {
		b.Fatal(err)
	}
	m := vm.New(prog, vm.Config{Manual: true, MaxLiveObjects: 16})
	m.Cost = vm.ZeroCostModel()
	m.Settle()
	var snap vm.SavedState
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Save(&snap)
		m.RestoreState(&snap)
	}
}
