// By-type-id allocation entry points for the compiled engine's generated
// harness. The generated main package rebuilds input value trees that
// were serialized by dense type id (types.Type.ID), so it needs
// constructors that resolve the id against the machine's universe. The
// charge sequence is exactly NewRecordV/NewUnionV/NewArrayV: one Alloc
// charge, Stats.Allocs, and a trace event per object, children first.
package vm

import "fmt"

// typeByID resolves a dense type id, faulting the machine on garbage ids
// (a malformed request line, never a compiled program).
func (m *Machine) typeByID(id int) bool {
	if id < 0 || id >= len(m.Prog.Universe.All()) || m.Prog.Universe.ByID(id) == nil {
		m.fault(&Fault{Kind: FaultInternal, Msg: fmt.Sprintf("unknown type id %d", id)})
		return false
	}
	return true
}

// NewRecordVByID is NewRecordV with the type given by dense id.
func (m *Machine) NewRecordVByID(typeID int, elems ...Value) Value {
	if !m.typeByID(typeID) {
		return Value{}
	}
	return m.NewRecordV(m.Prog.Universe.ByID(typeID), elems...)
}

// NewUnionVByID is NewUnionV with the type given by dense id.
func (m *Machine) NewUnionVByID(typeID, tag int, payload Value) Value {
	if !m.typeByID(typeID) {
		return Value{}
	}
	return m.NewUnionV(m.Prog.Universe.ByID(typeID), tag, payload)
}

// NewArrayVByID is NewArrayV with the type given by dense id.
func (m *Machine) NewArrayVByID(typeID, n int, init Value) Value {
	if !m.typeByID(typeID) {
		return Value{}
	}
	return m.NewArrayV(m.Prog.Universe.ByID(typeID), n, init)
}
