package vm

import (
	"esplang/internal/obs"
)

// Observability hooks. All of them are nil by default; every hot-path
// site guards with one nil check, so a machine with no tracer, profiler,
// or metrics attached pays nothing beyond those checks (the tentpole's
// zero-cost-when-disabled contract, verified by the equivalence and
// allocation tests in obs_vm_test.go).

// SetTracer installs (or removes, with nil) an execution tracer. The
// tracer receives every context switch, rendezvous, alloc/free, fault,
// and external poll.
func (m *Machine) SetTracer(t obs.Tracer) { m.tracer = t }

// SetProfiler installs (or removes, with nil) a cycle profiler. While
// installed, every CostModel charge is attributed to the source line of
// the instruction being executed (PR 1's spans).
func (m *Machine) SetProfiler(p *obs.Profiler) { m.prof = p }

// SetClock installs the timestamp source for trace events. Nil (the
// default) timestamps events with the machine's cycle counter; the NIC
// testbed installs the sim kernel's nanosecond clock so firmware events
// line up with DMA spans.
func (m *Machine) SetClock(fn func() int64) { m.clock = fn }

// SetMetrics attaches a metrics registry. The instrument pointers are
// resolved once here, so steady-state updates are single atomic adds.
func (m *Machine) SetMetrics(reg *obs.Metrics) {
	m.metrics = reg
	if reg == nil {
		m.mRend = nil
		m.mCtx, m.mAllocs, m.mFrees, m.mPolls = nil, nil, nil, nil
		m.mReady = nil
		return
	}
	m.mRend = make([]*obs.Counter, len(m.Prog.Channels))
	for i, ch := range m.Prog.Channels {
		m.mRend[i] = reg.Counter("vm_rendezvous{" + ch.Name + "}")
	}
	m.mCtx = reg.Counter("vm_ctx_switches_total")
	m.mAllocs = reg.Counter("vm_allocs_total")
	m.mFrees = reg.Counter("vm_frees_total")
	m.mPolls = reg.Counter("vm_polls_total")
	m.mReady = reg.Histogram("vm_ready_queue_depth")
}

// Metrics returns the attached registry (nil when none).
func (m *Machine) Metrics() *obs.Metrics { return m.metrics }

// now returns the trace timestamp: the installed clock, or the cycle
// counter.
func (m *Machine) now() int64 {
	if m.clock != nil {
		return m.clock()
	}
	return m.Cycles
}

// chargeEv advances the cycle meter and, when a profiler is installed,
// attributes the charge to the current source line under the given event
// kind. The cycle total is identical with and without a profiler.
func (m *Machine) chargeEv(k obs.Kind, n int64) {
	m.Cycles += n
	if m.prof != nil {
		m.prof.Add(m.curLine, k, n)
	}
}

// traceRendezvous reports one completed transfer on chanID. Either side
// is -1 for the external environment.
func (m *Machine) traceRendezvous(chanID, sender, receiver int) {
	if m.mRend != nil {
		m.mRend[chanID].Inc()
	}
	if m.tracer != nil {
		m.tracer.Rendezvous(m.now(), m.Prog.Channels[chanID].Name, sender, receiver)
	}
}

// traceAlloc reports one heap allocation (proc -1 = no process context).
func (m *Machine) traceAlloc(proc int) {
	if m.mAllocs != nil {
		m.mAllocs.Inc()
	}
	if m.tracer != nil {
		m.tracer.Alloc(m.now(), proc, m.heap.live)
	}
}

// tracePoll reports one readiness poll of an external binding.
func (m *Machine) tracePoll(chanID int) {
	if m.mPolls != nil {
		m.mPolls.Inc()
	}
	if m.tracer != nil {
		m.tracer.Poll(m.now(), m.Prog.Channels[chanID].Name)
	}
}

// hookHeap installs the heap free callback that keeps Stats.Frees, the
// free metric, and the tracer's live-object counter in step with the
// reference counter. Called from New and Clone (the closure must capture
// the owning machine).
func (m *Machine) hookHeap() {
	m.heap.onFree = func() {
		m.Stats.Frees++
		if m.mFrees != nil {
			m.mFrees.Inc()
		}
		if m.tracer != nil {
			m.tracer.Free(m.now(), -1, m.heap.live)
		}
	}
}
