package vm

import (
	"strings"

	"esplang/internal/obs"
)

// Observability hooks. All of them are nil by default; every hot-path
// site guards with one nil check, so a machine with no tracer, profiler,
// or metrics attached pays nothing beyond those checks (the tentpole's
// zero-cost-when-disabled contract, verified by the equivalence and
// allocation tests in obs_vm_test.go).

// SetTracer installs (or removes, with nil) an execution tracer. The
// tracer receives every context switch, rendezvous, alloc/free, fault,
// and external poll.
func (m *Machine) SetTracer(t obs.Tracer) { m.tracer = t }

// SetProfiler installs (or removes, with nil) a cycle profiler. While
// installed, every CostModel charge is attributed to the source line of
// the instruction being executed (PR 1's spans).
func (m *Machine) SetProfiler(p *obs.Profiler) { m.prof = p }

// SetRecorder installs (or removes, with nil) a flight recorder: a
// fixed-size ring buffer fed from the same event sites as the tracer.
// Unlike a profiler it does not force the baseline interpreter loop, so
// it is cheap enough to leave attached in production; Postmortem renders
// its last events after a fault. Clones do not inherit it (like every
// other observability sink).
//
// Every name the machine can emit — channel names, process names,
// scheduling statuses — is interned into the recorder here, and the
// Record argument words (obs.PA, obs.NK) are packed ahead of time, so
// the recording hot path is two table loads and a call: it never
// touches a string and never shifts a bit.
func (m *Machine) SetRecorder(r *obs.FlightRecorder) {
	m.rec = r
	if r == nil {
		m.recPA, m.recStart, m.recRend, m.recPoll = nil, nil, nil, nil
		return
	}
	m.recRend = make([]uint64, len(m.Prog.Channels))
	m.recPoll = make([]uint64, len(m.Prog.Channels))
	for i, ch := range m.Prog.Channels {
		id := r.Intern(ch.Name)
		m.recRend[i] = obs.NK(obs.EvRendezvous, id)
		m.recPoll[i] = obs.NK(obs.EvPoll, id)
	}
	m.recPA = make([]uint64, len(m.Procs))
	m.recStart = make([]uint64, len(m.Procs))
	for i, p := range m.Procs {
		m.recPA[i] = obs.PA(int32(p.ID), 0)
		m.recStart[i] = obs.NK(obs.EvProcStart, r.Intern(p.Def.Name))
	}
	for s := PReady; s <= PHalted; s++ {
		m.recStop[s&7] = obs.NK(obs.EvProcStop, r.Intern(s.String()))
	}
}

// Recorder returns the attached flight recorder (nil when none).
func (m *Machine) Recorder() *obs.FlightRecorder { return m.rec }

// chargeTable decomposes the cycle meter into the CostModel charge
// classes from the event counters: count × unit cost per class, which is
// exact because every chargeEv site charges a whole unit (DeepCopy
// charges per word, and Stats.DeepCopied counts words). The profiler
// proves this identity per line; here it gives postmortems their charge
// attribution without touching the hot path.
func (m *Machine) chargeTable() (cycles, counts [obs.NumKinds]int64) {
	set := func(k obs.Kind, n, unit int64) {
		counts[k] = n
		cycles[k] = n * unit
	}
	set(obs.KindInstr, m.Stats.Instrs, m.Cost.PerInstr)
	set(obs.KindCtxSwitch, m.Stats.CtxSwitches, m.Cost.CtxSwitch)
	set(obs.KindRendezvous, m.Stats.Rendezvous, m.Cost.Rendezvous)
	set(obs.KindAlloc, m.Stats.Allocs, m.Cost.Alloc)
	set(obs.KindRefOp, m.Stats.RefOps, m.Cost.RefOp)
	set(obs.KindPattern, m.Stats.PatternNodes, m.Cost.PatternNode)
	set(obs.KindMaskCheck, m.Stats.MaskChecks, m.Cost.MaskCheck)
	set(obs.KindQueueOp, m.Stats.QueueOps, m.Cost.QueueOp)
	set(obs.KindPoll, m.Stats.Polls, m.Cost.ExternalPoll)
	set(obs.KindDeepCopy, m.Stats.DeepCopied, m.Cost.DeepCopyWord)
	return cycles, counts
}

// Postmortem renders the flight recorder's last `last` events (all
// retained events when last <= 0) as the text dump format, headed by the
// machine's fault if any and the cycle meter's per-class charge
// decomposition. It returns "" when no recorder is attached. Because
// event timestamps are cycle counts and both cycle and Stats accounting
// are bit-identical across engines, the same faulting program yields a
// byte-identical postmortem under every engine.
func (m *Machine) Postmortem(last int) string {
	if m.rec == nil {
		return ""
	}
	m.rec.Sync() // publish staged events; Postmortem runs on the VM's goroutine
	d := m.rec.Dump(last)
	if m.flt != nil {
		d.Fault = m.flt.Error()
	}
	d.ChargeCycles, d.ChargeCounts = m.chargeTable()
	var sb strings.Builder
	d.Write(&sb)
	return sb.String()
}

// SetClock installs the timestamp source for trace events. Nil (the
// default) timestamps events with the machine's cycle counter; the NIC
// testbed installs the sim kernel's nanosecond clock so firmware events
// line up with DMA spans.
func (m *Machine) SetClock(fn func() int64) { m.clock = fn }

// SetMetrics attaches a metrics registry. The instrument pointers are
// resolved once here, so steady-state updates are single atomic adds.
func (m *Machine) SetMetrics(reg *obs.Metrics) {
	m.metrics = reg
	if reg == nil {
		m.mRend = nil
		m.mCtx, m.mAllocs, m.mFrees, m.mPolls = nil, nil, nil, nil
		m.mReady = nil
		return
	}
	m.mRend = make([]*obs.Counter, len(m.Prog.Channels))
	for i, ch := range m.Prog.Channels {
		m.mRend[i] = reg.Counter("vm_rendezvous{" + ch.Name + "}")
	}
	m.mCtx = reg.Counter("vm_ctx_switches_total")
	m.mAllocs = reg.Counter("vm_allocs_total")
	m.mFrees = reg.Counter("vm_frees_total")
	m.mPolls = reg.Counter("vm_polls_total")
	m.mReady = reg.Histogram("vm_ready_queue_depth")
}

// Metrics returns the attached registry (nil when none).
func (m *Machine) Metrics() *obs.Metrics { return m.metrics }

// now returns the trace timestamp: the installed clock, or the cycle
// counter.
func (m *Machine) now() int64 {
	if m.clock != nil {
		return m.clock()
	}
	return m.Cycles
}

// chargeEv advances the cycle meter and, when a profiler is installed,
// attributes the charge to the current source line under the given event
// kind. The cycle total is identical with and without a profiler.
func (m *Machine) chargeEv(k obs.Kind, n int64) {
	m.Cycles += n
	if m.prof != nil {
		m.prof.Add(m.curLine, k, n)
	}
}

// traceRendezvous reports one completed transfer on chanID. Either side
// is -1 for the external environment.
func (m *Machine) traceRendezvous(chanID, sender, receiver int) {
	if m.mRend != nil {
		m.mRend[chanID].Inc()
	}
	if m.tracer != nil {
		m.tracer.Rendezvous(m.now(), m.Prog.Channels[chanID].Name, sender, receiver)
	}
	if m.rec != nil {
		m.rec.Record(m.now(), obs.PA(int32(sender), int32(receiver)), m.recRend[chanID])
	}
}

// traceAlloc reports one heap allocation (proc -1 = no process context).
func (m *Machine) traceAlloc(proc int) {
	if m.mAllocs != nil {
		m.mAllocs.Inc()
	}
	if m.tracer != nil {
		m.tracer.Alloc(m.now(), proc, m.heap.live)
	}
	if m.rec != nil {
		m.rec.Record(m.now(), obs.PA(int32(proc), int32(m.heap.live)), obs.NK(obs.EvAlloc, 0))
	}
}

// tracePoll reports one readiness poll of an external binding.
func (m *Machine) tracePoll(chanID int) {
	if m.mPolls != nil {
		m.mPolls.Inc()
	}
	if m.tracer != nil {
		m.tracer.Poll(m.now(), m.Prog.Channels[chanID].Name)
	}
	if m.rec != nil {
		m.rec.Record(m.now(), obs.PA(-1, 0), m.recPoll[chanID])
	}
}

// hookHeap installs the heap free callback that keeps Stats.Frees, the
// free metric, and the tracer's live-object counter in step with the
// reference counter. Called from New and Clone (the closure must capture
// the owning machine).
func (m *Machine) hookHeap() {
	m.heap.onFree = func() {
		m.Stats.Frees++
		if m.mFrees != nil {
			m.mFrees.Inc()
		}
		if m.tracer != nil {
			m.tracer.Free(m.now(), -1, m.heap.live)
		}
		if m.rec != nil {
			m.rec.Record(m.now(), obs.PA(-1, int32(m.heap.live)), obs.NK(obs.EvFree, 0))
		}
	}
}
