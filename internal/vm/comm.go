package vm

import (
	"fmt"

	"esplang/internal/ir"
	"esplang/internal/obs"
)

// ---------------------------------------------------------------------------
// Pattern matching

// match tests a receive pattern against a value without side effects,
// charging PatternNode per node examined.
func (m *Machine) match(pat *ir.Pat, v Value, recv *ProcInst) bool {
	m.chargeEv(obs.KindPattern, m.Cost.PatternNode)
	m.Stats.PatternNodes++
	switch pat.Kind {
	case ir.PatAny, ir.PatBind:
		return true
	case ir.PatConst:
		return !v.IsRef && v.Int == pat.Val
	case ir.PatSelf:
		return !v.IsRef && v.Int == int64(recv.ID)
	case ir.PatDynEq:
		return !v.IsRef && v.Int == recv.Locals[pat.Slot].Int
	case ir.PatRecord:
		if !v.IsRef || v.Ref == nil || len(v.Ref.Elems) != len(pat.Elems) {
			return false
		}
		for i, sub := range pat.Elems {
			if !m.match(sub, v.Ref.Elems[i], recv) {
				return false
			}
		}
		return true
	case ir.PatUnion:
		if !v.IsRef || v.Ref == nil || v.Ref.Tag != pat.Tag {
			return false
		}
		return m.match(pat.Elems[0], v.Ref.Elems[0], recv)
	}
	return false
}

// bindPat stores the bound components of a matched value into the
// receiver's locals. Every bound reference is linked: the receiver now
// owns it (its share of the semantic deep copy, §6.2).
func (m *Machine) bindPat(pat *ir.Pat, v Value, recv *ProcInst) {
	switch pat.Kind {
	case ir.PatBind:
		if v.IsRef {
			if f := m.heap.Link(v.Ref); f != nil {
				m.setFault(f, recv)
				return
			}
			m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
			m.Stats.RefOps++
		}
		recv.Locals[pat.Slot] = v
	case ir.PatRecord:
		for i, sub := range pat.Elems {
			m.bindPat(sub, v.Ref.Elems[i], recv)
		}
	case ir.PatUnion:
		m.bindPat(pat.Elems[0], v.Ref.Elems[0], recv)
	}
}

// deliver completes a transfer: it matches the receiver's port pattern
// against v and, on success, performs the reference-count dance (or a
// physical deep copy in the ablation mode) and binds the components. It
// does not change scheduling state. flags are the sender's Send flags;
// sender is the sending process id (-1 = external environment), used
// only for tracing.
func (m *Machine) deliver(v Value, flags int, sender int, recv *ProcInst, portIdx int) bool {
	port := recv.Def.Ports[portIdx]
	if !m.match(port.Pat, v, recv) {
		return false
	}
	m.chargeEv(obs.KindRendezvous, m.Cost.Rendezvous)
	m.Stats.Rendezvous++
	m.traceRendezvous(port.Chan, sender, recv.ID)

	if m.Config.ForceDeepCopy && v.IsRef {
		cp := m.deepCopy(v)
		if m.flt != nil {
			return true
		}
		m.bindPat(port.Pat, cp, recv)
		// The copy is a temporary by construction: release its root. Bound
		// components survive through the links bindPat added.
		if f := m.heap.Unlink(cp.Ref); f != nil {
			m.setFault(f, recv)
		}
		if flags&ir.FlagFreeAfter != 0 {
			if f := m.heap.Unlink(v.Ref); f != nil {
				m.setFault(f, recv)
			}
		}
		return true
	}

	m.bindPat(port.Pat, v, recv)
	if flags&ir.FlagFreeAfter != 0 && v.IsRef {
		if f := m.heap.Unlink(v.Ref); f != nil {
			m.setFault(f, recv)
		}
		m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
		m.Stats.RefOps++
	}
	return true
}

// deepCopy physically copies the object graph (preserving sharing),
// charging DeepCopyWord per word.
func (m *Machine) deepCopy(v Value) Value {
	seen := make(map[*Object]*Object)
	var cp func(v Value) Value
	cp = func(v Value) Value {
		if !v.IsRef {
			m.chargeEv(obs.KindDeepCopy, m.Cost.DeepCopyWord)
			m.Stats.DeepCopied++
			return v
		}
		if n, ok := seen[v.Ref]; ok {
			return RefVal(n)
		}
		o := v.Ref
		n := m.heap.Alloc(o.Type, len(o.Elems))
		if n == nil {
			m.fault(&Fault{Kind: FaultOutOfObjects, Msg: "deep copy failed: live-object bound exceeded"})
			return v
		}
		m.Stats.Allocs++
		m.traceAlloc(-1)
		seen[o] = n
		n.Tag = o.Tag
		for i, e := range o.Elems {
			n.Elems[i] = cp(e)
		}
		m.chargeEv(obs.KindDeepCopy, m.Cost.DeepCopyWord*int64(len(o.Elems)+1))
		m.Stats.DeepCopied += int64(len(o.Elems) + 1)
		return RefVal(n)
	}
	return cp(v)
}

// patsOverlap conservatively tests whether two runtime patterns can match
// a common value (used to decide whether to consume an external message
// for a given waiting port).
func patsOverlap(a, b *ir.Pat) bool {
	wild := func(p *ir.Pat) bool {
		return p.Kind == ir.PatAny || p.Kind == ir.PatBind || p.Kind == ir.PatDynEq || p.Kind == ir.PatSelf
	}
	if wild(a) || wild(b) {
		return true
	}
	switch a.Kind {
	case ir.PatConst:
		return b.Kind != ir.PatConst || a.Val == b.Val
	case ir.PatRecord:
		if b.Kind != ir.PatRecord || len(a.Elems) != len(b.Elems) {
			return true
		}
		for i := range a.Elems {
			if !patsOverlap(a.Elems[i], b.Elems[i]) {
				return false
			}
		}
		return true
	case ir.PatUnion:
		if b.Kind != ir.PatUnion {
			return true
		}
		if a.Tag != b.Tag {
			return false
		}
		return patsOverlap(a.Elems[0], b.Elems[0])
	}
	return true
}

// ---------------------------------------------------------------------------
// Eager rendezvous (auto mode)

// maskCharge is a no-op: bit-mask readiness checks are charged once per
// candidate search (see Machine.candidates); queue mode pays per queue
// operation instead.
func (m *Machine) maskCharge() {}

// guardTrue reports whether an alt arm's guard holds for p.
func guardTrue(p *ProcInst, arm *ir.AltArm) bool {
	return arm.GuardSlot < 0 || p.Locals[arm.GuardSlot].Int != 0
}

// unblock makes p ready at pc and re-enqueues it.
func (m *Machine) unblock(p *ProcInst, pc int) {
	p.Status = PReady
	p.PC = pc
	p.Pending = Value{}
	m.unregister(p)
	m.enqueue(p.ID)
}

// commitTo, when >= 0, pins the receiver a SendCommit must deliver to
// (set by the model checker's FireComm so the chosen transition is the
// one that happens).
// It lives on the machine so clones carry it (it is always -1 when
// quiescent).

// tryCompleteSend looks for a partner for a sender whose value is already
// evaluated (plain Send, or SendCommit after an alt commit). On success
// the partner is unblocked and true is returned; the sender continues.
func (m *Machine) tryCompleteSend(s *ProcInst) bool {
	chanID := s.WaitChan
	v, flags := s.Pending, s.PendingFlags

	if m.commitTarget >= 0 {
		r := m.Procs[m.commitTarget]
		arm := m.commitArm
		m.commitTarget, m.commitArm = -1, -1
		switch {
		case r.Status == PBlockedRecv && r.WaitChan == chanID:
			if m.deliver(v, flags, s.ID, r, r.WaitPort) {
				m.unblock(r, r.ResumePC)
				s.Pending = Value{}
				return true
			}
		case r.Status == PBlockedAlt && arm >= 0:
			a := &r.Def.Alts[r.AltIdx].Arms[arm]
			if !a.IsSend && a.Chan == chanID && guardTrue(r, a) && m.deliver(v, flags, s.ID, r, a.Port) {
				m.unblock(r, a.BodyPC)
				s.Pending = Value{}
				return true
			}
		}
		// Fall through to the general scan; the commit pin is best-effort
		// when the value carries dynamic tests.
	}

	for _, idx := range m.candidates(chanID, false) {
		r := m.Procs[idx]
		if r == s {
			continue
		}
		m.maskCharge()
		switch r.Status {
		case PBlockedRecv:
			if r.WaitChan != chanID {
				continue
			}
			if m.deliver(v, flags, s.ID, r, r.WaitPort) {
				m.unblock(r, r.ResumePC)
				s.Pending = Value{}
				return true
			}
		case PBlockedAlt:
			def := r.Def.Alts[r.AltIdx]
			for ai := range def.Arms {
				arm := &def.Arms[ai]
				if arm.IsSend || arm.Chan != chanID || !guardTrue(r, arm) {
					continue
				}
				if m.deliver(v, flags, s.ID, r, arm.Port) {
					m.unblock(r, arm.BodyPC)
					s.Pending = Value{}
					return true
				}
			}
		}
	}

	if m.sched != nil && m.sched.internal[chanID] {
		return false // internal channel: no external binding to consult
	}
	if er := m.extR[chanID]; er != nil {
		m.chargeEv(obs.KindPoll, m.Cost.ExternalPoll)
		m.Stats.Polls++
		m.tracePoll(chanID)
		if er.Ready(m) {
			m.chargeEv(obs.KindRendezvous, m.Cost.Rendezvous)
			m.Stats.Rendezvous++
			m.traceRendezvous(chanID, s.ID, -1)
			er.Put(m, v)
			if flags&ir.FlagFreeAfter != 0 && v.IsRef {
				if f := m.heap.Unlink(v.Ref); f != nil {
					m.setFault(f, s)
				}
				m.chargeEv(obs.KindRefOp, m.Cost.RefOp)
				m.Stats.RefOps++
			}
			s.Pending = Value{}
			return true
		}
	}
	return false
}

// tryCompleteRecv looks for a partner for a receiver about to block at a
// plain Recv. It returns true when a transfer completed and the receiver
// may continue. Committing a blocked alt's send arm returns false (the
// receiver stays blocked; the partner's SendCommit finishes the job).
func (m *Machine) tryCompleteRecv(r *ProcInst) bool {
	chanID := r.WaitChan

	// 1. Plain blocked senders: value available, deliver directly.
	for _, idx := range m.candidates(chanID, true) {
		s := m.Procs[idx]
		if s == r {
			continue
		}
		m.maskCharge()
		if s.Status == PBlockedSend && s.WaitChan == chanID {
			if m.deliver(s.Pending, s.PendingFlags, s.ID, r, r.WaitPort) {
				m.unblock(s, s.ResumePC)
				return true
			}
		}
	}
	// 2. Blocked alts with a send arm on this channel whose (statically
	// known) value shape can match our pattern: commit the partner.
	for _, idx := range m.candidates(chanID, true) {
		s := m.Procs[idx]
		if s == r || s.Status != PBlockedAlt {
			continue
		}
		m.maskCharge()
		def := s.Def.Alts[s.AltIdx]
		for ai := range def.Arms {
			arm := &def.Arms[ai]
			if !arm.IsSend || arm.Chan != chanID || !guardTrue(s, arm) {
				continue
			}
			if arm.OutPat != nil && !patsOverlap(arm.OutPat, r.Def.Ports[r.WaitPort].Pat) {
				continue
			}
			m.unblock(s, arm.EvalPC)
			return false // r blocks; the partner's SendCommit completes the transfer
		}
	}
	// 3. External writer.
	if m.sched != nil && m.sched.internal[chanID] {
		return false
	}
	if ew := m.extW[chanID]; ew != nil {
		m.chargeEv(obs.KindPoll, m.Cost.ExternalPoll)
		m.Stats.Polls++
		m.tracePoll(chanID)
		if caseIdx, ok := ew.Ready(m); ok {
			ch := m.Prog.Channels[chanID]
			if caseIdx < len(ch.Cases) && patsOverlap(ch.Cases[caseIdx].Pat, r.Def.Ports[r.WaitPort].Pat) {
				v := ew.Take(m, caseIdx)
				if m.flt != nil {
					return false
				}
				if m.deliver(v, ir.FlagFreeAfter, -1, r, r.WaitPort) {
					return true
				}
				m.setFault(&Fault{Kind: FaultNoMatchingPort,
					Msg: fmt.Sprintf("external message on channel %s does not match the waiting pattern", ch.Name)}, r)
			}
		}
	}
	return false
}

// altStep attempts to select an arm of the alt p is entering (auto mode).
// It returns (nextPC, true) when p should continue executing, or
// (0, false) when p is now parked (as a blocked alt, or as a collapsed
// blocked recv after committing a partner's send arm).
func (m *Machine) altStep(p *ProcInst) (int, bool) {
	def := p.Def.Alts[p.AltIdx]
	for ai := range def.Arms {
		arm := &def.Arms[ai]
		if !guardTrue(p, arm) {
			continue
		}
		if arm.IsSend {
			if next, ok := m.altSendArm(p, arm); ok {
				return next, true
			}
		} else {
			next, cont, parked := m.altRecvArm(p, arm)
			if cont {
				return next, true
			}
			if parked {
				return 0, false
			}
		}
		if m.flt != nil {
			return 0, false
		}
	}
	// Nothing ready: park as a blocked alt, registering every armed
	// channel (the bit-mask set of §6.1).
	p.Status = PBlockedAlt
	for ai := range def.Arms {
		arm := &def.Arms[ai]
		if !guardTrue(p, arm) {
			continue
		}
		if arm.IsSend {
			m.regSend(p, arm.Chan)
		} else {
			m.regRecv(p, arm.Chan)
		}
	}
	return 0, false
}

// altSendArm checks readiness of a send arm: a receiver is waiting on the
// channel (blocked recv, blocked alt with a matching-capable recv arm, or
// a ready external reader). On readiness the arm commits: p jumps to the
// arm's evaluation code, whose SendCommit completes the transfer (§6.1's
// postponed computation).
func (m *Machine) altSendArm(p *ProcInst, arm *ir.AltArm) (int, bool) {
	compatible := func(r *ProcInst, port int) bool {
		return arm.OutPat == nil || patsOverlap(arm.OutPat, r.Def.Ports[port].Pat)
	}
	for _, idx := range m.candidates(arm.Chan, false) {
		r := m.Procs[idx]
		if r == p {
			continue
		}
		m.maskCharge()
		switch r.Status {
		case PBlockedRecv:
			if r.WaitChan == arm.Chan && compatible(r, r.WaitPort) {
				return arm.EvalPC, true
			}
		case PBlockedAlt:
			rdef := r.Def.Alts[r.AltIdx]
			for ri := range rdef.Arms {
				rarm := &rdef.Arms[ri]
				if rarm.IsSend || rarm.Chan != arm.Chan || !guardTrue(r, rarm) || !compatible(r, rarm.Port) {
					continue
				}
				// The partner stays a blocked alt; the coming SendCommit
				// finds its receive arm through the general scan.
				return arm.EvalPC, true
			}
		}
	}
	if m.sched != nil && m.sched.internal[arm.Chan] {
		return 0, false
	}
	if er := m.extR[arm.Chan]; er != nil {
		m.chargeEv(obs.KindPoll, m.Cost.ExternalPoll)
		m.Stats.Polls++
		m.tracePoll(arm.Chan)
		if er.Ready(m) {
			return arm.EvalPC, true
		}
	}
	return 0, false
}

// altRecvArm checks readiness of a receive arm. Returns (nextPC, cont,
// parked): cont means the transfer completed and p continues at nextPC;
// parked means p committed a partner alt's send arm and is now a
// collapsed blocked recv.
func (m *Machine) altRecvArm(p *ProcInst, arm *ir.AltArm) (int, bool, bool) {
	// 1. Plain blocked senders.
	for _, idx := range m.candidates(arm.Chan, true) {
		s := m.Procs[idx]
		if s == p {
			continue
		}
		m.maskCharge()
		if s.Status == PBlockedSend && s.WaitChan == arm.Chan {
			if m.deliver(s.Pending, s.PendingFlags, s.ID, p, arm.Port) {
				m.unblock(s, s.ResumePC)
				return arm.BodyPC, true, false
			}
		}
	}
	// 2. Blocked alts with a compatible send arm on this channel: commit
	// the partner; we park as a full blocked alt and the partner's
	// SendCommit selects whichever of our receive arms matches.
	for _, idx := range m.candidates(arm.Chan, true) {
		s := m.Procs[idx]
		if s == p || s.Status != PBlockedAlt {
			continue
		}
		m.maskCharge()
		sdef := s.Def.Alts[s.AltIdx]
		for si := range sdef.Arms {
			sarm := &sdef.Arms[si]
			if !sarm.IsSend || sarm.Chan != arm.Chan || !guardTrue(s, sarm) {
				continue
			}
			if sarm.OutPat != nil && !patsOverlap(sarm.OutPat, p.Def.Ports[arm.Port].Pat) {
				continue
			}
			m.unblock(s, sarm.EvalPC)
			p.Status = PBlockedAlt
			return 0, false, true
		}
	}
	// 3. External writer.
	if m.sched != nil && m.sched.internal[arm.Chan] {
		return 0, false, false
	}
	if ew := m.extW[arm.Chan]; ew != nil {
		m.chargeEv(obs.KindPoll, m.Cost.ExternalPoll)
		m.Stats.Polls++
		m.tracePoll(arm.Chan)
		if caseIdx, ok := ew.Ready(m); ok {
			ch := m.Prog.Channels[arm.Chan]
			if caseIdx < len(ch.Cases) && patsOverlap(ch.Cases[caseIdx].Pat, p.Def.Ports[arm.Port].Pat) {
				v := ew.Take(m, caseIdx)
				if m.flt != nil {
					return 0, false, false
				}
				if m.deliver(v, ir.FlagFreeAfter, -1, p, arm.Port) {
					return arm.BodyPC, true, false
				}
				m.setFault(&Fault{Kind: FaultNoMatchingPort,
					Msg: fmt.Sprintf("external message on channel %s does not match the alt pattern", ch.Name)}, p)
			}
		}
	}
	return 0, false, false
}

// ---------------------------------------------------------------------------
// External polling (the idle loop)

// Poll scans external channel bindings once: it injects at most one
// message per external-writer channel into a waiting receiver, and
// completes blocked sends to ready external readers. It reports whether
// anything happened.
func (m *Machine) Poll() bool {
	injected := false

	for _, chanID := range m.extWIDs() {
		ew := m.extW[chanID]
		m.chargeEv(obs.KindPoll, m.Cost.ExternalPoll)
		m.Stats.Polls++
		m.tracePoll(chanID)
		caseIdx, ok := ew.Ready(m)
		if !ok {
			continue
		}
		ch := m.Prog.Channels[chanID]
		if caseIdx >= len(ch.Cases) {
			m.fault(&Fault{Kind: FaultInternal,
				Msg: fmt.Sprintf("external writer on %s reported case %d of %d", ch.Name, caseIdx, len(ch.Cases))})
			return injected
		}
		casePat := ch.Cases[caseIdx].Pat
		// Find a waiting receiver whose port could take this case.
		var taken bool
		var v Value
		matched := false
		scan := m.scanList(chanID, false)
		for k := 0; k < len(scan) && !matched; k++ {
			r := m.Procs[scan[k]]
			m.maskCharge()
			switch r.Status {
			case PBlockedRecv:
				if r.WaitChan != chanID || !patsOverlap(casePat, r.Def.Ports[r.WaitPort].Pat) {
					continue
				}
				if !taken {
					v = ew.Take(m, caseIdx)
					taken = true
					if m.flt != nil {
						return injected
					}
				}
				if m.deliver(v, ir.FlagFreeAfter, -1, r, r.WaitPort) {
					m.unblock(r, r.ResumePC)
					matched = true
				}
			case PBlockedAlt:
				def := r.Def.Alts[r.AltIdx]
				for ai := range def.Arms {
					arm := &def.Arms[ai]
					if arm.IsSend || arm.Chan != chanID || !guardTrue(r, arm) ||
						!patsOverlap(casePat, r.Def.Ports[arm.Port].Pat) {
						continue
					}
					if !taken {
						v = ew.Take(m, caseIdx)
						taken = true
						if m.flt != nil {
							return injected
						}
					}
					if m.deliver(v, ir.FlagFreeAfter, -1, r, arm.Port) {
						m.unblock(r, arm.BodyPC)
						matched = true
						break
					}
				}
			}
		}
		if taken && !matched {
			m.fault(&Fault{Kind: FaultNoMatchingPort,
				Msg: fmt.Sprintf("external message on channel %s matches no waiting receiver", ch.Name)})
			return injected
		}
		if matched {
			injected = true
		}
	}

	// Blocked senders to external readers.
	for _, chanID := range m.extRIDs() {
		er := m.extR[chanID]
		for _, pi := range m.scanList(chanID, true) {
			s := m.Procs[pi]
			m.maskCharge()
			switch s.Status {
			case PBlockedSend:
				if s.WaitChan != chanID {
					continue
				}
				m.chargeEv(obs.KindPoll, m.Cost.ExternalPoll)
				m.Stats.Polls++
				m.tracePoll(chanID)
				if !er.Ready(m) {
					continue
				}
				m.chargeEv(obs.KindRendezvous, m.Cost.Rendezvous)
				m.Stats.Rendezvous++
				m.traceRendezvous(chanID, s.ID, -1)
				er.Put(m, s.Pending)
				if s.PendingFlags&ir.FlagFreeAfter != 0 && s.Pending.IsRef {
					if f := m.heap.Unlink(s.Pending.Ref); f != nil {
						m.setFault(f, s)
						return injected
					}
				}
				m.unblock(s, s.ResumePC)
				injected = true
			case PBlockedAlt:
				def := s.Def.Alts[s.AltIdx]
				for ai := range def.Arms {
					arm := &def.Arms[ai]
					if !arm.IsSend || arm.Chan != chanID || !guardTrue(s, arm) {
						continue
					}
					m.chargeEv(obs.KindPoll, m.Cost.ExternalPoll)
					m.Stats.Polls++
					m.tracePoll(chanID)
					if !er.Ready(m) {
						continue
					}
					m.unblock(s, arm.EvalPC)
					injected = true
					break
				}
			}
		}
	}
	return injected
}

// extWIDs/extRIDs return the sorted external-channel ID lists. They are
// cached on the machine (invalidated by BindWriter/BindReader) so the
// idle-loop Poll does not allocate on every call. The binding slices are
// channel-indexed, so a walk yields the IDs already in ascending order.
func (m *Machine) extWIDs() []int {
	if m.extWIDsC == nil {
		m.extWIDsC = make([]int, 0, len(m.extW))
		for id, w := range m.extW {
			if w != nil {
				m.extWIDsC = append(m.extWIDsC, id)
			}
		}
	}
	return m.extWIDsC
}

func (m *Machine) extRIDs() []int {
	if m.extRIDsC == nil {
		m.extRIDsC = make([]int, 0, len(m.extR))
		for id, r := range m.extR {
			if r != nil {
				m.extRIDsC = append(m.extRIDsC, id)
			}
		}
	}
	return m.extRIDsC
}
