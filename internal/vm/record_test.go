package vm_test

import (
	"strings"
	"testing"

	"esplang/internal/obs"
	"esplang/internal/vm"
)

// faultSrc rendezvouses a few times and then faults (division by zero),
// so the postmortem window holds starts, stops, rendezvous, and the
// fault itself.
const faultSrc = `
channel c: int
process producer {
    $n = 0;
    while (n < 5) {
        out( c, n);
        n = n + 1;
    }
}
process consumer {
    $n = 0;
    $sum = 1;
    while (n < 5) {
        in( c, $v);
        sum = sum / (3 - v);
        n = n + 1;
    }
}
`

var recEngines = []struct {
	name   string
	engine vm.Engine
}{
	{"baseline", vm.EngineBaseline},
	{"fused", vm.EngineFused},
	{"procfused", vm.EngineProcFused},
}

// TestPostmortemIdenticalAcrossEngines asserts the engine-equivalence
// contract extends to the flight recorder: the same fault produces a
// bit-identical postmortem under all three engines.
func TestPostmortemIdenticalAcrossEngines(t *testing.T) {
	var dumps []string
	for _, e := range recEngines {
		m := newMachine(t, faultSrc, vm.Config{Engine: e.engine})
		m.SetRecorder(obs.NewFlightRecorder(0))
		if res := m.Run(); res != vm.RunFault {
			t.Fatalf("%s: result %v, want fault", e.name, res)
		}
		pm := m.Postmortem(obs.PostmortemEvents)
		if pm == "" {
			t.Fatalf("%s: empty postmortem", e.name)
		}
		if _, err := obs.ValidatePostmortem([]byte(pm)); err != nil {
			t.Fatalf("%s: postmortem invalid: %v\n%s", e.name, err, pm)
		}
		dumps = append(dumps, pm)
	}
	for i := 1; i < len(dumps); i++ {
		if dumps[i] != dumps[0] {
			t.Errorf("postmortem differs between %s and %s:\n--- %s:\n%s\n--- %s:\n%s",
				recEngines[0].name, recEngines[i].name,
				recEngines[0].name, dumps[0], recEngines[i].name, dumps[i])
		}
	}
	// The dump names the fault and charges real cycles.
	if !strings.Contains(dumps[0], "# fault: division by zero") {
		t.Errorf("postmortem missing fault header:\n%s", dumps[0])
	}
	if !strings.Contains(dumps[0], "# charge instr cycles=") {
		t.Errorf("postmortem missing instr charge line:\n%s", dumps[0])
	}
}

// TestRecorderPreservesExecution asserts attaching a recorder changes no
// observable machine state: cycles, stats, and fault are identical with
// and without it.
func TestRecorderPreservesExecution(t *testing.T) {
	for _, e := range recEngines {
		plain := newMachine(t, faultSrc, vm.Config{Engine: e.engine})
		plain.Run()
		rec := newMachine(t, faultSrc, vm.Config{Engine: e.engine})
		rec.SetRecorder(obs.NewFlightRecorder(0))
		rec.Run()
		if plain.Cycles != rec.Cycles {
			t.Errorf("%s: cycles %d with recorder, %d without", e.name, rec.Cycles, plain.Cycles)
		}
		if plain.Stats != rec.Stats {
			t.Errorf("%s: stats diverge with recorder:\n  on:  %v\n  off: %v", e.name, rec.Stats, plain.Stats)
		}
	}
}

// TestRecorderZeroAllocRendezvous mirrors TestDisabledObsZeroAlloc with
// a flight recorder attached: the steady-state rendezvous path must stay
// allocation-free — the ring is preallocated and recording only copies.
func TestRecorderZeroAllocRendezvous(t *testing.T) {
	m := newMachine(t, `
channel c: int
process producer {
    while (true) { out( c, 1); }
}
process consumer {
    while (true) { in( c, $v); }
}
`, vm.Config{Manual: true})
	m.SetRecorder(obs.NewFlightRecorder(64))
	m.Settle()
	comms := m.EnabledComms()
	if len(comms) != 1 {
		t.Fatalf("want exactly one enabled comm, got %d", len(comms))
	}
	c := comms[0]
	for i := 0; i < 100; i++ { // warm up ready/queue capacities and wrap the ring
		m.FireComm(c)
	}
	if avg := testing.AllocsPerRun(200, func() { m.FireComm(c) }); avg != 0 {
		t.Errorf("recorder-on rendezvous path allocates %.2f objects/op, want 0", avg)
	}
}

// TestPostmortemAfterWrap runs a long program through a tiny ring: the
// dump must still validate (sequence numbers open mid-stream, orphan
// stops forgiven because events dropped).
func TestPostmortemAfterWrap(t *testing.T) {
	m := newMachine(t, faultSrc, vm.Config{})
	r := obs.NewFlightRecorder(8)
	m.SetRecorder(r)
	m.Run()
	pm := m.Postmortem(0) // also publishes the staged tail
	if r.Dropped() == 0 {
		t.Fatalf("ring did not wrap (total %d)", r.Total())
	}
	if n, err := obs.ValidatePostmortem([]byte(pm)); err != nil {
		t.Fatalf("wrapped postmortem invalid: %v\n%s", err, pm)
	} else if n != 8 {
		t.Errorf("wrapped postmortem has %d events, want 8", n)
	}
}

// TestPostmortemWithoutRecorder: no recorder, no postmortem.
func TestPostmortemWithoutRecorder(t *testing.T) {
	m := newMachine(t, faultSrc, vm.Config{})
	m.Run()
	if pm := m.Postmortem(0); pm != "" {
		t.Errorf("Postmortem without recorder = %q, want empty", pm)
	}
}
