// Package vm executes compiled ESP programs.
//
// The machine realizes the runtime described in §6.1 of the paper:
// processes are stack-less state machines (a context switch saves only a
// program counter), channels are synchronous rendezvous points with
// pattern dispatch, blocking is tracked per process (bit-mask style by
// default, wait-queue style behind a config switch for the ablation), and
// message transfer is a semantic deep copy implemented as reference-count
// manipulation (§6.2).
//
// The same machine serves three masters: the firmware runtime (auto mode,
// driven by external channel bindings and a cost meter), the model checker
// (manual mode, where communication choices are enumerated and fired
// explicitly), and the benchmarks (cycle accounting).
package vm

import (
	"fmt"

	"esplang/internal/types"
)

// Value is a runtime value: a scalar (int/bool, in Int) or a heap
// reference.
type Value struct {
	IsRef bool
	Int   int64
	Ref   *Object
}

// IntVal returns an int value.
func IntVal(v int64) Value { return Value{Int: v} }

// BoolVal returns a bool value (encoded 0/1).
func BoolVal(b bool) Value {
	if b {
		return Value{Int: 1}
	}
	return Value{Int: 0}
}

// RefVal returns a reference value.
func RefVal(o *Object) Value { return Value{IsRef: true, Ref: o} }

// Bool interprets the value as a boolean.
func (v Value) Bool() bool { return v.Int != 0 }

// String renders the value for diagnostics.
func (v Value) String() string {
	if !v.IsRef {
		return fmt.Sprintf("%d", v.Int)
	}
	if v.Ref == nil {
		return "<nil ref>"
	}
	return v.Ref.String()
}

// Object is a heap object: a record, union, or array.
type Object struct {
	ID    int
	Type  *types.Type
	RC    int
	Freed bool
	Tag   int     // union: valid field index
	Elems []Value // record fields / union payload (len 1) / array elements

	// mark/markIdx implement generation-stamped graph traversal for the
	// state encoder and snapshotter (see encode.go, savedstate.go): an
	// object is "visited this traversal" iff mark equals the machine's
	// current generation, and markIdx is its first-visit index. Objects
	// are never shared between machines (Clone deep-copies, RestoreState
	// rebuilds into a per-machine pool), so a per-machine generation
	// counter suffices.
	mark    int64
	markIdx int32
}

// String renders the object shallowly.
func (o *Object) String() string {
	if o == nil {
		return "<nil>"
	}
	state := ""
	if o.Freed {
		state = " FREED"
	}
	switch o.Type.Kind {
	case types.Union:
		return fmt.Sprintf("obj%d %s{tag=%d rc=%d%s}", o.ID, o.Type, o.Tag, o.RC, state)
	default:
		return fmt.Sprintf("obj%d %s{n=%d rc=%d%s}", o.ID, o.Type, len(o.Elems), o.RC, state)
	}
}

// Heap is the object store of one machine. By default objects are never
// reused; freed objects keep their contents so use-after-free is
// detectable, the property the verifier checks exhaustively (§5.2). The
// process-fused engine turns on recycling (see Machine.New): freed
// The element storage of freed objects goes on a free list and Alloc
// reuses it, so the hot allocate-send-free cycle stops hitting the Go
// allocator for the (dominant) backing arrays. The Object shell itself
// is never reused: a freed shell survives as a permanent tombstone with
// its original ID, type, and Freed flag, so a dangling reference in a
// buggy program faults with exactly the same message as on a
// non-recycling heap. (Recycling whole shells would let a stale
// reference observe a *different, possibly live* object — the engines
// would diverge on use-after-free programs, which the differential
// fuzzer caught.) Recycling stays off in Manual (model checker)
// machines, whose snapshot machinery owns object lifetimes.
type Heap struct {
	// MaxLive, when positive, bounds the number of simultaneously live
	// objects. Exceeding it faults — the paper's way of catching leaks
	// during verification (§5.2: "a memory leak can cause the system to
	// run out of objectIds").
	MaxLive int

	nextID int
	live   int
	allocs int64
	frees  int64

	// onFree, when set, is called after each free (with the live count
	// already decremented). The owning machine installs it to keep
	// Stats.Frees and the observability layer in step (see
	// Machine.hookHeap).
	onFree func()

	// recycle enables the free list; pool holds the element storage of
	// freed objects awaiting reuse. Only the backing arrays are pooled —
	// freed Object shells persist as tombstones (see the type comment).
	recycle bool
	pool    [][]Value
}

// MaxAllocElems bounds the element count of any single object — the
// Go-VM counterpart of the C runtime's ESP_MAX_ELEMS. ESP targets
// firmware-scale object tables; without a bound, a dynamic array size
// like "#{ 9223372036854775807 -> 0 }" (a one-step fuzzer mutation of
// any array literal) asks the host allocator for petabytes instead of
// faulting. Exceeding it is an out-of-objects fault, the paper's
// memory-exhaustion class (§5.2).
const MaxAllocElems = 1 << 16

// Live returns the number of currently live objects.
func (h *Heap) Live() int { return h.live }

// Allocs returns the total number of allocations.
func (h *Heap) Allocs() int64 { return h.allocs }

// Frees returns the total number of frees.
func (h *Heap) Frees() int64 { return h.frees }

// Alloc creates a new object with reference count 1. It returns nil if
// the live-object bound is exceeded (the caller faults). With recycling
// on, a freed object's element storage is reused when available; the
// Object shell itself is always fresh, so freed shells keep tombstoning
// their old identity. Contract: every caller stores into all n elements
// before the object becomes reachable (records pop every field, arrays
// store init into every slot), so reused stale elements are never
// observed and need no zeroing.
func (h *Heap) Alloc(t *types.Type, n int) *Object {
	if h.MaxLive > 0 && h.live >= h.MaxLive {
		return nil
	}
	elems := []Value(nil)
	if k := len(h.pool); k > 0 && cap(h.pool[k-1]) >= n {
		elems = h.pool[k-1][:n]
		h.pool[k-1] = nil
		h.pool = h.pool[:k-1]
	} else {
		elems = make([]Value, n)
	}
	o := &Object{ID: h.nextID, Type: t, RC: 1, Elems: elems}
	h.nextID++
	h.live++
	h.allocs++
	return o
}

// free marks o freed and recursively unlinks its children (§4.4). It
// reports the first fault encountered, if any.
func (h *Heap) free(o *Object) *Fault {
	if o.Freed {
		return &Fault{Kind: FaultDoubleFree, Msg: fmt.Sprintf("double free of %s", o)}
	}
	o.Freed = true
	h.live--
	h.frees++
	if h.onFree != nil {
		h.onFree()
	}
	for _, e := range o.Elems {
		if e.IsRef {
			if f := h.Unlink(e.Ref); f != nil {
				return f
			}
		}
	}
	if h.recycle && cap(o.Elems) > 0 {
		// Donate the backing array to the pool but keep the slice header
		// on the tombstone: faults on dangling references still print the
		// original element count, and freed elements are never read (every
		// access checks Freed first), so sharing the storage is safe.
		h.pool = append(h.pool, o.Elems)
	}
	return nil
}

// Link increments the reference count.
func (h *Heap) Link(o *Object) *Fault {
	if o == nil {
		return &Fault{Kind: FaultInternal, Msg: "link of nil reference"}
	}
	if o.Freed {
		return &Fault{Kind: FaultUseAfterFree, Msg: fmt.Sprintf("link of freed object %s", o)}
	}
	o.RC++
	return nil
}

// Unlink decrements the reference count, freeing the object (and
// recursively unlinking its children) when it reaches zero.
func (h *Heap) Unlink(o *Object) *Fault {
	if o == nil {
		return &Fault{Kind: FaultInternal, Msg: "unlink of nil reference"}
	}
	if o.Freed {
		return &Fault{Kind: FaultDoubleFree, Msg: fmt.Sprintf("unlink of freed object %s", o)}
	}
	o.RC--
	if o.RC < 0 {
		return &Fault{Kind: FaultNegativeRC, Msg: fmt.Sprintf("reference count of %s fell below zero", o)}
	}
	if o.RC == 0 {
		return h.free(o)
	}
	return nil
}

// GraphSize returns the number of objects and scalar words reachable from
// v (used for deep-copy cost accounting).
func GraphSize(v Value) (objects, words int) {
	seen := make(map[*Object]bool)
	var walk func(v Value)
	walk = func(v Value) {
		if !v.IsRef {
			words++
			return
		}
		if v.Ref == nil || seen[v.Ref] {
			return
		}
		seen[v.Ref] = true
		objects++
		for _, e := range v.Ref.Elems {
			walk(e)
		}
	}
	walk(v)
	return objects, words
}
