package vm_test

import (
	"testing"

	"esplang/internal/vm"
)

// manualMachine builds a manual-mode machine and settles it.
func manualMachine(t *testing.T, src string) *vm.Machine {
	t.Helper()
	prog := compileSrc(t, src)
	m := vm.New(prog, vm.Config{Manual: true})
	m.Cost = vm.ZeroCostModel()
	m.Settle()
	return m
}

const replaySrc = `
channel c: int
channel d: int
process p1 { $i = 0; while (i < 4) { out( c, i); i = i + 1; } }
process p2 { $n = 0; while (n < 4) { in( c, $v); out( d, v * v); n = n + 1; } }
process p3 { $n = 0; while (n < 4) { in( d, $v); n = n + 1; } }
`

// TestReplayCommsReproducesStates: a recorded choice sequence, replayed
// on a fresh machine, passes through exactly the same encoded states —
// the determinism the model checker's counterexample reconstruction
// depends on.
func TestReplayCommsReproducesStates(t *testing.T) {
	m := manualMachine(t, replaySrc)
	var choices []vm.CommChoice
	var keys []string
	for len(choices) < 8 {
		comms := m.EnabledComms()
		if len(comms) == 0 {
			break
		}
		c := comms[len(comms)-1] // an arbitrary but deterministic pick
		m.FireComm(c)
		if m.Fault() != nil {
			t.Fatalf("unexpected fault: %v", m.Fault())
		}
		choices = append(choices, c)
		keys = append(keys, m.EncodeState())
	}
	if len(choices) < 4 {
		t.Fatalf("path too short: %d transitions", len(choices))
	}

	r := manualMachine(t, replaySrc)
	for i, c := range choices {
		if f := r.ReplayComms([]vm.CommChoice{c}); f != nil {
			t.Fatalf("replay step %d faulted: %v", i, f)
		}
		if got := r.EncodeState(); got != keys[i] {
			t.Fatalf("replay diverged at step %d", i)
		}
	}
}

// TestReplayCommsStopsAtFault: replay returns the first fault and leaves
// the remaining choices unfired.
func TestReplayCommsStopsAtFault(t *testing.T) {
	src := `
channel c: int
process p { out( c, 1); out( c, 2); }
process q { in( c, $a); assert( a == 0); in( c, $b); }
`
	m := manualMachine(t, src)
	comms := m.EnabledComms()
	if len(comms) != 1 {
		t.Fatalf("want one enabled comm at the root, got %d", len(comms))
	}
	// Firing the first (and only) communication trips the assertion; the
	// bogus second choice must never fire.
	f := m.ReplayComms([]vm.CommChoice{comms[0], comms[0]})
	if f == nil || f.Kind != vm.FaultAssert {
		t.Fatalf("replay fault = %v, want assertion", f)
	}
}

// TestFireCommRejectsBadIndices: a corrupted recorded choice faults
// instead of panicking — replayed choices are data, not trusted input.
func TestFireCommRejectsBadIndices(t *testing.T) {
	m := manualMachine(t, replaySrc)
	m.FireComm(vm.CommChoice{Chan: 0, Sender: 99, SenderArm: -1, Receiver: 1, ReceiverArm: -1})
	if f := m.Fault(); f == nil || f.Kind != vm.FaultInternal {
		t.Fatalf("fault = %v, want internal fault on out-of-range process index", f)
	}
}
