package vm_test

import (
	"bytes"
	"fmt"
	"testing"

	"esplang/internal/check"
	"esplang/internal/compile"
	"esplang/internal/ir"
	"esplang/internal/obs"
	"esplang/internal/parser"
	"esplang/internal/vm"
)

// compileBench is compileSrc without the *testing.T, for benchmarks.
func compileBench(src string) (*ir.Program, error) {
	tree, err := parser.Parse([]byte(src))
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	info, err := check.Check(tree)
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	return compile.Program(tree, info), nil
}

// pingPongSrc is a rendezvous-heavy closed pair: almost every cycle goes
// to message transfer and the context switches around it (§6.2).
const pingPongSrc = `
channel c: int
channel outC: int external reader
process producer {
    $i = 0;
    while (i < 50) {
        out( c, i); out( c, i); out( c, i); out( c, i);
        i = i + 1;
    }
}
process consumer {
    $i = 0;
    $sum = 0;
    while (i < 50) {
        in( c, $a); in( c, $b); in( c, $v); in( c, $w);
        sum = sum + v;
        i = i + 1;
    }
    out( outC, sum);
}
`

func runOnce(t *testing.T, attach func(m *vm.Machine)) (*vm.Machine, []int64) {
	t.Helper()
	m := newMachine(t, pingPongSrc, vm.Config{})
	outv := &vm.CollectReader{}
	if err := m.BindReader("outC", outv); err != nil {
		t.Fatal(err)
	}
	if attach != nil {
		attach(m)
	}
	if res := m.Run(); res == vm.RunFault {
		t.Fatalf("run result %v (fault: %v)", res, m.Fault())
	}
	var got []int64
	for _, v := range outv.Values {
		got = append(got, v.Int())
	}
	return m, got
}

// TestObsEquivalence is the core zero-interference contract: a run with
// the full observability stack attached produces the same outputs, the
// same event counts, and the same cycle total as a plain run.
func TestObsEquivalence(t *testing.T) {
	plain, plainOut := runOnce(t, nil)

	tr := obs.NewChromeTracer(1)
	prof := obs.NewProfiler("pingpong")
	reg := obs.NewMetrics()
	traced, tracedOut := runOnce(t, func(m *vm.Machine) {
		m.SetTracer(tr)
		m.SetProfiler(prof)
		m.SetMetrics(reg)
	})

	if len(plainOut) != len(tracedOut) || plainOut[0] != tracedOut[0] {
		t.Errorf("outputs differ: %v plain, %v traced", plainOut, tracedOut)
	}
	if plain.Cycles != traced.Cycles {
		t.Errorf("cycle meter differs: %d plain, %d traced", plain.Cycles, traced.Cycles)
	}
	if d := traced.Stats.Sub(plain.Stats); d != (vm.Stats{}) {
		t.Errorf("stats differ under tracing: delta %s", d)
	}
	if tr.Len() == 0 {
		t.Error("tracer collected no events")
	}

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Errorf("invalid trace: %v", err)
	}
}

// TestProfileDecomposesCycles checks the profiler accounts for the cycle
// meter without remainder: every charged cycle lands on some source line
// with some kind.
func TestProfileDecomposesCycles(t *testing.T) {
	prof := obs.NewProfiler("pingpong")
	m, _ := runOnce(t, func(m *vm.Machine) { m.SetProfiler(prof) })
	if prof.TotalCycles() != m.Cycles {
		t.Errorf("profile covers %d cycles, meter says %d", prof.TotalCycles(), m.Cycles)
	}
	cycles, counts := prof.KindTotals()
	if counts[obs.KindRendezvous] != m.Stats.Rendezvous {
		t.Errorf("profile counted %d rendezvous, stats say %d",
			counts[obs.KindRendezvous], m.Stats.Rendezvous)
	}
	var sum int64
	for _, c := range cycles {
		sum += c
	}
	if sum != m.Cycles {
		t.Errorf("kind totals sum to %d, meter says %d", sum, m.Cycles)
	}
}

// TestProfileTopIsRendezvous is the §6.2 acceptance check: on a firmware-
// shaped program — a small loop moving messages between external channels
// — the hottest source line must be dominated by rendezvous or context-
// switch cost, the paper's finding that message transfer, not
// computation, is where firmware cycles go.
func TestProfileTopIsRendezvous(t *testing.T) {
	m := newMachine(t, add5Src, vm.Config{})
	in := &vm.QueueWriter{}
	outv := &vm.CollectReader{}
	if err := m.BindWriter("inC", in); err != nil {
		t.Fatal(err)
	}
	if err := m.BindReader("outC", outv); err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < 20; v++ {
		v := v
		in.Push(0, func(_ *vm.Machine) vm.Value { return vm.IntVal(v) })
	}
	prof := obs.NewProfiler("add5")
	m.SetProfiler(prof)
	if res := m.Run(); res == vm.RunFault {
		t.Fatalf("run result %v (fault: %v)", res, m.Fault())
	}
	lines := prof.Lines()
	if len(lines) == 0 {
		t.Fatal("empty profile")
	}
	// The top of the profile must be message transfer: one of the two
	// hottest lines is dominated by rendezvous or context-switch cost.
	topComm := false
	for _, lp := range lines[:2] {
		if k := lp.Dominant(); k == obs.KindRendezvous || k == obs.KindCtxSwitch {
			topComm = true
		}
	}
	if !topComm {
		t.Errorf("no rendezvous/ctxswitch-dominated line in the top two\n%s",
			prof.Report(add5Src, 5))
	}
	// And across all kinds, rendezvous is the largest cost after raw
	// instruction dispatch.
	cycles, _ := prof.KindTotals()
	for k := obs.Kind(0); k < obs.NumKinds; k++ {
		if k == obs.KindInstr || k == obs.KindRendezvous {
			continue
		}
		if cycles[k] > cycles[obs.KindRendezvous] {
			t.Errorf("kind %v (%d cycles) outweighs rendezvous (%d cycles)\n%s",
				k, cycles[k], cycles[obs.KindRendezvous], prof.KindTable())
		}
	}
}

// TestDisabledObsZeroAlloc asserts the steady-state rendezvous path
// allocates nothing when no tracer is attached — the zero-cost-when-off
// property. The machine fires the same communication repeatedly in
// manual mode (the state cycles back to the same blocking point), so
// after warm-up every Go allocation would be the instrumentation's.
func TestDisabledObsZeroAlloc(t *testing.T) {
	m := newMachine(t, `
channel c: int
process producer {
    while (true) { out( c, 1); }
}
process consumer {
    while (true) { in( c, $v); }
}
`, vm.Config{Manual: true})
	m.Settle()
	comms := m.EnabledComms()
	if len(comms) != 1 {
		t.Fatalf("want exactly one enabled comm, got %d", len(comms))
	}
	c := comms[0]
	for i := 0; i < 16; i++ { // warm up: grow ready/queue capacities
		m.FireComm(c)
	}
	if avg := testing.AllocsPerRun(200, func() { m.FireComm(c) }); avg != 0 {
		t.Errorf("disabled-tracer rendezvous path allocates %.2f objects/op, want 0", avg)
	}
}

// BenchmarkRendezvousDisabledTracer measures the steady-state rendezvous
// path with observability off — the configuration every production run
// uses, which must stay allocation-free.
func BenchmarkRendezvousDisabledTracer(b *testing.B) {
	benchRendezvous(b, false)
}

// BenchmarkRendezvousChromeTracer measures the same path with the Chrome
// tracer attached, for comparison against the disabled baseline.
func BenchmarkRendezvousChromeTracer(b *testing.B) {
	benchRendezvous(b, true)
}

func benchRendezvous(b *testing.B, traced bool) {
	prog, err := compileBench(`
channel c: int
process producer {
    while (true) { out( c, 1); }
}
process consumer {
    while (true) { in( c, $v); }
}
`)
	if err != nil {
		b.Fatal(err)
	}
	m := vm.New(prog, vm.Config{Manual: true})
	if traced {
		m.SetTracer(obs.NewChromeTracer(1))
	}
	m.Settle()
	c := m.EnabledComms()[0]
	for i := 0; i < 16; i++ {
		m.FireComm(c)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.FireComm(c)
	}
}
