package vm

import (
	"fmt"
	"strings"
)

// CostModel assigns a cycle cost to each class of runtime event. The
// defaults approximate the 33 MHz LANai4.1 of the paper's Myrinet cards:
// the interpreter dispatch makes one IR instruction cost several machine
// instructions, a context switch saves and restores only a program counter
// (§6.1, "a few instructions"), and a rendezvous is a handful of loads and
// stores plus the pattern walk.
type CostModel struct {
	PerInstr     int64 // every executed IR instruction
	CtxSwitch    int64 // switching the running process
	Rendezvous   int64 // completing one message transfer
	Alloc        int64 // heap allocation
	Free         int64 // heap free
	RefOp        int64 // link/unlink
	PatternNode  int64 // per pattern node tested or bound
	MaskCheck    int64 // readiness check against one process's wait bit-mask
	QueueOp      int64 // enqueue/dequeue in wait-queue mode (ablation)
	ExternalPoll int64 // polling one external channel binding
	DeepCopyWord int64 // per word copied when ForceDeepCopy is on (ablation)
}

// DefaultCostModel returns the calibrated cost model used by the
// benchmarks.
func DefaultCostModel() CostModel {
	return CostModel{
		PerInstr:     2,
		CtxSwitch:    5,
		Rendezvous:   8,
		Alloc:        8,
		Free:         4,
		RefOp:        1,
		PatternNode:  1,
		MaskCheck:    1,
		QueueOp:      6,
		ExternalPoll: 2,
		DeepCopyWord: 2,
	}
}

// ZeroCostModel returns a model where nothing costs anything (used by the
// model checker, which cares about states, not cycles).
func ZeroCostModel() CostModel { return CostModel{} }

// Stats counts runtime events, independent of the cost model.
type Stats struct {
	Instrs       int64
	CtxSwitches  int64
	Rendezvous   int64
	Allocs       int64
	Frees        int64
	RefOps       int64
	PatternNodes int64
	MaskChecks   int64
	QueueOps     int64
	Polls        int64
	DeepCopied   int64 // words
	// DirectXfers counts rendezvous completed through the process-fused
	// engine's direct-transfer fast path. It is a diagnostic: each such
	// transfer already appears in Rendezvous (and charges the same
	// cycles), so DirectXfers contributes zero to the §6.2 cycle
	// decomposition and the other engines always leave it zero.
	DirectXfers int64
}

// Sub returns the event counts accumulated since o was captured
// (field-wise s - o). Use it to meter one phase of a longer run:
//
//	before := m.Stats
//	...
//	delta := m.Stats.Sub(before)
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Instrs:       s.Instrs - o.Instrs,
		CtxSwitches:  s.CtxSwitches - o.CtxSwitches,
		Rendezvous:   s.Rendezvous - o.Rendezvous,
		Allocs:       s.Allocs - o.Allocs,
		Frees:        s.Frees - o.Frees,
		RefOps:       s.RefOps - o.RefOps,
		PatternNodes: s.PatternNodes - o.PatternNodes,
		MaskChecks:   s.MaskChecks - o.MaskChecks,
		QueueOps:     s.QueueOps - o.QueueOps,
		Polls:        s.Polls - o.Polls,
		DeepCopied:   s.DeepCopied - o.DeepCopied,
		DirectXfers:  s.DirectXfers - o.DirectXfers,
	}
}

// String renders the counters on one line, zero fields omitted — the
// shared pretty-printer behind esprun -stats, vmmcbench's overhead
// table, and the profiler's summaries.
func (s Stats) String() string {
	var b strings.Builder
	add := func(name string, v int64) {
		if v == 0 {
			return
		}
		if b.Len() > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", name, v)
	}
	add("instrs", s.Instrs)
	add("ctxsw", s.CtxSwitches)
	add("rendezvous", s.Rendezvous)
	add("allocs", s.Allocs)
	add("frees", s.Frees)
	add("refops", s.RefOps)
	add("patnodes", s.PatternNodes)
	add("maskchecks", s.MaskChecks)
	add("queueops", s.QueueOps)
	add("polls", s.Polls)
	add("deepcopied", s.DeepCopied)
	add("directxfers", s.DirectXfers)
	if b.Len() == 0 {
		return "(no events)"
	}
	return b.String()
}
