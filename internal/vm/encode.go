package vm

import (
	"encoding/binary"
)

// EncodeState serializes the machine's semantic state into a canonical
// byte string: two states encode equally iff they are behaviorally
// identical. Heap objects are renumbered in first-visit order during a
// deterministic traversal from the process roots, so object identities
// assigned at different allocation times do not distinguish states —
// the objectId canonicalization of §5.2.
//
// The traversal marks objects with the machine's generation counter
// (instead of building a map per call) and reuses the machine's encode
// buffer, so a call allocates only the returned string. As a consequence
// EncodeState is not safe for concurrent use on one machine — which was
// already true of every execution entry point; the model checker's
// workers each own their machine.
func (m *Machine) EncodeState() string {
	m.markGen++
	e := stateEncoder{buf: m.encBuf[:0], gen: m.markGen}
	// The live-object count is part of the state: leaked objects are
	// unreachable from the roots but still occupy objectIds, and it is
	// exactly their accumulation that the verifier's fixed-size table
	// catches (§5.2).
	e.uv(uint64(m.heap.live))
	for _, p := range m.Procs {
		e.u8(uint8(p.Status))
		e.uv(uint64(p.PC))
		e.uv(uint64(p.WaitChan + 1))
		e.uv(uint64(p.WaitPort + 1))
		e.uv(uint64(p.AltIdx + 1))
		e.uv(uint64(p.ResumePC + 1))
		e.uv(uint64(len(p.Locals)))
		for _, v := range p.Locals {
			e.value(v)
		}
		e.uv(uint64(len(p.Stack)))
		for _, v := range p.Stack {
			e.value(v)
		}
		if p.Status == PBlockedSend {
			e.value(p.Pending)
			e.uv(uint64(p.PendingFlags))
		}
	}
	// Emit visited objects' contents after the roots (ids are stable by
	// first-visit order, so a second pass is unnecessary: contents were
	// emitted inline at first visit).
	s := string(e.buf) // copies, so the buffer is free to reuse
	m.encBuf = e.buf
	return s
}

type stateEncoder struct {
	buf []byte
	gen int64
	n   int32 // next first-visit object index
}

func (e *stateEncoder) u8(v uint8) { e.buf = append(e.buf, v) }

func (e *stateEncoder) uv(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *stateEncoder) iv(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

func (e *stateEncoder) value(v Value) {
	if !v.IsRef {
		e.u8(0)
		e.iv(v.Int)
		return
	}
	if v.Ref == nil {
		e.u8(1)
		return
	}
	o := v.Ref
	if o.mark == e.gen {
		e.u8(2)
		e.uv(uint64(o.markIdx))
		return
	}
	o.mark = e.gen
	o.markIdx = e.n
	e.n++
	e.u8(3)
	e.uv(uint64(o.Type.ID()))
	flags := uint8(0)
	if o.Freed {
		flags = 1
	}
	e.u8(flags)
	e.iv(int64(o.RC))
	e.uv(uint64(o.Tag))
	e.uv(uint64(len(o.Elems)))
	for _, el := range o.Elems {
		e.value(el)
	}
}
