package vm

import (
	"encoding/binary"
)

// EncodeState serializes the machine's semantic state into a canonical
// byte string: two states encode equally iff they are behaviorally
// identical. Heap objects are renumbered in first-visit order during a
// deterministic traversal from the process roots, so object identities
// assigned at different allocation times do not distinguish states —
// the objectId canonicalization of §5.2.
func (m *Machine) EncodeState() string {
	e := &stateEncoder{ids: make(map[*Object]int)}
	// The live-object count is part of the state: leaked objects are
	// unreachable from the roots but still occupy objectIds, and it is
	// exactly their accumulation that the verifier's fixed-size table
	// catches (§5.2).
	e.uv(uint64(m.heap.live))
	for _, p := range m.Procs {
		e.u8(uint8(p.Status))
		e.uv(uint64(p.PC))
		e.uv(uint64(p.WaitChan + 1))
		e.uv(uint64(p.WaitPort + 1))
		e.uv(uint64(p.AltIdx + 1))
		e.uv(uint64(p.ResumePC + 1))
		e.uv(uint64(len(p.Locals)))
		for _, v := range p.Locals {
			e.value(v)
		}
		e.uv(uint64(len(p.Stack)))
		for _, v := range p.Stack {
			e.value(v)
		}
		if p.Status == PBlockedSend {
			e.value(p.Pending)
			e.uv(uint64(p.PendingFlags))
		}
	}
	// Emit visited objects' contents after the roots (ids are stable by
	// first-visit order, so a second pass is unnecessary: contents were
	// emitted inline at first visit).
	return string(e.buf)
}

type stateEncoder struct {
	buf []byte
	ids map[*Object]int
}

func (e *stateEncoder) u8(v uint8) { e.buf = append(e.buf, v) }

func (e *stateEncoder) uv(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *stateEncoder) iv(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

func (e *stateEncoder) value(v Value) {
	if !v.IsRef {
		e.u8(0)
		e.iv(v.Int)
		return
	}
	if v.Ref == nil {
		e.u8(1)
		return
	}
	if id, ok := e.ids[v.Ref]; ok {
		e.u8(2)
		e.uv(uint64(id))
		return
	}
	id := len(e.ids)
	e.ids[v.Ref] = id
	e.u8(3)
	e.uv(uint64(v.Ref.Type.ID()))
	flags := uint8(0)
	if v.Ref.Freed {
		flags = 1
	}
	e.u8(flags)
	e.iv(int64(v.Ref.RC))
	e.uv(uint64(v.Ref.Tag))
	e.uv(uint64(len(v.Ref.Elems)))
	for _, el := range v.Ref.Elems {
		e.value(el)
	}
}
