package ast

import (
	"fmt"
	"strings"

	"esplang/internal/token"
)

// Print renders the program back to ESP source text. The output is
// canonical (normalized whitespace, one statement per line) and reparses
// to an equivalent tree, which the tests rely on.
func Print(p *Program) string {
	var pr printer
	for i, d := range p.Decls {
		if i > 0 {
			pr.nl()
		}
		pr.decl(d)
	}
	return pr.b.String()
}

// PrintExpr renders a single expression or pattern.
func PrintExpr(e Expr) string {
	var pr printer
	pr.expr(e)
	return pr.b.String()
}

// PrintType renders a type expression.
func PrintType(t TypeExpr) string {
	var pr printer
	pr.typeExpr(t)
	return pr.b.String()
}

// PrintStmt renders a single statement at indent 0.
func PrintStmt(s Stmt) string {
	var pr printer
	pr.stmt(s)
	return strings.TrimRight(pr.b.String(), "\n")
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) w(format string, args ...any) {
	fmt.Fprintf(&p.b, format, args...)
}

func (p *printer) nl() {
	p.b.WriteByte('\n')
}

func (p *printer) tab() {
	for i := 0; i < p.indent; i++ {
		p.b.WriteString("    ")
	}
}

func (p *printer) line(format string, args ...any) {
	p.tab()
	p.w(format, args...)
	p.nl()
}

func (p *printer) decl(d Decl) {
	switch x := d.(type) {
	case *TypeDecl:
		p.tab()
		p.w("type %s = ", x.Name.Name)
		p.typeExpr(x.Type)
		p.nl()
	case *ConstDecl:
		p.line("const %s = %d;", x.Name.Name, x.Value)
	case *ChannelDecl:
		p.tab()
		p.w("channel %s: ", x.Name.Name)
		p.typeExpr(x.Elem)
		switch x.Ext {
		case ExtReader:
			p.w(" external reader")
		case ExtWriter:
			p.w(" external writer")
		}
		p.nl()
	case *InterfaceDecl:
		p.tab()
		dir := "in"
		if x.Dir == token.OUT {
			dir = "out"
		}
		p.w("interface %s( %s %s) {", x.Name.Name, dir, x.Chan.Name)
		p.nl()
		p.indent++
		for i, c := range x.Cases {
			p.tab()
			p.w("%s( ", c.Name.Name)
			p.expr(c.Pattern)
			p.w(")")
			if i < len(x.Cases)-1 {
				p.w(",")
			}
			p.nl()
		}
		p.indent--
		p.line("}")
	case *ProcessDecl:
		p.line("process %s {", x.Name.Name)
		p.indent++
		for _, s := range x.Body.Stmts {
			p.stmt(s)
		}
		p.indent--
		p.line("}")
	}
}

func (p *printer) typeExpr(t TypeExpr) {
	switch x := t.(type) {
	case *NamedType:
		p.w("%s", x.Name)
	case *PrimType:
		if x.Kind == token.INTTYPE {
			p.w("int")
		} else {
			p.w("bool")
		}
	case *RecordType:
		if x.Mutable {
			p.w("#")
		}
		p.w("record of { ")
		p.fields(x.Fields)
		p.w("}")
	case *UnionType:
		if x.Mutable {
			p.w("#")
		}
		p.w("union of { ")
		p.fields(x.Fields)
		p.w("}")
	case *ArrayType:
		if x.Mutable {
			p.w("#")
		}
		p.w("array of ")
		p.typeExpr(x.Elem)
		if x.Bound > 0 {
			p.w("[%d]", x.Bound)
		}
	}
}

func (p *printer) fields(fs []FieldDef) {
	for i, f := range fs {
		if i > 0 {
			p.w(", ")
		}
		p.w("%s: ", f.Name.Name)
		p.typeExpr(f.Type)
	}
	p.w(" ")
}

func (p *printer) stmt(s Stmt) {
	switch x := s.(type) {
	case *Block:
		p.line("{")
		p.indent++
		for _, st := range x.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	case *VarDecl:
		p.tab()
		p.w("$%s", x.Name.Name)
		if x.Type != nil {
			p.w(": ")
			p.typeExpr(x.Type)
		}
		p.w(" = ")
		p.expr(x.Init)
		p.w(";")
		p.nl()
	case *Assign:
		p.tab()
		p.expr(x.LHS)
		p.w(" = ")
		p.expr(x.RHS)
		p.w(";")
		p.nl()
	case *While:
		p.tab()
		if x.Cond != nil {
			p.w("while (")
			p.expr(x.Cond)
			p.w(") {")
		} else {
			p.w("while {")
		}
		p.nl()
		p.indent++
		for _, st := range x.Body.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	case *If:
		p.tab()
		p.ifChain(x)
		p.nl()
	case *Comm:
		p.tab()
		p.comm(x)
		p.w(";")
		p.nl()
	case *Alt:
		p.line("alt {")
		p.indent++
		for _, c := range x.Cases {
			p.tab()
			p.w("case( ")
			if c.Guard != nil {
				p.expr(c.Guard)
				p.w(", ")
			}
			p.comm(c.Comm)
			p.w(") {")
			p.nl()
			p.indent++
			for _, st := range c.Body.Stmts {
				p.stmt(st)
			}
			p.indent--
			p.line("}")
		}
		p.indent--
		p.line("}")
	case *Link:
		p.tab()
		p.w("link( ")
		p.expr(x.X)
		p.w(");")
		p.nl()
	case *Unlink:
		p.tab()
		p.w("unlink( ")
		p.expr(x.X)
		p.w(");")
		p.nl()
	case *Assert:
		p.tab()
		p.w("assert( ")
		p.expr(x.X)
		p.w(");")
		p.nl()
	case *Skip:
		p.line("skip;")
	case *BreakStmt:
		p.line("break;")
	}
}

// ifChain prints an if statement, flattening else-if chains, without the
// trailing newline (the caller adds it).
func (p *printer) ifChain(x *If) {
	p.w("if (")
	p.expr(x.Cond)
	p.w(") {")
	p.nl()
	p.indent++
	for _, st := range x.Then.Stmts {
		p.stmt(st)
	}
	p.indent--
	p.tab()
	p.w("}")
	switch e := x.Else.(type) {
	case nil:
	case *If:
		p.w(" else ")
		p.ifChain(e)
	case *Block:
		p.w(" else {")
		p.nl()
		p.indent++
		for _, st := range e.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.tab()
		p.w("}")
	}
}

func (p *printer) comm(c *Comm) {
	p.w("%s( %s, ", c.Dir, c.Chan.Name)
	p.expr(c.Arg)
	p.w(")")
}

// exprPrec mirrors parser precedence so the printer can parenthesize
// minimally but correctly.
func exprPrec(e Expr) int {
	switch x := e.(type) {
	case *Binary:
		return x.Op.Precedence()
	case *Unary:
		return 6
	}
	return 7 // primary
}

func (p *printer) expr(e Expr) {
	switch x := e.(type) {
	case *Ident:
		p.w("%s", x.Name)
	case *IntLit:
		p.w("%d", x.Value)
	case *BoolLit:
		p.w("%t", x.Value)
	case *Self:
		p.w("@")
	case *Binding:
		p.w("$%s", x.Name.Name)
	case *Wildcard:
		p.w("_")
	case *Unary:
		p.w("%s", x.Op)
		p.exprParen(x.X, 6)
	case *Binary:
		prec := x.Op.Precedence()
		p.exprParen(x.X, prec)
		p.w(" %s ", x.Op)
		p.exprParen(x.Y, prec+1)
	case *Index:
		p.exprParen(x.X, 7)
		p.w("[")
		p.expr(x.I)
		p.w("]")
	case *FieldSel:
		p.exprParen(x.X, 7)
		p.w(".%s", x.Name.Name)
	case *RecordLit:
		if x.Mutable {
			p.w("#")
		}
		p.w("{ ")
		for i, el := range x.Elems {
			if i > 0 {
				p.w(", ")
			}
			p.expr(el)
		}
		p.w("}")
	case *UnionLit:
		if x.Mutable {
			p.w("#")
		}
		p.w("{ %s |> ", x.Field.Name)
		p.expr(x.Value)
		p.w("}")
	case *ArrayLit:
		if x.Mutable {
			p.w("#")
		}
		p.w("{ ")
		p.expr(x.Count)
		p.w(" -> ")
		p.expr(x.Init)
		p.w("}")
	case *Cast:
		if x.ToMutable {
			p.w("mutable(")
		} else {
			p.w("immutable(")
		}
		p.expr(x.X)
		p.w(")")
	}
}

func (p *printer) exprParen(e Expr, minPrec int) {
	if exprPrec(e) < minPrec {
		p.w("(")
		p.expr(e)
		p.w(")")
		return
	}
	p.expr(e)
}
