// Package ast declares the abstract syntax tree of the ESP language.
//
// The tree mirrors the surface syntax of the paper (PLDI 2001): a program
// is a flat list of type, constant, channel, interface, and process
// declarations. Patterns share expression nodes; a Binding node ($x) is
// only legal in pattern (lvalue) positions, which the type checker
// enforces.
package ast

import (
	"esplang/internal/token"
)

// Node is the interface implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------------------
// Program and declarations

// Program is a parsed ESP compilation unit.
type Program struct {
	Decls []Decl
}

// Pos returns the position of the first declaration.
func (p *Program) Pos() token.Pos {
	if len(p.Decls) > 0 {
		return p.Decls[0].Pos()
	}
	return token.Pos{}
}

// Decl is a top-level declaration.
type Decl interface {
	Node
	declNode()
}

// TypeDecl is "type name = typeexpr".
type TypeDecl struct {
	TokPos token.Pos
	Name   *Ident
	Type   TypeExpr
}

// ConstDecl is "const name = intlit ;".
type ConstDecl struct {
	TokPos token.Pos
	Name   *Ident
	Value  int64
}

// ExtDir describes which side of a channel is external (implemented in C /
// by the host environment) if any.
type ExtDir int

// External channel directions.
const (
	ExtNone   ExtDir = iota // ordinary internal channel
	ExtReader               // external code receives from the channel
	ExtWriter               // external code sends on the channel
)

func (d ExtDir) String() string {
	switch d {
	case ExtReader:
		return "external reader"
	case ExtWriter:
		return "external writer"
	}
	return "internal"
}

// ChannelDecl is "channel name : typeexpr [external reader|writer] ;".
// The external annotation may also be established by an InterfaceDecl.
type ChannelDecl struct {
	TokPos token.Pos
	Name   *Ident
	Elem   TypeExpr
	Ext    ExtDir
}

// IfaceCase is one named pattern of an external interface: Name(Pattern).
// Bindings ($x) in the pattern become the parameters of the generated C
// function for that case.
type IfaceCase struct {
	Name    *Ident
	Pattern Expr
}

// InterfaceDecl declares the external C interface of a channel (§4.5):
//
//	interface userReq( out userReqC) { Send( pattern), Update( pattern) }
//
// Dir is the direction from the point of view of the external code:
// "out chan" means external code writes into the channel (external writer).
type InterfaceDecl struct {
	TokPos token.Pos
	Name   *Ident
	Dir    token.Kind // token.IN or token.OUT
	Chan   *Ident
	Cases  []IfaceCase
}

// ProcessDecl is "process name { stmts }".
type ProcessDecl struct {
	TokPos token.Pos
	Name   *Ident
	Body   *Block
}

func (d *TypeDecl) Pos() token.Pos      { return d.TokPos }
func (d *ConstDecl) Pos() token.Pos     { return d.TokPos }
func (d *ChannelDecl) Pos() token.Pos   { return d.TokPos }
func (d *InterfaceDecl) Pos() token.Pos { return d.TokPos }
func (d *ProcessDecl) Pos() token.Pos   { return d.TokPos }

func (*TypeDecl) declNode()      {}
func (*ConstDecl) declNode()     {}
func (*ChannelDecl) declNode()   {}
func (*InterfaceDecl) declNode() {}
func (*ProcessDecl) declNode()   {}

// ---------------------------------------------------------------------------
// Type expressions

// TypeExpr is a syntactic type.
type TypeExpr interface {
	Node
	typeExprNode()
}

// NamedType refers to a declared type by name.
type NamedType struct {
	NamePos token.Pos
	Name    string
}

// PrimType is "int" or "bool".
type PrimType struct {
	TokPos token.Pos
	Kind   token.Kind // token.INTTYPE or token.BOOLTYPE
}

// FieldDef is a "name : type" member of a record or union.
type FieldDef struct {
	Name *Ident
	Type TypeExpr
}

// RecordType is "[#] record of { f1: t1, ... }".
type RecordType struct {
	TokPos  token.Pos
	Mutable bool
	Fields  []FieldDef
}

// UnionType is "[#] union of { f1: t1, ... }".
type UnionType struct {
	TokPos  token.Pos
	Mutable bool
	Fields  []FieldDef
}

// ArrayType is "[#] array of t [bound]". Bound, when positive, is the
// fixed size used by the verification backends (SPIN has no dynamic
// arrays, §5.2); 0 means "unspecified", and the verifier configuration
// supplies a default.
type ArrayType struct {
	TokPos  token.Pos
	Mutable bool
	Elem    TypeExpr
	Bound   int64
}

func (t *NamedType) Pos() token.Pos  { return t.NamePos }
func (t *PrimType) Pos() token.Pos   { return t.TokPos }
func (t *RecordType) Pos() token.Pos { return t.TokPos }
func (t *UnionType) Pos() token.Pos  { return t.TokPos }
func (t *ArrayType) Pos() token.Pos  { return t.TokPos }

func (*NamedType) typeExprNode()  {}
func (*PrimType) typeExprNode()   {}
func (*RecordType) typeExprNode() {}
func (*UnionType) typeExprNode()  {}
func (*ArrayType) typeExprNode()  {}

// ---------------------------------------------------------------------------
// Statements

// Stmt is a statement inside a process body.
type Stmt interface {
	Node
	stmtNode()
}

// Block is "{ stmts }".
type Block struct {
	TokPos token.Pos
	Stmts  []Stmt
}

// VarDecl is "$name [: type] = expr ;". Every ESP variable is initialized
// at declaration (§4.1); Type may be nil when inferred.
type VarDecl struct {
	TokPos token.Pos
	Name   *Ident
	Type   TypeExpr
	Init   Expr
}

// Assign is "lhs = rhs ;". The left side is either an ordinary lvalue
// (variable, index, field) or a pattern containing bindings, in which case
// the statement performs pattern matching (§4.2).
type Assign struct {
	TokPos token.Pos
	LHS    Expr
	RHS    Expr
}

// While is "while (cond) { ... }"; "while { ... }" parses with Cond == nil
// and means while(true).
type While struct {
	TokPos token.Pos
	Cond   Expr
	Body   *Block
}

// If is "if (cond) block [else block|if]".
type If struct {
	TokPos token.Pos
	Cond   Expr
	Then   *Block
	Else   Stmt // *Block, *If, or nil
}

// CommDir distinguishes in from out operations.
type CommDir int

// Communication directions.
const (
	Recv CommDir = iota // in(chan, pattern)
	Send                // out(chan, expr)
)

func (d CommDir) String() string {
	if d == Recv {
		return "in"
	}
	return "out"
}

// Comm is a communication operation "in(chan, pattern)" or
// "out(chan, expr)", used standalone (as a statement) and inside alt cases.
type Comm struct {
	TokPos token.Pos
	Dir    CommDir
	Chan   *Ident
	Arg    Expr // pattern for Recv, value for Send
}

// AltCase is "case( [guard ,] commop ) block".
type AltCase struct {
	TokPos token.Pos
	Guard  Expr // nil when absent
	Comm   *Comm
	Body   *Block
}

// Alt is "alt { cases }": wait for the first ready communication among the
// cases whose guard holds (§4.2).
type Alt struct {
	TokPos token.Pos
	Cases  []*AltCase
}

// Link is "link(expr) ;": increment the reference count (§4.4).
type Link struct {
	TokPos token.Pos
	X      Expr
}

// Unlink is "unlink(expr) ;": decrement the reference count, freeing at 0.
type Unlink struct {
	TokPos token.Pos
	X      Expr
}

// Assert is "assert(expr) ;", checked by the verifier and (optionally) the
// runtime.
type Assert struct {
	TokPos token.Pos
	X      Expr
}

// Skip is the no-op statement "skip ;".
type Skip struct {
	TokPos token.Pos
}

// BreakStmt is "break ;", terminating the innermost while loop.
type BreakStmt struct {
	TokPos token.Pos
}

func (s *Block) Pos() token.Pos     { return s.TokPos }
func (s *VarDecl) Pos() token.Pos   { return s.TokPos }
func (s *Assign) Pos() token.Pos    { return s.TokPos }
func (s *While) Pos() token.Pos     { return s.TokPos }
func (s *If) Pos() token.Pos        { return s.TokPos }
func (s *Comm) Pos() token.Pos      { return s.TokPos }
func (s *Alt) Pos() token.Pos       { return s.TokPos }
func (s *Link) Pos() token.Pos      { return s.TokPos }
func (s *Unlink) Pos() token.Pos    { return s.TokPos }
func (s *Assert) Pos() token.Pos    { return s.TokPos }
func (s *Skip) Pos() token.Pos      { return s.TokPos }
func (s *BreakStmt) Pos() token.Pos { return s.TokPos }

func (*Block) stmtNode()     {}
func (*VarDecl) stmtNode()   {}
func (*Assign) stmtNode()    {}
func (*While) stmtNode()     {}
func (*If) stmtNode()        {}
func (*Comm) stmtNode()      {}
func (*Alt) stmtNode()       {}
func (*Link) stmtNode()      {}
func (*Unlink) stmtNode()    {}
func (*Assert) stmtNode()    {}
func (*Skip) stmtNode()      {}
func (*BreakStmt) stmtNode() {}

// ---------------------------------------------------------------------------
// Expressions and patterns

// Expr is an expression or pattern node.
type Expr interface {
	Node
	exprNode()
}

// Ident is a use of a name.
type Ident struct {
	NamePos token.Pos
	Name    string
}

// IntLit is an integer literal.
type IntLit struct {
	TokPos token.Pos
	Value  int64
}

// BoolLit is "true" or "false".
type BoolLit struct {
	TokPos token.Pos
	Value  bool
}

// Self is "@": the id of the executing process instance (§4.3).
type Self struct {
	TokPos token.Pos
}

// Binding is "$name" inside a pattern: it declares name and binds it to
// the matched component.
type Binding struct {
	TokPos token.Pos
	Name   *Ident
}

// Wildcard is "_" inside a pattern: match anything, bind nothing.
type Wildcard struct {
	TokPos token.Pos
}

// Unary is "!x" or "-x".
type Unary struct {
	TokPos token.Pos
	Op     token.Kind
	X      Expr
}

// Binary is "x op y".
type Binary struct {
	TokPos token.Pos
	Op     token.Kind
	X, Y   Expr
}

// Index is "x[i]".
type Index struct {
	TokPos token.Pos
	X      Expr
	I      Expr
}

// FieldSel is "x.f" (record field selection).
type FieldSel struct {
	TokPos token.Pos
	X      Expr
	Name   *Ident
}

// RecordLit is "{ e1, e2, ... }". In rvalue position it allocates a
// record; in lvalue position it is a record pattern (§4.2). Mutable is set
// by a '#' prefix.
type RecordLit struct {
	TokPos  token.Pos
	Mutable bool
	Elems   []Expr
}

// UnionLit is "{ field |> e }": allocation of a union with the given valid
// field, or a union pattern in lvalue position.
type UnionLit struct {
	TokPos  token.Pos
	Mutable bool
	Field   *Ident
	Value   Expr
}

// ArrayLit is "{ count -> init [, ...] }": allocate an array of count
// elements, each initialized to init. The optional trailing "..." is
// cosmetic (the paper writes "#{ TABLE_SIZE -> 0, ... }").
type ArrayLit struct {
	TokPos  token.Pos
	Mutable bool
	Count   Expr
	Init    Expr
}

// Cast is "mutable(e)" or "immutable(e)": semantically a deep copy into an
// object of the other mutability (§4.2); the compiler elides the copy when
// the source is dead afterwards.
type Cast struct {
	TokPos    token.Pos
	ToMutable bool
	X         Expr
}

func (e *Ident) Pos() token.Pos     { return e.NamePos }
func (e *IntLit) Pos() token.Pos    { return e.TokPos }
func (e *BoolLit) Pos() token.Pos   { return e.TokPos }
func (e *Self) Pos() token.Pos      { return e.TokPos }
func (e *Binding) Pos() token.Pos   { return e.TokPos }
func (e *Wildcard) Pos() token.Pos  { return e.TokPos }
func (e *Unary) Pos() token.Pos     { return e.TokPos }
func (e *Binary) Pos() token.Pos    { return e.TokPos }
func (e *Index) Pos() token.Pos     { return e.TokPos }
func (e *FieldSel) Pos() token.Pos  { return e.TokPos }
func (e *RecordLit) Pos() token.Pos { return e.TokPos }
func (e *UnionLit) Pos() token.Pos  { return e.TokPos }
func (e *ArrayLit) Pos() token.Pos  { return e.TokPos }
func (e *Cast) Pos() token.Pos      { return e.TokPos }

func (*Ident) exprNode()     {}
func (*IntLit) exprNode()    {}
func (*BoolLit) exprNode()   {}
func (*Self) exprNode()      {}
func (*Binding) exprNode()   {}
func (*Wildcard) exprNode()  {}
func (*Unary) exprNode()     {}
func (*Binary) exprNode()    {}
func (*Index) exprNode()     {}
func (*FieldSel) exprNode()  {}
func (*RecordLit) exprNode() {}
func (*UnionLit) exprNode()  {}
func (*ArrayLit) exprNode()  {}
func (*Cast) exprNode()      {}

// IsPattern reports whether e contains any Binding, Wildcard, or Self
// node, i.e. whether an lvalue occurrence of e must be treated as a
// pattern match rather than a plain assignment target.
func IsPattern(e Expr) bool {
	found := false
	Walk(e, func(n Node) bool {
		switch n.(type) {
		case *Binding, *Wildcard:
			found = true
			return false
		}
		return !found
	})
	return found
}

// Walk traverses the subtree rooted at n in depth-first order, calling f
// for each node. If f returns false the children of that node are skipped.
func Walk(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch x := n.(type) {
	case *Program:
		for _, d := range x.Decls {
			Walk(d, f)
		}
	case *TypeDecl:
		Walk(x.Name, f)
		Walk(x.Type, f)
	case *ConstDecl:
		Walk(x.Name, f)
	case *ChannelDecl:
		Walk(x.Name, f)
		Walk(x.Elem, f)
	case *InterfaceDecl:
		Walk(x.Name, f)
		Walk(x.Chan, f)
		for _, c := range x.Cases {
			Walk(c.Name, f)
			Walk(c.Pattern, f)
		}
	case *ProcessDecl:
		Walk(x.Name, f)
		Walk(x.Body, f)
	case *RecordType:
		for _, fd := range x.Fields {
			Walk(fd.Name, f)
			Walk(fd.Type, f)
		}
	case *UnionType:
		for _, fd := range x.Fields {
			Walk(fd.Name, f)
			Walk(fd.Type, f)
		}
	case *ArrayType:
		Walk(x.Elem, f)
	case *Block:
		for _, s := range x.Stmts {
			Walk(s, f)
		}
	case *VarDecl:
		Walk(x.Name, f)
		if x.Type != nil {
			Walk(x.Type, f)
		}
		Walk(x.Init, f)
	case *Assign:
		Walk(x.LHS, f)
		Walk(x.RHS, f)
	case *While:
		if x.Cond != nil {
			Walk(x.Cond, f)
		}
		Walk(x.Body, f)
	case *If:
		Walk(x.Cond, f)
		Walk(x.Then, f)
		if x.Else != nil {
			Walk(x.Else, f)
		}
	case *Comm:
		Walk(x.Chan, f)
		Walk(x.Arg, f)
	case *Alt:
		for _, c := range x.Cases {
			if c.Guard != nil {
				Walk(c.Guard, f)
			}
			Walk(c.Comm, f)
			Walk(c.Body, f)
		}
	case *Link:
		Walk(x.X, f)
	case *Unlink:
		Walk(x.X, f)
	case *Assert:
		Walk(x.X, f)
	case *Binding:
		Walk(x.Name, f)
	case *Unary:
		Walk(x.X, f)
	case *Binary:
		Walk(x.X, f)
		Walk(x.Y, f)
	case *Index:
		Walk(x.X, f)
		Walk(x.I, f)
	case *FieldSel:
		Walk(x.X, f)
		Walk(x.Name, f)
	case *RecordLit:
		for _, e := range x.Elems {
			Walk(e, f)
		}
	case *UnionLit:
		Walk(x.Field, f)
		Walk(x.Value, f)
	case *ArrayLit:
		Walk(x.Count, f)
		Walk(x.Init, f)
	case *Cast:
		Walk(x.X, f)
	}
}
