package ast_test

import (
	"strings"
	"testing"

	"esplang/internal/ast"
	"esplang/internal/parser"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func TestWalkVisitsEveryNodeKind(t *testing.T) {
	prog := mustParse(t, `
type u = union of { a: int, b: bool }
type r = record of { x: int }
const N = 3;
channel c: u external writer
channel d: int external reader
interface i( out c) { A( { a |> $v}) }
process p {
    $arr: #array of int = #{ N -> 0};
    $rec: r = { 9};
    $k = -1;
    while (k < N) {
        if (k == 0) { arr[0] = 1; } else { skip; }
        alt {
            case( k > 0, in( c, { a |> $q})) { k = k + q; }
            case( in( c, { b |> $f})) { if (f) { break; } }
        }
        out( d, arr[0] + immutable(arr)[0]);
    }
    assert( true);
    link( arr);
    unlink( arr);
    unlink( arr);
}
`)
	kinds := map[string]bool{}
	ast.Walk(prog, func(n ast.Node) bool {
		kinds[strings.TrimPrefix(strings.TrimPrefix(nodeName(n), "*ast."), "ast.")] = true
		return true
	})
	for _, want := range []string{
		"Program", "TypeDecl", "ConstDecl", "ChannelDecl", "InterfaceDecl",
		"ProcessDecl", "UnionType", "RecordType", "ArrayType", "PrimType",
		"Block", "VarDecl", "Assign", "While", "If", "Comm", "Alt",
		"Link", "Unlink", "Assert", "Skip", "BreakStmt",
		"Ident", "IntLit", "BoolLit", "Binding", "Unary", "Binary",
		"Index", "ArrayLit", "UnionLit", "RecordLit", "Cast",
	} {
		if !kinds[want] {
			t.Errorf("Walk never visited %s; saw %v", want, kinds)
		}
	}
}

func nodeName(n ast.Node) string {
	return strings.TrimSpace(strings.SplitN(typeString(n), " ", 2)[0])
}

func typeString(n ast.Node) string {
	switch n.(type) {
	case *ast.Program:
		return "Program"
	case *ast.TypeDecl:
		return "TypeDecl"
	case *ast.ConstDecl:
		return "ConstDecl"
	case *ast.ChannelDecl:
		return "ChannelDecl"
	case *ast.InterfaceDecl:
		return "InterfaceDecl"
	case *ast.ProcessDecl:
		return "ProcessDecl"
	case *ast.UnionType:
		return "UnionType"
	case *ast.RecordType:
		return "RecordType"
	case *ast.ArrayType:
		return "ArrayType"
	case *ast.PrimType:
		return "PrimType"
	case *ast.NamedType:
		return "NamedType"
	case *ast.Block:
		return "Block"
	case *ast.VarDecl:
		return "VarDecl"
	case *ast.Assign:
		return "Assign"
	case *ast.While:
		return "While"
	case *ast.If:
		return "If"
	case *ast.Comm:
		return "Comm"
	case *ast.Alt:
		return "Alt"
	case *ast.Link:
		return "Link"
	case *ast.Unlink:
		return "Unlink"
	case *ast.Assert:
		return "Assert"
	case *ast.Skip:
		return "Skip"
	case *ast.BreakStmt:
		return "BreakStmt"
	case *ast.Ident:
		return "Ident"
	case *ast.IntLit:
		return "IntLit"
	case *ast.BoolLit:
		return "BoolLit"
	case *ast.Self:
		return "Self"
	case *ast.Binding:
		return "Binding"
	case *ast.Wildcard:
		return "Wildcard"
	case *ast.Unary:
		return "Unary"
	case *ast.Binary:
		return "Binary"
	case *ast.Index:
		return "Index"
	case *ast.FieldSel:
		return "FieldSel"
	case *ast.RecordLit:
		return "RecordLit"
	case *ast.UnionLit:
		return "UnionLit"
	case *ast.ArrayLit:
		return "ArrayLit"
	case *ast.Cast:
		return "Cast"
	}
	return "?"
}

func TestWalkPrune(t *testing.T) {
	prog := mustParse(t, `
process p {
    $x = 1 + 2;
}
`)
	sawBinary := false
	ast.Walk(prog, func(n ast.Node) bool {
		if _, ok := n.(*ast.Binary); ok {
			sawBinary = true
		}
		_, isProc := n.(*ast.ProcessDecl)
		return !isProc // prune at the process: its body is skipped
	})
	if sawBinary {
		t.Error("Walk descended past a pruned node")
	}
}

func TestIsPattern(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"$x", true},
		{"_", true},
		{"{ $a, 2}", true},
		{"{ send |> { $a}}", true},
		{"{ 1, 2}", false},
		{"x + 1", false},
		{"a[i]", false},
		{"@", false}, // @ alone is an expression; only $/_ force pattern-hood
	}
	for _, c := range cases {
		e, err := parser.ParseExpr(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if got := ast.IsPattern(e); got != c.want {
			t.Errorf("IsPattern(%q) = %t, want %t", c.src, got, c.want)
		}
	}
}

func TestPrintStmtAndType(t *testing.T) {
	prog := mustParse(t, `
type r = record of { a: int, b: bool }
process p {
    $x: r = { 1, true};
    if (x.a > 0) { skip; } else { assert( x.b); }
}
`)
	td := prog.Decls[0].(*ast.TypeDecl)
	if got := ast.PrintType(td.Type); got != "record of { a: int, b: bool }" {
		t.Errorf("PrintType = %q", got)
	}
	pd := prog.Decls[1].(*ast.ProcessDecl)
	out := ast.PrintStmt(pd.Body.Stmts[1])
	if !strings.Contains(out, "if (x.a > 0)") || !strings.Contains(out, "else") {
		t.Errorf("PrintStmt = %q", out)
	}
}

func TestExtDirString(t *testing.T) {
	if ast.ExtReader.String() != "external reader" ||
		ast.ExtWriter.String() != "external writer" ||
		ast.ExtNone.String() != "internal" {
		t.Error("ExtDir strings wrong")
	}
	if ast.Recv.String() != "in" || ast.Send.String() != "out" {
		t.Error("CommDir strings wrong")
	}
}
