package nic

import (
	"testing"

	"esplang/internal/sim"
)

// probeFW is a minimal firmware: it forwards every host request as one
// packet and notifies for every arrived data packet.
type probeFW struct {
	cycles int64
}

func (f *probeFW) Name() string { return "probe" }

func (f *probeFW) Run(n *NIC) int64 {
	total := int64(0)
	for {
		progress := false
		if n.HaveRequest() && n.SendDMAFree() {
			if r, ok := n.PopRequest(); ok && !r.IsUpdate {
				n.SendPacket(&Packet{Src: n.ID, Dst: r.Dest, Seq: 1, MsgID: r.MsgID,
					Size: r.Size, Total: r.Size, Last: true})
				progress = true
			}
		}
		if p, ok := n.PopPacket(); ok {
			if !p.IsAck {
				n.PostNotification(Notification{From: p.Src, MsgID: p.MsgID, Size: p.Total})
			}
			progress = true
		}
		for {
			if _, ok := n.PopDMADone(); !ok {
				break
			}
			progress = true
		}
		if !progress {
			break
		}
		n.ChargeCPU(f.cycles)
		total += f.cycles
	}
	return total
}

func pair(t *testing.T, cfg Config) (*sim.Kernel, *NIC, *NIC) {
	t.Helper()
	k := sim.New()
	a := New(0, k, cfg)
	b := New(1, k, cfg)
	Connect(a, b)
	a.FW = &probeFW{cycles: 10}
	b.FW = &probeFW{cycles: 10}
	return k, a, b
}

func TestPacketDelivery(t *testing.T) {
	k, a, b := pair(t, DefaultConfig())
	var got []Notification
	b.OnNotify(func(nt Notification) { got = append(got, nt) })
	a.PostRequest(HostRequest{Dest: 1, Size: 256, MsgID: 7})
	k.Run(nil)
	if len(got) != 1 || got[0].MsgID != 7 || got[0].Size != 256 {
		t.Fatalf("notifications = %+v", got)
	}
	if a.PktsSent != 1 || b.PktsRecv != 1 {
		t.Errorf("pkt counts: sent %d recv %d", a.PktsSent, b.PktsRecv)
	}
}

func TestWireAndDMATiming(t *testing.T) {
	cfg := DefaultConfig()
	k, a, b := pair(t, cfg)
	var at int64
	b.OnNotify(func(Notification) { at = k.Now() })
	a.PostRequest(HostRequest{Dest: 1, Size: 1024, MsgID: 1})
	k.Run(nil)
	// Lower bound: send DMA + wire + recv DMA serialized.
	bytes := int64(1024 + int64(cfg.HeaderBytes))
	minimum := 2*(cfg.NetDMAStartupNs+bytes*cfg.NetDMAPsPerByte/1000) + cfg.WireLatencyNs
	if at < minimum {
		t.Errorf("delivered at %d ns, impossible before %d ns", at, minimum)
	}
}

func TestDMAEngineExclusion(t *testing.T) {
	cfg := DefaultConfig()
	k := sim.New()
	n := New(0, k, cfg)
	if !n.StartHostDMA(4096, 1) {
		t.Fatal("first DMA rejected")
	}
	if n.StartHostDMA(64, 2) {
		t.Fatal("second DMA accepted while busy")
	}
	if n.HostDMAFree() {
		t.Error("engine reports free while busy")
	}
	k.Run(nil)
	if !n.HostDMAFree() {
		t.Error("engine busy after completion")
	}
	d, ok := n.PopDMADone()
	if !ok || d.Tag != 1 {
		t.Errorf("completion = %+v, %v", d, ok)
	}
}

func TestCutThroughSignalsEarly(t *testing.T) {
	cfg := DefaultConfig()
	k := sim.New()
	n := New(0, k, cfg)
	if !n.StartHostDMACutThrough(4096, 512, 9) {
		t.Fatal("cut-through rejected")
	}
	leadNs := cfg.HostDMAStartupNs + 512*cfg.HostDMAPsPerByte/1000
	fullNs := cfg.HostDMAStartupNs + 4096*cfg.HostDMAPsPerByte/1000
	k.RunUntil(leadNs)
	if _, ok := n.PopDMADone(); !ok {
		t.Fatal("no completion at lead time")
	}
	if n.HostDMAFree() {
		t.Error("engine free before the full transfer ended")
	}
	k.RunUntil(fullNs)
	if !n.HostDMAFree() {
		t.Error("engine still busy after the full transfer")
	}
}

func TestDMADuration(t *testing.T) {
	cfg := DefaultConfig()
	k := sim.New()
	n := New(0, k, cfg)
	n.StartHostDMA(4096, 1)
	want := cfg.HostDMAStartupNs + 4096*cfg.HostDMAPsPerByte/1000
	k.Run(nil)
	if k.Now() != want {
		t.Errorf("transfer took %d ns, want %d", k.Now(), want)
	}
}

func TestCPUBusyDelaysNextRun(t *testing.T) {
	cfg := DefaultConfig()
	k := sim.New()
	a := New(0, k, cfg)
	b := New(1, k, cfg)
	Connect(a, b)
	fw := &probeFW{cycles: 1000} // 30 us per run
	a.FW = fw
	b.FW = &probeFW{}
	a.PostRequest(HostRequest{Dest: 1, Size: 4, MsgID: 1})
	a.PostRequest(HostRequest{Dest: 1, Size: 4, MsgID: 2})
	k.Run(nil)
	if a.CPUCycles < 1000 {
		t.Errorf("cpu cycles %d, want >= 1000", a.CPUCycles)
	}
	// The second packet cannot leave before the first run's CPU time
	// elapsed. (SendPacket issue times are offset by ChargeCPU.)
	if a.PktsSent != 2 {
		t.Errorf("sent %d packets", a.PktsSent)
	}
}

func TestRecvRingBackPressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecvRingSize = 2
	k := sim.New()
	a := New(0, k, cfg)
	b := New(1, k, cfg)
	Connect(a, b)
	a.FW = &probeFW{}
	// b has no firmware: packets pile up in the ring, the rest wait in
	// the wire queue (lossless).
	for i := 0; i < 6; i++ {
		a.PostRequest(HostRequest{Dest: 1, Size: 16, MsgID: int64(i)})
	}
	k.RunUntil(1_000_000)
	if b.DroppedRing == 0 {
		t.Error("back-pressure retry never triggered")
	}
	got := 0
	for {
		if _, ok := b.PopPacket(); !ok {
			break
		}
		got++
	}
	if got > cfg.RecvRingSize {
		t.Errorf("ring held %d packets, capacity %d", got, cfg.RecvRingSize)
	}
}

func TestNotificationTimeStamped(t *testing.T) {
	k, a, b := pair(t, DefaultConfig())
	var nt Notification
	b.OnNotify(func(n Notification) { nt = n })
	a.PostRequest(HostRequest{Dest: 1, Size: 64, MsgID: 3})
	k.Run(nil)
	if nt.Time <= 0 {
		t.Errorf("notification time %d", nt.Time)
	}
}
