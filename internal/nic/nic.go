// Package nic models the Myrinet network interface card of the paper's
// case study (§2.1): a programmable 33 MHz LANai4.1 processor with SRAM
// and three DMA engines — to/from host memory, to the network, and from
// the network — plus status registers the firmware polls.
//
// The model is a discrete-event simulation: DMA transfers and wire
// propagation take time; the firmware (pluggable — the ESP VM or the
// hand-written event-driven baseline) consumes CPU cycles that translate
// to nanoseconds at the core clock. Every firmware implementation sees
// the same hardware, so performance differences between them come from
// the cycles they consume and how well they keep the DMA engines busy,
// not from different machine models.
package nic

import (
	"fmt"

	"esplang/internal/obs"
	"esplang/internal/sim"
)

// Config holds the hardware timing parameters. Defaults approximate the
// paper's testbed: 33 MHz LANai4.1, ~132 MB/s host (EBUS) DMA, 1.28 Gb/s
// Myrinet link.
type Config struct {
	CPUCycleNs       int64 // 30 ns at 33 MHz
	HostDMAStartupNs int64
	HostDMAPsPerByte int64 // picoseconds per byte (7500 ≈ 133 MB/s)
	NetDMAStartupNs  int64
	NetDMAPsPerByte  int64 // 6250 ≈ 160 MB/s
	WireLatencyNs    int64
	PageSize         int // host DMA chunking boundary (4 KB)
	SmallMsgMax      int // messages this small travel inline with the request (32 B)
	SendWindow       int // sliding-window size in packets (§5.3's protocol)
	AckCoalesce      int // send an explicit ack after this many unacked data packets
	HeaderBytes      int // packet header on the wire
	RecvRingSize     int // arrived-packet ring capacity
}

// DefaultConfig returns the calibrated hardware model.
func DefaultConfig() Config {
	return Config{
		CPUCycleNs:       30,
		HostDMAStartupNs: 900,
		HostDMAPsPerByte: 7500,
		NetDMAStartupNs:  500,
		NetDMAPsPerByte:  6250,
		WireLatencyNs:    400,
		PageSize:         4096,
		SmallMsgMax:      32,
		SendWindow:       16,
		AckCoalesce:      2,
		HeaderBytes:      16,
		RecvRingSize:     64,
	}
}

// Packet is a Myrinet packet: a data page (or inline small message) or an
// explicit acknowledgement. Payload bytes are not materialized — only
// sizes matter to the model; correctness of delivery is tracked with the
// message metadata.
type Packet struct {
	Src, Dst int
	Seq      int64 // data packets: sequence number; acks: 0
	Ack      int64 // piggybacked cumulative ack (§5.3: piggyback acknowledgement)
	IsAck    bool
	MsgID    int64
	RAddr    int64 // destination virtual address of this chunk
	Offset   int   // offset of the chunk within the message
	Size     int   // payload bytes in this packet
	Total    int   // total message size
	Last     bool
}

// WireBytes returns the packet's size on the wire.
func (p *Packet) WireBytes(hdr int) int {
	if p.IsAck {
		return hdr
	}
	return hdr + p.Size
}

// NewPacket returns a zeroed packet carved from a per-NIC slab: firmware
// marshalling builds one packet per wire transfer, and slab allocation
// replaces that per-packet garbage with one block per slab refill.
// Packets are never recycled — a slab simply amortizes the allocator
// visits. Blocks double from 8 to 64 packets so short-lived NICs (a
// benchmark cluster per iteration) do not pay for a large block they
// barely touch.
func (n *NIC) NewPacket() *Packet {
	if len(n.pktSlab) == 0 {
		blk := n.pktBlock * 2
		if blk < 8 {
			blk = 8
		} else if blk > 64 {
			blk = 64
		}
		n.pktBlock = blk
		n.pktSlab = make([]Packet, blk)
	}
	p := &n.pktSlab[0]
	n.pktSlab = n.pktSlab[1:]
	return p
}

// HostRequest is what the host library deposits in the NIC request queue:
// a VMMC send (data from local VAddr to RAddr on node Dest) or a page
// table update.
type HostRequest struct {
	IsUpdate bool
	// Send fields.
	Dest  int
	VAddr int64 // local source virtual address
	RAddr int64 // remote destination virtual address
	Size  int
	MsgID int64
	// Update fields.
	UpdVAddr, UpdPAddr int64
}

// Notification is posted to the host when a complete message has been
// deposited in host memory.
type Notification struct {
	From  int
	MsgID int64
	Size  int
	Time  int64 // completion time (ns)
}

// DMADone reports a completed DMA with the tag the firmware supplied.
type DMADone struct {
	Engine *Engine
	Tag    int64
}

// Engine is one DMA engine.
type Engine struct {
	Name      string
	Busy      bool
	StartupNs int64
	PsPerByte int64
	// stats
	Transfers int64
	Bytes     int64

	// An engine moves one transfer at a time (Busy), so its completion
	// events are sim.Handler firings on the engine itself — the
	// simulation's hottest paths schedule no closures at all. pendingTag
	// carries the firmware tag of the in-flight transfer to Fire.
	pendingTag int64
	n          *NIC
}

// Engine event codes (the arg of Engine.Fire).
const (
	engEvDone    = iota // transfer complete: free the engine, post DMADone
	engEvLead           // cut-through: lead bytes landed, post DMADone early
	engEvCutDone        // cut-through: full transfer complete, free the engine
)

// Fire implements sim.Handler for DMA completion events.
func (e *Engine) Fire(arg int) {
	switch arg {
	case engEvDone:
		e.Busy = false
		e.n.dmaDone = append(e.n.dmaDone, DMADone{Engine: e, Tag: e.pendingTag})
		e.n.Wake()
	case engEvLead:
		e.n.dmaDone = append(e.n.dmaDone, DMADone{Engine: e, Tag: e.pendingTag})
		e.n.Wake()
	case engEvCutDone:
		e.Busy = false
		e.n.Wake()
	}
}

func (e *Engine) duration(bytes int) int64 {
	return e.StartupNs + int64(bytes)*e.PsPerByte/1000
}

// Firmware is the code running on the NIC processor. Run executes until
// the firmware goes idle and returns the CPU cycles it consumed.
type Firmware interface {
	Name() string
	Run(n *NIC) int64
}

// NIC is one simulated network interface card.
type NIC struct {
	ID  int
	K   *sim.Kernel
	Cfg Config
	FW  Firmware

	HostDMA *Engine
	SendDMA *Engine
	RecvDMA *Engine

	reqQ     []HostRequest
	dmaDone  []DMADone
	recvRing []*Packet
	wireQ    []*Packet // arrived, waiting for the receive DMA

	peer   *NIC
	notify func(Notification)

	cpuBusyUntil int64
	runQueued    bool
	cyclesInRun  int64 // cycles consumed so far in the current Run (DMA issue offsets)

	// Event state (see Fire): the send and receive DMAs hold one packet
	// at a time, so their completion events carry the packet in
	// sendInFlight/recvInFlight instead of a per-packet closure. Wire
	// propagation can have several packets in flight, but the latency is
	// constant and the kernel fires equal-time events in schedule order,
	// so a FIFO (wireIn) preserves arrival order.
	sendInFlight *Packet
	recvInFlight *Packet
	wireIn       []*Packet // sent packets propagating toward this NIC

	engines  [3]Engine // backing store for HostDMA/SendDMA/RecvDMA
	pktSlab  []Packet  // backing store for NewPacket
	pktBlock int       // current slab block size (doubles to 64)

	// trace, when set, receives one timeline span per firmware run and per
	// DMA/wire transfer. Durations are known at issue time, so Begin/End
	// pairs are emitted together and the trace is balanced even if the
	// simulation stops early.
	trace obs.SpanEmitter

	// Stats.
	CPUCycles   int64
	PktsSent    int64
	PktsRecv    int64
	AcksSent    int64
	BytesSent   int64
	Runs        int64
	DroppedRing int64
}

// NIC event codes (the arg of NIC.Fire).
const (
	nicEvRun      = iota // scheduled firmware run
	nicEvPumpRecv        // retry receive DMA after ring back-pressure
	nicEvSendDone        // send DMA finished pushing sendInFlight to the wire
	nicEvRecvDone        // receive DMA deposited recvInFlight into the ring
	nicEvArrive          // oldest wireIn packet reached this NIC
)

// Fire implements sim.Handler for all per-NIC events.
func (n *NIC) Fire(arg int) {
	switch arg {
	case nicEvRun:
		n.doRun()
	case nicEvPumpRecv:
		n.pumpRecv()
	case nicEvSendDone:
		n.sendDone()
	case nicEvRecvDone:
		n.recvDone()
	case nicEvArrive:
		n.arriveNext()
	}
}

// New creates a NIC. The event queues get small initial capacities: they
// stay shallow (bounded by the window and ring sizes), and growing each
// from nil was a visible slice of short benchmark runs that build a NIC
// pair per iteration.
func New(id int, k *sim.Kernel, cfg Config) *NIC {
	n := &NIC{ID: id, K: k, Cfg: cfg,
		reqQ:     make([]HostRequest, 0, 8),
		dmaDone:  make([]DMADone, 0, 8),
		recvRing: make([]*Packet, 0, 8),
		wireQ:    make([]*Packet, 0, 8),
		wireIn:   make([]*Packet, 0, 8),
	}
	n.engines[0] = Engine{Name: "hostDMA", StartupNs: cfg.HostDMAStartupNs, PsPerByte: cfg.HostDMAPsPerByte, n: n}
	n.engines[1] = Engine{Name: "sendDMA", StartupNs: cfg.NetDMAStartupNs, PsPerByte: cfg.NetDMAPsPerByte, n: n}
	n.engines[2] = Engine{Name: "recvDMA", StartupNs: cfg.NetDMAStartupNs, PsPerByte: cfg.NetDMAPsPerByte, n: n}
	n.HostDMA = &n.engines[0]
	n.SendDMA = &n.engines[1]
	n.RecvDMA = &n.engines[2]
	return n
}

// Connect joins two NICs with a wire.
func Connect(a, b *NIC) {
	a.peer = b
	b.peer = a
}

// OnNotify installs the host-side notification callback.
func (n *NIC) OnNotify(fn func(Notification)) { n.notify = fn }

// Hardware timeline tracks: each NIC owns a block of track ids starting
// at trackBase + trackStride*ID, one per unit (CPU + three DMA engines).
// They are well clear of the ESP process ids the VM uses as track ids,
// so a NIC trace and a VM trace can share one file.
const (
	trackBase   = 100
	trackStride = 10
)

func (n *NIC) track(unit int) int64 {
	return int64(trackBase + trackStride*n.ID + unit)
}

func (n *NIC) engineTrack(e *Engine) int64 {
	switch e {
	case n.HostDMA:
		return n.track(1)
	case n.SendDMA:
		return n.track(2)
	default:
		return n.track(3)
	}
}

// SetTrace attaches a span emitter for the hardware timeline (firmware
// runs, DMA transfers, wire arrivals). nil detaches. Timestamps are the
// kernel's nanosecond clock; pair with a ChromeTracer built with
// NewChromeTracer(1e-3) so they land in microseconds.
func (n *NIC) SetTrace(tr obs.SpanEmitter) {
	n.trace = tr
	if tr == nil {
		return
	}
	tr.SetTrackName(n.track(0), fmt.Sprintf("nic%d cpu", n.ID))
	tr.SetTrackName(n.track(1), fmt.Sprintf("nic%d hostDMA", n.ID))
	tr.SetTrackName(n.track(2), fmt.Sprintf("nic%d sendDMA", n.ID))
	tr.SetTrackName(n.track(3), fmt.Sprintf("nic%d recvDMA", n.ID))
}

// ---------------------------------------------------------------------------
// Host-side interface

// PostRequest enqueues a host request and wakes the firmware.
func (n *NIC) PostRequest(r HostRequest) {
	n.reqQ = append(n.reqQ, r)
	n.Wake()
}

// ---------------------------------------------------------------------------
// Firmware-side interface (called during Firmware.Run)

// PopRequest dequeues the next host request. Pops shift the slice down in
// place (here and below) so the queues keep their capacity instead of
// marching the backing array forward and reallocating on every refill.
func (n *NIC) PopRequest() (HostRequest, bool) {
	if len(n.reqQ) == 0 {
		return HostRequest{}, false
	}
	r := n.reqQ[0]
	copy(n.reqQ, n.reqQ[1:])
	n.reqQ = n.reqQ[:len(n.reqQ)-1]
	return r, true
}

// HaveRequest reports whether a host request is pending.
func (n *NIC) HaveRequest() bool { return len(n.reqQ) > 0 }

// PopDMADone dequeues the next DMA completion.
func (n *NIC) PopDMADone() (DMADone, bool) {
	if len(n.dmaDone) == 0 {
		return DMADone{}, false
	}
	d := n.dmaDone[0]
	copy(n.dmaDone, n.dmaDone[1:])
	n.dmaDone = n.dmaDone[:len(n.dmaDone)-1]
	return d, true
}

// HaveDMADone reports whether a DMA completion is pending.
func (n *NIC) HaveDMADone() bool { return len(n.dmaDone) > 0 }

// PopPacket dequeues the next arrived packet.
func (n *NIC) PopPacket() (*Packet, bool) {
	if len(n.recvRing) == 0 {
		return nil, false
	}
	p := n.recvRing[0]
	copy(n.recvRing, n.recvRing[1:])
	n.recvRing[len(n.recvRing)-1] = nil
	n.recvRing = n.recvRing[:len(n.recvRing)-1]
	return p, true
}

// HavePacket reports whether an arrived packet is pending.
func (n *NIC) HavePacket() bool { return len(n.recvRing) > 0 }

// ChargeCPU accounts cycles consumed by the firmware within the current
// Run (used to time-offset DMA issues).
func (n *NIC) ChargeCPU(cycles int64) { n.cyclesInRun += cycles }

// issueTime is the simulated time at which an action taken "now" by the
// firmware actually happens, given the cycles consumed so far in this run.
func (n *NIC) issueTime() int64 {
	return n.K.Now() + n.cyclesInRun*n.Cfg.CPUCycleNs
}

// StartHostDMA begins a host-memory transfer (direction does not affect
// timing). It returns false when the engine is busy.
func (n *NIC) StartHostDMA(bytes int, tag int64) bool {
	return n.startDMA(n.HostDMA, bytes, tag)
}

// StartHostDMACutThrough begins a host-memory fetch whose completion is
// signaled once leadBytes have landed in SRAM — the firmware may start
// streaming them out while the engine finishes the rest of the transfer.
// This is the mechanism behind the original firmware's hand-optimized
// fast path: overlapping the host fetch with the network send.
func (n *NIC) StartHostDMACutThrough(bytes, leadBytes int, tag int64) bool {
	e := n.HostDMA
	if e.Busy {
		return false
	}
	if leadBytes > bytes {
		leadBytes = bytes
	}
	e.Busy = true
	e.Transfers++
	e.Bytes += int64(bytes)
	issue := n.issueTime()
	if n.trace != nil {
		tid := n.engineTrack(e)
		n.trace.Begin(tid, fmt.Sprintf("hostDMA cut-through %dB", bytes), issue)
		n.trace.End(tid, issue+e.duration(bytes))
		n.trace.Instant(tid, fmt.Sprintf("lead %dB ready", leadBytes), issue+e.duration(leadBytes))
	}
	e.pendingTag = tag
	n.K.AtEvent(issue+e.duration(leadBytes), e, engEvLead)
	n.K.AtEvent(issue+e.duration(bytes), e, engEvCutDone)
	return true
}

func (n *NIC) startDMA(e *Engine, bytes int, tag int64) bool {
	if e.Busy {
		return false
	}
	e.Busy = true
	e.Transfers++
	e.Bytes += int64(bytes)
	issue := n.issueTime()
	done := issue + e.duration(bytes)
	if n.trace != nil {
		tid := n.engineTrack(e)
		n.trace.Begin(tid, fmt.Sprintf("%s %dB", e.Name, bytes), issue)
		n.trace.End(tid, done)
	}
	e.pendingTag = tag
	n.K.AtEvent(done, e, engEvDone)
	return true
}

// SendPacket transmits a packet: it occupies the send DMA for the wire
// time of the packet and delivers to the peer after the wire latency.
// It returns false when the send DMA is busy.
func (n *NIC) SendPacket(p *Packet) bool {
	if n.SendDMA.Busy {
		return false
	}
	if n.peer == nil {
		panic(fmt.Sprintf("nic %d: no peer connected", n.ID))
	}
	bytes := p.WireBytes(n.Cfg.HeaderBytes)
	n.SendDMA.Busy = true
	n.SendDMA.Transfers++
	n.SendDMA.Bytes += int64(bytes)
	if p.IsAck {
		n.AcksSent++
	} else {
		n.PktsSent++
		n.BytesSent += int64(p.Size)
	}
	issue := n.issueTime()
	sent := issue + n.SendDMA.duration(bytes)
	peer := n.peer
	if n.trace != nil {
		tid := n.track(2)
		name := fmt.Sprintf("pkt msg%d seq%d %dB", p.MsgID, p.Seq, bytes)
		if p.IsAck {
			name = fmt.Sprintf("ack %d", p.Ack)
		}
		n.trace.Begin(tid, name, issue)
		n.trace.End(tid, sent)
		n.trace.Instant(peer.track(3), "wire arrival", sent+n.Cfg.WireLatencyNs)
	}
	n.sendInFlight = p
	n.K.AtEvent(sent, n, nicEvSendDone)
	return true
}

// sendDone fires when the send DMA finishes pushing sendInFlight onto the
// wire: the engine frees, the firmware wakes, and the packet starts its
// constant-latency wire propagation toward the peer.
func (n *NIC) sendDone() {
	p := n.sendInFlight
	n.sendInFlight = nil
	n.SendDMA.Busy = false
	n.dmaDone = append(n.dmaDone, DMADone{Engine: n.SendDMA, Tag: -1})
	n.Wake()
	peer := n.peer
	peer.wireIn = append(peer.wireIn, p)
	peer.K.AtEvent(peer.K.Now()+n.Cfg.WireLatencyNs, peer, nicEvArrive)
}

// arriveNext delivers the oldest packet still on the wire.
func (n *NIC) arriveNext() {
	p := n.wireIn[0]
	copy(n.wireIn, n.wireIn[1:])
	n.wireIn[len(n.wireIn)-1] = nil
	n.wireIn = n.wireIn[:len(n.wireIn)-1]
	n.arrive(p)
}

// SendDMAFree reports whether the send DMA can take a packet now.
func (n *NIC) SendDMAFree() bool { return !n.SendDMA.Busy }

// HostDMAFree reports whether the host DMA is idle.
func (n *NIC) HostDMAFree() bool { return !n.HostDMA.Busy }

// PostNotification delivers a completion notification to the host.
func (n *NIC) PostNotification(nt Notification) {
	nt.Time = n.issueTime()
	if n.notify != nil {
		n.notify(nt)
	}
}

// ---------------------------------------------------------------------------
// Wire arrival: the receive DMA deposits packets into the ring without
// firmware involvement (hardware-managed, like the LANai receive path).

func (n *NIC) arrive(p *Packet) {
	n.wireQ = append(n.wireQ, p)
	n.pumpRecv()
}

func (n *NIC) pumpRecv() {
	if n.RecvDMA.Busy || len(n.wireQ) == 0 {
		return
	}
	if len(n.recvRing) >= n.Cfg.RecvRingSize {
		// Ring full: model back-pressure by retrying after a ring slot
		// drains (Myrinet links are flow-controlled and lossless).
		n.DroppedRing++
		n.K.AfterEvent(n.Cfg.WireLatencyNs, n, nicEvPumpRecv)
		return
	}
	p := n.wireQ[0]
	copy(n.wireQ, n.wireQ[1:])
	n.wireQ[len(n.wireQ)-1] = nil
	n.wireQ = n.wireQ[:len(n.wireQ)-1]
	n.RecvDMA.Busy = true
	n.RecvDMA.Transfers++
	bytes := p.WireBytes(n.Cfg.HeaderBytes)
	n.RecvDMA.Bytes += int64(bytes)
	if n.trace != nil {
		tid := n.track(3)
		n.trace.Begin(tid, fmt.Sprintf("recvDMA %dB", bytes), n.K.Now())
		n.trace.End(tid, n.K.Now()+n.RecvDMA.duration(bytes))
	}
	n.recvInFlight = p
	n.K.AfterEvent(n.RecvDMA.duration(bytes), n, nicEvRecvDone)
}

// recvDone fires when the receive DMA has deposited recvInFlight into the
// arrived-packet ring.
func (n *NIC) recvDone() {
	p := n.recvInFlight
	n.recvInFlight = nil
	n.RecvDMA.Busy = false
	n.recvRing = append(n.recvRing, p)
	n.PktsRecv++
	n.Wake()
	n.pumpRecv()
}

// ---------------------------------------------------------------------------
// CPU scheduling

// Wake schedules a firmware run as soon as the CPU is free.
func (n *NIC) Wake() {
	if n.runQueued || n.FW == nil {
		return
	}
	n.runQueued = true
	at := n.K.Now()
	if n.cpuBusyUntil > at {
		at = n.cpuBusyUntil
	}
	n.K.AtEvent(at, n, nicEvRun)
}

func (n *NIC) doRun() {
	n.runQueued = false
	n.cyclesInRun = 0
	n.Runs++
	start := n.K.Now()
	cycles := n.FW.Run(n)
	if n.cyclesInRun > cycles {
		cycles = n.cyclesInRun
	}
	n.CPUCycles += cycles
	n.cpuBusyUntil = n.K.Now() + cycles*n.Cfg.CPUCycleNs
	if n.trace != nil && cycles > 0 {
		n.trace.Begin(n.track(0), fmt.Sprintf("%s run", n.FW.Name()), start)
		n.trace.End(n.track(0), n.cpuBusyUntil)
	}
	// Work the firmware left pending (a request it could not take, a
	// packet it could not store) is always blocked on an engine or a
	// window, and the event that unblocks it also wakes the CPU — so no
	// re-wake is needed, and polling does not spin.
}
