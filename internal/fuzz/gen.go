// Package fuzz generates, mutates, minimizes, and differentially tests
// ESP programs.
//
// The package has four parts, mirroring "compiler testing through
// simulation" methodology:
//
//   - Generate: a grammar-based generator of well-typed-by-construction
//     ESP programs covering processes, channels (including external
//     bindings with interface declarations), alt with guards, records,
//     unions, arrays, and §4.4 ownership transfers. A fraction of
//     programs deliberately seed ownership bugs and failing assertions
//     so the fault paths are exercised too.
//   - Mutate: AST-level mutations over existing corpus programs
//     (testdata), producing near-miss programs that stress the parser,
//     checker, and the engines' fault handling.
//   - RunDifferential (oracle.go): one program through every backend —
//     three VM engines × optimizer configurations, the model checker,
//     espvet, and the C/Promela generators — comparing everything
//     observable.
//   - Minimize (minimize.go): greedy delta debugging over the AST,
//     shrinking a failing program while its failure signature holds.
//
// Everything is deterministic under a seed so CI can replay failures.
package fuzz

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Generated is one generator output.
type Generated struct {
	Seed     int64
	Template string
	Source   string
}

// Name returns a stable identifier for the program, used in reports and
// reproducer file names.
func (g Generated) Name() string {
	return fmt.Sprintf("gen-%s-%d", g.Template, g.Seed)
}

// Generate produces a well-typed ESP program from the seed. The same
// seed always yields the same program.
func Generate(seed int64) Generated {
	g := &gen{r: rand.New(rand.NewSource(seed))}
	g.seedBugs = g.pct(25)
	var tpl string
	switch w := g.r.Intn(100); {
	case w < 20:
		tpl = "pipeline"
		g.pipeline(false)
	case w < 36:
		tpl = "open-pipeline"
		g.pipeline(true)
	case w < 52:
		tpl = "merge"
		g.merge()
	case w < 64:
		tpl = "fanout"
		g.fanout()
	case w < 76:
		tpl = "dispatch"
		g.dispatch()
	case w < 88:
		tpl = "ownership"
		g.ownership()
	default:
		tpl = "ring"
		g.ring()
	}
	return Generated{Seed: seed, Template: tpl, Source: g.b.String()}
}

// ---------------------------------------------------------------------------
// Generator machinery

type payKind int

const (
	payInt payKind = iota
	payBool
	payRec // record of { a: int, b: int }
	payUni // union of { l: int, r: bool }
	payArr // array of int [4]
)

type chanInfo struct {
	name     string
	kind     payKind
	typeName string // declared type name for composite payloads
}

type scope struct {
	ints  []string
	bools []string
}

// child returns a copy of sc for a nested block: ESP is block-scoped, so
// names bound inside an if/while body or alt arm must not leak into the
// code the generator emits after the block closes.
func (sc *scope) child() *scope {
	c := &scope{}
	c.ints = append(c.ints, sc.ints...)
	c.bools = append(c.bools, sc.bools...)
	return c
}

type gen struct {
	r        *rand.Rand
	b        strings.Builder
	ind      int
	n        int // fresh-name counter
	seedBugs bool
	consts   []string // declared int constant names
}

func (g *gen) pct(p int) bool { return g.r.Intn(100) < p }

func (g *gen) fresh(prefix string) string {
	g.n++
	return fmt.Sprintf("%s%d", prefix, g.n)
}

func (g *gen) line(format string, args ...any) {
	for i := 0; i < g.ind; i++ {
		g.b.WriteString("    ")
	}
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *gen) open(format string, args ...any) {
	g.line(format, args...)
	g.ind++
}

func (g *gen) close() {
	g.ind--
	g.line("}")
}

// extraConsts occasionally declares boundary constants so that int64
// extremes flow through arithmetic, channels, and the backends.
func (g *gen) extraConsts() {
	if !g.pct(30) {
		return
	}
	vals := []int64{math.MaxInt64, math.MinInt64, -1, 0, 4096}
	v := vals[g.r.Intn(len(vals))]
	n := g.fresh("K")
	g.line("const %s = %d;", n, v)
	g.consts = append(g.consts, n)
}

// bound declares the given loop bound, sometimes behind a named constant.
func (g *gen) bound(v int) string {
	if g.pct(40) {
		n := g.fresh("M")
		g.line("const %s = %d;", n, v)
		return n
	}
	return fmt.Sprint(v)
}

// declChan declares (and, for composite payloads, first declares the
// type of) one channel. ext is "", " external reader", or
// " external writer"; external-writer channels are forced to int payload
// and always get an interface declaration so the harness can feed them.
func (g *gen) declChan(ext string) chanInfo {
	name := g.fresh("c")
	if ext == " external writer" {
		g.line("channel %s: int%s", name, ext)
		g.open("interface %s( out %s) {", g.fresh("feed"), name)
		g.line("Put( $v)")
		g.close()
		return chanInfo{name: name, kind: payInt}
	}
	ci := chanInfo{name: name}
	switch w := g.r.Intn(100); {
	case w < 40:
		ci.kind = payInt
		g.line("channel %s: int%s", name, ext)
	case w < 55:
		ci.kind = payBool
		g.line("channel %s: bool%s", name, ext)
	case w < 73:
		ci.kind = payRec
		ci.typeName = g.fresh("Rec")
		g.line("type %s = record of { a: int, b: int }", ci.typeName)
		g.line("channel %s: %s%s", name, ci.typeName, ext)
	case w < 85:
		ci.kind = payUni
		ci.typeName = g.fresh("Uni")
		g.line("type %s = union of { l: int, r: bool }", ci.typeName)
		g.line("channel %s: %s%s", name, ci.typeName, ext)
	default:
		ci.kind = payArr
		ci.typeName = g.fresh("Arr")
		g.line("type %s = array of int [4]", ci.typeName)
		g.line("channel %s: %s%s", name, ci.typeName, ext)
	}
	return ci
}

// ---------------------------------------------------------------------------
// Expressions

// intExpr renders a pure int-typed expression over the scope.
func (g *gen) intExpr(sc *scope, depth int) string {
	if depth <= 0 || g.pct(40) {
		switch w := g.r.Intn(100); {
		case w < 40 && len(sc.ints) > 0:
			return sc.ints[g.r.Intn(len(sc.ints))]
		case w < 55 && len(g.consts) > 0:
			return g.consts[g.r.Intn(len(g.consts))]
		case w < 60:
			return "@"
		default:
			return fmt.Sprint(g.r.Int63n(17) - 8)
		}
	}
	x := g.intExpr(sc, depth-1)
	y := g.intExpr(sc, depth-1)
	switch w := g.r.Intn(100); {
	case w < 35:
		return fmt.Sprintf("(%s + %s)", x, y)
	case w < 60:
		return fmt.Sprintf("(%s - %s)", x, y)
	case w < 85:
		return fmt.Sprintf("(%s * %s)", x, y)
	case w < 93:
		return fmt.Sprintf("(%s / %s)", x, g.divisor())
	default:
		return fmt.Sprintf("(%s %% %s)", x, g.divisor())
	}
}

// divisor returns a non-zero literal, so generated division only faults
// when a template deliberately asks for a hazard.
func (g *gen) divisor() string {
	ds := []string{"2", "3", "5", "7", "-3"}
	return ds[g.r.Intn(len(ds))]
}

// boolExpr renders a pure bool-typed expression over the scope.
func (g *gen) boolExpr(sc *scope, depth int) string {
	if depth <= 0 || g.pct(35) {
		if len(sc.bools) > 0 && g.pct(40) {
			return sc.bools[g.r.Intn(len(sc.bools))]
		}
		if g.pct(50) {
			return "true"
		}
		return "false"
	}
	switch w := g.r.Intn(100); {
	case w < 55:
		ops := []string{"<", "<=", ">", ">=", "==", "!="}
		return fmt.Sprintf("(%s %s %s)",
			g.intExpr(sc, depth-1), ops[g.r.Intn(len(ops))], g.intExpr(sc, depth-1))
	case w < 75:
		return fmt.Sprintf("(%s && %s)", g.boolExpr(sc, depth-1), g.boolExpr(sc, depth-1))
	case w < 95:
		return fmt.Sprintf("(%s || %s)", g.boolExpr(sc, depth-1), g.boolExpr(sc, depth-1))
	default:
		return fmt.Sprintf("!%s", g.boolExpr(sc, depth-1))
	}
}

// ---------------------------------------------------------------------------
// Statements

// seedVars opens a process scope with one or two int variables.
func (g *gen) seedVars(sc *scope) {
	for i := 0; i <= g.r.Intn(2); i++ {
		v := g.fresh("v")
		g.line("$%s = %s;", v, g.intExpr(sc, 1))
		sc.ints = append(sc.ints, v)
	}
}

// fill emits a few effect-free filler statements: declarations,
// assignments, tautological assertions, bounded loops, conditionals, and
// mutable scratch arrays.
func (g *gen) fill(sc *scope, depth, maxN int) {
	n := g.r.Intn(maxN + 1)
	for i := 0; i < n; i++ {
		switch w := g.r.Intn(100); {
		case w < 25:
			v := g.fresh("v")
			g.line("$%s = %s;", v, g.intExpr(sc, 2))
			sc.ints = append(sc.ints, v)
		case w < 40 && len(sc.ints) > 0:
			v := sc.ints[g.r.Intn(len(sc.ints))]
			g.line("%s = %s;", v, g.intExpr(sc, 2))
		case w < 52:
			e := g.intExpr(sc, 1)
			g.line("assert( (%s) == (%s));", e, e)
		case w < 64 && depth > 0:
			g.open("if (%s) {", g.boolExpr(sc, 1))
			g.fill(sc.child(), depth-1, 1)
			g.ind--
			g.open("} else {")
			g.fill(sc.child(), depth-1, 1)
			g.close()
		case w < 74 && depth > 0:
			t := g.fresh("t")
			g.line("$%s = 0;", t)
			g.open("while (%s < 2) {", t)
			g.line("%s = %s + 1;", t, t)
			g.fill(sc.child(), depth-1, 1)
			g.close()
		case w < 84:
			s := g.fresh("s")
			idx := g.r.Intn(3)
			g.line("$%s: #array of int = #{ 3 -> %s };", s, g.intExpr(sc, 1))
			g.line("%s[%d] = %s;", s, idx, g.intExpr(sc, 1))
			v := g.fresh("v")
			g.line("$%s = %s[%d];", v, s, g.r.Intn(3))
			g.line("unlink( %s);", s)
			sc.ints = append(sc.ints, v)
		case w < 92:
			b := g.fresh("b")
			g.line("$%s = %s;", b, g.boolExpr(sc, 1))
			sc.bools = append(sc.bools, b)
		default:
			g.line("skip;")
		}
	}
}

// sendArg renders a literal message expression for the channel.
func (g *gen) sendArg(sc *scope, ch chanInfo) string {
	switch ch.kind {
	case payInt:
		return g.intExpr(sc, 2)
	case payBool:
		return g.boolExpr(sc, 1)
	case payRec:
		return fmt.Sprintf("{ %s, %s }", g.intExpr(sc, 1), g.intExpr(sc, 1))
	case payUni:
		if g.pct(50) {
			return fmt.Sprintf("{ l |> %s }", g.intExpr(sc, 1))
		}
		return fmt.Sprintf("{ r |> %s }", g.boolExpr(sc, 1))
	default:
		return fmt.Sprintf("{ 4 -> %s }", g.intExpr(sc, 1))
	}
}

// send emits one message send on ch: either a fresh literal (released by
// the transfer, §4.4) or an owned variable that the sender unlinks after
// the rendezvous — with the unlink occasionally dropped, doubled, or
// followed by a use when bug seeding is on.
func (g *gen) send(sc *scope, ch chanInfo) {
	lit := ch.kind == payInt || ch.kind == payBool || ch.typeName == "" || g.pct(50)
	if lit {
		g.line("out( %s, %s);", ch.name, g.sendArg(sc, ch))
		return
	}
	d := g.fresh("d")
	g.line("$%s: %s = %s;", d, ch.typeName, g.sendArg(sc, ch))
	if g.seedBugs && g.pct(15) {
		// Seeded bug: release the only reference before sending.
		g.line("unlink( %s);", d)
		g.line("out( %s, %s);", ch.name, d)
		return
	}
	g.line("out( %s, %s);", ch.name, d)
	g.cleanup(d)
}

// cleanup unlinks an owned reference — or, when bug seeding is on,
// occasionally leaks it or frees it twice.
func (g *gen) cleanup(name string) {
	if g.seedBugs {
		switch w := g.r.Intn(100); {
		case w < 12: // leak
			return
		case w < 20: // double free
			g.line("unlink( %s);", name)
			g.line("unlink( %s);", name)
			return
		}
	}
	g.line("unlink( %s);", name)
}

// recvPat returns a receive pattern for ch plus a body callback that
// emits the uses and ownership cleanup of what the pattern bound. The
// split lets the same machinery serve plain "in" statements and alt arms.
func (g *gen) recvPat(sc *scope, ch chanInfo) (string, func()) {
	switch ch.kind {
	case payInt:
		v := g.fresh("x")
		return "$" + v, func() {
			sc.ints = append(sc.ints, v)
			if g.pct(12) {
				g.line("assert( %s < 100000);", v)
			}
		}
	case payBool:
		b := g.fresh("b")
		return "$" + b, func() { sc.bools = append(sc.bools, b) }
	case payRec:
		if g.pct(50) {
			x, y := g.fresh("x"), g.fresh("y")
			return fmt.Sprintf("{ $%s, $%s }", x, y), func() {
				sc.ints = append(sc.ints, x, y)
			}
		}
		m := g.fresh("m")
		return "$" + m, func() {
			x := g.fresh("x")
			g.line("$%s = %s.a + %s.b;", x, m, m)
			sc.ints = append(sc.ints, x)
			g.cleanup(m)
		}
	case payUni:
		u := g.fresh("u")
		return "$" + u, func() { g.cleanup(u) }
	default:
		a := g.fresh("a")
		return "$" + a, func() {
			x := g.fresh("x")
			g.line("$%s = %s[%d];", x, a, g.r.Intn(4))
			sc.ints = append(sc.ints, x)
			g.cleanup(a)
		}
	}
}

// recv emits one plain receive from ch.
func (g *gen) recv(sc *scope, ch chanInfo) {
	pat, body := g.recvPat(sc, ch)
	g.line("in( %s, %s);", ch.name, pat)
	body()
}

// countLoop opens "$i = 0; while (i < bound) {" and returns the counter
// name; the caller must increment it and close the loop.
func (g *gen) countLoop(bound string) string {
	i := g.fresh("i")
	g.line("$%s = 0;", i)
	g.open("while (%s < %s) {", i, bound)
	return i
}

// ---------------------------------------------------------------------------
// Templates

// pipeline chains 2-4 processes over typed channels, each forwarding a
// fixed number of rounds. Open pipelines read their first stage from an
// external writer and emit a summary on an external reader.
func (g *gen) pipeline(external bool) {
	stages := 2 + g.r.Intn(3)
	g.extraConsts()
	rounds := g.bound(1 + g.r.Intn(3))

	var inC, outC chanInfo
	if external {
		inC = g.declChan(" external writer")
		outC = g.declChan(" external reader")
	}
	chain := make([]chanInfo, stages-1)
	for i := range chain {
		chain[i] = g.declChan("")
	}

	for s := 0; s < stages; s++ {
		g.open("process %s {", g.fresh("p"))
		sc := &scope{}
		g.seedVars(sc)
		i := g.countLoop(rounds)
		ls := sc.child() // receive bindings are loop-body-local
		if s == 0 && external {
			g.recv(ls, inC)
		}
		if s > 0 {
			g.recv(ls, chain[s-1])
		}
		g.fill(ls, 2, 2)
		if s < stages-1 {
			g.send(ls, chain[s])
		} else if external {
			g.send(ls, outC)
		}
		g.line("%s = %s + 1;", i, i)
		g.close()
		g.fill(sc, 1, 1)
		g.close()
	}
}

// merge runs two producers into one consumer that alt-receives with
// guard counters until both streams are drained.
func (g *gen) merge() {
	g.extraConsts()
	m1 := 1 + g.r.Intn(3)
	m2 := 1 + g.r.Intn(3)
	c1 := g.declChan("")
	c2 := g.declChan("")

	for _, pc := range []struct {
		ch chanInfo
		m  int
	}{{c1, m1}, {c2, m2}} {
		g.open("process %s {", g.fresh("p"))
		sc := &scope{}
		g.seedVars(sc)
		i := g.countLoop(fmt.Sprint(pc.m))
		g.fill(sc, 1, 1)
		g.send(sc, pc.ch)
		g.line("%s = %s + 1;", i, i)
		g.close()
		g.close()
	}

	g.open("process %s {", g.fresh("p"))
	sc := &scope{}
	a, b := g.fresh("n"), g.fresh("n")
	g.line("$%s = 0;", a)
	g.line("$%s = 0;", b)
	sc.ints = append(sc.ints, a, b)
	g.open("while ((%s < %d) || (%s < %d)) {", a, m1, b, m2)
	g.open("alt {")
	p1, body1 := g.recvPat(sc.child(), c1) // pattern bindings are arm-local
	g.open("case( %s < %d, in( %s, %s)) {", a, m1, c1.name, p1)
	body1()
	g.line("%s = %s + 1;", a, a)
	g.close()
	p2, body2 := g.recvPat(sc.child(), c2)
	g.open("case( %s < %d, in( %s, %s)) {", b, m2, c2.name, p2)
	body2()
	g.line("%s = %s + 1;", b, b)
	g.close()
	g.close()
	g.close()
	g.fill(sc, 1, 2)
	g.close()
}

// fanout runs one producer that alt-sends to two consumers — the §6.1
// postponed-evaluation case: the message expression of the chosen arm is
// evaluated only when the rendezvous fires.
func (g *gen) fanout() {
	g.extraConsts()
	m1 := 1 + g.r.Intn(3)
	m2 := 1 + g.r.Intn(3)
	c1 := g.declChan("")
	c2 := g.declChan("")

	g.open("process %s {", g.fresh("p"))
	sc := &scope{}
	g.seedVars(sc)
	a, b := g.fresh("g"), g.fresh("g")
	g.line("$%s = 0;", a)
	g.line("$%s = 0;", b)
	sc.ints = append(sc.ints, a, b)
	g.open("while ((%s < %d) || (%s < %d)) {", a, m1, b, m2)
	g.open("alt {")
	g.open("case( %s < %d, out( %s, %s)) {", a, m1, c1.name, g.sendArg(sc, c1))
	g.line("%s = %s + 1;", a, a)
	g.close()
	g.open("case( %s < %d, out( %s, %s)) {", b, m2, c2.name, g.sendArg(sc, c2))
	g.line("%s = %s + 1;", b, b)
	g.close()
	g.close()
	g.close()
	g.close()

	for _, pc := range []struct {
		ch chanInfo
		m  int
	}{{c1, m1}, {c2, m2}} {
		g.open("process %s {", g.fresh("p"))
		sc := &scope{}
		i := g.countLoop(fmt.Sprint(pc.m))
		g.recv(sc, pc.ch)
		g.fill(sc, 1, 1)
		g.line("%s = %s + 1;", i, i)
		g.close()
		g.close()
	}
}

// dispatch sends tagged union messages that two reader processes split
// by tag pattern — the single-reader-port construction of §4.2: the two
// ports are disjoint and together exhaustive.
func (g *gen) dispatch() {
	g.extraConsts()
	t1 := 1 + g.r.Intn(3)
	t2 := 1 + g.r.Intn(3)
	tn := g.fresh("Uni")
	g.line("type %s = union of { l: int, r: bool }", tn)
	cu := chanInfo{name: g.fresh("c"), kind: payUni, typeName: tn}
	g.line("channel %s: %s", cu.name, tn)

	// Producer: a deterministic shuffle of t1 "l" and t2 "r" messages.
	tags := make([]int, 0, t1+t2)
	for i := 0; i < t1; i++ {
		tags = append(tags, 0)
	}
	for i := 0; i < t2; i++ {
		tags = append(tags, 1)
	}
	g.r.Shuffle(len(tags), func(i, j int) { tags[i], tags[j] = tags[j], tags[i] })

	g.open("process %s {", g.fresh("p"))
	sc := &scope{}
	g.seedVars(sc)
	for _, tag := range tags {
		if tag == 0 {
			g.line("out( %s, { l |> %s });", cu.name, g.intExpr(sc, 2))
		} else {
			g.line("out( %s, { r |> %s });", cu.name, g.boolExpr(sc, 1))
		}
	}
	g.close()

	g.open("process %s {", g.fresh("p"))
	sc = &scope{}
	i := g.countLoop(fmt.Sprint(t1))
	x := g.fresh("x")
	g.line("in( %s, { l |> $%s });", cu.name, x)
	sc.ints = append(sc.ints, x)
	g.fill(sc, 1, 1)
	g.line("%s = %s + 1;", i, i)
	g.close()
	g.close()

	g.open("process %s {", g.fresh("p"))
	sc = &scope{}
	i = g.countLoop(fmt.Sprint(t2))
	bv := g.fresh("b")
	g.line("in( %s, { r |> $%s });", cu.name, bv)
	sc.bools = append(sc.bools, bv)
	g.fill(sc, 1, 1)
	g.line("%s = %s + 1;", i, i)
	g.close()
	g.close()
}

// ownership stresses §4.4 reference counting: every round allocates a
// composite, optionally link/unlinks it, transfers it, and both sides
// clean up — except when bug seeding leaks or double-frees.
func (g *gen) ownership() {
	g.extraConsts()
	rounds := g.bound(1 + g.r.Intn(4))
	tn := g.fresh("Rec")
	var ch chanInfo
	if g.pct(50) {
		g.line("type %s = record of { a: int, b: int }", tn)
		ch = chanInfo{name: g.fresh("c"), kind: payRec, typeName: tn}
	} else {
		g.line("type %s = array of int [4]", tn)
		ch = chanInfo{name: g.fresh("c"), kind: payArr, typeName: tn}
	}
	g.line("channel %s: %s", ch.name, tn)

	g.open("process %s {", g.fresh("p"))
	sc := &scope{}
	g.seedVars(sc)
	i := g.countLoop(rounds)
	d := g.fresh("d")
	g.line("$%s: %s = %s;", d, tn, g.sendArg(sc, ch))
	if g.pct(30) {
		g.line("link( %s);", d)
		g.line("unlink( %s);", d)
	}
	g.line("out( %s, %s);", ch.name, d)
	g.cleanup(d)
	g.line("%s = %s + 1;", i, i)
	g.close()
	g.close()

	g.open("process %s {", g.fresh("p"))
	sc = &scope{}
	i = g.countLoop(rounds)
	g.recv(sc, ch)
	g.fill(sc, 1, 1)
	g.line("%s = %s + 1;", i, i)
	g.close()
	g.close()
}

// ring passes an int token around a 2-3 process cycle for a fixed number
// of rounds — the shape the process-fusion scheduler statically orders.
func (g *gen) ring() {
	g.extraConsts()
	n := 2 + g.r.Intn(2)
	rounds := g.bound(1 + g.r.Intn(3))
	chans := make([]chanInfo, n)
	for i := range chans {
		chans[i] = chanInfo{name: g.fresh("r"), kind: payInt}
		g.line("channel %s: int", chans[i].name)
	}

	// Process 0 injects the token, then receives it back each round.
	g.open("process %s {", g.fresh("p"))
	sc := &scope{}
	tok := g.fresh("v")
	g.line("$%s = %s;", tok, g.intExpr(sc, 1))
	sc.ints = append(sc.ints, tok)
	i := g.countLoop(rounds)
	g.line("out( %s, %s);", chans[0].name, tok)
	u := g.fresh("x")
	g.line("in( %s, $%s);", chans[n-1].name, u)
	g.line("%s = %s + 1;", tok, u)
	g.fill(sc, 1, 1)
	g.line("%s = %s + 1;", i, i)
	g.close()
	g.close()

	for k := 1; k < n; k++ {
		g.open("process %s {", g.fresh("p"))
		sc := &scope{}
		i := g.countLoop(rounds)
		v := g.fresh("x")
		g.line("in( %s, $%s);", chans[k-1].name, v)
		sc.ints = append(sc.ints, v)
		g.fill(sc, 1, 1)
		g.line("out( %s, (%s + 1));", chans[k].name, v)
		g.line("%s = %s + 1;", i, i)
		g.close()
		g.close()
	}
}
