// The compiled-engine oracle stage: the default-compiled program is
// handed to the Go backend, built with the host toolchain, and run in a
// generated subprocess with the exact inputs bindExternals feeds the
// in-process engines — the input scripts are mirrored as wire trees the
// child rebuilds children-first, so allocation charges and trace events
// line up. The render must be byte-identical to the baseline engine's.
package fuzz

import (
	"errors"
	"fmt"
	"strings"

	esplang "esplang"
	"esplang/internal/gobackend"
	"esplang/internal/ir"
	"esplang/internal/types"
)

// treeFromPat is buildFromPat as a wire-tree constructor: the same
// pattern-directed synthesis and the same deterministic feed sequence,
// producing the serialized form of the value the in-process harness
// would build.
func treeFromPat(t *types.Type, p *ir.Pat, ctr *int64) *gobackend.Tree {
	switch t.Kind {
	case types.Int:
		if p != nil && p.Kind == ir.PatConst {
			return gobackend.Scalar(p.Val)
		}
		return gobackend.Scalar(nextFeed(ctr))
	case types.Bool:
		if p != nil && p.Kind == ir.PatConst {
			return gobackend.Scalar(boolInt(p.Val != 0))
		}
		return gobackend.Scalar(boolInt(nextFeed(ctr)%2 == 0))
	case types.Record:
		elems := make([]*gobackend.Tree, len(t.Fields))
		for i, f := range t.Fields {
			var sub *ir.Pat
			if p != nil && p.Kind == ir.PatRecord && i < len(p.Elems) {
				sub = p.Elems[i]
			}
			elems[i] = treeFromPat(f.Type, sub, ctr)
		}
		return gobackend.Record(t.ID(), elems...)
	case types.Union:
		tag := 0
		var sub *ir.Pat
		if p != nil && p.Kind == ir.PatUnion {
			tag = p.Tag
			if len(p.Elems) > 0 {
				sub = p.Elems[0]
			}
		}
		return gobackend.Union(t.ID(), tag, treeFromPat(t.Fields[tag].Type, sub, ctr))
	case types.Array:
		n := int(t.Bound)
		if n <= 0 {
			n = 4
		}
		return gobackend.Array(t.ID(), n, gobackend.Scalar(nextFeed(ctr)))
	}
	return gobackend.Scalar(0)
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// compiledRequest mirrors bindExternals as a wire request: every
// external reader collects, every external writer with interface cases
// is fed perChannel pattern-synthesized messages cycling the cases.
func compiledRequest(prog *esplang.Program, opts Options, trace bool) *gobackend.Request {
	req := &gobackend.Request{
		MaxLive:    opts.MaxLiveObjects,
		StepBudget: opts.StepBudget,
		MaxCycles:  opts.MaxCycles,
		Trace:      trace,
		Writers:    map[string][]gobackend.Item{},
		Readers:    map[string]int{},
	}
	for _, ch := range prog.IR.Channels {
		switch ch.Ext {
		case ir.ExtReader:
			req.Readers[ch.Name] = 0
		case ir.ExtWriter:
			if len(ch.Cases) == 0 {
				continue // nothing external could legally feed this channel
			}
			items := make([]gobackend.Item, opts.InputsPerChannel)
			ctr := int64(0)
			for i := range items {
				caseIdx := i % len(ch.Cases)
				items[i] = gobackend.Item{
					Case: caseIdx,
					Val:  treeFromPat(ch.Elem, ch.Cases[caseIdx].Pat, &ctr),
				}
			}
			req.Writers[ch.Name] = items
		}
	}
	return req
}

// runCompiled builds the generated package for prog and runs it with
// the mirrored inputs, rendering the result exactly as runVM does. With
// trace false the child machine runs quiet, which routes statically
// paired processes through the generated fused fast path; the render
// then carries no trace line.
func runCompiled(name string, prog *esplang.Program, opts Options, trace bool) (string, error) {
	runner, err := gobackend.BuildProgram(prog, gobackend.BuildOptions{
		Name: name, File: name + ".esp", VerifyIR: true,
	})
	if err != nil {
		return "", err
	}
	res, err := runner.Run(compiledRequest(prog, opts, trace))
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "result: %v\n", res.Result)
	if res.Fault != nil {
		fmt.Fprintf(&b, "fault: %v\n", res.Fault)
	} else {
		b.WriteString("fault: none\n")
	}
	st := res.Stats
	st.DirectXfers = 0
	fmt.Fprintf(&b, "cycles: %d\nstats: %+v\n", res.Cycles, st)
	for _, ch := range prog.IR.Channels {
		vals, ok := res.Outputs[ch.Name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%s:", ch.Name)
		for _, v := range vals {
			b.WriteString(" ")
			b.WriteString(renderSnap(v))
		}
		b.WriteString("\n")
	}
	if trace {
		fmt.Fprintf(&b, "trace: %s\n", res.Trace)
	}
	return b.String(), nil
}

// stripTrace drops the trailing "trace: ..." line from a render so a
// traced baseline can be compared against a quiet run.
func stripTrace(render string) string {
	if i := strings.LastIndex(render, "trace: "); i >= 0 && strings.HasSuffix(render, "\n") {
		return render[:i]
	}
	return render
}

// compiledStage cross-checks the compiled engine against the baseline
// render, twice: a traced run (the child attaches an event log, general
// per-process functions, trace digests compared) and a quiet run (no
// observers, so the generated fused fast path executes; everything but
// the trace line must still match). Build failures and run failures are
// distinct bug kinds (the backend broke, not the semantics); a render
// mismatch is the same engine-divergence class the in-process matrix
// reports; a missing toolchain is an explained Note, not a failure.
func (rep *Report) compiledStage(name string, prog *esplang.Program, baseline string, opts Options) {
	const stage = "vm/opt/compiled"
	rep.guard(stage, func() {
		render, err := runCompiled(name, prog, opts, true)
		var berr *gobackend.BuildError
		switch {
		case errors.Is(err, gobackend.ErrNoToolchain):
			rep.Notes = append(rep.Notes, "compiled oracle skipped: no Go toolchain on PATH")
			return
		case errors.As(err, &berr):
			rep.addBug("compiled-build-failure", stage, berr.Error())
			return
		case err != nil:
			rep.addBug("compiled-run-failure", stage, err.Error())
			return
		case render != baseline:
			rep.Bugs = append(rep.Bugs, Bug{
				Kind:   "engine-divergence",
				Stage:  stage,
				Detail: fmt.Sprintf("--- vm/opt/%v ---\n%s--- %s ---\n%s", esplang.EngineBaseline, baseline, stage, render),
			})
		}
		const qstage = "vm/opt/compiled-quiet"
		quiet, err := runCompiled(name, prog, opts, false)
		switch {
		case err != nil:
			rep.addBug("compiled-run-failure", qstage, err.Error())
		case quiet != stripTrace(baseline):
			rep.Bugs = append(rep.Bugs, Bug{
				Kind:   "engine-divergence",
				Stage:  qstage,
				Detail: fmt.Sprintf("--- vm/opt/%v ---\n%s--- %s ---\n%s", esplang.EngineBaseline, stripTrace(baseline), qstage, quiet),
			})
		}
	})
}
