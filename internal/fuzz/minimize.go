package fuzz

import (
	"esplang/internal/ast"
	"esplang/internal/parser"
)

// Minimize greedily shrinks src while keep(candidate) stays true —
// classic delta debugging over the AST rather than over lines, so every
// candidate is structurally plausible. keep is typically "the
// differential report has the same failure signature" (Report.Key).
//
// The edit space, enumerated in a fixed traversal order: drop a
// declaration, drop a statement, hoist a loop/conditional body into its
// parent, drop an alt arm, replace a binary or unary expression by an
// operand, and zero an integer literal. After any accepted edit the scan
// restarts, so edits compose until a fixpoint or until maxAttempts
// candidate evaluations.
//
// Minimize never returns a candidate that keep rejected; if src itself
// does not parse, it is returned unchanged (AST edits need a tree).
func Minimize(src string, keep func(string) bool, maxAttempts int) string {
	attempts := 0
	for {
		improved := false
		total := countEdits(src)
		for site := 0; site < total && attempts < maxAttempts; site++ {
			cand, ok := applyEdit(src, site)
			if !ok || cand == src {
				continue
			}
			attempts++
			if keep(cand) {
				src = cand
				total = countEdits(src)
				site = -1 // restart the scan on the smaller program
				improved = true
			}
		}
		if !improved || attempts >= maxAttempts {
			return src
		}
	}
}

// countEdits parses src and counts the edit sites the editor enumerates.
func countEdits(src string) int {
	tree, err := parser.Parse([]byte(src))
	if err != nil {
		return 0
	}
	ed := &editor{target: -1}
	ed.program(tree)
	return ed.n
}

// applyEdit parses src fresh, applies the site-th edit, and prints the
// result. A fresh parse per candidate keeps edits independent: rejected
// candidates leave no trace.
func applyEdit(src string, site int) (string, bool) {
	tree, err := parser.Parse([]byte(src))
	if err != nil {
		return "", false
	}
	ed := &editor{target: site}
	ed.program(tree)
	if !ed.applied {
		return "", false
	}
	return ast.Print(tree), true
}

// editor walks the tree in a deterministic order, counting edit sites;
// when the counter hits target, the edit is performed in place.
type editor struct {
	target  int
	n       int
	applied bool
}

// hit advances the site counter and reports whether this site is the one
// to apply.
func (ed *editor) hit() bool {
	ed.n++
	if ed.n-1 == ed.target && !ed.applied {
		ed.applied = true
		return true
	}
	return false
}

func (ed *editor) program(p *ast.Program) {
	for i := 0; i < len(p.Decls); i++ {
		if ed.hit() {
			p.Decls = append(p.Decls[:i], p.Decls[i+1:]...)
			return
		}
	}
	for _, d := range p.Decls {
		if proc, ok := d.(*ast.ProcessDecl); ok {
			ed.block(proc.Body)
		}
	}
}

func (ed *editor) block(b *ast.Block) {
	for i := 0; i < len(b.Stmts); i++ {
		if ed.hit() {
			b.Stmts = append(b.Stmts[:i], b.Stmts[i+1:]...)
			return
		}
		// Hoists: replace a compound statement by its body, preserving
		// the surrounding statements.
		switch s := b.Stmts[i].(type) {
		case *ast.While:
			if ed.hit() {
				b.Stmts = spliceStmts(b.Stmts, i, s.Body.Stmts)
				return
			}
		case *ast.If:
			if ed.hit() {
				b.Stmts = spliceStmts(b.Stmts, i, s.Then.Stmts)
				return
			}
			if e, ok := s.Else.(*ast.Block); ok && ed.hit() {
				b.Stmts = spliceStmts(b.Stmts, i, e.Stmts)
				return
			}
		case *ast.Alt:
			if len(s.Cases) > 1 {
				for j := range s.Cases {
					if ed.hit() {
						s.Cases = append(s.Cases[:j], s.Cases[j+1:]...)
						return
					}
				}
			}
		}
	}
	for _, s := range b.Stmts {
		ed.stmt(s)
	}
}

// spliceStmts replaces stmts[i] with the given replacement sequence.
func spliceStmts(stmts []ast.Stmt, i int, repl []ast.Stmt) []ast.Stmt {
	out := make([]ast.Stmt, 0, len(stmts)-1+len(repl))
	out = append(out, stmts[:i]...)
	out = append(out, repl...)
	out = append(out, stmts[i+1:]...)
	return out
}

func (ed *editor) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.Block:
		ed.block(x)
	case *ast.VarDecl:
		x.Init = ed.expr(x.Init)
	case *ast.Assign:
		// Only the right-hand side: pattern edits on the left would
		// change binding structure in ways the keep predicate rarely
		// wants.
		x.RHS = ed.expr(x.RHS)
	case *ast.While:
		if x.Cond != nil {
			x.Cond = ed.expr(x.Cond)
		}
		ed.block(x.Body)
	case *ast.If:
		x.Cond = ed.expr(x.Cond)
		ed.block(x.Then)
		if x.Else != nil {
			ed.stmt(x.Else)
		}
	case *ast.Comm:
		if x.Dir == ast.Send {
			x.Arg = ed.expr(x.Arg)
		}
	case *ast.Alt:
		for _, c := range x.Cases {
			if c.Guard != nil {
				c.Guard = ed.expr(c.Guard)
			}
			if c.Comm.Dir == ast.Send {
				c.Comm.Arg = ed.expr(c.Comm.Arg)
			}
			ed.block(c.Body)
		}
	case *ast.Assert:
		x.X = ed.expr(x.X)
	case *ast.Link:
		x.X = ed.expr(x.X)
	case *ast.Unlink:
		x.X = ed.expr(x.X)
	}
}

func (ed *editor) expr(e ast.Expr) ast.Expr {
	switch x := e.(type) {
	case *ast.Binary:
		if ed.hit() {
			return x.X
		}
		if ed.hit() {
			return x.Y
		}
		x.X = ed.expr(x.X)
		x.Y = ed.expr(x.Y)
	case *ast.Unary:
		if ed.hit() {
			return x.X
		}
		x.X = ed.expr(x.X)
	case *ast.IntLit:
		if x.Value != 0 && ed.hit() {
			x.Value = 0
		}
	case *ast.Index:
		x.X = ed.expr(x.X)
		x.I = ed.expr(x.I)
	case *ast.FieldSel:
		x.X = ed.expr(x.X)
	case *ast.RecordLit:
		for i := range x.Elems {
			x.Elems[i] = ed.expr(x.Elems[i])
		}
	case *ast.UnionLit:
		x.Value = ed.expr(x.Value)
	case *ast.ArrayLit:
		x.Count = ed.expr(x.Count)
		x.Init = ed.expr(x.Init)
	case *ast.Cast:
		x.X = ed.expr(x.X)
	}
	return e
}
