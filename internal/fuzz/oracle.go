package fuzz

import (
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"sort"
	"strings"

	esplang "esplang"
	"esplang/internal/ast"
	"esplang/internal/ir"
	"esplang/internal/obs"
	"esplang/internal/parser"
	"esplang/internal/types"
	"esplang/internal/vm"
)

// Options bounds one differential run.
type Options struct {
	// MaxLiveObjects is the VM and model-checker heap bound (0 = 32).
	MaxLiveObjects int
	// StepBudget bounds instructions between blocking points, so mutants
	// with runaway local loops fault quickly (0 = 200000).
	StepBudget int64
	// MaxCycles bounds each VM run's total cycle meter, so mutants that
	// rendezvous forever (which StepBudget cannot catch — every blocking
	// point resets it) still terminate (0 = 2000000).
	MaxCycles int64
	// MCMaxStates bounds the model-checker searches (0 = 20000).
	MCMaxStates int
	// MCMaxDepth bounds the search depth (0 = 20000).
	MCMaxDepth int
	// InputsPerChannel is how many messages the harness queues on every
	// external-writer channel (0 = 12).
	InputsPerChannel int
	// SkipMC disables the model-checker stages.
	SkipMC bool
	// Compiled enables the AOT-compiled engine oracle stage: the
	// default-compiled program is built into a generated Go binary and
	// its run compared byte-for-byte against the baseline render. Off by
	// default — each new program costs a host-toolchain build (cached,
	// but still the slowest stage by far).
	Compiled bool
}

func (o Options) withDefaults() Options {
	if o.MaxLiveObjects == 0 {
		o.MaxLiveObjects = 32
	}
	if o.StepBudget == 0 {
		o.StepBudget = 200_000
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 2_000_000
	}
	if o.MCMaxStates == 0 {
		o.MCMaxStates = 20_000
	}
	if o.MCMaxDepth == 0 {
		o.MCMaxDepth = 20_000
	}
	if o.InputsPerChannel == 0 {
		o.InputsPerChannel = 12
	}
	return o
}

// Bug is one oracle failure: a divergence between backends that must
// agree, a panic, or a broken structural invariant.
type Bug struct {
	Kind   string // "panic", "engine-divergence", "mc-parallel-divergence", ...
	Stage  string // which oracle stage observed it
	Detail string
	// Event is the divergence signature of an engine divergence: the
	// kind and channel of the first divergent trace event ("rendezvous/c",
	// "stop/-", ...). It feeds Report.Key, so the minimizer preserves not
	// just that the engines diverged but where — while staying stable
	// across shrinks (cycle counts and process ids move as the program
	// shrinks; event kind and channel name do not).
	Event string
}

// Report is the outcome of one differential run.
type Report struct {
	Name string
	// Outcome is the benign classification of the program itself:
	// "parse-error", "compile-error", "halt", "idle" (deadlock), or
	// "fault:<kind>". Programs that fail to compile or that fault are
	// normal fuzzing outcomes — only Bugs mean the toolchain misbehaved.
	Outcome string
	Bugs    []Bug
	// Notes records explained divergences (e.g. allocation-count
	// differences between optimized and unoptimized code).
	Notes []string
	// Postmortem is the baseline engine's flight-recorder dump of the
	// default-compile run when it faulted: the last events leading into
	// the fault. It rides along on repro reports so a divergence repro
	// shows not just what diverged but what the execution was doing.
	Postmortem string
}

// Failed reports whether the oracle found a toolchain bug.
func (r *Report) Failed() bool { return len(r.Bugs) > 0 }

// Key is a stable failure signature — the sorted set of Kind/Stage
// pairs, each extended with the divergence signature when one is known —
// used by the minimizer to preserve "the same bug" while shrinking.
func (r *Report) Key() string {
	seen := map[string]bool{}
	var ks []string
	for _, b := range r.Bugs {
		k := b.Kind + "/" + b.Stage
		if b.Event != "" {
			k += "@" + b.Event
		}
		if !seen[k] {
			seen[k] = true
			ks = append(ks, k)
		}
	}
	sort.Strings(ks)
	return strings.Join(ks, ",")
}

func (r *Report) addBug(kind, stage, detail string) {
	r.Bugs = append(r.Bugs, Bug{Kind: kind, Stage: stage, Detail: detail})
}

// String renders the report for triage.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s", r.Name, r.Outcome)
	if len(r.Bugs) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, " — %d bug(s)\n", len(r.Bugs))
	for _, bug := range r.Bugs {
		fmt.Fprintf(&b, "  [%s @ %s]\n%s\n", bug.Kind, bug.Stage, indent(bug.Detail))
	}
	if r.Postmortem != "" {
		fmt.Fprintf(&b, "  postmortem (baseline engine, last %d events):\n%s\n", obs.PostmortemEvents, indent(r.Postmortem))
	}
	return b.String()
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n    ")
}

// guard runs fn, converting a panic into a bug report. It returns false
// when fn panicked.
func (r *Report) guard(stage string, fn func()) (ok bool) {
	ok = true
	func() {
		defer func() {
			if p := recover(); p != nil {
				ok = false
				r.addBug("panic", stage, fmt.Sprintf("%v\n%s", p, debug.Stack()))
			}
		}()
		fn()
	}()
	return ok
}

// allEngines in baseline-first order: the baseline interpreter is the
// semantics oracle the other two must match.
var allEngines = []esplang.Engine{esplang.EngineBaseline, esplang.EngineFused, esplang.EngineProcFused}

func engineName(e esplang.Engine) string {
	return fmt.Sprint(e)
}

// RunDifferential runs one ESP source through every backend and
// cross-checks everything observable:
//
//   - parse + formatter fixpoint (print, reparse, print again);
//   - compile determinism (disassembly, fused disassembly, vet findings);
//   - the three engines × {optimized, fusion-off}: outputs, faults with
//     file:line, cycle meter, statistics, trace bytes — all must be
//     byte-identical (Stats.DirectXfers excepted, as in the repo's
//     differential suite);
//   - unoptimized vs optimized: same fault message and outputs (the
//     TestOptimizedEquivalence contract; cycle counts legitimately
//     differ, and out-of-objects faults are exempted because the
//     optimizer may elide allocations);
//   - the model checker (closed programs only): verdict, state and
//     transition counts identical across engines at Workers:1, verdict
//     stable at Workers:4, verdict class stable without the optimizer;
//   - espvet findings identical across optimizer configurations;
//   - C and Promela generation: deterministic, panic-free, and carrying
//     their structural markers;
//   - with Options.Compiled, the AOT-compiled engine: the generated Go
//     binary's run must match the baseline render byte-for-byte (build
//     failures and run failures are their own bug kinds; no toolchain on
//     PATH is an explained Note).
//
// Every stage is panic-guarded: a crash anywhere becomes a Bug, not a
// fuzzer crash.
func RunDifferential(name, src string, opts Options) *Report {
	opts = opts.withDefaults()
	rep := &Report{Name: name, Outcome: "ok"}

	// --- Stage: parse + formatter fixpoint -------------------------------
	var tree *ast.Program
	var parseErr error
	if !rep.guard("parse", func() { tree, parseErr = parser.Parse([]byte(src)) }) {
		return rep
	}
	if parseErr != nil {
		rep.Outcome = "parse-error"
		return rep
	}
	var once string
	if rep.guard("format", func() { once = ast.Print(tree) }) {
		var retree *ast.Program
		var rerr error
		if rep.guard("format-reparse", func() { retree, rerr = parser.Parse([]byte(once)) }) {
			if rerr != nil {
				rep.addBug("format-reparse", "format", fmt.Sprintf("printed form no longer parses: %v\n--- printed ---\n%s", rerr, once))
			} else if rep.guard("format-fixpoint", func() {
				if twice := ast.Print(retree); twice != once {
					rep.addBug("format-unstable", "format", fmt.Sprintf("--- first ---\n%s--- second ---\n%s", once, twice))
				}
			}) {
			}
		}
	}

	// --- Stage: compile matrix ------------------------------------------
	file := name + ".esp"
	noFuse := esplang.OptAll()
	noFuse.FuseProcs = false
	compileOne := func(stage string, copts esplang.CompileOptions) (*esplang.Program, error, bool) {
		var p *esplang.Program
		var err error
		ok := rep.guard(stage, func() { p, err = esplang.Compile(src, copts) })
		return p, err, ok
	}
	full, fullErr, ok := compileOne("compile", esplang.CompileOptions{Name: name, File: file, VerifyIR: true})
	if !ok {
		return rep
	}
	full2, full2Err, _ := compileOne("compile-repeat", esplang.CompileOptions{Name: name, File: file, VerifyIR: true})
	noopt, nooptErr, _ := compileOne("compile-noopt", esplang.CompileOptions{Name: name, File: file, VerifyIR: true, NoOptimize: true})
	nofuse, nofuseErr, _ := compileOne("compile-nofuse", esplang.CompileOptions{Name: name, File: file, VerifyIR: true, Passes: noFuse})

	// All configurations must agree on whether the program compiles.
	for _, alt := range []struct {
		stage string
		err   error
	}{{"compile-repeat", full2Err}, {"compile-noopt", nooptErr}, {"compile-nofuse", nofuseErr}} {
		if (fullErr == nil) != (alt.err == nil) {
			rep.addBug("compile-gate-divergence", alt.stage,
				fmt.Sprintf("default compile error: %v\n%s error: %v", fullErr, alt.stage, alt.err))
		}
	}
	// The canonical printed form must be exactly as compilable as the
	// original source.
	if once != "" {
		var ferr error
		if rep.guard("compile-formatted", func() { _, ferr = esplang.Compile(once, esplang.CompileOptions{Name: name}) }) {
			if (fullErr == nil) != (ferr == nil) {
				rep.addBug("format-changes-validity", "compile-formatted",
					fmt.Sprintf("original error: %v\nformatted error: %v\n--- formatted ---\n%s", fullErr, ferr, once))
			}
		}
	}
	if fullErr != nil {
		rep.Outcome = "compile-error"
		return rep
	}

	// Compilation must be deterministic in everything downstream reads.
	if full2 != nil && full2Err == nil {
		rep.guard("compile-determinism", func() {
			if a, b := full.Disasm(), full2.Disasm(); a != b {
				rep.addBug("nondeterministic-compile", "disasm", diffDetail(a, b))
			}
			if a, b := full.DisasmFused(), full2.DisasmFused(); a != b {
				rep.addBug("nondeterministic-compile", "disasm-fused", diffDetail(a, b))
			}
			if a, b := full.RenderFindings(), full2.RenderFindings(); a != b {
				rep.addBug("nondeterministic-compile", "vet", diffDetail(a, b))
			}
		})
	}
	// espvet runs before the optimizer, so its findings must not depend
	// on the optimizer configuration.
	rep.guard("vet-independence", func() {
		want := full.RenderFindings()
		if noopt != nil && nooptErr == nil {
			if got := noopt.RenderFindings(); got != want {
				rep.addBug("vet-opt-dependent", "vet-noopt", diffDetail(want, got))
			}
		}
		if nofuse != nil && nofuseErr == nil {
			if got := nofuse.RenderFindings(); got != want {
				rep.addBug("vet-opt-dependent", "vet-nofuse", diffDetail(want, got))
			}
		}
	})
	rep.guard("dump-schedule", func() { _ = full.DumpSchedule() })

	// --- Stage: VM engine matrix ----------------------------------------
	// Engines are compared strictly only against runs of the SAME
	// compiled program; opt vs fusion-off crosses two instruction
	// streams, which agree byte-for-byte except when the step budget
	// truncates execution (the two streams then cut off at different
	// points — an explained resource artifact, not a semantics bug).
	// strictMatrix (below) pinpoints the first divergent event.
	runMatrix := func(cfgName string, prog *esplang.Program) []vmRun {
		var rs []vmRun
		for _, eng := range allEngines {
			stage := fmt.Sprintf("vm/%s/%s", cfgName, engineName(eng))
			var run vmRun
			if rep.guard(stage, func() { run = runVM(prog, eng, opts) }) {
				run.cfg = stage
				rs = append(rs, run)
			}
		}
		rep.strictMatrix(rs)
		return rs
	}
	runs := runMatrix("opt", full)
	if opts.Compiled && len(runs) > 0 {
		rep.compiledStage(name, full, runs[0].render, opts)
	}
	if nofuse != nil && nofuseErr == nil {
		nofuseRuns := runMatrix("nofuse", nofuse)
		if len(runs) > 0 && len(nofuseRuns) > 0 && runs[0].render != nofuseRuns[0].render {
			if strings.Contains(runs[0].render+nofuseRuns[0].render, vm.FaultStep.String()) {
				rep.Notes = append(rep.Notes, "opt-vs-nofuse differ only under step-budget truncation")
			} else {
				rep.addBug("fusion-divergence", "vm/opt-vs-nofuse",
					fmt.Sprintf("--- %s ---\n%s--- %s ---\n%s", runs[0].cfg, runs[0].render, nofuseRuns[0].cfg, nofuseRuns[0].render))
			}
		}
	}
	if len(runs) > 0 {
		rep.Outcome = outcomeOf(runs[0].render)
		rep.Postmortem = runs[0].pm
	}

	// Optimized vs unoptimized: fault message and outputs must match
	// (cycles and statistics legitimately differ). The optimizer may
	// elide allocations, so out-of-objects faults are exempt.
	if noopt != nil && nooptErr == nil {
		nooptRuns := runMatrix("noopt", noopt)
		if len(runs) > 0 && len(nooptRuns) > 0 {
			a, b := equivalenceView(runs[0].render), equivalenceView(nooptRuns[0].render)
			if a != b {
				both := runs[0].render + nooptRuns[0].render
				switch {
				case strings.Contains(both, vm.FaultOutOfObjects.String()):
					rep.Notes = append(rep.Notes, "opt-vs-noopt differ only around an out-of-objects fault (allocation elision)")
				case strings.Contains(both, vm.FaultStep.String()):
					// The optimizer changes how many instructions the same
					// work takes, so a runaway program is cut off at
					// different points.
					rep.Notes = append(rep.Notes, "opt-vs-noopt differ only under step-budget truncation")
				default:
					rep.addBug("opt-noopt-divergence", "vm/opt-vs-noopt",
						fmt.Sprintf("--- optimized ---\n%s--- unoptimized ---\n%s", a, b))
				}
			}
		}
	}

	// --- Stage: model checker (closed programs only) ---------------------
	if !opts.SkipMC && isClosed(full) {
		mcOpts := func(eng esplang.Engine, workers int) esplang.VerifyOptions {
			return esplang.VerifyOptions{
				Workers:        workers,
				MaxStates:      opts.MCMaxStates,
				MaxDepth:       opts.MCMaxDepth,
				MaxLiveObjects: opts.MaxLiveObjects,
				StepBudget:     opts.StepBudget,
				Engine:         eng,
			}
		}
		type mcRun struct {
			stage string
			res   *esplang.VerifyResult
		}
		var mcs []mcRun
		for _, eng := range allEngines {
			stage := fmt.Sprintf("mc/%s", engineName(eng))
			var res *esplang.VerifyResult
			if rep.guard(stage, func() { res = full.Verify(mcOpts(eng, 1)) }) {
				mcs = append(mcs, mcRun{stage, res})
			}
		}
		if len(mcs) > 0 {
			base := renderMC(mcs[0].res)
			for _, m := range mcs[1:] {
				if got := renderMC(m.res); got != base {
					rep.addBug("mc-engine-divergence", m.stage,
						fmt.Sprintf("--- %s ---\n%s\n--- %s ---\n%s", mcs[0].stage, base, m.stage, got))
				}
			}
			// A violation's counterexample must map back through
			// ConfirmFinding without crashing.
			if v := mcs[0].res.Violation; v != nil {
				rep.guard("mc/confirm-finding", func() { _ = full.ConfirmFinding(v) })
			}
			// Parallel search: same verdict; same state count when no
			// violation cuts the search short.
			var par *esplang.VerifyResult
			if rep.guard("mc/parallel", func() { par = full.Verify(mcOpts(esplang.EngineFused, 4)) }) {
				seq := mcs[0].res
				if (seq.Violation == nil) != (par.Violation == nil) {
					if seq.Truncated || par.Truncated {
						// Workers explore the bounded state space in a
						// different order, so truncated searches may cut
						// off before or after a violation.
						rep.Notes = append(rep.Notes, "mc parallel verdict differs under state-bound truncation")
					} else {
						rep.addBug("mc-parallel-divergence", "mc/parallel",
							fmt.Sprintf("workers=1 violation: %v\nworkers=4 violation: %v", seq.Violation, par.Violation))
					}
				} else if seq.Violation == nil && !seq.Truncated && !par.Truncated && seq.States != par.States {
					rep.addBug("mc-parallel-divergence", "mc/parallel",
						fmt.Sprintf("workers=1 states=%d\nworkers=4 states=%d", seq.States, par.States))
				}
			}
			// Ample-set reduction prunes the successor sets but must keep
			// the verdict: same class and, for faults, the same kind at
			// the same source line. State counts legitimately shrink, and
			// out-of-objects verdicts are exempt — the global live-object
			// peak depends on which interleaving the search walks.
			var pres *esplang.VerifyResult
			if rep.guard("mc/por", func() {
				o := mcOpts(esplang.EngineFused, 1)
				o.Reduction = esplang.AmpleSets
				pres = full.Verify(o)
			}) {
				a, b := verdictPlace(mcs[0].res), verdictPlace(pres)
				if a != b {
					switch {
					case strings.Contains(a+b, vm.FaultOutOfObjects.String()):
						rep.Notes = append(rep.Notes, "mc por-vs-full differ only around an out-of-objects verdict (interleaving-dependent peak)")
					case a == "none(partial)" || b == "none(partial)":
						rep.Notes = append(rep.Notes, "mc por-vs-full differ under state-bound truncation")
					default:
						rep.addBug("mc-por-divergence", "mc/por",
							fmt.Sprintf("full verdict: %s\nreduced verdict: %s", a, b))
					}
				}
				if !mcs[0].res.Truncated && !pres.Truncated && pres.States > mcs[0].res.States {
					rep.addBug("mc-por-divergence", "mc/por",
						fmt.Sprintf("reduction grew the state space: full states=%d reduced states=%d",
							mcs[0].res.States, pres.States))
				}
				// A sequential reduced search is a pure function of the
				// program: repeating it must reproduce every counter.
				var pres2 *esplang.VerifyResult
				if rep.guard("mc/por-repeat", func() {
					o := mcOpts(esplang.EngineFused, 1)
					o.Reduction = esplang.AmpleSets
					pres2 = full.Verify(o)
				}) {
					if a, b := renderMC(pres), renderMC(pres2); a != b {
						rep.addBug("mc-por-nondet", "mc/por-repeat", diffDetail(a, b))
					}
				}
			}
			// Unoptimized code must model-check to the same verdict class
			// (state counts differ; allocation elision exempted again).
			if noopt != nil && nooptErr == nil {
				var nres *esplang.VerifyResult
				if rep.guard("mc/noopt", func() { nres = noopt.Verify(mcOpts(esplang.EngineFused, 1)) }) {
					a, b := verdictClass(mcs[0].res), verdictClass(nres)
					if a != b {
						switch {
						case strings.Contains(a+b, vm.FaultOutOfObjects.String()):
							rep.Notes = append(rep.Notes, "mc opt-vs-noopt differ only around an out-of-objects verdict (allocation elision)")
						case strings.Contains(a+b, vm.FaultStep.String()):
							rep.Notes = append(rep.Notes, "mc opt-vs-noopt differ only around a step-budget verdict")
						case a == "none(partial)" || b == "none(partial)":
							// A truncated search proves nothing: the other
							// configuration may legitimately reach a
							// violation the truncated one never explored.
							rep.Notes = append(rep.Notes, "mc opt-vs-noopt differ under state-bound truncation")
						default:
							rep.addBug("mc-opt-divergence", "mc/noopt",
								fmt.Sprintf("optimized verdict: %s\nunoptimized verdict: %s", a, b))
						}
					}
				}
			}
		}
	}

	// --- Stage: backends -------------------------------------------------
	rep.guard("backend/c", func() {
		a := full.C(esplang.COptions{})
		if b := full.C(esplang.COptions{}); a != b {
			rep.addBug("backend-nondet", "backend/c", diffDetail(a, b))
		}
		if !strings.Contains(a, "esp_run") {
			rep.addBug("backend-marker", "backend/c", "generated C lacks esp_run entry point")
		}
		if !strings.Contains(a, "#line") {
			rep.addBug("backend-marker", "backend/c", "generated C lacks #line directives despite a source file")
		}
	})
	rep.guard("backend/promela", func() {
		a := full.Promela(esplang.PromelaOptions{})
		if b := full.Promela(esplang.PromelaOptions{}); a != b {
			rep.addBug("backend-nondet", "backend/promela", diffDetail(a, b))
		}
		if !strings.Contains(a, "init {") {
			rep.addBug("backend-marker", "backend/promela", "generated Promela lacks init block")
		}
	})
	if noopt != nil && nooptErr == nil {
		rep.guard("backend/noopt", func() {
			_ = noopt.C(esplang.COptions{})
			_ = noopt.Promela(esplang.PromelaOptions{})
		})
	}
	return rep
}

// isClosed reports whether the program has no external channels, i.e.
// whether its state space is self-contained enough to model-check.
func isClosed(p *esplang.Program) bool {
	for _, ch := range p.IR.Channels {
		if ch.Ext != ir.ExtNone {
			return false
		}
	}
	return true
}

// vmRun is one engine execution: the rendered observables, the recorded
// event stream (for first-divergent-event reporting), and the fault
// postmortem (empty for clean runs).
type vmRun struct {
	cfg    string
	render string
	events []obs.Event
	pm     string
}

// strictMatrix compares engine runs of the SAME compiled program, where
// every observable must agree byte-for-byte. On a render divergence the
// recorded event streams pinpoint the first divergent event (cycle,
// kind, process, channel) — far more actionable than "the trace hashes
// differ" — and its kind/channel signature becomes part of the bug key,
// so minimization preserves the specific divergence. When the renders
// agree, the rendered fault postmortems are cross-checked for
// bit-identity.
func (rep *Report) strictMatrix(rs []vmRun) {
	if len(rs) == 0 {
		return
	}
	for _, r := range rs[1:] {
		if r.render != rs[0].render {
			detail := fmt.Sprintf("--- %s ---\n%s--- %s ---\n%s", rs[0].cfg, rs[0].render, r.cfg, r.render)
			sig := ""
			if div := obs.FormatDivergence(rs[0].cfg, rs[0].events, r.cfg, r.events); div != "" {
				detail = div + "\n" + detail
				i := obs.DiffTraces(rs[0].events, r.events)
				lead := rs[0].events
				if i >= len(lead) {
					lead = r.events
				}
				sig = divergenceSig(lead[i])
			}
			rep.Bugs = append(rep.Bugs, Bug{Kind: "engine-divergence", Stage: r.cfg, Detail: detail, Event: sig})
		} else if r.pm != rs[0].pm {
			// Renders (including the trace hash) agree but the rendered
			// postmortems do not — the postmortem path itself broke.
			rep.addBug("postmortem-divergence", r.cfg,
				fmt.Sprintf("--- %s ---\n%s--- %s ---\n%s", rs[0].cfg, rs[0].pm, r.cfg, r.pm))
		}
	}
}

// divergenceSig reduces a divergent event to the coordinates that stay
// stable while the minimizer shrinks the program: kind and channel.
func divergenceSig(e obs.Event) string {
	ch := "-"
	switch e.Kind {
	case obs.EvRendezvous, obs.EvPoll:
		ch = e.Name
	}
	return e.Kind.String() + "/" + ch
}

// runVM executes the program under one engine with deterministic
// external bindings and renders everything observable: run result, fault
// (with file:line), cycle meter, statistics (DirectXfers zeroed — the
// one deliberate cross-engine difference), per-channel outputs, and a
// hash of the recorded event stream. The raw events ride along so a
// divergence names its first divergent event, and a faulting run carries
// its flight-recorder postmortem — the strict matrix requires it to be
// bit-identical across engines, and espfuzz attaches it to the repro
// report.
func runVM(prog *esplang.Program, engine esplang.Engine, opts Options) vmRun {
	m := prog.Machine(esplang.MachineConfig{
		MaxLiveObjects: opts.MaxLiveObjects,
		StepBudget:     opts.StepBudget,
		MaxCycles:      opts.MaxCycles,
		Engine:         engine,
	})
	log := obs.NewEventLog()
	m.SetTracer(log)
	rec := obs.NewFlightRecorder(0)
	m.SetRecorder(rec)
	readers := bindExternals(prog, m, opts.InputsPerChannel)
	res := m.Run()

	var b strings.Builder
	fmt.Fprintf(&b, "result: %v\n", res)
	if f := m.Fault(); f != nil {
		fmt.Fprintf(&b, "fault: %v\n", f)
	} else {
		b.WriteString("fault: none\n")
	}
	st := m.Stats
	st.DirectXfers = 0
	fmt.Fprintf(&b, "cycles: %d\nstats: %+v\n", m.Cycles, st)
	for _, ch := range prog.IR.Channels {
		r, ok := readers[ch.Name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%s:", ch.Name)
		for _, v := range r.Values {
			b.WriteString(" ")
			b.WriteString(renderSnap(v))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "trace: %s\n", eventSum(log.Events()))
	out := vmRun{render: b.String(), events: log.Events()}
	if m.Fault() != nil {
		out.pm = m.Postmortem(obs.PostmortemEvents)
	}
	return out
}

// eventSum hashes an event stream for the strict engine comparison: the
// full timeline is covered without keeping every byte in the report.
func eventSum(evs []obs.Event) string {
	h := fnv.New64a()
	for _, e := range evs {
		fmt.Fprintln(h, e)
	}
	return fmt.Sprintf("%d events, fnv %x", len(evs), h.Sum64())
}

// bindExternals attaches a CollectReader to every external-reader
// channel and a deterministic QueueWriter to every external-writer
// channel that declares an interface, synthesizing well-shaped messages
// from the interface case patterns (cases are cycled in order).
func bindExternals(prog *esplang.Program, m *esplang.Machine, perChannel int) map[string]*esplang.CollectReader {
	readers := map[string]*esplang.CollectReader{}
	for _, ch := range prog.IR.Channels {
		switch ch.Ext {
		case ir.ExtReader:
			r := &esplang.CollectReader{}
			if err := m.BindReader(ch.Name, r); err == nil {
				readers[ch.Name] = r
			}
		case ir.ExtWriter:
			if len(ch.Cases) == 0 {
				continue // nothing external could legally feed this channel
			}
			w := &esplang.QueueWriter{}
			ctr := int64(0)
			for i := 0; i < perChannel; i++ {
				caseIdx := i % len(ch.Cases)
				c := ch.Cases[caseIdx]
				elem, pat := ch.Elem, c.Pat
				w.Push(caseIdx, func(mm *esplang.Machine) esplang.Value {
					return buildFromPat(mm, elem, pat, &ctr)
				})
			}
			_ = m.BindWriter(ch.Name, w)
		}
	}
	return readers
}

// feedValues is the deterministic scalar sequence the harness feeds.
var feedValues = []int64{1, 7, -3, 42, 0, 5, 2, 9, -1, 64, 3, 8}

func nextFeed(ctr *int64) int64 {
	v := feedValues[int(*ctr)%len(feedValues)]
	*ctr++
	return v
}

// buildFromPat synthesizes a machine value of type t that matches the
// interface-case pattern p: pattern constants become those constants,
// bindings and wildcards become values from the deterministic feed
// sequence, and composite patterns recurse structurally.
func buildFromPat(m *esplang.Machine, t *types.Type, p *ir.Pat, ctr *int64) esplang.Value {
	switch t.Kind {
	case types.Int:
		if p != nil && p.Kind == ir.PatConst {
			return esplang.IntVal(p.Val)
		}
		return esplang.IntVal(nextFeed(ctr))
	case types.Bool:
		if p != nil && p.Kind == ir.PatConst {
			return esplang.BoolVal(p.Val != 0)
		}
		return esplang.BoolVal(nextFeed(ctr)%2 == 0)
	case types.Record:
		elems := make([]esplang.Value, len(t.Fields))
		for i, f := range t.Fields {
			var sub *ir.Pat
			if p != nil && p.Kind == ir.PatRecord && i < len(p.Elems) {
				sub = p.Elems[i]
			}
			elems[i] = buildFromPat(m, f.Type, sub, ctr)
		}
		return m.NewRecordV(t, elems...)
	case types.Union:
		tag := 0
		var sub *ir.Pat
		if p != nil && p.Kind == ir.PatUnion {
			tag = p.Tag
			if len(p.Elems) > 0 {
				sub = p.Elems[0]
			}
		}
		return m.NewUnionV(t, tag, buildFromPat(m, t.Fields[tag].Type, sub, ctr))
	case types.Array:
		n := int(t.Bound)
		if n <= 0 {
			n = 4
		}
		return m.NewArrayV(t, n, esplang.IntVal(nextFeed(ctr)))
	}
	return esplang.IntVal(0)
}

func renderSnap(s esplang.Snapshot) string {
	if s.Obj == nil {
		return fmt.Sprintf("%d", s.Scalar)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "obj(tag=%d){", s.Obj.Tag)
	for i, e := range s.Obj.Elems {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(renderSnap(e))
	}
	b.WriteString("}")
	return b.String()
}

// outcomeOf classifies a runVM render into the benign outcome label.
func outcomeOf(render string) string {
	lines := strings.SplitN(render, "\n", 3)
	res := strings.TrimPrefix(lines[0], "result: ")
	if len(lines) > 1 && lines[1] != "fault: none" {
		for k := vm.FaultAssert; k <= vm.FaultInternal; k++ {
			if strings.Contains(lines[1], k.String()) {
				return "fault:" + k.String()
			}
		}
		return "fault:other"
	}
	switch res {
	case "halted":
		return "halt"
	case "idle":
		return "idle"
	}
	return res
}

// equivalenceView reduces a runVM render to the optimized-vs-unoptimized
// contract: fault message (not location or cycle counts — the optimizer
// legitimately moves both) plus per-channel outputs.
func equivalenceView(render string) string {
	var b strings.Builder
	for _, line := range strings.Split(render, "\n") {
		switch {
		case strings.HasPrefix(line, "fault: "):
			b.WriteString(faultMsgOnly(line) + "\n")
		case strings.HasPrefix(line, "result: "),
			strings.HasPrefix(line, "cycles: "),
			strings.HasPrefix(line, "stats: "),
			strings.HasPrefix(line, "trace: "),
			line == "":
		default:
			b.WriteString(line + "\n")
		}
	}
	return b.String()
}

// faultMsgOnly strips the process and source-location attribution from
// a rendered fault line, leaving the kind and message. Rendered faults
// look like "fault: <kind> in process <p> at <file:l:c>: <msg>".
func faultMsgOnly(line string) string {
	i := strings.Index(line, " in process ")
	if i < 0 {
		return line
	}
	j := strings.Index(line[i:], ": ")
	if j < 0 {
		return line
	}
	return line[:i] + line[i+j:]
}

func renderMC(res *esplang.VerifyResult) string {
	v := "none"
	if res.Violation != nil {
		v = res.Violation.String()
	}
	return fmt.Sprintf("violation=%s states=%d transitions=%d maxdepth=%d truncated=%v",
		v, res.States, res.Transitions, res.MaxDepth, res.Truncated)
}

// verdictClass reduces a model-checking result to what must survive
// optimization: no violation, deadlock, or a fault kind + message.
func verdictClass(res *esplang.VerifyResult) string {
	switch {
	case res.Violation == nil:
		if res.Truncated {
			return "none(partial)"
		}
		return "none"
	case res.Violation.Deadlock:
		return "deadlock"
	default:
		f := res.Violation.Fault
		return fmt.Sprintf("fault:%v:%s", f.Kind, f.Msg)
	}
}

// verdictPlace reduces a model-checking result to what a state-space
// reduction must preserve: no violation, deadlock, or a fault kind at
// its source location. Unlike verdictClass it pins the file:line (a
// reduced search must fault at the same site) but drops the message,
// whose counters can reflect the walked interleaving.
func verdictPlace(res *esplang.VerifyResult) string {
	switch {
	case res.Violation == nil:
		if res.Truncated {
			return "none(partial)"
		}
		return "none"
	case res.Violation.Deadlock:
		return "deadlock"
	default:
		f := res.Violation.Fault
		return fmt.Sprintf("fault:%v:%s", f.Kind, f.Location())
	}
}

// diffDetail renders two unequal strings, truncated for reports.
func diffDetail(a, b string) string {
	const max = 2000
	if len(a) > max {
		a = a[:max] + "…"
	}
	if len(b) > max {
		b = b[:max] + "…"
	}
	return fmt.Sprintf("--- first ---\n%s\n--- second ---\n%s", a, b)
}
