package fuzz

import (
	"strings"
	"testing"

	"esplang/internal/obs"
)

func runWithEvents(cfg string, kinds ...obs.EventKind) vmRun {
	r := vmRun{cfg: cfg, render: "result: halt\n"}
	for i, k := range kinds {
		name := ""
		if k == obs.EvRendezvous {
			name = "reqC"
		}
		r.events = append(r.events, obs.Event{Seq: uint64(i), Ts: int64(i * 3), Kind: k, Proc: 1, Name: name})
		r.render += k.String() + "\n"
	}
	return r
}

// TestSeededDivergenceNamesFirstEvent seeds an engine divergence (two
// runs whose event streams split at a rendezvous) and asserts the bug
// report names the first divergent event's coordinates — cycle, kind,
// process, channel — and that the divergence signature lands in the
// minimizer's bug key.
func TestSeededDivergenceNamesFirstEvent(t *testing.T) {
	a := runWithEvents("vm/opt/fused", obs.EvProcStart, obs.EvRendezvous, obs.EvProcStop)
	b := runWithEvents("vm/opt/baseline", obs.EvProcStart, obs.EvAlloc, obs.EvProcStop)
	// Divergence is at index 1: cycle 3, a rendezvous on reqC in the
	// lead run, an alloc in the other.
	rep := &Report{Name: "seeded", Outcome: "ok"}
	rep.strictMatrix([]vmRun{a, b})

	if len(rep.Bugs) != 1 {
		t.Fatalf("got %d bugs, want 1: %+v", len(rep.Bugs), rep.Bugs)
	}
	bug := rep.Bugs[0]
	if bug.Kind != "engine-divergence" {
		t.Errorf("bug kind = %q, want engine-divergence", bug.Kind)
	}
	for _, want := range []string{
		"first divergent event at index 1",
		"cycle=3", "kind=rendezvous", "proc=1", "chan=reqC",
	} {
		if !strings.Contains(bug.Detail, want) {
			t.Errorf("bug detail missing %q:\n%s", want, bug.Detail)
		}
	}
	if bug.Event != "rendezvous/reqC" {
		t.Errorf("bug event signature = %q, want rendezvous/reqC", bug.Event)
	}
	if !strings.Contains(rep.Key(), "@rendezvous/reqC") {
		t.Errorf("report key %q does not carry the divergence signature", rep.Key())
	}
}

// TestSeededPostmortemDivergence: identical renders but different fault
// postmortems is its own bug class.
func TestSeededPostmortemDivergence(t *testing.T) {
	a := runWithEvents("vm/opt/fused", obs.EvProcStart, obs.EvFault)
	b := runWithEvents("vm/opt/baseline", obs.EvProcStart, obs.EvFault)
	a.pm = "# dump A"
	b.pm = "# dump B"
	rep := &Report{Name: "seeded", Outcome: "ok"}
	rep.strictMatrix([]vmRun{a, b})
	if len(rep.Bugs) != 1 || rep.Bugs[0].Kind != "postmortem-divergence" {
		t.Fatalf("got %+v, want one postmortem-divergence bug", rep.Bugs)
	}
}

// TestMatrixAgreementIsQuiet: equal runs produce no bugs.
func TestMatrixAgreementIsQuiet(t *testing.T) {
	a := runWithEvents("vm/opt/fused", obs.EvProcStart, obs.EvRendezvous, obs.EvProcStop)
	b := runWithEvents("vm/opt/baseline", obs.EvProcStart, obs.EvRendezvous, obs.EvProcStop)
	rep := &Report{Name: "ok", Outcome: "ok"}
	rep.strictMatrix([]vmRun{a, b})
	if len(rep.Bugs) != 0 {
		t.Fatalf("agreeing runs produced bugs: %+v", rep.Bugs)
	}
}

// TestDivergenceSigStableUnderShrink: the signature deliberately drops
// cycle and process id — the coordinates a shrinking program perturbs —
// keeping only kind and channel, so the minimizer predicate (Key match)
// holds across shrinks.
func TestDivergenceSigStableUnderShrink(t *testing.T) {
	big := obs.Event{Seq: 90, Ts: 4096, Kind: obs.EvRendezvous, Proc: 7, Name: "reqC"}
	small := obs.Event{Seq: 2, Ts: 12, Kind: obs.EvRendezvous, Proc: 0, Name: "reqC"}
	if divergenceSig(big) != divergenceSig(small) {
		t.Errorf("signature not shrink-stable: %q vs %q", divergenceSig(big), divergenceSig(small))
	}
	if got := divergenceSig(obs.Event{Kind: obs.EvAlloc, Proc: 3}); got != "alloc/-" {
		t.Errorf("non-channel event signature = %q, want alloc/-", got)
	}
}
