package fuzz

import (
	"fmt"
	"math"
	"math/rand"

	"esplang/internal/ast"
	"esplang/internal/parser"
	"esplang/internal/token"
)

// Mutate parses src, applies n random AST mutations, and returns the
// printed result. Mutations deliberately include type- and
// protocol-breaking edits: a mutant that no longer compiles is a useful
// checker-robustness probe, and one that still compiles is a near-miss
// program for the engines. Deterministic under the seed.
func Mutate(src string, seed int64, n int) (string, error) {
	tree, err := parser.Parse([]byte(src))
	if err != nil {
		return "", fmt.Errorf("corpus program does not parse: %w", err)
	}
	mu := &mutator{r: rand.New(rand.NewSource(seed))}
	mu.collect(tree)
	for i := 0; i < n; i++ {
		mu.apply()
	}
	return ast.Print(tree), nil
}

type mutator struct {
	r *rand.Rand

	ints     []*ast.IntLit
	binaries []*ast.Binary
	blocks   []*ast.Block
	asserts  []*ast.Assert
	ifs      []*ast.If
	whiles   []*ast.While
	comms    []*ast.Comm
	channels []string
}

func (mu *mutator) collect(tree *ast.Program) {
	for _, d := range tree.Decls {
		if ch, ok := d.(*ast.ChannelDecl); ok {
			mu.channels = append(mu.channels, ch.Name.Name)
		}
	}
	ast.Walk(tree, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.InterfaceDecl:
			return false // interface patterns must stay in sync with C stubs
		case *ast.IntLit:
			mu.ints = append(mu.ints, x)
		case *ast.Binary:
			mu.binaries = append(mu.binaries, x)
		case *ast.Block:
			if len(x.Stmts) > 0 {
				mu.blocks = append(mu.blocks, x)
			}
		case *ast.Assert:
			mu.asserts = append(mu.asserts, x)
		case *ast.If:
			mu.ifs = append(mu.ifs, x)
		case *ast.While:
			if x.Cond != nil {
				mu.whiles = append(mu.whiles, x)
			}
		case *ast.Comm:
			mu.comms = append(mu.comms, x)
		}
		return true
	})
}

// opClasses groups operators so swaps stay type-plausible most of the
// time (swapping into / and % is how division-by-zero mutants appear).
var opClasses = [][]token.Kind{
	{token.ADD, token.SUB, token.MUL, token.QUO, token.REM},
	{token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ},
	{token.LAND, token.LOR},
}

func (mu *mutator) apply() {
	switch mu.r.Intn(7) {
	case 0: // integer-literal boundary tweaks
		if len(mu.ints) == 0 {
			return
		}
		lit := mu.ints[mu.r.Intn(len(mu.ints))]
		v := lit.Value
		choices := []int64{v + 1, v - 1, -v, 0, 1, math.MaxInt64, math.MinInt64, v * 3}
		lit.Value = choices[mu.r.Intn(len(choices))]
	case 1: // operator swap within its class
		if len(mu.binaries) == 0 {
			return
		}
		b := mu.binaries[mu.r.Intn(len(mu.binaries))]
		for _, class := range opClasses {
			for _, op := range class {
				if b.Op == op {
					b.Op = class[mu.r.Intn(len(class))]
					return
				}
			}
		}
	case 2: // statement delete / duplicate / swap
		if len(mu.blocks) == 0 {
			return
		}
		blk := mu.blocks[mu.r.Intn(len(mu.blocks))]
		i := mu.r.Intn(len(blk.Stmts))
		switch mu.r.Intn(3) {
		case 0:
			blk.Stmts = append(blk.Stmts[:i], blk.Stmts[i+1:]...)
		case 1:
			ns := make([]ast.Stmt, 0, len(blk.Stmts)+1)
			ns = append(ns, blk.Stmts[:i+1]...)
			ns = append(ns, blk.Stmts[i:]...)
			blk.Stmts = ns
		default:
			j := mu.r.Intn(len(blk.Stmts))
			blk.Stmts[i], blk.Stmts[j] = blk.Stmts[j], blk.Stmts[i]
		}
	case 3: // negate an assertion
		if len(mu.asserts) == 0 {
			return
		}
		a := mu.asserts[mu.r.Intn(len(mu.asserts))]
		a.X = &ast.Unary{TokPos: a.TokPos, Op: token.NOT, X: a.X}
	case 4: // swap an if's branches
		if len(mu.ifs) == 0 {
			return
		}
		s := mu.ifs[mu.r.Intn(len(mu.ifs))]
		if e, ok := s.Else.(*ast.Block); ok {
			s.Then, s.Else = e, s.Then
		}
	case 5: // negate a while condition
		if len(mu.whiles) == 0 {
			return
		}
		w := mu.whiles[mu.r.Intn(len(mu.whiles))]
		w.Cond = &ast.Unary{TokPos: w.TokPos, Op: token.NOT, X: w.Cond}
	case 6: // retarget a communication to another channel
		if len(mu.comms) == 0 || len(mu.channels) < 2 {
			return
		}
		c := mu.comms[mu.r.Intn(len(mu.comms))]
		c.Chan = &ast.Ident{NamePos: c.Chan.NamePos, Name: mu.channels[mu.r.Intn(len(mu.channels))]}
	}
}
