package fuzz

import (
	"strings"
	"testing"

	esplang "esplang"
)

// TestGenerateDeterministic: the same seed must produce the same
// program byte-for-byte — CI failures have to replay locally.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if a.Source != b.Source || a.Template != b.Template {
			t.Fatalf("seed %d: generation is not deterministic", seed)
		}
	}
}

// TestGeneratedProgramsCompile: the generator aims for well-typed
// programs by construction, so every seed must compile. (This is what
// keeps fuzz throughput on the engines instead of on the checker's
// error paths — the mutation side covers those.)
func TestGeneratedProgramsCompile(t *testing.T) {
	n := int64(400)
	if testing.Short() {
		n = 60
	}
	for seed := int64(1); seed <= n; seed++ {
		g := Generate(seed)
		if _, err := esplang.Compile(g.Source, esplang.CompileOptions{File: g.Name() + ".esp"}); err != nil {
			t.Errorf("seed %d (%s) does not compile: %v\n%s", seed, g.Template, err, g.Source)
		}
	}
}

// TestGeneratorTemplateCoverage: over a modest seed range every
// template must appear, or the dispatch weights have rotted.
func TestGeneratorTemplateCoverage(t *testing.T) {
	seen := map[string]bool{}
	for seed := int64(1); seed <= 200; seed++ {
		seen[Generate(seed).Template] = true
	}
	for _, want := range []string{"pipeline", "open-pipeline", "merge", "fanout", "dispatch", "ownership", "ring"} {
		if !seen[want] {
			t.Errorf("template %q never generated in 200 seeds", want)
		}
	}
}

// TestDifferentialSweep is the in-tree slice of the espfuzz run: every
// generated program must pass the full oracle with zero bugs.
func TestDifferentialSweep(t *testing.T) {
	n := int64(150)
	if testing.Short() {
		n = 30
	}
	opts := Options{MCMaxStates: 2000, MCMaxDepth: 2000}
	for seed := int64(1); seed <= n; seed++ {
		g := Generate(seed)
		rep := RunDifferential(g.Name(), g.Source, opts)
		if rep.Failed() {
			t.Errorf("seed %d:\n%s", seed, rep)
		}
		if rep.Outcome == "parse-error" || rep.Outcome == "compile-error" {
			t.Errorf("seed %d: generated program classified %s", seed, rep.Outcome)
		}
	}
}

// TestMutateDeterministic: same seed, same mutant.
func TestMutateDeterministic(t *testing.T) {
	src := Generate(3).Source
	a, errA := Mutate(src, 99, 3)
	b, errB := Mutate(src, 99, 3)
	if errA != nil || errB != nil {
		t.Fatalf("mutate failed: %v / %v", errA, errB)
	}
	if a != b {
		t.Fatalf("mutation is not deterministic")
	}
}

// TestMutantsNeverBreakOracle: mutants may fail to compile or fault —
// those are outcomes, not bugs — but they must never make the oracle
// itself report a toolchain divergence or panic.
func TestMutantsNeverBreakOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("mutant sweep is slow")
	}
	opts := Options{MCMaxStates: 1000, MCMaxDepth: 1000}
	for _, base := range []int64{5, 23} {
		src := Generate(base).Source
		for m := int64(0); m < 20; m++ {
			mut, err := Mutate(src, base*1000+m, 1+int(m%3))
			if err != nil {
				t.Fatalf("mutate: %v", err)
			}
			rep := RunDifferential("mut", mut, opts)
			if rep.Failed() {
				t.Errorf("mutant (base %d, seed %d):\n%s\n--- mutant ---\n%s", base, m, rep, mut)
			}
		}
	}
}

// TestMinimize: delta debugging must shrink a known-faulty program while
// preserving its failure signature, and the result must still trip the
// keep predicate.
func TestMinimize(t *testing.T) {
	src := `channel c: int

process a {
    $v = 1;
    $w = v + 2;
    assert( w == 3);
    out( c, w);
    assert( false);
}

process b {
    $n = 0;
    while (n < 1) {
        in( c, $x);
        n = n + 1;
    }
}
`
	keep := func(cand string) bool {
		rep := RunDifferential("min", cand, Options{SkipMC: true})
		return rep.Outcome == "fault:assertion failure"
	}
	if !keep(src) {
		t.Fatal("seed program does not trip the keep predicate")
	}
	min := Minimize(src, keep, 500)
	if !keep(min) {
		t.Fatalf("minimized program lost the failure:\n%s", min)
	}
	if len(min) >= len(src) {
		t.Errorf("minimization did not shrink the program (%d -> %d bytes)", len(src), len(min))
	}
	// The spurious arithmetic should be gone entirely.
	if strings.Contains(min, "w == 3") {
		t.Errorf("tautological assert survived minimization:\n%s", min)
	}
}

// TestReportKey: the failure signature is stable, sorted, and
// deduplicated — the minimizer relies on it.
func TestReportKey(t *testing.T) {
	r := &Report{}
	r.addBug("b-kind", "stage2", "x")
	r.addBug("a-kind", "stage1", "y")
	r.addBug("b-kind", "stage2", "z")
	if got, want := r.Key(), "a-kind/stage1,b-kind/stage2"; got != want {
		t.Errorf("Key() = %q, want %q", got, want)
	}
	if (&Report{}).Failed() {
		t.Error("empty report reports failure")
	}
}

// TestOutcomeClassification: the benign labels the fuzzer tallies.
func TestOutcomeClassification(t *testing.T) {
	cases := []struct{ render, want string }{
		{"result: halted\nfault: none\n", "halt"},
		{"result: idle\nfault: none\n", "idle"},
		{"result: fault\nfault: assertion failure in process p at f.esp:1:1: x\n", "fault:assertion failure"},
		{"result: fault\nfault: step budget exhausted in process p at f.esp:1:1: x\n", "fault:step budget exhausted"},
	}
	for _, c := range cases {
		if got := outcomeOf(c.render); got != c.want {
			t.Errorf("outcomeOf(%q) = %q, want %q", c.render, got, c.want)
		}
	}
}

// TestFaultMsgOnly: location attribution is stripped, kind and message
// survive — the opt-vs-noopt comparison depends on exactly this.
func TestFaultMsgOnly(t *testing.T) {
	in := "fault: use after free in process p17 at x.esp:43:9: link of freed object obj1"
	want := "fault: use after free: link of freed object obj1"
	if got := faultMsgOnly(in); got != want {
		t.Errorf("faultMsgOnly = %q, want %q", got, want)
	}
	if got := faultMsgOnly("fault: none"); got != "fault: none" {
		t.Errorf("faultMsgOnly mangled a clean line: %q", got)
	}
}
