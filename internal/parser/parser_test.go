package parser

import (
	"strings"
	"testing"

	"esplang/internal/ast"
)

func parseOK(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	return prog
}

func TestParseAdd5(t *testing.T) {
	prog := parseOK(t, `
channel chan1: int
channel chan2: int
process add5 {
    while (true) {
        in( chan1, $i);
        out( chan2, i+5);
    }
}
`)
	if len(prog.Decls) != 3 {
		t.Fatalf("got %d decls, want 3", len(prog.Decls))
	}
	p, ok := prog.Decls[2].(*ast.ProcessDecl)
	if !ok {
		t.Fatalf("decl 2 is %T, want *ProcessDecl", prog.Decls[2])
	}
	if p.Name.Name != "add5" {
		t.Errorf("process name %q, want add5", p.Name.Name)
	}
	w, ok := p.Body.Stmts[0].(*ast.While)
	if !ok {
		t.Fatalf("first stmt is %T, want *While", p.Body.Stmts[0])
	}
	if len(w.Body.Stmts) != 2 {
		t.Fatalf("while body has %d stmts, want 2", len(w.Body.Stmts))
	}
	recv, ok := w.Body.Stmts[0].(*ast.Comm)
	if !ok || recv.Dir != ast.Recv {
		t.Fatalf("stmt 0 = %#v, want in comm", w.Body.Stmts[0])
	}
	if _, ok := recv.Arg.(*ast.Binding); !ok {
		t.Errorf("in pattern is %T, want *Binding", recv.Arg)
	}
}

func TestParseTypes(t *testing.T) {
	prog := parseOK(t, `
type sendT = record of { dest: int, vAddr: int, size: int}
type updateT = record of { vAddr: int, pAddr: int}
type userT = union of { send: sendT, update: updateT}
type dataT = array of int
type tblT = #array of int [64]
`)
	if len(prog.Decls) != 5 {
		t.Fatalf("got %d decls, want 5", len(prog.Decls))
	}
	rt := prog.Decls[0].(*ast.TypeDecl).Type.(*ast.RecordType)
	if len(rt.Fields) != 3 || rt.Fields[0].Name.Name != "dest" {
		t.Errorf("sendT fields wrong: %+v", rt.Fields)
	}
	ut := prog.Decls[2].(*ast.TypeDecl).Type.(*ast.UnionType)
	if len(ut.Fields) != 2 {
		t.Errorf("userT fields wrong: %+v", ut.Fields)
	}
	at := prog.Decls[4].(*ast.TypeDecl).Type.(*ast.ArrayType)
	if !at.Mutable || at.Bound != 64 {
		t.Errorf("tblT = %+v, want mutable bound 64", at)
	}
}

func TestParseTypeEllipsisFields(t *testing.T) {
	// The paper writes "union of { send: sendT, update: updateT, ...}".
	prog := parseOK(t, `type userT = union of { send: int, update: bool, ...}`)
	ut := prog.Decls[0].(*ast.TypeDecl).Type.(*ast.UnionType)
	if len(ut.Fields) != 2 {
		t.Errorf("got %d fields, want 2", len(ut.Fields))
	}
}

func TestParseCompositeLiterals(t *testing.T) {
	tests := []struct {
		src  string
		want string // printed form
	}{
		{"{ 7, 54677, 1024}", "{ 7, 54677, 1024}"},
		{"{ send |> sr}", "{ send |> sr}"},
		{"{ send |> { 5, 10000, 512}}", "{ send |> { 5, 10000, 512}}"},
		{"#{ 64 -> 0, ... }", "#{ 64 -> 0}"},
		{"{ TABLE_SIZE -> 0 }", "{ TABLE_SIZE -> 0}"},
		{"{ @, vAddr}", "{ @, vAddr}"},
		{"{ send |> { $dest, $vAddr, $size}}", "{ send |> { $dest, $vAddr, $size}}"},
	}
	for _, tt := range tests {
		e, err := ParseExpr(tt.src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", tt.src, err)
			continue
		}
		if got := ast.PrintExpr(e); got != tt.want {
			t.Errorf("ParseExpr(%q) prints %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	tests := []struct {
		src, want string
	}{
		{"1 + 2 * 3", "1 + 2 * 3"},
		{"(1 + 2) * 3", "(1 + 2) * 3"},
		{"a && b || c", "a && b || c"},
		{"a || b && c", "a || b && c"},
		{"!a && b", "!a && b"},
		{"!(a && b)", "!(a && b)"},
		{"-a + b", "-a + b"},
		{"a == b + 1", "a == b + 1"},
		{"a[i].f + 1", "a[i].f + 1"},
	}
	for _, tt := range tests {
		e, err := ParseExpr(tt.src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", tt.src, err)
			continue
		}
		if got := ast.PrintExpr(e); got != tt.want {
			t.Errorf("ParseExpr(%q) prints %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestParseAlt(t *testing.T) {
	prog := parseOK(t, `
channel chan1: int
channel chan2: int
process fifo {
    $hd = 0;
    $tl = 0;
    $q: #array of int = #{ 8 -> 0};
    while (true) {
        alt {
            case( !(tl - hd == 8), in( chan1, $v)) { q[tl % 8] = v; tl = tl + 1; }
            case( !(tl == hd), out( chan2, q[hd % 8])) { hd = hd + 1; }
        }
    }
}
`)
	p := prog.Decls[2].(*ast.ProcessDecl)
	w := p.Body.Stmts[3].(*ast.While)
	a := w.Body.Stmts[0].(*ast.Alt)
	if len(a.Cases) != 2 {
		t.Fatalf("alt has %d cases, want 2", len(a.Cases))
	}
	if a.Cases[0].Guard == nil || a.Cases[1].Guard == nil {
		t.Error("alt guards missing")
	}
	if a.Cases[0].Comm.Dir != ast.Recv || a.Cases[1].Comm.Dir != ast.Send {
		t.Error("alt case directions wrong")
	}
}

func TestParseAltWithoutGuard(t *testing.T) {
	prog := parseOK(t, `
channel c: int
process p {
    alt {
        case( in( c, $v)) { skip; }
    }
}
`)
	a := prog.Decls[1].(*ast.ProcessDecl).Body.Stmts[0].(*ast.Alt)
	if a.Cases[0].Guard != nil {
		t.Error("expected nil guard")
	}
}

func TestParseInterface(t *testing.T) {
	prog := parseOK(t, `
type userT = union of { send: int, update: bool}
channel userReqC: userT external writer
interface userReq( out userReqC) {
    Send( { send |> $v}),
    Update( { update |> $b}),
}
`)
	ch := prog.Decls[1].(*ast.ChannelDecl)
	if ch.Ext != ast.ExtWriter {
		t.Errorf("channel ext = %v, want external writer", ch.Ext)
	}
	ifc := prog.Decls[2].(*ast.InterfaceDecl)
	if len(ifc.Cases) != 2 || ifc.Cases[0].Name.Name != "Send" {
		t.Errorf("interface cases wrong: %+v", ifc.Cases)
	}
}

func TestParsePaperAppendixB(t *testing.T) {
	// Essentially Appendix B of the paper, adjusted only for the documented
	// syntax clarifications (|> for the OCR'd "I>").
	src := `
type dataT = array of int
type sendT = record of { dest: int, vAddr: int, size: int}
type updateT = record of { vAddr: int, pAddr: int}
type userT = union of { send: sendT, update: updateT}

const TABLE_SIZE = 16;

channel ptReqC: record of { ret: int, vAddr: int}
channel ptReplyC: record of { ret: int, pAddr: int}
channel dmaReqC: record of { ret: int, pAddr: int, size: int}
channel dmaDataC: record of { ret: int, data: dataT}
channel SM2C: record of { dest: int, data: dataT}
channel userReqC: userT external writer

process pageTable {
    $table: #array of int = #{ TABLE_SIZE -> 0, ... };
    while (true) {
        alt {
            case( in( ptReqC, { $ret, $vAddr})) {
                out( ptReplyC, { ret, table[vAddr]});
            }
            case( in( userReqC, { update |> { $vAddr, $pAddr}})) {
                table[vAddr] = pAddr;
            }
        }
    }
}

process SM1 {
    while (true) {
        in( userReqC, { send |> { $dest, $vAddr, $size}});
        out( ptReqC, { @, vAddr});
        in( ptReplyC, { @, $pAddr});
        out( dmaReqC, { @, pAddr, size});
        in( dmaDataC, { @, $sendData});
        out( SM2C, { dest, sendData});
        unlink( sendData);
    }
}
`
	prog := parseOK(t, src)
	var procs, chans int
	for _, d := range prog.Decls {
		switch d.(type) {
		case *ast.ProcessDecl:
			procs++
		case *ast.ChannelDecl:
			chans++
		}
	}
	if procs != 2 || chans != 6 {
		t.Errorf("got %d processes and %d channels, want 2 and 6", procs, chans)
	}
}

func TestPrintRoundTrip(t *testing.T) {
	src := `
type sendT = record of { dest: int, vAddr: int, size: int}
const N = 4;
channel c: sendT
channel d: int external reader
process p {
    $x: int = 7;
    $b = true;
    if (x > 3) {
        out( c, { x, 0, 1});
    } else {
        skip;
    }
    while (b) {
        in( d, $y);
        x = x + y;
        if (x > 100) {
            break;
        }
    }
    assert( x >= 7);
}
`
	prog := parseOK(t, src)
	printed := ast.Print(prog)
	prog2, err := Parse([]byte(printed))
	if err != nil {
		t.Fatalf("reparse of printed program failed: %v\nprinted:\n%s", err, printed)
	}
	printed2 := ast.Print(prog2)
	if printed != printed2 {
		t.Errorf("print not stable:\nfirst:\n%s\nsecond:\n%s", printed, printed2)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []string{
		"process p {",                      // unterminated block
		"process p { in(c); }",             // missing pattern
		"type t = record of { x int }",     // missing colon
		"channel c: int external bogus",    // bad external dir
		"process p { alt { } }",            // empty alt
		"process p { x + 1; }",             // expression is not a statement
		"process p { $x = ; }",             // missing initializer
		"bogus",                            // not a declaration
		"process p { out(c, {}); }",        // empty composite
		"interface i( sideways c) { A(x)}", // bad direction
	}
	for _, src := range tests {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("Parse(%q): expected error, got none", src)
		}
	}
}

func TestParseErrorMentionsPosition(t *testing.T) {
	_, err := Parse([]byte("process p {\n  $x = ;\n}"))
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error %q does not mention line 2", err)
	}
}

func TestParserRecoversAcrossDecls(t *testing.T) {
	// An error in the first process must not prevent parsing the second.
	prog, err := Parse([]byte(`
process bad { ??? }
process good { skip; }
`))
	if err == nil {
		t.Fatal("expected error from bad process")
	}
	var names []string
	for _, d := range prog.Decls {
		if p, ok := d.(*ast.ProcessDecl); ok {
			names = append(names, p.Name.Name)
		}
	}
	found := false
	for _, n := range names {
		if n == "good" {
			found = true
		}
	}
	if !found {
		t.Errorf("recovery failed; parsed processes: %v", names)
	}
}

func TestWhileSugar(t *testing.T) {
	// "while { ... }" is sugar for while(true) (§4.2 FIFO example).
	prog := parseOK(t, `
channel c: int
process p {
    while {
        in( c, $v);
    }
}
`)
	w := prog.Decls[1].(*ast.ProcessDecl).Body.Stmts[0].(*ast.While)
	if w.Cond != nil {
		t.Error("while{} should have nil condition")
	}
}

func TestParseIntBoundaryLiterals(t *testing.T) {
	// The most negative int64 literal must parse: its magnitude does not
	// fit in int64 on its own, so sign and magnitude parse as one value.
	prog := parseOK(t, `
const MIN = -9223372036854775808;
const MAX = 9223372036854775807;
channel c: int external reader
process p {
    $x: int = -9223372036854775808;
    $y = 9223372036854775807;
    $z = -9223372036854775807;
    out( c, x + y + z);
}
`)
	mn := prog.Decls[0].(*ast.ConstDecl)
	if mn.Value != -9223372036854775808 {
		t.Errorf("const MIN = %d, want int64 min", mn.Value)
	}
	mx := prog.Decls[1].(*ast.ConstDecl)
	if mx.Value != 9223372036854775807 {
		t.Errorf("const MAX = %d, want int64 max", mx.Value)
	}
	body := prog.Decls[3].(*ast.ProcessDecl).Body
	x := body.Stmts[0].(*ast.VarDecl).Init.(*ast.IntLit)
	if x.Value != -9223372036854775808 {
		t.Errorf("$x initializer = %d, want int64 min", x.Value)
	}
	// In-range negative literals keep their Unary(-IntLit) shape, so the
	// optimizer and cost model see the same tree as before.
	z := body.Stmts[2].(*ast.VarDecl).Init.(*ast.Unary)
	if lit := z.X.(*ast.IntLit); lit.Value != 9223372036854775807 {
		t.Errorf("$z operand = %d, want int64 max", lit.Value)
	}
}

func TestParseIntOutOfRangeLiterals(t *testing.T) {
	// One past either boundary is rejected, not wrapped.
	for _, src := range []string{
		"process p { $x = 9223372036854775808; }",
		"process p { $x = -9223372036854775809; }",
		"const N = 9223372036854775808;\nprocess p { skip; }",
		"const N = -9223372036854775809;\nprocess p { skip; }",
		"process p { $x = 1 - 9223372036854775808; }",
	} {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestPrintRoundTripIntMin(t *testing.T) {
	src := "process p {\n    $x = -9223372036854775808;\n    assert( x < 0);\n}\n"
	prog := parseOK(t, src)
	once := ast.Print(prog)
	prog2, err := Parse([]byte(once))
	if err != nil {
		t.Fatalf("printed form does not reparse: %v\n%s", err, once)
	}
	if twice := ast.Print(prog2); once != twice {
		t.Errorf("printer not a fixpoint on int64 min:\n%s\n%s", once, twice)
	}
}
