// Package parser implements a recursive-descent parser for ESP source.
//
// The grammar follows the paper's examples (PLDI 2001, §4 and Appendix B)
// with the small clarifications documented in the repository README:
//
//	program   = { typeDecl | constDecl | channelDecl | interfaceDecl | processDecl } .
//	typeDecl  = "type" IDENT "=" type .
//	constDecl = "const" IDENT "=" ["-"] INT ";" .
//	channelDecl = "channel" IDENT ":" type [ "external" ("reader"|"writer") ] .
//	interfaceDecl = "interface" IDENT "(" ("in"|"out") IDENT ")"
//	                "{" IDENT "(" pattern ")" { "," IDENT "(" pattern ")" } [","] "}" .
//	processDecl = "process" IDENT block .
//	type      = ["#"] ( "int" | "bool" | IDENT
//	          | "record" "of" "{" fields "}"
//	          | "union"  "of" "{" fields "}"
//	          | "array"  "of" type [ "[" INT "]" ] ) .
//	stmt      = varDecl | assign | while | if | alt | comm ";" | link ";"
//	          | unlink ";" | assert ";" | "skip" ";" | "break" ";" | block .
//
// Expressions use C precedence; composite literals distinguish records
// "{e, e}", unions "{f |> e}", and arrays "{n -> e [, ...]}" by one-token
// lookahead after the first element.
package parser

import (
	"errors"
	"fmt"
	"strconv"

	"esplang/internal/ast"
	"esplang/internal/diag"
	"esplang/internal/lexer"
	"esplang/internal/token"
)

// Error is a syntax error with its source position — the shared compiler
// diagnostic, so syntax errors render with caret excerpts.
type Error = diag.Diagnostic

// ErrorList is a list of syntax errors implementing error.
type ErrorList = diag.List

// maxErrors bounds error accumulation before the parser bails out.
const maxErrors = 20

// bailout is panicked when too many errors accumulate.
var bailout = errors.New("too many errors")

// Parse parses a complete ESP program. On failure it returns the partial
// tree and an ErrorList.
func Parse(src []byte) (*ast.Program, error) {
	p := &parser{lex: lexer.New(src)}
	p.next()
	prog := &ast.Program{}
	func() {
		defer func() {
			if r := recover(); r != nil && r != bailout { //nolint:errorlint // sentinel identity
				panic(r)
			}
		}()
		for p.tok.Kind != token.EOF {
			d := p.decl()
			if d != nil {
				prog.Decls = append(prog.Decls, d)
			}
		}
	}()
	for _, le := range p.lex.Errors() {
		p.errs = append(p.errs, &Error{Pos: le.Pos, Msg: le.Msg})
	}
	if len(p.errs) > 0 {
		return prog, p.errs
	}
	return prog, nil
}

// ParseExpr parses a single expression (used by tests and tools).
func ParseExpr(src string) (ast.Expr, error) {
	p := &parser{lex: lexer.New([]byte(src))}
	p.next()
	var e ast.Expr
	func() {
		defer func() {
			if r := recover(); r != nil && r != bailout { //nolint:errorlint // sentinel identity
				panic(r)
			}
		}()
		e = p.expr()
		p.expect(token.EOF)
	}()
	if len(p.errs) > 0 {
		return e, p.errs
	}
	return e, nil
}

type parser struct {
	lex  *lexer.Lexer
	tok  token.Token
	errs ErrorList
}

func (p *parser) next() { p.tok = p.lex.Next() }

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	if len(p.errs) >= maxErrors {
		panic(bailout)
	}
}

func (p *parser) expect(k token.Kind) token.Token {
	t := p.tok
	if t.Kind != k {
		p.errorf(t.Pos, "expected %q, found %s", k.String(), t)
		// Do not consume: let callers resynchronize.
		return token.Token{Kind: k, Pos: t.Pos}
	}
	p.next()
	return t
}

func (p *parser) accept(k token.Kind) bool {
	if p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) ident() *ast.Ident {
	t := p.expect(token.IDENT)
	return &ast.Ident{NamePos: t.Pos, Name: t.Lit}
}

// sync skips tokens until a likely declaration start, for error recovery.
func (p *parser) sync() {
	for {
		switch p.tok.Kind {
		case token.EOF, token.TYPE, token.CHANNEL, token.PROCESS, token.INTERFACE, token.CONST:
			return
		}
		p.next()
	}
}

// ---------------------------------------------------------------------------
// Declarations

func (p *parser) decl() ast.Decl {
	switch p.tok.Kind {
	case token.TYPE:
		return p.typeDecl()
	case token.CONST:
		return p.constDecl()
	case token.CHANNEL:
		return p.channelDecl()
	case token.INTERFACE:
		return p.interfaceDecl()
	case token.PROCESS:
		return p.processDecl()
	default:
		p.errorf(p.tok.Pos, "expected declaration, found %s", p.tok)
		p.sync()
		return nil
	}
}

func (p *parser) typeDecl() *ast.TypeDecl {
	pos := p.expect(token.TYPE).Pos
	name := p.ident()
	p.expect(token.ASSIGN)
	t := p.typeExpr()
	p.accept(token.SEMICOLON) // optional after type decls
	return &ast.TypeDecl{TokPos: pos, Name: name, Type: t}
}

func (p *parser) constDecl() *ast.ConstDecl {
	pos := p.expect(token.CONST).Pos
	name := p.ident()
	p.expect(token.ASSIGN)
	neg := p.accept(token.SUB)
	t := p.expect(token.INT)
	// Parse sign and magnitude as one value: the most negative int64's
	// magnitude does not fit on its own, so negating after ParseInt would
	// reject "const MIN = -9223372036854775808;".
	lit := t.Lit
	if neg {
		lit = "-" + lit
	}
	v, err := strconv.ParseInt(lit, 10, 64)
	if err != nil {
		p.errorf(t.Pos, "invalid integer literal %q", lit)
	}
	p.expect(token.SEMICOLON)
	return &ast.ConstDecl{TokPos: pos, Name: name, Value: v}
}

func (p *parser) channelDecl() *ast.ChannelDecl {
	pos := p.expect(token.CHANNEL).Pos
	name := p.ident()
	p.expect(token.COLON)
	t := p.typeExpr()
	ext := ast.ExtNone
	if p.accept(token.EXTERNAL) {
		switch p.tok.Kind {
		case token.READER:
			ext = ast.ExtReader
			p.next()
		case token.WRITER:
			ext = ast.ExtWriter
			p.next()
		default:
			p.errorf(p.tok.Pos, "expected 'reader' or 'writer' after 'external', found %s", p.tok)
		}
	}
	p.accept(token.SEMICOLON)
	return &ast.ChannelDecl{TokPos: pos, Name: name, Elem: t, Ext: ext}
}

func (p *parser) interfaceDecl() *ast.InterfaceDecl {
	pos := p.expect(token.INTERFACE).Pos
	name := p.ident()
	p.expect(token.LPAREN)
	dir := p.tok.Kind
	if dir != token.IN && dir != token.OUT {
		p.errorf(p.tok.Pos, "expected 'in' or 'out' in interface declaration, found %s", p.tok)
		dir = token.OUT
	} else {
		p.next()
	}
	ch := p.ident()
	p.expect(token.RPAREN)
	p.expect(token.LBRACE)
	var cases []ast.IfaceCase
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		cn := p.ident()
		p.expect(token.LPAREN)
		pat := p.expr()
		p.expect(token.RPAREN)
		cases = append(cases, ast.IfaceCase{Name: cn, Pattern: pat})
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RBRACE)
	return &ast.InterfaceDecl{TokPos: pos, Name: name, Dir: dir, Chan: ch, Cases: cases}
}

func (p *parser) processDecl() *ast.ProcessDecl {
	pos := p.expect(token.PROCESS).Pos
	name := p.ident()
	body := p.block()
	return &ast.ProcessDecl{TokPos: pos, Name: name, Body: body}
}

// ---------------------------------------------------------------------------
// Types

func (p *parser) typeExpr() ast.TypeExpr {
	pos := p.tok.Pos
	mutable := p.accept(token.HASH)
	switch p.tok.Kind {
	case token.INTTYPE, token.BOOLTYPE:
		k := p.tok.Kind
		if mutable {
			p.errorf(pos, "primitive types cannot be mutable ('#')")
		}
		p.next()
		return &ast.PrimType{TokPos: pos, Kind: k}
	case token.IDENT:
		if mutable {
			p.errorf(pos, "'#' applies to record/union/array type literals, not type names")
		}
		t := p.tok
		p.next()
		return &ast.NamedType{NamePos: t.Pos, Name: t.Lit}
	case token.RECORD:
		p.next()
		p.expect(token.OF)
		fields := p.fieldList()
		return &ast.RecordType{TokPos: pos, Mutable: mutable, Fields: fields}
	case token.UNION:
		p.next()
		p.expect(token.OF)
		fields := p.fieldList()
		return &ast.UnionType{TokPos: pos, Mutable: mutable, Fields: fields}
	case token.ARRAY:
		p.next()
		p.expect(token.OF)
		elem := p.typeExpr()
		var bound int64
		if p.accept(token.LBRACK) {
			t := p.expect(token.INT)
			v, err := strconv.ParseInt(t.Lit, 10, 64)
			if err != nil || v <= 0 {
				p.errorf(t.Pos, "array bound must be a positive integer, got %q", t.Lit)
			}
			bound = v
			p.expect(token.RBRACK)
		}
		return &ast.ArrayType{TokPos: pos, Mutable: mutable, Elem: elem, Bound: bound}
	default:
		p.errorf(p.tok.Pos, "expected type, found %s", p.tok)
		p.next()
		return &ast.PrimType{TokPos: pos, Kind: token.INTTYPE}
	}
}

func (p *parser) fieldList() []ast.FieldDef {
	p.expect(token.LBRACE)
	var fields []ast.FieldDef
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		if p.accept(token.ELLIPSIS) { // the paper elides trailing fields with "..."
			break
		}
		name := p.ident()
		p.expect(token.COLON)
		t := p.typeExpr()
		fields = append(fields, ast.FieldDef{Name: name, Type: t})
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RBRACE)
	return fields
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) block() *ast.Block {
	pos := p.expect(token.LBRACE).Pos
	b := &ast.Block{TokPos: pos}
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		b.Stmts = append(b.Stmts, p.stmt())
	}
	p.expect(token.RBRACE)
	return b
}

func (p *parser) stmt() ast.Stmt {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case token.WHILE:
		p.next()
		var cond ast.Expr
		if p.accept(token.LPAREN) {
			cond = p.expr()
			p.expect(token.RPAREN)
		}
		body := p.block()
		return &ast.While{TokPos: pos, Cond: cond, Body: body}
	case token.IF:
		return p.ifStmt()
	case token.ALT:
		return p.altStmt()
	case token.IN, token.OUT:
		c := p.commOp()
		p.expect(token.SEMICOLON)
		return c
	case token.LINK:
		p.next()
		p.expect(token.LPAREN)
		x := p.expr()
		p.expect(token.RPAREN)
		p.expect(token.SEMICOLON)
		return &ast.Link{TokPos: pos, X: x}
	case token.UNLINK:
		p.next()
		p.expect(token.LPAREN)
		x := p.expr()
		p.expect(token.RPAREN)
		p.expect(token.SEMICOLON)
		return &ast.Unlink{TokPos: pos, X: x}
	case token.ASSERT:
		p.next()
		p.expect(token.LPAREN)
		x := p.expr()
		p.expect(token.RPAREN)
		p.expect(token.SEMICOLON)
		return &ast.Assert{TokPos: pos, X: x}
	case token.SKIP:
		p.next()
		p.expect(token.SEMICOLON)
		return &ast.Skip{TokPos: pos}
	case token.BREAK:
		p.next()
		p.expect(token.SEMICOLON)
		return &ast.BreakStmt{TokPos: pos}
	case token.DOLLAR:
		p.next()
		name := p.ident()
		var t ast.TypeExpr
		if p.accept(token.COLON) {
			t = p.typeExpr()
		}
		p.expect(token.ASSIGN)
		init := p.expr()
		p.expect(token.SEMICOLON)
		return &ast.VarDecl{TokPos: pos, Name: name, Type: t, Init: init}
	default:
		// Assignment or pattern-match statement: lhs "=" rhs ";".
		lhs := p.expr()
		if p.tok.Kind != token.ASSIGN {
			p.errorf(p.tok.Pos, "expected statement, found %s after expression", p.tok)
			// Swallow the offending token to guarantee progress.
			if p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
				p.next()
			}
			return &ast.Skip{TokPos: pos}
		}
		p.next()
		rhs := p.expr()
		p.expect(token.SEMICOLON)
		return &ast.Assign{TokPos: pos, LHS: lhs, RHS: rhs}
	}
}

func (p *parser) ifStmt() *ast.If {
	pos := p.expect(token.IF).Pos
	p.expect(token.LPAREN)
	cond := p.expr()
	p.expect(token.RPAREN)
	then := p.block()
	var els ast.Stmt
	if p.accept(token.ELSE) {
		if p.tok.Kind == token.IF {
			els = p.ifStmt()
		} else {
			els = p.block()
		}
	}
	return &ast.If{TokPos: pos, Cond: cond, Then: then, Else: els}
}

func (p *parser) altStmt() *ast.Alt {
	pos := p.expect(token.ALT).Pos
	p.expect(token.LBRACE)
	a := &ast.Alt{TokPos: pos}
	for p.tok.Kind == token.CASE {
		cpos := p.tok.Pos
		p.next()
		p.expect(token.LPAREN)
		var guard ast.Expr
		var comm *ast.Comm
		if p.tok.Kind == token.IN || p.tok.Kind == token.OUT {
			comm = p.commOp()
		} else {
			guard = p.expr()
			p.expect(token.COMMA)
			comm = p.commOp()
		}
		p.expect(token.RPAREN)
		body := p.block()
		a.Cases = append(a.Cases, &ast.AltCase{TokPos: cpos, Guard: guard, Comm: comm, Body: body})
	}
	p.expect(token.RBRACE)
	if len(a.Cases) == 0 {
		p.errorf(pos, "alt statement requires at least one case")
	}
	return a
}

func (p *parser) commOp() *ast.Comm {
	pos := p.tok.Pos
	dir := ast.Recv
	if p.tok.Kind == token.OUT {
		dir = ast.Send
	} else if p.tok.Kind != token.IN {
		p.errorf(pos, "expected 'in' or 'out', found %s", p.tok)
	}
	p.next()
	p.expect(token.LPAREN)
	ch := p.ident()
	p.expect(token.COMMA)
	arg := p.expr()
	p.expect(token.RPAREN)
	return &ast.Comm{TokPos: pos, Dir: dir, Chan: ch, Arg: arg}
}

// ---------------------------------------------------------------------------
// Expressions

// fitsInt64 reports whether a decimal integer literal parses as int64.
func fitsInt64(lit string) bool {
	_, err := strconv.ParseInt(lit, 10, 64)
	return err == nil
}

func (p *parser) expr() ast.Expr { return p.binaryExpr(1) }

func (p *parser) binaryExpr(minPrec int) ast.Expr {
	x := p.unaryExpr()
	for {
		op := p.tok.Kind
		prec := op.Precedence()
		if prec < minPrec {
			return x
		}
		pos := p.tok.Pos
		p.next()
		y := p.binaryExpr(prec + 1)
		x = &ast.Binary{TokPos: pos, Op: op, X: x, Y: y}
	}
}

func (p *parser) unaryExpr() ast.Expr {
	switch p.tok.Kind {
	case token.NOT, token.SUB:
		pos := p.tok.Pos
		op := p.tok.Kind
		p.next()
		if op == token.SUB && p.tok.Kind == token.INT {
			// A minus-adjacent integer literal whose magnitude overflows
			// int64 is parsed as one (negative) value, so the boundary
			// literal -9223372036854775808 is expressible. In-range
			// literals keep their Unary(-IntLit) shape.
			if lit := p.tok.Lit; !fitsInt64(lit) {
				t := p.tok
				p.next()
				v, err := strconv.ParseInt("-"+lit, 10, 64)
				if err != nil {
					p.errorf(t.Pos, "invalid integer literal %q", "-"+lit)
				}
				return &ast.IntLit{TokPos: pos, Value: v}
			}
		}
		return &ast.Unary{TokPos: pos, Op: op, X: p.unaryExpr()}
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() ast.Expr {
	x := p.primaryExpr()
	for {
		switch p.tok.Kind {
		case token.LBRACK:
			pos := p.tok.Pos
			p.next()
			i := p.expr()
			p.expect(token.RBRACK)
			x = &ast.Index{TokPos: pos, X: x, I: i}
		case token.DOT:
			pos := p.tok.Pos
			p.next()
			name := p.ident()
			x = &ast.FieldSel{TokPos: pos, X: x, Name: name}
		default:
			return x
		}
	}
}

func (p *parser) primaryExpr() ast.Expr {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case token.INT:
		t := p.tok
		p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid integer literal %q", t.Lit)
		}
		return &ast.IntLit{TokPos: pos, Value: v}
	case token.TRUE:
		p.next()
		return &ast.BoolLit{TokPos: pos, Value: true}
	case token.FALSE:
		p.next()
		return &ast.BoolLit{TokPos: pos, Value: false}
	case token.AT:
		p.next()
		return &ast.Self{TokPos: pos}
	case token.DOLLAR:
		p.next()
		name := p.ident()
		return &ast.Binding{TokPos: pos, Name: name}
	case token.IDENT:
		t := p.tok
		if t.Lit == "_" {
			p.next()
			return &ast.Wildcard{TokPos: pos}
		}
		p.next()
		return &ast.Ident{NamePos: pos, Name: t.Lit}
	case token.MUTABLE, token.IMMUTABLE:
		toMut := p.tok.Kind == token.MUTABLE
		p.next()
		p.expect(token.LPAREN)
		x := p.expr()
		p.expect(token.RPAREN)
		return &ast.Cast{TokPos: pos, ToMutable: toMut, X: x}
	case token.LPAREN:
		p.next()
		x := p.expr()
		p.expect(token.RPAREN)
		return x
	case token.HASH:
		p.next()
		if p.tok.Kind != token.LBRACE {
			p.errorf(p.tok.Pos, "expected composite literal after '#', found %s", p.tok)
			return &ast.IntLit{TokPos: pos}
		}
		return p.compositeLit(pos, true)
	case token.LBRACE:
		return p.compositeLit(pos, false)
	default:
		p.errorf(pos, "expected expression, found %s", p.tok)
		if p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF &&
			p.tok.Kind != token.SEMICOLON && p.tok.Kind != token.RPAREN {
			p.next()
		}
		return &ast.IntLit{TokPos: pos}
	}
}

// compositeLit parses "{...}" after an optional '#'. It distinguishes
// union literals "{ f |> e }", array literals "{ n -> e [, ...] }", and
// record literals "{ e, e, ... }" by the token following the first element.
func (p *parser) compositeLit(pos token.Pos, mutable bool) ast.Expr {
	p.expect(token.LBRACE)
	if p.accept(token.RBRACE) {
		p.errorf(pos, "empty composite literal")
		return &ast.RecordLit{TokPos: pos, Mutable: mutable}
	}
	first := p.expr()

	switch p.tok.Kind {
	case token.PIPEGT:
		p.next()
		id, ok := first.(*ast.Ident)
		if !ok {
			p.errorf(first.Pos(), "union field name must be an identifier")
			id = &ast.Ident{NamePos: first.Pos(), Name: "_invalid"}
		}
		val := p.expr()
		p.expect(token.RBRACE)
		return &ast.UnionLit{TokPos: pos, Mutable: mutable, Field: id, Value: val}
	case token.ARROW:
		p.next()
		init := p.expr()
		if p.accept(token.COMMA) {
			p.accept(token.ELLIPSIS) // "{ N -> 0, ... }" trailing ellipsis
		}
		p.expect(token.RBRACE)
		return &ast.ArrayLit{TokPos: pos, Mutable: mutable, Count: first, Init: init}
	default:
		lit := &ast.RecordLit{TokPos: pos, Mutable: mutable, Elems: []ast.Expr{first}}
		for p.accept(token.COMMA) {
			if p.accept(token.ELLIPSIS) {
				break
			}
			lit.Elems = append(lit.Elems, p.expr())
		}
		p.expect(token.RBRACE)
		return lit
	}
}
