package opt_test

import (
	"testing"

	"esplang/internal/check"
	"esplang/internal/compile"
	"esplang/internal/ir"
	"esplang/internal/opt"
	"esplang/internal/parser"
	"esplang/internal/vm"
)

func compileSrc(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := parser.Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := check.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return compile.Program(prog, info)
}

func instrCount(p *ir.Program) int {
	n := 0
	for _, pr := range p.Procs {
		n += len(pr.Code)
	}
	return n
}

// runCollect executes the program feeding ins on channel "inC" (if
// present) and collecting from "outC".
func runCollect(t *testing.T, p *ir.Program, ins []int64) []int64 {
	t.Helper()
	m := vm.New(p, vm.Config{MaxLiveObjects: 256})
	if p.ChannelByName("inC") != nil {
		q := &vm.QueueWriter{}
		for _, v := range ins {
			v := v
			q.Push(0, func(_ *vm.Machine) vm.Value { return vm.IntVal(v) })
		}
		if err := m.BindWriter("inC", q); err != nil {
			t.Fatal(err)
		}
	}
	c := &vm.CollectReader{}
	if err := m.BindReader("outC", c); err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res == vm.RunFault {
		t.Fatalf("fault: %v", m.Fault())
	}
	var out []int64
	for _, s := range c.Values {
		out = append(out, s.Int())
	}
	return out
}

// checkEquivalent verifies the optimized program produces identical
// output to the original.
func checkEquivalent(t *testing.T, src string, ins []int64) (before, after int) {
	t.Helper()
	p1 := compileSrc(t, src)
	want := runCollect(t, compileSrc(t, src), ins)
	p2 := opt.Optimize(compileSrc(t, src), opt.All())
	got := runCollect(t, p2, ins)
	if len(got) != len(want) {
		t.Fatalf("optimized program produced %d outputs, original %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("output %d: optimized %d, original %d", i, got[i], want[i])
		}
	}
	return instrCount(p1), instrCount(p2)
}

func TestConstantFolding(t *testing.T) {
	before, after := checkEquivalent(t, `
channel outC: int external reader
process p {
    $x = 2 + 3 * 4;
    $y = (10 - 4) / 2;
    $z = x + y;
    if (1 < 2) { out( outC, z); }
}
`, nil)
	if after >= before {
		t.Errorf("no reduction: %d -> %d instructions", before, after)
	}
	// The folded program should compute 14 + 3 = 17.
	p := opt.Optimize(compileSrc(t, `
channel outC: int external reader
process p {
    $x = 2 + 3 * 4;
    out( outC, x);
}
`), opt.All())
	found := false
	for _, in := range p.Procs[0].Code {
		if in.Op == ir.Const && in.Val == 14 {
			found = true
		}
	}
	if !found {
		t.Error("2 + 3*4 not folded to 14")
	}
}

func TestBranchFolding(t *testing.T) {
	p := opt.Optimize(compileSrc(t, `
channel outC: int external reader
process p {
    if (true) { out( outC, 1); } else { out( outC, 2); }
}
`), opt.All())
	// The else branch is unreachable after folding; "const 2" must be gone.
	for _, in := range p.Procs[0].Code {
		if in.Op == ir.Const && in.Val == 2 {
			t.Error("dead else branch not eliminated")
		}
	}
}

func TestWhileTrueNoConditionCode(t *testing.T) {
	// while(true) compiled via Cond=nil has no test; while (true) written
	// explicitly must fold to the same shape.
	p := opt.Optimize(compileSrc(t, `
channel inC: int external writer
channel outC: int external reader
interface i( out inC) { Put( $v) }
process p {
    while (true) {
        in( inC, $v);
        out( outC, v);
    }
}
`), opt.All())
	for _, in := range p.Procs[0].Code {
		if in.Op == ir.JumpIfFalse || in.Op == ir.JumpIfTrue {
			t.Error("while(true) still has a conditional branch")
		}
	}
}

func TestCopyPropagation(t *testing.T) {
	before, after := checkEquivalent(t, `
channel inC: int external writer
channel outC: int external reader
interface i( out inC) { Put( $v) }
process p {
    while (true) {
        in( inC, $a);
        $b = a;
        $c = b;
        out( outC, c);
    }
}
`, []int64{5, 9})
	if after >= before {
		t.Errorf("no reduction: %d -> %d instructions", before, after)
	}
}

func TestCastReuse(t *testing.T) {
	p := opt.Optimize(compileSrc(t, `
channel c: array of int
channel outC: int external reader
process maker {
    $a: #array of int = #{ 4 -> 7};
    out( c, immutable(a));
}
process user {
    in( c, $d);
    out( outC, d[0]);
    unlink( d);
}
`), opt.All())
	found := false
	for _, in := range p.ProcByName("maker").Code {
		if in.Op == ir.CastReuse {
			found = true
		}
		if in.Op == ir.CastCopy {
			t.Error("CastCopy survived although the source is dead")
		}
	}
	if !found {
		t.Error("cast not converted to in-place reuse")
	}
	// Behavior: the receiver still sees 7, and reuse must not fault.
	m := vm.New(p, vm.Config{MaxLiveObjects: 16})
	cr := &vm.CollectReader{}
	if err := m.BindReader("outC", cr); err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res == vm.RunFault {
		t.Fatalf("fault: %v", m.Fault())
	}
	if len(cr.Values) != 1 || cr.Values[0].Int() != 7 {
		t.Errorf("got %v, want [7]", cr.Values)
	}
	// The reuse elides one allocation: only the array itself is created.
	if m.Stats.Allocs != 1 {
		t.Errorf("allocations = %d, want 1 (copy elided)", m.Stats.Allocs)
	}
}

func TestCastNotReusedWhenSourceLive(t *testing.T) {
	p := opt.Optimize(compileSrc(t, `
channel c: array of int
channel outC: int external reader
process maker {
    $a: #array of int = #{ 4 -> 7};
    out( c, immutable(a));
    a[0] = 9; // a is still used: the cast must copy
    out( outC, a[0]);
    unlink( a);
}
process user {
    in( c, $d);
    unlink( d);
}
`), opt.All())
	for _, in := range p.ProcByName("maker").Code {
		if in.Op == ir.CastReuse {
			t.Fatal("cast reused although the source is still live")
		}
	}
}

func TestOptimizedAltStillWorks(t *testing.T) {
	checkEquivalent(t, `
const CAP = 4;
channel inC: int external writer
channel outC: int external reader
interface i( out inC) { Put( $v) }
process fifo {
    $q: #array of int = #{ CAP -> 0};
    $hd = 0;
    $tl = 0;
    while (true) {
        alt {
            case( !(tl - hd == CAP), in( inC, $v)) { q[tl % CAP] = v; tl = tl + 1; }
            case( !(tl == hd), out( outC, q[hd % CAP])) { hd = hd + 1; }
        }
    }
}
`, []int64{3, 1, 4, 1, 5, 9, 2, 6})
}

func TestOptimizedPatternsStillWork(t *testing.T) {
	checkEquivalent(t, `
type sendT = record of { dest: int, vAddr: int, size: int}
type userT = union of { send: sendT, update: sendT}
channel c: userT
channel outC: int external reader
process w {
    $n = 0;
    while (n < 4) {
        out( c, { send |> { n, n*2, n*3}});
        n = n + 1;
    }
}
process r {
    while (true) {
        in( c, { send |> { $d, $v, $s}});
        out( outC, d + v + s);
    }
}
process r2 {
    while (true) {
        in( c, { update |> $u});
        unlink( u);
    }
}
`, nil)
}

func TestIdempotent(t *testing.T) {
	p1 := opt.Optimize(compileSrc(t, `
channel outC: int external reader
process p {
    $x = 1 + 2;
    out( outC, x);
}
`), opt.All())
	n1 := instrCount(p1)
	p2 := opt.Optimize(p1, opt.All())
	if instrCount(p2) != n1 {
		t.Errorf("second optimization round changed code: %d -> %d", n1, instrCount(p2))
	}
}

func TestZeroOptionsNoChange(t *testing.T) {
	src := `
channel outC: int external reader
process p {
    $x = 1 + 2;
    out( outC, x);
}
`
	p1 := compileSrc(t, src)
	n := instrCount(p1)
	opt.Optimize(p1, opt.Options{})
	if instrCount(p1) != n {
		t.Error("zero options modified the program")
	}
}

func TestCrossProcConstantPropagation(t *testing.T) {
	// Every sender puts the constant 4096 in the size field; the
	// receiver's bound slot folds to a constant (§6.2 future work).
	p := compileSrc(t, `
type reqT = record of { addr: int, size: int }
channel c: reqT
channel outC: int external reader
process w1 { out( c, { 100, 4096}); }
process w2 { out( c, { 200, 4096}); }
process r {
    $n = 0;
    while (n < 2) {
        in( c, { $addr, $size});
        out( outC, size + size);
        n = n + 1;
    }
}
`)
	rewritten := opt.CrossProcConstants(p)
	if rewritten == 0 {
		t.Fatal("no loads folded")
	}
	// The receiver's loads of size are now constants; after const
	// folding, size + size becomes 8192.
	opt.Optimize(p, opt.Options{ConstFold: true, DCE: true})
	found := false
	for _, in := range p.ProcByName("r").Code {
		if in.Op == ir.Const && in.Val == 8192 {
			found = true
		}
	}
	if !found {
		t.Error("size + size not folded to 8192")
	}
	// Behavior must be unchanged.
	m := vm.New(p, vm.Config{})
	cr := &vm.CollectReader{}
	if err := m.BindReader("outC", cr); err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res == vm.RunFault {
		t.Fatalf("fault: %v", m.Fault())
	}
	if len(cr.Values) != 2 || cr.Values[0].Int() != 8192 {
		t.Errorf("outputs = %v", cr.Values)
	}
}

func TestCrossProcRespectsDisagreeingSenders(t *testing.T) {
	p := compileSrc(t, `
type reqT = record of { size: int }
channel c: reqT
channel outC: int external reader
process w1 { out( c, { 1}); }
process w2 { out( c, { 2}); }
process r {
    $n = 0;
    while (n < 2) {
        in( c, { $size});
        out( outC, size);
        n = n + 1;
    }
}
`)
	if n := opt.CrossProcConstants(p); n != 0 {
		t.Fatalf("folded %d loads despite disagreeing senders", n)
	}
}

func TestCrossProcRespectsDynamicSenders(t *testing.T) {
	p := compileSrc(t, `
type reqT = record of { size: int }
channel c: reqT
channel outC: int external reader
process w {
    $n = 0;
    while (n < 3) {
        out( c, { n});
        n = n + 1;
    }
}
process r {
    $t = 0;
    $k = 0;
    while (k < 3) {
        in( c, { $size});
        t = t + size;
        k = k + 1;
    }
    out( outC, t);
}
`)
	if n := opt.CrossProcConstants(p); n != 0 {
		t.Fatalf("folded %d loads despite a dynamic sender", n)
	}
	m := vm.New(p, vm.Config{})
	cr := &vm.CollectReader{}
	if err := m.BindReader("outC", cr); err != nil {
		t.Fatal(err)
	}
	m.Run()
	if len(cr.Values) != 1 || cr.Values[0].Int() != 3 {
		t.Errorf("outputs = %v, want [3]", cr.Values)
	}
}

func TestCrossProcRespectsExternalWriters(t *testing.T) {
	p := compileSrc(t, `
channel c: int external writer
channel outC: int external reader
interface i( out c) { Put( $v) }
process r {
    while (true) {
        in( c, $v);
        out( outC, v);
    }
}
`)
	if n := opt.CrossProcConstants(p); n != 0 {
		t.Fatalf("folded %d loads from an external channel", n)
	}
}

func TestCrossProcRespectsShortCircuitValues(t *testing.T) {
	// A value containing && compiles with a jump into the evaluation
	// window; the recognizer must not derive the short-circuit branch's
	// constant.
	p := compileSrc(t, `
type reqT = record of { flag: bool }
channel c: reqT
channel outC: int external reader
process w {
    $a = true;
    $b = false;
    out( c, { a && b});
    out( c, { a && b});
}
process r {
    $n = 0;
    while (n < 2) {
        in( c, { $f});
        if (f) { out( outC, 1); } else { out( outC, 0); }
        n = n + 1;
    }
}
`)
	if n := opt.CrossProcConstants(p); n != 0 {
		t.Fatalf("folded %d loads through a short-circuit expression", n)
	}
}

func TestCrossProcSelfIDAndAltArms(t *testing.T) {
	// @ is a per-process constant, and alt send arms contribute their
	// AST shapes; both senders here put constant 7 in the payload.
	p := compileSrc(t, `
type reqT = record of { v: int }
channel c: reqT
channel tick: int external writer
channel outC: int external reader
interface t( out tick) { T( $x) }
process w1 {
    while (true) {
        alt {
            case( in( tick, $x)) { skip; }
            case( out( c, { 7})) { skip; }
        }
    }
}
process r {
    while (true) {
        in( c, { $v});
        out( outC, v * 2);
    }
}
`)
	if n := opt.CrossProcConstants(p); n == 0 {
		t.Fatal("alt-arm constant not propagated")
	}
	opt.Optimize(p, opt.Options{ConstFold: true, DCE: true})
	found := false
	for _, in := range p.ProcByName("r").Code {
		if in.Op == ir.Const && in.Val == 14 {
			found = true
		}
	}
	if !found {
		t.Error("v * 2 not folded to 14")
	}
}
