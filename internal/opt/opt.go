// Package opt implements the per-process IR optimizations of §6.1.
//
// The ESP compiler performs "some of the traditional optimizations like
// copy propagation and dead code elimination on each process separately
// before combining them to generate the C code", exploiting semantic
// information the C compiler no longer sees. This package implements:
//
//   - constant folding (including branch folding);
//   - copy propagation within basic blocks;
//   - dead-store and unreachable-code elimination;
//   - mutability-cast reuse: a CastCopy whose source object is provably
//     dead afterwards becomes an in-place CastReuse, eliding the copy
//     (§4.2: "if the compiler can determine that the object being cast is
//     no longer used afterwards, it can reuse that object");
//
// The §6.1 allocation postponement for alt send arms and the channel
// pattern/record fusion are structural properties of the compiler's alt
// lowering and the rendezvous transfer, respectively; their ablations are
// exercised through vm.Config instead.
package opt

import (
	"esplang/internal/ir"
)

// Options selects passes. The zero value runs nothing; use All for the
// default pipeline.
type Options struct {
	ConstFold bool
	CopyProp  bool
	DCE       bool
	CastReuse bool
	// CrossProc enables the whole-program constant analysis across
	// channels — the paper's §6.2 future work.
	CrossProc bool
	// MaxRounds bounds the whole-program fixpoint iteration (0 = 8).
	MaxRounds int
	// Fuse translates the final code into the fused execution form
	// (ir.FuseProgram) once the rewrites settle, caching it on
	// Program.Fused so every machine created from the program shares one
	// translation. Run always clears a stale translation first, so a
	// pipeline without Fuse leaves Fused nil and vm.New fuses locally on
	// demand.
	Fuse bool
	// FuseProcs runs the process-fusion pass after the fixpoint: it
	// computes the static rendezvous schedule (analysis.ComputeSchedule)
	// from the settled IR and caches the schedule-aware translation with
	// direct-transfer instructions on Program.Schedule/FusedSched. Only
	// vm.EngineProcFused executes that translation; a pipeline without
	// FuseProcs leaves both nil and the engine falls back to the plain
	// fused form.
	FuseProcs bool
	// Verify runs ir.Verify after every pass; Run aborts with an error
	// naming the offending pass if a rewrite corrupts the program.
	Verify bool
}

// All returns the full pipeline, including the cross-process analysis.
func All() Options {
	return Options{ConstFold: true, CopyProp: true, DCE: true, CastReuse: true,
		CrossProc: true, Fuse: true, FuseProcs: true}
}

// Optimize rewrites every process of the program in place and returns
// it. It is the Stats-free convenience wrapper around Run; it panics if
// verification is enabled and a pass corrupts the program (Run returns
// that as an error instead).
func Optimize(prog *ir.Program, opts Options) *ir.Program {
	if _, err := Run(prog, opts); err != nil {
		panic(err)
	}
	return prog
}

// ---------------------------------------------------------------------------
// Helpers: control-flow structure

// entryPoints returns every pc that control can enter other than by
// fall-through: process start, jump targets, alt arm eval/body starts,
// and the resume points of blocking instructions.
func entryPoints(p *ir.Proc) []int {
	var pts []int
	pts = append(pts, 0)
	for pc, in := range p.Code {
		switch in.Op {
		case ir.Jump, ir.JumpIfFalse, ir.JumpIfTrue:
			pts = append(pts, in.A)
		case ir.Send, ir.Recv:
			pts = append(pts, pc+1)
		}
	}
	for _, alt := range p.Alts {
		for _, arm := range alt.Arms {
			if arm.IsSend {
				pts = append(pts, arm.EvalPC)
			}
			pts = append(pts, arm.BodyPC)
		}
	}
	return pts
}

// blocks partitions code into basic-block start pcs.
func blockStarts(p *ir.Proc) map[int]bool {
	starts := map[int]bool{}
	for _, pc := range entryPoints(p) {
		if pc < len(p.Code) {
			starts[pc] = true
		}
	}
	for pc, in := range p.Code {
		switch in.Op {
		case ir.Jump, ir.JumpIfFalse, ir.JumpIfTrue, ir.Halt, ir.Alt, ir.SendCommit:
			if pc+1 < len(p.Code) {
				starts[pc+1] = true
			}
		}
	}
	return starts
}

// rebuild removes instructions whose keep flag is false, remapping every
// pc reference (jumps, alt arm targets). An instruction may only be
// dropped if control never needs to land on it.
func rebuild(p *ir.Proc, keep []bool) {
	remap := make([]int, len(p.Code)+1)
	n := 0
	for pc := range p.Code {
		remap[pc] = n
		if keep[pc] {
			n++
		}
	}
	remap[len(p.Code)] = n

	newCode := make([]ir.Instr, 0, n)
	for pc, in := range p.Code {
		if !keep[pc] {
			continue
		}
		switch in.Op {
		case ir.Jump, ir.JumpIfFalse, ir.JumpIfTrue:
			in.A = remap[in.A]
		}
		newCode = append(newCode, in)
	}
	p.Code = newCode
	for ai := range p.Alts {
		for j := range p.Alts[ai].Arms {
			arm := &p.Alts[ai].Arms[j]
			if arm.EvalPC >= 0 {
				arm.EvalPC = remap[arm.EvalPC]
			}
			arm.BodyPC = remap[arm.BodyPC]
		}
	}
}

// ---------------------------------------------------------------------------
// Constant folding

func constFold(p *ir.Proc) bool {
	changed := false
	starts := blockStarts(p)
	for pc := 0; pc+1 < len(p.Code); pc++ {
		a := p.Code[pc]
		// Unary on a constant.
		if a.Op == ir.Const && !starts[pc+1] {
			b := p.Code[pc+1]
			switch b.Op {
			case ir.Neg:
				p.Code[pc] = ir.Instr{Op: ir.Const, Val: -a.Val, Pos: a.Pos}
				p.Code[pc+1] = ir.Instr{Op: ir.Nop, Pos: b.Pos}
				changed = true
				continue
			case ir.Not:
				v := int64(0)
				if a.Val == 0 {
					v = 1
				}
				p.Code[pc] = ir.Instr{Op: ir.Const, Val: v, Pos: a.Pos}
				p.Code[pc+1] = ir.Instr{Op: ir.Nop, Pos: b.Pos}
				changed = true
				continue
			case ir.JumpIfFalse:
				if a.Val == 0 {
					p.Code[pc] = ir.Instr{Op: ir.Jump, A: b.A, Pos: a.Pos}
				} else {
					p.Code[pc] = ir.Instr{Op: ir.Nop, Pos: a.Pos}
				}
				p.Code[pc+1] = ir.Instr{Op: ir.Nop, Pos: b.Pos}
				changed = true
				continue
			case ir.JumpIfTrue:
				if a.Val != 0 {
					p.Code[pc] = ir.Instr{Op: ir.Jump, A: b.A, Pos: a.Pos}
				} else {
					p.Code[pc] = ir.Instr{Op: ir.Nop, Pos: a.Pos}
				}
				p.Code[pc+1] = ir.Instr{Op: ir.Nop, Pos: b.Pos}
				changed = true
				continue
			}
		}
		// Binary on two constants.
		if pc+2 < len(p.Code) && a.Op == ir.Const && p.Code[pc+1].Op == ir.Const &&
			!starts[pc+1] && !starts[pc+2] {
			c := p.Code[pc+2]
			if v, ok := foldBin(c.Op, a.Val, p.Code[pc+1].Val); ok {
				p.Code[pc] = ir.Instr{Op: ir.Const, Val: v, Pos: a.Pos}
				p.Code[pc+1] = ir.Instr{Op: ir.Nop, Pos: a.Pos}
				p.Code[pc+2] = ir.Instr{Op: ir.Nop, Pos: c.Pos}
				changed = true
			}
		}
	}
	return changed
}

func foldBin(op ir.Op, x, y int64) (int64, bool) {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case ir.Add:
		return x + y, true
	case ir.Sub:
		return x - y, true
	case ir.Mul:
		return x * y, true
	case ir.Div:
		if y == 0 {
			return 0, false // leave the runtime fault in place
		}
		return x / y, true
	case ir.Mod:
		if y == 0 {
			return 0, false
		}
		return x % y, true
	case ir.Eq:
		return b2i(x == y), true
	case ir.Ne:
		return b2i(x != y), true
	case ir.Lt:
		return b2i(x < y), true
	case ir.Le:
		return b2i(x <= y), true
	case ir.Gt:
		return b2i(x > y), true
	case ir.Ge:
		return b2i(x >= y), true
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// Copy propagation (within basic blocks)

// copyProp rewrites "LoadLocal a; StoreLocal b; ...; LoadLocal b" to load
// a directly while neither a nor b has been reassigned within the block,
// and collapses "StoreLocal x; LoadLocal x" into "Dup; StoreLocal x".
func copyProp(p *ir.Proc) bool {
	changed := false
	starts := blockStarts(p)

	// Peephole: StoreLocal x; LoadLocal x  =>  Dup; StoreLocal x.
	for pc := 0; pc+1 < len(p.Code); pc++ {
		if starts[pc+1] {
			continue
		}
		a, b := p.Code[pc], p.Code[pc+1]
		if a.Op == ir.StoreLocal && b.Op == ir.LoadLocal && a.A == b.A {
			p.Code[pc] = ir.Instr{Op: ir.Dup, Pos: a.Pos}
			p.Code[pc+1] = ir.Instr{Op: ir.StoreLocal, A: a.A, Pos: b.Pos}
			p.MaxStack++ // the Dup deepens the stack at this point
			changed = true
		}
	}

	// Block-local copy table.
	copyOf := map[int]int{} // dst slot -> src slot
	kill := func(slot int) {
		delete(copyOf, slot)
		for d, s := range copyOf {
			if s == slot {
				delete(copyOf, d)
			}
		}
	}
	for pc := 0; pc < len(p.Code); pc++ {
		if starts[pc] {
			copyOf = map[int]int{}
		}
		in := &p.Code[pc]
		switch in.Op {
		case ir.LoadLocal:
			if src, ok := copyOf[in.A]; ok {
				in.A = src
				changed = true
			}
			// "LoadLocal a; StoreLocal b" establishes b := a.
			if pc+1 < len(p.Code) && !starts[pc+1] && p.Code[pc+1].Op == ir.StoreLocal {
				dst := p.Code[pc+1].A
				if dst != in.A {
					kill(dst)
					copyOf[dst] = in.A
					pc++ // the store itself kills nothing else
					continue
				}
			}
		case ir.StoreLocal:
			kill(in.A)
		case ir.Recv:
			// Pattern binding writes arbitrary slots.
			copyOf = map[int]int{}
		case ir.Alt, ir.Send, ir.SendCommit, ir.Halt:
			copyOf = map[int]int{}
		}
	}
	return changed
}

// ---------------------------------------------------------------------------
// Cast reuse

// castReuse turns "LoadLocal x; CastCopy" into "LoadLocal x; CastReuse"
// when slot x is provably dead afterwards: no other LoadLocal of x
// anywhere in the process, and x is not written by any receive pattern
// (which would imply the value escapes through other uses).
func castReuse(p *ir.Proc) bool {
	loadCount := map[int]int{}
	for _, in := range p.Code {
		if in.Op == ir.LoadLocal {
			loadCount[in.A]++
		}
	}
	patternSlots := map[int]bool{}
	var mark func(pat *ir.Pat)
	mark = func(pat *ir.Pat) {
		if pat == nil {
			return
		}
		if pat.Kind == ir.PatBind || pat.Kind == ir.PatDynEq {
			patternSlots[pat.Slot] = true
		}
		for _, e := range pat.Elems {
			mark(e)
		}
	}
	for _, port := range p.Ports {
		mark(port.Pat)
	}

	changed := false
	for pc := 0; pc+1 < len(p.Code); pc++ {
		a, b := p.Code[pc], p.Code[pc+1]
		// "LoadLocal x; CastCopy" with x dead after (its only load).
		if a.Op == ir.LoadLocal && b.Op == ir.CastCopy &&
			loadCount[a.A] == 1 && !patternSlots[a.A] {
			p.Code[pc+1].Op = ir.CastReuse
			changed = true
		}
		// "Dup; StoreLocal x; CastCopy" (copy-prop residue) with x never
		// loaded at all.
		if pc+2 < len(p.Code) && a.Op == ir.Dup && b.Op == ir.StoreLocal &&
			p.Code[pc+2].Op == ir.CastCopy &&
			loadCount[b.A] == 0 && !patternSlots[b.A] {
			p.Code[pc+2].Op = ir.CastReuse
			changed = true
		}
	}
	return changed
}

// ---------------------------------------------------------------------------
// Dead code elimination

// removeUnreachable drops instructions not reachable from any entry
// point.
func removeUnreachable(p *ir.Proc) bool {
	reach := make([]bool, len(p.Code))
	var stack []int
	push := func(pc int) {
		if pc >= 0 && pc < len(p.Code) && !reach[pc] {
			reach[pc] = true
			stack = append(stack, pc)
		}
	}
	for _, pc := range entryPoints(p) {
		push(pc)
	}
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		in := p.Code[pc]
		switch in.Op {
		case ir.Jump:
			push(in.A)
		case ir.JumpIfFalse, ir.JumpIfTrue:
			push(in.A)
			push(pc + 1)
		case ir.Halt, ir.Alt:
			// no fall-through (alt arms are entry points)
		default:
			push(pc + 1)
		}
	}
	changed := false
	for pc := range p.Code {
		if !reach[pc] {
			changed = true
		}
	}
	if changed {
		rebuild(p, reach)
	}
	return changed
}

// compactNops removes Nop instructions (making sure any reference to a
// Nop's pc re-points at its successor, which rebuild's remap does
// naturally because the Nop is dropped).
func compactNops(p *ir.Proc) bool {
	keep := make([]bool, len(p.Code))
	changed := false
	for pc, in := range p.Code {
		keep[pc] = in.Op != ir.Nop
		if in.Op == ir.Nop {
			changed = true
		}
	}
	if changed {
		rebuild(p, keep)
	}
	return changed
}
