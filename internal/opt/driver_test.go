package opt

import (
	"strings"
	"testing"

	"esplang/internal/ir"
)

// brokenJumps is a deliberately corrupting pass: it re-points every jump
// past the end of the code, the kind of off-by-one a buggy rebuild remap
// would produce.
type brokenJumps struct{}

func (brokenJumps) Name() string { return "break-jumps" }
func (brokenJumps) Run(p *ir.Proc) bool {
	changed := false
	for pc := range p.Code {
		switch p.Code[pc].Op {
		case ir.Jump, ir.JumpIfFalse, ir.JumpIfTrue:
			p.Code[pc].A = len(p.Code) + 3
			changed = true
		}
	}
	return changed
}

func loopProg() *ir.Program {
	return &ir.Program{
		Name:     "loop",
		Channels: []*ir.Channel{{ID: 0, Name: "c"}},
		Procs: []*ir.Proc{{
			ID:   0,
			Name: "p",
			Code: []ir.Instr{
				{Op: ir.Const, Val: 1},
				{Op: ir.Send, A: 0},
				{Op: ir.Jump, A: 0},
				{Op: ir.Halt},
			},
			MaxStack: 1,
		}},
	}
}

// TestVerifyCatchesCorruptingPass is the acceptance check for the
// verified driver: a pass that corrupts jump targets is caught at the
// pass boundary and named in the error.
func TestVerifyCatchesCorruptingPass(t *testing.T) {
	prog := loopProg()
	_, err := runExtra(prog, Options{Verify: true}, brokenJumps{})
	if err == nil {
		t.Fatal("corrupting pass not caught")
	}
	if !strings.Contains(err.Error(), "break-jumps") {
		t.Errorf("error does not name the pass: %v", err)
	}
	if !strings.Contains(err.Error(), "out of range") {
		t.Errorf("error does not describe the corruption: %v", err)
	}
}

// TestRunVerifiedPipeline runs the full pipeline with verification on a
// valid program: every pass boundary must verify and stats must balance.
func TestRunVerifiedPipeline(t *testing.T) {
	prog := loopProg()
	opts := All()
	opts.Verify = true
	stats, err := Run(prog, opts)
	if err != nil {
		t.Fatalf("verified run failed: %v", err)
	}
	if !stats.Fixpoint {
		t.Errorf("pipeline did not reach fixpoint in %d rounds", stats.Rounds)
	}
	if stats.InstrsAfter != countInstrs(prog) {
		t.Errorf("stats.InstrsAfter = %d, program has %d", stats.InstrsAfter, countInstrs(prog))
	}
	if err := ir.Verify(prog); err != nil {
		t.Errorf("optimized program invalid: %v", err)
	}
}

func TestStatsString(t *testing.T) {
	prog := loopProg()
	stats, err := Run(prog, All())
	if err != nil {
		t.Fatal(err)
	}
	out := stats.String()
	for _, want := range []string{"optimizer:", "constfold", "crossproc-const", "compactnops"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestZeroOptionsNoChange(t *testing.T) {
	prog := loopProg()
	before := len(prog.Procs[0].Code)
	stats, err := Run(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Procs[0].Code) != before {
		t.Error("zero Options changed the program")
	}
	if !stats.Fixpoint || stats.Rounds != 1 {
		t.Errorf("zero Options: Rounds=%d Fixpoint=%v, want immediate fixpoint", stats.Rounds, stats.Fixpoint)
	}
}
