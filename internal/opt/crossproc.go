package opt

import (
	"esplang/internal/ir"
)

// Cross-process data-flow analysis — the paper's stated future work
// (§6.2: "data-flow analysis is currently performed on a per process
// basis. We plan to extend data-flow analysis across processes.").
//
// The analysis exploits the same static design the §6.1 channel
// optimizations use: every sender and receiver of a channel is known at
// compile time. For each channel, the shapes of all send sites are
// joined; when a component position carries the same constant in every
// send, a receiver slot that is bound only from that position (and never
// written otherwise) is itself a constant, and its loads fold.

// CrossProcConstants runs the whole-program pass. It returns the number
// of load sites rewritten.
func CrossProcConstants(prog *ir.Program) int {
	chanShape := joinedSendShapes(prog)

	rewritten := 0
	for _, p := range prog.Procs {
		consts := constantSlots(p, chanShape)
		if len(consts) == 0 {
			continue
		}
		for pc := range p.Code {
			in := &p.Code[pc]
			if in.Op == ir.LoadLocal {
				if v, ok := consts[in.A]; ok {
					*in = ir.Instr{Op: ir.Const, Val: v, Pos: in.Pos}
					rewritten++
				}
			}
		}
	}
	return rewritten
}

// joinedSendShapes computes, per channel, the join of every send site's
// static value shape (nil = some sender is not statically known, or the
// channel is external-writer — the environment can send anything the
// interface allows).
func joinedSendShapes(prog *ir.Program) map[int]*ir.Pat {
	shapes := make(map[int]*ir.Pat, len(prog.Channels))
	poison := make(map[int]bool, len(prog.Channels))

	add := func(ch int, s *ir.Pat) {
		if poison[ch] {
			return
		}
		if s == nil {
			poison[ch] = true
			delete(shapes, ch)
			return
		}
		if cur, ok := shapes[ch]; ok {
			shapes[ch] = joinShapes(cur, s)
		} else {
			shapes[ch] = s
		}
	}

	for _, ch := range prog.Channels {
		if ch.Ext == ir.ExtWriter {
			// External senders: join the interface case patterns, with
			// bindings as unknowns.
			if len(ch.Cases) == 0 {
				poison[ch.ID] = true
				continue
			}
			for _, c := range ch.Cases {
				add(ch.ID, c.Pat)
			}
		}
	}
	for _, p := range prog.Procs {
		// Alt send arms carry the AST-derived shape; plain sends are
		// recovered from the literal construction preceding the Send.
		armShape := map[int]*ir.Pat{} // SendCommit pc -> OutPat
		for _, alt := range p.Alts {
			for i := range alt.Arms {
				arm := &alt.Arms[i]
				if !arm.IsSend {
					continue
				}
				for pc := arm.EvalPC; pc < len(p.Code); pc++ {
					if p.Code[pc].Op == ir.SendCommit {
						armShape[pc] = arm.OutPat
						break
					}
				}
			}
		}
		for pc, in := range p.Code {
			switch in.Op {
			case ir.SendCommit:
				if s, ok := armShape[pc]; ok {
					add(in.A, s)
				} else {
					add(in.A, nil)
				}
			case ir.Send:
				add(in.A, sendSiteShape(p, pc))
			}
		}
	}
	// Poisoned channels have no entry.
	return shapes
}

// sendSiteShape recovers the static shape of the value a Send at pc
// transmits. The recognizer accepts only pure literal trees — Const,
// SelfID, NewRecord, NewUnion — ending exactly at the Send; any other
// construction yields an all-Any shape. (A partial walk would misalign
// child boundaries of compound expressions and could derive wrong
// constants, so the analysis is all-or-nothing per send site.)
func sendSiteShape(p *ir.Proc, pc int) *ir.Pat {
	end := pc // exclusive: instruction before the Send
	any := &ir.Pat{Kind: ir.PatAny}
	var walk func() (*ir.Pat, bool)
	walk = func() (*ir.Pat, bool) {
		if end == 0 {
			return nil, false
		}
		end--
		in := p.Code[end]
		switch in.Op {
		case ir.Const:
			return &ir.Pat{Kind: ir.PatConst, Val: in.Val}, true
		case ir.SelfID:
			return &ir.Pat{Kind: ir.PatConst, Val: int64(p.ID)}, true
		case ir.NewRecord:
			s := &ir.Pat{Kind: ir.PatRecord, Elems: make([]*ir.Pat, in.B)}
			// Children were pushed left to right; unwind right to left.
			for i := in.B - 1; i >= 0; i-- {
				c, ok := walk()
				if !ok {
					return nil, false
				}
				s.Elems[i] = c
			}
			return s, true
		case ir.NewUnion:
			c, ok := walk()
			if !ok {
				return nil, false
			}
			return &ir.Pat{Kind: ir.PatUnion, Tag: in.B, Elems: []*ir.Pat{c}}, true
		default:
			return nil, false
		}
	}
	s, ok := walk()
	if !ok {
		return any
	}
	// The window [end, pc) must be straight-line: a jump into it (e.g.
	// the convergence point of a short-circuit && inside the value
	// expression) would mean the recognized constants are only one path's
	// values.
	for i, in := range p.Code {
		switch in.Op {
		case ir.Jump, ir.JumpIfFalse, ir.JumpIfTrue:
			if in.A > end && in.A < pc && !(i >= end && i < pc) {
				return any
			}
			if i >= end && i < pc {
				return any // a jump inside the window: not a pure literal
			}
		}
	}
	for _, alt := range p.Alts {
		for _, arm := range alt.Arms {
			if arm.BodyPC > end && arm.BodyPC < pc || arm.EvalPC > end && arm.EvalPC < pc {
				return any
			}
		}
	}
	return s
}

// joinShapes returns the most precise shape covering both inputs.
func joinShapes(a, b *ir.Pat) *ir.Pat {
	if a == nil || b == nil {
		return &ir.Pat{Kind: ir.PatAny}
	}
	if a.Kind == ir.PatConst && b.Kind == ir.PatConst && a.Val == b.Val {
		return a
	}
	if a.Kind == ir.PatRecord && b.Kind == ir.PatRecord && len(a.Elems) == len(b.Elems) {
		s := &ir.Pat{Kind: ir.PatRecord, Elems: make([]*ir.Pat, len(a.Elems))}
		for i := range a.Elems {
			s.Elems[i] = joinShapes(a.Elems[i], b.Elems[i])
		}
		return s
	}
	if a.Kind == ir.PatUnion && b.Kind == ir.PatUnion && a.Tag == b.Tag {
		return &ir.Pat{Kind: ir.PatUnion, Tag: a.Tag, Elems: []*ir.Pat{joinShapes(a.Elems[0], b.Elems[0])}}
	}
	return &ir.Pat{Kind: ir.PatAny}
}

// constantSlots finds slots of p that are (a) written only by receive
// bindings whose channel position is a known constant — the same constant
// at every binding site — and (b) never stored by StoreLocal.
func constantSlots(p *ir.Proc, chanShape map[int]*ir.Pat) map[int]int64 {
	candidate := map[int]int64{}
	dead := map[int]bool{}

	kill := func(slot int) {
		dead[slot] = true
		delete(candidate, slot)
	}
	propose := func(slot int, v int64, known bool) {
		if dead[slot] {
			return
		}
		if !known {
			kill(slot)
			return
		}
		if cur, ok := candidate[slot]; ok && cur != v {
			kill(slot)
			return
		}
		candidate[slot] = v
	}

	// Walk every port's pattern against the channel's joined shape.
	var visit func(pat, shape *ir.Pat)
	visit = func(pat, shape *ir.Pat) {
		switch pat.Kind {
		case ir.PatBind:
			if shape != nil && shape.Kind == ir.PatConst {
				propose(pat.Slot, shape.Val, true)
			} else {
				propose(pat.Slot, 0, false)
			}
		case ir.PatRecord:
			for i, sub := range pat.Elems {
				var s *ir.Pat
				if shape != nil && shape.Kind == ir.PatRecord && i < len(shape.Elems) {
					s = shape.Elems[i]
				}
				visit(sub, s)
			}
		case ir.PatUnion:
			var s *ir.Pat
			if shape != nil && shape.Kind == ir.PatUnion && shape.Tag == pat.Tag {
				s = shape.Elems[0]
			}
			visit(pat.Elems[0], s)
		}
	}
	for _, port := range p.Ports {
		visit(port.Pat, chanShape[port.Chan])
	}
	// Direct stores kill constancy.
	for _, in := range p.Code {
		if in.Op == ir.StoreLocal {
			kill(in.A)
		}
	}
	// Guard slots and DynEq test slots are loaded implicitly; constancy
	// is still sound for them but they are never LoadLocal'd anyway.
	return candidate
}
