package opt_test

import (
	"testing"

	"esplang/internal/check"
	"esplang/internal/compile"
	"esplang/internal/ir"
	"esplang/internal/opt"
	"esplang/internal/parser"
)

// benchSrc exercises every pass: foldable arithmetic, copies, a
// constant-only channel for the cross-process analysis, and branches
// that fold away into unreachable code.
const benchSrc = `
channel cfg: int
channel data: int
channel out1: int

process confsrc {
    $i = 0;
    while (i < 4) {
        out( cfg, 40 + 2);
        i = i + 1;
    }
}

process worker {
    $n = 0;
    while (n < 4) {
        in( cfg, $k);
        $a = k;
        $b = a;
        $c = b + (2 * 3 - 6);
        if (1 < 2) {
            out( data, c);
        } else {
            out( data, 0 - 1);
        }
        n = n + 1;
    }
}

process collect {
    $n = 0;
    while (n < 4) {
        in( data, $v);
        assert( v == 42);
        out( out1, v);
        n = n + 1;
    }
}

process sink {
    $n = 0;
    while (n < 4) {
        in( out1, $v);
        n = n + 1;
    }
}
`

// BenchmarkOptimize measures the full verified-off pipeline on a program
// touching every pass. Lowering (parse/check/compile) is excluded from
// the timed region; optimization mutates in place, so each iteration
// re-lowers.
func BenchmarkOptimize(b *testing.B) {
	tree, err := parser.Parse([]byte(benchSrc))
	if err != nil {
		b.Fatal(err)
	}
	info, err := check.Check(tree)
	if err != nil {
		b.Fatal(err)
	}
	progs := make([]*ir.Program, b.N)
	for i := range progs {
		progs[i] = compile.Program(tree, info)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Optimize(progs[i], opt.All())
	}
}

// BenchmarkOptimizeVerified is the same pipeline with ir.Verify running
// after every pass — the cost of the safety net.
func BenchmarkOptimizeVerified(b *testing.B) {
	tree, err := parser.Parse([]byte(benchSrc))
	if err != nil {
		b.Fatal(err)
	}
	info, err := check.Check(tree)
	if err != nil {
		b.Fatal(err)
	}
	opts := opt.All()
	opts.Verify = true
	progs := make([]*ir.Program, b.N)
	for i := range progs {
		progs[i] = compile.Program(tree, info)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Run(progs[i], opts); err != nil {
			b.Fatal(err)
		}
	}
}
