package opt

import (
	"fmt"
	"strings"

	"esplang/internal/analysis"
	"esplang/internal/ir"
)

// Pass is a per-process rewrite. Run returns true when it changed the
// process. Passes must leave the process structurally valid (ir.Verify);
// the driver checks this after every pass when Options.Verify is set.
type Pass interface {
	Name() string
	Run(p *ir.Proc) bool
}

// ProgramPass is a whole-program rewrite, run once per driver round
// before the per-process passes so the facts it plants (e.g. channel
// constants) feed the local rewrites in the same round.
type ProgramPass interface {
	Name() string
	RunProgram(prog *ir.Program) bool
}

// funcPass adapts the package's rewrite functions to Pass.
type funcPass struct {
	name string
	fn   func(*ir.Proc) bool
}

func (f funcPass) Name() string        { return f.name }
func (f funcPass) Run(p *ir.Proc) bool { return f.fn(p) }

// crossProcPass adapts CrossProcConstants to ProgramPass.
type crossProcPass struct{}

func (crossProcPass) Name() string { return "crossproc-const" }
func (crossProcPass) RunProgram(prog *ir.Program) bool {
	return CrossProcConstants(prog) > 0
}

// fuseProcsPass computes the static rendezvous schedule and the
// schedule-aware (direct-transfer) translation. It reports a change when
// at least one channel fused. Unlike the rewrites it never touches the
// base IR, so the driver runs it once after the fixpoint — the schedule
// must be read off the settled code.
type fuseProcsPass struct{}

func (fuseProcsPass) Name() string { return "fuseprocs" }
func (fuseProcsPass) RunProgram(prog *ir.Program) bool {
	sched := analysis.ComputeSchedule(prog)
	prog.Schedule = sched
	prog.FusedSched = ir.FuseProgramSched(prog, sched)
	return len(sched.Pairs) > 0
}

// PassStats accumulates per-pass counters across a driver run.
type PassStats struct {
	Name          string
	Runs          int // invocations (per process per round, or per round for program passes)
	Changed       int // invocations that reported a change
	InstrsRemoved int // net instructions removed across all invocations
}

// Stats describes one driver run.
type Stats struct {
	Rounds       int // rounds executed before fixpoint (or the bound)
	Fixpoint     bool
	InstrsBefore int
	InstrsAfter  int
	Passes       []*PassStats // in pipeline order
}

func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "optimizer: %d instructions -> %d", s.InstrsBefore, s.InstrsAfter)
	if s.Fixpoint {
		fmt.Fprintf(&b, " (fixpoint after %d rounds)\n", s.Rounds)
	} else {
		fmt.Fprintf(&b, " (stopped at round bound %d)\n", s.Rounds)
	}
	fmt.Fprintf(&b, "%-18s %6s %8s %8s\n", "pass", "runs", "changed", "removed")
	for _, ps := range s.Passes {
		fmt.Fprintf(&b, "%-18s %6d %8d %8d\n", ps.Name, ps.Runs, ps.Changed, ps.InstrsRemoved)
	}
	return b.String()
}

func countInstrs(prog *ir.Program) int {
	n := 0
	for _, p := range prog.Procs {
		n += len(p.Code)
	}
	return n
}

// pipeline materializes the pass list opts selects, in the order the
// original hand-rolled loop applied them.
func pipeline(opts Options) (progPasses []ProgramPass, local []Pass) {
	if opts.CrossProc {
		progPasses = append(progPasses, crossProcPass{})
	}
	if opts.ConstFold {
		local = append(local, funcPass{"constfold", constFold})
	}
	if opts.CastReuse {
		local = append(local, funcPass{"castreuse", castReuse})
	}
	if opts.CopyProp {
		local = append(local, funcPass{"copyprop", copyProp})
	}
	if opts.DCE {
		local = append(local, funcPass{"unreachable", removeUnreachable})
		local = append(local, funcPass{"compactnops", compactNops})
	}
	return progPasses, local
}

// Run drives the selected passes to a whole-program fixpoint: each round
// runs the program-level passes, then every per-process pass over every
// process, and repeats while anything changed (bounded by MaxRounds).
// Interleaving the rounds this way lets facts flow both directions —
// constants planted across channels enable local folding, and local
// folding exposes new constant sends to the next cross-process round —
// which the old "cross-process once, then local rounds" loop missed.
//
// With opts.Verify set, ir.Verify runs after every pass invocation and
// Run aborts with a descriptive error naming the offending pass the
// moment a rewrite corrupts the program.
func Run(prog *ir.Program, opts Options) (*Stats, error) {
	// Any rewrite invalidates a cached fused translation, schedule, and
	// independence table.
	prog.Fused = nil
	prog.Schedule, prog.FusedSched = nil, nil
	prog.Indep = nil
	rounds := opts.MaxRounds
	if rounds == 0 {
		rounds = 8
	}
	progPasses, local := pipeline(opts)

	stats := &Stats{InstrsBefore: countInstrs(prog)}
	byName := map[string]*PassStats{}
	statFor := func(name string) *PassStats {
		ps, ok := byName[name]
		if !ok {
			ps = &PassStats{Name: name}
			byName[name] = ps
			stats.Passes = append(stats.Passes, ps)
		}
		return ps
	}
	verify := func(pass string, round int) error {
		if !opts.Verify {
			return nil
		}
		if err := ir.Verify(prog); err != nil {
			return fmt.Errorf("opt: pass %s corrupted the program (round %d): %w", pass, round+1, err)
		}
		return nil
	}

	for round := 0; round < rounds; round++ {
		stats.Rounds = round + 1
		changed := false
		for _, pp := range progPasses {
			ps := statFor(pp.Name())
			before := countInstrs(prog)
			ch := pp.RunProgram(prog)
			ps.Runs++
			if ch {
				ps.Changed++
				changed = true
			}
			ps.InstrsRemoved += before - countInstrs(prog)
			if err := verify(pp.Name(), round); err != nil {
				return stats, err
			}
		}
		for _, p := range prog.Procs {
			for _, pass := range local {
				ps := statFor(pass.Name())
				before := len(p.Code)
				ch := pass.Run(p)
				ps.Runs++
				if ch {
					ps.Changed++
					changed = true
				}
				ps.InstrsRemoved += before - len(p.Code)
				if err := verify(pass.Name(), round); err != nil {
					return stats, err
				}
			}
		}
		if !changed {
			stats.Fixpoint = true
			break
		}
	}
	stats.InstrsAfter = countInstrs(prog)
	if opts.Fuse {
		prog.Fused = ir.FuseProgram(prog)
	}
	if opts.FuseProcs {
		pp := fuseProcsPass{}
		ps := statFor(pp.Name())
		ps.Runs++
		if pp.RunProgram(prog) {
			ps.Changed++
		}
	}
	// The independence table, like the schedule, is read off the settled
	// code; the model checker's partial-order reduction consumes it.
	prog.Indep = analysis.ComputeIndependence(prog)
	return stats, nil
}

// runExtra lets tests and tools inject additional per-process passes
// (e.g. a deliberately corrupting pass) into the verified driver.
func runExtra(prog *ir.Program, opts Options, extra ...Pass) (*Stats, error) {
	// Run the normal pipeline first, then the extras once, verifying each.
	stats, err := Run(prog, opts)
	if err != nil {
		return stats, err
	}
	for _, pass := range extra {
		for _, p := range prog.Procs {
			pass.Run(p)
			if opts.Verify {
				if err := ir.Verify(prog); err != nil {
					return stats, fmt.Errorf("opt: pass %s corrupted the program: %w", pass.Name(), err)
				}
			}
		}
	}
	stats.InstrsAfter = countInstrs(prog)
	if opts.Fuse {
		// The extras may have rewritten code after Run's translation.
		prog.Fused = ir.FuseProgram(prog)
	}
	if opts.FuseProcs {
		fuseProcsPass{}.RunProgram(prog)
	}
	prog.Indep = analysis.ComputeIndependence(prog)
	return stats, nil
}
