package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	k := New()
	var order []int
	k.At(30, func() { order = append(order, 3) })
	k.At(10, func() { order = append(order, 1) })
	k.At(20, func() { order = append(order, 2) })
	k.Run(nil)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if k.Now() != 30 {
		t.Errorf("clock = %d, want 30", k.Now())
	}
}

func TestEqualTimesFIFO(t *testing.T) {
	k := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { order = append(order, i) })
	}
	k.Run(nil)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events fired out of order: %v", order)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	k := New()
	var times []int64
	k.After(10, func() {
		times = append(times, k.Now())
		k.After(5, func() {
			times = append(times, k.Now())
		})
	})
	k.Run(nil)
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Errorf("times = %v", times)
	}
}

func TestPastEventsClampToNow(t *testing.T) {
	k := New()
	k.At(100, func() {
		k.At(50, func() {
			if k.Now() != 100 {
				t.Errorf("past event fired at %d", k.Now())
			}
		})
	})
	k.Run(nil)
}

func TestRunUntil(t *testing.T) {
	k := New()
	fired := 0
	k.At(10, func() { fired++ })
	k.At(20, func() { fired++ })
	k.At(30, func() { fired++ })
	n := k.RunUntil(20)
	if n != 2 || fired != 2 {
		t.Errorf("fired %d events (returned %d), want 2", fired, n)
	}
	if k.Now() != 20 {
		t.Errorf("clock = %d, want 20", k.Now())
	}
	if k.Pending() != 1 {
		t.Errorf("pending = %d, want 1", k.Pending())
	}
}

func TestRunStopPredicate(t *testing.T) {
	k := New()
	fired := 0
	for i := int64(1); i <= 10; i++ {
		k.At(i, func() { fired++ })
	}
	k.Run(func() bool { return fired >= 3 })
	if fired != 3 {
		t.Errorf("fired = %d, want 3", fired)
	}
}

func TestStepEmpty(t *testing.T) {
	k := New()
	if k.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestMonotonicClockProperty(t *testing.T) {
	// Property: however events are scheduled, the clock never goes
	// backwards while running them.
	f := func(delays []uint16) bool {
		k := New()
		last := int64(-1)
		ok := true
		for _, d := range delays {
			k.At(int64(d), func() {
				if k.Now() < last {
					ok = false
				}
				last = k.Now()
			})
		}
		k.Run(nil)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
