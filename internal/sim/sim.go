// Package sim is a minimal discrete-event simulation kernel used by the
// Myrinet NIC model. Time is in nanoseconds; events at equal times fire
// in scheduling order (deterministic).
package sim

import (
	"container/heap"

	"esplang/internal/obs"
)

// Kernel is an event queue with a clock.
type Kernel struct {
	now int64
	seq int64
	pq  eventQueue

	// Cached metric instruments; nil when metrics are off, so the hot
	// Step path pays a nil check only.
	mEvents  *obs.Counter
	hPending *obs.Histogram
}

// SetMetrics attaches a metrics registry: every fired event bumps
// sim_events_total and samples sim_pending_events (queue depth after the
// pop, i.e. the backlog the event left behind). nil detaches.
func (k *Kernel) SetMetrics(reg *obs.Metrics) {
	if reg == nil {
		k.mEvents, k.hPending = nil, nil
		return
	}
	k.mEvents = reg.Counter("sim_events_total")
	k.hPending = reg.Histogram("sim_pending_events")
}

// New returns a kernel at time 0.
func New() *Kernel {
	return &Kernel{}
}

// Now returns the current simulation time in nanoseconds.
func (k *Kernel) Now() int64 { return k.now }

// At schedules fn at absolute time t (clamped to now).
func (k *Kernel) At(t int64, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	heap.Push(&k.pq, &event{time: t, seq: k.seq, fn: fn})
}

// After schedules fn d nanoseconds from now.
func (k *Kernel) After(d int64, fn func()) {
	k.At(k.now+d, fn)
}

// Step fires the next event; it reports whether one existed.
func (k *Kernel) Step() bool {
	if k.pq.Len() == 0 {
		return false
	}
	ev := heap.Pop(&k.pq).(*event)
	k.now = ev.time
	if k.mEvents != nil {
		k.mEvents.Inc()
		k.hPending.Observe(int64(k.pq.Len()))
	}
	ev.fn()
	return true
}

// Run fires events until the queue is empty or the predicate (when
// non-nil) returns true. It returns the number of events fired.
func (k *Kernel) Run(stop func() bool) int {
	n := 0
	for {
		if stop != nil && stop() {
			return n
		}
		if !k.Step() {
			return n
		}
		n++
	}
}

// RunUntil fires events with time <= t, then sets the clock to t.
func (k *Kernel) RunUntil(t int64) int {
	n := 0
	for k.pq.Len() > 0 && k.pq[0].time <= t {
		k.Step()
		n++
	}
	if k.now < t {
		k.now = t
	}
	return n
}

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return k.pq.Len() }

type event struct {
	time int64
	seq  int64
	fn   func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
