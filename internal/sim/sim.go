// Package sim is a minimal discrete-event simulation kernel used by the
// Myrinet NIC model. Time is in nanoseconds; events at equal times fire
// in scheduling order (deterministic).
package sim

import (
	"esplang/internal/obs"
)

// Kernel is an event queue with a clock.
type Kernel struct {
	now int64
	seq int64
	pq  eventQueue

	// Cached metric instruments; nil when metrics are off, so the hot
	// Step path pays a nil check only.
	mEvents  *obs.Counter
	hPending *obs.Histogram
}

// SetMetrics attaches a metrics registry: every fired event bumps
// sim_events_total and samples sim_pending_events (queue depth after the
// pop, i.e. the backlog the event left behind). nil detaches.
func (k *Kernel) SetMetrics(reg *obs.Metrics) {
	if reg == nil {
		k.mEvents, k.hPending = nil, nil
		return
	}
	k.mEvents = reg.Counter("sim_events_total")
	k.hPending = reg.Histogram("sim_pending_events")
}

// New returns a kernel at time 0. The queue gets a small initial
// capacity: device models keep only a handful of events outstanding, and
// the first few heap growths were visible in benchmarks that build a
// kernel per iteration.
func New() *Kernel {
	return &Kernel{pq: make(eventQueue, 0, 16)}
}

// Now returns the current simulation time in nanoseconds.
func (k *Kernel) Now() int64 { return k.now }

// Handler is the closure-free face of event scheduling: a simulated
// device implements Fire and schedules itself with AtEvent, dispatching
// on the arg it passed. The NIC model fires thousands of events per
// benchmarked operation; handler events make each one allocation-free
// where a fresh closure per schedule dominated allocation profiles.
type Handler interface {
	Fire(arg int)
}

// At schedules fn at absolute time t (clamped to now).
func (k *Kernel) At(t int64, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	k.pq.push(event{time: t, seq: k.seq, fn: fn})
}

// After schedules fn d nanoseconds from now.
func (k *Kernel) After(d int64, fn func()) {
	k.At(k.now+d, fn)
}

// AtEvent schedules h.Fire(arg) at absolute time t (clamped to now).
// Interleaves deterministically with At closures in schedule order.
func (k *Kernel) AtEvent(t int64, h Handler, arg int) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	k.pq.push(event{time: t, seq: k.seq, h: h, arg: arg})
}

// AfterEvent schedules h.Fire(arg) d nanoseconds from now.
func (k *Kernel) AfterEvent(d int64, h Handler, arg int) {
	k.AtEvent(k.now+d, h, arg)
}

// Step fires the next event; it reports whether one existed.
func (k *Kernel) Step() bool {
	if len(k.pq) == 0 {
		return false
	}
	ev := k.pq.pop()
	k.now = ev.time
	if k.mEvents != nil {
		k.mEvents.Inc()
		k.hPending.Observe(int64(len(k.pq)))
	}
	if ev.h != nil {
		ev.h.Fire(ev.arg)
	} else {
		ev.fn()
	}
	return true
}

// Run fires events until the queue is empty or the predicate (when
// non-nil) returns true. It returns the number of events fired.
func (k *Kernel) Run(stop func() bool) int {
	n := 0
	for {
		if stop != nil && stop() {
			return n
		}
		if !k.Step() {
			return n
		}
		n++
	}
}

// RunUntil fires events with time <= t, then sets the clock to t.
func (k *Kernel) RunUntil(t int64) int {
	n := 0
	for len(k.pq) > 0 && k.pq[0].time <= t {
		k.Step()
		n++
	}
	if k.now < t {
		k.now = t
	}
	return n
}

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return len(k.pq) }

type event struct {
	time int64
	seq  int64
	fn   func()  // closure event (At/After); nil for handler events
	h    Handler // handler event (AtEvent/AfterEvent); nil for closures
	arg  int
}

// eventQueue is a binary min-heap of events ordered by (time, seq),
// stored by value: pushing an event reuses the slice's spare capacity, so
// the simulation's hottest allocation site — one event node plus one
// interface box per schedule under the old container/heap version — costs
// nothing in steady state.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(ev event) {
	*q = append(*q, ev)
	h := *q
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	h := *q
	n := len(h) - 1
	ev := h[0]
	h[0] = h[n]
	h[n] = event{} // drop the fn/handler references
	*q = h[:n]
	h = h[:n]
	for i := 0; ; {
		left, right := 2*i+1, 2*i+2
		small := i
		if left < n && h.less(left, small) {
			small = left
		}
		if right < n && h.less(right, small) {
			small = right
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return ev
}
