package lexer

import (
	"testing"

	"esplang/internal/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, errs := ScanAll([]byte(src))
	if len(errs) > 0 {
		t.Fatalf("scan %q: unexpected errors: %v", src, errs[0])
	}
	var ks []token.Kind
	for _, tk := range toks {
		ks = append(ks, tk.Kind)
	}
	return ks
}

func TestOperators(t *testing.T) {
	tests := []struct {
		src  string
		want []token.Kind
	}{
		{"+ - * / %", []token.Kind{token.ADD, token.SUB, token.MUL, token.QUO, token.REM, token.EOF}},
		{"&& || !", []token.Kind{token.LAND, token.LOR, token.NOT, token.EOF}},
		{"== != < <= > >=", []token.Kind{token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ, token.EOF}},
		{"= $ # @", []token.Kind{token.ASSIGN, token.DOLLAR, token.HASH, token.AT, token.EOF}},
		{"|> ->", []token.Kind{token.PIPEGT, token.ARROW, token.EOF}},
		{"( ) { } [ ]", []token.Kind{token.LPAREN, token.RPAREN, token.LBRACE, token.RBRACE, token.LBRACK, token.RBRACK, token.EOF}},
		{", ; : . ...", []token.Kind{token.COMMA, token.SEMICOLON, token.COLON, token.DOT, token.ELLIPSIS, token.EOF}},
	}
	for _, tt := range tests {
		got := kinds(t, tt.src)
		if len(got) != len(tt.want) {
			t.Fatalf("scan %q: got %v, want %v", tt.src, got, tt.want)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("scan %q token %d: got %v, want %v", tt.src, i, got[i], tt.want[i])
			}
		}
	}
}

func TestKeywordsAndIdents(t *testing.T) {
	toks, errs := ScanAll([]byte("process pageTable while true int foo42"))
	if len(errs) > 0 {
		t.Fatalf("unexpected errors: %v", errs[0])
	}
	want := []struct {
		kind token.Kind
		lit  string
	}{
		{token.PROCESS, "process"},
		{token.IDENT, "pageTable"},
		{token.WHILE, "while"},
		{token.TRUE, "true"},
		{token.INTTYPE, "int"},
		{token.IDENT, "foo42"},
		{token.EOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Kind != w.kind {
			t.Errorf("token %d: kind %v, want %v", i, toks[i].Kind, w.kind)
		}
		if w.kind == token.IDENT && toks[i].Lit != w.lit {
			t.Errorf("token %d: lit %q, want %q", i, toks[i].Lit, w.lit)
		}
	}
}

func TestComments(t *testing.T) {
	toks, errs := ScanAll([]byte("a // line comment\nb /* block\ncomment */ c"))
	if len(errs) > 0 {
		t.Fatalf("unexpected errors: %v", errs[0])
	}
	if len(toks) != 4 { // a b c EOF
		t.Fatalf("got %d tokens, want 4: %v", len(toks), toks)
	}
}

func TestPositions(t *testing.T) {
	l := New([]byte("ab\n cd"))
	t1 := l.Next()
	if t1.Pos.Line != 1 || t1.Pos.Column != 1 {
		t.Errorf("first token at %v, want 1:1", t1.Pos)
	}
	t2 := l.Next()
	if t2.Pos.Line != 2 || t2.Pos.Column != 2 {
		t.Errorf("second token at %v, want 2:2", t2.Pos)
	}
}

func TestNumberLiterals(t *testing.T) {
	toks, errs := ScanAll([]byte("0 7 54677 1024"))
	if len(errs) > 0 {
		t.Fatalf("unexpected errors: %v", errs[0])
	}
	wantLits := []string{"0", "7", "54677", "1024"}
	for i, w := range wantLits {
		if toks[i].Kind != token.INT || toks[i].Lit != w {
			t.Errorf("token %d: got %v, want INT(%s)", i, toks[i], w)
		}
	}
}

func TestMalformedNumber(t *testing.T) {
	_, errs := ScanAll([]byte("12abc"))
	if len(errs) == 0 {
		t.Fatal("expected error for 12abc")
	}
}

func TestIllegalCharacters(t *testing.T) {
	for _, src := range []string{"?", "`", "&x", "|x"} {
		_, errs := ScanAll([]byte(src))
		if len(errs) == 0 {
			t.Errorf("scan %q: expected error", src)
		}
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	_, errs := ScanAll([]byte("a /* never closed"))
	if len(errs) == 0 {
		t.Fatal("expected unterminated-comment error")
	}
}

func TestEOFIsSticky(t *testing.T) {
	l := New(nil)
	for i := 0; i < 3; i++ {
		if tok := l.Next(); tok.Kind != token.EOF {
			t.Fatalf("call %d: got %v, want EOF", i, tok)
		}
	}
}

func TestPaperFragment(t *testing.T) {
	// A fragment straight from the paper (§4.2) must scan cleanly.
	src := `
$sr: sendT = { 7, 54677, 1024};
$ur1: userT = { send |> sr};
{ send |> { $dest, $vAddr, $size}}: userT = ur2;
`
	_, errs := ScanAll([]byte(src))
	if len(errs) > 0 {
		t.Fatalf("unexpected errors: %v", errs[0])
	}
}
