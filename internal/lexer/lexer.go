// Package lexer implements the scanner for ESP source text.
//
// The scanner is a straightforward hand-written byte scanner. ESP source is
// ASCII-oriented (identifiers, integers, C-style comments); the scanner
// tolerates arbitrary UTF-8 in comments.
package lexer

import (
	"fmt"

	"esplang/internal/diag"
	"esplang/internal/token"
)

// Error is a lexical error with its source position. It is the shared
// compiler diagnostic, so lexical errors render with caret excerpts like
// every other stage's.
type Error = diag.Diagnostic

// Lexer scans ESP source text into tokens.
type Lexer struct {
	src    []byte
	offset int // current reading offset
	line   int
	col    int
	errs   []*Error
}

// New returns a lexer over src.
func New(src []byte) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{Offset: l.offset, Line: l.line, Column: l.col}
}

func (l *Lexer) peek() byte {
	if l.offset >= len(l.src) {
		return 0
	}
	return l.src[l.offset]
}

func (l *Lexer) peekAt(n int) byte {
	if l.offset+n >= len(l.src) {
		return 0
	}
	return l.src[l.offset+n]
}

func (l *Lexer) advance() byte {
	c := l.src[l.offset]
	l.offset++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isLetter(c byte) bool {
	return 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func (l *Lexer) skipSpace() {
	for l.offset < len(l.src) {
		switch l.peek() {
		case ' ', '\t', '\r', '\n':
			l.advance()
		default:
			return
		}
	}
}

// Next returns the next token, skipping comments. At end of input it
// returns an EOF token (repeatedly, if called again).
func (l *Lexer) Next() token.Token {
	for {
		t := l.next()
		if t.Kind != token.COMMENT {
			return t
		}
	}
}

// NextWithComments returns the next token including COMMENT tokens.
func (l *Lexer) NextWithComments() token.Token { return l.next() }

func (l *Lexer) next() token.Token {
	l.skipSpace()
	pos := l.pos()
	if l.offset >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.advance()
	switch {
	case isLetter(c):
		start := pos.Offset
		for l.offset < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		lit := string(l.src[start:l.offset])
		return token.Token{Kind: token.Lookup(lit), Pos: pos, Lit: lit}
	case isDigit(c):
		start := pos.Offset
		for l.offset < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.offset < len(l.src) && isLetter(l.peek()) {
			l.errorf(pos, "malformed number: letter %q follows digits", l.peek())
		}
		return token.Token{Kind: token.INT, Pos: pos, Lit: string(l.src[start:l.offset])}
	}

	two := func(second byte, yes, no token.Kind) token.Token {
		if l.peek() == second {
			l.advance()
			return token.Token{Kind: yes, Pos: pos}
		}
		return token.Token{Kind: no, Pos: pos}
	}

	switch c {
	case '+':
		return token.Token{Kind: token.ADD, Pos: pos}
	case '-':
		return two('>', token.ARROW, token.SUB)
	case '*':
		return token.Token{Kind: token.MUL, Pos: pos}
	case '%':
		return token.Token{Kind: token.REM, Pos: pos}
	case '/':
		switch l.peek() {
		case '/':
			start := pos.Offset
			for l.offset < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			return token.Token{Kind: token.COMMENT, Pos: pos, Lit: string(l.src[start:l.offset])}
		case '*':
			start := pos.Offset
			l.advance() // consume '*'
			closed := false
			for l.offset < len(l.src) {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(pos, "unterminated block comment")
			}
			return token.Token{Kind: token.COMMENT, Pos: pos, Lit: string(l.src[start:l.offset])}
		}
		return token.Token{Kind: token.QUO, Pos: pos}
	case '&':
		if l.peek() == '&' {
			l.advance()
			return token.Token{Kind: token.LAND, Pos: pos}
		}
		l.errorf(pos, "unexpected character %q (ESP has no unary '&')", c)
		return token.Token{Kind: token.ILLEGAL, Pos: pos, Lit: string(c)}
	case '|':
		switch l.peek() {
		case '|':
			l.advance()
			return token.Token{Kind: token.LOR, Pos: pos}
		case '>':
			l.advance()
			return token.Token{Kind: token.PIPEGT, Pos: pos}
		}
		l.errorf(pos, "unexpected character %q (expected '||' or '|>')", c)
		return token.Token{Kind: token.ILLEGAL, Pos: pos, Lit: string(c)}
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '=':
		return two('=', token.EQL, token.ASSIGN)
	case '<':
		return two('=', token.LEQ, token.LSS)
	case '>':
		return two('=', token.GEQ, token.GTR)
	case '$':
		return token.Token{Kind: token.DOLLAR, Pos: pos}
	case '#':
		return token.Token{Kind: token.HASH, Pos: pos}
	case '@':
		return token.Token{Kind: token.AT, Pos: pos}
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACK, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACK, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMICOLON, Pos: pos}
	case ':':
		return token.Token{Kind: token.COLON, Pos: pos}
	case '.':
		if l.peek() == '.' && l.peekAt(1) == '.' {
			l.advance()
			l.advance()
			return token.Token{Kind: token.ELLIPSIS, Pos: pos}
		}
		return token.Token{Kind: token.DOT, Pos: pos}
	}
	l.errorf(pos, "unexpected character %q", c)
	return token.Token{Kind: token.ILLEGAL, Pos: pos, Lit: string(c)}
}

// ScanAll tokenizes the whole input (excluding comments) and returns the
// tokens up to and including EOF, plus any lexical errors.
func ScanAll(src []byte) ([]token.Token, []*Error) {
	l := New(src)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, l.Errors()
		}
	}
}
