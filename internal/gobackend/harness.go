// The generated file's fixed parts: the package header and the JSON
// harness appended after the emitted step functions. The harness
// declares its own copies of the wire structs from run.go (the child
// module can only import the public esplang package), rebuilds input
// value trees children-first, replicates the fuzz oracle's
// EventLog-and-FNV trace hash through a structural obs.Tracer
// implementation, and answers one request line per invocation.
package gobackend

const genHeader = `
package main

import (
	"encoding/json"
	"fmt"
	"hash"
	"hash/fnv"
	"os"
	"time"

	esplang "esplang"
)

// b2i is the generated code's boolean constructor: comparison results
// become machine values without the indirect call through the public
// esplang.BoolVal function variable.
func b2i(b bool) esplang.Value {
	if b {
		return esplang.Value{Int: 1}
	}
	return esplang.Value{Int: 0}
}

`

const genHarness = `
// ---- wire protocol (mirrors esplang/internal/gobackend) ----

type tree struct {
	K string
	I int64
	T int
	G int
	N int
	E []*tree
}

type item struct {
	Case int
	Val  *tree
}

type request struct {
	MaxLive    int
	StepBudget int64
	MaxCycles  int64
	Trace      bool
	Repeat     int
	Writers    map[string][]item
	Readers    map[string]int
}

type wireFault struct {
	Kind int
	Msg  string
	Proc string
	PC   int
	Line int
	Col  int
	Off  int
	File string
}

type wireSnap struct {
	S int64
	O *wireObj
}

type wireObj struct {
	Tag int
	E   []wireSnap
}

type reply struct {
	Result  int
	Fault   *wireFault
	Cycles  int64
	Stats   esplang.MachineStats
	Outputs map[string][]wireSnap
	Trace   string
	NS      int64
	Error   string
}

// traceLog replicates the event stream digest the fuzz oracle computes
// over an obs.EventLog: one tab-separated line per event (sequence,
// timestamp, kind, proc, arg, name) folded into FNV-64a. It satisfies
// the machine's Tracer interface structurally.
type traceLog struct {
	n uint64
	h hash.Hash64
}

func (t *traceLog) add(ts int64, kind string, proc, arg int, name string) {
	fmt.Fprintf(t.h, "%d\t%d\t%s\t%d\t%d\t%s\n", t.n, ts, kind, proc, arg, name)
	t.n++
}

func (t *traceLog) ProcStart(ts int64, proc int, name string)  { t.add(ts, "start", proc, 0, name) }
func (t *traceLog) ProcStop(ts int64, proc int, status string) { t.add(ts, "stop", proc, 0, status) }
func (t *traceLog) Rendezvous(ts int64, ch string, sender, receiver int) {
	t.add(ts, "rendezvous", sender, receiver, ch)
}
func (t *traceLog) Alloc(ts int64, proc int, live int)   { t.add(ts, "alloc", proc, live, "") }
func (t *traceLog) Free(ts int64, proc int, live int)    { t.add(ts, "free", proc, live, "") }
func (t *traceLog) Fault(ts int64, proc int, msg string) { t.add(ts, "fault", proc, 0, msg) }
func (t *traceLog) Poll(ts int64, ch string)             { t.add(ts, "poll", -1, 0, ch) }

func (t *traceLog) sum() string {
	return fmt.Sprintf("%d events, fnv %x", t.n, t.h.Sum64())
}

// buildVal rebuilds one serialized value, children before parents —
// the order the in-process harnesses construct nested inputs — so the
// allocation charge and trace sequences match bit-for-bit.
func buildVal(m *esplang.Machine, t *tree) esplang.Value {
	switch t.K {
	case "r":
		elems := make([]esplang.Value, len(t.E))
		for i, c := range t.E {
			elems[i] = buildVal(m, c)
		}
		return m.NewRecordVByID(t.T, elems...)
	case "u":
		return m.NewUnionVByID(t.T, t.G, buildVal(m, t.E[0]))
	case "a":
		return m.NewArrayVByID(t.T, t.N, buildVal(m, t.E[0]))
	}
	return esplang.IntVal(t.I)
}

func snapToWire(s esplang.Snapshot) wireSnap {
	if s.Obj == nil {
		return wireSnap{S: s.Scalar}
	}
	o := &wireObj{Tag: s.Obj.Tag, E: make([]wireSnap, len(s.Obj.Elems))}
	for i, c := range s.Obj.Elems {
		o.E[i] = snapToWire(c)
	}
	return wireSnap{O: o}
}

func runOnce(prog *esplang.Program, req *request) (rep reply) {
	defer func() {
		if r := recover(); r != nil {
			rep.Error = fmt.Sprintf("panic in generated run: %v", r)
		}
	}()
	m := prog.Machine(esplang.MachineConfig{
		MaxLiveObjects: req.MaxLive,
		StepBudget:     req.StepBudget,
		MaxCycles:      req.MaxCycles,
		Engine:         esplang.EngineCompiled,
	})
	if err := m.InstallCompiled(compiledProcs); err != nil {
		rep.Error = err.Error()
		return rep
	}
	var tl *traceLog
	if req.Trace {
		tl = &traceLog{h: fnv.New64a()}
		m.SetTracer(tl)
	}
	for name, items := range req.Writers {
		q := new(esplang.QueueWriter)
		for _, it := range items {
			it := it
			q.Push(it.Case, func(mm *esplang.Machine) esplang.Value { return buildVal(mm, it.Val) })
		}
		if err := m.BindWriter(name, q); err != nil {
			rep.Error = err.Error()
			return rep
		}
	}
	readers := map[string]*esplang.CollectReader{}
	for name, limit := range req.Readers {
		r := &esplang.CollectReader{Limit: limit}
		if err := m.BindReader(name, r); err != nil {
			rep.Error = err.Error()
			return rep
		}
		readers[name] = r
	}
	res := m.Run()
	rep.Result = int(res)
	rep.Cycles = m.Cycles
	rep.Stats = m.Stats
	rep.Outputs = map[string][]wireSnap{}
	if f := m.Fault(); f != nil {
		rep.Fault = &wireFault{
			Kind: int(f.Kind), Msg: f.Msg, Proc: f.Proc, PC: f.PC,
			Line: f.Pos.Line, Col: f.Pos.Column, Off: f.Pos.Offset, File: f.File,
		}
	}
	for name, r := range readers {
		ws := make([]wireSnap, len(r.Values))
		for i, s := range r.Values {
			ws[i] = snapToWire(s)
		}
		rep.Outputs[name] = ws
	}
	if tl != nil {
		rep.Trace = tl.sum()
	}
	return rep
}

func emitReply(rep reply) {
	out, err := json.Marshal(&rep)
	if err != nil {
		out = []byte("{\"Error\":\"reply marshal failure\"}")
	}
	out = append(out, '\n')
	os.Stdout.Write(out)
}

func main() {
	var req request
	if err := json.NewDecoder(os.Stdin).Decode(&req); err != nil {
		emitReply(reply{Error: "bad request: " + err.Error()})
		return
	}
	prog, err := esplang.Compile(progSource, esplang.CompileOptions{
		Name: progName, File: progFile, NoOptimize: progNoOptimize, VerifyIR: progVerifyIR,
	})
	if err != nil {
		emitReply(reply{Error: "recompile: " + err.Error()})
		return
	}
	if req.Repeat < 1 {
		req.Repeat = 1
	}
	var rep reply
	start := time.Now()
	for i := 0; i < req.Repeat; i++ {
		rep = runOnce(prog, &req)
		if rep.Error != "" {
			break
		}
	}
	rep.NS = time.Since(start).Nanoseconds()
	emitReply(rep)
}
`
