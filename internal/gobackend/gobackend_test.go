package gobackend

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	esplang "esplang"
	"esplang/internal/obs"
	"esplang/internal/vm"
)

const add5Src = `channel inC: int external writer
channel outC: int external reader
interface feed( out inC) { Put( $v) }

process add5 {
    while (true) {
        in( inC, $i);
        out( outC, i + 5);
    }
}
`

// pingpongSrc exercises the direct-transfer lowering: channel c is a
// statically-matched scalar pair, so the generated code runs
// CGSendDirScalar/CGRecvDirScalar while the baseline oracle scans.
const pingpongSrc = `channel c: int
channel done: int external reader

process producer {
    $i = 0;
    while (i < 50) {
        out( c, i);
        i = i + 1;
    }
}

process consumer {
    $sum = 0;
    $n = 0;
    while (n < 50) {
        in( c, $v);
        sum = sum + v;
        n = n + 1;
    }
    out( done, sum);
}
`

// faultSrc faults with a division by zero at a known source line.
const faultSrc = `channel outC: int external reader
process p {
    $a = 10;
    $b = 0;
    out( outC, a / b);
}
`

func requireToolchain(t *testing.T) {
	t.Helper()
	if _, err := Toolchain(); err != nil {
		t.Skipf("skipping: %v", err)
	}
}

func eventSum(evs []obs.Event) string {
	h := fnv.New64a()
	for _, e := range evs {
		fmt.Fprintln(h, e)
	}
	return fmt.Sprintf("%d events, fnv %x", len(evs), h.Sum64())
}

// baselineRender runs prog in-process under the baseline engine with the
// given inputs and renders every observable the subprocess protocol
// carries, in the same shape as compiledRender.
func baselineRender(t *testing.T, src, name string, req *Request, feed map[string][]int64) string {
	t.Helper()
	prog, err := esplang.Compile(src, esplang.CompileOptions{Name: name, File: name + ".esp", VerifyIR: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := prog.Machine(esplang.MachineConfig{
		MaxLiveObjects: req.MaxLive,
		StepBudget:     req.StepBudget,
		MaxCycles:      req.MaxCycles,
		Engine:         esplang.EngineBaseline,
	})
	log := obs.NewEventLog()
	m.SetTracer(log)
	readers := map[string]*esplang.CollectReader{}
	for chName := range req.Readers {
		r := &esplang.CollectReader{Limit: req.Readers[chName]}
		if err := m.BindReader(chName, r); err != nil {
			t.Fatal(err)
		}
		readers[chName] = r
	}
	for chName, vals := range feed {
		w := &esplang.QueueWriter{}
		for _, v := range vals {
			v := v
			w.Push(0, func(*esplang.Machine) esplang.Value { return esplang.IntVal(v) })
		}
		if err := m.BindWriter(chName, w); err != nil {
			t.Fatal(err)
		}
	}
	res := m.Run()
	outs := map[string][]vm.Snapshot{}
	for chName, r := range readers {
		outs[chName] = r.Values
	}
	return renderAll(prog, res.String(), m.Fault(), m.Cycles, m.Stats, outs, eventSum(log.Events()))
}

func compiledRender(t *testing.T, src, name string, req *Request) string {
	t.Helper()
	runner, err := Build(src, BuildOptions{Name: name, File: name + ".esp", VerifyIR: true, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	res, err := runner.Run(req)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	prog, err := esplang.Compile(src, esplang.CompileOptions{Name: name, File: name + ".esp", VerifyIR: true})
	if err != nil {
		t.Fatal(err)
	}
	return renderAll(prog, res.Result.String(), res.Fault, res.Cycles, res.Stats, res.Outputs, res.Trace)
}

// renderAll is the shared observable rendering: result, fault (with
// file:line), cycle meter, statistics (DirectXfers zeroed — diagnostic
// only), per-channel outputs in declaration order, trace hash.
func renderAll(prog *esplang.Program, result string, f *vm.Fault, cycles int64, st vm.Stats, outs map[string][]vm.Snapshot, trace string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "result: %s\n", result)
	if f != nil {
		fmt.Fprintf(&b, "fault: %v\n", f)
	} else {
		b.WriteString("fault: none\n")
	}
	st.DirectXfers = 0
	fmt.Fprintf(&b, "cycles: %d\nstats: %+v\n", cycles, st)
	for _, ch := range prog.IR.Channels {
		vals, ok := outs[ch.Name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%s:", ch.Name)
		for _, v := range vals {
			fmt.Fprintf(&b, " %d", v.Scalar)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "trace: %s\n", trace)
	return b.String()
}

func scalarItems(vals []int64) []Item {
	items := make([]Item, len(vals))
	for i, v := range vals {
		items[i] = Item{Case: 0, Val: Scalar(v)}
	}
	return items
}

func TestCompiledMatchesBaselineAdd5(t *testing.T) {
	requireToolchain(t)
	vals := []int64{1, 7, 42, -3, 100, 5}
	req := &Request{
		MaxLive: 64,
		Trace:   true,
		Writers: map[string][]Item{"inC": scalarItems(vals)},
		Readers: map[string]int{"outC": 0},
	}
	base := baselineRender(t, add5Src, "add5", req, map[string][]int64{"inC": vals})
	got := compiledRender(t, add5Src, "add5", req)
	if got != base {
		t.Errorf("compiled run diverges from baseline:\n--- baseline ---\n%s--- compiled ---\n%s", base, got)
	}
}

func TestCompiledMatchesBaselineDirectTransfer(t *testing.T) {
	requireToolchain(t)
	req := &Request{
		MaxLive: 64,
		Trace:   true,
		Writers: map[string][]Item{},
		Readers: map[string]int{"done": 0},
	}
	base := baselineRender(t, pingpongSrc, "pingpong", req, nil)
	got := compiledRender(t, pingpongSrc, "pingpong", req)
	if got != base {
		t.Errorf("compiled run diverges from baseline:\n--- baseline ---\n%s--- compiled ---\n%s", base, got)
	}
	// The direct-transfer lowering must actually be exercised: the
	// generated source carries the fast-path bridge calls.
	prog, err := esplang.Compile(pingpongSrc, esplang.CompileOptions{Name: "pingpong", File: "pingpong.esp", VerifyIR: true})
	if err != nil {
		t.Fatal(err)
	}
	src, err := Emit(prog, Options{VerifyIR: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "CGSendDirScalar") || !strings.Contains(src, "CGRecvDirScalar") {
		t.Errorf("statically-matched scalar channel did not lower to direct transfers:\n%s", src)
	}
}

// TestCompiledFusedPairQuiet: the statically-paired pingpong processes
// must compile into a fused function guarded by quiet-machine
// dispatchers, and a quiet run — which actually executes the fused fast
// path with its inline rendezvous and deferred context switches — must
// report the same result, cycles, stats, and outputs as the traced
// baseline (which cannot produce a trace digest to compare, so that
// line is spliced out of both renders).
func TestCompiledFusedPairQuiet(t *testing.T) {
	requireToolchain(t)
	prog, err := esplang.Compile(pingpongSrc, esplang.CompileOptions{Name: "pingpong", File: "pingpong.esp", VerifyIR: true})
	if err != nil {
		t.Fatal(err)
	}
	src, err := Emit(prog, Options{VerifyIR: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"func fused0x1", "CGQuiet", "CGXfer(", "step0gen", "step1gen"} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q: fused pair not emitted as designed", want)
		}
	}

	traced := &Request{MaxLive: 64, Trace: true, Writers: map[string][]Item{}, Readers: map[string]int{"done": 0}}
	quiet := &Request{MaxLive: 64, Writers: map[string][]Item{}, Readers: map[string]int{"done": 0}}
	base := baselineRender(t, pingpongSrc, "pingpong", traced, nil)
	got := compiledRender(t, pingpongSrc, "pingpong", quiet)
	splice := func(s string) string {
		if i := strings.LastIndex(s, "trace: "); i >= 0 {
			return s[:i]
		}
		return s
	}
	if splice(got) != splice(base) {
		t.Errorf("fused quiet run diverges from baseline:\n--- baseline ---\n%s--- fused quiet ---\n%s", splice(base), splice(got))
	}
}

func TestCompiledFaultFileLine(t *testing.T) {
	requireToolchain(t)
	req := &Request{
		MaxLive: 64,
		Trace:   true,
		Writers: map[string][]Item{},
		Readers: map[string]int{"outC": 0},
	}
	base := baselineRender(t, faultSrc, "boom", req, nil)
	got := compiledRender(t, faultSrc, "boom", req)
	if got != base {
		t.Errorf("compiled fault diverges from baseline:\n--- baseline ---\n%s--- compiled ---\n%s", base, got)
	}
	if !strings.Contains(got, "boom.esp:5") {
		t.Errorf("compiled fault lost the source file:line:\n%s", got)
	}
}

func TestBuildCache(t *testing.T) {
	requireToolchain(t)
	cache := t.TempDir()
	r1, err := Build(add5Src, BuildOptions{Name: "add5", File: "add5.esp", CacheDir: cache})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Error("first build unexpectedly reported a cache hit")
	}
	r2, err := Build(add5Src, BuildOptions{Name: "add5", File: "add5.esp", CacheDir: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Error("second build missed the cache")
	}
	if r1.Bin != r2.Bin {
		t.Errorf("cache key unstable: %s vs %s", r1.Bin, r2.Bin)
	}
}

func TestNoToolchain(t *testing.T) {
	t.Setenv("PATH", t.TempDir())
	if _, err := Build(add5Src, BuildOptions{Name: "add5"}); !errors.Is(err, ErrNoToolchain) {
		t.Errorf("Build without a toolchain: got %v, want ErrNoToolchain", err)
	}
}

func TestWriteTree(t *testing.T) {
	prog, err := esplang.Compile(add5Src, esplang.CompileOptions{Name: "add5", File: "add5.esp"})
	if err != nil {
		t.Fatal(err)
	}
	src, err := Emit(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "gen")
	if err := WriteTree(dir, src); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"main.go", "go.mod"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("WriteTree did not produce %s: %v", f, err)
		}
	}
}
