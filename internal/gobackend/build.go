// Building generated packages: the emitted main.go is written into a
// tiny child module (module espcompiled) whose go.mod replaces the
// esplang requirement with the on-disk repository root, so the child
// compiles against the exact runtime it will drive. Build products are
// cached in the user cache directory keyed on a content hash of the
// generated source, so re-running the same program skips the toolchain
// entirely (the 10x benchmark numbers are quoted against a warm cache).
package gobackend

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	esplang "esplang"
)

// ErrNoToolchain reports that no `go` binary is on PATH. Callers treat
// it as a graceful-degradation signal: esprun prints a clear message,
// the differential tests and the fuzzer's compiled oracle stage skip.
var ErrNoToolchain = errors.New("gobackend: no Go toolchain (`go`) found on PATH")

// BuildError reports that the host toolchain rejected a generated
// package. It is a distinct type so the fuzzer can classify backend
// build failures separately from semantic divergences.
type BuildError struct {
	Output string
	Err    error
}

func (e *BuildError) Error() string {
	return fmt.Sprintf("gobackend: go build failed: %v\n%s", e.Err, e.Output)
}

func (e *BuildError) Unwrap() error { return e.Err }

// BuildOptions configures Build.
type BuildOptions struct {
	// Name and File are the esplang.CompileOptions used for the program
	// (and replayed by the generated harness).
	Name string
	File string
	// NoOptimize and VerifyIR mirror the same CompileOptions fields.
	NoOptimize bool
	VerifyIR   bool
	// CacheDir overrides the build-product cache root (tests).
	CacheDir string
}

// Toolchain returns the path of the host `go` binary, or ErrNoToolchain.
func Toolchain() (string, error) {
	path, err := exec.LookPath("go")
	if err != nil {
		return "", ErrNoToolchain
	}
	return path, nil
}

// moduleRoot locates the esplang module root for the child's replace
// directive: the directory of this source file at build time (which is
// where the module lives for every in-repo binary and test), verified
// by the presence of go.mod, with `go env GOMOD` as fallback.
func moduleRoot(goTool string) (string, error) {
	if _, file, _, ok := runtime.Caller(0); ok {
		root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
		if fi, err := os.Stat(filepath.Join(root, "go.mod")); err == nil && !fi.IsDir() {
			return root, nil
		}
	}
	out, err := exec.Command(goTool, "env", "GOMOD").Output()
	if err == nil {
		gomod := strings.TrimSpace(string(out))
		if gomod != "" && gomod != "/dev/null" && gomod != "NUL" {
			return filepath.Dir(gomod), nil
		}
	}
	return "", errors.New("gobackend: cannot locate the esplang module root")
}

// childGoMod renders the generated module's go.mod.
func childGoMod(root string) string {
	return fmt.Sprintf("module espcompiled\n\ngo 1.22\n\nrequire esplang v0.0.0\n\nreplace esplang => %s\n", root)
}

// WriteTree writes a buildable source tree (main.go + go.mod) for the
// emitted mainSrc into dir — the implementation of espc -emit-go.
func WriteTree(dir, mainSrc string) error {
	goTool, err := Toolchain()
	root := ""
	if err == nil {
		root, err = moduleRoot(goTool)
	} else if _, file, _, ok := runtime.Caller(0); ok {
		// Even without a toolchain the tree is still useful to inspect;
		// fall back to the compile-time source location.
		root = filepath.Dir(filepath.Dir(filepath.Dir(file)))
		err = nil
	}
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(mainSrc), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "go.mod"), []byte(childGoMod(root)), 0o644)
}

// cacheRoot returns the build-product cache directory.
func cacheRoot(override string) string {
	if override != "" {
		return override
	}
	if dir, err := os.UserCacheDir(); err == nil {
		return filepath.Join(dir, "espc-gobuild")
	}
	return filepath.Join(os.TempDir(), "espc-gobuild")
}

// Build emits, writes, and compiles the generated package for src,
// returning a Runner for the cached binary. The cache key covers the
// generated source and the child go.mod (which embeds the module root),
// so any change to the program, the emitter, or the runtime location
// forces a rebuild; an existing binary is reused without invoking the
// toolchain at all.
func Build(src string, o BuildOptions) (*Runner, error) {
	if _, err := Toolchain(); err != nil {
		return nil, err
	}
	prog, err := esplang.Compile(src, esplang.CompileOptions{
		Name: o.Name, File: o.File, NoOptimize: o.NoOptimize, VerifyIR: o.VerifyIR,
	})
	if err != nil {
		return nil, fmt.Errorf("gobackend: compile: %w", err)
	}
	return BuildProgram(prog, o)
}

// BuildProgram is Build for an already-compiled program. prog must have
// been compiled with the options in o.
func BuildProgram(prog *esplang.Program, o BuildOptions) (*Runner, error) {
	goTool, err := Toolchain()
	if err != nil {
		return nil, err
	}
	mainSrc, err := Emit(prog, Options{NoOptimize: o.NoOptimize, VerifyIR: o.VerifyIR})
	if err != nil {
		return nil, err
	}
	root, err := moduleRoot(goTool)
	if err != nil {
		return nil, err
	}
	gomod := childGoMod(root)

	sum := sha256.Sum256([]byte(mainSrc + "\x00" + gomod))
	key := hex.EncodeToString(sum[:8])
	dir := filepath.Join(cacheRoot(o.CacheDir), key)
	bin := filepath.Join(dir, "espcompiled")
	if fi, err := os.Stat(bin); err == nil && !fi.IsDir() {
		return &Runner{Bin: bin, Dir: dir, Cached: true}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(mainSrc), 0o644); err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		return nil, err
	}
	cmd := exec.Command(goTool, "build", "-o", bin, ".")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, &BuildError{Output: string(out), Err: err}
	}
	return &Runner{Bin: bin, Dir: dir}, nil
}
