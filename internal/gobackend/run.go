// Driving generated binaries: the parent sends one line of JSON on the
// child's stdin (machine config, repeat count, and the external-channel
// inputs as serialized value trees) and reads one line of JSON back
// (run result, fault, cycle meter, Stats, output snapshots, and the
// trace hash). Both sides declare structurally identical wire structs —
// the generated main package cannot import this one — and the reply is
// reconstructed here into the vm's own types so callers compare
// compiled runs against in-process engines with no translation layer.
package gobackend

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os/exec"

	"esplang/internal/token"
	"esplang/internal/vm"
)

// Tree is the wire form of one external input value, serialized by
// dense type id. The child rebuilds trees depth-first, children before
// parents — the same order the in-process harnesses' Build closures
// construct values — so allocation charges and trace events line up
// bit-for-bit.
type Tree struct {
	K string  // "s" scalar, "r" record, "u" union, "a" array
	I int64   // scalar value
	T int     // dense type id
	G int     // union tag
	N int     // array length
	E []*Tree // record fields / union payload / array init
}

// Scalar, Record, Union, and Array build wire trees.
func Scalar(v int64) *Tree { return &Tree{K: "s", I: v} }

func Record(typeID int, elems ...*Tree) *Tree { return &Tree{K: "r", T: typeID, E: elems} }

func Union(typeID, tag int, payload *Tree) *Tree {
	return &Tree{K: "u", T: typeID, G: tag, E: []*Tree{payload}}
}

func Array(typeID, n int, init *Tree) *Tree {
	return &Tree{K: "a", T: typeID, N: n, E: []*Tree{init}}
}

// Item is one queued external-writer message.
type Item struct {
	Case int
	Val  *Tree
}

// Request is the parent→child line. Only the channels named in Writers
// and Readers are bound in the child — binding an external channel
// changes the machine's poll sequence, so the set must mirror whatever
// the in-process harness being compared against binds.
type Request struct {
	MaxLive    int
	StepBudget int64
	MaxCycles  int64
	Trace      bool
	Repeat     int
	Writers    map[string][]Item
	Readers    map[string]int
}

type wireFault struct {
	Kind int
	Msg  string
	Proc string
	PC   int
	Line int
	Col  int
	Off  int
	File string
}

type wireSnap struct {
	S int64
	O *wireObj
}

type wireObj struct {
	Tag int
	E   []wireSnap
}

type wireReply struct {
	Result  int
	Fault   *wireFault
	Cycles  int64
	Stats   vm.Stats
	Outputs map[string][]wireSnap
	Trace   string
	NS      int64
	Error   string
}

// Result is one compiled-engine run, reconstructed into vm types. The
// snapshots carry a nil Type (dense ids are not resolved back); every
// renderer in the repo formats snapshots from Scalar/Tag/Elems only.
type Result struct {
	Result  vm.RunResult
	Fault   *vm.Fault
	Cycles  int64
	Stats   vm.Stats
	Outputs map[string][]vm.Snapshot
	Trace   string
	// NS is the child-measured wall time of the whole repeat loop in
	// nanoseconds (excludes process startup and program compilation).
	NS int64
}

// Runner drives one cached generated binary.
type Runner struct {
	Bin    string
	Dir    string
	Cached bool // the binary came from the build cache without a rebuild
}

// Run executes one request against the generated binary.
func (r *Runner) Run(req *Request) (*Result, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(r.Bin)
	cmd.Stdin = bytes.NewReader(append(body, '\n'))
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("gobackend: generated binary failed: %v\nstderr: %s", err, errb.String())
	}
	var rep wireReply
	if err := json.Unmarshal(bytes.TrimSpace(out.Bytes()), &rep); err != nil {
		return nil, fmt.Errorf("gobackend: bad reply from generated binary: %v\nstdout: %s", err, out.String())
	}
	if rep.Error != "" {
		return nil, fmt.Errorf("gobackend: generated binary reported: %s", rep.Error)
	}
	res := &Result{
		Result:  vm.RunResult(rep.Result),
		Cycles:  rep.Cycles,
		Stats:   rep.Stats,
		Outputs: map[string][]vm.Snapshot{},
		Trace:   rep.Trace,
		NS:      rep.NS,
	}
	if w := rep.Fault; w != nil {
		res.Fault = &vm.Fault{
			Kind: vm.FaultKind(w.Kind),
			Msg:  w.Msg,
			Proc: w.Proc,
			PC:   w.PC,
			Pos:  token.Pos{Offset: w.Off, Line: w.Line, Column: w.Col},
			File: w.File,
		}
	}
	for name, ws := range rep.Outputs {
		snaps := make([]vm.Snapshot, len(ws))
		for i, w := range ws {
			snaps[i] = snapFromWire(w)
		}
		res.Outputs[name] = snaps
	}
	return res, nil
}

func snapFromWire(w wireSnap) vm.Snapshot {
	if w.O == nil {
		return vm.Snapshot{Scalar: w.S}
	}
	obj := &vm.SnapObject{Tag: w.O.Tag, Elems: make([]vm.Snapshot, len(w.O.E))}
	for i, c := range w.O.E {
		obj.Elems[i] = snapFromWire(c)
	}
	return vm.Snapshot{Obj: obj}
}
