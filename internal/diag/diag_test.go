package diag_test

import (
	"fmt"
	"strings"
	"testing"

	"esplang/internal/diag"
	"esplang/internal/token"
)

func TestRenderCaret(t *testing.T) {
	src := "channel c: int\nprocess p {\n    out( c, x);\n}\n"
	d := diag.New(token.Pos{Line: 3, Column: 13}, "undefined variable x")
	got := diag.Render(d, "t.esp", src)
	want := "t.esp:3:13: error: undefined variable x\n    out( c, x);\n            ^"
	if got != want {
		t.Errorf("Render:\n%q\nwant\n%q", got, want)
	}
}

func TestRenderTabAlignment(t *testing.T) {
	src := "\tout( c, x);\n"
	d := diag.New(token.Pos{Line: 1, Column: 10}, "bad")
	got := diag.Render(d, "", src)
	lines := strings.Split(got, "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), got)
	}
	// The tab expands to 4 spaces in both the excerpt and the caret pad,
	// so the caret sits under column 10's character.
	caretCol := strings.IndexByte(lines[2], '^')
	wantCol := strings.IndexByte(lines[1], 'x')
	if caretCol != wantCol {
		t.Errorf("caret at display column %d, 'x' at %d\n%s", caretCol, wantCol, got)
	}
}

func TestRenderErrorList(t *testing.T) {
	src := "a\nb\n"
	l := diag.List{
		diag.New(token.Pos{Line: 1, Column: 1}, "first"),
		diag.New(token.Pos{Line: 2, Column: 1}, "second"),
	}
	got := diag.RenderError(l, "f.esp", src)
	if !strings.Contains(got, "f.esp:1:1: error: first") ||
		!strings.Contains(got, "f.esp:2:1: error: second") {
		t.Errorf("missing diagnostics:\n%s", got)
	}
	// Wrapped lists unwrap.
	wrapped := fmt.Errorf("check: %w", l)
	if diag.RenderError(wrapped, "f.esp", src) != got {
		t.Error("wrapped list renders differently")
	}
	// Non-diagnostic errors fall back to Error().
	plain := fmt.Errorf("plain failure")
	if diag.RenderError(plain, "f.esp", src) != "plain failure" {
		t.Error("plain error not passed through")
	}
}

func TestListError(t *testing.T) {
	var l diag.List
	if l.Error() != "no errors" {
		t.Errorf("empty list: %q", l.Error())
	}
	if l.Err() != nil {
		t.Error("empty list Err() != nil")
	}
	l = append(l, diag.New(token.Pos{Line: 1, Column: 2}, "oops"))
	if l.Error() != "1:2: oops" {
		t.Errorf("single: %q", l.Error())
	}
	l = append(l, diag.New(token.Pos{Line: 3, Column: 4}, "again"))
	if l.Error() != "1:2: oops (and 1 more errors)" {
		t.Errorf("multi: %q", l.Error())
	}
}

func TestRenderInvalidPosNoExcerpt(t *testing.T) {
	d := diag.New(token.Pos{}, "nowhere")
	if got := diag.Render(d, "f.esp", "line\n"); strings.Contains(got, "\n") {
		t.Errorf("excerpt emitted for invalid pos:\n%s", got)
	}
}

func TestRenderNotes(t *testing.T) {
	src := "process p {\n    $d = alloc();\n    unlink( d);\n    unlink( d);\n}\n"
	d := &diag.Diagnostic{
		Pos:      token.Pos{Line: 4, Column: 5},
		Msg:      "d is released twice",
		Severity: diag.Warning,
		Notes: []diag.Note{
			{Pos: token.Pos{Line: 3, Column: 5}, Msg: "first released here"},
			{Pos: token.Pos{Line: 2, Column: 10}, Msg: "allocated here"},
		},
	}
	got := diag.Render(d, "t.esp", src)
	want := strings.Join([]string{
		"t.esp:4:5: warning: d is released twice",
		"    unlink( d);",
		"    ^",
		"t.esp:3:5: note: first released here",
		"    unlink( d);",
		"    ^",
		"t.esp:2:10: note: allocated here",
		"    $d = alloc();",
		"         ^",
	}, "\n")
	if got != want {
		t.Errorf("Render with notes:\n%q\nwant\n%q", got, want)
	}
}

func TestRenderNoteOutOfRange(t *testing.T) {
	// A note pointing past the source (e.g. a synthesized position) must
	// not panic and must still print its header line.
	src := "one line\n"
	d := &diag.Diagnostic{
		Pos:      token.Pos{Line: 1, Column: 1},
		Msg:      "primary",
		Severity: diag.Warning,
		Notes:    []diag.Note{{Pos: token.Pos{Line: 99, Column: 1}, Msg: "elsewhere"}},
	}
	got := diag.Render(d, "t.esp", src)
	if !strings.Contains(got, "t.esp:1:1: warning: primary") ||
		!strings.Contains(got, "t.esp:99:1: note: elsewhere") {
		t.Errorf("missing spans:\n%s", got)
	}
}
