// Package diag defines the compiler's common diagnostic currency: a
// source-positioned message with a severity, a list type every front-end
// stage (lexer, parser, checker) produces, and a renderer that turns a
// diagnostic into the caret-style excerpt the command-line tools print.
//
// The lexer, parser, and checker alias their Error types to Diagnostic,
// so one error value flows unchanged from any stage to the renderer and
// positions survive all the way to the user — the same end-to-end span
// discipline the back ends apply to generated C (#line), Promela
// (location comments), VM faults, and model-checker traces.
package diag

import (
	"fmt"
	"strings"

	"esplang/internal/token"
)

// Severity classifies a diagnostic.
type Severity int

// Severities.
const (
	Error Severity = iota
	Warning
)

func (s Severity) String() string {
	if s == Warning {
		return "warning"
	}
	return "error"
}

// Note is a secondary span attached to a diagnostic: a supporting
// location with its own caret excerpt ("allocated here", "sent here").
type Note struct {
	Pos token.Pos
	Msg string
}

// Diagnostic is one positioned compiler message.
type Diagnostic struct {
	Pos      token.Pos
	Msg      string
	Severity Severity
	// Notes are secondary spans rendered after the primary caret, each
	// with its own excerpt. The static analyses use them to point at the
	// allocation or transfer site that a finding's primary span refers
	// back to.
	Notes []Note
}

// Error implements error with the historical "line:col: msg" format.
func (d *Diagnostic) Error() string { return fmt.Sprintf("%s: %s", d.Pos, d.Msg) }

// New constructs an error-severity diagnostic.
func New(pos token.Pos, format string, args ...any) *Diagnostic {
	return &Diagnostic{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// List is a collection of diagnostics implementing error.
type List []*Diagnostic

// Error summarizes the list the way the historical per-stage error lists
// did: the first diagnostic, plus a count of the rest.
func (l List) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

// Err returns the list as an error, or nil when it is empty.
func (l List) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

// Render formats one diagnostic with a caret excerpt of the offending
// source line:
//
//	file.esp:3:15: error: undefined type fooT
//	        channel c: fooT;
//	                   ^
//
// file may be empty (the location prints as line:col) and src may be
// empty (the excerpt is omitted). Secondary Notes follow the primary
// span, each rendered the same way with a "note" severity label:
//
//	file.esp:9:5: error: object in d leaks: sent or overwritten [ESPV002]
//	    d = { 1 -> n };
//	    ^
//	file.esp:7:9: note: allocated here
//	    $d: dataT = { 2 -> n };
//	        ^
func Render(d *Diagnostic, file, src string) string {
	var b strings.Builder
	renderSpan(&b, file, src, d.Pos, d.Severity.String(), d.Msg)
	for _, n := range d.Notes {
		b.WriteByte('\n')
		renderSpan(&b, file, src, n.Pos, "note", n.Msg)
	}
	return b.String()
}

// renderSpan writes one location-labeled message with its caret excerpt.
func renderSpan(b *strings.Builder, file, src string, pos token.Pos, label, msg string) {
	if file != "" {
		fmt.Fprintf(b, "%s:", file)
	}
	fmt.Fprintf(b, "%s: %s: %s", pos, label, msg)
	if src != "" && pos.IsValid() {
		if line, ok := sourceLine(src, pos.Line); ok {
			b.WriteByte('\n')
			b.WriteString(expandTabs(line))
			b.WriteByte('\n')
			b.WriteString(caretPad(line, pos.Column))
			b.WriteByte('^')
		}
	}
}

// RenderError renders any error produced by the compiler front end: a
// List renders every diagnostic (one excerpt each), a bare *Diagnostic
// renders itself, anything else falls back to err.Error(). Wrapped
// errors (fmt.Errorf("...: %w", list)) are unwrapped.
func RenderError(err error, file, src string) string {
	switch e := unwrapAll(err).(type) {
	case List:
		parts := make([]string, len(e))
		for i, d := range e {
			parts[i] = Render(d, file, src)
		}
		return strings.Join(parts, "\n")
	case *Diagnostic:
		return Render(e, file, src)
	default:
		return err.Error()
	}
}

func unwrapAll(err error) error {
	for {
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return err
		}
		inner := u.Unwrap()
		if inner == nil {
			return err
		}
		err = inner
	}
}

// sourceLine extracts 1-based line n from src.
func sourceLine(src string, n int) (string, bool) {
	if n < 1 {
		return "", false
	}
	for i := 1; ; i++ {
		next := strings.IndexByte(src, '\n')
		var line string
		if next < 0 {
			line = src
		} else {
			line = src[:next]
		}
		if i == n {
			return strings.TrimRight(line, "\r"), true
		}
		if next < 0 {
			return "", false
		}
		src = src[next+1:]
	}
}

// expandTabs replaces tabs with 4 spaces so the caret column below stays
// aligned with the excerpt above.
func expandTabs(line string) string {
	return strings.ReplaceAll(line, "\t", "    ")
}

// caretPad builds the whitespace run that puts the caret under 1-based
// column col of line (after tab expansion).
func caretPad(line string, col int) string {
	var b strings.Builder
	for i, r := range line {
		if i >= col-1 {
			break
		}
		if r == '\t' {
			b.WriteString("    ")
		} else {
			b.WriteByte(' ')
		}
	}
	return b.String()
}
