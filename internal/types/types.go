// Package types defines the semantic types of ESP programs.
//
// ESP has int, bool, and three composite kinds — record, union, array —
// each in a mutable ('#') and an immutable flavor (§4.1). Types are
// structural: two record types with the same field names, field types and
// mutability are the same type. A Universe interns types so identity can
// be compared by pointer and every distinct type gets a small integer ID,
// which the IR, VM heap, and both back ends use.
package types

import (
	"fmt"
	"strings"
)

// Kind classifies a type.
type Kind int

// Type kinds.
const (
	Invalid Kind = iota
	Int
	Bool
	Record
	Union
	Array
)

func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Bool:
		return "bool"
	case Record:
		return "record"
	case Union:
		return "union"
	case Array:
		return "array"
	}
	return "invalid"
}

// Field is a named member of a record or union.
type Field struct {
	Name string
	Type *Type
}

// Type is an interned ESP type. Compare types with ==; they are canonical
// within one Universe.
type Type struct {
	Kind    Kind
	Mutable bool
	Fields  []Field // record, union
	Elem    *Type   // array
	Bound   int64   // array: fixed size for verification back ends (0 = use default)

	id   int
	name string // first declared name, for diagnostics and code generation
}

// ID returns the dense type id assigned by the Universe (0-based).
func (t *Type) ID() int { return t.id }

// Name returns the declared name of the type, or "" for anonymous types.
func (t *Type) Name() string { return t.name }

// IsRef reports whether values of this type are heap references
// (records, unions, arrays) rather than scalars.
func (t *Type) IsRef() bool {
	return t.Kind == Record || t.Kind == Union || t.Kind == Array
}

// IsScalar reports whether the type is int or bool.
func (t *Type) IsScalar() bool { return t.Kind == Int || t.Kind == Bool }

// FieldIndex returns the index of the named field, or -1.
func (t *Type) FieldIndex(name string) int {
	for i, f := range t.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// DeeplyImmutable reports whether the type and everything reachable from
// it is immutable — the requirement for channel payloads (§4.2).
func (t *Type) DeeplyImmutable() bool {
	if t == nil {
		return false
	}
	if t.Mutable {
		return false
	}
	switch t.Kind {
	case Record, Union:
		for _, f := range t.Fields {
			if !f.Type.DeeplyImmutable() {
				return false
			}
		}
	case Array:
		return t.Elem.DeeplyImmutable()
	}
	return true
}

// String renders the type for diagnostics, preferring the declared name.
func (t *Type) String() string {
	if t == nil {
		return "<nil type>"
	}
	if t.name != "" {
		return t.name
	}
	return t.Signature()
}

// Signature renders the full structural spelling of the type. It doubles
// as the interning key.
func (t *Type) Signature() string {
	if t == nil {
		return "<nil>"
	}
	var b strings.Builder
	t.sig(&b)
	return b.String()
}

func (t *Type) sig(b *strings.Builder) {
	if t.Mutable {
		b.WriteByte('#')
	}
	switch t.Kind {
	case Int:
		b.WriteString("int")
	case Bool:
		b.WriteString("bool")
	case Record, Union:
		if t.Kind == Record {
			b.WriteString("record of { ")
		} else {
			b.WriteString("union of { ")
		}
		for i, f := range t.Fields {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.Name)
			b.WriteString(": ")
			f.Type.sig(b)
		}
		b.WriteString(" }")
	case Array:
		b.WriteString("array of ")
		t.Elem.sig(b)
		if t.Bound > 0 {
			fmt.Fprintf(b, "[%d]", t.Bound)
		}
	default:
		b.WriteString("invalid")
	}
}

// Universe interns types for one program.
type Universe struct {
	bySig map[string]*Type
	all   []*Type

	IntType  *Type
	BoolType *Type
}

// NewUniverse returns an empty universe with int and bool pre-interned.
func NewUniverse() *Universe {
	u := &Universe{bySig: make(map[string]*Type)}
	u.IntType = u.Intern(&Type{Kind: Int})
	u.BoolType = u.Intern(&Type{Kind: Bool})
	return u
}

// Intern canonicalizes t, returning the unique *Type with the same
// structure. The argument must not be mutated afterwards.
func (u *Universe) Intern(t *Type) *Type {
	sig := t.Signature()
	if got, ok := u.bySig[sig]; ok {
		return got
	}
	t.id = len(u.all)
	u.bySig[sig] = t
	u.all = append(u.all, t)
	return t
}

// SetName records the declared name of a type if it does not already have
// one (the first declaration wins, so diagnostics stay stable).
func (u *Universe) SetName(t *Type, name string) {
	if t.name == "" {
		t.name = name
	}
}

// All returns every interned type in ID order. The caller must not mutate
// the returned slice.
func (u *Universe) All() []*Type { return u.all }

// ByID returns the type with the given dense id.
func (u *Universe) ByID(id int) *Type { return u.all[id] }

// Record interns an immutable or mutable record type.
func (u *Universe) Record(mutable bool, fields []Field) *Type {
	return u.Intern(&Type{Kind: Record, Mutable: mutable, Fields: fields})
}

// Union interns a union type.
func (u *Universe) Union(mutable bool, fields []Field) *Type {
	return u.Intern(&Type{Kind: Union, Mutable: mutable, Fields: fields})
}

// Array interns an array type.
func (u *Universe) Array(mutable bool, elem *Type, bound int64) *Type {
	return u.Intern(&Type{Kind: Array, Mutable: mutable, Elem: elem, Bound: bound})
}

// WithMutability returns the counterpart of t with the given outer
// mutability (the type produced by the mutable()/immutable() casts, §4.2).
// Scalars are returned unchanged.
func (u *Universe) WithMutability(t *Type, mutable bool) *Type {
	if t.IsScalar() || t.Mutable == mutable {
		return t
	}
	nt := &Type{Kind: t.Kind, Mutable: mutable, Fields: t.Fields, Elem: t.Elem, Bound: t.Bound}
	return u.Intern(nt)
}

// AssignableTo reports whether a value of type src can be used where dst
// is expected. ESP types are structural, so this is identity.
func AssignableTo(src, dst *Type) bool { return src == dst }
