package types

import (
	"testing"
	"testing/quick"
)

func TestInterningIdentity(t *testing.T) {
	u := NewUniverse()
	a := u.Record(false, []Field{{"x", u.IntType}, {"y", u.BoolType}})
	b := u.Record(false, []Field{{"x", u.IntType}, {"y", u.BoolType}})
	if a != b {
		t.Error("structurally equal records interned to different types")
	}
	c := u.Record(true, []Field{{"x", u.IntType}, {"y", u.BoolType}})
	if a == c {
		t.Error("mutability must distinguish types")
	}
	d := u.Record(false, []Field{{"y", u.IntType}, {"x", u.BoolType}})
	if a == d {
		t.Error("field names must distinguish types")
	}
}

func TestIDsAreDense(t *testing.T) {
	u := NewUniverse()
	seen := map[int]bool{}
	ts := []*Type{
		u.IntType, u.BoolType,
		u.Array(false, u.IntType, 0),
		u.Array(true, u.IntType, 0),
		u.Record(false, []Field{{"a", u.IntType}}),
	}
	for _, x := range ts {
		if seen[x.ID()] {
			t.Errorf("duplicate type id %d", x.ID())
		}
		seen[x.ID()] = true
		if u.ByID(x.ID()) != x {
			t.Errorf("ByID(%d) roundtrip failed", x.ID())
		}
	}
	if len(u.All()) != len(ts) {
		t.Errorf("universe has %d types, want %d", len(u.All()), len(ts))
	}
}

func TestDeeplyImmutable(t *testing.T) {
	u := NewUniverse()
	arr := u.Array(false, u.IntType, 0)
	marr := u.Array(true, u.IntType, 0)
	rec := u.Record(false, []Field{{"d", arr}})
	mrec := u.Record(false, []Field{{"d", marr}})
	if !arr.DeeplyImmutable() || !rec.DeeplyImmutable() {
		t.Error("immutable structures misclassified")
	}
	if marr.DeeplyImmutable() || mrec.DeeplyImmutable() {
		t.Error("mutable reachability missed")
	}
	if !u.IntType.DeeplyImmutable() {
		t.Error("scalars are immutable")
	}
}

func TestWithMutability(t *testing.T) {
	u := NewUniverse()
	arr := u.Array(false, u.IntType, 8)
	marr := u.WithMutability(arr, true)
	if !marr.Mutable || marr.Elem != u.IntType || marr.Bound != 8 {
		t.Errorf("WithMutability produced %s", marr)
	}
	if u.WithMutability(marr, false) != arr {
		t.Error("mutability round trip not interned to the original")
	}
	if u.WithMutability(u.IntType, true) != u.IntType {
		t.Error("scalars have no mutability")
	}
}

func TestNames(t *testing.T) {
	u := NewUniverse()
	r := u.Record(false, []Field{{"a", u.IntType}})
	u.SetName(r, "first")
	u.SetName(r, "second") // first declaration wins
	if r.Name() != "first" || r.String() != "first" {
		t.Errorf("name = %q", r.Name())
	}
	anon := u.Record(false, []Field{{"b", u.IntType}})
	if anon.String() == "" {
		t.Error("anonymous type must render its signature")
	}
}

func TestSignatureDistinguishesStructures(t *testing.T) {
	// Property: two types built from different scalar field layouts have
	// different signatures (the interning key is injective for these).
	u := NewUniverse()
	f := func(names []bool, mut bool) bool {
		if len(names) == 0 || len(names) > 8 {
			return true
		}
		var fs []Field
		for i, isInt := range names {
			ft := u.IntType
			if !isInt {
				ft = u.BoolType
			}
			fs = append(fs, Field{Name: string(rune('a' + i)), Type: ft})
		}
		a := u.Record(mut, fs)
		// Flip one field's type: must produce a different interned type.
		fs2 := append([]Field(nil), fs...)
		if fs2[0].Type == u.IntType {
			fs2[0].Type = u.BoolType
		} else {
			fs2[0].Type = u.IntType
		}
		b := u.Record(mut, fs2)
		return a != b && a.Signature() != b.Signature()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFieldIndex(t *testing.T) {
	u := NewUniverse()
	r := u.Record(false, []Field{{"a", u.IntType}, {"b", u.BoolType}})
	if r.FieldIndex("a") != 0 || r.FieldIndex("b") != 1 || r.FieldIndex("c") != -1 {
		t.Error("FieldIndex wrong")
	}
}

func TestKindPredicates(t *testing.T) {
	u := NewUniverse()
	if !u.IntType.IsScalar() || u.IntType.IsRef() {
		t.Error("int misclassified")
	}
	arr := u.Array(false, u.IntType, 0)
	if arr.IsScalar() || !arr.IsRef() {
		t.Error("array misclassified")
	}
}
