package analysis

import (
	"fmt"

	"esplang/internal/ir"
)

// analyzeDefinite reports reads of locals that are not definitely
// assigned at the read (ESPV001): a forward must-analysis whose state is
// the set of assigned slots and whose join is intersection.
//
// The checker forces every declaration to carry an initializer, so plain
// expression reads are always preceded by a store; the check still
// guards that compiler invariant, and catches the one construct that
// slips past it in legal source — a receive pattern whose
// dynamic-equality test reads a binding declared in the same pattern,
// in(c, {$v, v}): match() consults locals[v] before anything was ever
// bound to it, so the comparison is against an arbitrary initial value.
func analyzeDefinite(prog *ir.Program, p *ir.Proc, g *cfg, r *reporter) {
	if len(g.blocks) == 0 {
		return
	}
	lat := lattice[bitset]{
		bottom: func() bitset { return nil },
		join: func(a, b bitset) (bitset, bool) {
			return a, a.intersectInto(b)
		},
	}
	transfer := func(bi int, in bitset) []bitset {
		out := defFlowBlock(p, g, bi, in, nil)
		b := &g.blocks[bi]
		outs := make([]bitset, len(b.succs))
		for i, e := range b.succs {
			s := out.clone()
			for _, slot := range patBindSlots(armPat(p, e.arm), nil) {
				s.set(slot)
			}
			outs[i] = s
		}
		return outs
	}
	in := forwardFixpoint(g, lat, newBitset(p.NumLocals), transfer)
	for bi := range g.blocks {
		if g.reachable[bi] && in[bi] != nil {
			defFlowBlock(p, g, bi, in[bi], r)
		}
	}
}

// defFlowBlock applies block bi's instructions to the assigned-slot set
// and returns the out-state. With a non-nil reporter it emits a finding
// for every read of an unassigned slot (marking the slot assigned
// afterwards, so one bad slot reports once, not at every later use).
func defFlowBlock(p *ir.Proc, g *cfg, bi int, in bitset, r *reporter) bitset {
	st := in.clone()
	read := func(slot int, pos ir.Instr, what string) {
		if st.get(slot) {
			return
		}
		if r != nil {
			r.report(&Finding{
				Check: CheckUninit,
				Proc:  p.Name,
				Pos:   pos.Pos,
				Msg:   fmt.Sprintf("%s %s before it is assigned", what, localName(p, slot)),
			})
		}
		st.set(slot)
	}
	b := &g.blocks[bi]
	for pc := b.start; pc < b.end; pc++ {
		in := p.Code[pc]
		switch in.Op {
		case ir.LoadLocal:
			read(in.A, in, "read of variable")
		case ir.StoreLocal:
			st.set(in.A)
		case ir.Recv:
			pat := p.Ports[in.B].Pat
			for _, slot := range patReadSlots(pat, nil) {
				read(slot, in, "receive pattern reads")
			}
			for _, slot := range patBindSlots(pat, nil) {
				st.set(slot)
			}
		case ir.Alt:
			for j := range p.Alts[in.A].Arms {
				arm := &p.Alts[in.A].Arms[j]
				if arm.GuardSlot >= 0 {
					read(arm.GuardSlot, ir.Instr{Pos: arm.Pos}, "alt guard reads")
				}
				for _, slot := range patReadSlots(armPat(p, arm), nil) {
					read(slot, ir.Instr{Pos: arm.Pos}, "receive pattern reads")
				}
			}
			// Arm bindings are edge effects, applied by the caller.
		}
	}
	return st
}
