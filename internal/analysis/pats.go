package analysis

import "esplang/internal/ir"

// patBindSlots appends the slots bound (assigned) by pat to dst.
func patBindSlots(pat *ir.Pat, dst []int) []int {
	if pat == nil {
		return dst
	}
	if pat.Kind == ir.PatBind {
		dst = append(dst, pat.Slot)
	}
	for _, e := range pat.Elems {
		dst = patBindSlots(e, dst)
	}
	return dst
}

// patReadSlots appends the slots pat reads during matching — the
// dynamic-equality tests, which compare the incoming value against the
// local's current contents before any binding happens.
func patReadSlots(pat *ir.Pat, dst []int) []int {
	if pat == nil {
		return dst
	}
	if pat.Kind == ir.PatDynEq {
		dst = append(dst, pat.Slot)
	}
	for _, e := range pat.Elems {
		dst = patReadSlots(e, dst)
	}
	return dst
}

// armPat returns the receive pattern of a non-send alt arm (nil for
// send arms and non-arm edges).
func armPat(p *ir.Proc, arm *ir.AltArm) *ir.Pat {
	if arm == nil || arm.IsSend || arm.Port < 0 || arm.Port >= len(p.Ports) {
		return nil
	}
	return p.Ports[arm.Port].Pat
}
