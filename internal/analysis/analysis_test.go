package analysis

import (
	"strings"
	"testing"

	"esplang/internal/check"
	"esplang/internal/compile"
	"esplang/internal/ir"
	"esplang/internal/parser"
)

// compileSrc lowers a source program to the pre-optimization IR the
// analyses run on.
func compileSrc(t *testing.T, src string) *ir.Program {
	t.Helper()
	tree, err := parser.Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := check.Check(tree)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	prog := compile.Program(tree, info)
	if err := ir.Verify(prog); err != nil {
		t.Fatalf("ir.Verify: %v", err)
	}
	return prog
}

func findings(t *testing.T, src string) []*Finding {
	t.Helper()
	return Analyze(compileSrc(t, src), Options{})
}

// ids collects the distinct check IDs of a findings list.
func ids(fs []*Finding) map[string]int {
	m := map[string]int{}
	for _, f := range fs {
		m[f.Check.ID]++
	}
	return m
}

func wantOnly(t *testing.T, fs []*Finding, want ...string) {
	t.Helper()
	got := ids(fs)
	for _, id := range want {
		if got[id] == 0 {
			t.Errorf("missing %s finding; got %v", id, fs)
		}
		delete(got, id)
	}
	for id := range got {
		t.Errorf("unexpected %s finding; got %v", id, fs)
	}
}

const dataDecl = "type dataT = array of int\n"

func TestChecksWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Checks() {
		if c.ID == "" || c.Name == "" || c.Doc == "" {
			t.Errorf("incomplete check %+v", c)
		}
		if seen[c.ID] || seen[c.Name] {
			t.Errorf("duplicate check id/name %+v", c)
		}
		seen[c.ID], seen[c.Name] = true, true
	}
}

func TestDefiniteSelfReferentialPattern(t *testing.T) {
	fs := findings(t, `
type pairT = record of { a: int, b: int }
channel c: pairT
process s { out( c, { 1, 1}); }
process r { in( c, { $v, v}); }
`)
	wantOnly(t, fs, "ESPV001")
	if !strings.Contains(fs[0].Msg, "before it is assigned") {
		t.Errorf("unexpected message: %s", fs[0].Msg)
	}
}

func TestOwnershipLeakOverwrite(t *testing.T) {
	fs := findings(t, dataDecl+`
process p {
    $d: dataT = { 1 -> 0};
    d = { 1 -> 1};
    unlink( d);
}
`)
	// The overwritten initial value is also a dead store — two distinct
	// true positives on the same line pair.
	wantOnly(t, fs, "ESPV002", "ESPV021")
}

func TestOwnershipLeakRebindInLoop(t *testing.T) {
	fs := findings(t, dataDecl+`
channel c: dataT
process p {
    $n = 0;
    while (n < 2) {
        $d: dataT = { 1 -> n};
        out( c, d);
        unlink( d);
        n = n + 1;
    }
}
process q {
    $n = 0;
    while (n < 2) {
        in( c, $d);
        n = n + 1;
    }
}
`)
	wantOnly(t, fs, "ESPV002")
	if fs[0].Proc != "q" {
		t.Errorf("leak attributed to %q, want q", fs[0].Proc)
	}
}

func TestOwnershipExitLeak(t *testing.T) {
	fs := findings(t, dataDecl+`
process p { $a: dataT = { 1 -> 0}; }
`)
	// The never-read store is also a dead store.
	wantOnly(t, fs, "ESPV002", "ESPV021")
	found := false
	for _, f := range fs {
		if strings.Contains(f.Msg, "never released before process p exits") {
			found = true
		}
	}
	if !found {
		t.Errorf("no exit-leak message in %v", fs)
	}
}

func TestOwnershipUseAfterFree(t *testing.T) {
	fs := findings(t, dataDecl+`
process p {
    $d: dataT = { 2 -> 1};
    unlink( d);
    assert( d[0] == 1);
}
`)
	wantOnly(t, fs, "ESPV003")
}

func TestOwnershipDoubleFree(t *testing.T) {
	fs := findings(t, dataDecl+`
process p {
    $d: dataT = { 1 -> 1};
    unlink( d);
    unlink( d);
}
`)
	wantOnly(t, fs, "ESPV004")
	// The finding carries the first release and the allocation as
	// secondary spans.
	if len(fs[0].Notes) < 2 {
		t.Errorf("double-free finding has %d notes, want >= 2: %+v", len(fs[0].Notes), fs[0].Notes)
	}
}

func TestOwnershipCleanTransfer(t *testing.T) {
	fs := findings(t, dataDecl+`
channel c: dataT
process p {
    $d: dataT = { 1 -> 7};
    out( c, d);
    unlink( d);
}
process q {
    in( c, $x);
    assert( x[0] == 7);
    unlink( x);
}
`)
	wantOnly(t, fs)
}

func TestOwnershipAliasDemotesSilently(t *testing.T) {
	// Aliasing is beyond the per-slot model: both slots go untracked,
	// which may miss a bug but must not invent one.
	fs := findings(t, dataDecl+`
process p {
    $a: dataT = { 1 -> 0};
    $b: dataT = a;
    unlink( b);
}
`)
	wantOnly(t, fs)
}

func TestChannelOrphans(t *testing.T) {
	fs := findings(t, `
channel c: int
channel d: int
process p { out( c, 1); }
process q { in( c, $v); out( d, v); }
`)
	wantOnly(t, fs, "ESPV010")

	fs = findings(t, `
channel c: int
process p { in( c, $v); }
`)
	wantOnly(t, fs, "ESPV010")
}

func TestChannelExternalExempt(t *testing.T) {
	fs := findings(t, `
channel inC: int external writer
channel outC: int external reader
process p {
    $n = 0;
    while (true) {
        in( inC, $v);
        out( outC, v + n);
    }
}
`)
	wantOnly(t, fs)
}

func TestChannelSelfRendezvous(t *testing.T) {
	fs := findings(t, `
channel c: int
process p { out( c, 7); in( c, $v); }
`)
	wantOnly(t, fs, "ESPV011")
}

func TestChannelDeadAltArm(t *testing.T) {
	fs := findings(t, `
channel req: int
channel rsp: int
process client {
    out( req, 1);
    in( rsp, 1);
}
process server {
    $done = 0;
    while (done == 0) {
        alt {
            case( in( req, $v)) { out( rsp, 1); }
            case( in( rsp, 0)) { done = 1; }
        }
    }
}
`)
	wantOnly(t, fs, "ESPV012")
	if len(fs[0].Notes) == 0 {
		t.Errorf("dead-alt-arm finding has no counterparty notes")
	}
}

func TestDeadCodeAfterInfiniteLoop(t *testing.T) {
	fs := findings(t, `
channel c: int
process p {
    while (true) { out( c, 1); }
    assert( false);
}
process q {
    while (true) { in( c, $v); }
}
`)
	wantOnly(t, fs, "ESPV020")
}

func TestDeadCodeBranchesBothLive(t *testing.T) {
	fs := findings(t, `
channel c: int
process p {
    $x = 3;
    if (x > 1) { out( c, 1); } else { out( c, 2); }
}
process q { in( c, $v); }
`)
	wantOnly(t, fs)
}

func TestDeadStore(t *testing.T) {
	fs := findings(t, `
channel c: int
process p {
    $x = 1;
    x = 2;
    out( c, x);
}
process q { in( c, $v); assert( v == 2); }
`)
	wantOnly(t, fs, "ESPV021")
}

func TestDeadStoreUnusedReceiveBindingNotReported(t *testing.T) {
	// Binding a value you don't need is the idiomatic way to consume a
	// message; it is deliberately not a dead store.
	fs := findings(t, `
channel c: int
process p { out( c, 1); }
process q { in( c, $ignored); }
`)
	wantOnly(t, fs)
}

func TestOptionsDisable(t *testing.T) {
	src := dataDecl + `
process p {
    $d: dataT = { 1 -> 1};
    unlink( d);
    unlink( d);
}
`
	prog := compileSrc(t, src)
	for _, key := range []string{"ESPV004", "double-free"} {
		fs := Analyze(prog, Options{Disable: map[string]bool{key: true}})
		if n := ids(fs)["ESPV004"]; n != 0 {
			t.Errorf("Disable[%q] left %d ESPV004 findings", key, n)
		}
	}
}

func TestFindingsDeterministicOrder(t *testing.T) {
	src := dataDecl + `
channel c: dataT
process p {
    $d: dataT = { 1 -> 0};
    d = { 1 -> 1};
    unlink( d);
    unlink( d);
    out( c, d);
}
process q {
    $n = 0;
    while (true) { in( c, $x); unlink( x); }
}
`
	prog := compileSrc(t, src)
	first := Analyze(prog, Options{})
	for i := 0; i < 5; i++ {
		again := Analyze(prog, Options{})
		if len(again) != len(first) {
			t.Fatalf("run %d: %d findings, want %d", i, len(again), len(first))
		}
		for j := range again {
			if again[j].String() != first[j].String() {
				t.Fatalf("run %d: finding %d = %s, want %s", i, j, again[j], first[j])
			}
		}
	}
	for j := 1; j < len(first); j++ {
		a, b := first[j-1].Pos, first[j].Pos
		if a.Line > b.Line {
			t.Errorf("findings out of source order: %s before %s", first[j-1], first[j])
		}
	}
}

func TestCFGConstBranchFolding(t *testing.T) {
	prog := compileSrc(t, `
channel c: int
process p {
    while (true) { out( c, 1); }
    out( c, 2);
}
process q { while (true) { in( c, $v); } }
`)
	g := buildCFG(prog.Procs[0])
	unreachable := 0
	for bi, ok := range g.reachable {
		if !ok && g.blocks[bi].end > g.blocks[bi].start {
			unreachable++
		}
	}
	if unreachable == 0 {
		t.Errorf("while(true) exit edge was not folded: all blocks reachable")
	}
}

func TestCFGAltArmEdges(t *testing.T) {
	prog := compileSrc(t, `
channel a: int
channel b: int
process p {
    alt {
        case( in( a, $v)) { skip; }
        case( out( b, 1)) { skip; }
    }
}
process q { out( a, 1); }
process r { in( b, $w); }
`)
	g := buildCFG(prog.Procs[0])
	armEdges := 0
	for _, blk := range g.blocks {
		for _, e := range blk.succs {
			if e.arm != nil {
				armEdges++
			}
		}
	}
	if armEdges != 2 {
		t.Errorf("got %d arm edges, want 2", armEdges)
	}
}
