// Package analysis is espvet: a suite of dataflow analyses over the
// compiled (pre-optimization) IR that reports memory-safety and
// channel-protocol bugs at compile time — the class of defects the
// paper (§5) finds only by exhaustive model checking.
//
// The framework is a classic worklist fixpoint over each process's
// basic-block CFG (alt arms are ordinary successor edges carrying the
// arm's binding effects). On top of it run four analyses:
//
//   - definite assignment (forward, must): reads of never-assigned
//     locals, in practice self-referential receive patterns like
//     in(c, {$v, v}) whose dynamic-equality test reads v before any
//     value was bound (ESPV001);
//   - ownership (forward): tracks the §4.4 refcount obligation of each
//     reference-typed local — leak on overwrite/rebind/exit (ESPV002),
//     use after release (ESPV003), double release (ESPV004);
//   - channel protocol (whole program): channels used on only one side,
//     single-process channels, and alt arms with no cross-process
//     counterparty (ESPV010, ESPV011, ESPV012);
//   - dead code (reachability + backward liveness): unreachable
//     statements (ESPV020) and stores never read (ESPV021).
//
// Every analysis is designed to be "may-miss, never-false-alarm": joins
// that would require path-sensitivity or alias tracking collapse to an
// untracked state instead of guessing, so a reported finding is a real
// property of the IR. The testdata/vet corpus cross-validates this
// against the model checker: true positives must be reachable by mc,
// clean programs must produce zero findings.
package analysis

import (
	"fmt"
	"sort"

	"esplang/internal/diag"
	"esplang/internal/ir"
	"esplang/internal/token"
)

// Check identifies one espvet check.
type Check struct {
	ID   string // stable check ID, e.g. "ESPV002"
	Name string // short name, e.g. "leak"
	Doc  string // one-line description
}

// The espvet checks.
var (
	CheckUninit          = Check{"ESPV001", "uninit-read", "read of a local variable that is never assigned on some path"}
	CheckLeak            = Check{"ESPV002", "leak", "an owned object's last tracked reference is overwritten, rebound, or reaches process exit"}
	CheckUseAfterFree    = Check{"ESPV003", "use-after-free", "use of a variable after its reference was released"}
	CheckDoubleFree      = Check{"ESPV004", "double-free", "a variable's reference is released twice"}
	CheckOrphanChan      = Check{"ESPV010", "orphan-channel", "a channel is only ever sent or only ever received"}
	CheckSelfRendezvous  = Check{"ESPV011", "self-rendezvous", "only one process communicates on a channel; it cannot rendezvous with itself"}
	CheckDeadAltArm      = Check{"ESPV012", "dead-alt-arm", "an alt arm has no cross-process counterparty in the opposite direction"}
	CheckIndepAltArms    = Check{"ESPV013", "indep-alt-arms", "an alt's arms can never compete: their counterparties are pairwise independent, so the choice is unobservable"}
	CheckOrderedChanPair = Check{"ESPV014", "ordered-chan-pair", "a channel pair independent of every other process: all its interleavings are equivalent (fusion candidate)"}
	CheckUnreachable     = Check{"ESPV020", "unreachable-code", "statements that control flow can never reach"}
	CheckDeadStore       = Check{"ESPV021", "dead-store", "a stored value is never read"}
)

// Checks lists every check in ID order (for documentation and CLIs).
func Checks() []Check {
	return []Check{
		CheckUninit, CheckLeak, CheckUseAfterFree, CheckDoubleFree,
		CheckOrphanChan, CheckSelfRendezvous, CheckDeadAltArm,
		CheckIndepAltArms, CheckOrderedChanPair,
		CheckUnreachable, CheckDeadStore,
	}
}

// Finding is one espvet report.
type Finding struct {
	Check Check
	Proc  string // process the finding is in ("" for channel-level findings)
	Pos   token.Pos
	Msg   string
	Notes []diag.Note // secondary spans: "allocated here", "released here", ...
}

// String renders the finding without source excerpts:
// "3:9: leak: ... [ESPV002]".
func (f *Finding) String() string {
	return fmt.Sprintf("%s: %s: %s [%s]", f.Pos, f.Check.Name, f.Msg, f.Check.ID)
}

// Diagnostic converts the finding to a renderable warning diagnostic.
func (f *Finding) Diagnostic() *diag.Diagnostic {
	return &diag.Diagnostic{
		Pos:      f.Pos,
		Msg:      fmt.Sprintf("%s [%s]", f.Msg, f.Check.ID),
		Severity: diag.Warning,
		Notes:    f.Notes,
	}
}

// Options configures an analysis run.
type Options struct {
	// Disable suppresses checks by ID ("ESPV002") or name ("leak").
	Disable map[string]bool
}

func (o Options) enabled(c Check) bool {
	return !o.Disable[c.ID] && !o.Disable[c.Name]
}

// Analyze runs every enabled analysis over the program and returns the
// findings in deterministic source order. The program must satisfy
// ir.Verify's invariants (the CFG construction relies on balanced stack
// depths), and should be the pre-optimization IR: the optimizer's dead
// code and dead store elimination would hide exactly the defects the
// analyses report.
func Analyze(prog *ir.Program, opts Options) []*Finding {
	r := &reporter{opts: opts}
	cfgs := make([]*cfg, len(prog.Procs))
	for i, p := range prog.Procs {
		g := buildCFG(p)
		cfgs[i] = g
		analyzeDefinite(prog, p, g, r)
		analyzeOwnership(prog, p, g, r)
		analyzeDeadCode(prog, p, g, r)
	}
	analyzeChannels(prog, cfgs, r)
	analyzeIndependence(prog, cfgs, r)
	sort.SliceStable(r.findings, func(i, j int) bool {
		a, b := r.findings[i], r.findings[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check.ID != b.Check.ID {
			return a.Check.ID < b.Check.ID
		}
		return a.Proc < b.Proc
	})
	return r.findings
}

// reporter accumulates findings, dropping disabled checks and exact
// duplicates (the same check at the same position in the same process).
type reporter struct {
	opts     Options
	findings []*Finding
	seen     map[string]bool
}

func (r *reporter) report(f *Finding) {
	if !r.opts.enabled(f.Check) {
		return
	}
	key := fmt.Sprintf("%s|%s|%d|%d", f.Check.ID, f.Proc, f.Pos.Line, f.Pos.Column)
	if r.seen == nil {
		r.seen = make(map[string]bool)
	}
	if r.seen[key] {
		return
	}
	r.seen[key] = true
	r.findings = append(r.findings, f)
}

// localName names slot s of p for messages.
func localName(p *ir.Proc, s int) string {
	if s >= 0 && s < len(p.LocalName) && p.LocalName[s] != "" {
		return p.LocalName[s]
	}
	return fmt.Sprintf("t%d", s)
}
