package analysis

import (
	"fmt"
	"strings"

	"esplang/internal/ir"
	"esplang/internal/types"
)

// Whole-program transition-independence analysis.
//
// A transition of the model checker is one rendezvous plus the
// deterministic local execution it enables, so two enabled transitions
// commute exactly when they involve disjoint process pairs, cannot
// compete for a counterparty, and touch disjoint heap regions. The
// channel half comes from the channel-protocol facts (reachable
// communication sites per channel, alt arms included): processes that
// never share a channel can never compete for a rendezvous, and a
// process's alt guards are locals only it can write, so no other
// process can enable or disable its arms. The heap half comes from the
// §4.4 ownership facts: a process is "clean" when every object it sends
// away stops being referenced by it before its next blocking point and
// it never builds intra-process aliases the per-slot model cannot
// follow — in an all-clean region every heap object belongs to exactly
// one non-halted process at every quiescent state, so transitions of
// disjoint pairs read and write disjoint objects.
//
// Everything is conservative in the may-miss direction: an unmodeled
// construct demotes the process to "unclean" (its whole ref-flow region
// becomes dependent) rather than guessing.

// ComputeIndependence builds the independence side table for prog. The
// optimizer driver calls it on the settled IR; the model checker calls
// it on demand when partial-order reduction is requested and the table
// is missing.
func ComputeIndependence(prog *ir.Program) *ir.Independence {
	cfgs := make([]*cfg, len(prog.Procs))
	for i, p := range prog.Procs {
		cfgs[i] = buildCFG(p)
	}
	ind, _, _ := computeIndependence(prog, cfgs)
	return ind
}

// computeIndependence is the shared implementation: it also returns the
// per-direction site sets so the espvet diagnostics can reuse them.
func computeIndependence(prog *ir.Program, cfgs []*cfg) (*ir.Independence, [][]commSite, [][]commSite) {
	sends, recvs := collectCommSites(prog, cfgs)
	np := len(prog.Procs)
	nc := len(prog.Channels)

	ind := &ir.Independence{
		Touch:       make([][]int, nc),
		ChanExt:     make([]bool, nc),
		Clean:       make([]bool, np),
		CleanReason: make([]string, np),
		Region:      make([]int, np),
	}
	for _, ch := range prog.Channels {
		ind.Touch[ch.ID] = procSet(append(append([]commSite{}, sends[ch.ID]...), recvs[ch.ID]...))
		ind.ChanExt[ch.ID] = ch.Ext != ir.ExtNone
	}
	for pi, p := range prog.Procs {
		reason := cleanProc(p, cfgs[pi])
		ind.Clean[pi] = reason == ""
		ind.CleanReason[pi] = reason
	}

	// Ref-flow regions: union processes connected by reference-carrying
	// channels (objects travel only along those).
	parent := make([]int, np)
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	refChan := func(ch *ir.Channel) bool { return ch.Elem != nil && ch.Elem.IsRef() }
	inRegion := make([]bool, np)
	for _, ch := range prog.Channels {
		if !refChan(ch) {
			continue
		}
		procs := ind.Touch[ch.ID]
		for _, p := range procs {
			inRegion[p] = true
		}
		for i := 1; i < len(procs); i++ {
			ra, rb := find(procs[0]), find(procs[i])
			if ra != rb {
				parent[ra] = rb
			}
		}
	}
	// Number regions deterministically by smallest member.
	regionOf := map[int]int{}
	for p := 0; p < np; p++ {
		if !inRegion[p] {
			ind.Region[p] = -1
			continue
		}
		r := find(p)
		id, ok := regionOf[r]
		if !ok {
			id = len(regionOf)
			regionOf[r] = id
		}
		ind.Region[p] = id
	}
	ind.DirtyRegion = make([]bool, len(regionOf))
	for p := 0; p < np; p++ {
		if ind.Region[p] >= 0 && !ind.Clean[p] {
			ind.DirtyRegion[ind.Region[p]] = true
		}
	}
	// A reference-carrying external channel lets the environment share
	// objects with the program; its whole region is suspect.
	for _, ch := range prog.Channels {
		if ch.Ext != ir.ExtNone && refChan(ch) {
			for _, p := range ind.Touch[ch.ID] {
				if ind.Region[p] >= 0 {
					ind.DirtyRegion[ind.Region[p]] = true
				}
			}
		}
	}

	// The derived pair relation.
	shares := make([][]bool, np)
	for p := range shares {
		shares[p] = make([]bool, np)
	}
	for ch := range prog.Channels {
		procs := ind.Touch[ch]
		for i := 0; i < len(procs); i++ {
			for j := i + 1; j < len(procs); j++ {
				shares[procs[i]][procs[j]] = true
				shares[procs[j]][procs[i]] = true
			}
		}
	}
	ind.Pairs = make([][]bool, np)
	for p := 0; p < np; p++ {
		ind.Pairs[p] = make([]bool, np)
		for q := 0; q < np; q++ {
			ind.Pairs[p][q] = p != q && !shares[p][q] && ind.HeapCompatible(p, q)
		}
	}
	return ind, sends, recvs
}

// ---------------------------------------------------------------------------
// Heap discipline (the "clean" fact)

// cleanVal is one abstract operand-stack value of the cleanliness scan.
type cleanVal struct {
	kind    uint8
	slot    int         // cvLocal: the slot whose object this is
	typ     *types.Type // static type when known (nil = unknown)
	aliases bitset      // slots whose object graphs this value may reach
	unknown bool        // may reach references the scan lost track of
}

const (
	cvScalar uint8 = iota // definitely not a reference
	cvFresh               // freshly allocated, exclusively owned (plus aliases)
	cvLocal               // the object currently held by local `slot`
	cvBorrow              // interior of other objects (aliases says whose)
)

func scalarVal() cleanVal { return cleanVal{kind: cvScalar, slot: -1} }

// unknownVal is a value the scan cannot follow; typ may still prove it
// scalar.
func unknownVal(t *types.Type) cleanVal {
	v := cleanVal{kind: cvBorrow, slot: -1, typ: t}
	if t != nil && t.IsScalar() {
		v.kind = cvScalar
	} else {
		v.unknown = true
	}
	return v
}

// mayRef reports whether the value can be (or reach) a reference.
func (v cleanVal) mayRef() bool {
	switch v.kind {
	case cvScalar:
		return false
	case cvFresh, cvLocal:
		return true
	}
	return v.unknown || !v.aliases.empty() || (v.typ != nil && v.typ.IsRef())
}

// aliasInto accumulates the slots v's object graph may reach.
func (v cleanVal) aliasInto(acc bitset) (bitset, bool) {
	unknown := v.unknown && v.mayRef()
	if !v.mayRef() {
		return acc, false
	}
	if v.slot >= 0 {
		acc.set(v.slot)
	}
	if v.aliases != nil {
		acc.unionInto(v.aliases)
	}
	return acc, unknown
}

// cleanProc scans one process for the exclusive-ownership discipline and
// returns "" when it holds, or the first reason it does not.
func cleanProc(p *ir.Proc, g *cfg) string {
	if len(g.blocks) == 0 {
		return ""
	}
	reason := ""
	dirty := func(f string, args ...interface{}) {
		if reason == "" {
			reason = fmt.Sprintf(f, args...)
		}
	}
	refSlot := func(s int) bool {
		return s >= 0 && s < len(p.LocalType) && p.LocalType[s] != nil && p.LocalType[s].IsRef()
	}
	slotType := func(s int) *types.Type {
		if s >= 0 && s < len(p.LocalType) {
			return p.LocalType[s]
		}
		return nil
	}

	// Forward may-analysis: the set of slots whose objects were sent and
	// may still be referenced by this process. The set must be empty at
	// every blocking point — from there on another process owns the
	// object too.
	lat := lattice[bitset]{
		bottom: func() bitset { return nil },
		join: func(a, b bitset) (bitset, bool) {
			return a, a.unionInto(b)
		},
	}
	block := func(bi int, in bitset) bitset {
		shared := in.clone()
		b := &g.blocks[bi]
		stack := make([]cleanVal, 0, p.MaxStack)
		for i := 0; i < g.depth[b.start]; i++ {
			stack = append(stack, unknownVal(nil))
		}
		pop := func() cleanVal {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			return v
		}
		push := func(v cleanVal) { stack = append(stack, v) }
		atBlock := func(what string) {
			for s := 0; s < p.NumLocals; s++ {
				if shared.get(s) {
					dirty("object in %s is still referenced at a %s after being sent", localName(p, s), what)
					return
				}
			}
		}
		// send marks the sent value's reachable slots as shared.
		send := func(v cleanVal, pos ir.Instr) {
			acc, unknown := v.aliasInto(newBitset(p.NumLocals))
			if unknown {
				dirty("a sent value's aliasing is untracked (line %d)", pos.Pos.Line)
			}
			shared.unionInto(acc)
		}
		// storeRef guards stores that would create intra-process aliases.
		storeRef := func(v cleanVal, what string, pos ir.Instr) {
			if !v.mayRef() {
				return
			}
			if v.kind == cvFresh && v.aliases.empty() && !v.unknown {
				return // fresh exclusive object absorbed whole
			}
			dirty("%s aliases an existing object (line %d)", what, pos.Pos.Line)
		}
		// borrow builds the value for a field/element read of base.
		borrow := func(base cleanVal, t *types.Type) cleanVal {
			if t != nil && t.IsScalar() {
				return scalarVal()
			}
			acc, unknown := base.aliasInto(newBitset(p.NumLocals))
			return cleanVal{kind: cvBorrow, slot: -1, typ: t, aliases: acc, unknown: unknown || (t == nil && base.mayRef())}
		}
		fieldType := func(base cleanVal, idx int) *types.Type {
			if base.typ != nil && idx >= 0 && idx < len(base.typ.Fields) {
				return base.typ.Fields[idx].Type
			}
			return nil
		}

		for pc := b.start; pc < b.end; pc++ {
			in := p.Code[pc]
			switch in.Op {
			case ir.Const, ir.SelfID:
				push(scalarVal())
			case ir.LoadLocal:
				if refSlot(in.A) {
					push(cleanVal{kind: cvLocal, slot: in.A, typ: slotType(in.A)})
				} else {
					push(scalarVal())
				}
			case ir.StoreLocal:
				v := pop()
				if refSlot(in.A) {
					storeRef(v, "a stored value", in)
				}
				shared.clear(in.A) // rebinding drops this process's reference
			case ir.Dup:
				push(stack[len(stack)-1])
			case ir.Pop:
				pop()

			case ir.NewRecord, ir.NewUnion, ir.NewArray:
				nin := ir.StackIn(in)
				acc := newBitset(p.NumLocals)
				unknown := false
				for i := 0; i < nin; i++ {
					var u bool
					acc, u = pop().aliasInto(acc)
					unknown = unknown || u
				}
				push(cleanVal{kind: cvFresh, slot: -1, aliases: acc, unknown: unknown})
			case ir.CastCopy:
				v := pop()
				acc, unknown := v.aliasInto(newBitset(p.NumLocals))
				push(cleanVal{kind: cvFresh, slot: -1, aliases: acc, unknown: unknown})
			case ir.CastReuse:
				v := pop()
				v.typ = nil
				push(v)

			case ir.GetField:
				base := pop()
				push(borrow(base, fieldType(base, in.A)))
			case ir.UnionGet:
				base := pop()
				push(borrow(base, fieldType(base, in.A)))
			case ir.GetIndex:
				pop() // index
				base := pop()
				var et *types.Type
				if base.typ != nil {
					et = base.typ.Elem
				}
				push(borrow(base, et))
			case ir.SetField:
				v := pop()
				pop() // record
				storeRef(v, "a field store", in)
			case ir.SetIndex:
				v := pop()
				pop() // index
				pop() // array
				storeRef(v, "an element store", in)

			case ir.Link:
				pop()
				dirty("manual link() escapes the one-obligation model (line %d)", in.Pos.Line)
			case ir.Unlink:
				v := pop()
				if v.kind == cvLocal {
					shared.clear(v.slot)
				}

			case ir.Send, ir.SendCommit:
				atBlock("send")
				send(pop(), in)
			case ir.Recv:
				atBlock("receive")
				for _, s := range patBindSlots(p.Ports[in.B].Pat, nil) {
					shared.clear(s)
				}
			case ir.Alt:
				atBlock("alt")

			case ir.Halt:
				// A halted process never transitions again; objects it
				// still references are inert.

			default:
				for i := 0; i < ir.StackIn(in); i++ {
					pop()
				}
				for i := 0; i < ir.StackIn(in)+ir.StackEffect(in); i++ {
					push(scalarVal())
				}
			}
		}
		return shared
	}

	transfer := func(bi int, in bitset) []bitset {
		out := block(bi, in)
		b := &g.blocks[bi]
		outs := make([]bitset, len(b.succs))
		for i, e := range b.succs {
			s := out.clone()
			for _, slot := range patBindSlots(armPat(p, e.arm), nil) {
				s.clear(slot)
			}
			outs[i] = s
		}
		return outs
	}
	forwardFixpoint(g, lat, newBitset(p.NumLocals), transfer)
	return reason
}

// ---------------------------------------------------------------------------
// Diagnostics (ESPV013, ESPV014)

// analyzeIndependence reports the two independence-driven findings:
//
//   - ESPV013: an alt whose arms can never compete — every pair of arms
//     is on different channels whose counterparties are disjoint and
//     pairwise independent (so selecting one arm can never disable
//     another), and the arm transitions themselves commute: their
//     downstream channel frontiers are disjoint and neither arm's local
//     effects touch locals the other reads or writes. Serving order then
//     forms a confluence diamond — the nondeterministic choice can never
//     be observed by the rest of the program;
//   - ESPV014: an internal channel touched by exactly one sender and one
//     receiver process that is independent of every other process — its
//     rendezvous are totally ordered with respect to the rest of the
//     program (all interleavings are equivalent), making it a fusion
//     candidate the scheduler rejected only because of an alt site.
func analyzeIndependence(prog *ir.Program, cfgs []*cfg, r *reporter) {
	ind, sends, recvs := computeIndependence(prog, cfgs)
	sendProcs := make([][]int, len(prog.Channels))
	recvProcs := make([][]int, len(prog.Channels))
	for ch := range prog.Channels {
		sendProcs[ch] = procSet(sends[ch])
		recvProcs[ch] = procSet(recvs[ch])
	}

	// ESPV013 — always-independent alt arms.
	for pi, p := range prog.Procs {
		g := cfgs[pi]
		for bi := range g.blocks {
			if !g.reachable[bi] {
				continue
			}
			b := &g.blocks[bi]
			last := p.Code[b.end-1]
			if last.Op != ir.Alt {
				continue
			}
			alt := &p.Alts[last.A]
			if len(alt.Arms) < 2 {
				continue
			}
			if cps := altArmsIndependent(prog, p, alt, last.A, pi, ind, sendProcs, recvProcs); cps != nil {
				r.report(&Finding{
					Check: CheckIndepAltArms,
					Proc:  p.Name,
					Pos:   alt.Pos,
					Msg: fmt.Sprintf("alt arms can never compete: their counterparties (%s) are pairwise independent and the arm transitions commute, so arm order is unobservable scheduling nondeterminism",
						strings.Join(cps, " / ")),
				})
			}
		}
	}

	// ESPV014 — totally ordered channel pair. Only meaningful when there
	// is a rest-of-program to be independent of (vacuous on two-process
	// programs, where every channel pair trivially dominates).
	for _, ch := range prog.Channels {
		id := ch.ID
		if len(prog.Procs) < 3 {
			break
		}
		if ch.Ext != ir.ExtNone || len(sendProcs[id]) != 1 || len(recvProcs[id]) != 1 {
			continue
		}
		a, b := sendProcs[id][0], recvProcs[id][0]
		if a == b {
			continue
		}
		if !hasAltSite(sends[id]) && !hasAltSite(recvs[id]) {
			continue // the scheduler fuses it already; nothing to report
		}
		ordered := true
		for q := range prog.Procs {
			if q == a || q == b {
				continue
			}
			if !ind.Independent(a, q) || !ind.Independent(b, q) {
				ordered = false
				break
			}
		}
		if !ordered {
			continue
		}
		s := firstSite(append(append([]commSite{}, sends[id]...), recvs[id]...))
		r.report(&Finding{
			Check: CheckOrderedChanPair,
			Proc:  s.proc.Name,
			Pos:   s.pos,
			Msg: fmt.Sprintf("channel %s is totally ordered: only %s and %s touch it and both are independent of every other process, so all interleavings are equivalent — an alt site is the only reason the scheduler did not fuse it",
				ch.Name, prog.Procs[a].Name, prog.Procs[b].Name),
		})
	}
}

// altArmsIndependent decides ESPV013 for one alt of process pi and, when
// it fires, returns the rendered counterparty sets for the message.
//
// Two conditions must hold for every pair of arms. First, the arms can
// never compete for a rendezvous: different channels, and counterparty
// sets that are disjoint and pairwise independent — then selecting one
// arm leaves every other ready arm ready. Second, the arm transitions
// commute, so serving two ready arms in either order converges: their
// downstream channel frontiers (the blocking sites a body reaches before
// it blocks again) are disjoint, and neither arm's region writes a local
// the other's region reads or writes. Both together give the confluence
// diamond that makes the choice unobservable.
func altArmsIndependent(prog *ir.Program, p *ir.Proc, alt *ir.AltDef, altIdx, pi int, ind *ir.Independence, sendProcs, recvProcs [][]int) []string {
	// Counterparties of each arm: the processes on the opposite side of
	// the arm's channel, excluding the alt's own process.
	cps := make([][]int, len(alt.Arms))
	regions := make([]armRegion, len(alt.Arms))
	for i := range alt.Arms {
		arm := &alt.Arms[i]
		var procs []int
		if arm.IsSend {
			procs = recvProcs[arm.Chan]
		} else {
			procs = sendProcs[arm.Chan]
		}
		for _, q := range procs {
			if q != pi {
				cps[i] = append(cps[i], q)
			}
		}
		if len(cps[i]) == 0 {
			return nil // a dead arm (ESPV012's finding) is not "independent"
		}
		regions[i] = scanArmRegion(p, arm, altIdx)
	}
	for i := range alt.Arms {
		for j := i + 1; j < len(alt.Arms); j++ {
			if alt.Arms[i].Chan == alt.Arms[j].Chan {
				return nil // same channel: the arms compete directly
			}
			for _, a := range cps[i] {
				for _, b := range cps[j] {
					if a == b || !ind.Independent(a, b) {
						return nil
					}
				}
			}
			if !regions[i].commutes(&regions[j]) {
				return nil // serving order is observable downstream
			}
		}
	}
	names := make([]string, len(cps))
	for i, procs := range cps {
		parts := make([]string, len(procs))
		for k, q := range procs {
			parts[k] = prog.Procs[q].Name
		}
		names[i] = "{" + strings.Join(parts, " ") + "}"
	}
	return names
}

// armRegion summarizes one alt arm's transition: the code from the arm's
// entry up to (not including) the next blocking point.
type armRegion struct {
	chans  map[int]bool // channels of the blocking sites the region reaches
	reads  bitset
	writes bitset
}

// commutes reports that executing the two regions in either order
// converges: no shared downstream channel, and neither writes what the
// other touches.
func (a *armRegion) commutes(b *armRegion) bool {
	for ch := range a.chans {
		if b.chans[ch] {
			return false
		}
	}
	for s := 0; s < len(a.writes)*64; s++ {
		if a.writes.get(s) && (b.reads.get(s) || b.writes.get(s)) {
			return false
		}
		if b.writes.get(s) && (a.reads.get(s) || a.writes.get(s)) {
			return false
		}
	}
	return true
}

// scanArmRegion walks the code reachable from the arm's entry until the
// next blocking point, collecting local reads/writes and the channels of
// the blocking sites it stops at. Re-reaching the arm's own alt is the
// loop-back and contributes nothing: the next activation is a fresh,
// symmetric choice. A send arm's pre-commit evaluation code is part of
// the region (its SendCommit is the arm's own rendezvous, not a
// downstream site).
func scanArmRegion(p *ir.Proc, arm *ir.AltArm, altIdx int) armRegion {
	r := armRegion{
		chans:  map[int]bool{},
		reads:  newBitset(p.NumLocals),
		writes: newBitset(p.NumLocals),
	}
	for _, s := range patBindSlots(armPat(p, arm), nil) {
		r.writes.set(s)
	}
	seen := make([]bool, len(p.Code))
	var work []int
	push := func(pc int) {
		if pc >= 0 && pc < len(p.Code) && !seen[pc] {
			seen[pc] = true
			work = append(work, pc)
		}
	}
	push(arm.BodyPC)
	if arm.IsSend {
		push(arm.EvalPC)
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		in := p.Code[pc]
		switch in.Op {
		case ir.LoadLocal:
			r.reads.set(in.A)
		case ir.StoreLocal:
			r.writes.set(in.A)
		case ir.Jump:
			push(in.A)
			continue
		case ir.JumpIfFalse, ir.JumpIfTrue:
			push(in.A)
		case ir.Send:
			r.chans[in.A] = true
			continue // next blocking point: region ends here
		case ir.SendCommit:
			// The arm's own rendezvous: fall through to the body.
		case ir.Recv:
			r.chans[in.A] = true
			continue
		case ir.Alt:
			if in.A != altIdx {
				for k := range p.Alts[in.A].Arms {
					r.chans[p.Alts[in.A].Arms[k].Chan] = true
				}
			}
			continue
		case ir.Halt:
			continue
		}
		push(pc + 1)
	}
	return r
}
