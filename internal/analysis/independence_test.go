package analysis

import (
	"strings"
	"testing"

	"esplang/internal/ir"
)

// indep computes the independence table for a source program.
func indep(t *testing.T, src string) (*ir.Program, *ir.Independence) {
	t.Helper()
	prog := compileSrc(t, src)
	return prog, ComputeIndependence(prog)
}

func procIdx(t *testing.T, prog *ir.Program, name string) int {
	t.Helper()
	for i, p := range prog.Procs {
		if p.Name == name {
			return i
		}
	}
	t.Fatalf("no process %q", name)
	return -1
}

// TestIndependenceDisjointPipelines: two pipelines with no shared
// channel and no references are independent across, dependent within.
func TestIndependenceDisjointPipelines(t *testing.T) {
	prog, ind := indep(t, `
channel a: int
channel b: int
process pa { out( a, 1); }
process ca { in( a, $x); }
process pb { out( b, 2); }
process cb { in( b, $y); }
`)
	pa, ca := procIdx(t, prog, "pa"), procIdx(t, prog, "ca")
	pb, cb := procIdx(t, prog, "pb"), procIdx(t, prog, "cb")

	if ind.Independent(pa, ca) {
		t.Error("pa/ca share channel a but are marked independent")
	}
	if ind.Independent(pb, cb) {
		t.Error("pb/cb share channel b but are marked independent")
	}
	for _, pair := range [][2]int{{pa, pb}, {pa, cb}, {ca, pb}, {ca, cb}} {
		if !ind.Independent(pair[0], pair[1]) {
			t.Errorf("%s/%s share nothing but are marked dependent",
				prog.Procs[pair[0]].Name, prog.Procs[pair[1]].Name)
		}
	}
	if ind.Independent(pa, pa) {
		t.Error("a process must never be independent of itself")
	}
}

// TestIndependenceSharedChannelCounterexample pins the commutation
// counterexample the Touch sets guard against: two senders racing for
// one receiver on the same channel do not commute (only one send fires
// per message), so every pair touching the channel is dependent.
func TestIndependenceSharedChannel(t *testing.T) {
	prog, ind := indep(t, `
channel c: int
process s1 { out( c, 1); }
process s2 { out( c, 2); }
process r { in( c, $x); in( c, $y); }
`)
	s1, s2, r := procIdx(t, prog, "s1"), procIdx(t, prog, "s2"), procIdx(t, prog, "r")
	for _, pair := range [][2]int{{s1, s2}, {s1, r}, {s2, r}} {
		if ind.Independent(pair[0], pair[1]) {
			t.Errorf("%s/%s both touch channel c but are marked independent",
				prog.Procs[pair[0]].Name, prog.Procs[pair[1]].Name)
		}
	}
}

// TestIndependenceAltEnabling: an alt does not make its process
// independent of counterparties on any arm's channel — firing one arm
// disables the others, the enabledness-interference counterexample.
func TestIndependenceAltEnabling(t *testing.T) {
	prog, ind := indep(t, `
channel a: int
channel b: int
process pa { out( a, 1); }
process pb { out( b, 2); }
process hub {
    alt {
        case( in( a, $x)) { }
        case( in( b, $y)) { }
    }
}
`)
	pa, pb, hub := procIdx(t, prog, "pa"), procIdx(t, prog, "pb"), procIdx(t, prog, "hub")
	if ind.Independent(pa, hub) || ind.Independent(pb, hub) {
		t.Error("alt counterparties marked independent of the alt process")
	}
	if !ind.Independent(pa, pb) {
		t.Error("the two senders share nothing and must stay independent")
	}
}

// TestIndependenceOwnershipTransfer: the clean idiom — send then unlink
// — keeps both ends of a ref-carrying pipeline heap-clean, so the pair
// is still independent of an unrelated scalar pair.
func TestIndependenceOwnershipTransfer(t *testing.T) {
	prog, ind := indep(t, dataDecl+`
channel c: dataT
channel z: int
process p {
    $d: dataT = { 2 -> 7};
    out( c, d);
    unlink( d);
}
process q { in( c, $v); unlink( v); }
process x { out( z, 1); }
process y { in( z, $k); }
`)
	p, q := procIdx(t, prog, "p"), procIdx(t, prog, "q")
	x, y := procIdx(t, prog, "x"), procIdx(t, prog, "y")
	if !ind.Clean[p] || !ind.Clean[q] {
		t.Errorf("send+unlink pipeline not clean: p=%v (%s) q=%v (%s)",
			ind.Clean[p], ind.CleanReason[p], ind.Clean[q], ind.CleanReason[q])
	}
	for _, pair := range [][2]int{{p, x}, {p, y}, {q, x}, {q, y}} {
		if !ind.Independent(pair[0], pair[1]) {
			t.Errorf("%s/%s marked dependent despite disjoint channels and clean heaps",
				prog.Procs[pair[0]].Name, prog.Procs[pair[1]].Name)
		}
	}
}

// TestIndependenceUseAfterSend: holding a reference across the send
// (no unlink before the next blocking point) leaves the sender unclean;
// its dirty ref-flow region must suppress independence with the region
// peer even though the scalar pair shares no channel with it.
func TestIndependenceUseAfterSend(t *testing.T) {
	prog, ind := indep(t, dataDecl+`
channel c: dataT
process p {
    $d: dataT = { 2 -> 7};
    out( c, d);
    out( c, d);
    unlink( d);
}
process q { in( c, $v); unlink( v); in( c, $w); unlink( w); }
process x { $n = 0; n = n + 1; }
`)
	p, q := procIdx(t, prog, "p"), procIdx(t, prog, "q")
	if ind.Clean[p] {
		t.Error("sender keeps a live reference across a blocking point but is marked clean")
	}
	r := ind.Region[p]
	if r < 0 || !ind.DirtyRegion[r] {
		t.Errorf("unclean member did not dirty its ref-flow region (region=%d)", r)
	}
	if ind.Region[q] != r {
		t.Error("both ends of a ref channel must share a region")
	}
	if ind.Independent(p, q) {
		t.Error("processes sharing a channel marked independent")
	}
}

// TestIndependenceManualLink: link() escapes the one-obligation
// ownership model, so the process goes unclean and its whole region is
// conservatively kept dependent.
func TestIndependenceManualLink(t *testing.T) {
	prog, ind := indep(t, dataDecl+`
channel c: dataT
process p {
    $d: dataT = { 2 -> 7};
    link( d);
    out( c, d);
    unlink( d);
    unlink( d);
}
process q { in( c, $v); unlink( v); }
`)
	p, q := procIdx(t, prog, "p"), procIdx(t, prog, "q")
	if ind.Clean[p] {
		t.Errorf("link() user marked clean (%s)", ind.CleanReason[p])
	}
	r := ind.Region[p]
	if r < 0 || !ind.DirtyRegion[r] || ind.Region[q] != r {
		t.Errorf("link() did not dirty the shared region: Region[p]=%d Region[q]=%d",
			ind.Region[p], ind.Region[q])
	}
}

// TestIndependenceExternalChannel: an externally bound channel has the
// environment as an unenumerable counterparty; it must be flagged so
// the reduction never builds an ample set around environment input.
func TestIndependenceExternalChannel(t *testing.T) {
	prog, ind := indep(t, `
channel env: int external writer
channel c: int
process p { in( env, $x); out( c, x); }
process q { in( c, $y); }
`)
	envIdx := -1
	for i, ch := range prog.Channels {
		if ch.Name == "env" {
			envIdx = i
		}
	}
	if envIdx < 0 {
		t.Fatal("channel env not found")
	}
	if !ind.ChanExt[envIdx] {
		t.Error("channel with no internal sender not marked external")
	}
	_ = procIdx(t, prog, "p")
}

// TestFormatIndependence smoke-tests the renderer used by
// espc -dump-indep.
func TestFormatIndependence(t *testing.T) {
	prog, ind := indep(t, `
channel a: int
process pa { out( a, 1); }
process ca { in( a, $x); }
`)
	out := ir.FormatIndependence(prog, ind)
	for _, want := range []string{"channels", "processes", "independent pairs", "pa", "ca"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatIndependence output missing %q:\n%s", want, out)
		}
	}
}
