package analysis

import (
	"fmt"

	"esplang/internal/ir"
)

// analyzeDeadCode reports unreachable statements (ESPV020) and dead
// stores (ESPV021).
//
// Unreachability falls straight out of the CFG: any block the entry
// cannot reach. Consecutive unreachable instructions collapse into one
// finding per source line, and compiler plumbing (the trailing Halt,
// unconditional jumps) never anchors a report.
//
// Dead stores come from a backward liveness fixpoint: a store to a named
// local whose value no later executed instruction can read. Implicit
// reads count — alt guards, dynamic-equality pattern tests — and a
// receive binding is a def (it kills liveness on its arm edge), but an
// unused binding is deliberately not reported: binding-and-ignoring a
// field is ordinary protocol code, discarding with _ is merely the
// tidier spelling.
func analyzeDeadCode(prog *ir.Program, p *ir.Proc, g *cfg, r *reporter) {
	if len(g.blocks) == 0 {
		return
	}
	reportUnreachable(p, g, r)
	reportDeadStores(p, g, r)
}

func reportUnreachable(p *ir.Proc, g *cfg, r *reporter) {
	seenLine := map[int]bool{}
	for bi := range g.blocks {
		if g.reachable[bi] {
			continue
		}
		b := &g.blocks[bi]
		for pc := b.start; pc < b.end; pc++ {
			in := p.Code[pc]
			// Jumps and the process's closing Halt carry structural
			// positions (the enclosing statement or the process
			// declaration), not the dead statement itself.
			if in.Op == ir.Jump || in.Op == ir.Halt || !in.Pos.IsValid() {
				continue
			}
			if seenLine[in.Pos.Line] {
				continue
			}
			seenLine[in.Pos.Line] = true
			r.report(&Finding{
				Check: CheckUnreachable,
				Proc:  p.Name,
				Pos:   in.Pos,
				Msg:   "unreachable code",
			})
			break // one finding per unreachable block is enough
		}
	}
}

func reportDeadStores(p *ir.Proc, g *cfg, r *reporter) {
	n := p.NumLocals
	lat := lattice[bitset]{
		bottom: func() bitset { return newBitset(n) },
		join: func(a, b bitset) (bitset, bool) {
			return a, a.unionInto(b)
		},
	}
	transferBack := func(bi int, out bitset) bitset {
		return liveFlowBlock(p, g, bi, out, nil)
	}
	edgeBack := func(e edge, succIn bitset) bitset {
		binds := patBindSlots(armPat(p, e.arm), nil)
		if len(binds) == 0 {
			return succIn
		}
		s := succIn.clone()
		for _, slot := range binds {
			s.clear(slot)
		}
		return s
	}
	out := backwardFixpoint(g, lat, transferBack, edgeBack)
	for bi := range g.blocks {
		if g.reachable[bi] {
			liveFlowBlock(p, g, bi, out[bi], r)
		}
	}
}

// liveFlowBlock propagates liveness backward through block bi from its
// out-state and returns the in-state. With a reporter it flags stores to
// named locals that are dead at the store.
func liveFlowBlock(p *ir.Proc, g *cfg, bi int, out bitset, r *reporter) bitset {
	live := out.clone()
	b := &g.blocks[bi]
	for pc := b.end - 1; pc >= b.start; pc-- {
		in := p.Code[pc]
		switch in.Op {
		case ir.StoreLocal:
			if r != nil && !live.get(in.A) && p.LocalName[in.A] != "" {
				r.report(&Finding{
					Check: CheckDeadStore,
					Proc:  p.Name,
					Pos:   in.Pos,
					Msg:   fmt.Sprintf("value stored in %s is never read", localName(p, in.A)),
				})
			}
			live.clear(in.A)
		case ir.LoadLocal:
			live.set(in.A)
		case ir.Recv:
			pat := p.Ports[in.B].Pat
			for _, slot := range patBindSlots(pat, nil) {
				live.clear(slot)
			}
			for _, slot := range patReadSlots(pat, nil) {
				live.set(slot)
			}
		case ir.Alt:
			for j := range p.Alts[in.A].Arms {
				arm := &p.Alts[in.A].Arms[j]
				if arm.GuardSlot >= 0 {
					live.set(arm.GuardSlot)
				}
				for _, slot := range patReadSlots(armPat(p, arm), nil) {
					live.set(slot)
				}
			}
		}
	}
	return live
}
