package analysis

import (
	"sort"

	"esplang/internal/ir"
)

// ComputeSchedule builds the static rendezvous schedule for the
// optimizer's FuseProcesses pass. It reuses the channel-protocol facts
// the espvet checks are built on (reachable communication sites per
// channel, per direction) to prove exclusivity: a channel fuses when it
// is internal and every reachable send lives in one process, every
// reachable receive in a second process, and all sites are plain
// Send/Recv instructions. Everything else — external channels,
// alt-guarded channels, fan-in/fan-out — keeps dynamic rendezvous, and
// the schedule records why.
//
// The candidate-narrowing lists (Writers/Readers) are computed for every
// channel regardless of pairing: any process without a reachable site on
// a channel can never block on it, so the VM's rendezvous and poll scans
// may skip it without changing which partner is found first (the lists
// stay in ascending process order, matching the baseline scan order).
func ComputeSchedule(prog *ir.Program) *ir.Schedule {
	cfgs := make([]*cfg, len(prog.Procs))
	for i, p := range prog.Procs {
		cfgs[i] = buildCFG(p)
	}
	sends, recvs := collectCommSites(prog, cfgs)

	s := &ir.Schedule{
		Writers:  make([][]int, len(prog.Channels)),
		Readers:  make([][]int, len(prog.Channels)),
		Internal: make([]bool, len(prog.Channels)),
		Reason:   make([]string, len(prog.Channels)),
	}
	for _, ch := range prog.Channels {
		id := ch.ID
		s.Internal[id] = ch.Ext == ir.ExtNone
		s.Writers[id] = procSet(sends[id])
		s.Readers[id] = procSet(recvs[id])

		switch {
		case ch.Ext != ir.ExtNone:
			s.Reason[id] = "external binding"
		case len(sends[id]) == 0 && len(recvs[id]) == 0:
			s.Reason[id] = "unused"
		case len(sends[id]) == 0 || len(recvs[id]) == 0:
			s.Reason[id] = "one-sided"
		case hasAltSite(sends[id]) || hasAltSite(recvs[id]):
			s.Reason[id] = "alt-guarded"
		case len(s.Writers[id]) > 1:
			s.Reason[id] = "multiple senders"
		case len(s.Readers[id]) > 1:
			s.Reason[id] = "multiple receivers"
		case s.Writers[id][0] == s.Readers[id][0]:
			s.Reason[id] = "single process"
		default:
			s.Pairs = append(s.Pairs, ir.SchedPair{
				Chan:    id,
				Sender:  s.Writers[id][0],
				Recv:    s.Readers[id][0],
				SendPCs: sitePCs(sends[id]),
				RecvPCs: sitePCs(recvs[id]),
			})
		}
	}
	return s
}

// procSet returns the distinct process indices of the sites, ascending.
func procSet(sites []commSite) []int {
	seen := map[int]bool{}
	var out []int
	for _, s := range sites {
		if !seen[s.pi] {
			seen[s.pi] = true
			out = append(out, s.pi)
		}
	}
	sort.Ints(out)
	return out
}

// hasAltSite reports whether any site is an alt arm.
func hasAltSite(sites []commSite) bool {
	for _, s := range sites {
		if s.arm != nil {
			return true
		}
	}
	return false
}

// sitePCs returns the instruction pcs of the sites, ascending.
func sitePCs(sites []commSite) []int {
	out := make([]int, len(sites))
	for i, s := range sites {
		out[i] = s.pc
	}
	sort.Ints(out)
	return out
}
