package analysis

import (
	"fmt"

	"esplang/internal/diag"
	"esplang/internal/ir"
	"esplang/internal/token"
)

// Ownership analysis (ESPV002 leak, ESPV003 use-after-free, ESPV004
// double-free).
//
// Each reference-typed local carries the §4.4 obligation model: storing
// a fresh allocation (or binding a received value) makes the slot OWN
// one release obligation; unlink() discharges it (FREED); overwriting,
// rebinding, or reaching process exit while still OWNED loses the last
// tracked reference — a leak. Anything the per-slot model cannot follow
// (aliasing stores, manual link(), merges of incompatible states)
// demotes the slot to untracked rather than guessing, so use-after-free
// and double-free findings are must-facts along every tracked path.
//
// Leaks are may-facts: a slot that is OWNED on one path into a merge
// stays OWNED (lost references on a feasible path are real bugs, and the
// receive-in-a-loop leak — the second iteration rebinding over the first
// iteration's object — only exists on the back edge). Use-after-free
// and double-free keep the strict join (FREED merged with anything else
// is untracked), so they never fire on a path that may not have freed.
//
// Within a block the operand stack is modeled abstractly: a value is a
// fresh allocation (with its site), the contents of a local, or opaque.
// Block boundaries collapse the stack to opaque values — obligations
// simply stop being tracked, which can miss a leak but never invents
// one.

// ownKind is a slot's ownership state.
type ownKind uint8

const (
	ownNone  ownKind = iota // holds no tracked object (initial state)
	ownOwned                // holds one release obligation
	ownFreed                // obligation discharged; object may be gone
	ownTop                  // untracked (alias, manual link, merge conflict)
)

// slotState is the per-slot lattice element.
type slotState struct {
	kind     ownKind
	acqPos   token.Pos // ownOwned/ownFreed: where the obligation was acquired
	acqBound bool      // acquired by a receive binding, not an allocation
	freePos  token.Pos // ownFreed: where it was released
	sentPos  token.Pos // last send of the slot's value, if any
}

type ownState []slotState

func (s ownState) clone() ownState {
	c := make(ownState, len(s))
	copy(c, s)
	return c
}

// mergeSlot joins two slot states (see the lattice notes above).
func mergeSlot(a, b slotState) slotState {
	if a == b {
		return a
	}
	switch {
	case a.kind == b.kind:
		// Same kind, different sites (two allocation branches): keep the
		// first-seen sites, drop a disagreeing send site.
		if a.sentPos != b.sentPos {
			a.sentPos = token.Pos{}
		}
		return a
	case a.kind == ownNone && b.kind == ownOwned:
		return b
	case a.kind == ownOwned && b.kind == ownNone:
		return a
	}
	return slotState{kind: ownTop}
}

// analyzeOwnership runs the ownership analysis over one process.
func analyzeOwnership(prog *ir.Program, p *ir.Proc, g *cfg, r *reporter) {
	if len(g.blocks) == 0 {
		return
	}
	refSlot := func(s int) bool {
		return s >= 0 && s < len(p.LocalType) && p.LocalType[s] != nil && p.LocalType[s].IsRef()
	}
	if !anyRefSlot(p, refSlot) {
		return
	}
	lat := lattice[ownState]{
		bottom: func() ownState { return nil },
		join: func(a, b ownState) (ownState, bool) {
			changed := false
			for i := range a {
				if m := mergeSlot(a[i], b[i]); m != a[i] {
					a[i] = m
					changed = true
				}
			}
			return a, changed
		},
	}
	o := &ownFlow{prog: prog, p: p, g: g, refSlot: refSlot}
	transfer := func(bi int, in ownState) []ownState {
		out := o.block(bi, in, nil)
		b := &g.blocks[bi]
		outs := make([]ownState, len(b.succs))
		for i, e := range b.succs {
			s := out.clone()
			o.bindPattern(s, armPat(p, e.arm), p.Code[b.end-1].Pos, nil)
			outs[i] = s
		}
		return outs
	}
	in := forwardFixpoint(g, lat, make(ownState, p.NumLocals), transfer)
	for bi := range g.blocks {
		if g.reachable[bi] && in[bi] != nil {
			out := o.block(bi, in[bi], r)
			// Arm-binding rebind leaks are edge effects; report them from
			// the Alt block's out-state.
			for _, e := range g.blocks[bi].succs {
				if e.arm != nil {
					s := out.clone()
					o.bindPattern(s, armPat(p, e.arm), e.arm.Pos, r)
				}
			}
		}
	}
}

func anyRefSlot(p *ir.Proc, refSlot func(int) bool) bool {
	for s := 0; s < p.NumLocals; s++ {
		if refSlot(s) {
			return true
		}
	}
	return false
}

// absVal is one abstract operand-stack value.
type absVal struct {
	kind uint8 // aOther, aLocal, aFresh
	slot int
	pos  token.Pos // aFresh: allocation site
}

const (
	aOther uint8 = iota
	aLocal
	aFresh
)

// ownFlow simulates blocks for the ownership analysis.
type ownFlow struct {
	prog    *ir.Program
	p       *ir.Proc
	g       *cfg
	refSlot func(int) bool
}

// block applies block bi's instructions to the slot states, reporting
// findings when r is non-nil, and returns the out-state.
func (o *ownFlow) block(bi int, in ownState, r *reporter) ownState {
	p := o.p
	st := in.clone()
	b := &o.g.blocks[bi]
	stack := make([]absVal, 0, p.MaxStack)
	for i := 0; i < o.g.depth[b.start]; i++ {
		stack = append(stack, absVal{kind: aOther})
	}
	pop := func() absVal {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	push := func(v absVal) { stack = append(stack, v) }
	// use consumes one abstract value. Loading a freed slot is silent
	// (the load feeding unlink(x) is part of the release, not a use);
	// the instruction that consumes the value decides: Unlink reports
	// double-free, every other consumer reports use-after-free here.
	use := func(v absVal, pos token.Pos, what string) {
		if v.kind == aLocal && st[v.slot].kind == ownFreed {
			o.useAfterFree(r, v.slot, pos, st[v.slot], what)
			st[v.slot] = slotState{kind: ownTop}
		}
	}
	popUse := func(n int, pos token.Pos) {
		for i := 0; i < n; i++ {
			use(pop(), pos, "use")
		}
	}

	for pc := b.start; pc < b.end; pc++ {
		in := p.Code[pc]
		switch in.Op {
		case ir.LoadLocal:
			if o.refSlot(in.A) {
				push(absVal{kind: aLocal, slot: in.A})
			} else {
				push(absVal{kind: aOther})
			}

		case ir.StoreLocal:
			v := pop()
			use(v, in.Pos, "store")
			if !o.refSlot(in.A) {
				continue
			}
			if st[in.A].kind == ownOwned {
				o.leak(r, in.A, in.Pos, st[in.A], "this store overwrites the last reference to the object in %s without releasing it")
			}
			switch v.kind {
			case aFresh:
				st[in.A] = slotState{kind: ownOwned, acqPos: v.pos}
			case aLocal:
				// Aliasing: two slots now share one object; the per-slot
				// model stops tracking both.
				st[in.A] = slotState{kind: ownTop}
				if v.slot != in.A {
					st[v.slot] = slotState{kind: ownTop}
				}
			default:
				st[in.A] = slotState{kind: ownTop}
			}

		case ir.Unlink:
			v := pop()
			if v.kind != aLocal {
				continue // releasing a fresh temporary is balanced
			}
			s := v.slot
			switch st[s].kind {
			case ownOwned:
				fs := st[s]
				fs.kind = ownFreed
				fs.freePos = in.Pos
				st[s] = fs
			case ownFreed:
				if r != nil {
					r.report(&Finding{
						Check: CheckDoubleFree,
						Proc:  p.Name,
						Pos:   in.Pos,
						Msg:   fmt.Sprintf("%s is released twice", localName(p, s)),
						Notes: o.notes(st[s], in.Pos, diag.Note{Pos: st[s].freePos, Msg: "first released here"}),
					})
				}
				st[s] = slotState{kind: ownTop}
			}

		case ir.Link:
			v := pop()
			use(v, in.Pos, "link")
			if v.kind == aLocal {
				// Manual reference counting is beyond the one-obligation
				// model; stop tracking the slot.
				st[v.slot] = slotState{kind: ownTop}
			}

		case ir.Send, ir.SendCommit:
			v := pop()
			use(v, in.Pos, "send")
			if v.kind == aLocal && o.refSlot(v.slot) && st[v.slot].kind == ownOwned {
				fs := st[v.slot]
				fs.sentPos = in.Pos
				st[v.slot] = fs
			}

		case ir.Recv:
			o.bindPattern(st, p.Ports[in.B].Pat, in.Pos, r)

		case ir.NewRecord:
			popUse(in.B, in.Pos)
			push(absVal{kind: aFresh, pos: in.Pos})
		case ir.NewUnion:
			popUse(1, in.Pos)
			push(absVal{kind: aFresh, pos: in.Pos})
		case ir.NewArray:
			popUse(2, in.Pos)
			push(absVal{kind: aFresh, pos: in.Pos})
		case ir.CastCopy:
			popUse(1, in.Pos)
			push(absVal{kind: aFresh, pos: in.Pos})
		case ir.CastReuse:
			v := pop()
			push(v)

		case ir.Dup:
			top := stack[len(stack)-1]
			if top.kind == aFresh {
				// Two handles to one obligation: stop tracking it.
				stack[len(stack)-1] = absVal{kind: aOther}
				top = absVal{kind: aOther}
			}
			push(top)

		case ir.Halt:
			if r != nil {
				for s := 0; s < p.NumLocals; s++ {
					if o.refSlot(s) && st[s].kind == ownOwned {
						o.exitLeak(r, s, st[s])
					}
				}
			}

		default:
			popUse(ir.StackIn(in), in.Pos)
			for i := 0; i < ir.StackIn(in)+ir.StackEffect(in); i++ {
				push(absVal{kind: aOther})
			}
		}
	}
	return st
}

// bindPattern applies a receive pattern's binding effects: binding a
// reference component makes the slot owned (the receiver took the
// transfer's reference and must release it); rebinding a slot that is
// still owned loses its previous object.
func (o *ownFlow) bindPattern(st ownState, pat *ir.Pat, pos token.Pos, r *reporter) {
	if pat == nil {
		return
	}
	for _, s := range patBindSlots(pat, nil) {
		if !o.refSlot(s) {
			continue
		}
		if st[s].kind == ownOwned {
			o.leak(r, s, pos, st[s], "this receive rebinds %s, losing the last reference to the object it already held")
		}
		st[s] = slotState{kind: ownOwned, acqPos: pos, acqBound: true}
	}
}

// notes builds the secondary spans of a finding: any extra notes first,
// then the send and acquisition sites. Notes that would point at the
// finding's own position (a rebind IS the acquisition) are dropped.
func (o *ownFlow) notes(s slotState, primary token.Pos, extra ...diag.Note) []diag.Note {
	var notes []diag.Note
	for _, n := range extra {
		if n.Pos != primary {
			notes = append(notes, n)
		}
	}
	if s.sentPos.IsValid() && s.sentPos != primary {
		notes = append(notes, diag.Note{Pos: s.sentPos, Msg: "sent here"})
	}
	if s.acqPos.IsValid() && s.acqPos != primary {
		msg := "allocated here"
		if s.acqBound {
			msg = "bound here"
		}
		notes = append(notes, diag.Note{Pos: s.acqPos, Msg: msg})
	}
	return notes
}

func (o *ownFlow) useAfterFree(r *reporter, slot int, pos token.Pos, s slotState, what string) {
	if r == nil {
		return
	}
	r.report(&Finding{
		Check: CheckUseAfterFree,
		Proc:  o.p.Name,
		Pos:   pos,
		Msg:   fmt.Sprintf("%s of %s after its reference was released", what, localName(o.p, slot)),
		Notes: o.notes(s, pos, diag.Note{Pos: s.freePos, Msg: "released here"}),
	})
}

func (o *ownFlow) leak(r *reporter, slot int, pos token.Pos, s slotState, format string) {
	if r == nil {
		return
	}
	r.report(&Finding{
		Check: CheckLeak,
		Proc:  o.p.Name,
		Pos:   pos,
		Msg:   fmt.Sprintf(format, localName(o.p, slot)),
		Notes: o.notes(s, pos),
	})
}

func (o *ownFlow) exitLeak(r *reporter, slot int, s slotState) {
	pos := s.acqPos
	acq := "allocated"
	if s.acqBound {
		acq = "bound"
	}
	var notes []diag.Note
	if s.sentPos.IsValid() {
		notes = append(notes, diag.Note{Pos: s.sentPos, Msg: "sent here (the send borrows the reference; it is not a release)"})
	}
	r.report(&Finding{
		Check: CheckLeak,
		Proc:  o.p.Name,
		Pos:   pos,
		Msg:   fmt.Sprintf("object %s here is never released before process %s exits", acq, o.p.Name),
		Notes: notes,
	})
}
