package analysis

// lattice describes one dataflow lattice over states of type S.
//
// Ownership convention: a transfer function must return one freshly
// owned state per successor edge (the framework stores them as block
// in-states), and join may mutate and return its first argument — it
// owns it — but must only read the second.
type lattice[S any] struct {
	// bottom is the state of a block no flow has reached yet; the
	// framework never joins into bottom (first contributions are stored
	// directly).
	bottom func() S
	// join merges b into a and reports whether a changed.
	join func(a, b S) (S, bool)
}

// forwardFixpoint runs a forward worklist fixpoint over the reachable
// blocks of g and returns the fixed in-state of every block (bottom for
// unreachable blocks).
//
// entry is the in-state of the entry block. transfer maps a block's
// in-state to one out-state per successor edge, so edge effects — alt
// arm bindings live on the Alt->arm edge, not in any instruction — apply
// per edge. After the fixpoint the caller makes one reporting pass with
// the final in-states, which keeps findings deterministic and emitted
// exactly once.
func forwardFixpoint[S any](g *cfg, lat lattice[S], entry S, transfer func(bi int, in S) []S) []S {
	n := len(g.blocks)
	in := make([]S, n)
	visited := make([]bool, n)
	for i := range in {
		in[i] = lat.bottom()
	}
	if n == 0 {
		return in
	}
	w := newWorklist(n)
	e := g.blockOf[0]
	in[e] = entry
	visited[e] = true
	w.push(e)
	for {
		bi, ok := w.pop()
		if !ok {
			return in
		}
		outs := transfer(bi, in[bi])
		for si, edge := range g.blocks[bi].succs {
			to := edge.to
			if !visited[to] {
				visited[to] = true
				in[to] = outs[si]
				w.push(to)
				continue
			}
			if next, changed := lat.join(in[to], outs[si]); changed {
				in[to] = next
				w.push(to)
			}
		}
	}
}

// backwardFixpoint runs a backward worklist fixpoint and returns the
// fixed out-state of every block. transferBack maps a block's out-state
// to its in-state; edgeBack applies a successor edge's effect to the
// successor's in-state before it joins the source's out-state (a
// receive arm's bindings kill liveness on that edge, for example).
// Bottom is the out-state of exit blocks, so lat.bottom must be the
// analysis's boundary state (empty liveness at process exit).
func backwardFixpoint[S any](g *cfg, lat lattice[S], transferBack func(bi int, out S) S, edgeBack func(e edge, succIn S) S) []S {
	n := len(g.blocks)
	out := make([]S, n)
	for i := range out {
		out[i] = lat.bottom()
	}
	if n == 0 {
		return out
	}
	preds := g.preds()
	w := newWorklist(n)
	// Seed every reachable block: backward analyses converge from the
	// exits, but infinite server loops have no exit block at all.
	for bi := n - 1; bi >= 0; bi-- {
		if g.reachable[bi] {
			w.push(bi)
		}
	}
	for {
		bi, ok := w.pop()
		if !ok {
			return out
		}
		blockIn := transferBack(bi, out[bi])
		for _, pe := range preds[bi] {
			contrib := edgeBack(pe.e, blockIn)
			if next, changed := lat.join(out[pe.from], contrib); changed {
				out[pe.from] = next
				w.push(pe.from)
			}
		}
	}
}

// worklist is a FIFO block queue with membership dedup.
type worklist struct {
	queue  []int
	queued []bool
}

func newWorklist(n int) *worklist {
	return &worklist{queued: make([]bool, n)}
}

func (w *worklist) push(bi int) {
	if !w.queued[bi] {
		w.queued[bi] = true
		w.queue = append(w.queue, bi)
	}
}

func (w *worklist) pop() (int, bool) {
	if len(w.queue) == 0 {
		return 0, false
	}
	bi := w.queue[0]
	w.queue = w.queue[1:]
	w.queued[bi] = false
	return bi, true
}

// bitset is a fixed-size bit vector used as the definite-assignment and
// liveness lattice element.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) get(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// empty reports whether no bit is set (true for a nil bitset).
func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}
func (b bitset) set(i int)   { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int) { b[i/64] &^= 1 << (i % 64) }

// intersectInto ands o into b, reporting whether b changed.
func (b bitset) intersectInto(o bitset) bool {
	changed := false
	for i := range b {
		n := b[i] & o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

// unionInto ors o into b, reporting whether b changed.
func (b bitset) unionInto(o bitset) bool {
	changed := false
	for i := range b {
		n := b[i] | o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}
