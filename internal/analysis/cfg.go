package analysis

import "esplang/internal/ir"

// edge is one CFG edge. For the successors of an Alt instruction it
// carries the arm taken, whose pattern bindings are edge effects: the
// receive arm's bound slots are assigned on the edge into the arm body,
// not by any instruction.
type edge struct {
	to  int        // successor block index
	arm *ir.AltArm // non-nil on Alt -> arm-entry edges
}

// block is one basic block: the half-open instruction range
// [start, end) and its successor edges.
type block struct {
	start, end int
	succs      []edge
}

// cfg is the control-flow graph of one process, plus the per-pc operand
// stack depths (every reachable pc has exactly one entry depth — the
// invariant ir.Verify proves — which the ownership analysis uses to
// model the abstract operand stack across a block).
type cfg struct {
	blocks    []block
	blockOf   []int  // pc -> enclosing block index
	depth     []int  // pc -> operand stack depth on entry (-1 unreachable)
	reachable []bool // block index -> reachable from entry
}

// buildCFG splits the process's code into basic blocks and links them.
func buildCFG(p *ir.Proc) *cfg {
	n := len(p.Code)
	g := &cfg{}
	if n == 0 {
		return g
	}

	// Leaders: entry, every branch target, every instruction after a
	// terminator, and every alt arm entry point.
	leader := make([]bool, n)
	leader[0] = true
	mark := func(pc int) {
		if pc >= 0 && pc < n {
			leader[pc] = true
		}
	}
	for pc, in := range p.Code {
		switch in.Op {
		case ir.Jump, ir.JumpIfFalse, ir.JumpIfTrue:
			mark(in.A)
			mark(pc + 1)
		case ir.Halt, ir.Alt:
			mark(pc + 1)
		}
	}
	for _, alt := range p.Alts {
		for _, arm := range alt.Arms {
			if arm.IsSend {
				mark(arm.EvalPC)
			}
			mark(arm.BodyPC)
		}
	}

	g.blockOf = make([]int, n)
	for pc := 0; pc < n; pc++ {
		if leader[pc] {
			g.blocks = append(g.blocks, block{start: pc})
		}
		g.blockOf[pc] = len(g.blocks) - 1
	}
	for i := range g.blocks {
		if i+1 < len(g.blocks) {
			g.blocks[i].end = g.blocks[i+1].start
		} else {
			g.blocks[i].end = n
		}
	}

	// Successor edges, from each block's final instruction.
	for i := range g.blocks {
		b := &g.blocks[i]
		last := p.Code[b.end-1]
		switch last.Op {
		case ir.Jump:
			b.succs = []edge{{to: g.blockOf[last.A]}}
		case ir.JumpIfFalse, ir.JumpIfTrue:
			// A branch whose condition is a constant pushed in the same
			// block is decided: while(true) compiles to Const 1;
			// JumpIfFalse exit, and treating the exit edge as real would
			// hide every statement after an infinite loop from the
			// unreachable-code check (and blur the other analyses' joins).
			if taken, known := constBranch(p, b, b.end-1); known {
				if taken {
					b.succs = []edge{{to: g.blockOf[last.A]}}
				} else if b.end < n {
					b.succs = []edge{{to: g.blockOf[b.end]}}
				}
				break
			}
			b.succs = []edge{{to: g.blockOf[last.A]}}
			if b.end < n {
				b.succs = append(b.succs, edge{to: g.blockOf[b.end]})
			}
		case ir.Halt:
			// no successors
		case ir.Alt:
			alt := &p.Alts[last.A]
			for j := range alt.Arms {
				arm := &alt.Arms[j]
				entry := arm.BodyPC
				if arm.IsSend {
					entry = arm.EvalPC
				}
				b.succs = append(b.succs, edge{to: g.blockOf[entry], arm: arm})
			}
		default:
			if b.end < n {
				b.succs = []edge{{to: g.blockOf[b.end]}}
			}
		}
	}

	g.computeReach(p)
	return g
}

// constBranch reports whether the conditional branch at pc is decided by
// a constant condition pushed immediately before it in the same block,
// and if so whether the branch is taken.
func constBranch(p *ir.Proc, b *block, pc int) (taken, known bool) {
	if pc-1 < b.start || p.Code[pc-1].Op != ir.Const {
		return false, false
	}
	cond := p.Code[pc-1].Val != 0
	if p.Code[pc].Op == ir.JumpIfFalse {
		return !cond, true
	}
	return cond, true
}

// computeReach fills the reachability and per-pc depth tables.
func (g *cfg) computeReach(p *ir.Proc) {
	n := len(p.Code)
	// Reachability and per-pc entry depths, propagated the same way
	// ir.Verify's stack check propagates them.
	g.depth = make([]int, n)
	for i := range g.depth {
		g.depth[i] = -1
	}
	g.reachable = make([]bool, len(g.blocks))
	work := []int{g.blockOf[0]}
	g.reachable[g.blockOf[0]] = true
	g.depth[0] = 0
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		b := &g.blocks[bi]
		d := g.depth[b.start]
		for pc := b.start; pc < b.end; pc++ {
			if g.depth[pc] == -1 {
				g.depth[pc] = d
			}
			d += ir.StackEffect(p.Code[pc])
		}
		for _, e := range b.succs {
			s := &g.blocks[e.to]
			out := d
			if e.arm != nil {
				out = 0 // alt arms resume at statement boundaries
			}
			if !g.reachable[e.to] {
				g.reachable[e.to] = true
				g.depth[s.start] = out
				work = append(work, e.to)
			}
		}
	}
}

// preds returns the predecessor edges of every block: preds[bi] lists
// the (source block, edge) pairs flowing into bi.
func (g *cfg) preds() [][]predEdge {
	p := make([][]predEdge, len(g.blocks))
	for bi := range g.blocks {
		for _, e := range g.blocks[bi].succs {
			p[e.to] = append(p[e.to], predEdge{from: bi, e: e})
		}
	}
	return p
}

// predEdge is an incoming CFG edge.
type predEdge struct {
	from int
	e    edge
}
