package analysis

import (
	"fmt"
	"sort"

	"esplang/internal/diag"
	"esplang/internal/ir"
	"esplang/internal/token"
)

// commSite is one reachable communication site on a channel.
type commSite struct {
	proc *ir.Proc
	pi   int // process index in prog.Procs
	pc   int // instruction pc (the Alt pc for alt-arm sites)
	pos  token.Pos
	arm  *ir.AltArm // non-nil for alt-arm sites
}

// collectCommSites gathers every reachable communication site, per
// channel and per direction — the shared fact base of the
// channel-protocol checks and the static rendezvous schedule. Sites in
// unreachable code are excluded; alt arms stand in for their
// SendCommit/port registrations.
func collectCommSites(prog *ir.Program, cfgs []*cfg) (sends, recvs [][]commSite) {
	sends = make([][]commSite, len(prog.Channels))
	recvs = make([][]commSite, len(prog.Channels))
	for pi, p := range prog.Procs {
		g := cfgs[pi]
		for bi := range g.blocks {
			if !g.reachable[bi] {
				continue
			}
			b := &g.blocks[bi]
			for pc := b.start; pc < b.end; pc++ {
				in := p.Code[pc]
				switch in.Op {
				case ir.Send:
					sends[in.A] = append(sends[in.A], commSite{proc: p, pi: pi, pc: pc, pos: in.Pos})
				case ir.Recv:
					recvs[in.A] = append(recvs[in.A], commSite{proc: p, pi: pi, pc: pc, pos: in.Pos})
				case ir.Alt:
					for j := range p.Alts[in.A].Arms {
						arm := &p.Alts[in.A].Arms[j]
						s := commSite{proc: p, pi: pi, pc: pc, pos: arm.Pos, arm: arm}
						if arm.IsSend {
							sends[arm.Chan] = append(sends[arm.Chan], s)
						} else {
							recvs[arm.Chan] = append(recvs[arm.Chan], s)
						}
					}
				}
			}
		}
	}
	return sends, recvs
}

// analyzeChannels reports channel-protocol defects — the static
// deadlock candidates of §5: a rendezvous needs a sender and a receiver
// in two different processes, so a channel whose reachable
// communication sites cannot form such a pair can never complete one.
//
//   - ESPV010: every reachable site is on one side (sent but never
//     received, or received but never sent);
//   - ESPV011: both sides exist but only a single process touches the
//     channel — it would have to rendezvous with itself;
//   - ESPV012: an individual alt arm whose opposite-direction
//     counterparties all live in the arm's own process, so that arm can
//     never fire even though the channel as a whole is fine.
//
// External channels are exempt: the environment supplies the missing
// side. Sites inside unreachable code do not count as counterparties.
func analyzeChannels(prog *ir.Program, cfgs []*cfg, r *reporter) {
	sends, recvs := collectCommSites(prog, cfgs)

	for _, ch := range prog.Channels {
		if ch.Ext != ir.ExtNone {
			continue
		}
		S, R := sends[ch.ID], recvs[ch.ID]
		switch {
		case len(S) == 0 && len(R) == 0:
			continue // declared but unused: harmless
		case len(R) == 0:
			s := firstSite(S)
			r.report(&Finding{
				Check: CheckOrphanChan,
				Proc:  s.proc.Name,
				Pos:   s.pos,
				Msg:   fmt.Sprintf("channel %s is sent here but no process ever receives on it: this send can never complete", ch.Name),
			})
			continue
		case len(S) == 0:
			s := firstSite(R)
			r.report(&Finding{
				Check: CheckOrphanChan,
				Proc:  s.proc.Name,
				Pos:   s.pos,
				Msg:   fmt.Sprintf("channel %s is received here but no process ever sends on it: this receive can never complete", ch.Name),
			})
			continue
		}
		if p := soleProc(S, R); p != nil {
			s := firstSite(append(append([]commSite{}, S...), R...))
			r.report(&Finding{
				Check: CheckSelfRendezvous,
				Proc:  p.Name,
				Pos:   s.pos,
				Msg:   fmt.Sprintf("only process %s communicates on channel %s: a process cannot rendezvous with itself", p.Name, ch.Name),
			})
			continue
		}
		// Per-arm counterparty check (only when the channel as a whole
		// is healthy, so the finding adds information).
		for _, s := range S {
			if s.arm != nil && !anyOtherProc(R, s.proc) {
				r.report(&Finding{
					Check: CheckDeadAltArm,
					Proc:  s.proc.Name,
					Pos:   s.pos,
					Msg:   fmt.Sprintf("alt send arm on channel %s can never synchronize: every receive on %s is in process %s itself", ch.Name, ch.Name, s.proc.Name),
					Notes: siteNotes(R, "receive on "+ch.Name+" here"),
				})
			}
		}
		for _, s := range R {
			if s.arm != nil && !anyOtherProc(S, s.proc) {
				r.report(&Finding{
					Check: CheckDeadAltArm,
					Proc:  s.proc.Name,
					Pos:   s.pos,
					Msg:   fmt.Sprintf("alt receive arm on channel %s can never synchronize: every send on %s is in process %s itself", ch.Name, ch.Name, s.proc.Name),
					Notes: siteNotes(S, "send on "+ch.Name+" here"),
				})
			}
		}
	}
}

// firstSite returns the site earliest in the source.
func firstSite(sites []commSite) commSite {
	min := sites[0]
	for _, s := range sites[1:] {
		if s.pos.Line < min.pos.Line || (s.pos.Line == min.pos.Line && s.pos.Column < min.pos.Column) {
			min = s
		}
	}
	return min
}

// anyOtherProc reports whether any site belongs to a process other than
// self.
func anyOtherProc(sites []commSite, self *ir.Proc) bool {
	for _, s := range sites {
		if s.proc != self {
			return true
		}
	}
	return false
}

// soleProc returns the single process owning every site, or nil.
func soleProc(a, b []commSite) *ir.Proc {
	var p *ir.Proc
	for _, s := range append(append([]commSite{}, a...), b...) {
		if p == nil {
			p = s.proc
		} else if s.proc != p {
			return nil
		}
	}
	return p
}

// siteNotes renders up to three counterparty sites as secondary spans.
func siteNotes(sites []commSite, msg string) []diag.Note {
	sorted := append([]commSite{}, sites...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].pos.Line != sorted[j].pos.Line {
			return sorted[i].pos.Line < sorted[j].pos.Line
		}
		return sorted[i].pos.Column < sorted[j].pos.Column
	})
	var notes []diag.Note
	for i, s := range sorted {
		if i == 3 {
			break
		}
		notes = append(notes, diag.Note{Pos: s.pos, Msg: msg})
	}
	return notes
}
