package check

import (
	"strings"
	"testing"

	"esplang/internal/ast"
	"esplang/internal/parser"
	"esplang/internal/types"
)

func checkOK(t *testing.T, src string) *Info {
	t.Helper()
	prog, err := parser.Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return info
}

func checkErr(t *testing.T, src, wantSubstr string) {
	t.Helper()
	prog, err := parser.Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Check(prog)
	if err == nil {
		t.Fatalf("check: expected error containing %q, got none", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("check: error %q does not contain %q", err, wantSubstr)
	}
}

func TestCheckAdd5(t *testing.T) {
	info := checkOK(t, `
channel chan1: int
channel chan2: int
process add5 {
    while (true) {
        in( chan1, $i);
        out( chan2, i+5);
    }
}
process driver {
    out( chan1, 37);
    in( chan2, $r);
    assert( r == 42);
}
`)
	if len(info.Channels) != 2 || len(info.Processes) != 2 {
		t.Fatalf("got %d channels, %d processes", len(info.Channels), len(info.Processes))
	}
	add5 := info.ProcessByName["add5"]
	if len(add5.Vars) != 1 || add5.Vars[0].Name != "i" {
		t.Errorf("add5 vars = %+v", add5.Vars)
	}
	if add5.Vars[0].Type.Kind != types.Int {
		t.Errorf("i has type %s, want int", add5.Vars[0].Type)
	}
}

func TestInferenceFromLiteral(t *testing.T) {
	info := checkOK(t, `
process p {
    $j = 36;
    $b = true;
    assert( b || j > 0);
}
`)
	p := info.ProcessByName["p"]
	if p.Vars[0].Type.Kind != types.Int || p.Vars[1].Type.Kind != types.Bool {
		t.Errorf("inferred types: %s, %s", p.Vars[0].Type, p.Vars[1].Type)
	}
}

func TestRecordUnionTypes(t *testing.T) {
	info := checkOK(t, `
type sendT = record of { dest: int, vAddr: int, size: int}
type updateT = record of { vAddr: int, pAddr: int}
type userT = union of { send: sendT, update: updateT}
channel c: userT
process p {
    $sr: sendT = { 7, 54677, 1024};
    $ur1: userT = { send |> sr};
    $ur2: userT = { send |> { 5, 10000, 512}};
    out( c, ur1);
    out( c, ur2);
    out( c, ur2);
}
process q {
    while (true) {
        alt {
            case( in( c, { send |> { $dest, $vAddr, $size}})) { skip; }
            case( in( c, { update |> { $vAddr, $pAddr}})) { skip; }
        }
    }
}
`)
	ut := info.ChannelByName["c"].Elem
	if ut.Kind != types.Union || len(ut.Fields) != 2 {
		t.Fatalf("userT = %s", ut)
	}
	if ut.Name() != "userT" {
		t.Errorf("union name %q, want userT", ut.Name())
	}
}

func TestPatternMatchStatement(t *testing.T) {
	// Fourth line of the paper's §4.1 example: a pattern on the LHS.
	checkOK(t, `
type sendT = record of { dest: int, vAddr: int, size: int}
type userT = union of { send: sendT}
process p {
    $ur2: userT = { send |> { 5, 10000, 512}};
    { send |> { $dest, $vAddr, $size}} = ur2;
    assert( dest == 5 && vAddr == 10000 && size == 512);
}
`)
}

func TestMutableArray(t *testing.T) {
	checkOK(t, `
const TABLE_SIZE = 16;
process p {
    $table: #array of int = #{ TABLE_SIZE -> 0, ... };
    table[3] = 7;
    assert( table[3] == 7);
}
`)
}

func TestErrors(t *testing.T) {
	tests := []struct {
		name, src, want string
	}{
		{"undefined var", `process p { x = 1; }`, "undefined variable x"},
		{"undefined channel", `process p { out( nosuch, 1); }`, "undefined channel"},
		{"uninitialized use", `process p { $x = y; }`, "undefined variable y"},
		{"bad assign type", `process p { $x = 1; x = true; }`, "cannot assign"},
		{"assign to const", `const N = 3; process p { N = 4; }`, "cannot assign to constant"},
		{"immutable array write", `process p { $a: array of int = { 4 -> 0}; a[0] = 1; }`, "immutable"},
		{"if cond not bool", `process p { if (3) { skip; } }`, "must be bool"},
		{"while cond not bool", `process p { while (3) { skip; } }`, "must be bool"},
		{"assert not bool", `process p { assert( 3); }`, "must be bool"},
		{"break outside loop", `process p { break; }`, "break outside"},
		{"binding in expr", `process p { $x = $y + 1; }`, "only allowed in patterns"},
		{"arith on bool", `process p { $x = true + 1; }`, "requires int operands"},
		{"no processes", `channel c: int`, "no processes"},
		{"recursive type", `type t = record of { next: t} process p { skip; }`, "recursive type"},
		{"redeclared channel", "channel c: int\nchannel c: bool\nprocess p { in( c, $x); }", "redeclared"},
		{"redeclared process", `process p { skip; } process p { skip; }`, "redeclared"},
		{"redeclared var", `process p { $x = 1; $x = 2; }`, "redeclared"},
		{"record literal arity", `type r = record of { a: int, b: int} process p { $v: r = { 1}; }`, "has 2 fields"},
		{"union bad field", `type u = union of { a: int} process p { $v: u = { b |> 1}; }`, "no field b"},
		{"composite needs type", `process p { $v = { 1, 2}; }`, "cannot infer"},
		{"link scalar", `process p { $x = 1; link( x); }`, "requires a record"},
		{"unlink scalar", `process p { $x = 1; unlink( x); }`, "requires a record"},
		{"record equality", `type r = record of { a: int} process p { $x: r = { 1}; $y: r = { 1}; assert( x == y); }`, "compares scalars"},
		{"index non-array", `process p { $x = 1; $y = x[0]; }`, "requires an array"},
		{"field non-record", `process p { $x = 1; $y = x.f; }`, "requires a record"},
		{"no such field", `type r = record of { a: int} process p { $x: r = { 1}; $y = x.b; }`, "no field b"},
		{"array of arrays", `type t = array of array of int process p { skip; }`, "element type must be int or bool"},
		{"mutable payload", `channel c: #array of int process p { in( c, $x); }`, "deeply immutable"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			checkErr(t, tt.src, tt.want)
		})
	}
}

func TestChannelDirectionRules(t *testing.T) {
	checkErr(t, `
channel c: int external writer
process p { out( c, 1); }
`, "external writer")
	checkErr(t, `
channel c: int external reader
process p { in( c, $x); }
`, "external reader")
	// The legal directions pass.
	checkOK(t, `
channel w: int external writer
channel r: int external reader
process p {
    in( w, $x);
    out( r, x);
}
`)
}

func TestPatternDisjointness(t *testing.T) {
	// Two processes with overlapping (identical) patterns on one channel.
	checkErr(t, `
channel c: int
process a { in( c, $x); }
process b { in( c, $y); }
`, "overlaps")
	// Distinct union tags are disjoint.
	checkOK(t, `
type u = union of { send: int, update: int}
channel c: u
process a { in( c, { send |> $x}); }
process b { in( c, { update |> $y}); }
process w { out( c, { send |> 1}); out( c, { update |> 2}); }
`)
	// Distinct @ positions are disjoint (the ret-field convention).
	checkOK(t, `
type r = record of { ret: int, v: int}
channel c: r
process a { in( c, { @, $x}); }
process b { in( c, { @, $y}); }
process w { out( c, { 0, 1}); }
`)
}

func TestExhaustiveness(t *testing.T) {
	// Static non-exhaustive union dispatch is an error.
	checkErr(t, `
type u = union of { send: int, update: int}
channel c: u
process a { in( c, { send |> $x}); }
process w { out( c, { send |> 1}); }
`, "not exhaustive")
	// Dynamic tests defer exhaustiveness to the verifier.
	checkOK(t, `
type r = record of { ret: int, v: int}
channel c: r
process a { in( c, { @, $x}); }
process w { out( c, { 0, 1}); }
`)
}

func TestInterfaceChecking(t *testing.T) {
	info := checkOK(t, `
type sendT = record of { dest: int, vAddr: int, size: int}
type updateT = record of { vAddr: int, pAddr: int}
type userT = union of { send: sendT, update: updateT}
channel userReqC: userT
interface userReq( out userReqC) {
    Send( { send |> { $dest, $vAddr, $size}}),
    Update( { update |> $new}),
}
process a { in( userReqC, { send |> { $d, $v, $s}}); }
process b { in( userReqC, { update |> $u}); }
`)
	ch := info.ChannelByName["userReqC"]
	if ch.Ext != ast.ExtWriter {
		t.Errorf("interface did not mark channel external writer: %v", ch.Ext)
	}
	if ch.Iface == nil || len(ch.Iface.Cases) != 2 {
		t.Fatalf("iface = %+v", ch.Iface)
	}
	send := ch.Iface.Cases[0]
	if len(send.Params) != 3 || send.Params[0].Name != "dest" {
		t.Errorf("Send params = %+v", send.Params)
	}
	update := ch.Iface.Cases[1]
	if len(update.Params) != 1 || update.Params[0].Type.Kind != types.Record {
		t.Errorf("Update params = %+v", update.Params)
	}
}

func TestInterfaceCaseOverlap(t *testing.T) {
	checkErr(t, `
channel c: int
interface i( out c) {
    A( $x),
    B( $y),
}
process p { in( c, $v); }
`, "overlap")
}

func TestMutabilityCast(t *testing.T) {
	checkOK(t, `
channel c: array of int
process p {
    $a: #array of int = #{ 4 -> 0};
    a[0] = 9;
    out( c, immutable(a));
}
process q {
    in( c, $d);
    $m = mutable(d);
    m[1] = 2;
    assert( m[0] == 9);
}
`)
}

func TestSelfHasIntType(t *testing.T) {
	checkOK(t, `
type r = record of { ret: int, v: int}
channel c: r
process p {
    out( c, { @, 1});
}
process q {
    in( c, { $ret, $v});
    assert( ret >= 0);
}
`)
}

func TestAltGuards(t *testing.T) {
	checkErr(t, `
channel c: int
process p {
    alt {
        case( 3, in( c, $x)) { skip; }
    }
}
`, "guard must be bool")
}

func TestBindingScopesToAltCase(t *testing.T) {
	// A binding in one alt case is not visible in another case's body.
	checkErr(t, `
channel c: int
channel d: bool
process p {
    alt {
        case( in( c, $x)) { skip; }
        case( in( d, $b)) { $y = x; }
    }
}
`, "undefined variable x")
}

func TestShadowingInNestedScope(t *testing.T) {
	checkOK(t, `
process p {
    $x = 1;
    if (x == 1) {
        $x = true;
        assert( x);
    }
    assert( x == 1);
}
`)
}

func TestConstInPattern(t *testing.T) {
	checkOK(t, `
const MAGIC = 99;
type r = record of { kind: int, v: int}
channel c: r
process a { in( c, { MAGIC, $v}); }
process w { out( c, { MAGIC, 1}); }
`)
}

func TestTypesShareStructure(t *testing.T) {
	info := checkOK(t, `
type a = record of { x: int}
type b = record of { x: int}
channel c: a
process p { $v: b = { 1}; out( c, v); }
process q { in( c, $w); }
`)
	// Structural typing: a and b are the same type, so the send is legal.
	if got := info.ChannelByName["c"].Elem; got.Name() != "a" && got.Name() != "b" {
		t.Errorf("channel elem name = %q", got.Name())
	}
}

func TestGuardCannotSeeCaseBindings(t *testing.T) {
	// Guards are evaluated before the alternative's pattern binds.
	checkErr(t, `
channel c: int
process p {
    alt {
        case( x > 0, in( c, $x)) { skip; }
    }
}
`, "undefined variable x")
}

func TestBindingInOutPosition(t *testing.T) {
	checkErr(t, `
channel c: int
process p { out( c, $x); }
`, "only allowed in patterns")
}

func TestInterfaceDirectionConflict(t *testing.T) {
	checkErr(t, `
channel c: int external reader
interface i( out c) { A( $x) }
process p { in( c, $v); }
`, "declared external reader")
}

func TestInterfaceOnUnknownChannel(t *testing.T) {
	checkErr(t, `
interface i( out nosuch) { A( $x) }
process p { skip; }
`, "undefined channel")
}

func TestDuplicateInterface(t *testing.T) {
	checkErr(t, `
channel c: int
interface i1( out c) { A( $x) }
interface i2( out c) { B( $x) }
process p { in( c, $v); }
`, "already has interface")
}

func TestMutablePatternRejected(t *testing.T) {
	checkErr(t, `
type r = record of { a: int }
channel c: r
process p { in( c, #{ $a}); }
process w { out( c, { 1}); }
`, "cannot be mutable")
}

func TestArrayLiteralNeedsArrayType(t *testing.T) {
	checkErr(t, `
type r = record of { a: int }
process p { $x: r = { 4 -> 0}; }
`, "array literal where")
}

func TestUnionLiteralNeedsUnionType(t *testing.T) {
	checkErr(t, `
type r = record of { a: int }
process p { $x: r = { a |> 1}; }
`, "union literal where")
}

func TestNestedPatternTypeErrors(t *testing.T) {
	checkErr(t, `
type inner = record of { a: int }
type outer = record of { x: inner }
channel c: outer
process p { in( c, { { $a, $b}}); }
process w { out( c, { { 1}}); }
`, "has 1 fields")
}

func TestWildcardOnlyReceivePattern(t *testing.T) {
	// A lone wildcard receive discards the message (and its storage).
	checkOK(t, `
type r = record of { a: int }
channel c: r
process p { in( c, _); }
process w { out( c, { 1}); }
`)
}
