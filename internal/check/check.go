// Package check implements the ESP type checker.
//
// Beyond conventional type checking, the checker enforces the language
// rules the paper leans on (PLDI 2001):
//
//   - every variable is initialized at declaration; per-statement type
//     inference fills in omitted types (§4.1);
//   - no recursive types (§4.1) — they cannot be translated to SPIN;
//   - channel payloads are deeply immutable (§4.2);
//   - the receive patterns on a channel are pairwise disjoint across
//     processes and exhaustive where statically decidable, so a channel
//     plus a pattern forms a single-reader port (§4.2);
//   - external channels have exactly one external side, and internal
//     processes only use the other side (§4.5).
package check

import (
	"fmt"
	"sort"

	"esplang/internal/ast"
	"esplang/internal/diag"
	"esplang/internal/token"
	"esplang/internal/types"
)

// Error is a semantic error with its source position — the shared
// compiler diagnostic, so semantic errors render with caret excerpts.
type Error = diag.Diagnostic

// ErrorList is a list of semantic errors implementing error.
type ErrorList = diag.List

// Var is a process-local variable (declared with $name or bound in a
// pattern). Slot is its dense index in the owning process frame.
type Var struct {
	Name string
	Type *types.Type
	Slot int
	Proc *Process
}

// Channel is a checked channel declaration.
type Channel struct {
	ID    int
	Name  string
	Elem  *types.Type
	Ext   ast.ExtDir
	Decl  *ast.ChannelDecl
	Iface *Interface // non-nil when an interface declaration names this channel
}

// Process is a checked process declaration. Vars lists every variable in
// frame-slot order.
type Process struct {
	ID   int
	Name string
	Decl *ast.ProcessDecl
	Vars []*Var
}

// IfaceParam is one $binding of an interface case pattern: a parameter of
// the generated C function.
type IfaceParam struct {
	Name string
	Type *types.Type
}

// IfaceCase is a checked case of an external interface.
type IfaceCase struct {
	Name    string
	Pattern ast.Expr
	Shape   *Shape
	Params  []IfaceParam
}

// Interface is a checked external interface declaration.
type Interface struct {
	Name  string
	Chan  *Channel
	Dir   token.Kind // token.IN or token.OUT (the external side's operation)
	Cases []IfaceCase
}

// Port is the registration of one receive pattern: (channel, process,
// pattern shape). Each distinct shape per process is one port.
type Port struct {
	Chan  *Channel
	Proc  *Process
	Shape *Shape
	Pos   token.Pos
}

// Info is the result of checking: the resolved program.
type Info struct {
	Universe  *types.Universe
	Types     map[ast.Expr]*types.Type // type of every expression and pattern node
	Consts    map[string]int64
	Channels  []*Channel
	Processes []*Process
	Ifaces    []*Interface
	Uses      map[*ast.Ident]*Var // identifier use -> variable
	Defs      map[*ast.Ident]*Var // $decl or $binding name -> variable
	CommChan  map[*ast.Comm]*Channel
	Shapes    map[*ast.Comm]*Shape // receive comm -> pattern shape
	Ports     []*Port

	ChannelByName map[string]*Channel
	ProcessByName map[string]*Process
}

// Check type-checks prog and returns the resolved Info, or an ErrorList.
func Check(prog *ast.Program) (*Info, error) {
	c := &checker{
		info: &Info{
			Universe:      types.NewUniverse(),
			Types:         make(map[ast.Expr]*types.Type),
			Consts:        make(map[string]int64),
			Uses:          make(map[*ast.Ident]*Var),
			Defs:          make(map[*ast.Ident]*Var),
			CommChan:      make(map[*ast.Comm]*Channel),
			Shapes:        make(map[*ast.Comm]*Shape),
			ChannelByName: make(map[string]*Channel),
			ProcessByName: make(map[string]*Process),
		},
		typeDecls: make(map[string]*ast.TypeDecl),
		resolved:  make(map[string]*types.Type),
		resolving: make(map[string]bool),
	}
	c.program(prog)
	if len(c.errs) > 0 {
		sort.SliceStable(c.errs, func(i, j int) bool {
			a, b := c.errs[i].Pos, c.errs[j].Pos
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			return a.Column < b.Column
		})
		return c.info, c.errs
	}
	return c.info, nil
}

type checker struct {
	info *Info
	errs ErrorList

	typeDecls map[string]*ast.TypeDecl
	resolved  map[string]*types.Type
	resolving map[string]bool // cycle detection

	// per-process state
	proc      *Process
	scopes    []map[string]*Var
	loopDepth int
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// ---------------------------------------------------------------------------
// Program structure

func (c *checker) program(prog *ast.Program) {
	// Pass 1: collect type declarations so names can resolve forward.
	for _, d := range prog.Decls {
		if td, ok := d.(*ast.TypeDecl); ok {
			if _, dup := c.typeDecls[td.Name.Name]; dup {
				c.errorf(td.Pos(), "type %s redeclared", td.Name.Name)
				continue
			}
			c.typeDecls[td.Name.Name] = td
		}
	}
	// Pass 2: constants (in order; later consts may use nothing, they are
	// plain literals).
	for _, d := range prog.Decls {
		if cd, ok := d.(*ast.ConstDecl); ok {
			if _, dup := c.info.Consts[cd.Name.Name]; dup {
				c.errorf(cd.Pos(), "constant %s redeclared", cd.Name.Name)
				continue
			}
			c.info.Consts[cd.Name.Name] = cd.Value
		}
	}
	// Pass 3: resolve all named types (detects recursion). Declaration
	// order, not map order: interning assigns the dense type IDs here, and
	// they must be stable run to run (the IR disassembly and both backends
	// print them).
	for _, d := range prog.Decls {
		if td, ok := d.(*ast.TypeDecl); ok {
			if _, known := c.typeDecls[td.Name.Name]; known {
				c.resolveNamed(td.Name.Name, td.Pos())
			}
		}
	}
	// Pass 4: channels.
	for _, d := range prog.Decls {
		if ch, ok := d.(*ast.ChannelDecl); ok {
			c.channelDecl(ch)
		}
	}
	// Pass 5: interfaces (need channels).
	for _, d := range prog.Decls {
		if id, ok := d.(*ast.InterfaceDecl); ok {
			c.interfaceDecl(id)
		}
	}
	// Pass 6: processes.
	for _, d := range prog.Decls {
		if pd, ok := d.(*ast.ProcessDecl); ok {
			c.processDecl(pd)
		}
	}
	if len(c.info.Processes) == 0 {
		c.errorf(prog.Pos(), "program declares no processes")
	}
	// Pass 7: channel-wide pattern rules.
	c.checkPorts()
}

// ---------------------------------------------------------------------------
// Types

func (c *checker) resolveNamed(name string, pos token.Pos) *types.Type {
	if t, ok := c.resolved[name]; ok {
		return t
	}
	td, ok := c.typeDecls[name]
	if !ok {
		c.errorf(pos, "undefined type %s", name)
		return c.info.Universe.IntType
	}
	if c.resolving[name] {
		c.errorf(td.Pos(), "recursive type %s (ESP has no recursive data types, §4.1)", name)
		t := c.info.Universe.IntType
		c.resolved[name] = t
		return t
	}
	c.resolving[name] = true
	t := c.typeExpr(td.Type)
	delete(c.resolving, name)
	c.info.Universe.SetName(t, name)
	c.resolved[name] = t
	return t
}

func (c *checker) typeExpr(te ast.TypeExpr) *types.Type {
	u := c.info.Universe
	switch x := te.(type) {
	case *ast.PrimType:
		if x.Kind == token.INTTYPE {
			return u.IntType
		}
		return u.BoolType
	case *ast.NamedType:
		return c.resolveNamed(x.Name, x.Pos())
	case *ast.RecordType:
		fields := c.fieldDefs(x.Fields, x.Pos(), "record")
		return u.Record(x.Mutable, fields)
	case *ast.UnionType:
		fields := c.fieldDefs(x.Fields, x.Pos(), "union")
		if len(fields) == 0 {
			c.errorf(x.Pos(), "union type must have at least one field")
		}
		return u.Union(x.Mutable, fields)
	case *ast.ArrayType:
		elem := c.typeExpr(x.Elem)
		if elem.IsRef() {
			// Keep the model SPIN-translatable: arrays of scalars only,
			// like Promela. Arrays of references would also defeat the
			// objectId aliasing scheme (§5.2).
			c.errorf(x.Pos(), "array element type must be int or bool, got %s", elem)
			elem = u.IntType
		}
		return u.Array(x.Mutable, elem, x.Bound)
	}
	c.errorf(te.Pos(), "invalid type expression")
	return u.IntType
}

func (c *checker) fieldDefs(fds []ast.FieldDef, pos token.Pos, what string) []types.Field {
	seen := make(map[string]bool, len(fds))
	fields := make([]types.Field, 0, len(fds))
	for _, fd := range fds {
		if seen[fd.Name.Name] {
			c.errorf(fd.Name.Pos(), "duplicate %s field %s", what, fd.Name.Name)
			continue
		}
		seen[fd.Name.Name] = true
		fields = append(fields, types.Field{Name: fd.Name.Name, Type: c.typeExpr(fd.Type)})
	}
	return fields
}

// ---------------------------------------------------------------------------
// Channels and interfaces

func (c *checker) channelDecl(d *ast.ChannelDecl) {
	if _, dup := c.info.ChannelByName[d.Name.Name]; dup {
		c.errorf(d.Pos(), "channel %s redeclared", d.Name.Name)
		return
	}
	elem := c.typeExpr(d.Elem)
	if !elem.DeeplyImmutable() {
		c.errorf(d.Pos(), "channel %s: payload type %s must be deeply immutable (§4.2); use immutable() to cast before sending", d.Name.Name, elem)
	}
	ch := &Channel{ID: len(c.info.Channels), Name: d.Name.Name, Elem: elem, Ext: d.Ext, Decl: d}
	c.info.Channels = append(c.info.Channels, ch)
	c.info.ChannelByName[ch.Name] = ch
}

func (c *checker) interfaceDecl(d *ast.InterfaceDecl) {
	ch, ok := c.info.ChannelByName[d.Chan.Name]
	if !ok {
		c.errorf(d.Chan.Pos(), "interface %s: undefined channel %s", d.Name.Name, d.Chan.Name)
		return
	}
	wantExt := ast.ExtWriter
	if d.Dir == token.IN {
		wantExt = ast.ExtReader
	}
	switch ch.Ext {
	case ast.ExtNone:
		ch.Ext = wantExt // the interface declaration establishes the external side
	case wantExt:
		// consistent
	default:
		c.errorf(d.Pos(), "interface %s: channel %s is declared %s but the interface implies %s",
			d.Name.Name, ch.Name, ch.Ext, wantExt)
	}
	if ch.Iface != nil {
		c.errorf(d.Pos(), "channel %s already has interface %s", ch.Name, ch.Iface.Name)
		return
	}
	iface := &Interface{Name: d.Name.Name, Chan: ch, Dir: d.Dir}
	for _, ic := range d.Cases {
		params := &[]IfaceParam{}
		shape := c.ifacePattern(ic.Pattern, ch.Elem, params)
		iface.Cases = append(iface.Cases, IfaceCase{
			Name:    ic.Name.Name,
			Pattern: ic.Pattern,
			Shape:   shape,
			Params:  *params,
		})
	}
	// External-writer interface cases must be pairwise disjoint so IsReady
	// can name which one is ready (§4.5).
	for i := 0; i < len(iface.Cases); i++ {
		for j := i + 1; j < len(iface.Cases); j++ {
			if Overlap(iface.Cases[i].Shape, iface.Cases[j].Shape) {
				c.errorf(d.Pos(), "interface %s: cases %s and %s overlap",
					d.Name.Name, iface.Cases[i].Name, iface.Cases[j].Name)
			}
		}
	}
	ch.Iface = iface
	c.info.Ifaces = append(c.info.Ifaces, iface)
}

// ifacePattern types an interface case pattern. Its bindings become C
// function parameters, not process variables.
func (c *checker) ifacePattern(p ast.Expr, expected *types.Type, params *[]IfaceParam) *Shape {
	switch x := p.(type) {
	case *ast.Binding:
		*params = append(*params, IfaceParam{Name: x.Name.Name, Type: expected})
		c.info.Types[p] = expected
		return &Shape{Kind: ShapeAny}
	case *ast.Wildcard:
		c.info.Types[p] = expected
		return &Shape{Kind: ShapeAny}
	case *ast.IntLit:
		if expected.Kind != types.Int {
			c.errorf(p.Pos(), "pattern literal %d where %s expected", x.Value, expected)
		}
		c.info.Types[p] = c.info.Universe.IntType
		return &Shape{Kind: ShapeConst, Int: x.Value}
	case *ast.BoolLit:
		if expected.Kind != types.Bool {
			c.errorf(p.Pos(), "pattern literal %t where %s expected", x.Value, expected)
		}
		c.info.Types[p] = c.info.Universe.BoolType
		v := int64(0)
		if x.Value {
			v = 1
		}
		return &Shape{Kind: ShapeConst, Int: v}
	case *ast.RecordLit:
		if expected.Kind != types.Record {
			c.errorf(p.Pos(), "record pattern where %s expected", expected)
			return &Shape{Kind: ShapeAny}
		}
		if len(x.Elems) != len(expected.Fields) {
			c.errorf(p.Pos(), "record pattern has %d elements, type %s has %d fields",
				len(x.Elems), expected, len(expected.Fields))
			return &Shape{Kind: ShapeAny}
		}
		sh := &Shape{Kind: ShapeRecord}
		for i, el := range x.Elems {
			sh.Elems = append(sh.Elems, c.ifacePattern(el, expected.Fields[i].Type, params))
		}
		c.info.Types[p] = expected
		return sh
	case *ast.UnionLit:
		if expected.Kind != types.Union {
			c.errorf(p.Pos(), "union pattern where %s expected", expected)
			return &Shape{Kind: ShapeAny}
		}
		idx := expected.FieldIndex(x.Field.Name)
		if idx < 0 {
			c.errorf(x.Field.Pos(), "type %s has no field %s", expected, x.Field.Name)
			return &Shape{Kind: ShapeAny}
		}
		inner := c.ifacePattern(x.Value, expected.Fields[idx].Type, params)
		c.info.Types[p] = expected
		return &Shape{Kind: ShapeUnion, Tag: idx, Elems: []*Shape{inner}}
	default:
		c.errorf(p.Pos(), "invalid interface pattern element (want $binding, _, literal, record, or union pattern)")
		return &Shape{Kind: ShapeAny}
	}
}

// ---------------------------------------------------------------------------
// Processes

func (c *checker) processDecl(d *ast.ProcessDecl) {
	if _, dup := c.info.ProcessByName[d.Name.Name]; dup {
		c.errorf(d.Pos(), "process %s redeclared", d.Name.Name)
		return
	}
	p := &Process{ID: len(c.info.Processes), Name: d.Name.Name, Decl: d}
	c.info.Processes = append(c.info.Processes, p)
	c.info.ProcessByName[p.Name] = p

	c.proc = p
	c.scopes = []map[string]*Var{make(map[string]*Var)}
	c.loopDepth = 0
	c.blockInner(d.Body)
	c.proc = nil
	c.scopes = nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]*Var)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declareVar(name *ast.Ident, t *types.Type) *Var {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name.Name]; dup {
		c.errorf(name.Pos(), "variable %s redeclared in the same scope", name.Name)
	}
	v := &Var{Name: name.Name, Type: t, Slot: len(c.proc.Vars), Proc: c.proc}
	c.proc.Vars = append(c.proc.Vars, v)
	top[name.Name] = v
	c.info.Defs[name] = v
	return v
}

func (c *checker) lookupVar(name string) *Var {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v, ok := c.scopes[i][name]; ok {
			return v
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Statements

func (c *checker) blockInner(b *ast.Block) {
	for _, s := range b.Stmts {
		c.stmt(s)
	}
}

func (c *checker) block(b *ast.Block) {
	c.pushScope()
	c.blockInner(b)
	c.popScope()
}

func (c *checker) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.Block:
		c.block(x)
	case *ast.VarDecl:
		var t *types.Type
		if x.Type != nil {
			t = c.typeExpr(x.Type)
			got := c.expr(x.Init, t)
			if got != t {
				c.errorf(x.Init.Pos(), "cannot initialize %s (type %s) with value of type %s",
					x.Name.Name, t, got)
			}
		} else {
			t = c.expr(x.Init, nil)
		}
		c.declareVar(x.Name, t)
	case *ast.Assign:
		if ast.IsPattern(x.LHS) {
			rhsT := c.expr(x.RHS, nil)
			if rhsT == nil {
				// Composite RHS with no inferable type: peek at an explicit
				// pattern is no help; require a typed RHS.
				c.errorf(x.RHS.Pos(), "cannot infer type of right-hand side of pattern match")
				return
			}
			c.pattern(x.LHS, rhsT)
			return
		}
		lhsT := c.lvalue(x.LHS)
		got := c.expr(x.RHS, lhsT)
		if lhsT != nil && got != lhsT {
			c.errorf(x.RHS.Pos(), "cannot assign value of type %s to %s", got, lhsT)
		}
	case *ast.While:
		if x.Cond != nil {
			if t := c.expr(x.Cond, c.info.Universe.BoolType); t.Kind != types.Bool {
				c.errorf(x.Cond.Pos(), "while condition must be bool, got %s", t)
			}
		}
		c.loopDepth++
		c.block(x.Body)
		c.loopDepth--
	case *ast.If:
		if t := c.expr(x.Cond, c.info.Universe.BoolType); t.Kind != types.Bool {
			c.errorf(x.Cond.Pos(), "if condition must be bool, got %s", t)
		}
		c.block(x.Then)
		if x.Else != nil {
			c.stmt(x.Else)
		}
	case *ast.Comm:
		c.comm(x, nil)
	case *ast.Alt:
		c.altStmt(x)
	case *ast.Link:
		t := c.expr(x.X, nil)
		if !t.IsRef() {
			c.errorf(x.X.Pos(), "link() requires a record, union, or array value, got %s", t)
		}
	case *ast.Unlink:
		t := c.expr(x.X, nil)
		if !t.IsRef() {
			c.errorf(x.X.Pos(), "unlink() requires a record, union, or array value, got %s", t)
		}
	case *ast.Assert:
		if t := c.expr(x.X, c.info.Universe.BoolType); t.Kind != types.Bool {
			c.errorf(x.X.Pos(), "assert condition must be bool, got %s", t)
		}
	case *ast.Skip:
	case *ast.BreakStmt:
		if c.loopDepth == 0 {
			c.errorf(x.Pos(), "break outside of while loop")
		}
	}
}

func (c *checker) altStmt(x *ast.Alt) {
	for _, cs := range x.Cases {
		if cs.Guard != nil {
			if t := c.expr(cs.Guard, c.info.Universe.BoolType); t.Kind != types.Bool {
				c.errorf(cs.Guard.Pos(), "alt guard must be bool, got %s", t)
			}
		}
		c.pushScope() // bindings in the case pattern scope to the case body
		c.comm(cs.Comm, cs)
		c.blockInner(cs.Body)
		c.popScope()
	}
}

// comm checks an in/out operation, standalone or as an alt case.
func (c *checker) comm(x *ast.Comm, altCase *ast.AltCase) {
	ch, ok := c.info.ChannelByName[x.Chan.Name]
	if !ok {
		c.errorf(x.Chan.Pos(), "undefined channel %s", x.Chan.Name)
		return
	}
	c.info.CommChan[x] = ch
	if x.Dir == ast.Recv {
		if ch.Ext == ast.ExtReader {
			c.errorf(x.Pos(), "channel %s has an external reader; processes cannot receive on it", ch.Name)
		}
		if altCase == nil {
			c.pushScope()
			defer func() {
				// Hoist the bindings into the enclosing scope: the paper's
				// style uses them after the in statement.
				top := c.scopes[len(c.scopes)-1]
				c.popScope()
				outer := c.scopes[len(c.scopes)-1]
				for name, v := range top {
					if _, dup := outer[name]; dup {
						c.errorf(x.Pos(), "pattern binding %s shadows a variable in the same scope", name)
						continue
					}
					outer[name] = v
				}
			}()
		}
		shape := c.pattern(x.Arg, ch.Elem)
		c.info.Shapes[x] = shape
		c.info.Ports = append(c.info.Ports, &Port{Chan: ch, Proc: c.proc, Shape: shape, Pos: x.Pos()})
		return
	}
	// Send.
	if ch.Ext == ast.ExtWriter {
		c.errorf(x.Pos(), "channel %s has an external writer; processes cannot send on it", ch.Name)
	}
	got := c.expr(x.Arg, ch.Elem)
	if got != ch.Elem {
		c.errorf(x.Arg.Pos(), "out on channel %s requires %s, got %s", ch.Name, ch.Elem, got)
	}
}

// ---------------------------------------------------------------------------
// Patterns

// pattern checks p against the expected type, declaring bound variables,
// and returns its dispatch shape.
func (c *checker) pattern(p ast.Expr, expected *types.Type) *Shape {
	c.info.Types[p] = expected
	switch x := p.(type) {
	case *ast.Binding:
		c.declareVar(x.Name, expected)
		return &Shape{Kind: ShapeAny}
	case *ast.Wildcard:
		return &Shape{Kind: ShapeAny}
	case *ast.Self:
		if expected.Kind != types.Int {
			c.errorf(p.Pos(), "@ pattern requires int position, got %s", expected)
		}
		return &Shape{Kind: ShapeSelf, ProcID: c.proc.ID}
	case *ast.IntLit:
		if expected.Kind != types.Int {
			c.errorf(p.Pos(), "pattern literal %d where %s expected", x.Value, expected)
		}
		return &Shape{Kind: ShapeConst, Int: x.Value}
	case *ast.BoolLit:
		if expected.Kind != types.Bool {
			c.errorf(p.Pos(), "pattern literal %t where %s expected", x.Value, expected)
		}
		v := int64(0)
		if x.Value {
			v = 1
		}
		return &Shape{Kind: ShapeConst, Int: v}
	case *ast.Ident:
		// Equality test against an existing variable or constant.
		if cv, ok := c.info.Consts[x.Name]; ok {
			if expected.Kind != types.Int {
				c.errorf(p.Pos(), "constant %s in pattern requires int position, got %s", x.Name, expected)
			}
			return &Shape{Kind: ShapeConst, Int: cv}
		}
		v := c.lookupVar(x.Name)
		if v == nil {
			c.errorf(p.Pos(), "undefined variable %s in pattern", x.Name)
			return &Shape{Kind: ShapeAny}
		}
		c.info.Uses[x] = v
		if !v.Type.IsScalar() {
			c.errorf(p.Pos(), "pattern equality test requires a scalar variable, %s has type %s", x.Name, v.Type)
			return &Shape{Kind: ShapeAny}
		}
		if v.Type != expected {
			c.errorf(p.Pos(), "pattern variable %s has type %s, position requires %s", x.Name, v.Type, expected)
		}
		return &Shape{Kind: ShapeDyn}
	case *ast.RecordLit:
		if x.Mutable {
			c.errorf(p.Pos(), "patterns cannot be mutable ('#')")
		}
		if expected.Kind != types.Record {
			c.errorf(p.Pos(), "record pattern where %s expected", expected)
			return &Shape{Kind: ShapeAny}
		}
		if len(x.Elems) != len(expected.Fields) {
			c.errorf(p.Pos(), "record pattern has %d elements, type %s has %d fields",
				len(x.Elems), expected, len(expected.Fields))
			return &Shape{Kind: ShapeAny}
		}
		sh := &Shape{Kind: ShapeRecord}
		for i, el := range x.Elems {
			sh.Elems = append(sh.Elems, c.pattern(el, expected.Fields[i].Type))
		}
		return sh
	case *ast.UnionLit:
		if x.Mutable {
			c.errorf(p.Pos(), "patterns cannot be mutable ('#')")
		}
		if expected.Kind != types.Union {
			c.errorf(p.Pos(), "union pattern where %s expected", expected)
			return &Shape{Kind: ShapeAny}
		}
		idx := expected.FieldIndex(x.Field.Name)
		if idx < 0 {
			c.errorf(x.Field.Pos(), "type %s has no field %s", expected, x.Field.Name)
			return &Shape{Kind: ShapeAny}
		}
		inner := c.pattern(x.Value, expected.Fields[idx].Type)
		return &Shape{Kind: ShapeUnion, Tag: idx, Elems: []*Shape{inner}}
	default:
		c.errorf(p.Pos(), "invalid pattern element (want $binding, _, @, literal, variable, record, or union pattern)")
		return &Shape{Kind: ShapeAny}
	}
}

// ---------------------------------------------------------------------------
// Expressions

// lvalue checks an assignment target and returns its type.
func (c *checker) lvalue(e ast.Expr) *types.Type {
	switch x := e.(type) {
	case *ast.Ident:
		if _, isConst := c.info.Consts[x.Name]; isConst {
			c.errorf(e.Pos(), "cannot assign to constant %s", x.Name)
			return c.info.Universe.IntType
		}
		v := c.lookupVar(x.Name)
		if v == nil {
			c.errorf(e.Pos(), "undefined variable %s (declare with $%s = ...)", x.Name, x.Name)
			return nil
		}
		c.info.Uses[x] = v
		c.info.Types[e] = v.Type
		return v.Type
	case *ast.Index:
		xt := c.expr(x.X, nil)
		if xt.Kind != types.Array {
			c.errorf(x.X.Pos(), "indexing requires an array, got %s", xt)
			return nil
		}
		if !xt.Mutable {
			c.errorf(e.Pos(), "cannot assign to element of immutable array (cast with mutable() first)")
		}
		if it := c.expr(x.I, c.info.Universe.IntType); it.Kind != types.Int {
			c.errorf(x.I.Pos(), "array index must be int, got %s", it)
		}
		c.info.Types[e] = xt.Elem
		return xt.Elem
	case *ast.FieldSel:
		xt := c.expr(x.X, nil)
		if xt.Kind != types.Record {
			c.errorf(x.X.Pos(), "field assignment requires a record, got %s", xt)
			return nil
		}
		if !xt.Mutable {
			c.errorf(e.Pos(), "cannot assign to field of immutable record (cast with mutable() first)")
		}
		idx := xt.FieldIndex(x.Name.Name)
		if idx < 0 {
			c.errorf(x.Name.Pos(), "type %s has no field %s", xt, x.Name.Name)
			return nil
		}
		c.info.Types[e] = xt.Fields[idx].Type
		return xt.Fields[idx].Type
	default:
		c.errorf(e.Pos(), "invalid assignment target")
		return nil
	}
}

// expr type-checks e with an optional expected type (used to type
// composite literals) and returns its type. It never returns nil except
// for composite literals that cannot be inferred.
func (c *checker) expr(e ast.Expr, expected *types.Type) *types.Type {
	t := c.exprInner(e, expected)
	if t != nil {
		c.info.Types[e] = t
	}
	return t
}

func (c *checker) exprInner(e ast.Expr, expected *types.Type) *types.Type {
	u := c.info.Universe
	switch x := e.(type) {
	case *ast.IntLit:
		return u.IntType
	case *ast.BoolLit:
		return u.BoolType
	case *ast.Self:
		return u.IntType
	case *ast.Ident:
		if _, ok := c.info.Consts[x.Name]; ok {
			return u.IntType
		}
		v := c.lookupVar(x.Name)
		if v == nil {
			c.errorf(e.Pos(), "undefined variable %s", x.Name)
			return u.IntType
		}
		c.info.Uses[x] = v
		return v.Type
	case *ast.Binding:
		c.errorf(e.Pos(), "$%s binding is only allowed in patterns", x.Name.Name)
		return u.IntType
	case *ast.Wildcard:
		c.errorf(e.Pos(), "_ is only allowed in patterns")
		return u.IntType
	case *ast.Unary:
		switch x.Op {
		case token.NOT:
			if t := c.expr(x.X, u.BoolType); t.Kind != types.Bool {
				c.errorf(x.X.Pos(), "! requires bool, got %s", t)
			}
			return u.BoolType
		case token.SUB:
			if t := c.expr(x.X, u.IntType); t.Kind != types.Int {
				c.errorf(x.X.Pos(), "unary - requires int, got %s", t)
			}
			return u.IntType
		}
		c.errorf(e.Pos(), "invalid unary operator %s", x.Op)
		return u.IntType
	case *ast.Binary:
		switch x.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM:
			lt := c.expr(x.X, u.IntType)
			rt := c.expr(x.Y, u.IntType)
			if lt.Kind != types.Int || rt.Kind != types.Int {
				c.errorf(e.Pos(), "%s requires int operands, got %s and %s", x.Op, lt, rt)
			}
			return u.IntType
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			lt := c.expr(x.X, u.IntType)
			rt := c.expr(x.Y, u.IntType)
			if lt.Kind != types.Int || rt.Kind != types.Int {
				c.errorf(e.Pos(), "%s requires int operands, got %s and %s", x.Op, lt, rt)
			}
			return u.BoolType
		case token.EQL, token.NEQ:
			lt := c.expr(x.X, nil)
			rt := c.expr(x.Y, lt)
			if lt != rt {
				c.errorf(e.Pos(), "%s requires operands of the same type, got %s and %s", x.Op, lt, rt)
			} else if lt != nil && !lt.IsScalar() {
				c.errorf(e.Pos(), "%s compares scalars only; %s values have no equality", x.Op, lt)
			}
			return u.BoolType
		case token.LAND, token.LOR:
			lt := c.expr(x.X, u.BoolType)
			rt := c.expr(x.Y, u.BoolType)
			if lt.Kind != types.Bool || rt.Kind != types.Bool {
				c.errorf(e.Pos(), "%s requires bool operands, got %s and %s", x.Op, lt, rt)
			}
			return u.BoolType
		}
		c.errorf(e.Pos(), "invalid binary operator %s", x.Op)
		return u.IntType
	case *ast.Index:
		xt := c.expr(x.X, nil)
		if xt == nil || xt.Kind != types.Array {
			c.errorf(x.X.Pos(), "indexing requires an array, got %s", xt)
			return u.IntType
		}
		if it := c.expr(x.I, u.IntType); it.Kind != types.Int {
			c.errorf(x.I.Pos(), "array index must be int, got %s", it)
		}
		return xt.Elem
	case *ast.FieldSel:
		xt := c.expr(x.X, nil)
		if xt == nil || xt.Kind != types.Record {
			c.errorf(x.X.Pos(), "field selection requires a record, got %s", xt)
			return u.IntType
		}
		idx := xt.FieldIndex(x.Name.Name)
		if idx < 0 {
			c.errorf(x.Name.Pos(), "type %s has no field %s", xt, x.Name.Name)
			return u.IntType
		}
		return xt.Fields[idx].Type
	case *ast.RecordLit:
		if expected == nil {
			c.errorf(e.Pos(), "cannot infer type of record literal; add a type annotation")
			return nil
		}
		if expected.Kind != types.Record {
			c.errorf(e.Pos(), "record literal where %s expected", expected)
			return expected
		}
		if expected.Mutable != x.Mutable {
			c.errorf(e.Pos(), "literal mutability ('#') does not match type %s", expected)
		}
		if len(x.Elems) != len(expected.Fields) {
			c.errorf(e.Pos(), "record literal has %d elements, type %s has %d fields",
				len(x.Elems), expected, len(expected.Fields))
			return expected
		}
		for i, el := range x.Elems {
			got := c.expr(el, expected.Fields[i].Type)
			if got != expected.Fields[i].Type {
				c.errorf(el.Pos(), "field %s of %s requires %s, got %s",
					expected.Fields[i].Name, expected, expected.Fields[i].Type, got)
			}
		}
		return expected
	case *ast.UnionLit:
		if expected == nil {
			c.errorf(e.Pos(), "cannot infer type of union literal; add a type annotation")
			return nil
		}
		if expected.Kind != types.Union {
			c.errorf(e.Pos(), "union literal where %s expected", expected)
			return expected
		}
		if expected.Mutable != x.Mutable {
			c.errorf(e.Pos(), "literal mutability ('#') does not match type %s", expected)
		}
		idx := expected.FieldIndex(x.Field.Name)
		if idx < 0 {
			c.errorf(x.Field.Pos(), "type %s has no field %s", expected, x.Field.Name)
			return expected
		}
		got := c.expr(x.Value, expected.Fields[idx].Type)
		if got != expected.Fields[idx].Type {
			c.errorf(x.Value.Pos(), "field %s of %s requires %s, got %s",
				x.Field.Name, expected, expected.Fields[idx].Type, got)
		}
		return expected
	case *ast.ArrayLit:
		if expected == nil {
			c.errorf(e.Pos(), "cannot infer type of array literal; add a type annotation")
			return nil
		}
		if expected.Kind != types.Array {
			c.errorf(e.Pos(), "array literal where %s expected", expected)
			return expected
		}
		if expected.Mutable != x.Mutable {
			c.errorf(e.Pos(), "literal mutability ('#') does not match type %s", expected)
		}
		if ct := c.expr(x.Count, u.IntType); ct.Kind != types.Int {
			c.errorf(x.Count.Pos(), "array size must be int, got %s", ct)
		}
		if got := c.expr(x.Init, expected.Elem); got != expected.Elem {
			c.errorf(x.Init.Pos(), "array element initializer requires %s, got %s", expected.Elem, got)
		}
		return expected
	case *ast.Cast:
		var xt *types.Type
		if expected != nil {
			xt = c.expr(x.X, u.WithMutability(expected, !x.ToMutable))
		} else {
			xt = c.expr(x.X, nil)
		}
		if xt == nil {
			return nil
		}
		if !xt.IsRef() {
			c.errorf(e.Pos(), "mutability cast requires a record, union, or array value, got %s", xt)
			return xt
		}
		return u.WithMutability(xt, x.ToMutable)
	}
	c.errorf(e.Pos(), "invalid expression")
	return u.IntType
}

// ---------------------------------------------------------------------------
// Channel-wide pattern rules (§4.2)

func (c *checker) checkPorts() {
	byChan := make(map[*Channel][]*Port)
	for _, p := range c.info.Ports {
		byChan[p.Chan] = append(byChan[p.Chan], p)
	}
	for _, ch := range c.info.Channels {
		ports := byChan[ch]
		// Disjointness across processes: a channel+pattern is a port with a
		// single reader.
		for i := 0; i < len(ports); i++ {
			for j := i + 1; j < len(ports); j++ {
				a, b := ports[i], ports[j]
				if a.Proc == b.Proc {
					continue // a process may re-use its own pattern at several points
				}
				if Overlap(a.Shape, b.Shape) {
					c.errorf(b.Pos, "receive pattern on channel %s in process %s overlaps pattern in process %s at %s (patterns on a channel must be disjoint, §4.2)",
						ch.Name, b.Proc.Name, a.Proc.Name, a.Pos)
				}
			}
		}
		// Exhaustiveness where statically decidable.
		if len(ports) > 0 {
			shapes := make([]*Shape, len(ports))
			static := true
			for i, p := range ports {
				shapes[i] = p.Shape
				if p.Shape.HasDynamicTest() {
					static = false
				}
			}
			if static && !Exhaustive(shapes, ch.Elem) {
				c.errorf(ports[0].Pos, "receive patterns on channel %s are not exhaustive over %s (§4.2)", ch.Name, ch.Elem)
			}
		}
	}
}
