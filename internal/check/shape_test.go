package check

import (
	"math/rand"
	"testing"
	"testing/quick"

	"esplang/internal/types"
)

// genShape builds a random shape of bounded depth.
func genShape(r *rand.Rand, depth int) *Shape {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return &Shape{Kind: ShapeAny}
		case 1:
			return &Shape{Kind: ShapeConst, Int: int64(r.Intn(3))}
		case 2:
			return &Shape{Kind: ShapeSelf, ProcID: r.Intn(3)}
		default:
			return &Shape{Kind: ShapeDyn}
		}
	}
	switch r.Intn(6) {
	case 0:
		return &Shape{Kind: ShapeAny}
	case 1:
		return &Shape{Kind: ShapeConst, Int: int64(r.Intn(3))}
	case 2:
		return &Shape{Kind: ShapeSelf, ProcID: r.Intn(3)}
	case 3:
		return &Shape{Kind: ShapeDyn}
	case 4:
		n := 1 + r.Intn(3)
		s := &Shape{Kind: ShapeRecord}
		for i := 0; i < n; i++ {
			s.Elems = append(s.Elems, genShape(r, depth-1))
		}
		return s
	default:
		return &Shape{Kind: ShapeUnion, Tag: r.Intn(2), Elems: []*Shape{genShape(r, depth-1)}}
	}
}

func TestOverlapSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genShape(r, 3)
		b := genShape(r, 3)
		return Overlap(a, b) == Overlap(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestOverlapReflexiveForSatisfiable(t *testing.T) {
	// Every generated shape matches at least one value, so it must
	// overlap itself.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genShape(r, 3)
		return Overlap(a, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAnyOverlapsEverything(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		return Overlap(&Shape{Kind: ShapeAny}, genShape(r, 3))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDisjointCases(t *testing.T) {
	c1 := &Shape{Kind: ShapeConst, Int: 1}
	c2 := &Shape{Kind: ShapeConst, Int: 2}
	if Overlap(c1, c2) {
		t.Error("distinct constants overlap")
	}
	u0 := &Shape{Kind: ShapeUnion, Tag: 0, Elems: []*Shape{{Kind: ShapeAny}}}
	u1 := &Shape{Kind: ShapeUnion, Tag: 1, Elems: []*Shape{{Kind: ShapeAny}}}
	if Overlap(u0, u1) {
		t.Error("distinct tags overlap")
	}
	s0 := &Shape{Kind: ShapeSelf, ProcID: 0}
	s1 := &Shape{Kind: ShapeSelf, ProcID: 1}
	if Overlap(s0, s1) {
		t.Error("distinct process ids overlap")
	}
	r1 := &Shape{Kind: ShapeRecord, Elems: []*Shape{c1, {Kind: ShapeAny}}}
	r2 := &Shape{Kind: ShapeRecord, Elems: []*Shape{c2, {Kind: ShapeAny}}}
	if Overlap(r1, r2) {
		t.Error("records with disjoint fields overlap")
	}
	// Dynamic tests conservatively overlap.
	if !Overlap(&Shape{Kind: ShapeDyn}, c1) {
		t.Error("dynamic test must overlap constants")
	}
}

func TestExhaustiveUnionSplit(t *testing.T) {
	u := types.NewUniverse()
	ut := u.Union(false, []types.Field{
		{Name: "a", Type: u.IntType},
		{Name: "b", Type: u.IntType},
	})
	a := &Shape{Kind: ShapeUnion, Tag: 0, Elems: []*Shape{{Kind: ShapeAny}}}
	b := &Shape{Kind: ShapeUnion, Tag: 1, Elems: []*Shape{{Kind: ShapeAny}}}
	if !Exhaustive([]*Shape{a, b}, ut) {
		t.Error("full tag split not exhaustive")
	}
	if Exhaustive([]*Shape{a}, ut) {
		t.Error("missing tag considered exhaustive")
	}
	if !Exhaustive([]*Shape{{Kind: ShapeAny}}, ut) {
		t.Error("Any not exhaustive")
	}
}

func TestExhaustiveRecord(t *testing.T) {
	u := types.NewUniverse()
	rt := u.Record(false, []types.Field{
		{Name: "x", Type: u.IntType},
		{Name: "y", Type: u.IntType},
	})
	full := &Shape{Kind: ShapeRecord, Elems: []*Shape{{Kind: ShapeAny}, {Kind: ShapeAny}}}
	partial := &Shape{Kind: ShapeRecord, Elems: []*Shape{{Kind: ShapeConst, Int: 1}, {Kind: ShapeAny}}}
	if !Exhaustive([]*Shape{full}, rt) {
		t.Error("all-any record not exhaustive")
	}
	if Exhaustive([]*Shape{partial}, rt) {
		t.Error("const-restricted record considered exhaustive")
	}
}

func TestShapeKeyDistinguishes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genShape(r, 3)
		b := genShape(r, 3)
		// Equal keys imply equal overlap behavior against a probe set.
		if a.Key() != b.Key() {
			return true
		}
		probes := []*Shape{
			{Kind: ShapeConst, Int: 0},
			{Kind: ShapeConst, Int: 1},
			{Kind: ShapeUnion, Tag: 0, Elems: []*Shape{{Kind: ShapeAny}}},
			{Kind: ShapeRecord, Elems: []*Shape{{Kind: ShapeAny}}},
		}
		for _, p := range probes {
			if Overlap(a, p) != Overlap(b, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
