package check

import (
	"fmt"
	"strings"

	"esplang/internal/types"
)

// ShapeKind classifies one node of a pattern's dispatch shape.
type ShapeKind int

// Shape node kinds.
const (
	ShapeAny    ShapeKind = iota // $binding or _
	ShapeConst                   // integer or boolean literal (bool encoded 0/1)
	ShapeSelf                    // @ — a compile-time constant per process instance
	ShapeDyn                     // equality test against a runtime variable
	ShapeRecord                  // positional subpatterns
	ShapeUnion                   // tag + one subpattern
)

// Shape is the dispatch skeleton of a receive pattern: everything the
// channel needs to route a message to the right port (§4.2). Bindings are
// erased to Any; the compiler re-attaches binding slots separately.
type Shape struct {
	Kind   ShapeKind
	Int    int64    // ShapeConst value
	ProcID int      // ShapeSelf: the receiving process id
	Tag    int      // ShapeUnion: field index
	Elems  []*Shape // ShapeRecord children; ShapeUnion has exactly one
}

// HasDynamicTest reports whether the shape contains a scalar test —
// a runtime-variable equality test, a literal, or @ — which makes static
// exhaustiveness undecidable (the paper's ret-field convention relies on
// this: the verifier catches stuck sends as deadlock instead).
func (s *Shape) HasDynamicTest() bool {
	switch s.Kind {
	case ShapeDyn, ShapeSelf, ShapeConst:
		return true
	case ShapeRecord, ShapeUnion:
		for _, e := range s.Elems {
			if e.HasDynamicTest() {
				return true
			}
		}
	}
	return false
}

// String renders the shape for diagnostics.
func (s *Shape) String() string {
	var b strings.Builder
	s.str(&b)
	return b.String()
}

func (s *Shape) str(b *strings.Builder) {
	switch s.Kind {
	case ShapeAny:
		b.WriteByte('_')
	case ShapeConst:
		fmt.Fprintf(b, "%d", s.Int)
	case ShapeSelf:
		fmt.Fprintf(b, "@%d", s.ProcID)
	case ShapeDyn:
		b.WriteString("<dyn>")
	case ShapeRecord:
		b.WriteString("{ ")
		for i, e := range s.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			e.str(b)
		}
		b.WriteString(" }")
	case ShapeUnion:
		fmt.Fprintf(b, "{ #%d |> ", s.Tag)
		s.Elems[0].str(b)
		b.WriteString(" }")
	}
}

// Key returns a canonical string identity for the shape, used to group
// identical patterns into one port.
func (s *Shape) Key() string { return s.String() }

// Overlap reports whether two shapes can match the same value. Dynamic
// tests overlap everything (they are resolved at run time); distinct
// constants, distinct process ids (@), and distinct union tags are
// provably disjoint.
func Overlap(a, b *Shape) bool {
	if a == nil || b == nil {
		return true
	}
	// Normalize: Any and Dyn match anything for overlap purposes.
	aw := a.Kind == ShapeAny || a.Kind == ShapeDyn
	bw := b.Kind == ShapeAny || b.Kind == ShapeDyn
	if aw || bw {
		return true
	}
	switch a.Kind {
	case ShapeConst:
		switch b.Kind {
		case ShapeConst:
			return a.Int == b.Int
		case ShapeSelf:
			return true // a pid constant could equal the literal
		}
		return true
	case ShapeSelf:
		switch b.Kind {
		case ShapeSelf:
			return a.ProcID == b.ProcID
		case ShapeConst:
			return true
		}
		return true
	case ShapeRecord:
		if b.Kind != ShapeRecord || len(a.Elems) != len(b.Elems) {
			return true // type mismatch is reported elsewhere; be conservative
		}
		for i := range a.Elems {
			if !Overlap(a.Elems[i], b.Elems[i]) {
				return false
			}
		}
		return true
	case ShapeUnion:
		if b.Kind != ShapeUnion {
			return true
		}
		if a.Tag != b.Tag {
			return false
		}
		return Overlap(a.Elems[0], b.Elems[0])
	}
	return true
}

// Exhaustive reports whether the given static shapes (no dynamic tests)
// jointly cover every value of type t. The analysis is exact for the
// pattern forms the checker admits:
//
//   - an Any shape covers everything;
//   - union values are covered when every tag is covered by some pattern
//     whose subpattern covers the field type;
//   - record values are covered when some single pattern covers every
//     field (patterns do not split record fields independently — the
//     checker requires per-pattern coverage, which is what the paper's
//     dispatch needs).
//
// Shapes containing constants or @ never prove coverage of an int/bool
// position (the value space is unbounded), so they contribute nothing to
// exhaustiveness — matching the paper, where such channels rely on the
// ret-field convention and the verifier catches stuck sends as deadlock.
func Exhaustive(shapes []*Shape, t *types.Type) bool {
	// Any single covering shape suffices.
	for _, s := range shapes {
		if covers(s, t) {
			return true
		}
	}
	if t.Kind == types.Union {
		// Tags may be split across patterns (the paper's process A/B
		// example: A takes send, B takes update).
		for tag := range t.Fields {
			covered := false
			for _, s := range shapes {
				if s.Kind == ShapeUnion && s.Tag == tag && covers(s.Elems[0], t.Fields[tag].Type) {
					covered = true
					break
				}
				if s.Kind == ShapeAny {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	return false
}

// covers reports whether a single shape matches every value of type t.
func covers(s *Shape, t *types.Type) bool {
	switch s.Kind {
	case ShapeAny:
		return true
	case ShapeConst, ShapeSelf, ShapeDyn:
		if t.Kind == types.Bool {
			return false // a single literal never covers both booleans
		}
		return false
	case ShapeRecord:
		if t.Kind != types.Record || len(s.Elems) != len(t.Fields) {
			return false
		}
		for i, e := range s.Elems {
			if !covers(e, t.Fields[i].Type) {
				return false
			}
		}
		return true
	case ShapeUnion:
		if t.Kind != types.Union || len(t.Fields) != 1 {
			return false
		}
		return s.Tag == 0 && covers(s.Elems[0], t.Fields[0].Type)
	}
	return false
}
