package compile_test

import (
	"strings"
	"testing"

	"esplang/internal/check"
	"esplang/internal/compile"
	"esplang/internal/ir"
	"esplang/internal/parser"
)

func compileSrc(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := parser.Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := check.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return compile.Program(prog, info)
}

func TestBlockingPointsAreExplicit(t *testing.T) {
	p := compileSrc(t, `
channel a: int
channel b: int
process p {
    in( a, $x);
    out( b, x);
    alt {
        case( in( a, $y)) { skip; }
        case( out( b, 1)) { skip; }
    }
}
process q { out( a, 1); in( b, $v); out( a, 2); in( b, $w); }
`)
	proc := p.ProcByName("p")
	counts := map[ir.Op]int{}
	for _, in := range proc.Code {
		counts[in.Op]++
	}
	if counts[ir.Recv] != 1 || counts[ir.Send] != 1 || counts[ir.Alt] != 1 || counts[ir.SendCommit] != 1 {
		t.Errorf("blocking ops: %v", counts)
	}
	if len(proc.Ports) != 2 {
		t.Errorf("ports = %d, want 2 (plain recv + alt recv arm)", len(proc.Ports))
	}
	if len(proc.Alts) != 1 || len(proc.Alts[0].Arms) != 2 {
		t.Fatalf("alts = %+v", proc.Alts)
	}
	send := proc.Alts[0].Arms[1]
	if !send.IsSend || send.EvalPC < 0 {
		t.Errorf("send arm = %+v", send)
	}
	if send.OutPat == nil || send.OutPat.Kind != ir.PatConst || send.OutPat.Val != 1 {
		t.Errorf("send arm OutPat = %+v, want const 1", send.OutPat)
	}
}

func TestFreshTempFlag(t *testing.T) {
	p := compileSrc(t, `
type r = record of { a: int }
channel c: r
process p {
    $v: r = { 1};
    out( c, v);        // variable: sender keeps its reference
    out( c, { 2});     // fresh literal: released after transfer
}
process q { in( c, $x); unlink( x); in( c, $y); unlink( y); }
`)
	proc := p.ProcByName("p")
	var flags []int
	for _, in := range proc.Code {
		if in.Op == ir.Send {
			flags = append(flags, in.B)
		}
	}
	if len(flags) != 2 || flags[0]&ir.FlagFreeAfter != 0 || flags[1]&ir.FlagFreeAfter == 0 {
		t.Errorf("send flags = %v, want [0, FreeAfter]", flags)
	}
}

func TestAbsorbMask(t *testing.T) {
	// A record literal with one borrowed child (variable) and one fresh
	// child (nested literal): the absorb mask marks only the fresh one.
	p := compileSrc(t, `
type inner = record of { a: int }
type outer = record of { x: inner, y: inner }
channel c: outer
process p {
    $v: inner = { 1};
    out( c, { v, { 2}});
    unlink( v);
}
process q { in( c, $o); unlink( o); }
`)
	proc := p.ProcByName("p")
	for _, in := range proc.Code {
		if in.Op == ir.NewRecord && in.B == 2 {
			if in.Val != 0b10 {
				t.Errorf("absorb mask = %b, want 10 (second child fresh)", in.Val)
			}
			return
		}
	}
	t.Fatal("outer record construction not found")
}

func TestPortPatternCompilation(t *testing.T) {
	p := compileSrc(t, `
const MAGIC = 9;
type r = record of { kind: int, ret: int, v: int }
channel c: r
process a {
    $last = 0;
    in( c, { MAGIC, @, $x});
    in( c, { last, _, $y});
    last = x + y;
}
process w { out( c, { 9, 0, 1}); }
`)
	proc := p.ProcByName("a")
	if len(proc.Ports) != 2 {
		t.Fatalf("ports = %d", len(proc.Ports))
	}
	p0 := proc.Ports[0].Pat
	if p0.Kind != ir.PatRecord ||
		p0.Elems[0].Kind != ir.PatConst || p0.Elems[0].Val != 9 ||
		p0.Elems[1].Kind != ir.PatSelf ||
		p0.Elems[2].Kind != ir.PatBind {
		t.Errorf("port 0 = %s", ir.FormatPat(p0))
	}
	p1 := proc.Ports[1].Pat
	if p1.Elems[0].Kind != ir.PatDynEq || p1.Elems[1].Kind != ir.PatAny {
		t.Errorf("port 1 = %s", ir.FormatPat(p1))
	}
}

func TestGuardsPrecomputedIntoTemps(t *testing.T) {
	p := compileSrc(t, `
channel a: int
channel b: int
process p {
    $n = 0;
    while (true) {
        alt {
            case( n < 4, in( a, $x)) { n = n + 1; }
            case( n > 0, out( b, n)) { n = n - 1; }
        }
    }
}
process q { out( a, 1); in( b, $v); }
`)
	proc := p.ProcByName("p")
	arms := proc.Alts[0].Arms
	if arms[0].GuardSlot < 0 || arms[1].GuardSlot < 0 {
		t.Errorf("guard slots not allocated: %+v", arms)
	}
	if arms[0].GuardSlot == arms[1].GuardSlot {
		t.Error("both guards share a slot")
	}
	// Guard temps are extra locals beyond the named variables.
	named := 0
	for _, n := range proc.LocalName {
		if n != "" {
			named++
		}
	}
	if proc.NumLocals <= named {
		t.Errorf("no temp slots: locals=%d named=%d", proc.NumLocals, named)
	}
}

func TestChannelCoverageComputed(t *testing.T) {
	p := compileSrc(t, `
type u = union of { a: int, b: int }
channel tagged: u
channel plain: int
process r1 { in( tagged, { a |> $x}); in( plain, $p); }
process r2 { in( tagged, { b |> $y}); }
process w { out( tagged, { a |> 1}); out( tagged, { b |> 2}); out( plain, 3); }
`)
	tagged := p.ChannelByName("tagged")
	plain := p.ChannelByName("plain")
	if tagged.AllPortsCover {
		t.Error("tag-dispatch channel marked fully covering")
	}
	if !plain.AllPortsCover {
		t.Error("bind-only channel not marked covering")
	}
}

func TestMaxStackIsSufficient(t *testing.T) {
	// Deeply nested expression: the static MaxStack must cover it (the C
	// backend sizes a static array from it).
	p := compileSrc(t, `
channel outC: int external reader
process p {
    $a = 1;
    out( outC, ((a + 2) * (a + 3)) + ((a + 4) * (a + 5)) + ((a + 6) * (a + 7)));
}
`)
	proc := p.ProcByName("p")
	if proc.MaxStack < 3 {
		t.Errorf("MaxStack = %d, suspiciously small", proc.MaxStack)
	}
	// And the disassembly must mention the sends and stack size.
	d := ir.Disasm(proc)
	if !strings.Contains(d, "maxstack") {
		t.Error("disassembly missing header")
	}
}

func TestLocalNamesPreserved(t *testing.T) {
	p := compileSrc(t, `
process p {
    $counter = 0;
    $flag = true;
    if (flag) { counter = counter + 1; }
}
`)
	proc := p.ProcByName("p")
	if proc.LocalName[0] != "counter" || proc.LocalName[1] != "flag" {
		t.Errorf("local names = %v", proc.LocalName)
	}
}

func TestIfaceCasesCompiled(t *testing.T) {
	p := compileSrc(t, `
type sT = record of { a: int, b: int }
type uT = union of { s: sT, t: int }
channel c: uT external writer
interface i( out c) {
    S( { s |> { $a, $b}}),
    T( { t |> $v}),
}
process p {
    while (true) {
        alt {
            case( in( c, { s |> { $x, $y}})) { skip; }
            case( in( c, { t |> $z})) { skip; }
        }
    }
}
`)
	ch := p.ChannelByName("c")
	if len(ch.Cases) != 2 {
		t.Fatalf("cases = %d", len(ch.Cases))
	}
	if ch.Cases[0].Name != "S" || len(ch.Cases[0].ParamTypes) != 2 {
		t.Errorf("case S = %+v", ch.Cases[0])
	}
	if ch.Cases[0].Pat.Kind != ir.PatUnion || ch.Cases[0].Pat.Tag != 0 {
		t.Errorf("case S pattern = %s", ir.FormatPat(ch.Cases[0].Pat))
	}
}
