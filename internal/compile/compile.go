// Package compile lowers a type-checked ESP program to the stack-machine
// IR executed by the VM, explored by the model checker, and emitted by the
// C and Promela back ends.
package compile

import (
	"fmt"

	"esplang/internal/ast"
	"esplang/internal/check"
	"esplang/internal/ir"
	"esplang/internal/token"
	"esplang/internal/types"
)

// Program lowers the checked program to IR. The info must come from a
// successful check of prog.
func Program(prog *ast.Program, info *check.Info) *ir.Program {
	out := &ir.Program{Universe: info.Universe}
	for _, ch := range info.Channels {
		c := &ir.Channel{
			ID:   ch.ID,
			Name: ch.Name,
			Elem: ch.Elem,
			Ext:  ir.ExtDir(ch.Ext),
		}
		if ch.Iface != nil {
			c.IfaceName = ch.Iface.Name
			for _, ic := range ch.Iface.Cases {
				pat, ptypes := compileIfacePat(ic.Pattern, info)
				c.Cases = append(c.Cases, ir.IfaceCase{Name: ic.Name, Pat: pat, ParamTypes: ptypes})
			}
		}
		out.Channels = append(out.Channels, c)
	}
	for _, pd := range info.Processes {
		pc := &procCompiler{info: info, prog: out, proc: &ir.Proc{ID: pd.ID, Name: pd.Name}}
		pc.compile(pd)
		out.Procs = append(out.Procs, pc.proc)
	}
	// Compute per-channel pattern coverage: used by the VM to decide when
	// a waiting receiver guarantees a match for a lazily evaluated alt
	// send arm (§6.1 allocation postponement).
	coverByChan := make(map[int]bool, len(out.Channels))
	seen := make(map[int]bool, len(out.Channels))
	for _, p := range out.Procs {
		for _, port := range p.Ports {
			cov := patCovers(port.Pat)
			if !seen[port.Chan] {
				coverByChan[port.Chan] = cov
				seen[port.Chan] = true
			} else {
				coverByChan[port.Chan] = coverByChan[port.Chan] && cov
			}
		}
	}
	for _, c := range out.Channels {
		c.AllPortsCover = seen[c.ID] && coverByChan[c.ID]
	}
	return out
}

// patCovers reports whether the pattern matches every value of its type.
func patCovers(p *ir.Pat) bool {
	switch p.Kind {
	case ir.PatAny, ir.PatBind:
		return true
	case ir.PatRecord:
		for _, e := range p.Elems {
			if !patCovers(e) {
				return false
			}
		}
		return true
	}
	return false
}

// compileIfacePat lowers an interface case pattern; bindings are numbered
// left to right as parameter slots.
func compileIfacePat(p ast.Expr, info *check.Info) (*ir.Pat, []*types.Type) {
	var ptypes []*types.Type
	var walk func(p ast.Expr) *ir.Pat
	walk = func(p ast.Expr) *ir.Pat {
		switch x := p.(type) {
		case *ast.Binding:
			slot := len(ptypes)
			ptypes = append(ptypes, info.Types[p])
			return &ir.Pat{Kind: ir.PatBind, Slot: slot}
		case *ast.Wildcard:
			return &ir.Pat{Kind: ir.PatAny}
		case *ast.IntLit:
			return &ir.Pat{Kind: ir.PatConst, Val: x.Value}
		case *ast.BoolLit:
			v := int64(0)
			if x.Value {
				v = 1
			}
			return &ir.Pat{Kind: ir.PatConst, Val: v}
		case *ast.RecordLit:
			pat := &ir.Pat{Kind: ir.PatRecord}
			for _, el := range x.Elems {
				pat.Elems = append(pat.Elems, walk(el))
			}
			return pat
		case *ast.UnionLit:
			t := info.Types[p]
			return &ir.Pat{Kind: ir.PatUnion, Tag: t.FieldIndex(x.Field.Name), Elems: []*ir.Pat{walk(x.Value)}}
		}
		return &ir.Pat{Kind: ir.PatAny}
	}
	root := walk(p)
	return root, ptypes
}

// ---------------------------------------------------------------------------
// Per-process compilation

type procCompiler struct {
	info *check.Info
	prog *ir.Program
	proc *ir.Proc

	stack    int     // current stack depth
	breakTos [][]int // pending break-jump pcs per enclosing loop
}

func (c *procCompiler) compile(pd *check.Process) {
	c.proc.NumLocals = len(pd.Vars)
	c.proc.LocalName = make([]string, len(pd.Vars))
	c.proc.LocalType = make([]*types.Type, len(pd.Vars))
	for i, v := range pd.Vars {
		c.proc.LocalName[i] = v.Name
		c.proc.LocalType[i] = v.Type
	}
	c.block(pd.Decl.Body)
	c.emit(ir.Instr{Op: ir.Halt, Pos: pd.Decl.Pos()})
}

// emit appends an instruction, tracking stack depth, and returns its pc.
func (c *procCompiler) emit(in ir.Instr) int {
	pc := len(c.proc.Code)
	c.proc.Code = append(c.proc.Code, in)
	c.stack += ir.StackEffect(in)
	if c.stack > c.proc.MaxStack {
		c.proc.MaxStack = c.stack
	}
	if c.stack < 0 {
		panic(fmt.Sprintf("compile: stack underflow at pc %d (%s) in process %s", pc, in.Op, c.proc.Name))
	}
	return pc
}

func (c *procCompiler) patch(pc int) {
	c.proc.Code[pc].A = len(c.proc.Code)
}

func (c *procCompiler) newTemp(name string) int {
	slot := c.proc.NumLocals
	c.proc.NumLocals++
	c.proc.LocalName = append(c.proc.LocalName, name)
	c.proc.LocalType = append(c.proc.LocalType, nil)
	return slot
}

func (c *procCompiler) addAssert(pos token.Pos, expr string) int {
	id := len(c.prog.Asserts)
	c.prog.Asserts = append(c.prog.Asserts, ir.AssertInfo{Pos: pos, Expr: expr})
	return id
}

// ---------------------------------------------------------------------------
// Statements

func (c *procCompiler) block(b *ast.Block) {
	for _, s := range b.Stmts {
		c.stmt(s)
	}
}

func (c *procCompiler) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.Block:
		c.block(x)
	case *ast.VarDecl:
		c.expr(x.Init)
		v := c.info.Defs[x.Name]
		c.emit(ir.Instr{Op: ir.StoreLocal, A: v.Slot, Pos: x.Pos()})
	case *ast.Assign:
		if ast.IsPattern(x.LHS) {
			c.expr(x.RHS)
			c.matchLocal(x.LHS)
			return
		}
		c.assign(x)
	case *ast.While:
		top := len(c.proc.Code)
		var exitJump = -1
		if x.Cond != nil {
			c.expr(x.Cond)
			exitJump = c.emit(ir.Instr{Op: ir.JumpIfFalse, Pos: x.Pos()})
		}
		c.breakTos = append(c.breakTos, nil)
		c.block(x.Body)
		c.emit(ir.Instr{Op: ir.Jump, A: top, Pos: x.Pos()})
		if exitJump >= 0 {
			c.patch(exitJump)
		}
		breaks := c.breakTos[len(c.breakTos)-1]
		c.breakTos = c.breakTos[:len(c.breakTos)-1]
		for _, pc := range breaks {
			c.patch(pc)
		}
	case *ast.If:
		c.expr(x.Cond)
		elseJump := c.emit(ir.Instr{Op: ir.JumpIfFalse, Pos: x.Pos()})
		c.block(x.Then)
		if x.Else != nil {
			endJump := c.emit(ir.Instr{Op: ir.Jump, Pos: x.Pos()})
			c.patch(elseJump)
			c.stmt(x.Else)
			c.patch(endJump)
		} else {
			c.patch(elseJump)
		}
	case *ast.Comm:
		c.comm(x)
	case *ast.Alt:
		c.altStmt(x)
	case *ast.Link:
		c.expr(x.X)
		c.emit(ir.Instr{Op: ir.Link, Pos: x.Pos()})
	case *ast.Unlink:
		c.expr(x.X)
		c.emit(ir.Instr{Op: ir.Unlink, Pos: x.Pos()})
	case *ast.Assert:
		c.expr(x.X)
		id := c.addAssert(x.Pos(), ast.PrintExpr(x.X))
		c.emit(ir.Instr{Op: ir.Assert, A: id, Pos: x.Pos()})
	case *ast.Skip:
		// no code
	case *ast.BreakStmt:
		pc := c.emit(ir.Instr{Op: ir.Jump, Pos: x.Pos()})
		c.breakTos[len(c.breakTos)-1] = append(c.breakTos[len(c.breakTos)-1], pc)
	}
}

func (c *procCompiler) assign(x *ast.Assign) {
	switch lhs := x.LHS.(type) {
	case *ast.Ident:
		c.expr(x.RHS)
		v := c.info.Uses[lhs]
		c.emit(ir.Instr{Op: ir.StoreLocal, A: v.Slot, Pos: x.Pos()})
	case *ast.Index:
		c.expr(lhs.X)
		c.expr(lhs.I)
		c.expr(x.RHS)
		c.emit(ir.Instr{Op: ir.SetIndex, Pos: x.Pos()})
	case *ast.FieldSel:
		c.expr(lhs.X)
		c.expr(x.RHS)
		t := c.info.Types[lhs.X]
		c.emit(ir.Instr{Op: ir.SetField, A: t.FieldIndex(lhs.Name.Name), Pos: x.Pos()})
	default:
		panic(fmt.Sprintf("compile: invalid assignment target %T", x.LHS))
	}
}

// matchLocal compiles an intra-process destructuring pattern match: the
// matched value is on the stack; tests become assertions, bindings become
// stores. Locals are borrowed, so no reference counts change.
func (c *procCompiler) matchLocal(p ast.Expr) {
	switch x := p.(type) {
	case *ast.Binding:
		v := c.info.Defs[x.Name]
		c.emit(ir.Instr{Op: ir.StoreLocal, A: v.Slot, Pos: p.Pos()})
	case *ast.Wildcard:
		c.emit(ir.Instr{Op: ir.Pop, Pos: p.Pos()})
	case *ast.IntLit:
		c.emit(ir.Instr{Op: ir.Const, Val: x.Value, Pos: p.Pos()})
		c.emit(ir.Instr{Op: ir.Eq, Pos: p.Pos()})
		id := c.addAssert(p.Pos(), "pattern match: "+ast.PrintExpr(p))
		c.emit(ir.Instr{Op: ir.Assert, A: id, Pos: p.Pos()})
	case *ast.BoolLit:
		v := int64(0)
		if x.Value {
			v = 1
		}
		c.emit(ir.Instr{Op: ir.Const, Val: v, Pos: p.Pos()})
		c.emit(ir.Instr{Op: ir.Eq, Pos: p.Pos()})
		id := c.addAssert(p.Pos(), "pattern match: "+ast.PrintExpr(p))
		c.emit(ir.Instr{Op: ir.Assert, A: id, Pos: p.Pos()})
	case *ast.Self:
		c.emit(ir.Instr{Op: ir.SelfID, Pos: p.Pos()})
		c.emit(ir.Instr{Op: ir.Eq, Pos: p.Pos()})
		id := c.addAssert(p.Pos(), "pattern match: @")
		c.emit(ir.Instr{Op: ir.Assert, A: id, Pos: p.Pos()})
	case *ast.Ident:
		c.expr(p) // equality test against variable/constant value
		c.emit(ir.Instr{Op: ir.Eq, Pos: p.Pos()})
		id := c.addAssert(p.Pos(), "pattern match: "+x.Name)
		c.emit(ir.Instr{Op: ir.Assert, A: id, Pos: p.Pos()})
	case *ast.RecordLit:
		for i, el := range x.Elems {
			last := i == len(x.Elems)-1
			if !last {
				c.emit(ir.Instr{Op: ir.Dup, Pos: p.Pos()})
			}
			c.emit(ir.Instr{Op: ir.GetField, A: i, Pos: el.Pos()})
			if !last {
				c.matchLocal(el)
				continue
			}
			c.matchLocal(el)
		}
		if len(x.Elems) == 0 {
			c.emit(ir.Instr{Op: ir.Pop, Pos: p.Pos()})
		}
	case *ast.UnionLit:
		t := c.info.Types[p]
		c.emit(ir.Instr{Op: ir.UnionGet, A: t.FieldIndex(x.Field.Name), Pos: p.Pos()})
		c.matchLocal(x.Value)
	default:
		panic(fmt.Sprintf("compile: invalid local pattern %T", p))
	}
}

// ---------------------------------------------------------------------------
// Communication

func (c *procCompiler) comm(x *ast.Comm) {
	ch := c.info.CommChan[x]
	if x.Dir == ast.Send {
		c.expr(x.Arg)
		flags := 0
		if isFreshTemp(x.Arg) {
			flags |= ir.FlagFreeAfter
		}
		c.emit(ir.Instr{Op: ir.Send, A: ch.ID, B: flags, Pos: x.Pos()})
		return
	}
	port := c.addPort(ch.ID, x.Arg)
	c.emit(ir.Instr{Op: ir.Recv, A: ch.ID, B: port, Pos: x.Pos()})
}

// addPort compiles a receive pattern into a runtime pattern and registers
// it as a port of this process.
func (c *procCompiler) addPort(chanID int, pat ast.Expr) int {
	idx := len(c.proc.Ports)
	c.proc.Ports = append(c.proc.Ports, ir.Port{Chan: chanID, Pat: c.compilePat(pat)})
	return idx
}

func (c *procCompiler) compilePat(p ast.Expr) *ir.Pat {
	switch x := p.(type) {
	case *ast.Binding:
		v := c.info.Defs[x.Name]
		return &ir.Pat{Kind: ir.PatBind, Slot: v.Slot}
	case *ast.Wildcard:
		return &ir.Pat{Kind: ir.PatAny}
	case *ast.IntLit:
		return &ir.Pat{Kind: ir.PatConst, Val: x.Value}
	case *ast.BoolLit:
		v := int64(0)
		if x.Value {
			v = 1
		}
		return &ir.Pat{Kind: ir.PatConst, Val: v}
	case *ast.Self:
		return &ir.Pat{Kind: ir.PatSelf}
	case *ast.Ident:
		if cv, ok := c.info.Consts[x.Name]; ok {
			return &ir.Pat{Kind: ir.PatConst, Val: cv}
		}
		v := c.info.Uses[x]
		return &ir.Pat{Kind: ir.PatDynEq, Slot: v.Slot}
	case *ast.RecordLit:
		pat := &ir.Pat{Kind: ir.PatRecord}
		for _, el := range x.Elems {
			pat.Elems = append(pat.Elems, c.compilePat(el))
		}
		return pat
	case *ast.UnionLit:
		t := c.info.Types[p]
		return &ir.Pat{
			Kind:  ir.PatUnion,
			Tag:   t.FieldIndex(x.Field.Name),
			Elems: []*ir.Pat{c.compilePat(x.Value)},
		}
	default:
		panic(fmt.Sprintf("compile: invalid channel pattern %T", p))
	}
}

func (c *procCompiler) altStmt(x *ast.Alt) {
	def := ir.AltDef{Pos: x.Pos()}
	// Precompute guards into temps.
	guardSlots := make([]int, len(x.Cases))
	for i, cs := range x.Cases {
		guardSlots[i] = -1
		if cs.Guard != nil {
			slot := c.newTemp("")
			c.expr(cs.Guard)
			c.emit(ir.Instr{Op: ir.StoreLocal, A: slot, Pos: cs.Guard.Pos()})
			guardSlots[i] = slot
		}
	}
	altIdx := len(c.proc.Alts)
	c.proc.Alts = append(c.proc.Alts, def) // reserve; fill arms below
	c.emit(ir.Instr{Op: ir.Alt, A: altIdx, Pos: x.Pos()})

	var endJumps []int
	arms := make([]ir.AltArm, len(x.Cases))
	for i, cs := range x.Cases {
		arm := ir.AltArm{GuardSlot: guardSlots[i], EvalPC: -1, Pos: cs.Comm.Pos()}
		ch := c.info.CommChan[cs.Comm]
		arm.Chan = ch.ID
		if cs.Comm.Dir == ast.Send {
			arm.IsSend = true
			arm.OutPat = litShape(cs.Comm.Arg, c.info)
			// §6.1: postpone the value computation (and its allocations)
			// until after the rendezvous commits.
			arm.EvalPC = len(c.proc.Code)
			c.expr(cs.Comm.Arg)
			flags := 0
			if isFreshTemp(cs.Comm.Arg) {
				flags |= ir.FlagFreeAfter
			}
			c.emit(ir.Instr{Op: ir.SendCommit, A: ch.ID, B: flags, Pos: cs.Comm.Pos()})
			arm.BodyPC = len(c.proc.Code)
		} else {
			arm.Port = c.addPort(ch.ID, cs.Comm.Arg)
			arm.BodyPC = len(c.proc.Code)
		}
		c.block(cs.Body)
		endJumps = append(endJumps, c.emit(ir.Instr{Op: ir.Jump, Pos: cs.TokPos}))
		arms[i] = arm
	}
	for _, pc := range endJumps {
		c.patch(pc)
	}
	c.proc.Alts[altIdx].Arms = arms
}

// ---------------------------------------------------------------------------
// Expressions

// litShape derives the statically known shape of an expression's value:
// literal scalars and union tags become tests, everything else is Any.
func litShape(e ast.Expr, info *check.Info) *ir.Pat {
	switch x := e.(type) {
	case *ast.IntLit:
		return &ir.Pat{Kind: ir.PatConst, Val: x.Value}
	case *ast.BoolLit:
		v := int64(0)
		if x.Value {
			v = 1
		}
		return &ir.Pat{Kind: ir.PatConst, Val: v}
	case *ast.RecordLit:
		p := &ir.Pat{Kind: ir.PatRecord}
		for _, el := range x.Elems {
			p.Elems = append(p.Elems, litShape(el, info))
		}
		return p
	case *ast.UnionLit:
		t := info.Types[e]
		return &ir.Pat{Kind: ir.PatUnion, Tag: t.FieldIndex(x.Field.Name),
			Elems: []*ir.Pat{litShape(x.Value, info)}}
	default:
		return &ir.Pat{Kind: ir.PatAny}
	}
}

// isFreshTemp reports whether evaluating e allocates a new object whose
// allocation reference the evaluation context must take over.
func isFreshTemp(e ast.Expr) bool {
	switch e.(type) {
	case *ast.RecordLit, *ast.UnionLit, *ast.ArrayLit, *ast.Cast:
		return true
	}
	return false
}

func (c *procCompiler) expr(e ast.Expr) {
	switch x := e.(type) {
	case *ast.IntLit:
		c.emit(ir.Instr{Op: ir.Const, Val: x.Value, Pos: e.Pos()})
	case *ast.BoolLit:
		v := int64(0)
		if x.Value {
			v = 1
		}
		c.emit(ir.Instr{Op: ir.Const, Val: v, Pos: e.Pos()})
	case *ast.Self:
		c.emit(ir.Instr{Op: ir.SelfID, Pos: e.Pos()})
	case *ast.Ident:
		if cv, ok := c.info.Consts[x.Name]; ok {
			c.emit(ir.Instr{Op: ir.Const, Val: cv, Pos: e.Pos()})
			return
		}
		v := c.info.Uses[x]
		c.emit(ir.Instr{Op: ir.LoadLocal, A: v.Slot, Pos: e.Pos()})
	case *ast.Unary:
		c.expr(x.X)
		if x.Op == token.NOT {
			c.emit(ir.Instr{Op: ir.Not, Pos: e.Pos()})
		} else {
			c.emit(ir.Instr{Op: ir.Neg, Pos: e.Pos()})
		}
	case *ast.Binary:
		c.binary(x)
	case *ast.Index:
		c.expr(x.X)
		c.expr(x.I)
		c.emit(ir.Instr{Op: ir.GetIndex, Pos: e.Pos()})
	case *ast.FieldSel:
		c.expr(x.X)
		t := c.info.Types[x.X]
		c.emit(ir.Instr{Op: ir.GetField, A: t.FieldIndex(x.Name.Name), Pos: e.Pos()})
	case *ast.RecordLit:
		t := c.info.Types[e]
		var absorb int64
		for i, el := range x.Elems {
			c.expr(el)
			if isFreshTemp(el) {
				absorb |= 1 << i
			}
		}
		c.emit(ir.Instr{Op: ir.NewRecord, A: t.ID(), B: len(x.Elems), Val: absorb, Pos: e.Pos()})
	case *ast.UnionLit:
		t := c.info.Types[e]
		c.expr(x.Value)
		var absorb int64
		if isFreshTemp(x.Value) {
			absorb = 1
		}
		c.emit(ir.Instr{Op: ir.NewUnion, A: t.ID(), B: t.FieldIndex(x.Field.Name), Val: absorb, Pos: e.Pos()})
	case *ast.ArrayLit:
		t := c.info.Types[e]
		c.expr(x.Count)
		c.expr(x.Init)
		c.emit(ir.Instr{Op: ir.NewArray, A: t.ID(), Pos: e.Pos()})
	case *ast.Cast:
		c.expr(x.X)
		t := c.info.Types[e]
		c.emit(ir.Instr{Op: ir.CastCopy, A: t.ID(), Pos: e.Pos()})
	default:
		panic(fmt.Sprintf("compile: invalid expression %T", e))
	}
}

func (c *procCompiler) binary(x *ast.Binary) {
	switch x.Op {
	case token.LAND:
		// x && y  =>  if !x then false else y
		c.expr(x.X)
		falseJump := c.emit(ir.Instr{Op: ir.JumpIfFalse, Pos: x.Pos()})
		c.expr(x.Y)
		endJump := c.emit(ir.Instr{Op: ir.Jump, Pos: x.Pos()})
		c.patch(falseJump)
		c.stack-- // the false path enters with the condition already popped
		c.emit(ir.Instr{Op: ir.Const, Val: 0, Pos: x.Pos()})
		c.patch(endJump)
		return
	case token.LOR:
		c.expr(x.X)
		trueJump := c.emit(ir.Instr{Op: ir.JumpIfTrue, Pos: x.Pos()})
		c.expr(x.Y)
		endJump := c.emit(ir.Instr{Op: ir.Jump, Pos: x.Pos()})
		c.patch(trueJump)
		c.stack-- // the true path enters with the condition already popped
		c.emit(ir.Instr{Op: ir.Const, Val: 1, Pos: x.Pos()})
		c.patch(endJump)
		return
	}
	c.expr(x.X)
	c.expr(x.Y)
	var op ir.Op
	switch x.Op {
	case token.ADD:
		op = ir.Add
	case token.SUB:
		op = ir.Sub
	case token.MUL:
		op = ir.Mul
	case token.QUO:
		op = ir.Div
	case token.REM:
		op = ir.Mod
	case token.EQL:
		op = ir.Eq
	case token.NEQ:
		op = ir.Ne
	case token.LSS:
		op = ir.Lt
	case token.LEQ:
		op = ir.Le
	case token.GTR:
		op = ir.Gt
	case token.GEQ:
		op = ir.Ge
	default:
		panic(fmt.Sprintf("compile: invalid binary op %s", x.Op))
	}
	c.emit(ir.Instr{Op: op, Pos: x.Pos()})
}
