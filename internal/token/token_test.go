package token

import "testing"

func TestLookupKeywords(t *testing.T) {
	cases := map[string]Kind{
		"process":   PROCESS,
		"channel":   CHANNEL,
		"type":      TYPE,
		"interface": INTERFACE,
		"const":     CONST,
		"record":    RECORD,
		"union":     UNION,
		"array":     ARRAY,
		"of":        OF,
		"in":        IN,
		"out":       OUT,
		"alt":       ALT,
		"case":      CASE,
		"while":     WHILE,
		"if":        IF,
		"else":      ELSE,
		"link":      LINK,
		"unlink":    UNLINK,
		"assert":    ASSERT,
		"skip":      SKIP,
		"true":      TRUE,
		"false":     FALSE,
		"break":     BREAK,
		"mutable":   MUTABLE,
		"immutable": IMMUTABLE,
		"external":  EXTERNAL,
		"reader":    READER,
		"writer":    WRITER,
		"int":       INTTYPE,
		"bool":      BOOLTYPE,
		"foo":       IDENT,
		"Process":   IDENT, // keywords are case-sensitive
	}
	for s, want := range cases {
		if got := Lookup(s); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestKeywordPredicates(t *testing.T) {
	if !PROCESS.IsKeyword() || IDENT.IsKeyword() || ADD.IsKeyword() {
		t.Error("IsKeyword misclassifies")
	}
	if !IDENT.IsLiteral() || !INT.IsLiteral() || ADD.IsLiteral() {
		t.Error("IsLiteral misclassifies")
	}
}

func TestPrecedenceOrdering(t *testing.T) {
	// || < && < comparisons < additive < multiplicative.
	chain := [][]Kind{
		{LOR},
		{LAND},
		{EQL, NEQ, LSS, LEQ, GTR, GEQ},
		{ADD, SUB},
		{MUL, QUO, REM},
	}
	for level := 1; level < len(chain); level++ {
		for _, lo := range chain[level-1] {
			for _, hi := range chain[level] {
				if !(lo.Precedence() < hi.Precedence()) {
					t.Errorf("%v (prec %d) should bind looser than %v (prec %d)",
						lo, lo.Precedence(), hi, hi.Precedence())
				}
			}
		}
	}
	if ASSIGN.Precedence() != 0 || LPAREN.Precedence() != 0 {
		t.Error("non-operators must have precedence 0")
	}
}

func TestStringRendering(t *testing.T) {
	if ADD.String() != "+" || PIPEGT.String() != "|>" || PROCESS.String() != "process" {
		t.Error("kind strings wrong")
	}
	tok := Token{Kind: IDENT, Lit: "foo"}
	if tok.String() != `IDENT("foo")` {
		t.Errorf("token string = %q", tok.String())
	}
	if (Token{Kind: ALT}).String() != "alt" {
		t.Errorf("keyword token string = %q", Token{Kind: ALT})
	}
}

func TestPos(t *testing.T) {
	p := Pos{Offset: 10, Line: 3, Column: 7}
	if p.String() != "3:7" {
		t.Errorf("pos = %q", p)
	}
	if (Pos{}).IsValid() {
		t.Error("zero pos should be invalid")
	}
	if (Pos{}).String() != "-" {
		t.Errorf("invalid pos renders %q", Pos{})
	}
}
