// Package token defines the lexical tokens of the ESP language and
// source positions used across the compiler.
//
// ESP (Event-driven State-machines Programming, PLDI 2001) has a C-style
// syntax with a few distinctive tokens: '$' introduces a variable binding,
// '#' marks mutable allocations and types, '|>' selects a union field in
// literals and patterns, '@' denotes the current process id, and '->' is
// used inside array allocation literals ("{ N -> init }").
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// The list of lexical token kinds.
const (
	// Special tokens.
	ILLEGAL Kind = iota
	EOF
	COMMENT

	// Literals and identifiers.
	IDENT // pageTable
	INT   // 12345

	// Operators and delimiters.
	ADD // +
	SUB // -
	MUL // *
	QUO // /
	REM // %

	LAND // &&
	LOR  // ||
	NOT  // !

	EQL // ==
	NEQ // !=
	LSS // <
	LEQ // <=
	GTR // >
	GEQ // >=

	ASSIGN // =
	DOLLAR // $
	HASH   // #
	AT     // @
	PIPEGT // |>
	ARROW  // ->

	LPAREN // (
	RPAREN // )
	LBRACE // {
	RBRACE // }
	LBRACK // [
	RBRACK // ]

	COMMA     // ,
	SEMICOLON // ;
	COLON     // :
	DOT       // .
	ELLIPSIS  // ...

	// Keywords.
	keywordBeg
	TYPE      // type
	CHANNEL   // channel
	PROCESS   // process
	INTERFACE // interface
	CONST     // const
	RECORD    // record
	UNION     // union
	ARRAY     // array
	OF        // of
	IN        // in
	OUT       // out
	ALT       // alt
	CASE      // case
	WHILE     // while
	IF        // if
	ELSE      // else
	LINK      // link
	UNLINK    // unlink
	ASSERT    // assert
	SKIP      // skip
	TRUE      // true
	FALSE     // false
	BREAK     // break
	MUTABLE   // mutable
	IMMUTABLE // immutable
	EXTERNAL  // external
	READER    // reader
	WRITER    // writer
	INTTYPE   // int
	BOOLTYPE  // bool
	keywordEnd
)

var names = map[Kind]string{
	ILLEGAL: "ILLEGAL",
	EOF:     "EOF",
	COMMENT: "COMMENT",

	IDENT: "IDENT",
	INT:   "INT",

	ADD: "+",
	SUB: "-",
	MUL: "*",
	QUO: "/",
	REM: "%",

	LAND: "&&",
	LOR:  "||",
	NOT:  "!",

	EQL: "==",
	NEQ: "!=",
	LSS: "<",
	LEQ: "<=",
	GTR: ">",
	GEQ: ">=",

	ASSIGN: "=",
	DOLLAR: "$",
	HASH:   "#",
	AT:     "@",
	PIPEGT: "|>",
	ARROW:  "->",

	LPAREN: "(",
	RPAREN: ")",
	LBRACE: "{",
	RBRACE: "}",
	LBRACK: "[",
	RBRACK: "]",

	COMMA:     ",",
	SEMICOLON: ";",
	COLON:     ":",
	DOT:       ".",
	ELLIPSIS:  "...",

	TYPE:      "type",
	CHANNEL:   "channel",
	PROCESS:   "process",
	INTERFACE: "interface",
	CONST:     "const",
	RECORD:    "record",
	UNION:     "union",
	ARRAY:     "array",
	OF:        "of",
	IN:        "in",
	OUT:       "out",
	ALT:       "alt",
	CASE:      "case",
	WHILE:     "while",
	IF:        "if",
	ELSE:      "else",
	LINK:      "link",
	UNLINK:    "unlink",
	ASSERT:    "assert",
	SKIP:      "skip",
	TRUE:      "true",
	FALSE:     "false",
	BREAK:     "break",
	MUTABLE:   "mutable",
	IMMUTABLE: "immutable",
	EXTERNAL:  "external",
	READER:    "reader",
	WRITER:    "writer",
	INTTYPE:   "int",
	BOOLTYPE:  "bool",
}

// String returns the textual representation of the token kind: the
// operator or keyword spelling where one exists, otherwise a symbolic name.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords map[string]Kind

func init() {
	keywords = make(map[string]Kind, keywordEnd-keywordBeg)
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		keywords[names[k]] = k
	}
}

// Lookup maps an identifier to its keyword kind, or IDENT if it is not a
// keyword.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// IsKeyword reports whether the kind is a reserved word.
func (k Kind) IsKeyword() bool { return keywordBeg < k && k < keywordEnd }

// IsLiteral reports whether the kind is an identifier or basic literal.
func (k Kind) IsLiteral() bool { return k == IDENT || k == INT || k == TRUE || k == FALSE }

// Precedence returns the binary-operator precedence of the kind, or 0 if
// the kind is not a binary operator. Higher binds tighter.
func (k Kind) Precedence() int {
	switch k {
	case LOR:
		return 1
	case LAND:
		return 2
	case EQL, NEQ, LSS, LEQ, GTR, GEQ:
		return 3
	case ADD, SUB:
		return 4
	case MUL, QUO, REM:
		return 5
	}
	return 0
}

// Pos is a source position: byte offset, 1-based line and column.
type Pos struct {
	Offset int
	Line   int
	Column int
}

// IsValid reports whether the position carries line information.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String formats the position as "line:col".
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Column)
}

// Token is a single lexical token with its source position and literal text.
type Token struct {
	Kind Kind
	Pos  Pos
	Lit  string // literal text for IDENT, INT, COMMENT, ILLEGAL
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch {
	case t.Kind == IDENT, t.Kind == INT, t.Kind == ILLEGAL:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}
