package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// fill records n synthetic events shaped like a real run — a process
// start, alternating rendezvous/allocs, and a matching stop — and
// publishes them (the writer-side Sync a Machine.Postmortem performs).
func fill(r *FlightRecorder, n int) {
	r.ProcStart(0, 0, "p")
	for i := 1; i < n-1; i++ {
		if i%2 == 0 {
			r.Rendezvous(int64(i), "c", 0, 1)
		} else {
			r.Alloc(int64(i), 0, i)
		}
	}
	r.ProcStop(int64(n-1), 0, "done")
	r.Sync()
}

func TestRecorderWraparound(t *testing.T) {
	r := NewFlightRecorder(8)
	if r.RingSize() != 8 {
		t.Fatalf("RingSize = %d, want 8", r.RingSize())
	}
	for i := 0; i < 100; i++ {
		r.Poll(int64(i), "ext")
	}
	r.Sync()
	if r.Total() != 100 {
		t.Errorf("Total = %d, want 100", r.Total())
	}
	if r.Dropped() != 92 {
		t.Errorf("Dropped = %d, want 92", r.Dropped())
	}
	evs := r.Snapshot(0)
	if len(evs) != 8 {
		t.Fatalf("Snapshot returned %d events, want 8 (ring size)", len(evs))
	}
	// The survivors are the newest 8, in order, with global sequence
	// numbers intact.
	for i, e := range evs {
		wantSeq := uint64(92 + i)
		if e.Seq != wantSeq || e.Ts != int64(92+i) || e.Kind != EvPoll {
			t.Errorf("event %d = seq %d ts %d kind %v, want seq %d ts %d poll",
				i, e.Seq, e.Ts, e.Kind, wantSeq, wantSeq)
		}
	}
	// last= caps the window from the new end.
	if got := r.Snapshot(3); len(got) != 3 || got[0].Seq != 97 {
		t.Errorf("Snapshot(3) = %d events starting at seq %d, want 3 from 97", len(got), got[0].Seq)
	}
}

func TestRecorderDumpRoundTrip(t *testing.T) {
	r := NewFlightRecorder(0)
	fill(r, 20)
	r.Fault(20, 0, "boom")
	r.Sync()

	var buf bytes.Buffer
	if err := r.WriteDump(&buf, 0); err != nil {
		t.Fatal(err)
	}
	n, err := ValidatePostmortem(buf.Bytes())
	if err != nil {
		t.Fatalf("ValidatePostmortem: %v\ndump:\n%s", err, buf.String())
	}
	if n != 21 {
		t.Errorf("validated %d events, want 21", n)
	}
	// The raw recorder doesn't know the machine's fault object (the VM's
	// Postmortem fills the header); the fault event itself is recorded.
	if !strings.Contains(buf.String(), "fault=1") || !strings.Contains(buf.String(), "\tfault\t") {
		t.Errorf("dump missing fault event:\n%s", buf.String())
	}
}

// TestRecorderDumpAfterWrap checks a dump whose window starts mid-stream
// still validates: sequence numbers open at recorded-shown and an
// unmatched stop is forgiven exactly because events were dropped.
func TestRecorderDumpAfterWrap(t *testing.T) {
	r := NewFlightRecorder(8)
	fill(r, 100) // start and most of the stream fall out of the ring
	var buf bytes.Buffer
	if err := r.WriteDump(&buf, 0); err != nil {
		t.Fatal(err)
	}
	n, err := ValidatePostmortem(buf.Bytes())
	if err != nil {
		t.Fatalf("ValidatePostmortem after wrap: %v\ndump:\n%s", err, buf.String())
	}
	if n != 8 {
		t.Errorf("validated %d events, want 8", n)
	}
}

func TestValidatePostmortemRejectsCorruption(t *testing.T) {
	r := NewFlightRecorder(0)
	fill(r, 10)
	var buf bytes.Buffer
	if err := r.WriteDump(&buf, 0); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	corrupt := []struct {
		name string
		mod  func(string) string
	}{
		{"bad version", func(s string) string {
			return strings.Replace(s, "recorder v1", "recorder v9", 1)
		}},
		{"shown exceeds recorded", func(s string) string {
			return strings.Replace(s, "recorded=10", "recorded=3", 1)
		}},
		{"non-monotonic ts", func(s string) string {
			return strings.Replace(s, "\n5\t5\t", "\n5\t1\t", 1)
		}},
		{"seq gap", func(s string) string {
			return strings.Replace(s, "\n5\t5\t", "\n7\t5\t", 1)
		}},
		{"kind count mismatch", func(s string) string {
			return strings.Replace(s, "alloc=4", "alloc=5", 1)
		}},
		{"unknown kind", func(s string) string {
			return strings.Replace(s, "\talloc\t", "\tallocx\t", 1)
		}},
		{"truncated events", func(s string) string {
			i := strings.LastIndexByte(strings.TrimRight(s, "\n"), '\n')
			return s[:i+1]
		}},
	}
	for _, c := range corrupt {
		bad := c.mod(good)
		if bad == good {
			t.Fatalf("%s: corruption did not change the dump", c.name)
		}
		if _, err := ValidatePostmortem([]byte(bad)); err == nil {
			t.Errorf("%s: corrupted dump validated\n%s", c.name, bad)
		}
	}
}

func TestValidatePostmortemRejectsSpanViolations(t *testing.T) {
	// A start with no stop by the end of the dump is an unclosed span.
	r := NewFlightRecorder(0)
	r.ProcStart(0, 0, "p")
	r.Sync()
	var buf bytes.Buffer
	if err := r.WriteDump(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidatePostmortem(buf.Bytes()); err == nil {
		t.Error("dump with unclosed span validated")
	}

	// A stop without a start is only legal when the ring dropped events;
	// with dropped=0 it must be rejected.
	r = NewFlightRecorder(0)
	r.ProcStop(0, 0, "done")
	r.Sync()
	buf.Reset()
	if err := r.WriteDump(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidatePostmortem(buf.Bytes()); err == nil {
		t.Error("dump with orphan stop and no drops validated")
	}

	// Double start without an intervening stop.
	r = NewFlightRecorder(0)
	r.ProcStart(0, 0, "p")
	r.ProcStart(1, 0, "p")
	r.ProcStop(2, 0, "done")
	r.ProcStop(3, 0, "done")
	r.Sync()
	buf.Reset()
	if err := r.WriteDump(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidatePostmortem(buf.Bytes()); err == nil {
		t.Error("dump with double start validated")
	}
}

func TestRecorderChargeLines(t *testing.T) {
	r := NewFlightRecorder(0)
	fill(r, 6)
	d := r.Dump(0)
	d.ChargeCycles[KindInstr] = 120
	d.ChargeCounts[KindInstr] = 60
	d.ChargeCycles[KindRendezvous] = 16
	d.ChargeCounts[KindRendezvous] = 2
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# charge instr cycles=120 count=60", "# charge rendezvous cycles=16 count=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	if _, err := ValidatePostmortem(buf.Bytes()); err != nil {
		t.Fatalf("dump with charge lines does not validate: %v", err)
	}
	// A duplicated charge class must be rejected.
	dup := strings.Replace(out, "# charge rendezvous cycles=16 count=2",
		"# charge instr cycles=1 count=1", 1)
	if _, err := ValidatePostmortem([]byte(dup)); err == nil {
		t.Error("duplicate charge class validated")
	}
}

func TestRecorderWriteChromeBalances(t *testing.T) {
	// A window that opens mid-run (wrapped ring) has stops without starts
	// and starts without stops; the Chrome rendering must still balance.
	r := NewFlightRecorder(4)
	r.ProcStart(0, 0, "a")
	r.Rendezvous(1, "c", 0, 1)
	r.ProcStop(2, 0, "done")   // start falls out of the window below
	r.ProcStart(3, 1, "b")     // never stopped
	r.Rendezvous(4, "c", 1, 0) // keeps the window busy
	r.Sync()
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf, 3); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("WriteChrome output invalid: %v\n%s", err, buf.String())
	}
	if n == 0 {
		t.Error("WriteChrome produced no events")
	}
}

func TestRecorderConcurrentRecording(t *testing.T) {
	// The recorder is shared with the telemetry server's /trace handler;
	// concurrent record and snapshot must be race-clean (run with -race).
	r := NewFlightRecorder(16)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			r.Rendezvous(int64(i), "c", 0, 1)
		}
		r.Sync() // writer-side publish, like Machine.Postmortem
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			var buf bytes.Buffer
			_ = r.WriteDump(&buf, 8)
		}
	}()
	wg.Wait()
	if r.Total() != 500 {
		t.Errorf("Total = %d, want 500", r.Total())
	}
}

func TestRecorderZeroAllocSteadyState(t *testing.T) {
	r := NewFlightRecorder(32)
	// Warm up so every Name string the ring retains is already in place.
	for i := 0; i < 64; i++ {
		r.Rendezvous(int64(i), "chan", 0, 1)
	}
	avg := testing.AllocsPerRun(500, func() {
		r.Rendezvous(1, "chan", 0, 1)
		r.Alloc(2, 0, 3)
		r.Free(3, 0, 2)
	})
	if avg != 0 {
		t.Errorf("steady-state recording allocates %.2f objects/op, want 0", avg)
	}
}

func TestEventLogRecordsEverything(t *testing.T) {
	l := NewEventLog()
	l.ProcStart(0, 0, "p")
	l.Rendezvous(1, "c", 0, 1)
	l.Fault(2, 0, "x")
	l.ProcStop(3, 0, "fault")
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	evs := l.Events()
	for i, want := range []EventKind{EvProcStart, EvRendezvous, EvFault, EvProcStop} {
		if evs[i].Kind != want {
			t.Errorf("event %d kind = %v, want %v", i, evs[i].Kind, want)
		}
		if evs[i].Seq != uint64(i) {
			t.Errorf("event %d seq = %d, want %d", i, evs[i].Seq, i)
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{Seq: 7, Ts: 42, Kind: EvRendezvous, Proc: 1, Arg: 2, Name: "reqC"}
	if got, want := e.String(), "7\t42\trendezvous\t1\t2\treqC"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestParseEventKind(t *testing.T) {
	for k := EventKind(0); k < NumEventKinds; k++ {
		got, ok := parseEventKind(k.String())
		if !ok || got != k {
			t.Errorf("parseEventKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := parseEventKind("bogus"); ok {
		t.Error("parseEventKind accepted bogus kind")
	}
}

func TestDumpHeaderShape(t *testing.T) {
	r := NewFlightRecorder(0)
	fill(r, 5)
	var buf bytes.Buffer
	if err := r.WriteDump(&buf, 0); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	if lines[0] != dumpVersion {
		t.Errorf("first line = %q, want %q", lines[0], dumpVersion)
	}
	want := fmt.Sprintf("# recorded=5 dropped=0 ring=%d shown=5", DefaultRingSize)
	if lines[1] != want {
		t.Errorf("totals line = %q, want %q", lines[1], want)
	}
	if lines[2] != "# fault: none" {
		t.Errorf("fault line = %q, want %q", lines[2], "# fault: none")
	}
}
