package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewMetrics()
	reg.Counter("test_total").Add(42)
	srv, err := NewServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	rec := NewFlightRecorder(0)
	rec.ProcStart(0, 0, "p")
	rec.Rendezvous(1, "c", 0, 1)
	rec.ProcStop(2, 0, "done")
	rec.Sync()
	srv.SetRecorder(rec)
	srv.SetStatus(func(w io.Writer) { fmt.Fprintln(w, "program: test.esp") })
	srv.SetProgress(func(w io.Writer) { fmt.Fprintln(w, "states 123") })

	code, body := get(t, base+"/metrics")
	if code != 200 || !strings.Contains(body, "test_total 42") {
		t.Errorf("/metrics = %d %q, want 200 with test_total 42", code, body)
	}

	code, body = get(t, base+"/metrics.json")
	if code != 200 || !strings.Contains(body, "test_total") {
		t.Errorf("/metrics.json = %d %q", code, body)
	}

	code, body = get(t, base+"/statusz")
	if code != 200 || !strings.Contains(body, "uptime:") || !strings.Contains(body, "program: test.esp") {
		t.Errorf("/statusz = %d %q", code, body)
	}

	code, body = get(t, base+"/progress")
	if code != 200 || !strings.Contains(body, "states 123") {
		t.Errorf("/progress = %d %q", code, body)
	}

	code, body = get(t, base+"/trace?last=2")
	if code != 200 {
		t.Fatalf("/trace = %d %q", code, body)
	}
	if n, err := ValidateChromeTrace([]byte(body)); err != nil || n == 0 {
		t.Errorf("/trace body invalid (%d events): %v\n%s", n, err, body)
	}

	if code, _ := get(t, base+"/trace?last=bogus"); code != 400 {
		t.Errorf("/trace?last=bogus = %d, want 400", code)
	}

	code, body = get(t, base+"/")
	if code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d %q", code, body)
	}
}

func TestServerWithoutSources(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	for _, path := range []string{"/metrics", "/progress", "/trace"} {
		if code, _ := get(t, base+path); code != 503 {
			t.Errorf("%s with no source = %d, want 503", path, code)
		}
	}
}
