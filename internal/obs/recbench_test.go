package obs

import "testing"

// BenchmarkRecordID measures the recorder's per-event hot path as the
// VM drives it: pre-interned name ID, packed proc/arg and kind/name
// words, staging-buffer store. benchrec measures the same thing
// end-to-end as VMThroughput/recorder overhead.
func BenchmarkRecordID(b *testing.B) {
	r := NewFlightRecorder(0)
	id := r.Intern("c")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(int64(i), PA(0, 1), NK(EvRendezvous, id))
	}
}
