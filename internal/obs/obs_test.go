package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestChromeTracerWritesValidTrace(t *testing.T) {
	tr := NewChromeTracer(1)
	tr.ProcStart(0, 0, "producer")
	tr.Rendezvous(3, "c", 0, 1)
	tr.Alloc(4, 0, 2)
	tr.ProcStop(10, 0, "blocked")
	tr.ProcStart(10, 1, "consumer")
	tr.Free(12, 1, 1)
	tr.ProcStop(20, 1, "halted")
	tr.Poll(25, "inC")
	tr.Fault(30, 1, "nil deref")
	tr.SetTrackName(100, "nic0 hostDMA")
	tr.Begin(100, "dma 64B", 30)
	tr.Instant(100, "pkt arrive", 40)
	tr.End(100, 50)

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	n, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("ValidateChromeTrace: %v\n%s", err, buf.String())
	}
	if n != tr.Len() {
		t.Fatalf("validated %d events, tracer recorded %d", n, tr.Len())
	}
	out := buf.String()
	for _, want := range []string{
		`"producer"`, `"consumer"`, `"rendezvous c"`, `"heap live objects"`,
		`"poll inC"`, `"FAULT"`, `"nic0 hostDMA"`, `"thread_name"`,
		`"traceEvents"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace JSON missing %s", want)
		}
	}
}

func TestChromeTracerScale(t *testing.T) {
	tr := NewChromeTracer(0.001) // ns clock → µs timestamps
	tr.ProcStart(2500, 0, "p")
	tr.ProcStop(4500, 0, "halted")
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Ph string  `json:"ph"`
			Ts float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	var got []float64
	for _, e := range f.TraceEvents {
		if e.Ph == "B" || e.Ph == "E" {
			got = append(got, e.Ts)
		}
	}
	if len(got) != 2 || got[0] != 2.5 || got[1] != 4.5 {
		t.Fatalf("scaled timestamps = %v, want [2.5 4.5]", got)
	}
}

func TestValidateChromeTraceRejectsBroken(t *testing.T) {
	cases := map[string]string{
		"not json":      `{"traceEvents": [}`,
		"no array":      `{"displayTimeUnit": "ms"}`,
		"missing phase": `{"traceEvents": [{"tid": 1}]}`,
		"unbalanced":    `{"traceEvents": [{"ph": "B", "tid": 1, "name": "x"}]}`,
		"stray end":     `{"traceEvents": [{"ph": "E", "tid": 1}]}`,
	}
	for name, data := range cases {
		if _, err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: ValidateChromeTrace accepted invalid trace", name)
		}
	}
	if n, err := ValidateChromeTrace([]byte(`{"traceEvents": []}`)); err != nil || n != 0 {
		t.Errorf("empty trace: got n=%d err=%v", n, err)
	}
}

func TestProfilerReportAndKinds(t *testing.T) {
	p := NewProfiler("probe.esp")
	// Line 5 is the hot rendezvous line, line 3 a cheap loop header.
	for i := 0; i < 10; i++ {
		p.Add(5, KindRendezvous, 8)
		p.Add(5, KindAlloc, 8)
		p.Add(5, KindInstr, 2)
		p.Add(3, KindInstr, 2)
	}
	p.Add(0, KindPoll, 1)

	if got := p.TotalCycles(); got != 10*(8+8+2+2)+1 {
		t.Fatalf("TotalCycles = %d", got)
	}
	line, cyc := p.Top()
	if line != 5 || cyc != 180 {
		t.Fatalf("Top = (%d, %d), want (5, 180)", line, cyc)
	}
	if d := p.lines[5].Dominant(); d != KindRendezvous && d != KindAlloc {
		t.Fatalf("Dominant(line 5) = %v", d)
	}

	src := "proc a\nproc b\nloop {\n  x = 1;\n  out( c, {n, n});\n}\n"
	rep := p.Report(src, 10)
	if !strings.Contains(rep, "probe.esp:5") || !strings.Contains(rep, "out( c, {n, n});") {
		t.Fatalf("report missing hot line:\n%s", rep)
	}
	if !strings.Contains(rep, "<runtime>") {
		t.Fatalf("report missing runtime bucket:\n%s", rep)
	}
	// Hottest line first.
	lines := strings.Split(rep, "\n")
	if len(lines) < 3 || !strings.Contains(lines[2], "probe.esp:5") {
		t.Fatalf("hot line not first in report:\n%s", rep)
	}

	kt := p.KindTable()
	for _, want := range []string{"rendezvous", "alloc", "instr", "poll"} {
		if !strings.Contains(kt, want) {
			t.Fatalf("kind table missing %s:\n%s", want, kt)
		}
	}
	cycles, counts := p.KindTotals()
	if cycles[KindRendezvous] != 80 || counts[KindRendezvous] != 10 {
		t.Fatalf("rendezvous totals = %d cycles / %d events", cycles[KindRendezvous], counts[KindRendezvous])
	}
}

func TestProfilerEmpty(t *testing.T) {
	p := NewProfiler("x.esp")
	if line, cyc := p.Top(); line != 0 || cyc != 0 {
		t.Fatalf("Top on empty profile = (%d, %d)", line, cyc)
	}
	if got := p.Report("", 5); !strings.Contains(got, "no cycles") {
		t.Fatalf("empty report = %q", got)
	}
}

func TestMetricsSnapshotRoundTrip(t *testing.T) {
	m := NewMetrics()
	m.Counter("rendezvous_total").Add(42)
	m.Counter("rendezvous{c}").Add(40)
	m.Counter("rendezvous{dataC}").Add(2)
	m.Gauge("frontier_depth").Set(17)
	h := m.Histogram("ready_queue_depth")
	for _, v := range []int64{0, 1, 1, 2, 3, 4, 9, 100} {
		h.Observe(v)
	}

	if h.Count() != 8 || h.Sum() != 120 {
		t.Fatalf("histogram count/sum = %d/%d", h.Count(), h.Sum())
	}
	if m := h.Mean(); m != 15 {
		t.Fatalf("histogram mean = %v", m)
	}

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s1, err := ParseSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Equal(m.Snapshot()) {
		t.Fatalf("snapshot round-trip mismatch:\n%s", buf.String())
	}
	if s1.Counters["rendezvous_total"] != 42 || s1.Gauges["frontier_depth"] != 17 {
		t.Fatalf("snapshot values wrong: %+v", s1)
	}
	if s1.Histograms["ready_queue_depth"].Count != 8 {
		t.Fatalf("snapshot histogram wrong: %+v", s1.Histograms)
	}

	// Re-encoding must be byte-identical (Go sorts JSON map keys).
	var buf2 bytes.Buffer
	enc := json.NewEncoder(&buf2)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s1); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatalf("re-encoded snapshot differs:\n%s\nvs\n%s", buf.String(), buf2.String())
	}
}

func TestMetricsPrometheus(t *testing.T) {
	m := NewMetrics()
	m.Counter("rendezvous{c}").Add(7)
	m.Counter("mc_states_total").Add(100)
	m.Gauge("mc_frontier").Set(5)
	m.Histogram("ready_queue_depth").Observe(3)

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE rendezvous counter",
		`rendezvous{chan="c"} 7`,
		"mc_states_total 100",
		"# TYPE mc_frontier gauge",
		"mc_frontier 5",
		"# TYPE ready_queue_depth histogram",
		`ready_queue_depth_bucket{le="4"} 1`,
		`ready_queue_depth_bucket{le="+Inf"} 1`,
		"ready_queue_depth_sum 3",
		"ready_queue_depth_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := map[int64]string{
		-5: "1", 0: "1", 1: "1", 2: "2", 3: "4", 4: "4", 5: "8", 8: "8", 9: "16",
		1 << 40: "1099511627776",
	}
	for v, want := range cases {
		if got := bucketLabel(bucketOf(v)); got != want {
			t.Errorf("bucketOf(%d) → label %s, want %s", v, got, want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindRendezvous.String() != "rendezvous" || Kind(200).String() != "kind?" {
		t.Fatal("Kind.String broken")
	}
	for k := Kind(0); k < NumKinds; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}
