package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// EventKind classifies one recorded execution event — exactly the seven
// Tracer callbacks, so a flight recorder can stand in for any tracer.
type EventKind uint8

// Recorded event kinds.
const (
	EvProcStart EventKind = iota
	EvProcStop
	EvRendezvous
	EvAlloc
	EvFree
	EvFault
	EvPoll
	NumEventKinds
)

var evKindNames = [NumEventKinds]string{
	EvProcStart:  "start",
	EvProcStop:   "stop",
	EvRendezvous: "rendezvous",
	EvAlloc:      "alloc",
	EvFree:       "free",
	EvFault:      "fault",
	EvPoll:       "poll",
}

func (k EventKind) String() string {
	if k < NumEventKinds {
		return evKindNames[k]
	}
	return "event?"
}

// parseEventKind is the inverse of EventKind.String.
func parseEventKind(s string) (EventKind, bool) {
	for k, n := range evKindNames {
		if n == s {
			return EventKind(k), true
		}
	}
	return 0, false
}

// Event is one recorded execution event. The field meaning varies by
// kind:
//
//	start       Proc = process id            Name = process name
//	stop        Proc = process id            Name = scheduling status
//	rendezvous  Proc = sender, Arg = receiver, Name = channel (-1 = external)
//	alloc/free  Proc = process id (-1 = none), Arg = live objects after
//	fault       Proc = process id (-1 = none), Name = fault message
//	poll        Name = channel
//
// Ts is the machine clock at the event: VM cycles unless a clock is
// installed, so in a postmortem it reads as "cycle".
type Event struct {
	Seq  uint64
	Ts   int64
	Kind EventKind
	Proc int
	Arg  int
	Name string
}

// String renders the event in the postmortem dump format: six
// tab-separated columns (seq, ts, kind, proc, arg, name), name last so a
// fault message may contain spaces.
func (e Event) String() string {
	return fmt.Sprintf("%d\t%d\t%s\t%d\t%d\t%s", e.Seq, e.Ts, e.Kind, e.Proc, e.Arg, e.Name)
}

// DefaultRingSize is the flight-recorder ring capacity when none is
// given: enough history for a useful postmortem, small enough to pin.
const DefaultRingSize = 256

// PostmortemEvents is the last-K window rendered into fault postmortems.
const PostmortemEvents = 64

// stageSize is the writer-local staging buffer: events are flushed into
// the shared ring (and become visible to concurrent snapshots) in
// batches of this many, so the recording hot path pays the ring mutex
// once per stageSize events instead of once per event.
const stageSize = 256

// rawEvent is the in-ring representation of one event. It is
// deliberately pointer-free — the name is an interned ID, not a string —
// so recording one costs three scalar stores with no GC write barrier,
// and a Sync flush is a plain memmove. proc/arg and kind/name are packed
// two to a word (PA, NK) to keep Record under the inlining budget.
type rawEvent struct {
	ts int64
	pa uint64 // PA(proc, arg)
	nk uint64 // NK(kind, name)
}

// PA packs a process ID and argument for Record.
func PA(proc, arg int32) uint64 {
	return uint64(uint32(proc))<<32 | uint64(uint32(arg))
}

// NK packs an event kind and interned name ID for Record.
func NK(k EventKind, name uint32) uint64 {
	return uint64(k)<<32 | uint64(name)
}

// FlightRecorder is a fixed-size ring buffer of execution events,
// implementing Tracer. Unlike ChromeTracer it never grows: the ring and
// staging buffer are allocated once, every record overwrites the oldest
// slot, and recording allocates nothing — cheap enough to leave
// attached to a production machine so that when a fault finally
// happens, the last events leading up to it are already in hand
// (WriteDump / WriteChrome).
//
// The recorder is single-writer, multi-reader: one goroutine records
// (the VM), while any number of goroutines snapshot (Snapshot, Dump,
// WriteChrome — the telemetry server's /trace). Records land in a
// writer-local staging buffer and flush to the mutex-guarded ring every
// stageSize events, so concurrent snapshots may lag the writer by up to
// stageSize events. The writer calls Sync (Machine.Postmortem does) to
// publish the tail before reading its own dump.
//
// Event names (channel names, process names, fault messages) are
// interned: Intern maps a string to a stable uint32 once, and the
// ...ID record methods take the ID, keeping strings — and their GC
// write barriers — out of the hot path entirely. The VM interns every
// name it can emit at SetRecorder time. The string-taking Tracer
// methods intern on each call (one map hit) and remain allocation-free
// for already-seen names.
type FlightRecorder struct {
	// Writer-local state: owned by the recording goroutine, untouched
	// by snapshots. seq is the next event's global sequence number (its
	// low bits index the stage), flushed is how much of seq has been
	// published to the ring, and ids is the writer's interning index
	// into names.
	stage   [stageSize]rawEvent
	seq     uint64
	flushed uint64
	ids     map[string]uint32

	mu    sync.Mutex
	ring  []rawEvent // power-of-two length; guarded by mu
	total uint64     // events flushed into the ring; guarded by mu
	names []string   // id → name; appended by Intern, read by snapshots
}

// NewFlightRecorder returns a recorder with the given ring capacity,
// rounded up to a power of two (DefaultRingSize when size <= 0).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultRingSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &FlightRecorder{
		ring:  make([]rawEvent, n),
		ids:   map[string]uint32{"": 0},
		names: []string{""},
	}
}

// Intern returns the stable ID for name, assigning one on first use.
// Like recording itself, only the recording goroutine may call it.
func (r *FlightRecorder) Intern(name string) uint32 {
	if id, ok := r.ids[name]; ok {
		return id
	}
	r.mu.Lock()
	id := uint32(len(r.names))
	r.names = append(r.names, name)
	r.mu.Unlock()
	r.ids[name] = id
	return id
}

// record appends one event to the staging buffer, flushing to the ring
// first when it is full. No allocation, no pointer stores: the rawEvent
// is built in place.
// Record appends one event, with proc/arg packed by PA and kind/name
// packed by NK. This is the recorder's hot path, kept small enough for
// the compiler to inline into the VM's trace sites: the steady-state
// cost is one compare and four scalar stores. The event's stage slot is
// its sequence number's low bits, so when the writer laps the stage
// (every stageSize events) Sync publishes the full batch before slot 0
// is overwritten.
func (r *FlightRecorder) Record(ts int64, pa, nk uint64) {
	n := uint(r.seq) & (stageSize - 1)
	if n == 0 {
		r.Sync() // no-op on the very first event, a full flush after
	}
	r.stage[n] = rawEvent{ts, pa, nk}
	r.seq++
}

// Sync publishes staged events into the shared ring. Only the recording
// goroutine may call it (Machine.Postmortem does, so writer-side dumps
// are always current); snapshots from other goroutines simply see the
// ring as of the last flush. Unflushed events never span a stage
// boundary — Record flushes when it laps — so the unflushed run is
// contiguous in the stage.
func (r *FlightRecorder) Sync() {
	s := r.seq
	if s == r.flushed {
		return
	}
	first := r.flushed
	lo := int(first & (stageSize - 1))
	src := r.stage[lo : lo+int(s-first)]
	if len(src) > len(r.ring) {
		// Stage bigger than the whole ring: only the tail survives.
		first += uint64(len(src) - len(r.ring))
		src = src[len(src)-len(r.ring):]
	}
	r.mu.Lock()
	// Consecutive sequence numbers land in consecutive ring slots, so
	// the flush is at most two contiguous copies (one wrap).
	i := int(first & uint64(len(r.ring)-1))
	n := copy(r.ring[i:], src)
	copy(r.ring, src[n:])
	r.total = s
	r.mu.Unlock()
	r.flushed = s
}

// FlightRecorder implements Tracer. These string-taking methods intern
// on every call (one map hit for an already-seen name); the VM bypasses
// them and calls Record with IDs it interned at SetRecorder time.
func (r *FlightRecorder) ProcStart(ts int64, proc int, name string) {
	r.Record(ts, PA(int32(proc), 0), NK(EvProcStart, r.Intern(name)))
}
func (r *FlightRecorder) ProcStop(ts int64, proc int, status string) {
	r.Record(ts, PA(int32(proc), 0), NK(EvProcStop, r.Intern(status)))
}
func (r *FlightRecorder) Rendezvous(ts int64, ch string, sender, receiver int) {
	r.Record(ts, PA(int32(sender), int32(receiver)), NK(EvRendezvous, r.Intern(ch)))
}
func (r *FlightRecorder) Alloc(ts int64, proc int, live int) {
	r.Record(ts, PA(int32(proc), int32(live)), NK(EvAlloc, 0))
}
func (r *FlightRecorder) Free(ts int64, proc int, live int) {
	r.Record(ts, PA(int32(proc), int32(live)), NK(EvFree, 0))
}
func (r *FlightRecorder) Fault(ts int64, proc int, msg string) {
	r.Record(ts, PA(int32(proc), 0), NK(EvFault, r.Intern(msg)))
}
func (r *FlightRecorder) Poll(ts int64, ch string) {
	r.Record(ts, PA(-1, 0), NK(EvPoll, r.Intern(ch)))
}

// Total returns the number of events ever recorded.
func (r *FlightRecorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many events have been overwritten by ring
// wraparound.
func (r *FlightRecorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped()
}

func (r *FlightRecorder) dropped() uint64 {
	if r.total > uint64(len(r.ring)) {
		return r.total - uint64(len(r.ring))
	}
	return 0
}

// RingSize returns the ring capacity.
func (r *FlightRecorder) RingSize() int { return len(r.ring) }

// Snapshot copies out the last `last` retained events in order (all
// retained events when last <= 0). Safe to call while the machine is
// recording.
func (r *FlightRecorder) Snapshot(last int) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked(last)
}

func (r *FlightRecorder) snapshotLocked(last int) []Event {
	n := len(r.ring)
	if r.total < uint64(n) {
		n = int(r.total)
	}
	if last > 0 && last < n {
		n = last
	}
	out := make([]Event, n)
	mask := uint64(len(r.ring) - 1)
	for i := 0; i < n; i++ {
		seq := r.total - uint64(n) + uint64(i)
		e := &r.ring[seq&mask]
		out[i] = Event{
			Seq:  seq,
			Ts:   e.ts,
			Kind: EventKind(e.nk >> 32),
			Proc: int(int32(uint32(e.pa >> 32))),
			Arg:  int(int32(uint32(e.pa))),
			Name: r.names[uint32(e.nk)],
		}
	}
	return out
}

// dumpVersion is the first line of every flight-recorder dump; bump it
// when the format changes.
const dumpVersion = "# esp flight recorder v1"

// Dump is one rendered flight-recorder postmortem: the event window plus
// the header facts Write emits and ValidatePostmortem checks. The charge
// table attributes the run's cycle meter to CostModel classes; the VM
// fills it from Stats × CostModel (an exact decomposition, identical
// across engines), so a plain recorder dump leaves it zero and the
// charge lines are simply absent.
type Dump struct {
	Events         []Event
	Total, Dropped uint64
	Ring           int
	Fault          string // the machine's fault rendering; "" = clean run
	ChargeCycles   [NumKinds]int64
	ChargeCounts   [NumKinds]int64
}

// Dump snapshots the last `last` retained events (all when last <= 0)
// with the recorder's totals, ready for Write.
func (r *FlightRecorder) Dump(last int) *Dump {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Dump{
		Events:  r.snapshotLocked(last),
		Total:   r.total,
		Dropped: r.dropped(),
		Ring:    len(r.ring),
	}
}

// Write renders the dump in the text postmortem format: a commented
// header (version, totals, the fault if any, per-kind event counts of
// the shown window, per-class cycle charges), then one tab-separated
// line per event. ValidatePostmortem checks the result; obscheck
// -postmortem exposes that check.
func (d *Dump) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, dumpVersion)
	fmt.Fprintf(bw, "# recorded=%d dropped=%d ring=%d shown=%d\n", d.Total, d.Dropped, d.Ring, len(d.Events))
	fault := d.Fault
	if fault == "" {
		fault = "none"
	}
	fmt.Fprintf(bw, "# fault: %s\n", fault)
	var kinds [NumEventKinds]int
	for _, e := range d.Events {
		if e.Kind < NumEventKinds {
			kinds[e.Kind]++
		}
	}
	fmt.Fprint(bw, "# kinds")
	for k := EventKind(0); k < NumEventKinds; k++ {
		fmt.Fprintf(bw, " %s=%d", k, kinds[k])
	}
	fmt.Fprintln(bw)
	for k := Kind(0); k < NumKinds; k++ {
		if d.ChargeCounts[k] != 0 {
			fmt.Fprintf(bw, "# charge %s cycles=%d count=%d\n", k, d.ChargeCycles[k], d.ChargeCounts[k])
		}
	}
	for _, e := range d.Events {
		fmt.Fprintln(bw, e.String())
	}
	return bw.Flush()
}

// WriteDump renders the last `last` retained events (all when last <= 0)
// as the text postmortem format, with no fault and no charge table — the
// plain-recorder convenience over Dump().Write. The VM's
// Machine.Postmortem is the full-fat path.
func (r *FlightRecorder) WriteDump(w io.Writer, last int) error {
	return r.Dump(last).Write(w)
}

// WriteChrome renders the last `last` retained events (all when last <= 0)
// as Chrome trace-event JSON, the same format ChromeTracer writes and
// obscheck -trace validates. Spans cut by the ring window are repaired:
// a stop whose start was overwritten gets a synthetic start at the
// window's first timestamp, and a span still open at the window's end is
// closed at the last timestamp — so live snapshots from a running
// machine still balance.
func (r *FlightRecorder) WriteChrome(w io.Writer, last int) error {
	evs := r.Snapshot(last)
	tr := NewChromeTracer(1)
	depth := map[int]int{}
	for _, e := range evs {
		switch e.Kind {
		case EvProcStart:
			tr.ProcStart(e.Ts, e.Proc, e.Name)
			depth[e.Proc]++
		case EvProcStop:
			if depth[e.Proc] == 0 {
				// The matching start fell off the ring; open the span at
				// the window boundary so B/E still balance.
				tr.ProcStart(evs[0].Ts, e.Proc, fmt.Sprintf("proc%d", e.Proc))
				depth[e.Proc]++
			}
			tr.ProcStop(e.Ts, e.Proc, e.Name)
			depth[e.Proc]--
		case EvRendezvous:
			tr.Rendezvous(e.Ts, e.Name, e.Proc, e.Arg)
		case EvAlloc:
			tr.Alloc(e.Ts, e.Proc, e.Arg)
		case EvFree:
			tr.Free(e.Ts, e.Proc, e.Arg)
		case EvFault:
			tr.Fault(e.Ts, e.Proc, e.Name)
		case EvPoll:
			tr.Poll(e.Ts, e.Name)
		}
	}
	if n := len(evs); n > 0 {
		end := evs[n-1].Ts
		for proc, d := range depth {
			for ; d > 0; d-- {
				tr.ProcStop(end, proc, "(snapshot)")
			}
		}
	}
	return tr.Write(w)
}

// EventLog is an unbounded Tracer that retains every event — the offline
// sibling of FlightRecorder, for harnesses (the differential fuzzer)
// that compare whole event streams with DiffTraces. Not safe for
// concurrent use, like ChromeTracer.
type EventLog struct {
	events []Event
}

// NewEventLog returns an empty log.
func NewEventLog() *EventLog { return &EventLog{} }

func (l *EventLog) add(ts int64, k EventKind, proc, arg int, name string) {
	l.events = append(l.events, Event{Seq: uint64(len(l.events)), Ts: ts, Kind: k, Proc: proc, Arg: arg, Name: name})
}

// EventLog implements Tracer.
func (l *EventLog) ProcStart(ts int64, proc int, name string) { l.add(ts, EvProcStart, proc, 0, name) }
func (l *EventLog) ProcStop(ts int64, proc int, status string) {
	l.add(ts, EvProcStop, proc, 0, status)
}
func (l *EventLog) Rendezvous(ts int64, ch string, sender, receiver int) {
	l.add(ts, EvRendezvous, sender, receiver, ch)
}
func (l *EventLog) Alloc(ts int64, proc int, live int) { l.add(ts, EvAlloc, proc, live, "") }
func (l *EventLog) Free(ts int64, proc int, live int)  { l.add(ts, EvFree, proc, live, "") }
func (l *EventLog) Fault(ts int64, proc int, msg string) {
	l.add(ts, EvFault, proc, 0, msg)
}
func (l *EventLog) Poll(ts int64, ch string) { l.add(ts, EvPoll, -1, 0, ch) }

// Events returns the recorded stream (not a copy).
func (l *EventLog) Events() []Event { return l.events }

// Len returns the number of recorded events.
func (l *EventLog) Len() int { return len(l.events) }

// ValidatePostmortem parses data as a WriteDump flight-recorder dump and
// checks its structural invariants:
//
//   - version header, totals line, fault line, per-kind count line;
//   - sequence numbers consecutive from recorded-shown;
//   - timestamps (cycles) monotonically nondecreasing;
//   - every event kind known, and the per-kind counts in the header
//     matching the events actually present;
//   - charge lines naming valid charge classes, at most once each;
//   - start/stop spans balanced per process — a stop without a start is
//     tolerated only when ring wraparound dropped the prefix, and every
//     span must be closed by the end of the dump.
//
// It returns the number of event lines.
func ValidatePostmortem(data []byte) (int, error) {
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return 0, fmt.Errorf("empty dump")
	}
	if sc.Text() != dumpVersion {
		return 0, fmt.Errorf("bad version line %q (want %q)", sc.Text(), dumpVersion)
	}
	if !sc.Scan() {
		return 0, fmt.Errorf("missing totals line")
	}
	var recorded, dropped, ring, shown uint64
	if _, err := fmt.Sscanf(sc.Text(), "# recorded=%d dropped=%d ring=%d shown=%d", &recorded, &dropped, &ring, &shown); err != nil {
		return 0, fmt.Errorf("bad totals line %q: %v", sc.Text(), err)
	}
	if dropped > recorded {
		return 0, fmt.Errorf("dropped=%d exceeds recorded=%d", dropped, recorded)
	}
	if shown > ring || shown > recorded {
		return 0, fmt.Errorf("shown=%d exceeds ring=%d or recorded=%d", shown, ring, recorded)
	}
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), "# fault: ") {
		return 0, fmt.Errorf("missing fault line")
	}
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), "# kinds ") {
		return 0, fmt.Errorf("missing kinds line")
	}
	wantKinds := [NumEventKinds]int{}
	for _, f := range strings.Fields(sc.Text())[2:] {
		name, val, ok := strings.Cut(f, "=")
		if !ok {
			return 0, fmt.Errorf("bad kinds field %q", f)
		}
		k, ok := parseEventKind(name)
		if !ok {
			return 0, fmt.Errorf("kinds line names unknown event kind %q", name)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("bad kind count %q", f)
		}
		wantKinds[k] = n
	}

	type span struct{ running, sawStart bool }
	procs := map[int]*span{}
	gotKinds := [NumEventKinds]int{}
	chargeSeen := map[string]bool{}
	events := 0
	var prevTs int64
	nextSeq := recorded - shown
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# charge ") {
			if events > 0 {
				return 0, fmt.Errorf("charge line after first event: %q", line)
			}
			var kname string
			var cycles, count int64
			if _, err := fmt.Sscanf(line, "# charge %s cycles=%d count=%d", &kname, &cycles, &count); err != nil {
				return 0, fmt.Errorf("bad charge line %q: %v", line, err)
			}
			valid := false
			for k := Kind(0); k < NumKinds; k++ {
				if k.String() == kname {
					valid = true
				}
			}
			if !valid {
				return 0, fmt.Errorf("charge line names unknown charge class %q", kname)
			}
			if chargeSeen[kname] {
				return 0, fmt.Errorf("duplicate charge line for %q", kname)
			}
			chargeSeen[kname] = true
			if cycles < 0 || count <= 0 {
				return 0, fmt.Errorf("bad charge values in %q", line)
			}
			continue
		}
		parts := strings.SplitN(line, "\t", 6)
		if len(parts) != 6 {
			return 0, fmt.Errorf("event line %d has %d columns, want 6: %q", events, len(parts), line)
		}
		seq, err := strconv.ParseUint(parts[0], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("event line %d: bad seq %q", events, parts[0])
		}
		if seq != nextSeq {
			return 0, fmt.Errorf("event line %d: seq %d, want %d (consecutive from recorded-shown)", events, seq, nextSeq)
		}
		nextSeq++
		ts, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("event line %d: bad timestamp %q", events, parts[1])
		}
		if events > 0 && ts < prevTs {
			return 0, fmt.Errorf("event line %d: cycle %d goes backwards (previous %d)", events, ts, prevTs)
		}
		prevTs = ts
		k, ok := parseEventKind(parts[2])
		if !ok {
			return 0, fmt.Errorf("event line %d: unknown kind %q", events, parts[2])
		}
		gotKinds[k]++
		proc, err := strconv.Atoi(parts[3])
		if err != nil {
			return 0, fmt.Errorf("event line %d: bad proc %q", events, parts[3])
		}
		if _, err := strconv.Atoi(parts[4]); err != nil {
			return 0, fmt.Errorf("event line %d: bad arg %q", events, parts[4])
		}
		switch k {
		case EvProcStart:
			s := procs[proc]
			if s == nil {
				s = &span{}
				procs[proc] = s
			}
			if s.running {
				return 0, fmt.Errorf("event line %d: process %d started twice without a stop", events, proc)
			}
			s.running, s.sawStart = true, true
		case EvProcStop:
			s := procs[proc]
			if s == nil {
				s = &span{}
				procs[proc] = s
			}
			switch {
			case s.running:
				s.running = false
			case !s.sawStart && dropped > 0:
				// The start fell off the ring before the window; the stop
				// closes a pre-window span.
				s.sawStart = true
			default:
				return 0, fmt.Errorf("event line %d: stop for process %d without a start", events, proc)
			}
		}
		events++
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if uint64(events) != shown {
		return 0, fmt.Errorf("dump has %d event lines but header says shown=%d", events, shown)
	}
	for proc, s := range procs {
		if s.running {
			return 0, fmt.Errorf("process %d has an unclosed span at end of dump", proc)
		}
	}
	for k := EventKind(0); k < NumEventKinds; k++ {
		if gotKinds[k] != wantKinds[k] {
			return 0, fmt.Errorf("kind %s: header says %d events, dump has %d", k, wantKinds[k], gotKinds[k])
		}
	}
	return events, nil
}
