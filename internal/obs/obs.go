// Package obs is the observability layer of the ESP runtime: execution
// tracing, cycle profiling, and metrics for the virtual machine, the
// simulated NIC testbed, and the model checker.
//
// The paper's whole evaluation (§6.1–§6.2) rests on knowing where
// firmware cycles go — context switches, rendezvous, reference counting —
// so every execution layer of this repository reports into this package:
//
//   - the VM calls a Tracer on every context switch, rendezvous,
//     allocation, free, fault, and external poll (nil-check-only overhead
//     when tracing is off);
//   - ChromeTracer renders those events as Chrome trace-event JSON
//     (Perfetto / chrome://tracing compatible), one track per ESP process
//     plus hardware tracks for the simulated NIC's DMA engines;
//   - Profiler attributes CostModel cycle charges to source lines,
//     producing the flat hot-line profile and the per-event breakdown
//     table of §6.2;
//   - Metrics is a counters/gauges/histograms registry with JSON and
//     Prometheus text snapshot export, fed by the VM, the sim kernel, and
//     the model checker's periodic progress samples.
//
// Timestamps are int64 and unit-agnostic: the VM uses its cycle counter
// unless a clock is installed; the NIC testbed installs the sim kernel's
// nanosecond clock so firmware activity lines up with DMA spans.
package obs

// Kind classifies one costed runtime event — exactly the charge classes
// of the VM's CostModel, so a profile decomposes the cycle meter without
// remainder.
type Kind uint8

// Event kinds (one per CostModel charge class).
const (
	KindInstr Kind = iota
	KindCtxSwitch
	KindRendezvous
	KindAlloc
	KindRefOp
	KindPattern
	KindMaskCheck
	KindQueueOp
	KindPoll
	KindDeepCopy
	NumKinds
)

var kindNames = [NumKinds]string{
	KindInstr:      "instr",
	KindCtxSwitch:  "ctxswitch",
	KindRendezvous: "rendezvous",
	KindAlloc:      "alloc",
	KindRefOp:      "refop",
	KindPattern:    "pattern",
	KindMaskCheck:  "maskcheck",
	KindQueueOp:    "queueop",
	KindPoll:       "poll",
	KindDeepCopy:   "deepcopy",
}

func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return "kind?"
}

// Tracer receives the VM's execution events. Implementations must be
// cheap: the VM calls these from its hot path whenever a tracer is
// installed. A nil Tracer field on the machine is the off switch — the
// only overhead then is one nil check per event site.
//
// Timestamps come from the machine's clock: the cycle counter by
// default, the sim kernel's nanosecond clock when a NIC testbed is
// attached.
type Tracer interface {
	// ProcStart marks a context switch to proc: it begins running.
	ProcStart(ts int64, proc int, name string)
	// ProcStop marks proc leaving the CPU (blocked, halted, or faulted).
	ProcStop(ts int64, proc int, status string)
	// Rendezvous marks one completed message transfer on the named
	// channel. sender/receiver are process ids; -1 means the external
	// environment side of an external channel.
	Rendezvous(ts int64, ch string, sender, receiver int)
	// Alloc marks one heap allocation; live is the live-object count
	// after it. proc is -1 when the allocation has no process context
	// (external bindings).
	Alloc(ts int64, proc int, live int)
	// Free marks one heap free; live is the live-object count after it.
	Free(ts int64, proc int, live int)
	// Fault marks a runtime fault.
	Fault(ts int64, proc int, msg string)
	// Poll marks one readiness poll of an external channel binding.
	Poll(ts int64, ch string)
}

// SpanEmitter is the generic track/span surface of a trace sink, used by
// non-VM layers (the simulated NIC's DMA engines and packet events).
// ChromeTracer implements it; tracks are identified by a caller-chosen
// tid that must not collide with the VM's process ids.
type SpanEmitter interface {
	// SetTrackName labels a track.
	SetTrackName(tid int64, name string)
	// Begin opens a duration span on the track.
	Begin(tid int64, name string, ts int64)
	// End closes the innermost open span on the track.
	End(tid int64, ts int64)
	// Instant records a point event on the track.
	Instant(tid int64, name string, ts int64)
}
