package obs

import (
	"strings"
	"testing"
)

func evs(kinds ...EventKind) []Event {
	out := make([]Event, len(kinds))
	for i, k := range kinds {
		out[i] = Event{Seq: uint64(i), Ts: int64(i), Kind: k, Proc: 0, Name: "c"}
	}
	return out
}

func TestDiffTraces(t *testing.T) {
	a := evs(EvProcStart, EvRendezvous, EvProcStop)
	if got := DiffTraces(a, a); got != -1 {
		t.Errorf("identical traces: DiffTraces = %d, want -1", got)
	}

	b := evs(EvProcStart, EvAlloc, EvProcStop)
	if got := DiffTraces(a, b); got != 1 {
		t.Errorf("kind mismatch at 1: DiffTraces = %d, want 1", got)
	}

	// A strict prefix diverges at the shorter length.
	if got := DiffTraces(a, a[:2]); got != 2 {
		t.Errorf("prefix: DiffTraces = %d, want 2", got)
	}
	if got := DiffTraces(a[:2], a); got != 2 {
		t.Errorf("prefix (swapped): DiffTraces = %d, want 2", got)
	}

	// Same kind, different channel.
	c := evs(EvProcStart, EvRendezvous, EvProcStop)
	c[1].Name = "other"
	if got := DiffTraces(a, c); got != 1 {
		t.Errorf("channel mismatch: DiffTraces = %d, want 1", got)
	}

	if got := DiffTraces(nil, nil); got != -1 {
		t.Errorf("empty traces: DiffTraces = %d, want -1", got)
	}
}

func TestFormatDivergence(t *testing.T) {
	a := evs(EvProcStart, EvRendezvous, EvProcStop)
	b := evs(EvProcStart, EvAlloc, EvProcStop)
	out := FormatDivergence("fused", a, "baseline", b)
	// The report names the first divergent event's coordinates: cycle,
	// kind, proc, and channel.
	for _, want := range []string{
		"first divergent event at index 1",
		"cycle=1", "kind=rendezvous", "proc=0", "chan=c",
		"fused:", "baseline:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("divergence report missing %q:\n%s", want, out)
		}
	}

	if got := FormatDivergence("a", a, "b", a); got != "" {
		t.Errorf("identical traces: FormatDivergence = %q, want empty", got)
	}

	// One stream a strict prefix of the other: the report says so.
	out = FormatDivergence("long", a, "short", a[:1])
	if !strings.Contains(out, "stream ends after 1 events") {
		t.Errorf("prefix divergence report missing stream-end note:\n%s", out)
	}
}
