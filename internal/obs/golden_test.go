package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestChromeTraceGolden locks down the exact JSON the exporter emits for
// a fixed event script. Perfetto and chrome://tracing are external
// consumers, so the encoding (phase letters, scope letters, counter
// series, metadata records, field order) must not drift silently.
// Regenerate with: go test ./internal/obs -run Golden -update
func TestChromeTraceGolden(t *testing.T) {
	tr := NewChromeTracer(1)
	tr.ProcStart(10, 0, "producer")
	tr.Rendezvous(14, "c", 0, 1)
	tr.Alloc(16, 0, 1)
	tr.ProcStop(20, 0, "blocked(send)")
	tr.ProcStart(20, 1, "consumer")
	tr.Free(24, 1, 0)
	tr.Poll(26, "inC")
	tr.Fault(28, 1, "assertion failed")
	tr.ProcStop(30, 1, "faulted")
	tr.SetTrackName(100, "nic0 hostDMA")
	tr.Begin(100, "hostDMA 4096B", 12)
	tr.Instant(100, "lead 64B ready", 18)
	tr.End(100, 40)

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("golden trace invalid: %v", err)
	}

	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output drifted from golden file\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
