package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// ChromeTracer records events in the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// the JSON that chrome://tracing and Perfetto load directly. Each ESP
// process becomes a named thread track; rendezvous, allocations, faults,
// and polls are instant events; the live-object count is a counter
// series; NIC DMA engines add hardware tracks through the SpanEmitter
// methods.
//
// It implements both Tracer (VM events) and SpanEmitter (generic spans).
// It is not safe for concurrent use; the VM and the sim kernel are
// single-threaded, which is the only place it is installed.
type ChromeTracer struct {
	// Scale converts clock timestamps to the format's microseconds
	// (events are emitted at ts×Scale µs). Leave 1 for the VM cycle
	// clock (1 cycle renders as 1 µs); use 0.001 for the sim kernel's
	// nanosecond clock.
	Scale float64

	events []chromeEvent
	named  map[int64]bool
}

// NewChromeTracer returns a tracer using the given timestamp scale
// (µs per clock unit); 0 means 1.
func NewChromeTracer(scale float64) *ChromeTracer {
	if scale == 0 {
		scale = 1
	}
	return &ChromeTracer{Scale: scale, named: make(map[int64]bool)}
}

// chromeEvent is one trace-event record.
type chromeEvent struct {
	Name string         `json:"name,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Ts   float64        `json:"ts"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

func (t *ChromeTracer) ts(v int64) float64 { return float64(v) * t.Scale }

func (t *ChromeTracer) add(e chromeEvent) { t.events = append(t.events, e) }

// Len returns the number of recorded events.
func (t *ChromeTracer) Len() int { return len(t.events) }

// ensureName emits the thread_name metadata record once per track.
func (t *ChromeTracer) ensureName(tid int64, name string) {
	if t.named == nil {
		t.named = make(map[int64]bool)
	}
	if t.named[tid] {
		return
	}
	t.named[tid] = true
	t.add(chromeEvent{Name: "thread_name", Ph: "M", Tid: tid,
		Args: map[string]any{"name": name}})
}

// --- Tracer (VM events) ---

// ProcStart implements Tracer.
func (t *ChromeTracer) ProcStart(ts int64, proc int, name string) {
	tid := int64(proc)
	t.ensureName(tid, name)
	t.add(chromeEvent{Name: name, Ph: "B", Tid: tid, Ts: t.ts(ts)})
}

// ProcStop implements Tracer.
func (t *ChromeTracer) ProcStop(ts int64, proc int, status string) {
	t.add(chromeEvent{Ph: "E", Tid: int64(proc), Ts: t.ts(ts),
		Args: map[string]any{"status": status}})
}

// Rendezvous implements Tracer.
func (t *ChromeTracer) Rendezvous(ts int64, ch string, sender, receiver int) {
	tid := int64(sender)
	if sender < 0 {
		tid = int64(receiver)
	}
	t.add(chromeEvent{Name: "rendezvous " + ch, Ph: "i", S: "t", Tid: tid, Ts: t.ts(ts),
		Args: map[string]any{"chan": ch, "sender": sender, "receiver": receiver}})
}

// Alloc implements Tracer.
func (t *ChromeTracer) Alloc(ts int64, proc int, live int) {
	t.counterLive(ts, live)
}

// Free implements Tracer.
func (t *ChromeTracer) Free(ts int64, proc int, live int) {
	t.counterLive(ts, live)
}

func (t *ChromeTracer) counterLive(ts int64, live int) {
	t.add(chromeEvent{Name: "heap live objects", Ph: "C", Ts: t.ts(ts),
		Args: map[string]any{"live": live}})
}

// Fault implements Tracer.
func (t *ChromeTracer) Fault(ts int64, proc int, msg string) {
	tid := int64(proc)
	if proc < 0 {
		tid = runtimeTid
	}
	t.add(chromeEvent{Name: "FAULT", Ph: "i", S: "g", Tid: tid, Ts: t.ts(ts),
		Args: map[string]any{"msg": msg}})
}

// runtimeTid is the track for events with no process context (the idle
// loop's external polls, unattributed faults).
const runtimeTid = 999

// Poll implements Tracer.
func (t *ChromeTracer) Poll(ts int64, ch string) {
	t.ensureName(runtimeTid, "runtime (idle loop)")
	t.add(chromeEvent{Name: "poll " + ch, Ph: "i", S: "t", Tid: runtimeTid, Ts: t.ts(ts)})
}

// --- SpanEmitter (hardware / generic tracks) ---

// SetTrackName implements SpanEmitter.
func (t *ChromeTracer) SetTrackName(tid int64, name string) { t.ensureName(tid, name) }

// Begin implements SpanEmitter.
func (t *ChromeTracer) Begin(tid int64, name string, ts int64) {
	t.add(chromeEvent{Name: name, Ph: "B", Tid: tid, Ts: t.ts(ts)})
}

// End implements SpanEmitter.
func (t *ChromeTracer) End(tid int64, ts int64) {
	t.add(chromeEvent{Ph: "E", Tid: tid, Ts: t.ts(ts)})
}

// Instant implements SpanEmitter.
func (t *ChromeTracer) Instant(tid int64, name string, ts int64) {
	t.add(chromeEvent{Name: name, Ph: "i", S: "t", Tid: tid, Ts: t.ts(ts)})
}

// --- Export ---

// chromeFile is the top-level JSON object format.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Write writes the trace as Chrome trace-event JSON.
func (t *ChromeTracer) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	events := t.events
	if events == nil {
		events = []chromeEvent{}
	}
	return enc.Encode(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ValidateChromeTrace parses data as Chrome trace-event JSON and checks
// the minimal structural invariants a viewer relies on: a traceEvents
// array whose every record has a phase, and whose B/E pairs balance per
// track. It returns the number of events.
func ValidateChromeTrace(data []byte) (int, error) {
	var f chromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("trace JSON does not parse: %w", err)
	}
	if f.TraceEvents == nil {
		return 0, fmt.Errorf("trace JSON has no traceEvents array")
	}
	depth := map[int64]int{}
	for i, e := range f.TraceEvents {
		switch e.Ph {
		case "":
			return 0, fmt.Errorf("event %d has no phase", i)
		case "B":
			depth[e.Tid]++
		case "E":
			depth[e.Tid]--
			if depth[e.Tid] < 0 {
				return 0, fmt.Errorf("event %d: E without matching B on track %d", i, e.Tid)
			}
		}
	}
	for tid, d := range depth {
		if d != 0 {
			return 0, fmt.Errorf("track %d has %d unclosed span(s)", tid, d)
		}
	}
	return len(f.TraceEvents), nil
}
