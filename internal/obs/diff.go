package obs

import (
	"fmt"
	"strings"
)

// DiffTraces compares two recorded event streams and returns the index
// of the first event at which they diverge, or -1 when they are
// identical (same length, every field of every event equal). When one
// stream is a strict prefix of the other, the divergence index is the
// shorter length.
func DiffTraces(a, b []Event) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}

// eventChan names the channel an event concerns, or "-" when the kind
// carries no channel.
func eventChan(e Event) string {
	switch e.Kind {
	case EvRendezvous, EvPoll:
		return e.Name
	}
	return "-"
}

// describeEvent renders the coordinates a divergence report leads with:
// cycle, kind, process, and channel.
func describeEvent(e Event) string {
	return fmt.Sprintf("cycle=%d kind=%s proc=%d chan=%s", e.Ts, e.Kind, e.Proc, eventChan(e))
}

// FormatDivergence renders the first divergence between two event
// streams: a summary line naming the cycle, kind, process, and channel
// of the first divergent event, then both sides' raw events (or a note
// that one stream ended). It returns "" when the streams are identical.
// aLabel/bLabel name the two executions (e.g. engine names).
func FormatDivergence(aLabel string, a []Event, bLabel string, b []Event) string {
	i := DiffTraces(a, b)
	if i < 0 {
		return ""
	}
	var sb strings.Builder
	lead := a
	if i >= len(a) {
		lead = b
	}
	fmt.Fprintf(&sb, "first divergent event at index %d: %s\n", i, describeEvent(lead[i]))
	side := func(label string, evs []Event) {
		if i < len(evs) {
			fmt.Fprintf(&sb, "  %s: %s\n", label, evs[i])
		} else {
			fmt.Fprintf(&sb, "  %s: (stream ends after %d events)\n", label, len(evs))
		}
	}
	side(aLabel, a)
	side(bLabel, b)
	return strings.TrimRight(sb.String(), "\n")
}
