package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"
)

// Server is the live telemetry endpoint of a long-running ESP campaign:
// a plain-HTTP server that exposes the metrics registry, a status page,
// a progress line, and a flight-recorder snapshot while the run is still
// in flight. It is attached by the CLIs' -telemetry flag (esprun,
// espverify, espfuzz, vmmcbench).
//
// Endpoints:
//
//	/             index of the endpoints below
//	/metrics      Prometheus text exposition of the registry
//	/metrics.json the same registry as a JSON snapshot
//	/statusz      process status: uptime, goroutines, heap, custom status
//	/progress     the campaign's latest progress line (SetProgress)
//	/trace?last=N Chrome trace JSON of the flight recorder's last N events
//
// All handlers are read-only and safe to scrape while the instrumented
// run is executing.
type Server struct {
	reg   *Metrics
	ln    net.Listener
	srv   *http.Server
	start time.Time

	mu       sync.Mutex
	rec      *FlightRecorder
	status   func(w io.Writer)
	progress func(w io.Writer)
}

// NewServer starts a telemetry server listening on addr (host:port;
// port 0 picks a free one — see Addr) serving the given registry.
// Close shuts it down.
func NewServer(addr string, reg *Metrics) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	s := &Server{reg: reg, ln: ln, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/trace", s.handleTrace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the server's listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }

// SetRecorder attaches the flight recorder served by /trace.
func (s *Server) SetRecorder(r *FlightRecorder) {
	s.mu.Lock()
	s.rec = r
	s.mu.Unlock()
}

// SetStatus attaches an extra status section rendered at the end of
// /statusz.
func (s *Server) SetStatus(fn func(w io.Writer)) {
	s.mu.Lock()
	s.status = fn
	s.mu.Unlock()
}

// SetProgress attaches the /progress renderer — typically the latest
// model-checker ProgressInfo or fuzz-campaign progress line.
func (s *Server) SetProgress(fn func(w io.Writer)) {
	s.mu.Lock()
	s.progress = fn
	s.mu.Unlock()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	io.WriteString(w, "esp telemetry\n\n/metrics\n/metrics.json\n/statusz\n/progress\n/trace?last=N\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		http.Error(w, "no metrics registry attached", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WritePrometheus(w)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		http.Error(w, "no metrics registry attached", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.reg.WriteJSON(w)
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "uptime: %s\ngoroutines: %d\nheap: %d bytes\n",
		time.Since(s.start).Round(time.Millisecond), runtime.NumGoroutine(), ms.HeapAlloc)
	s.mu.Lock()
	fn := s.status
	s.mu.Unlock()
	if fn != nil {
		fn(w)
	}
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	fn := s.progress
	s.mu.Unlock()
	if fn == nil {
		http.Error(w, "no progress source attached", http.StatusServiceUnavailable)
		return
	}
	fn(w)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	rec := s.rec
	s.mu.Unlock()
	if rec == nil {
		http.Error(w, "no flight recorder attached", http.StatusServiceUnavailable)
		return
	}
	last := 0
	if v := r.URL.Query().Get("last"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad last parameter", http.StatusBadRequest)
			return
		}
		last = n
	}
	w.Header().Set("Content-Type", "application/json")
	rec.WriteChrome(w, last)
}
