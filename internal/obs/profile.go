package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Profiler attributes CostModel cycle charges to source lines. The VM
// updates its current-line register as it dispatches instructions (using
// the spans the compiler threads into the IR) and reports every charge
// here with its event kind, so the profile decomposes the cycle meter
// exactly: per line for the flat hot-line view, per kind for the §6.2
// event-breakdown table.
//
// Line 0 collects charges with no source attribution (runtime work
// outside any instruction).
type Profiler struct {
	// File labels the profile (the ESP source path).
	File string

	lines map[int]*LineProfile
}

// LineProfile is the accumulated cost of one source line.
type LineProfile struct {
	Line   int
	Cycles [NumKinds]int64
	Count  [NumKinds]int64
}

// Total returns the line's cycles across all kinds.
func (l *LineProfile) Total() int64 {
	var t int64
	for _, c := range l.Cycles {
		t += c
	}
	return t
}

// Dominant returns the kind contributing the most cycles to the line.
func (l *LineProfile) Dominant() Kind {
	best := Kind(0)
	for k := Kind(1); k < NumKinds; k++ {
		if l.Cycles[k] > l.Cycles[best] {
			best = k
		}
	}
	return best
}

// NewProfiler returns an empty profiler.
func NewProfiler(file string) *Profiler {
	return &Profiler{File: file, lines: make(map[int]*LineProfile)}
}

// Add records cycles of the given kind charged while executing line.
func (p *Profiler) Add(line int, k Kind, cycles int64) {
	lp := p.lines[line]
	if lp == nil {
		lp = &LineProfile{Line: line}
		p.lines[line] = lp
	}
	lp.Cycles[k] += cycles
	lp.Count[k]++
}

// TotalCycles returns the cycles recorded across all lines.
func (p *Profiler) TotalCycles() int64 {
	var t int64
	for _, lp := range p.lines {
		t += lp.Total()
	}
	return t
}

// Lines returns the per-line profiles sorted by total cycles, descending
// (ties broken by line number so the order is deterministic).
func (p *Profiler) Lines() []*LineProfile {
	out := make([]*LineProfile, 0, len(p.lines))
	for _, lp := range p.lines {
		out = append(out, lp)
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := out[i].Total(), out[j].Total()
		if ti != tj {
			return ti > tj
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// Top returns the hottest attributed source line and its cycle total
// (line 0 — unattributed runtime work — is skipped). It returns (0, 0)
// on an empty profile.
func (p *Profiler) Top() (line int, cycles int64) {
	for _, lp := range p.Lines() {
		if lp.Line != 0 {
			return lp.Line, lp.Total()
		}
	}
	return 0, 0
}

// KindTotals sums cycles and counts per event kind — the per-event
// breakdown of §6.2.
func (p *Profiler) KindTotals() (cycles, counts [NumKinds]int64) {
	for _, lp := range p.lines {
		for k := Kind(0); k < NumKinds; k++ {
			cycles[k] += lp.Cycles[k]
			counts[k] += lp.Count[k]
		}
	}
	return cycles, counts
}

// Report renders the flat hot-line profile in pprof-top style: flat
// cycles, flat%, cumulative%, the dominant event kind, the location, and
// the source text (resolved from src when non-empty). topN bounds the
// number of lines (0 = all).
func (p *Profiler) Report(src string, topN int) string {
	lines := p.Lines()
	if topN > 0 && len(lines) > topN {
		lines = lines[:topN]
	}
	total := p.TotalCycles()
	if total == 0 {
		return "profile: no cycles recorded\n"
	}
	var srcLines []string
	if src != "" {
		srcLines = strings.Split(src, "\n")
	}
	file := p.File
	if file == "" {
		file = "<memory>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "profile: %d cycles total, %s\n", total, file)
	fmt.Fprintf(&b, "%12s %6s %6s  %-10s %-16s %s\n", "cycles", "flat%", "cum%", "dominant", "location", "source")
	var cum int64
	for _, lp := range lines {
		t := lp.Total()
		cum += t
		loc := fmt.Sprintf("%s:%d", file, lp.Line)
		text := "<runtime>"
		if lp.Line > 0 {
			text = ""
			if lp.Line-1 < len(srcLines) {
				text = strings.TrimSpace(srcLines[lp.Line-1])
			}
		} else {
			loc = "<runtime>"
		}
		fmt.Fprintf(&b, "%12d %5.1f%% %5.1f%%  %-10s %-16s %s\n",
			t, pctOf(t, total), pctOf(cum, total), lp.Dominant(), loc, text)
	}
	return b.String()
}

// KindTable renders the per-event breakdown table (§6.2): for each event
// kind, the event count, cycles, and share of the total.
func (p *Profiler) KindTable() string {
	cycles, counts := p.KindTotals()
	total := p.TotalCycles()
	var b strings.Builder
	fmt.Fprintf(&b, "event breakdown (§6.2): %d cycles total\n", total)
	fmt.Fprintf(&b, "%-12s %12s %12s %6s\n", "event", "count", "cycles", "cyc%")
	for k := Kind(0); k < NumKinds; k++ {
		if counts[k] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-12s %12d %12d %5.1f%%\n", k, counts[k], cycles[k], pctOf(cycles[k], total))
	}
	return b.String()
}

func pctOf(part, total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(part) / float64(total) * 100
}
