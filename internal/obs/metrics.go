package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metrics is a small instrument registry: named counters, gauges, and
// power-of-two-bucket histograms. The hot paths (VM rendezvous, sim
// kernel steps, model-checker workers) hold direct instrument pointers
// obtained once from Counter/Gauge/Histogram, so steady-state updates
// are a single atomic add — the registry map is only touched at setup
// and snapshot time.
//
// Snapshots export as JSON (stable: Go sorts map keys) and as Prometheus
// text exposition format.
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with 2^(i-1) < v <= 2^i (bucket 0 counts v <= 1,
// negative included). 2^62 comfortably covers any int64 observation the
// runtime produces.
const histBuckets = 63

// Histogram counts observations in power-of-two buckets and tracks the
// running sum, so snapshots can report count, mean, and an approximate
// distribution without storing samples.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the running sum of observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Counter returns the named counter, creating it on first use.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (m *Metrics) Gauge(name string) *Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.gauges[name]
	if g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (m *Metrics) Histogram(name string) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.histograms[name]
	if h == nil {
		h = &Histogram{}
		m.histograms[name] = h
	}
	return h
}

// HistSnapshot is a histogram's exported state.
type HistSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	// Buckets maps the inclusive power-of-two upper bound (1, 2, 4, …)
	// to the number of observations at or below it and above the previous
	// bound. Empty buckets are omitted.
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every instrument.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current values.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(m.counters)),
		Gauges:     make(map[string]int64, len(m.gauges)),
		Histograms: make(map[string]HistSnapshot, len(m.histograms)),
	}
	for name, c := range m.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range m.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range m.histograms {
		hs := HistSnapshot{Count: h.Count(), Sum: h.Sum(), Buckets: map[string]int64{}}
		for i := 0; i < histBuckets; i++ {
			if n := h.buckets[i].Load(); n > 0 {
				hs.Buckets[bucketLabel(i)] = n
			}
		}
		if len(hs.Buckets) == 0 {
			hs.Buckets = nil
		}
		s.Histograms[name] = hs
	}
	return s
}

func bucketLabel(i int) string {
	if i >= histBuckets-1 {
		return "+Inf"
	}
	return fmt.Sprintf("%d", int64(1)<<uint(i))
}

// WriteJSON writes the registry snapshot as indented JSON.
func (m *Metrics) WriteJSON(w io.Writer) error {
	return m.Snapshot().WriteJSON(w)
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ParseSnapshot parses a snapshot previously written by WriteJSON. Used
// by round-trip validation in CI.
func ParseSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("metrics snapshot does not parse: %w", err)
	}
	return s, nil
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format. Instrument names have non-identifier characters replaced by
// underscores; per-channel instruments named like "base{label}" keep the
// braces as a label pair.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	s := m.Snapshot()
	var b strings.Builder
	for _, name := range sortedNames(s.Counters) {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", promBase(name), promName(name), s.Counters[name])
	}
	for _, name := range sortedNames(s.Gauges) {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", promBase(name), promName(name), s.Gauges[name])
	}
	histNames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := s.Histograms[name]
		base := promBase(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", base)
		var cum int64
		for i := 0; i < histBuckets; i++ {
			n := h.Buckets[bucketLabel(i)]
			if n == 0 {
				continue
			}
			cum += n
			le := bucketLabel(i)
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", base, le, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", base, h.Count)
		fmt.Fprintf(&b, "%s_sum %d\n", base, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", base, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedNames(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// promBase returns the metric name with any "{label}" suffix stripped
// and remaining characters sanitized.
func promBase(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	return sanitize(name)
}

// promName renders a registry name for exposition: "rendezvous{c}"
// becomes `rendezvous{chan="c"}`, plain names are sanitized verbatim.
func promName(name string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return sanitize(name)
	}
	label := name[i+1 : len(name)-1]
	return fmt.Sprintf("%s{chan=%q}", sanitize(name[:i]), label)
}

func sanitize(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Equal reports whether two snapshots carry the same values. Used by the
// CI round-trip check.
func (s Snapshot) Equal(o Snapshot) bool {
	a, err1 := json.Marshal(s)
	b, err2 := json.Marshal(o)
	return err1 == nil && err2 == nil && string(a) == string(b)
}
