package cbackend

import (
	"fmt"
	"strings"

	"esplang/internal/ir"
	"esplang/internal/types"
)

// emitBuilders generates, for every external-writer interface case, the
// function that calls the programmer's per-case extern function and
// assembles the message value (the runtime half of §4.5: "by specifying
// the entire pattern ... there is no need for that function to allocate
// any ESP data structure").
func (g *cgen) emitBuilders() {
	for _, ch := range g.prog.Channels {
		if ch.Ext != ir.ExtWriter || len(ch.Cases) == 0 {
			continue
		}
		for ci, c := range ch.Cases {
			g.w("static esp_val esp_build_%s_%d(void) { /* %s.%s */", ch.Name, ci, ch.IfaceName, c.Name)
			// Declare parameter holders and call the extern function.
			var args []string
			for pi, pt := range c.ParamTypes {
				if pt.IsScalar() {
					g.w("    int32_t p%d = 0;", pi)
				} else {
					g.w("    esp_val p%d = 0;", pi)
				}
				args = append(args, fmt.Sprintf("&p%d", pi))
			}
			g.w("    %s%s(%s);", ch.IfaceName, c.Name, strings.Join(args, ", "))
			tmp := 0
			expr := g.buildExpr(c.Pat, ch.Elem, &tmp)
			g.w("    return %s;", expr)
			g.w("}")
		}
	}
	g.w("")
}

// buildExpr emits statements allocating the wrappers of an interface-case
// pattern and returns the C expression of the built value. Fresh children
// are absorbed (no link): the external code hands over its allocation
// reference, exactly like an ESP literal.
func (g *cgen) buildExpr(p *ir.Pat, t *types.Type, tmp *int) string {
	switch p.Kind {
	case ir.PatBind:
		return fmt.Sprintf("p%d", p.Slot)
	case ir.PatConst:
		return fmt.Sprintf("%d", p.Val)
	case ir.PatAny:
		return "0"
	case ir.PatRecord:
		name := fmt.Sprintf("b%d", *tmp)
		*tmp++
		g.w("    esp_val %s = esp_alloc(%d, 0, %d);", name, t.ID(), len(p.Elems))
		for i, sub := range p.Elems {
			e := g.buildExpr(sub, t.Fields[i].Type, tmp)
			g.w("    esp_heap[%s].elems[%d] = %s;", name, i, e)
		}
		return name
	case ir.PatUnion:
		name := fmt.Sprintf("b%d", *tmp)
		*tmp++
		inner := g.buildExpr(p.Elems[0], t.Fields[p.Tag].Type, tmp)
		g.w("    esp_val %s = esp_alloc(%d, %d, 1);", name, t.ID(), p.Tag)
		g.w("    esp_heap[%s].elems[0] = %s;", name, inner)
		return name
	}
	return "0"
}

// emitExtPut generates, for every external-reader channel, the function
// completing a blocked send: it dispatches the outgoing value to the
// matching interface case and calls the programmer's function with the
// extracted components (§4.5: "all the parameters have one less level of
// indirection").
func (g *cgen) emitExtPut() {
	for _, ch := range g.prog.Channels {
		if ch.Ext != ir.ExtReader {
			continue
		}
		g.w("static int esp_extput_%s(int spid) {", ch.Name)
		g.w("    esp_val v = *PV[spid].pending;")
		g.w("    (void)v;")
		if len(ch.Cases) == 0 {
			g.w("    if (!esp_ext_%s_accept()) return 0;", ch.Name)
			g.w("    esp_ext_%s_put(v);", ch.Name)
		} else {
			g.w("    if (!%sIsReady()) return 0;", ch.IfaceName)
			for ci, c := range ch.Cases {
				match := g.cPatMatch(c.Pat, "v", &ir.Proc{ID: -1})
				var paths []string
				collectParamPaths(c.Pat, "v", &paths)
				g.w("    if (%s) { %s%s(%s); goto done; }",
					match, ch.IfaceName, c.Name, strings.Join(paths, ", "))
				_ = ci
			}
			g.w("    esp_fail(\"value on channel %s matches no interface case\");", ch.Name)
			g.w("done:;")
		}
		g.w("    if ((*PV[spid].pflags & 1) && esp_chan_isref[*PV[spid].wait_chan]) esp_unlink(v);")
		g.w("    return 1;")
		g.w("}")
	}
	g.w("")
}

// collectParamPaths walks an interface pattern and records the C access
// path of every bound parameter, in parameter order.
func collectParamPaths(p *ir.Pat, path string, out *[]string) {
	switch p.Kind {
	case ir.PatBind:
		for len(*out) <= p.Slot {
			*out = append(*out, "0")
		}
		(*out)[p.Slot] = path
	case ir.PatRecord:
		for i, sub := range p.Elems {
			collectParamPaths(sub, fmt.Sprintf("esp_deref(%s)->elems[%d]", path, i), out)
		}
	case ir.PatUnion:
		collectParamPaths(p.Elems[0], fmt.Sprintf("esp_deref(%s)->elems[0]", path), out)
	}
}

// emitPoll generates the idle-loop polling function (§6.1: "the generated
// code has an idle loop that polls for messages on external channels").
func (g *cgen) emitPoll() {
	g.w("static int esp_inject(int chan, esp_val v) {")
	g.w("    int r, a;")
	g.w("    for (r = 0; r < ESP_NPROCS; r++) {")
	g.w("        if (!(esp_waitmask[r] & (1ull << chan))) continue;")
	g.w("        if (*PV[r].status == ESP_BLOCKED_RECV && *PV[r].wait_chan == chan) {")
	g.w("            if (esp_deliver(v, 1, r, *PV[r].wait_port, esp_chan_isref[chan])) {")
	g.w("                *PV[r].pc = *PV[r].resume_pc;")
	g.w("                esp_make_ready(r);")
	g.w("                return 1;")
	g.w("            }")
	g.w("        } else if (*PV[r].status == ESP_BLOCKED_ALT) {")
	g.w("            const esp_alt_t *alt = &esp_alts[r][*PV[r].alt_idx];")
	g.w("            for (a = 0; a < alt->narms; a++) {")
	g.w("                const esp_arm_t *arm = &alt->arms[a];")
	g.w("                if (arm->is_send || arm->chan != chan || !esp_guard_true(r, arm)) continue;")
	g.w("                if (esp_deliver(v, 1, r, arm->port, esp_chan_isref[chan])) {")
	g.w("                    *PV[r].pc = arm->body_pc;")
	g.w("                    esp_make_ready(r);")
	g.w("                    return 1;")
	g.w("                }")
	g.w("            }")
	g.w("        }")
	g.w("    }")
	g.w("    return 0;")
	g.w("}")
	g.w("")
	g.w("static int esp_recv_waiting(int chan) {")
	g.w("    int r;")
	g.w("    for (r = 0; r < ESP_NPROCS; r++) {")
	g.w("        if (!(esp_waitmask[r] & (1ull << chan))) continue;")
	g.w("        if (*PV[r].status == ESP_BLOCKED_RECV || *PV[r].status == ESP_BLOCKED_ALT) return 1;")
	g.w("    }")
	g.w("    return 0;")
	g.w("}")
	g.w("")
	g.w("static int esp_poll(void) {")
	g.w("    int moved = 0;")
	g.w("    int s, a;")
	g.w("    (void)s; (void)a;")
	for _, ch := range g.prog.Channels {
		switch ch.Ext {
		case ir.ExtWriter:
			g.w("    /* external writer channel %s */", ch.Name)
			g.w("    if (esp_recv_waiting(%d)) {", ch.ID)
			if len(ch.Cases) > 0 {
				g.w("        int c = %sIsReady();", ch.IfaceName)
				for ci := range ch.Cases {
					g.w("        if (c == %d) {", ci+1)
					g.w("            esp_val v = esp_build_%s_%d();", ch.Name, ci)
					g.w("            if (!esp_inject(%d, v)) esp_fail(\"message on %s matches no waiting receiver\");", ch.ID, ch.Name)
					g.w("            moved = 1;")
					g.w("        }")
				}
			} else {
				g.w("        if (esp_ext_%s_ready()) {", ch.Name)
				g.w("            esp_val v = esp_ext_%s_take();", ch.Name)
				g.w("            if (!esp_inject(%d, v)) esp_fail(\"message on %s matches no waiting receiver\");", ch.ID, ch.Name)
				g.w("            moved = 1;")
				g.w("        }")
			}
			g.w("    }")
		case ir.ExtReader:
			g.w("    /* external reader channel %s: complete blocked senders */", ch.Name)
			g.w("    for (s = 0; s < ESP_NPROCS; s++) {")
			g.w("        if (!(esp_waitmask[s] & (1ull << %d))) continue;", ch.ID)
			g.w("        if (*PV[s].status == ESP_BLOCKED_SEND && *PV[s].wait_chan == %d) {", ch.ID)
			g.w("            if (esp_extput_%s(s)) {", ch.Name)
			g.w("                *PV[s].pc = *PV[s].resume_pc;")
			g.w("                esp_make_ready(s);")
			g.w("                moved = 1;")
			g.w("            }")
			g.w("        } else if (*PV[s].status == ESP_BLOCKED_ALT) {")
			g.w("            const esp_alt_t *alt = &esp_alts[s][*PV[s].alt_idx];")
			g.w("            for (a = 0; a < alt->narms; a++) {")
			g.w("                const esp_arm_t *arm = &alt->arms[a];")
			g.w("                if (!arm->is_send || arm->chan != %d || !esp_guard_true(s, arm)) continue;", ch.ID)
			if len(ch.Cases) > 0 {
				g.w("                if (!%sIsReady()) continue;", ch.IfaceName)
			} else {
				g.w("                if (!esp_ext_%s_accept()) continue;", ch.Name)
			}
			g.w("                *PV[s].pc = arm->eval_pc;")
			g.w("                esp_make_ready(s);")
			g.w("                moved = 1;")
			g.w("                break;")
			g.w("            }")
			g.w("        }")
			g.w("    }")
		}
	}
	g.w("    return moved;")
	g.w("}")
	g.w("")
}

// armedMask returns the C expression of the wait bit-mask for an alt's
// statically known arms (guards folded in at run time).
func armedMaskExpr(alt *ir.AltDef, pid int) string {
	var parts []string
	for ai := range alt.Arms {
		arm := &alt.Arms[ai]
		bit := fmt.Sprintf("(1ull << %d)", arm.Chan)
		if arm.GuardSlot >= 0 {
			bit = fmt.Sprintf("(P%d.loc[%d] ? (1ull << %d) : 0u)", pid, arm.GuardSlot, arm.Chan)
		}
		parts = append(parts, bit)
	}
	return strings.Join(parts, " | ")
}

// mainLoop emits esp_run: the one big function of §6.1.
func (g *cgen) mainLoop() {
	g.emitBuilders()
	g.emitExtPut()
	g.emitPoll()

	g.w("/* ---- the one big function (§6.1): all process code, the")
	g.w(" * scheduler, and the idle loop ---- */")
	g.w("void esp_run(void) {")
	g.w("    int pid, sp = 0, a;")
	g.w("    (void)a;")
	g.w("    (void)esp_alt_send_ready; (void)esp_chan_ext; (void)esp_recv_waiting;")
	g.w("    (void)esp_inject; (void)esp_try_recv; (void)esp_try_send;")
	g.w("    esp_init_views();")
	g.w("    for (pid = ESP_NPROCS - 1; pid >= 0; pid--) esp_make_ready(pid);")
	g.w("")
	g.w("esp_sched:")
	g.w("    while (esp_nready > 0) {")
	g.w("        pid = esp_ready_stack[--esp_nready];")
	g.w("        if (*PV[pid].status != ESP_READY) continue;")
	g.w("        sp = 0;")
	g.w("        switch (pid) {")
	for _, p := range g.prog.Procs {
		g.w("        case %d: goto P%d_resume;", p.ID, p.ID)
	}
	g.w("        }")
	g.w("    }")
	g.w("    if (esp_poll()) goto esp_sched;")
	g.w("    return; /* idle: all processes blocked, no external input */")
	g.w("")
	for _, p := range g.prog.Procs {
		g.emitProcCode(p)
	}
	g.w("}")
	g.w("")
}

func (g *cgen) emitProcCode(p *ir.Proc) {
	g.w("/* ======== process %s ======== */", p.Name)
	g.w("P%d_resume:", p.ID)
	g.w("    switch (P%d.pc) {", p.ID)
	g.w("    case 0: goto P%d_I0;", p.ID)
	// Emit resume cases for every pc that can be a resumption target:
	// resume_pc of blocking ops, arm body/eval pcs, and jump targets are
	// all direct labels; the resume switch needs every pc that is stored
	// into .pc. Emitting all pcs is simplest and correct.
	for pc := 1; pc < len(p.Code); pc++ {
		g.w("    case %d: goto P%d_I%d;", pc, p.ID, pc)
	}
	g.w("    }")
	g.w("    esp_fail(\"bad pc\");")

	// When the program carries a source path, #line directives map each
	// instruction back to its ESP statement so C-level debuggers and
	// compiler diagnostics point at the .esp file, not the generated C.
	lastLine := -1
	for pc, in := range p.Code {
		if g.prog.File != "" && in.Pos.IsValid() && in.Pos.Line != lastLine {
			g.w("#line %d %q", in.Pos.Line, g.prog.File)
			lastLine = in.Pos.Line
		}
		g.w("P%d_I%d: /* %s */", p.ID, pc, ir.FormatInstr(p, in))
		g.instr(p, pc, in)
	}
	g.w("")
}

func (g *cgen) instr(p *ir.Proc, pc int, in ir.Instr) {
	id := p.ID
	st := func(off int) string { return fmt.Sprintf("P%d.st[sp%+d]", id, off) }
	next := fmt.Sprintf("goto P%d_I%d;", id, pc+1)

	switch in.Op {
	case ir.Nop:
		g.w("    %s", next)
	case ir.Const:
		g.w("    P%d.st[sp++] = %d; %s", id, in.Val, next)
	case ir.SelfID:
		g.w("    P%d.st[sp++] = %d; %s", id, id, next)
	case ir.LoadLocal:
		g.w("    P%d.st[sp++] = P%d.loc[%d]; %s", id, id, in.A, next)
	case ir.StoreLocal:
		g.w("    P%d.loc[%d] = P%d.st[--sp]; %s", id, in.A, id, next)
	case ir.Dup:
		g.w("    P%d.st[sp] = P%d.st[sp-1]; sp++; %s", id, id, next)
	case ir.Pop:
		g.w("    sp--; %s", next)

	case ir.Neg:
		g.w("    %s = -%s; %s", st(-1), st(-1), next)
	case ir.Not:
		g.w("    %s = !%s; %s", st(-1), st(-1), next)
	case ir.Add, ir.Sub, ir.Mul, ir.Eq, ir.Ne, ir.Lt, ir.Le, ir.Gt, ir.Ge:
		op := map[ir.Op]string{ir.Add: "+", ir.Sub: "-", ir.Mul: "*",
			ir.Eq: "==", ir.Ne: "!=", ir.Lt: "<", ir.Le: "<=", ir.Gt: ">", ir.Ge: ">="}[in.Op]
		g.w("    sp--; %s = %s %s %s; %s", st(-1), st(-1), op, st(0), next)
	case ir.Div, ir.Mod:
		op := "/"
		if in.Op == ir.Mod {
			op = "%"
		}
		g.w("    if (%s == 0) esp_fail(\"division by zero\");", st(-1))
		g.w("    sp--; %s = %s %s %s; %s", st(-1), st(-1), op, st(0), next)

	case ir.Jump:
		g.w("    goto P%d_I%d;", id, in.A)
	case ir.JumpIfFalse:
		g.w("    if (!P%d.st[--sp]) goto P%d_I%d;", id, id, in.A)
		g.w("    %s", next)
	case ir.JumpIfTrue:
		g.w("    if (P%d.st[--sp]) goto P%d_I%d;", id, id, in.A)
		g.w("    %s", next)

	case ir.NewRecord:
		t := g.prog.Universe.ByID(in.A)
		g.w("    { esp_val h = esp_alloc(%d, 0, %d);", in.A, in.B)
		for i := in.B - 1; i >= 0; i-- {
			g.w("      esp_heap[h].elems[%d] = P%d.st[--sp];", i, id)
			if t.Fields[i].Type.IsRef() && in.Val&(1<<i) == 0 {
				g.w("      if (esp_heap[h].elems[%d]) esp_link(esp_heap[h].elems[%d]); /* borrowed child */", i, i)
			}
		}
		g.w("      P%d.st[sp++] = h; } %s", id, next)
	case ir.NewUnion:
		t := g.prog.Universe.ByID(in.A)
		g.w("    { esp_val h = esp_alloc(%d, %d, 1);", in.A, in.B)
		g.w("      esp_heap[h].elems[0] = P%d.st[--sp];", id)
		if t.Fields[in.B].Type.IsRef() && in.Val&1 == 0 {
			g.w("      if (esp_heap[h].elems[0]) esp_link(esp_heap[h].elems[0]);")
		}
		g.w("      P%d.st[sp++] = h; } %s", id, next)
	case ir.NewArray:
		g.w("    { esp_val init = P%d.st[--sp]; int n = P%d.st[--sp]; int i;", id, id)
		g.w("      esp_val h = esp_alloc(%d, 0, n);", in.A)
		g.w("      for (i = 0; i < n; i++) esp_heap[h].elems[i] = init;")
		g.w("      P%d.st[sp++] = h; } %s", id, next)

	case ir.GetField:
		g.w("    %s = esp_deref(%s)->elems[%d]; %s", st(-1), st(-1), in.A, next)
	case ir.SetField:
		g.w("    { esp_val v = P%d.st[--sp]; esp_obj_t *o = esp_deref(P%d.st[--sp]);", id, id)
		g.w("      esp_val old = o->elems[%d]; o->elems[%d] = v;", in.A, in.A)
		g.w("      if (esp_ref_mask[o->type] & (1ull << %d)) {", in.A)
		g.w("          if (v) esp_link(v);")
		g.w("          if (old) esp_unlink(old);")
		g.w("      } } %s", next)
	case ir.GetIndex:
		g.w("    { int i = P%d.st[--sp]; esp_obj_t *o = esp_deref(%s);", id, st(-1))
		g.w("      if (i < 0 || i >= o->n) esp_fail(\"array index out of bounds\");")
		g.w("      %s = o->elems[i]; } %s", st(-1), next)
	case ir.SetIndex:
		g.w("    { esp_val v = P%d.st[--sp]; int i = P%d.st[--sp]; esp_obj_t *o = esp_deref(P%d.st[--sp]);", id, id, id)
		g.w("      if (i < 0 || i >= o->n) esp_fail(\"array index out of bounds\");")
		g.w("      o->elems[i] = v; } %s", next)
	case ir.UnionGet:
		g.w("    { esp_obj_t *o = esp_deref(%s);", st(-1))
		g.w("      if (o->tag != %d) esp_fail(\"union tag mismatch\");", in.A)
		g.w("      %s = o->elems[0]; } %s", st(-1), next)

	case ir.Link:
		g.w("    esp_link(P%d.st[--sp]); %s", id, next)
	case ir.Unlink:
		g.w("    esp_unlink(P%d.st[--sp]); %s", id, next)
	case ir.CastCopy:
		g.w("    { esp_obj_t *o = esp_deref(%s); int i;", st(-1))
		g.w("      esp_val h = esp_alloc(%d, o->tag, o->n);", in.A)
		g.w("      for (i = 0; i < o->n; i++) {")
		g.w("          esp_heap[h].elems[i] = o->elems[i];")
		g.w("          if ((esp_ref_mask[%d] & (1ull << i)) && o->elems[i]) esp_link(o->elems[i]);", in.A)
		g.w("      }")
		g.w("      %s = h; } %s", st(-1), next)
	case ir.CastReuse:
		g.w("    esp_deref(%s)->type = %d; %s", st(-1), in.A, next)

	case ir.Assert:
		info := g.prog.Asserts[in.A]
		g.w("    if (!P%d.st[--sp]) esp_fail(\"assert(%s) failed at %s\"); %s",
			id, cstr(info.Expr), info.Pos, next)
	case ir.Halt:
		g.w("    P%d.status = ESP_HALTED; goto esp_sched;", id)

	case ir.Send, ir.SendCommit:
		g.w("    P%d.pending = P%d.st[--sp]; P%d.pflags = %d;", id, id, id, in.B)
		g.w("    P%d.wait_chan = %d; P%d.resume_pc = %d;", id, in.A, id, pc+1)
		g.w("    if (esp_try_send(%d)) goto P%d_I%d;", id, id, pc+1)
		if g.prog.Channels[in.A].Ext == ir.ExtReader {
			g.w("    if (esp_extput_%s(%d)) goto P%d_I%d;", g.prog.Channels[in.A].Name, id, id, pc+1)
		}
		if in.Op == ir.SendCommit {
			g.w("    esp_fail(\"committed send on %s matches no receiver\");", g.prog.Channels[in.A].Name)
		} else {
			g.w("    P%d.status = ESP_BLOCKED_SEND; P%d.pc = %d;", id, id, pc)
			g.w("    esp_waitmask[%d] = 1ull << %d;", id, in.A)
			g.w("    goto esp_sched;")
		}
	case ir.Recv:
		g.w("    P%d.wait_chan = %d; P%d.wait_port = %d; P%d.resume_pc = %d;", id, in.A, id, in.B, id, pc+1)
		g.w("    if (esp_try_recv(%d) == 1) goto P%d_I%d;", id, id, pc+1)
		g.w("    P%d.status = ESP_BLOCKED_RECV; P%d.pc = %d;", id, id, pc)
		g.w("    esp_waitmask[%d] = 1ull << %d;", id, in.A)
		g.w("    goto esp_sched;")
	case ir.Alt:
		alt := &p.Alts[in.A]
		g.w("    P%d.alt_idx = %d;", id, in.A)
		for ai := range alt.Arms {
			arm := &alt.Arms[ai]
			guard := ""
			if arm.GuardSlot >= 0 {
				guard = fmt.Sprintf("if (P%d.loc[%d]) ", id, arm.GuardSlot)
			}
			if arm.IsSend {
				cond := fmt.Sprintf("esp_alt_send_ready(%d, &esp_arms_P%d_%d[%d])", id, id, in.A, ai)
				ch := g.prog.Channels[arm.Chan]
				if ch.Ext == ir.ExtReader {
					if len(ch.Cases) > 0 {
						cond += fmt.Sprintf(" || %sIsReady()", ch.IfaceName)
					} else {
						cond += fmt.Sprintf(" || esp_ext_%s_accept()", ch.Name)
					}
				}
				g.w("    %s{ if (%s) { P%d.pc = %d; goto P%d_resume; } }", guard, cond, id, arm.EvalPC, id)
			} else {
				g.w("    %s{", guard)
				g.w("        P%d.wait_chan = %d; P%d.wait_port = %d; P%d.resume_pc = %d;",
					id, arm.Chan, id, arm.Port, id, arm.BodyPC)
				g.w("        int tr = esp_try_recv(%d);", id)
				g.w("        if (tr == 1) { P%d.pc = %d; goto P%d_resume; }", id, arm.BodyPC, id)
				g.w("        if (tr == 2) { /* partner committed: collapse to blocked recv */")
				g.w("            P%d.status = ESP_BLOCKED_RECV; P%d.pc = %d;", id, id, pc)
				g.w("            esp_waitmask[%d] = 1ull << %d;", id, arm.Chan)
				g.w("            goto esp_sched;")
				g.w("        }")
				g.w("    }")
			}
		}
		g.w("    P%d.status = ESP_BLOCKED_ALT; P%d.pc = %d;", id, id, pc)
		g.w("    esp_waitmask[%d] = %s;", id, armedMaskExpr(alt, id))
		g.w("    goto esp_sched;")
	default:
		g.w("    esp_fail(\"bad opcode\");")
	}
}

func cstr(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	s = strings.ReplaceAll(s, "\"", "\\\"")
	return s
}

func (g *cgen) mainStub() {
	g.w("#ifdef ESP_MAIN")
	g.w("int main(void) {")
	g.w("    esp_run();")
	g.w("    return 0;")
	g.w("}")
	g.w("#endif")
}
