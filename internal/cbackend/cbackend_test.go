package cbackend_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"esplang/internal/cbackend"
	"esplang/internal/check"
	"esplang/internal/compile"
	"esplang/internal/ir"
	"esplang/internal/parser"
)

func compileSrc(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := parser.Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := check.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return compile.Program(prog, info)
}

func ccPath(t *testing.T) string {
	t.Helper()
	cc, err := exec.LookPath("cc")
	if err != nil {
		t.Skip("no C compiler available; skipping compile test")
	}
	return cc
}

// buildAndRun compiles the generated C with a driver and runs it.
func buildAndRun(t *testing.T, genC, driverC string) string {
	t.Helper()
	cc := ccPath(t)
	dir := t.TempDir()
	gen := filepath.Join(dir, "gen.c")
	drv := filepath.Join(dir, "driver.c")
	bin := filepath.Join(dir, "prog")
	if err := os.WriteFile(gen, []byte(genC), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(drv, []byte(driverC), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(cc, "-std=c99", "-Wall", "-Werror", "-DESP_MAIN",
		"-o", bin, gen, drv).CombinedOutput()
	if err != nil {
		t.Fatalf("cc failed: %v\n%s\n--- generated C ---\n%s", err, out, genC)
	}
	run, err := exec.Command(bin).CombinedOutput()
	if err != nil {
		t.Fatalf("generated program failed: %v\n%s", err, run)
	}
	return string(run)
}

const add5Src = `
channel inC: int external writer
channel outC: int external reader
interface inI( out inC) { Put( $v) }
process add5 {
    while (true) {
        in( inC, $i);
        out( outC, i+5);
    }
}
`

func TestGeneratedCStructure(t *testing.T) {
	c := cbackend.Generate(compileSrc(t, add5Src), cbackend.Options{})
	for _, want := range []string{
		"void esp_run(void)",
		"esp_waitmask",                // the §6.1 bit-masks
		"extern int inIIsReady(void)", // §4.5 C interface
		"extern void inIPut(int32_t *p0);",
		"esp_unlink",
		"static int esp_poll(void)", // the idle loop
		"P0_resume:",
		"goto esp_sched;",
		"#ifdef ESP_MAIN",
	} {
		if !strings.Contains(c, want) {
			t.Errorf("generated C missing %q", want)
		}
	}
}

func TestCompileAndRunAdd5(t *testing.T) {
	genC := cbackend.Generate(compileSrc(t, add5Src), cbackend.Options{})
	driver := `
#include <stdio.h>
#include <stdint.h>
typedef int32_t esp_val;
extern void esp_run(void);
static int next = 0;
static int32_t inputs[] = {1, 10, 37};
int inIIsReady(void) { return next < 3 ? 1 : 0; }
void inIPut(int32_t *v) { *v = inputs[next++]; }
int esp_ext_outC_accept(void) { return 1; }
void esp_ext_outC_put(esp_val v) { printf("%d\n", (int)v); }
`
	out := buildAndRun(t, genC, driver)
	if out != "6\n15\n42\n" {
		t.Errorf("output = %q, want \"6\\n15\\n42\\n\"", out)
	}
}

func TestCompileAndRunFifoAlt(t *testing.T) {
	genC := cbackend.Generate(compileSrc(t, `
const CAP = 4;
channel chan1: int external writer
channel chan2: int external reader
interface i1( out chan1) { Msg( $v) }
process fifo {
    $q: #array of int = #{ CAP -> 0};
    $hd = 0;
    $tl = 0;
    while (true) {
        alt {
            case( !(tl - hd == CAP), in( chan1, $v)) { q[tl % CAP] = v; tl = tl + 1; }
            case( !(tl == hd), out( chan2, q[hd % CAP])) { hd = hd + 1; }
        }
    }
}
`), cbackend.Options{})
	driver := `
#include <stdio.h>
#include <stdint.h>
typedef int32_t esp_val;
static int next = 0;
int i1IsReady(void) { return next < 10 ? 1 : 0; }
void i1Msg(int32_t *v) { *v = 7 * next; next++; }
int esp_ext_chan2_accept(void) { return 1; }
void esp_ext_chan2_put(esp_val v) { printf("%d\n", (int)v); }
`
	out := buildAndRun(t, genC, driver)
	want := "0\n7\n14\n21\n28\n35\n42\n49\n56\n63\n"
	if out != want {
		t.Errorf("output = %q, want %q (FIFO order)", out, want)
	}
}

func TestCompileAndRunAppendixB(t *testing.T) {
	genC := cbackend.Generate(compileSrc(t, `
type dataT = array of int
type sendT = record of { dest: int, vAddr: int, size: int}
type updateT = record of { vAddr: int, pAddr: int}
type userT = union of { send: sendT, update: updateT}

const TABLE_SIZE = 16;

channel ptReqC: record of { ret: int, vAddr: int}
channel ptReplyC: record of { ret: int, pAddr: int}
channel dmaReqC: record of { ret: int, pAddr: int, size: int}
channel dmaDataC: record of { ret: int, data: dataT}
channel SM2C: record of { dest: int, data: dataT} external reader
channel userReqC: userT external writer

interface userReq( out userReqC) {
    Send( { send |> { $dest, $vAddr, $size}}),
    Update( { update |> { $vAddr, $pAddr}}),
}

process pageTable {
    $table: #array of int = #{ TABLE_SIZE -> 0, ... };
    while (true) {
        alt {
            case( in( ptReqC, { $ret, $vAddr})) {
                out( ptReplyC, { ret, table[vAddr]});
            }
            case( in( userReqC, { update |> { $vAddr, $pAddr}})) {
                table[vAddr] = pAddr;
            }
        }
    }
}

process dma {
    while (true) {
        in( dmaReqC, { $ret, $pAddr, $size});
        $data: dataT = { size -> pAddr};
        out( dmaDataC, { ret, data});
        unlink( data);
    }
}

process SM1 {
    while (true) {
        in( userReqC, { send |> { $dest, $vAddr, $size}});
        out( ptReqC, { @, vAddr});
        in( ptReplyC, { @, $pAddr});
        out( dmaReqC, { @, pAddr, size});
        in( dmaDataC, { @, $sendData});
        out( SM2C, { dest, sendData});
        unlink( sendData);
    }
}
`), cbackend.Options{})
	driver := `
#include <stdio.h>
#include <stdint.h>
typedef int32_t esp_val;
extern esp_val esp_get_elem(esp_val, int);
extern int esp_array_len(esp_val);
static int step = 0;
int userReqIsReady(void) {
    if (step == 0) return 2; /* Update */
    if (step == 1) return 1; /* Send */
    return 0;
}
void userReqUpdate(int32_t *vAddr, int32_t *pAddr) { *vAddr = 3; *pAddr = 777; step++; }
void userReqSend(int32_t *dest, int32_t *vAddr, int32_t *size) {
    *dest = 9; *vAddr = 3; *size = 4; step++;
}
int esp_ext_SM2C_accept(void) { return 1; }
void esp_ext_SM2C_put(esp_val v) {
    esp_val dest = esp_get_elem(v, 0);
    esp_val data = esp_get_elem(v, 1);
    int i, n = esp_array_len(data);
    printf("dest=%d n=%d", (int)dest, n);
    for (i = 0; i < n; i++) printf(" %d", (int)esp_get_elem(data, i));
    printf("\n");
}
`
	out := buildAndRun(t, genC, driver)
	want := "dest=9 n=4 777 777 777 777\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestGeneratedCNoLeaksHook(t *testing.T) {
	// The generated heap exposes esp_live_count; after the Appendix B run
	// only the page table's array must stay live. Verified via a driver
	// that prints the count at idle.
	genC := cbackend.Generate(compileSrc(t, add5Src), cbackend.Options{MaxObjects: 16})
	if !strings.Contains(genC, "esp_live_count") {
		t.Error("generated C has no live-object accounting")
	}
	if !strings.Contains(genC, "#define ESP_MAX_OBJECTS 16") {
		t.Error("MaxObjects option ignored")
	}
}

func TestCompileAndRunUnionAltDispatch(t *testing.T) {
	// An alt whose send arms carry different union tags must route each
	// to the right receiver — the static compat tables make the arm
	// readiness check exact.
	genC := cbackend.Generate(compileSrc(t, `
type uT = union of { ping: int, pong: int }
channel c: uT
channel tick: int external writer
channel outA: int external reader
channel outB: int external reader
interface ti( out tick) { T( $v) }
process chooser {
    $n = 0;
    while (n < 6) {
        in( tick, $v);
        alt {
            case( n % 2 == 0, out( c, { ping |> n})) { skip; }
            case( n % 2 == 1, out( c, { pong |> n})) { skip; }
        }
        n = n + 1;
    }
}
process pinger {
    while (true) { in( c, { ping |> $x}); out( outA, x); }
}
process ponger {
    while (true) { in( c, { pong |> $x}); out( outB, x); }
}
`), cbackend.Options{})
	driver := `
#include <stdio.h>
#include <stdint.h>
typedef int32_t esp_val;
static int n = 0;
int tiIsReady(void) { return n < 6 ? 1 : 0; }
void tiT(int32_t *v) { *v = n++; }
int esp_ext_outA_accept(void) { return 1; }
void esp_ext_outA_put(esp_val v) { printf("A%d\n", (int)v); }
int esp_ext_outB_accept(void) { return 1; }
void esp_ext_outB_put(esp_val v) { printf("B%d\n", (int)v); }
`
	out := buildAndRun(t, genC, driver)
	want := "A0\nB1\nA2\nB3\nA4\nB5\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}
