package mc

import "testing"

// cloneTrace must return a slice that shares no storage with the input:
// the checker keeps mutating its working trace while backtracking, and a
// Violation's trace must not change under it.
func TestCloneTraceNoAliasing(t *testing.T) {
	orig := []TraceStep{{Desc: "a"}, {Desc: "b"}}
	got := cloneTrace(orig, TraceStep{Desc: "c"})
	if len(got) != 3 || got[0].Desc != "a" || got[2].Desc != "c" {
		t.Fatalf("cloneTrace = %v", got)
	}
	// Mutations through the returned slice must not reach the original.
	got[0].Desc = "mutated"
	got = append(got, TraceStep{Desc: "d"})
	_ = got
	if orig[0].Desc != "a" || len(orig) != 2 {
		t.Errorf("original trace corrupted: %v", orig)
	}
	// And the reverse: backtracking overwrites the working trace in place;
	// the clone must keep its values.
	clone := cloneTrace(orig, TraceStep{Desc: "c"})
	orig[1].Desc = "overwritten"
	if clone[1].Desc != "b" {
		t.Errorf("clone aliases the working trace: %v", clone)
	}
}
