package mc

import (
	"fmt"

	"esplang/internal/ir"
	"esplang/internal/vm"
)

// Non-progress cycle detection — SPIN's liveness check, standing in for
// the paper's "more complex properties, like absence of starvation, can
// be specified using LTL" (§5.1).
//
// The user designates progress channels; a communication on one of them
// is a progress step (SPIN's progress labels). A reachable cycle composed
// entirely of non-progress transitions means the system can run forever
// without ever making progress — starvation.
//
// The search builds the full state graph (exhaustive mode), then finds a
// cycle in the subgraph of non-progress edges via an iterative DFS.

// CheckProgress explores the state space exhaustively and then looks for
// a non-progress cycle. progressChannels name the channels whose
// communications count as progress.
func CheckProgress(prog *ir.Program, progressChannels []string, opts Options) *Result {
	opts.fill()
	res := &Result{Mode: Exhaustive}

	progressChan := map[int]bool{}
	for _, name := range progressChannels {
		ch := prog.ChannelByName(name)
		if ch == nil {
			res.Violation = &Violation{Fault: &vm.Fault{
				Kind: vm.FaultInternal,
				Msg:  fmt.Sprintf("no channel %q for progress labeling", name),
			}}
			return res
		}
		progressChan[ch.ID] = true
	}

	// Phase 1: enumerate the reachable state graph.
	type edge struct {
		to       int
		progress bool
		desc     string
	}
	// States are kept as compact snapshots and replayed into one scratch
	// machine, so graph construction doesn't retain a full machine clone
	// per state.
	var (
		snaps []*vm.SavedState
		idOf  = map[string]int{}
		edges [][]edge
	)

	m := newMachine(prog, opts)
	m.Settle()
	if f := m.Fault(); f != nil {
		res.Violation = &Violation{Fault: f}
		return res
	}
	idOf[m.EncodeState()] = 0
	snaps = append(snaps, m.Save(nil))
	edges = append(edges, nil)

	for i := 0; i < len(snaps) && len(snaps) < opts.MaxStates; i++ {
		m.RestoreState(snaps[i])
		for _, c := range m.EnabledComms() {
			m.RestoreState(snaps[i]) // each firing starts from state i
			desc := newStep(m, prog, c).Desc
			m.FireComm(c)
			res.Transitions++
			if f := m.Fault(); f != nil {
				res.Violation = &Violation{Fault: f}
				res.States = len(snaps)
				return res
			}
			key := m.EncodeState()
			j, ok := idOf[key]
			if !ok {
				j = len(snaps)
				idOf[key] = j
				snaps = append(snaps, m.Save(nil))
				edges = append(edges, nil)
			}
			edges[i] = append(edges[i], edge{to: j, progress: progressChan[c.Chan], desc: desc})
		}
	}
	res.States = len(snaps)
	if len(snaps) >= opts.MaxStates {
		res.Truncated = true
	}

	// Phase 2: a cycle using only non-progress edges. Iterative DFS with
	// colors: 0 unvisited, 1 on stack, 2 done.
	color := make([]uint8, len(snaps))
	parent := make([]int, len(snaps))
	parentEdge := make([]string, len(snaps))
	for i := range parent {
		parent[i] = -1
	}
	var cycleAt = -1
	var cycleTo = -1
	var cycleDesc string

	var stack []int
	push := func(s int) { color[s] = 1; stack = append(stack, s) }
	for root := 0; root < len(snaps) && cycleAt < 0; root++ {
		if color[root] != 0 {
			continue
		}
		push(root)
		// Explicit DFS: track per-node next-edge index.
		next := map[int]int{}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			advanced := false
			for next[s] < len(edges[s]) {
				e := edges[s][next[s]]
				next[s]++
				if e.progress {
					continue // progress edges break non-progress cycles
				}
				switch color[e.to] {
				case 0:
					parent[e.to] = s
					parentEdge[e.to] = e.desc
					push(e.to)
					advanced = true
				case 1:
					cycleAt = e.to
					cycleTo = s
					cycleDesc = e.desc
				}
				if advanced || cycleAt >= 0 {
					break
				}
			}
			if cycleAt >= 0 {
				break
			}
			if !advanced {
				color[s] = 2
				stack = stack[:len(stack)-1]
			}
		}
	}

	if cycleAt >= 0 {
		// Reconstruct the cycle portion from the DFS parents.
		var steps []TraceStep
		for s := cycleTo; s != cycleAt && s >= 0; s = parent[s] {
			steps = append(steps, TraceStep{Desc: parentEdge[s]})
		}
		// Reverse into forward order and close the loop.
		for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
			steps[i], steps[j] = steps[j], steps[i]
		}
		steps = append(steps, TraceStep{Desc: cycleDesc + "  (closes the cycle)"})
		res.Violation = &Violation{
			Fault: &vm.Fault{Kind: vm.FaultAssert,
				Msg: "non-progress cycle: the system can run forever without progress (starvation)"},
			Trace: steps,
		}
	}
	return res
}
