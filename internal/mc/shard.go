package mc

import (
	"sync"
	"sync/atomic"
)

// Visited-state structures for the frontier search. Both implementations
// are sharded: a shard is selected by the top bits of the key's hash (a
// hash prefix), and each shard has its own mutex, so the visited set is
// not the serialization point when many workers discover states at once.

const (
	shardBits = 6
	numShards = 1 << shardBits

	fnvPrime = 1099511628211
	// hashSeedA is the standard FNV-1a 64-bit offset basis; hashSeedB is
	// an unrelated odd constant (the 64-bit golden ratio). Seeding the
	// same byte walk at two unrelated points, then finalizing, yields two
	// hashes that behave independently — see bitPositions.
	hashSeedA = 14695981039346656037
	hashSeedB = 0x9e3779b97f4a7c15
)

// hashKey is seeded FNV-1a over key, finished with a splitmix64-style
// avalanche so every output bit depends on every input byte. The
// finalizer matters: raw FNV values of the same key under related
// variants agree in much of their structure, which is exactly the
// correlation that degraded the two-bit bit-state scheme toward a
// single-bit one (each state effectively guarded by one bit instead of
// two, inflating false "visited" hits).
func hashKey(seed uint64, key string) uint64 {
	h := seed
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// bitPositions derives the two bit-state positions for a key from two
// independently seeded hashes (SPIN's two-bit scheme, §5.1). The previous
// implementation derived both positions from FNV-1a and FNV-1 of the same
// key, which are strongly correlated and could collapse to the same slot;
// shard_test.go holds the independence regression.
func bitPositions(key string, mask uint64) (uint64, uint64) {
	return hashKey(hashSeedA, key) & mask, hashKey(hashSeedB, key) & mask
}

// shardIndex picks a shard by hash prefix (the hash's top bits — disjoint
// from the low bits bitPositions masks out).
func shardIndex(key string) int {
	return int(hashKey(hashSeedA, key) >> (64 - shardBits))
}

// shardedSet is the visited-state structure shared by the search workers.
// TryAdd atomically tests and records a key, returning true only the
// first time the key is seen: the check and the insert must be one
// operation, or two workers reaching the same state simultaneously would
// both count and expand it.
//
// MarkClosed/Closed support the partial-order reduction's cycle proviso
// (see expand): a state is "closed" once a worker has started expanding
// it. An ample set may defer transitions as long as one of its successor
// states is not closed yet — that successor's own (strictly later)
// expansion keeps the deferred transitions reachable. Implementations
// without per-key storage answer Closed conservatively with true, which
// degrades the proviso to "some successor is brand new" — less
// reduction, still sound.
type shardedSet interface {
	TryAdd(key string) bool
	MarkClosed(key string)
	Closed(key string) bool
	MemBytes() int64
}

// shardedMapSet is the exact (Exhaustive-mode) visited set. The value
// records whether the state's expansion has started (the reduction's
// closed flag); plain searches never read it.
type shardedMapSet struct {
	shards [numShards]mapShard
}

type mapShard struct {
	mu    sync.Mutex
	m     map[string]bool
	bytes int64
}

func newShardedMapSet() *shardedMapSet {
	s := &shardedMapSet{}
	for i := range s.shards {
		s.shards[i].m = make(map[string]bool)
	}
	return s
}

func (s *shardedMapSet) TryAdd(key string) bool {
	sh := &s.shards[shardIndex(key)]
	sh.mu.Lock()
	if _, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		return false
	}
	sh.m[key] = false
	sh.bytes += int64(len(key)) + 16
	sh.mu.Unlock()
	return true
}

func (s *shardedMapSet) MarkClosed(key string) {
	sh := &s.shards[shardIndex(key)]
	sh.mu.Lock()
	sh.m[key] = true
	sh.mu.Unlock()
}

func (s *shardedMapSet) Closed(key string) bool {
	sh := &s.shards[shardIndex(key)]
	sh.mu.Lock()
	closed := sh.m[key]
	sh.mu.Unlock()
	return closed
}

func (s *shardedMapSet) MemBytes() int64 {
	var total int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += sh.bytes
		sh.mu.Unlock()
	}
	return total
}

// shardedBitSet is SPIN's bit-state hashing (§5.1) made safe for
// concurrent workers: each state sets two hash-derived bits, and a state
// is "visited" when both are already set. False positives (missed states)
// are possible — the search is partial but uses constant memory.
//
// The two bit positions of one key can land in words "belonging" to
// different shards, so the words themselves are only ever touched with
// atomic operations; the per-shard mutex — selected by the key's hash
// prefix, like the map shards — serializes concurrent TryAdds of the same
// key so exactly one worker wins a newly seen state.
type shardedBitSet struct {
	words []uint64
	mask  uint64
	locks [numShards]sync.Mutex
}

func newShardedBitSet(log2bits uint) *shardedBitSet {
	if log2bits < 6 {
		log2bits = 6 // at least one word
	}
	n := uint64(1) << log2bits
	return &shardedBitSet{words: make([]uint64, n/64), mask: n - 1}
}

func (s *shardedBitSet) TryAdd(key string) bool {
	a, b := bitPositions(key, s.mask)
	l := &s.locks[shardIndex(key)]
	l.Lock()
	hadA := s.setBit(a)
	hadB := s.setBit(b)
	l.Unlock()
	return !(hadA && hadB)
}

// setBit atomically sets bit pos and reports whether it was already set.
func (s *shardedBitSet) setBit(pos uint64) bool {
	w := &s.words[pos/64]
	bit := uint64(1) << (pos % 64)
	for {
		old := atomic.LoadUint64(w)
		if old&bit != 0 {
			return true
		}
		if atomic.CompareAndSwapUint64(w, old, old|bit) {
			return false
		}
	}
}

// MarkClosed is a no-op: bit-state hashing stores no per-key flag.
func (s *shardedBitSet) MarkClosed(string) {}

// Closed answers true conservatively (see the interface comment): the
// reduction's proviso then accepts only brand-new successors as
// deferral witnesses.
func (s *shardedBitSet) Closed(string) bool { return true }

func (s *shardedBitSet) MemBytes() int64 { return int64(len(s.words) * 8) }
