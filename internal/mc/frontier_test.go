package mc_test

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"esplang/internal/mc"
	"esplang/internal/parser"
	"esplang/internal/vm"

	"esplang/internal/check"
	"esplang/internal/compile"
	"esplang/internal/ir"
)

func compileFileSrc(t *testing.T, path string) *ir.Program {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	tree, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	info, err := check.Check(tree)
	if err != nil {
		t.Fatalf("check %s: %v", path, err)
	}
	return compile.Program(tree, info)
}

// verdictKind flattens a result to a comparable verdict.
func verdictKind(res *mc.Result) string {
	switch {
	case res.Violation == nil:
		return "pass"
	case res.Violation.Deadlock:
		return "deadlock"
	default:
		return "fault:" + res.Violation.Fault.Kind.String()
	}
}

var workerCounts = []int{1, 2, 4, 7, runtime.GOMAXPROCS(0)}

// TestParallelSequentialEquivalenceTestdata: on every testdata sample,
// every worker count produces the same violation verdict and the same
// state count as the deterministic Workers: 1 search.
func TestParallelSequentialEquivalenceTestdata(t *testing.T) {
	files, err := filepath.Glob("../../testdata/*.esp")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			prog := compileFileSrc(t, f)
			// Permissive end-state policy: the samples with external
			// channels park on them, and a full (unaborted) search is what
			// makes the state count comparable.
			base := mc.Options{Workers: 1, EndRecvOK: true, NoDeadlockCheck: true, MaxStates: 50_000}
			want := mc.Check(prog, base)
			for _, w := range workerCounts {
				opts := base
				opts.Workers = w
				got := mc.Check(prog, opts)
				if verdictKind(got) != verdictKind(want) {
					t.Errorf("workers=%d verdict %q, want %q", w, verdictKind(got), verdictKind(want))
				}
				if got.States != want.States {
					t.Errorf("workers=%d states %d, want %d", w, got.States, want.States)
				}
				if got.Truncated != want.Truncated {
					t.Errorf("workers=%d truncated %v, want %v", w, got.Truncated, want.Truncated)
				}
			}
		})
	}
}

// TestParallelEquivalenceViolations: programs with a violation yield the
// same verdict at every worker count, and the returned trace replays to
// the same fault on a fresh machine.
func TestParallelEquivalenceViolations(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"assert", `
channel c: int
process producer { $i = 0; while (i < 20) { out( c, i); i = i + 1; } }
process consumer { $n = 0; while (true) { in( c, $v); assert( v < 17); n = n + 1; } }
`},
		{"deadlock", `
channel a: int
channel b: int
channel c: int
process p { out( c, 1); in( a, $x); }
process q { in( c, $v); in( b, $y); }
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog := compileSrc(t, tc.src)
			want := mc.Check(prog, mc.Options{Workers: 1})
			if want.Violation == nil {
				t.Fatal("expected a violation")
			}
			for _, w := range workerCounts {
				got := mc.Check(prog, mc.Options{Workers: w})
				if verdictKind(got) != verdictKind(want) {
					t.Fatalf("workers=%d verdict %q, want %q", w, verdictKind(got), verdictKind(want))
				}
				if len(got.Violation.Trace) == 0 {
					t.Fatalf("workers=%d returned no counterexample trace", w)
				}
				// The trace must replay: fire the recorded choices on a
				// fresh machine and land in the same kind of trouble.
				m := vm.New(prog, vm.Config{Manual: true})
				m.Cost = vm.ZeroCostModel()
				m.Settle()
				var choices []vm.CommChoice
				for _, st := range got.Violation.Trace {
					choices = append(choices, st.Choice)
				}
				f := m.ReplayComms(choices)
				if got.Violation.Deadlock {
					if f != nil || !m.Deadlocked() {
						t.Errorf("workers=%d deadlock trace does not replay to a deadlock (fault %v)", w, f)
					}
				} else if f == nil || f.Kind != got.Violation.Fault.Kind {
					t.Errorf("workers=%d trace replays to %v, want fault kind %v", w, f, got.Violation.Fault.Kind)
				}
			}
		})
	}
}

// TestWorkersOneDeterministic: two Workers: 1 runs agree on every counter
// and on the counterexample, bit for bit.
func TestWorkersOneDeterministic(t *testing.T) {
	src := `
channel c: int
channel d: int
process p1 { $i = 0; while (i < 6) { out( c, i); i = i + 1; } }
process p2 { $n = 0; while (n < 6) { in( c, $v); out( d, v); n = n + 1; } }
process p3 { $n = 0; while (n < 6) { in( d, $v); assert( v < 5); n = n + 1; } }
`
	a := mc.Check(compileSrc(t, src), mc.Options{Workers: 1})
	b := mc.Check(compileSrc(t, src), mc.Options{Workers: 1})
	if a.States != b.States || a.Transitions != b.Transitions || a.MaxDepth != b.MaxDepth {
		t.Fatalf("counters differ: %v vs %v", a, b)
	}
	if a.Violation == nil || b.Violation == nil {
		t.Fatal("expected violations")
	}
	if len(a.Violation.Trace) != len(b.Violation.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.Violation.Trace), len(b.Violation.Trace))
	}
	for i := range a.Violation.Trace {
		if a.Violation.Trace[i] != b.Violation.Trace[i] {
			t.Errorf("trace step %d differs: %+v vs %+v", i, a.Violation.Trace[i], b.Violation.Trace[i])
		}
	}
}

// TestWorkersDefaultIsAllCores: Workers: 0 resolves to GOMAXPROCS.
func TestWorkersDefaultIsAllCores(t *testing.T) {
	prog := compileSrc(t, `
channel c: int
process p { out( c, 1); }
process q { in( c, $v); }
`)
	res := mc.Check(prog, mc.Options{})
	if res.Workers != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers = %d, want GOMAXPROCS = %d", res.Workers, runtime.GOMAXPROCS(0))
	}
}

// TestTruncationStopsPromptly: once the state bound is reached the search
// shuts down instead of continuing to fire transitions into states it
// will never record. The program below branches 3 ways at every state, so
// the old behavior (finish every started level) would burn far more
// transitions than states.
func TestTruncationStopsPromptly(t *testing.T) {
	prog := compileSrc(t, `
channel c: int
process counter {
    $n = 0;
    while (true) {
        alt {
            case( out( c, 3*n)) { skip; }
            case( out( c, 3*n + 1)) { skip; }
            case( out( c, 3*n + 2)) { skip; }
        }
        n = n + 1;
    }
}
process sink {
    $sum = 0;
    while (true) { in( c, $v); sum = sum + v; }
}
`)
	const bound = 300
	res := mc.Check(prog, mc.Options{Workers: 1, MaxStates: bound})
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	if !res.Truncated {
		t.Fatal("search not marked truncated")
	}
	if res.States != bound {
		t.Errorf("explored %d states, bound was %d", res.States, bound)
	}
	// Every expansion fires at most the branching factor (3) per state,
	// and the search must stop within one expansion of hitting the bound.
	if maxT := 3*bound + 16; res.Transitions > maxT {
		t.Errorf("%d transitions after a %d-state bound (want ≤ %d): search kept running after truncation",
			res.Transitions, bound, maxT)
	}
	// Parallel truncation reaches exactly the same count.
	for _, w := range []int{2, 4} {
		r := mc.Check(prog, mc.Options{Workers: w, MaxStates: bound})
		if r.States != bound || !r.Truncated {
			t.Errorf("workers=%d states=%d truncated=%v, want %d/true", w, r.States, r.Truncated, bound)
		}
	}
}

// TestDepthSemanticsUnified: MaxDepth counts transitions from the initial
// state, identically in every mode.
func TestDepthSemanticsUnified(t *testing.T) {
	// A linear chain of exactly 3 transitions.
	chain := `
channel c: int
process p { out( c, 1); out( c, 2); out( c, 3); }
process q { in( c, $a); in( c, $b); in( c, $d); }
`
	res := mc.Check(compileSrc(t, chain), mc.Options{Workers: 1})
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	if res.States != 4 || res.MaxDepth != 3 {
		t.Errorf("chain: states=%d depth=%d, want 4 states at depth 3", res.States, res.MaxDepth)
	}

	sim := mc.Check(compileSrc(t, chain), mc.Options{Mode: mc.Simulation, SimRuns: 3, Seed: 1})
	if sim.MaxDepth != 3 {
		t.Errorf("simulation depth=%d, want 3 (same unit as exhaustive)", sim.MaxDepth)
	}

	// A root state that is never extended reports depth 0.
	root := mc.Check(compileSrc(t, `process p { skip; }`), mc.Options{Workers: 1})
	if root.Violation != nil {
		t.Fatalf("unexpected violation: %v", root.Violation)
	}
	if root.States != 1 || root.MaxDepth != 0 {
		t.Errorf("root-only: states=%d depth=%d, want 1 state at depth 0", root.States, root.MaxDepth)
	}
}

// TestMaxDepthBoundTruncates: a depth bound truncates the search at that
// many transitions from the initial state.
func TestMaxDepthBoundTruncates(t *testing.T) {
	prog := compileSrc(t, `
channel c: int
process counter {
    $n = 0;
    while (true) { out( c, n); n = n + 1; }
}
process sink { while (true) { in( c, $v); } }
`)
	res := mc.Check(prog, mc.Options{Workers: 1, MaxDepth: 10})
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	if !res.Truncated {
		t.Error("depth-bounded search not marked truncated")
	}
	if res.MaxDepth != 10 {
		t.Errorf("MaxDepth = %d, want exactly the bound 10", res.MaxDepth)
	}
}

// ---------------------------------------------------------------------------
// Options interactions (§5.1 end-state policy, step budget).

// TestEndRecvOKMasksMutualReceiveWait: two processes each waiting to
// receive on a channel nobody sends on is a genuine deadlock — and
// EndRecvOK deliberately masks it (the documented trade-off of the
// firmware-at-rest convention).
func TestEndRecvOKMasksMutualReceiveWait(t *testing.T) {
	src := `
channel a: int
channel b: int
process p { in( a, $x); }
process q { in( b, $y); }
`
	strict := mc.Check(compileSrc(t, src), mc.Options{Workers: 1})
	if strict.Violation == nil || !strict.Violation.Deadlock {
		t.Fatalf("mutual receive-wait not reported without EndRecvOK: %v", strict.Violation)
	}
	lax := mc.Check(compileSrc(t, src), mc.Options{Workers: 1, EndRecvOK: true})
	if lax.Violation != nil {
		t.Fatalf("EndRecvOK should mask the receive-wait, got %v", lax.Violation)
	}
}

// TestNoDeadlockCheckSuppressesDeadlock: with the check disabled a stuck
// state is not a violation, and the search still terminates and counts it.
func TestNoDeadlockCheckSuppressesDeadlock(t *testing.T) {
	src := `
channel a: int
channel b: int
process p { in( a, $x); out( b, 1); }
process q { in( b, $y); out( a, 2); }
`
	res := mc.Check(compileSrc(t, src), mc.Options{Workers: 1, NoDeadlockCheck: true})
	if res.Violation != nil {
		t.Fatalf("deadlock reported despite NoDeadlockCheck: %v", res.Violation)
	}
	if res.States != 1 {
		t.Errorf("states = %d, want 1 (the stuck root)", res.States)
	}
}

// TestStepBudgetFaultSurfacesAsViolation: a runaway local loop reached
// through a transition surfaces as a step-budget fault with the trace
// that provoked it.
func TestStepBudgetFaultSurfacesAsViolation(t *testing.T) {
	prog := compileSrc(t, `
channel c: int
process trigger { out( c, 1); }
process runaway {
    in( c, $v);
    while (v > 0) { v = v + 1; } // never blocks again
}
`)
	res := mc.Check(prog, mc.Options{Workers: 1, StepBudget: 2000})
	if res.Violation == nil || res.Violation.Fault == nil {
		t.Fatalf("step-budget fault not reported: %+v", res)
	}
	if res.Violation.Fault.Kind != vm.FaultStep {
		t.Errorf("fault kind %v, want FaultStep", res.Violation.Fault.Kind)
	}
	if len(res.Violation.Trace) != 1 {
		t.Errorf("trace has %d steps, want the single triggering communication", len(res.Violation.Trace))
	}
}

// TestBitstateParallelFindsBug: the sharded bit-state set still finds
// violations under a parallel search.
func TestBitstateParallelFindsBug(t *testing.T) {
	prog := compileSrc(t, `
channel c: int
process producer { $i = 0; while (i < 10) { out( c, i); i = i + 1; } }
process consumer { $n = 0; while (true) { in( c, $v); assert( v < 8); n = n + 1; } }
`)
	for _, w := range []int{1, 4} {
		res := mc.Check(prog, mc.Options{Mode: mc.BitState, Workers: w})
		if res.Violation == nil || res.Violation.Fault == nil || res.Violation.Fault.Kind != vm.FaultAssert {
			t.Errorf("workers=%d bitstate missed the assertion: %v", w, res.Violation)
		}
	}
}
