package mc

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// hashCorpus builds a deterministic corpus shaped like encoded machine
// states: long runs of zero bytes (uvarint zeros for counters, status
// bytes) interleaved with small counters that vary between states.
func hashCorpus() []string {
	var keys []string
	// All-zero keys of every length: the regression family. The previous
	// scheme derived the two bit positions from FNV-1a and FNV-1 of the
	// same key; on zero bytes the two variants' multiply and xor steps
	// commute, so the hashes were *identical* and the second position a
	// pure function of the first — SPIN's two-bit scheme collapsed to
	// single-bit hashing.
	for n := 1; n <= 256; n++ {
		keys = append(keys, string(make([]byte, n)))
	}
	rng := rand.New(rand.NewSource(7))
	prefix := make([]byte, 24)
	for i := range prefix {
		prefix[i] = byte(rng.Intn(6))
	}
	for i := 0; i < 30000; i++ {
		buf := append([]byte(nil), prefix...)
		buf = binary.AppendUvarint(buf, uint64(i))
		buf = binary.AppendUvarint(buf, uint64(i%7))
		keys = append(keys, string(buf))
	}
	return keys
}

// TestBitPositionHashesIndependentlySeeded: the two underlying 64-bit
// hashes must never coincide on the corpus. The old FNV-1a/FNV-1 pairing
// failed this on every all-zero key.
func TestBitPositionHashesIndependentlySeeded(t *testing.T) {
	for _, k := range hashCorpus() {
		if hashKey(hashSeedA, k) == hashKey(hashSeedB, k) {
			t.Fatalf("seeded hashes coincide on %q (len %d)", k, len(k))
		}
	}
}

// TestBitPositionsStatisticallyIndependent: across the corpus the two
// positions behave like independent uniform draws — the equal-position
// rate and the conditional collision rate (given a collision in the
// first position, how often the second collides too) stay near 1/m.
func TestBitPositionsStatisticallyIndependent(t *testing.T) {
	keys := hashCorpus()
	const bits = 10
	mask := uint64(1)<<bits - 1
	m := float64(mask + 1)

	same := 0
	byA := make(map[uint64][]uint64)
	for _, k := range keys {
		a, b := bitPositions(k, mask)
		if a == b {
			same++
		}
		byA[a] = append(byA[a], b)
	}
	// Equal positions: expected N/m ≈ 29.6; allow 4x before failing.
	if max := 4 * float64(len(keys)) / m; float64(same) > max {
		t.Errorf("positions equal for %d of %d keys (expected ≈%.0f, allowed %.0f)",
			same, len(keys), float64(len(keys))/m, max)
	}
	// Conditional collisions: for pairs colliding in position a, position
	// b must still collide at ≈1/m, not systematically.
	pairs, coll := 0, 0
	for _, bs := range byA {
		for i := 0; i < len(bs); i++ {
			for j := i + 1; j < len(bs); j++ {
				pairs++
				if bs[i] == bs[j] {
					coll++
				}
			}
		}
	}
	if pairs == 0 {
		t.Fatal("corpus produced no first-position collisions; enlarge it")
	}
	if max := 4 * float64(pairs) / m; float64(coll) > max {
		t.Errorf("of %d first-position collisions, %d also collide in the second (expected ≈%.0f, allowed %.0f)",
			pairs, coll, float64(pairs)/m, max)
	}
	// And they must depend on the key at all.
	if len(byA) < 100 {
		t.Errorf("first position takes only %d values over the corpus", len(byA))
	}
}

func TestHashKeyDeterministic(t *testing.T) {
	for _, k := range []string{"", "a", "\x00\x00", "state"} {
		if hashKey(hashSeedA, k) != hashKey(hashSeedA, k) {
			t.Fatalf("hashKey not deterministic on %q", k)
		}
	}
}

// TestShardedMapSetTryAddOnce: hammered from many goroutines, every key
// is admitted exactly once — the property the parallel search's state
// count rests on.
func TestShardedMapSetTryAddOnce(t *testing.T) {
	const keys, goroutines = 2000, 8
	s := newShardedMapSet()
	var wg sync.WaitGroup
	wins := make([]int64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				if s.TryAdd(fmt.Sprintf("key-%d", i)) {
					wins[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, w := range wins {
		total += w
	}
	if total != keys {
		t.Errorf("%d TryAdd wins for %d distinct keys", total, keys)
	}
	if s.MemBytes() == 0 {
		t.Error("MemBytes = 0 after inserts")
	}
}

// TestShardedBitSetTryAddOnce: same single-admission guarantee for the
// bit-state set (within its false-positive tolerance: a key may lose to
// a hash collision, but never win twice).
func TestShardedBitSetTryAddOnce(t *testing.T) {
	const keys, goroutines = 2000, 8
	s := newShardedBitSet(22) // large enough that collisions are unlikely
	var wg sync.WaitGroup
	wins := make([]int64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				if s.TryAdd(fmt.Sprintf("key-%d", i)) {
					wins[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, w := range wins {
		total += w
	}
	if total > keys {
		t.Errorf("%d TryAdd wins for %d distinct keys: some key won twice", total, keys)
	}
	if total < keys-keys/10 {
		t.Errorf("only %d of %d keys admitted: bit array too collision-prone", total, keys)
	}
}

func TestShardedBitSetMemBytes(t *testing.T) {
	if got := newShardedBitSet(16).MemBytes(); got != 1<<16/8 {
		t.Errorf("MemBytes = %d, want %d", got, 1<<16/8)
	}
}
