// Package mc is an explicit-state model checker for compiled ESP
// programs — the repository's stand-in for SPIN (§5 of the paper).
//
// Like SPIN it is on-the-fly: states are generated during the search, and
// violations are reported with a counterexample trace. It offers SPIN's
// three exploration modes (§5.1): exhaustive search over a visited-state
// set, bit-state hashing for large state spaces, and random simulation.
//
// A state is a quiescent machine: every process parked at a blocking
// point. A transition is one communication (rendezvous pair, or alt arm
// commitment) followed by the deterministic local execution it enables —
// the same merging of deterministic steps that keeps the paper's state
// spaces small (2251 states for the largest VMMC process, §5.3).
//
// The properties checked are the paper's: assertions, absence of
// deadlock, and per-process memory safety — use after free, double free,
// negative reference counts, and leaks via objectId exhaustion (§5.2).
//
// Exhaustive and BitState searches run as a parallel frontier search over
// a worker pool (Options.Workers); see frontier.go. Workers: 1 is a fully
// deterministic breadth-first search.
package mc

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"esplang/internal/ir"
	"esplang/internal/obs"
	"esplang/internal/token"
	"esplang/internal/vm"
)

// Mode selects the exploration strategy.
type Mode int

// Exploration modes (§5.1).
const (
	Exhaustive Mode = iota // full search with a visited-state set
	BitState               // partial search, visited set as a Bloom-style bit array
	Simulation             // random walks
)

func (m Mode) String() string {
	switch m {
	case Exhaustive:
		return "exhaustive"
	case BitState:
		return "bitstate"
	case Simulation:
		return "simulation"
	}
	return "?"
}

// Reduction selects the partial-order reduction applied during
// Exhaustive and BitState searches.
type Reduction int

// Reduction modes.
const (
	// NoReduction explores every enabled transition of every state.
	NoReduction Reduction = iota
	// AmpleSets expands, at each state, a provably sufficient subset of
	// the enabled communications (an ample set) computed from the static
	// independence table (ir.Independence): a closed group of processes
	// whose transitions commute with everything outside the group, with
	// the standard cycle-proviso fallback to full expansion when an ample
	// step discovers no new state. Verdicts — violation kind, fault
	// location, deadlock — are preserved; state and transition counts are
	// typically much smaller, and the counterexample trace may take a
	// different (equivalent) interleaving than the full search's.
	// Simulation mode ignores the setting.
	AmpleSets
)

func (r Reduction) String() string {
	if r == AmpleSets {
		return "ample-sets"
	}
	return "none"
}

// PORStats reports what the ample-set reduction did during a search.
type PORStats struct {
	// AmpleStates counts expanded states where a proper ample subset was
	// found; FullStates counts states expanded in full (no valid ample
	// set existed).
	AmpleStates int64
	FullStates  int64
	// ProvisoFallbacks counts ample expansions that reverted to full
	// expansion because every ample successor was already visited (the
	// cycle proviso: deferred transitions must not be ignored forever
	// around a cycle).
	ProvisoFallbacks int64
	// DeferredTransitions counts enabled communications the reduction did
	// not fire — an upper bound on the direct successor work avoided.
	DeferredTransitions int64
}

// HitRate is the fraction of expanded states that used a proper ample
// subset (0 when nothing was expanded).
func (p *PORStats) HitRate() float64 {
	total := p.AmpleStates + p.FullStates
	if total == 0 {
		return 0
	}
	return float64(p.AmpleStates) / float64(total)
}

// Options configures a check.
type Options struct {
	Mode Mode
	// Workers is the number of parallel search workers for Exhaustive and
	// BitState modes (0 = GOMAXPROCS). Workers: 1 is a fully deterministic
	// sequential breadth-first search; any worker count produces the same
	// violation verdict and state count, but with several workers the
	// specific counterexample returned may vary between runs when the
	// program has more than one violation. Simulation mode is always
	// single-threaded (determinism comes from Seed).
	//
	// With Reduction enabled the cycle-proviso decision reads the shared
	// visited set, so at Workers > 1 the explored state count may vary
	// slightly between runs (a lost race only causes an extra full
	// expansion — a superset of the reduced search, so verdicts are still
	// preserved). Workers: 1 with Reduction remains bit-for-bit
	// deterministic.
	Workers int
	// Reduction selects the partial-order reduction (default: none). The
	// AmpleSets mode uses the program's ir.Independence table, computing
	// it on demand when the program was not optimized.
	Reduction Reduction
	// MaxStates bounds the number of distinct states explored
	// (0 = 10 million).
	MaxStates int
	// MaxDepth bounds the search depth, in transitions from the initial
	// state (0 = 100000).
	MaxDepth int
	// BitstateBits is log2 of the bit array size for BitState mode
	// (0 = 24, i.e. 16M bits / 2 MB).
	BitstateBits uint
	// Seed and SimRuns configure Simulation mode (SimRuns 0 = 100).
	Seed    int64
	SimRuns int
	// MaxLiveObjects bounds the heap of every explored machine; exceeding
	// it is a leak violation (0 = 4096).
	MaxLiveObjects int
	// NoDeadlockCheck disables reporting of deadlocked states (useful
	// when a test driver legitimately stops feeding the system).
	NoDeadlockCheck bool
	// EndRecvOK treats states where every process is halted or blocked
	// waiting to receive as valid end states — the firmware-at-rest
	// convention, standing in for SPIN's end-state labels. Note that with
	// this option a mutual receive-wait goes unreported.
	EndRecvOK bool
	// StepBudget bounds deterministic execution between blocking points.
	StepBudget int64
	// Engine selects the VM interpreter the search executes with (zero
	// value: the fused engine). Verdicts, state counts, and traces are
	// engine-independent; the baseline engine exists for differential
	// testing.
	Engine vm.Engine
	// Progress, when non-nil, is called every ProgressInterval with a
	// snapshot of the search counters (from a dedicated sampler
	// goroutine), and once more with Final set just before Check returns.
	// Long searches stop being silent: espverify -progress surfaces this.
	Progress func(ProgressInfo)
	// ProgressInterval is the sampling period (0 = 2s).
	ProgressInterval time.Duration
	// Metrics, when non-nil, receives the same samples as gauges
	// (mc_states, mc_frontier, mc_states_per_sec, ...) plus an
	// mc_frontier_depth histogram.
	Metrics *obs.Metrics
}

// ProgressInfo is one periodic sample of a running search.
type ProgressInfo struct {
	States      int64 // distinct states admitted so far
	Transitions int64
	Frontier    int   // discovered states not yet expanded
	MaxDepth    int64 // deepest transition sequence seen so far
	MemBytes    int64 // visited-set memory
	Elapsed     time.Duration
	// StatesPerSec is the discovery rate since the previous sample (0 on
	// the first when no time has passed).
	StatesPerSec float64
	// MaxStates is the search's state bound, so progress consumers can
	// estimate how far a truncating run still has to go.
	MaxStates int
	// Final marks the last sample, taken after the workers stopped.
	Final bool
}

func (p ProgressInfo) String() string {
	tag := "progress"
	if p.Final {
		tag = "done"
	}
	s := fmt.Sprintf("%s: %d states, %d transitions, frontier %d, depth %d, %.0f states/s, %.1f MB, %v",
		tag, p.States, p.Transitions, p.Frontier, p.MaxDepth, p.StatesPerSec,
		float64(p.MemBytes)/(1024*1024), p.Elapsed.Round(time.Millisecond))
	if eta, ok := p.ETA(); ok {
		s += fmt.Sprintf(", eta %v to max-states", eta.Round(time.Second))
	}
	return s
}

// ETA estimates how long until the search hits MaxStates at the current
// discovery rate. It reports false on final samples, when no bound or
// rate is known, or when the bound is already reached — searches that
// finish early simply never hit it.
func (p ProgressInfo) ETA() (time.Duration, bool) {
	if p.Final || p.MaxStates <= 0 || p.StatesPerSec <= 0 {
		return 0, false
	}
	remaining := int64(p.MaxStates) - p.States
	if remaining <= 0 {
		return 0, false
	}
	return time.Duration(float64(remaining) / p.StatesPerSec * float64(time.Second)), true
}

func (o *Options) fill() {
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.MaxStates == 0 {
		o.MaxStates = 10_000_000
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 100_000
	}
	if o.BitstateBits == 0 {
		o.BitstateBits = 24
	}
	if o.SimRuns == 0 {
		o.SimRuns = 100
	}
	if o.MaxLiveObjects == 0 {
		o.MaxLiveObjects = 4096
	}
}

// TraceStep is one transition of a counterexample.
type TraceStep struct {
	Choice vm.CommChoice
	Desc   string
	// Pos is the source position of the sender's communication statement
	// (zero when unknown, e.g. steps synthesized by the progress search).
	Pos token.Pos
}

// Violation describes a property failure found during the search.
type Violation struct {
	// Fault is the runtime fault (assertion, memory safety, ...), nil for
	// deadlocks.
	Fault *vm.Fault
	// Deadlock is set when the violation is a stuck non-final state.
	Deadlock bool
	// Trace is the sequence of communications from the initial state.
	Trace []TraceStep
	// Postmortem is the flight-recorder dump of the counterexample
	// replay: the last events (rendezvous, context switches, allocs, the
	// fault) leading into the violation, in the obs text dump format.
	// Empty for violations found by modes that do not replay.
	Postmortem string
}

func (v *Violation) String() string {
	var b strings.Builder
	if v.Deadlock {
		b.WriteString("deadlock")
	} else if v.Fault != nil {
		b.WriteString(v.Fault.Error())
	}
	fmt.Fprintf(&b, " (after %d transitions)", len(v.Trace))
	return b.String()
}

// Result summarizes a check.
type Result struct {
	Violation   *Violation // nil = property holds (within the search bounds)
	States      int        // distinct states visited
	Transitions int
	// MaxDepth is the longest sequence of transitions from the initial
	// state encountered — the same unit in every mode (in Simulation mode
	// it is the longest walk). A search that never extends the initial
	// state reports 0.
	MaxDepth  int
	Truncated bool // bounds were hit; the search is partial
	Elapsed   time.Duration
	MemBytes  int64 // memory used by the visited-state structure
	Mode      Mode
	Workers   int // search workers actually used
	// POR carries the ample-set reduction counters; nil when the search
	// ran without reduction.
	POR *PORStats
}

func (r *Result) String() string {
	status := "pass"
	if r.Violation != nil {
		status = "FAIL: " + r.Violation.String()
	} else if r.Truncated {
		status = "pass (partial search)"
	}
	par := ""
	if r.Workers > 1 {
		par = fmt.Sprintf(", %d workers", r.Workers)
	}
	if r.POR != nil {
		par += ", por"
	}
	return fmt.Sprintf("%s — %d states, %d transitions, depth %d, %v, %.1f KB (%s mode%s)",
		status, r.States, r.Transitions, r.MaxDepth, r.Elapsed.Round(time.Millisecond),
		float64(r.MemBytes)/1024, r.Mode, par)
}

// Check explores the program's state space. The program must have no
// external channels with unbound sides playing a role: model-checked
// programs drive themselves (test drivers are ESP processes, the analogue
// of the paper's programmer-supplied test.SPIN).
func Check(prog *ir.Program, opts Options) *Result {
	opts.fill()
	start := time.Now()
	res := &Result{Mode: opts.Mode, Workers: opts.Workers}

	if opts.Mode == Simulation {
		res.Workers = 1
		simulate(prog, opts, res)
		// Simulation has no sampler goroutine; still deliver the final
		// snapshot so -progress callers always see a terminal sample.
		if opts.Progress != nil {
			opts.Progress(ProgressInfo{
				States:      int64(res.States),
				Transitions: int64(res.Transitions),
				MaxDepth:    int64(res.MaxDepth),
				Elapsed:     time.Since(start),
				Final:       true,
			})
		}
	} else {
		searchFrontier(prog, opts, res)
	}
	res.Elapsed = time.Since(start)
	return res
}

// stuck reports whether a quiescent state with no enabled communication
// is a deadlock violation under the configured end-state policy.
func stuck(m *vm.Machine, opts Options) bool {
	if opts.NoDeadlockCheck || m.AllHalted() {
		return false
	}
	if opts.EndRecvOK && m.AtRest() {
		return false
	}
	return true
}

func newMachine(prog *ir.Program, opts Options) *vm.Machine {
	m := vm.New(prog, vm.Config{
		Manual:         true,
		MaxLiveObjects: opts.MaxLiveObjects,
		StepBudget:     opts.StepBudget,
		Engine:         opts.Engine,
	})
	m.Cost = vm.ZeroCostModel()
	return m
}

// newStep builds the trace step for firing c from the quiescent state m:
// the source-level description plus the sender's blocked-instruction
// position. When the program carries a source path the location is
// appended to the description, so rendered counterexamples read
// "sender --chan--> receiver (file.esp:12)".
func newStep(m *vm.Machine, prog *ir.Program, c vm.CommChoice) TraceStep {
	st := TraceStep{Choice: c, Desc: describe(prog, c)}
	if c.Sender >= 0 && c.Sender < len(m.Procs) {
		p := m.Procs[c.Sender]
		if p.PC >= 0 && p.PC < len(p.Def.Code) {
			st.Pos = p.Def.Code[p.PC].Pos
		}
	}
	if prog.File != "" && st.Pos.IsValid() {
		st.Desc += fmt.Sprintf(" (%s:%d)", prog.File, st.Pos.Line)
	}
	return st
}

// cloneTrace returns a fresh slice holding trace plus step, so a
// Violation's trace never aliases the checker's working trace stack
// (which keeps mutating as the search backtracks).
func cloneTrace(trace []TraceStep, step TraceStep) []TraceStep {
	out := make([]TraceStep, len(trace)+1)
	copy(out, trace)
	out[len(trace)] = step
	return out
}

// describe renders a transition in terms of source names.
func describe(prog *ir.Program, c vm.CommChoice) string {
	chName := fmt.Sprintf("chan%d", c.Chan)
	if c.Chan < len(prog.Channels) {
		chName = prog.Channels[c.Chan].Name
	}
	pn := func(i int) string {
		if i < len(prog.Procs) {
			return prog.Procs[i].Name
		}
		return fmt.Sprintf("proc%d", i)
	}
	s := pn(c.Sender)
	if c.SenderArm >= 0 {
		s += fmt.Sprintf("[alt arm %d]", c.SenderArm)
	}
	r := pn(c.Receiver)
	if c.ReceiverArm >= 0 {
		r += fmt.Sprintf("[alt arm %d]", c.ReceiverArm)
	}
	return fmt.Sprintf("%s --%s--> %s", s, chName, r)
}

// simulate runs random walks (SPIN's simulation mode, which "makes a
// random choice at each stage and is therefore more effective in
// discovering bugs" than a deterministic simulator, §5.1).
func simulate(prog *ir.Program, opts Options, res *Result) {
	rng := rand.New(rand.NewSource(opts.Seed))
	for run := 0; run < opts.SimRuns && res.Violation == nil; run++ {
		m := newMachine(prog, opts)
		// Each walk carries a flight recorder so a violation's last events
		// are in hand without a replay.
		m.SetRecorder(obs.NewFlightRecorder(0))
		m.Settle()
		var trace []TraceStep
		for depth := 0; depth < opts.MaxDepth; depth++ {
			if f := m.Fault(); f != nil {
				res.Violation = &Violation{Fault: f, Trace: trace, Postmortem: m.Postmortem(obs.PostmortemEvents)}
				break
			}
			if m.AllHalted() {
				break
			}
			comms := m.EnabledComms()
			if len(comms) == 0 {
				if stuck(m, opts) {
					res.Violation = &Violation{Deadlock: true, Trace: trace, Postmortem: m.Postmortem(obs.PostmortemEvents)}
				}
				break
			}
			c := comms[rng.Intn(len(comms))]
			st := newStep(m, prog, c)
			m.FireComm(c)
			res.Transitions++
			trace = append(trace, st)
			if len(trace) > res.MaxDepth {
				res.MaxDepth = len(trace)
			}
		}
		if f := m.Fault(); f != nil && res.Violation == nil {
			res.Violation = &Violation{Fault: f, Trace: trace, Postmortem: m.Postmortem(obs.PostmortemEvents)}
		}
		res.States += len(trace) // states along walks (not deduplicated)
	}
}
