package mc_test

import (
	"strings"
	"testing"

	"esplang/internal/check"
	"esplang/internal/compile"
	"esplang/internal/ir"
	"esplang/internal/mc"
	"esplang/internal/parser"
	"esplang/internal/vm"
)

func compileSrc(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := parser.Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := check.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return compile.Program(prog, info)
}

func TestPassSimplePipeline(t *testing.T) {
	prog := compileSrc(t, `
channel c: int
process producer { $i = 0; while (i < 3) { out( c, i); i = i + 1; } }
process consumer { $n = 0; while (n < 3) { in( c, $v); assert( v == n); n = n + 1; } }
`)
	res := mc.Check(prog, mc.Options{})
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	if res.Truncated {
		t.Error("search unexpectedly truncated")
	}
	if res.States < 3 {
		t.Errorf("only %d states explored", res.States)
	}
}

func TestAssertionViolationFound(t *testing.T) {
	prog := compileSrc(t, `
channel c: int
process producer { out( c, 41); }
process consumer { in( c, $v); assert( v == 42); }
`)
	res := mc.Check(prog, mc.Options{})
	if res.Violation == nil {
		t.Fatal("assertion violation not found")
	}
	if res.Violation.Fault == nil || res.Violation.Fault.Kind != vm.FaultAssert {
		t.Errorf("violation = %v, want assertion fault", res.Violation)
	}
	if len(res.Violation.Trace) == 0 {
		t.Error("no counterexample trace")
	}
}

func TestDeadlockFound(t *testing.T) {
	prog := compileSrc(t, `
channel a: int
channel b: int
process p { in( a, $x); out( b, 1); }
process q { in( b, $y); out( a, 2); }
`)
	res := mc.Check(prog, mc.Options{})
	if res.Violation == nil || !res.Violation.Deadlock {
		t.Fatalf("deadlock not found: %v", res.Violation)
	}
}

func TestDeadlockRequiresInterleaving(t *testing.T) {
	// Two clients competing for two locks in opposite order: deadlock only
	// on one interleaving. The exhaustive search must find it.
	prog := compileSrc(t, `
type lockT = record of { ret: int}
channel acqA: lockT
channel relA: lockT
channel acqB: lockT
channel relB: lockT
process lockA {
    while (true) {
        in( acqA, { $who});
        in( relA, { who});
    }
}
process lockB {
    while (true) {
        in( acqB, { $who});
        in( relB, { who});
    }
}
process client1 {
    while (true) {
        out( acqA, { @});
        out( acqB, { @});
        out( relB, { @});
        out( relA, { @});
    }
}
process client2 {
    while (true) {
        out( acqB, { @});
        out( acqA, { @});
        out( relA, { @});
        out( relB, { @});
    }
}
`)
	res := mc.Check(prog, mc.Options{})
	if res.Violation == nil || !res.Violation.Deadlock {
		t.Fatalf("interleaving deadlock not found: %v", res.Violation)
	}
	if len(res.Violation.Trace) < 2 {
		t.Errorf("trace too short: %v", res.Violation.Trace)
	}
	// The trace must mention the lock channels by name.
	joined := ""
	for _, s := range res.Violation.Trace {
		joined += s.Desc + "\n"
	}
	if !strings.Contains(joined, "acqA") && !strings.Contains(joined, "acqB") {
		t.Errorf("trace does not mention channels:\n%s", joined)
	}
}

func TestMemoryLeakFound(t *testing.T) {
	// Driver + leaky worker: the worker forgets to unlink. The checker
	// must run out of objectIds (§5.2).
	prog := compileSrc(t, `
type dataT = array of int
channel c: dataT
process driver {
    while (true) {
        $d: dataT = { 2 -> 1};
        out( c, d);
        unlink( d);
    }
}
process worker {
    while (true) {
        in( c, $data);
        assert( data[0] == 1);
        // BUG: missing unlink( data);
    }
}
`)
	res := mc.Check(prog, mc.Options{MaxLiveObjects: 16})
	if res.Violation == nil || res.Violation.Fault == nil {
		t.Fatalf("leak not found: %v", res.Violation)
	}
	if res.Violation.Fault.Kind != vm.FaultOutOfObjects {
		t.Errorf("fault %v, want out-of-objects", res.Violation.Fault.Kind)
	}
}

func TestUseAfterFreeFound(t *testing.T) {
	prog := compileSrc(t, `
type dataT = array of int
channel c: dataT
process driver {
    $d: dataT = { 2 -> 7};
    out( c, d);
    unlink( d);
}
process worker {
    in( c, $data);
    unlink( data);
    assert( data[0] == 7); // BUG: read after free
}
`)
	res := mc.Check(prog, mc.Options{})
	if res.Violation == nil || res.Violation.Fault == nil ||
		res.Violation.Fault.Kind != vm.FaultUseAfterFree {
		t.Fatalf("use-after-free not found: %v", res.Violation)
	}
}

func TestDoubleFreeFound(t *testing.T) {
	prog := compileSrc(t, `
type dataT = array of int
channel c: dataT
process driver {
    $d: dataT = { 2 -> 7};
    out( c, d);
    unlink( d);
}
process worker {
    in( c, $data);
    unlink( data);
    unlink( data); // BUG
}
`)
	res := mc.Check(prog, mc.Options{})
	if res.Violation == nil || res.Violation.Fault == nil ||
		res.Violation.Fault.Kind != vm.FaultDoubleFree {
		t.Fatalf("double free not found: %v", res.Violation)
	}
}

func TestStateSpaceIsDeduplicated(t *testing.T) {
	// A server loop with a bounded driver: states repeat, so the visited
	// set must keep the count small.
	prog := compileSrc(t, `
channel req: int
channel rep: int
process server {
    while (true) {
        in( req, $v);
        out( rep, v+1);
    }
}
process driver {
    $n = 0;
    while (n < 4) {
        out( req, n);
        in( rep, $r);
        assert( r == n + 1);
        n = n + 1;
    }
}
`)
	res := mc.Check(prog, mc.Options{EndRecvOK: true})
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	if res.States > 100 {
		t.Errorf("state space too large: %d states (deduplication broken?)", res.States)
	}
}

func TestNondeterministicDriverAlt(t *testing.T) {
	// A driver using alt over two sends models nondeterministic input
	// (the role of the paper's test.SPIN files). Both branches must be
	// explored: one of them trips the assertion.
	prog := compileSrc(t, `
channel c: int
process driver {
    alt {
        case( out( c, 1)) { skip; }
        case( out( c, 2)) { skip; }
    }
}
process sink {
    in( c, $v);
    assert( v == 1); // fails when the driver chose 2
}
`)
	res := mc.Check(prog, mc.Options{})
	if res.Violation == nil || res.Violation.Fault == nil ||
		res.Violation.Fault.Kind != vm.FaultAssert {
		t.Fatalf("alt-branch assertion not found: %v", res.Violation)
	}
}

func TestBitstateModeFindsBug(t *testing.T) {
	prog := compileSrc(t, `
channel c: int
process producer { out( c, 41); }
process consumer { in( c, $v); assert( v == 42); }
`)
	res := mc.Check(prog, mc.Options{Mode: mc.BitState, BitstateBits: 16})
	if res.Violation == nil {
		t.Fatal("bitstate mode missed the violation")
	}
	if res.MemBytes != 1<<16/8 {
		t.Errorf("bitstate memory = %d, want %d", res.MemBytes, 1<<16/8)
	}
}

func TestSimulationModeFindsBug(t *testing.T) {
	prog := compileSrc(t, `
channel c: int
process driver {
    $n = 0;
    while (n < 10) {
        alt {
            case( out( c, 0)) { skip; }
            case( out( c, 1)) { skip; }
        }
        n = n + 1;
    }
}
process sink {
    $ones = 0;
    while (true) {
        in( c, $v);
        if (v == 1) { ones = ones + 1; }
        assert( ones < 3); // trips once three 1s arrived
    }
}
`)
	res := mc.Check(prog, mc.Options{Mode: mc.Simulation, Seed: 42, SimRuns: 50, NoDeadlockCheck: true})
	if res.Violation == nil || res.Violation.Fault == nil {
		t.Fatalf("simulation missed the violation: %+v", res)
	}
}

func TestSimulationDeterministicWithSeed(t *testing.T) {
	src := `
channel c: int
process driver {
    alt {
        case( out( c, 1)) { skip; }
        case( out( c, 2)) { skip; }
    }
}
process sink { in( c, $v); }
`
	prog := compileSrc(t, src)
	a := mc.Check(prog, mc.Options{Mode: mc.Simulation, Seed: 7, SimRuns: 5})
	b := mc.Check(compileSrc(t, src), mc.Options{Mode: mc.Simulation, Seed: 7, SimRuns: 5})
	if a.Transitions != b.Transitions {
		t.Errorf("same seed produced different walks: %d vs %d transitions", a.Transitions, b.Transitions)
	}
}

func TestMaxStatesTruncation(t *testing.T) {
	// An unbounded counter has an infinite state space; the bound must
	// truncate the search rather than hang.
	prog := compileSrc(t, `
channel c: int
process counter {
    $n = 0;
    while (true) {
        out( c, n);
        n = n + 1;
    }
}
process sink {
    while (true) { in( c, $v); }
}
`)
	res := mc.Check(prog, mc.Options{MaxStates: 500})
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	if !res.Truncated {
		t.Error("search not marked truncated")
	}
	if res.States > 501 {
		t.Errorf("explored %d states, bound was 500", res.States)
	}
}

func TestResultString(t *testing.T) {
	prog := compileSrc(t, `
channel c: int
process p { out( c, 1); }
process q { in( c, $v); }
`)
	res := mc.Check(prog, mc.Options{})
	s := res.String()
	if !strings.Contains(s, "pass") || !strings.Contains(s, "states") {
		t.Errorf("result string %q missing fields", s)
	}
}

// TestViolationTraceIsolated: a returned counterexample trace is the
// caller's to keep — mutating it must not affect any later check of the
// same program (traces are freshly materialized by replay, never aliased
// into checker state). Workers: 1 keeps the two runs' traces comparable.
func TestViolationTraceIsolated(t *testing.T) {
	src := `
channel a: int
channel b: int
process p { out( a, 1); in( b, $x); }
process q { in( a, $y); }
`
	prog := compileSrc(t, src)
	res1 := mc.Check(prog, mc.Options{Workers: 1})
	if res1.Violation == nil || !res1.Violation.Deadlock || len(res1.Violation.Trace) == 0 {
		t.Fatalf("expected deadlock with a trace, got %v", res1.Violation)
	}
	want := make([]string, len(res1.Violation.Trace))
	for i, st := range res1.Violation.Trace {
		want[i] = st.Desc
	}
	// Vandalize the returned trace.
	for i := range res1.Violation.Trace {
		res1.Violation.Trace[i].Desc = "CLOBBERED"
	}
	res2 := mc.Check(prog, mc.Options{Workers: 1})
	if res2.Violation == nil || len(res2.Violation.Trace) != len(want) {
		t.Fatalf("second check differs: %v", res2.Violation)
	}
	for i, st := range res2.Violation.Trace {
		if st.Desc != want[i] {
			t.Errorf("trace step %d = %q, want %q", i, st.Desc, want[i])
		}
	}
}
