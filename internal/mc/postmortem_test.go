package mc_test

import (
	"strings"
	"testing"
	"time"

	"esplang/internal/mc"
	"esplang/internal/obs"
)

// assertSrc violates an assertion after a short rendezvous exchange.
const assertSrc = `
channel c: int
process sender {
    $n = 0;
    while (n < 4) {
        out( c, n);
        n = n + 1;
    }
}
process receiver {
    $n = 0;
    while (n < 4) {
        in( c, $v);
        assert( v < 3);
        n = n + 1;
    }
}
`

// TestViolationCarriesPostmortem asserts every counterexample comes with
// a structurally valid flight-recorder dump of its replay.
func TestViolationCarriesPostmortem(t *testing.T) {
	prog := compileSrc(t, assertSrc)
	res := mc.Check(prog, mc.Options{Workers: 1})
	if res.Violation == nil {
		t.Fatal("assertion violation not found")
	}
	pm := res.Violation.Postmortem
	if pm == "" {
		t.Fatal("violation has no postmortem")
	}
	n, err := obs.ValidatePostmortem([]byte(pm))
	if err != nil {
		t.Fatalf("counterexample postmortem invalid: %v\n%s", err, pm)
	}
	if n == 0 {
		t.Fatal("counterexample postmortem is empty")
	}
	if !strings.Contains(pm, "\tfault\t") {
		t.Errorf("postmortem has no fault event:\n%s", pm)
	}
}

// TestSimulationViolationCarriesPostmortem covers the simulation-mode
// walk (a separate violation construction path from the frontier search).
func TestSimulationViolationCarriesPostmortem(t *testing.T) {
	prog := compileSrc(t, assertSrc)
	res := mc.Check(prog, mc.Options{Mode: mc.Simulation, Seed: 1, SimRuns: 50})
	if res.Violation == nil {
		t.Skip("random walks missed the violation at this seed")
	}
	pm := res.Violation.Postmortem
	if pm == "" {
		t.Fatal("simulation violation has no postmortem")
	}
	if _, err := obs.ValidatePostmortem([]byte(pm)); err != nil {
		t.Fatalf("simulation postmortem invalid: %v\n%s", err, pm)
	}
}

func TestProgressETA(t *testing.T) {
	p := mc.ProgressInfo{States: 4000, MaxStates: 10000, StatesPerSec: 2000}
	eta, ok := p.ETA()
	if !ok || eta != 3*time.Second {
		t.Errorf("ETA = %v, %v; want 3s, true", eta, ok)
	}
	if !strings.Contains(p.String(), "eta 3s to max-states") {
		t.Errorf("progress line missing ETA: %q", p.String())
	}

	// No ETA on final samples, unbounded searches, unknown rates, or
	// once the bound is passed.
	for name, q := range map[string]mc.ProgressInfo{
		"final":     {States: 1, MaxStates: 10, StatesPerSec: 1, Final: true},
		"unbounded": {States: 1, StatesPerSec: 1},
		"no rate":   {States: 1, MaxStates: 10},
		"past":      {States: 20, MaxStates: 10, StatesPerSec: 1},
	} {
		if _, ok := q.ETA(); ok {
			t.Errorf("%s: ETA unexpectedly available", name)
		}
		if strings.Contains(q.String(), "eta") {
			t.Errorf("%s: progress line has ETA: %q", name, q.String())
		}
	}
}

// TestProgressCarriesMaxStates asserts live samples know the bound, so
// consumers can compute ETA.
func TestProgressCarriesMaxStates(t *testing.T) {
	prog := compileSrc(t, assertSrc)
	var sawBound bool
	mc.Check(prog, mc.Options{
		Workers:          1,
		MaxStates:        5000,
		Progress:         func(p mc.ProgressInfo) { sawBound = sawBound || p.MaxStates == 5000 },
		ProgressInterval: time.Millisecond,
	})
	if !sawBound {
		t.Error("no progress sample carried MaxStates")
	}
}
