package mc

import (
	"sync"
	"sync/atomic"
	"time"

	"esplang/internal/ir"
	"esplang/internal/obs"
	"esplang/internal/vm"
)

// Parallel frontier search — the engine behind Exhaustive and BitState
// modes. A pool of Options.Workers goroutines expands a shared FIFO of
// unexpanded states.
//
// Under the fused engine (the default hot path) each worker owns one
// machine for the whole search and replays frontier states into it with
// vm.RestoreState; a discovered state costs one compact vm.SavedState
// (recycled through a pool once expanded) while it sits on the frontier
// and one visited-set key forever, and the per-transition cost no longer
// includes allocating and deep-copying a full machine clone. Under the
// baseline engine the search keeps the original Clone-per-transition
// expansion — that path is preserved, unmodified, as the differential
// oracle: both must report identical verdicts and state counts, which the
// engine-differential tests check.
//
// In both modes counterexamples are kept as compact parent chains (one
// CommChoice and one pointer per state) and materialized by replaying the
// choices from the initial machine, so memory is O(frontier + visited
// keys).
//
// With Workers: 1 the search is a deterministic breadth-first traversal:
// states are expanded in FIFO order and successors generated in
// EnabledComms order, so every counter, the verdict, and the trace are
// bit-for-bit reproducible. Any worker count visits the same state set
// and reports the same States count (the visited set's TryAdd admits each
// state exactly once); only which of several violations is reported first
// can vary. The one exception is Options.Reduction with Workers > 1: the
// cycle-proviso decision reads the racy visited set, so the reduced
// search's state count can vary slightly between runs (always a superset
// of the sequential reduced search — verdicts are unaffected).
//
// With Options.Reduction: AmpleSets each node additionally carries the
// length of its ample prefix (see por.go); expansion fires only that
// prefix unless every ample successor is already closed (its expansion
// has started), in which case the cycle proviso expands the remainder
// too. A not-yet-closed successor is a sound deferral witness: it is
// expanded strictly later, so following witnesses visits distinct states
// in increasing expansion order and must end at a state that either
// fires the deferred transitions or expands in full.

// pathNode is one link of a counterexample parent chain: the
// communication that produced a state, plus the chain that produced its
// parent. Frontier nodes share tails, so reconstruction costs one small
// node per live ancestor instead of a retained machine per search level.
type pathNode struct {
	choice vm.CommChoice
	parent *pathNode
}

// choices materializes the root-to-here choice sequence.
func (p *pathNode) choices() []vm.CommChoice {
	n := 0
	for q := p; q != nil; q = q.parent {
		n++
	}
	out := make([]vm.CommChoice, n)
	for q := p; q != nil; q = q.parent {
		n--
		out[n] = q.choice
	}
	return out
}

// node is one frontier entry: a quiescent state, its enabled
// communications (computed once, at discovery), the parent chain that
// reached it, and its depth in transitions from the initial state. The
// state is held either as a compact snapshot (snap, the fused-engine hot
// path) or as a full machine clone (m, the baseline-engine oracle path);
// exactly one of the two is set.
type node struct {
	snap  *vm.SavedState
	m     *vm.Machine
	comms []vm.CommChoice
	path  *pathNode
	depth int
	// ample is the length of the ample prefix of comms (== len(comms)
	// when the state is expanded in full; see por.go).
	ample int
	// key is the state's visited-set key, kept only under reduction so
	// expansion can mark the state closed for the cycle proviso.
	key string
}

// frontier is the shared work queue: a FIFO of unexpanded nodes plus an
// in-flight count for termination detection. pop blocks until a node is
// available, every node has been fully expanded (pending == 0), or the
// search was shut down early (violation found or state bound reached).
type frontier struct {
	mu      sync.Mutex
	cond    sync.Cond
	queue   []*node
	head    int
	pending int // queued + currently-expanding nodes
	closed  bool
}

func (f *frontier) push(n *node) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.pending++
	f.queue = append(f.queue, n)
	f.mu.Unlock()
	f.cond.Signal()
}

func (f *frontier) pop() *node {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.closed {
			return nil
		}
		if f.head < len(f.queue) {
			n := f.queue[f.head]
			f.queue[f.head] = nil
			f.head++
			if f.head > 64 && f.head*2 >= len(f.queue) {
				f.queue = append(f.queue[:0], f.queue[f.head:]...)
				f.head = 0
			}
			return n
		}
		if f.pending == 0 {
			return nil
		}
		f.cond.Wait()
	}
}

// done marks one popped node fully expanded.
func (f *frontier) done() {
	f.mu.Lock()
	f.pending--
	exhausted := f.pending == 0
	f.mu.Unlock()
	if exhausted {
		f.cond.Broadcast()
	}
}

func (f *frontier) close() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.cond.Broadcast()
}

// size returns the number of queued (unexpanded) nodes.
func (f *frontier) size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.queue) - f.head
}

// foundViolation is the compact record of the first violation: the parent
// chain plus the final choice, replayed into a full trace after the
// workers stop.
type foundViolation struct {
	parent   *pathNode
	last     vm.CommChoice
	fault    *vm.Fault
	deadlock bool
}

// search is the shared state of one frontier search.
type search struct {
	opts    Options
	prog    *ir.Program
	visited shardedSet
	front   frontier

	// oracle selects the baseline-engine Clone-per-transition expansion
	// instead of the SavedState hot path.
	oracle bool

	// reduce enables the ample-set partial-order reduction; ind is the
	// static independence table it selects ample sets from.
	reduce bool
	ind    *ir.Independence

	// snapPool recycles SavedStates of fully expanded nodes: in steady
	// state a new frontier entry reuses the arenas of a retired one, so
	// state discovery stops allocating.
	snapPool sync.Pool

	states      atomic.Int64
	transitions atomic.Int64
	maxDepth    atomic.Int64
	truncated   atomic.Bool
	stop        atomic.Bool

	// Reduction counters (see PORStats).
	porAmple    atomic.Int64
	porFull     atomic.Int64
	porFallback atomic.Int64
	porDeferred atomic.Int64

	vioMu sync.Mutex
	vio   *foundViolation
}

// searchFrontier runs the Exhaustive/BitState search and fills res.
func searchFrontier(prog *ir.Program, opts Options, res *Result) {
	var visited shardedSet
	if opts.Mode == BitState {
		visited = newShardedBitSet(opts.BitstateBits)
	} else {
		visited = newShardedMapSet()
	}

	m0 := newMachine(prog, opts)
	m0.Settle()
	if f := m0.Fault(); f != nil {
		// Faults before any communication: replay with no choices to get
		// the postmortem of the initial settle.
		_, pm := replayTrace(prog, opts, nil)
		res.Violation = &Violation{Fault: f, Postmortem: pm}
		return
	}
	key0 := m0.EncodeState()
	visited.TryAdd(key0)
	res.States = 1
	res.MemBytes = visited.MemBytes()

	comms0 := m0.EnabledComms()
	if len(comms0) == 0 {
		if stuck(m0, opts) {
			res.Violation = &Violation{Deadlock: true}
		}
		return
	}

	s := &search{opts: opts, prog: prog, visited: visited,
		oracle: opts.Engine == vm.EngineBaseline}
	s.front.cond.L = &s.front.mu
	s.states.Store(1)
	if opts.Reduction == AmpleSets {
		s.reduce = true
		s.ind = independence(prog)
	}
	ample0 := s.ampleOrder(m0, comms0)
	if !s.reduce {
		key0 = "" // only the proviso reads node keys; don't retain them
	}
	if s.oracle {
		s.front.push(&node{m: m0, comms: comms0, ample: ample0, key: key0})
	} else {
		s.front.push(&node{snap: m0.Save(nil), comms: comms0, ample: ample0, key: key0})
	}

	var wg sync.WaitGroup
	for i := 0; i < opts.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.worker()
		}()
	}

	// Periodic progress sampling runs beside the workers; the final sample
	// (Final: true) is taken after they stop, so it reflects the finished
	// counters.
	var progDone chan struct{}
	if opts.Progress != nil || opts.Metrics != nil {
		progDone = make(chan struct{})
		go s.progressLoop(time.Now(), progDone)
	}
	wg.Wait()
	if progDone != nil {
		progDone <- struct{}{} // request the final sample
		<-progDone             // wait until it was delivered
	}

	res.States = int(s.states.Load())
	res.Transitions = int(s.transitions.Load())
	res.MaxDepth = int(s.maxDepth.Load())
	res.Truncated = s.truncated.Load()
	res.MemBytes = visited.MemBytes()
	if s.reduce {
		res.POR = &PORStats{
			AmpleStates:         s.porAmple.Load(),
			FullStates:          s.porFull.Load(),
			ProvisoFallbacks:    s.porFallback.Load(),
			DeferredTransitions: s.porDeferred.Load(),
		}
	}
	if s.vio != nil {
		choices := append(s.vio.parent.choices(), s.vio.last)
		trace, pm := replayTrace(prog, opts, choices)
		res.Violation = &Violation{
			Fault:      s.vio.fault,
			Deadlock:   s.vio.deadlock,
			Trace:      trace,
			Postmortem: pm,
		}
	}
}

// progressLoop samples the search counters every ProgressInterval,
// feeding the Progress callback and the Metrics registry. A send on done
// requests one final sample; the loop replies on the same channel when
// it has been delivered.
func (s *search) progressLoop(start time.Time, done chan struct{}) {
	interval := s.opts.ProgressInterval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	var gStates, gTrans, gFront, gMem, gRate *obs.Gauge
	var gPorAmple, gPorFull, gPorFallback, gPorDeferred *obs.Gauge
	var hFront *obs.Histogram
	if reg := s.opts.Metrics; reg != nil {
		gStates = reg.Gauge("mc_states")
		gTrans = reg.Gauge("mc_transitions")
		gFront = reg.Gauge("mc_frontier")
		gMem = reg.Gauge("mc_mem_bytes")
		gRate = reg.Gauge("mc_states_per_sec")
		hFront = reg.Histogram("mc_frontier_depth")
		if s.reduce {
			gPorAmple = reg.Gauge("mc_por_ample_states")
			gPorFull = reg.Gauge("mc_por_full_states")
			gPorFallback = reg.Gauge("mc_por_proviso_fallbacks")
			gPorDeferred = reg.Gauge("mc_por_deferred_transitions")
		}
	}

	prevStates := s.states.Load()
	prevT := start
	emit := func(final bool) {
		now := time.Now()
		states := s.states.Load()
		info := ProgressInfo{
			States:      states,
			Transitions: s.transitions.Load(),
			Frontier:    s.front.size(),
			MaxDepth:    s.maxDepth.Load(),
			MemBytes:    s.visited.MemBytes(),
			Elapsed:     now.Sub(start),
			MaxStates:   s.opts.MaxStates,
			Final:       final,
		}
		if dt := now.Sub(prevT).Seconds(); dt > 0 {
			info.StatesPerSec = float64(states-prevStates) / dt
		}
		prevStates, prevT = states, now
		if s.opts.Metrics != nil {
			gStates.Set(info.States)
			gTrans.Set(info.Transitions)
			gFront.Set(int64(info.Frontier))
			gMem.Set(info.MemBytes)
			gRate.Set(int64(info.StatesPerSec))
			hFront.Observe(int64(info.Frontier))
			if s.reduce {
				gPorAmple.Set(s.porAmple.Load())
				gPorFull.Set(s.porFull.Load())
				gPorFallback.Set(s.porFallback.Load())
				gPorDeferred.Set(s.porDeferred.Load())
			}
		}
		if s.opts.Progress != nil {
			s.opts.Progress(info)
		}
	}

	for {
		select {
		case <-ticker.C:
			emit(false)
		case <-done:
			emit(true)
			done <- struct{}{}
			return
		}
	}
}

func (s *search) worker() {
	// On the hot path each worker owns one machine for the whole search
	// and replays frontier snapshots into it — no per-transition machine
	// allocation. The oracle path clones instead and needs no worker
	// machine.
	var m *vm.Machine
	if !s.oracle {
		m = newMachine(s.prog, s.opts)
	}
	for {
		n := s.front.pop()
		if n == nil {
			return
		}
		if s.oracle {
			s.expandClone(n)
		} else {
			s.expand(m, n)
		}
		s.front.done()
	}
}

// expandClone is the baseline-engine oracle expansion: one full machine
// clone per transition, exactly as the search worked before the
// SavedState hot path existed. It must stay behaviorally identical to
// expand — the differential tests compare the two.
func (s *search) expandClone(n *node) {
	limit, witness := s.noteAmple(n)
	for i, c := range n.comms {
		if i == limit {
			if witness > 0 {
				s.porDeferred.Add(int64(len(n.comms) - limit))
				break
			}
			// Cycle proviso: every ample successor was already closed
			// (expanded or expanding); expand the deferred remainder too
			// so no transition is ignored forever around a cycle.
			s.porFallback.Add(1)
		}
		if s.stop.Load() {
			return
		}
		m2 := n.m.Clone()
		m2.FireComm(c)
		s.transitions.Add(1)

		if f := m2.Fault(); f != nil {
			s.observeDepth(n.depth + 1)
			s.violate(n.path, c, f, false)
			return
		}
		key := m2.EncodeState()
		if !s.visited.TryAdd(key) {
			if s.reduce && i < limit && !s.visited.Closed(key) {
				witness++
			}
			continue
		}
		witness++
		if got := s.states.Add(1); got > int64(s.opts.MaxStates) {
			s.states.Add(-1)
			s.truncated.Store(true)
			s.shutdown()
			return
		}
		d := n.depth + 1
		s.observeDepth(d)

		comms := m2.EnabledComms()
		if len(comms) == 0 {
			if stuck(m2, s.opts) {
				s.violate(n.path, c, nil, true)
				return
			}
			continue
		}
		if d >= s.opts.MaxDepth {
			s.truncated.Store(true)
			continue
		}
		n2 := &node{
			m:     m2,
			comms: comms,
			path:  &pathNode{choice: c, parent: n.path},
			depth: d,
			ample: s.ampleOrder(m2, comms),
		}
		if s.reduce {
			n2.key = key
		}
		s.front.push(n2)
	}
	n.m = nil // the expanded machine is no longer needed
}

// noteAmple starts a node's expansion under reduction: it normalizes the
// ample prefix, counts it toward the reduction statistics, and marks the
// state closed — from here on it can no longer serve as another ample
// set's deferral witness (see the cycle proviso in expand). The second
// result seeds the expansion's witness counter. A prefix covering every
// communication means the state is expanded in full.
func (s *search) noteAmple(n *node) (limit, witness int) {
	limit = n.ample
	if limit <= 0 || limit > len(n.comms) {
		limit = len(n.comms)
	}
	if s.reduce {
		s.visited.MarkClosed(n.key)
		if limit < len(n.comms) {
			s.porAmple.Add(1)
		} else {
			s.porFull.Add(1)
		}
	}
	return limit, 0
}

// expand fires every enabled communication of n on the worker's machine,
// recording newly discovered states and enqueueing them for expansion.
func (s *search) expand(m *vm.Machine, n *node) {
	limit, witness := s.noteAmple(n)
	for i, c := range n.comms {
		if i == limit {
			if witness > 0 {
				s.porDeferred.Add(int64(len(n.comms) - limit))
				break
			}
			// Cycle proviso: every ample successor was already closed
			// (expanded or expanding); expand the deferred remainder too
			// so no transition is ignored forever around a cycle.
			s.porFallback.Add(1)
		}
		if s.stop.Load() {
			return
		}
		m.RestoreState(n.snap)
		m.FireComm(c)
		s.transitions.Add(1)

		if f := m.Fault(); f != nil {
			// The faulting transition was encountered even though its target
			// state is never admitted — count it toward MaxDepth so the
			// reported depth matches simulation mode on the same path.
			s.observeDepth(n.depth + 1)
			s.violate(n.path, c, f, false)
			return
		}
		key := m.EncodeState()
		if !s.visited.TryAdd(key) {
			if s.reduce && i < limit && !s.visited.Closed(key) {
				witness++
			}
			continue
		}
		witness++
		// Reserve a slot under the state bound before counting the state;
		// the instant the bound is reached the whole search shuts down —
		// it does not keep firing transitions into states it will never
		// record.
		if got := s.states.Add(1); got > int64(s.opts.MaxStates) {
			s.states.Add(-1)
			s.truncated.Store(true)
			s.shutdown()
			return
		}
		d := n.depth + 1
		s.observeDepth(d)

		comms := m.EnabledComms()
		if len(comms) == 0 {
			if stuck(m, s.opts) {
				s.violate(n.path, c, nil, true)
				return
			}
			continue
		}
		if d >= s.opts.MaxDepth {
			s.truncated.Store(true)
			continue
		}
		// Only admitted states pay for a snapshot (TryAdd ran first).
		snap, _ := s.snapPool.Get().(*vm.SavedState)
		n2 := &node{
			snap:  m.Save(snap),
			comms: comms,
			path:  &pathNode{choice: c, parent: n.path},
			depth: d,
			ample: s.ampleOrder(m, comms),
		}
		if s.reduce {
			n2.key = key
		}
		s.front.push(n2)
	}
	// Every communication was fired from n.snap; recycle its arenas. (The
	// early returns above skip this — a shutting-down search doesn't need
	// the pool, and the GC reclaims those snapshots.)
	s.snapPool.Put(n.snap)
	n.snap = nil
}

// violate records the violation (first writer wins) and shuts the search
// down.
func (s *search) violate(parent *pathNode, c vm.CommChoice, f *vm.Fault, deadlock bool) {
	s.vioMu.Lock()
	if s.vio == nil {
		s.vio = &foundViolation{parent: parent, last: c, fault: f, deadlock: deadlock}
	}
	s.vioMu.Unlock()
	s.shutdown()
}

func (s *search) shutdown() {
	s.stop.Store(true)
	s.front.close()
}

func (s *search) observeDepth(d int) {
	for {
		cur := s.maxDepth.Load()
		if int64(d) <= cur || s.maxDepth.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// replayTrace rebuilds a counterexample by replaying the recorded choice
// sequence from a fresh initial machine — execution between blocking
// points is deterministic, so the replay passes through exactly the
// states the search saw (vm.Machine.ReplayComms is the same loop without
// the per-step bookkeeping).
// A flight recorder rides along on the replay machine, so every
// counterexample comes with a postmortem of the events leading into the
// violation — the search itself stays recorder-free.
func replayTrace(prog *ir.Program, opts Options, choices []vm.CommChoice) ([]TraceStep, string) {
	m := newMachine(prog, opts)
	m.SetRecorder(obs.NewFlightRecorder(0))
	m.Settle()
	steps := make([]TraceStep, 0, len(choices))
	for _, c := range choices {
		steps = append(steps, newStep(m, prog, c))
		m.FireComm(c)
	}
	return steps, m.Postmortem(obs.PostmortemEvents)
}
