package mc_test

import (
	"fmt"
	"strings"
	"testing"

	"esplang/internal/mc"
)

// pipelinesSource builds `pairs` disjoint producer/consumer pipelines of
// `length` messages each. The pipelines never interact, so the full
// state space is the product of the per-pipeline spaces while the
// reduced search only needs one interleaving representative.
func pipelinesSource(pairs, length int) string {
	var b strings.Builder
	for i := 0; i < pairs; i++ {
		fmt.Fprintf(&b, "channel c%d: int\n", i)
		fmt.Fprintf(&b, "process prod%d { $i = 0; while (i < %d) { out( c%d, i); i = i + 1; } }\n", i, length, i)
		fmt.Fprintf(&b, "process cons%d { $n = 0; while (n < %d) { in( c%d, $v); assert( v == n); n = n + 1; } }\n", i, length, i)
	}
	return b.String()
}

func TestPORIndependentPipelines(t *testing.T) {
	prog := compileSrc(t, pipelinesSource(3, 3))

	full := mc.Check(prog, mc.Options{Workers: 1})
	red := mc.Check(prog, mc.Options{Workers: 1, Reduction: mc.AmpleSets})

	if full.Violation != nil || red.Violation != nil {
		t.Fatalf("unexpected violation: full=%v por=%v", full.Violation, red.Violation)
	}
	if red.POR == nil {
		t.Fatal("reduced run reported no POR stats")
	}
	if red.States*3 > full.States {
		t.Errorf("expected >=3x state reduction, got full=%d por=%d", full.States, red.States)
	}
	if red.POR.AmpleStates == 0 {
		t.Error("no state used an ample subset")
	}
	t.Logf("full: %d states %d transitions; por: %d states %d transitions (ample %d, full %d, fallbacks %d, deferred %d)",
		full.States, full.Transitions, red.States, red.Transitions,
		red.POR.AmpleStates, red.POR.FullStates, red.POR.ProvisoFallbacks, red.POR.DeferredTransitions)
}

// TestPORFindsFaultAcrossIndependentNoise checks verdict preservation
// when a fault hides behind an independent, state-space-inflating pair.
func TestPORFindsFaultAcrossIndependentNoise(t *testing.T) {
	src := pipelinesSource(2, 4) + `
channel f: int
process fp { $i = 0; while (i < 3) { out( f, i); i = i + 1; } }
process fc { $n = 0; while (n < 3) { in( f, $v); assert( v < 2); n = n + 1; } }
`
	prog := compileSrc(t, src)

	full := mc.Check(prog, mc.Options{Workers: 1})
	red := mc.Check(prog, mc.Options{Workers: 1, Reduction: mc.AmpleSets})

	if full.Violation == nil || full.Violation.Fault == nil {
		t.Fatalf("full search missed the fault: %v", full.Violation)
	}
	if red.Violation == nil || red.Violation.Fault == nil {
		t.Fatalf("reduced search missed the fault: %v", red.Violation)
	}
	if full.Violation.Fault.Kind != red.Violation.Fault.Kind {
		t.Errorf("fault kind differs: full=%v por=%v",
			full.Violation.Fault.Kind, red.Violation.Fault.Kind)
	}
}

// TestPORProvisoCycle pins the cycle proviso: an infinite independent
// ping-pong loop could absorb the whole reduced search (its ample sets
// are always valid), starving the transition that faults. The proviso's
// fallback to full expansion once the loop stops producing new states
// guarantees the fault is still found.
func TestPORProvisoCycle(t *testing.T) {
	prog := compileSrc(t, `
channel ping: int
channel pong: int
channel f: int
process a { while (true) { out( ping, 1); in( pong, $x); } }
process b { while (true) { in( ping, $y); out( pong, 2); } }
process fp { out( f, 9); }
process fc { in( f, $v); assert( v < 9); }
`)

	full := mc.Check(prog, mc.Options{Workers: 1})
	red := mc.Check(prog, mc.Options{Workers: 1, Reduction: mc.AmpleSets})

	if full.Violation == nil || full.Violation.Fault == nil {
		t.Fatalf("full search missed the fault: %v", full.Violation)
	}
	if red.Violation == nil || red.Violation.Fault == nil {
		t.Fatalf("reduced search missed the fault: %v (proviso broken?)", red.Violation)
	}
	if full.Violation.Fault.Kind != red.Violation.Fault.Kind {
		t.Errorf("fault kind differs: full=%v por=%v",
			full.Violation.Fault.Kind, red.Violation.Fault.Kind)
	}
}

// TestPORDeadlockPreserved checks that reduction never hides a deadlock.
func TestPORDeadlockPreserved(t *testing.T) {
	prog := compileSrc(t, pipelinesSource(2, 2)+`
channel d1: int
channel d2: int
process da { out( d1, 1); in( d2, $x); }
process db { out( d2, 2); in( d1, $y); }
`)
	full := mc.Check(prog, mc.Options{Workers: 1})
	red := mc.Check(prog, mc.Options{Workers: 1, Reduction: mc.AmpleSets})
	if full.Violation == nil || !full.Violation.Deadlock {
		t.Fatalf("full search missed the deadlock: %v", full.Violation)
	}
	if red.Violation == nil || !red.Violation.Deadlock {
		t.Fatalf("reduced search missed the deadlock: %v", red.Violation)
	}
}

// TestPORSequentialDeterministic: two Workers:1 reduced runs must agree
// bit for bit on every counter.
func TestPORSequentialDeterministic(t *testing.T) {
	prog := compileSrc(t, pipelinesSource(3, 3))
	a := mc.Check(prog, mc.Options{Workers: 1, Reduction: mc.AmpleSets})
	b := mc.Check(prog, mc.Options{Workers: 1, Reduction: mc.AmpleSets})
	if a.States != b.States || a.Transitions != b.Transitions || a.MaxDepth != b.MaxDepth {
		t.Errorf("sequential POR runs disagree: %v vs %v", a, b)
	}
	if *a.POR != *b.POR {
		t.Errorf("sequential POR stats disagree: %+v vs %+v", a.POR, b.POR)
	}
}

// TestPORParallelVerdict: parallel reduced runs must reach the same
// verdict as the sequential one (state counts may differ — the proviso
// races on the visited set).
func TestPORParallelVerdict(t *testing.T) {
	pass := compileSrc(t, pipelinesSource(3, 3))
	seq := mc.Check(pass, mc.Options{Workers: 1, Reduction: mc.AmpleSets})
	par := mc.Check(pass, mc.Options{Workers: 4, Reduction: mc.AmpleSets})
	if (seq.Violation == nil) != (par.Violation == nil) {
		t.Errorf("verdict differs: seq=%v par=%v", seq.Violation, par.Violation)
	}

	fail := compileSrc(t, pipelinesSource(2, 3)+`
channel f: int
process fp { out( f, 9); }
process fc { in( f, $v); assert( v < 9); }
`)
	seqF := mc.Check(fail, mc.Options{Workers: 1, Reduction: mc.AmpleSets})
	parF := mc.Check(fail, mc.Options{Workers: 4, Reduction: mc.AmpleSets})
	if seqF.Violation == nil || seqF.Violation.Fault == nil {
		t.Fatalf("sequential POR missed the fault: %v", seqF.Violation)
	}
	if parF.Violation == nil || parF.Violation.Fault == nil {
		t.Fatalf("parallel POR missed the fault: %v", parF.Violation)
	}
}
