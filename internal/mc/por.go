package mc

import (
	"esplang/internal/analysis"
	"esplang/internal/ir"
	"esplang/internal/vm"
)

// Ample-set partial-order reduction (Options.Reduction: AmpleSets).
//
// At each expanded state the search looks for a closed group S of
// processes whose enabled communications can stand in for the full
// successor set. S is grown from a base process by a fixed closure rule:
// for every member, every channel it currently offers a communication on
// pulls in every process with a static site on that channel
// (ir.Independence.Touch); a member of a dirty ref-flow region pulls in
// the whole region. The closure gives the two facts the reduction rests
// on:
//
//   - any enabled communication involving a member of S has both
//     endpoints in S (the counterparty has a site on the offered
//     channel), so the "ample" transitions are exactly the enabled
//     communications inside S — and no member of S can move except by
//     firing one of them;
//   - a process outside S can never communicate with a member of S
//     before some ample transition fires: doing so would need a site on
//     a channel a member offers, which would have placed it in S. So
//     every transition outside S involves two processes disjoint from S,
//     and — by heap-cleanliness or region disjointness — commutes with
//     every ample transition.
//
// A channel with an external binding poisons the candidate (the
// environment is a counterparty the closure cannot enumerate). The
// chosen ample set is the valid candidate with the fewest enabled
// communications, ties broken by smallest base process — a pure function
// of the quiescent state and the static table, so Workers: 1 searches
// are bit-for-bit reproducible.
//
// The cycle proviso is handled at expansion time (see expand): if firing
// the ample prefix reaches only states whose own expansion has already
// started (closed states — in bit-state mode, where closedness is not
// tracked, any visited state), the expansion falls back to the full
// successor set, so transitions deferred around a cycle are never
// ignored forever. Faults and deadlocks are reported exactly
// as in the full search; the accepted divergence is FaultOutOfObjects,
// whose global live-object peak can depend on the interleaving the
// search takes (the differential tests exempt it, as they already do for
// optimization-level comparisons).

// porProcLimit bounds the bitmask closure; programs with more processes
// fall back to full expansion. (64 processes is far beyond any model in
// the repo; lifting it means swapping the uint64 masks for bitsets.)
const porProcLimit = 64

// independence returns the program's independence table, computing it on
// demand for unoptimized programs.
func independence(prog *ir.Program) *ir.Independence {
	if prog.Indep != nil {
		return prog.Indep
	}
	return analysis.ComputeIndependence(prog)
}

// ampleOrder partitions comms in place so that a valid ample set forms a
// prefix, and returns the prefix length — len(comms) when no proper
// ample set exists (full expansion). The relative order within both
// partitions is preserved, so the sequential search stays deterministic.
func (s *search) ampleOrder(m *vm.Machine, comms []vm.CommChoice) int {
	full := len(comms)
	if !s.reduce || full < 2 || len(s.prog.Procs) > porProcLimit {
		return full
	}

	// Candidate bases: every process participating in an enabled
	// communication, ascending.
	var partic uint64
	for _, c := range comms {
		partic |= 1<<uint(c.Sender) | 1<<uint(c.Receiver)
	}

	bestCount, bestSet := full, uint64(0)
	var buf []int // reused channel scratch across candidates (worker-local)
	for base := 0; base < len(s.prog.Procs); base++ {
		if partic&(1<<uint(base)) == 0 {
			continue
		}
		var set uint64
		var ok bool
		set, ok, buf = s.ampleClosure(m, base, buf)
		if !ok || set == bestSet {
			continue
		}
		count := 0
		for _, c := range comms {
			if set&(1<<uint(c.Sender)) != 0 {
				count++
			}
		}
		if count > 0 && count < bestCount {
			bestCount, bestSet = count, set
		}
	}
	if bestCount >= full {
		return full
	}

	// Stable partition: ample communications first.
	tmp := make([]vm.CommChoice, 0, full)
	for _, c := range comms {
		if bestSet&(1<<uint(c.Sender)) != 0 {
			tmp = append(tmp, c)
		}
	}
	for _, c := range comms {
		if bestSet&(1<<uint(c.Sender)) == 0 {
			tmp = append(tmp, c)
		}
	}
	copy(comms, tmp)
	return bestCount
}

// ampleClosure grows the closed process set from base on the current
// quiescent state. It reports false when the closure crosses an
// externally bound channel. buf is scratch space, returned for reuse.
func (s *search) ampleClosure(m *vm.Machine, base int, buf []int) (uint64, bool, []int) {
	ind := s.ind
	var set uint64
	var work []int
	add := func(p int) {
		if set&(1<<uint(p)) != 0 {
			return
		}
		set |= 1 << uint(p)
		work = append(work, p)
		// A dirty ref-flow region may share heap objects among its
		// members: keep it whole on one side of the split.
		if r := ind.Region[p]; r >= 0 && ind.DirtyRegion[r] {
			for q := range ind.Region {
				if ind.Region[q] == r && set&(1<<uint(q)) == 0 {
					set |= 1 << uint(q)
					work = append(work, q)
				}
			}
		}
	}
	add(base)
	for len(work) > 0 {
		p := work[len(work)-1]
		work = work[:len(work)-1]
		buf = m.OfferedChannels(p, buf[:0])
		for _, ch := range buf {
			if ind.ChanExt[ch] {
				return 0, false, buf
			}
			for _, q := range ind.Touch[ch] {
				add(q)
			}
		}
	}
	return set, true, buf
}
