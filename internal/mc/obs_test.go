package mc_test

import (
	"testing"
	"time"

	"esplang/internal/mc"
	"esplang/internal/obs"
)

const pipelineSrc = `
channel c: int
process producer { $i = 0; while (i < 4) { out( c, i); i = i + 1; } }
process consumer { $n = 0; while (n < 4) { in( c, $v); assert( v == n); n = n + 1; } }
`

// TestProgressCallback checks the periodic-progress plumbing: the search
// always delivers a final sample reflecting the finished counters, and
// the metrics registry carries the same numbers.
func TestProgressCallback(t *testing.T) {
	prog := compileSrc(t, pipelineSrc)
	reg := obs.NewMetrics()
	var samples []mc.ProgressInfo
	opts := mc.Options{
		Workers:          1,
		Progress:         func(info mc.ProgressInfo) { samples = append(samples, info) },
		ProgressInterval: time.Millisecond,
		Metrics:          reg,
	}
	res := mc.Check(prog, opts)
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	if len(samples) == 0 {
		t.Fatal("no progress samples delivered")
	}
	last := samples[len(samples)-1]
	if !last.Final {
		t.Error("last sample not marked final")
	}
	if int(last.States) != res.States {
		t.Errorf("final sample reports %d states, result says %d", last.States, res.States)
	}
	if int(last.Transitions) != res.Transitions {
		t.Errorf("final sample reports %d transitions, result says %d", last.Transitions, res.Transitions)
	}
	if last.Frontier != 0 {
		t.Errorf("final sample reports frontier %d, want 0", last.Frontier)
	}
	if s := last.String(); s == "" {
		t.Error("empty progress string")
	}

	snap := reg.Snapshot()
	if snap.Gauges["mc_states"] != last.States {
		t.Errorf("mc_states gauge %d, want %d", snap.Gauges["mc_states"], last.States)
	}
	if snap.Gauges["mc_transitions"] != last.Transitions {
		t.Errorf("mc_transitions gauge %d, want %d", snap.Gauges["mc_transitions"], last.Transitions)
	}
	if snap.Histograms["mc_frontier_depth"].Count == 0 {
		t.Error("mc_frontier_depth histogram empty")
	}
}

// TestProgressSimulationMode checks the synthetic final sample emitted by
// simulation mode.
func TestProgressSimulationMode(t *testing.T) {
	prog := compileSrc(t, pipelineSrc)
	var samples []mc.ProgressInfo
	res := mc.Check(prog, mc.Options{
		Mode:     mc.Simulation,
		SimRuns:  5,
		Progress: func(info mc.ProgressInfo) { samples = append(samples, info) },
	})
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	if len(samples) != 1 || !samples[0].Final {
		t.Fatalf("want exactly one final sample, got %d", len(samples))
	}
	if int(samples[0].States) != res.States {
		t.Errorf("sample reports %d states, result says %d", samples[0].States, res.States)
	}
}

// TestProgressDoesNotChangeResult checks observation independence on the
// checker: the same search with and without progress/metrics attached
// visits the same states (Workers: 1 is fully deterministic).
func TestProgressDoesNotChangeResult(t *testing.T) {
	prog := compileSrc(t, pipelineSrc)
	plain := mc.Check(prog, mc.Options{Workers: 1})
	observed := mc.Check(prog, mc.Options{
		Workers:          1,
		Progress:         func(mc.ProgressInfo) {},
		ProgressInterval: time.Millisecond,
		Metrics:          obs.NewMetrics(),
	})
	if plain.States != observed.States || plain.Transitions != observed.Transitions ||
		plain.MaxDepth != observed.MaxDepth {
		t.Errorf("search differs under observation: %d/%d/%d plain, %d/%d/%d observed",
			plain.States, plain.Transitions, plain.MaxDepth,
			observed.States, observed.Transitions, observed.MaxDepth)
	}
}
