package mc_test

import (
	"strings"
	"testing"

	"esplang/internal/mc"
)

// chatterSrc: two processes ping-pong forever on chatC while a worker
// starves waiting for workC — the system has an infinite run that never
// touches workC.
const chatterSrc = `
channel chatC: int
channel chatBackC: int
channel workC: int
process a {
    while (true) {
        out( chatC, 1);
        in( chatBackC, $x);
    }
}
process b {
    while (true) {
        in( chatC, $y);
        out( chatBackC, y);
    }
}
process worker {
    while (true) {
        in( workC, $w);
    }
}
`

func TestNonProgressCycleFound(t *testing.T) {
	prog := compileSrc(t, chatterSrc)
	res := mc.CheckProgress(prog, []string{"workC"}, mc.Options{})
	if res.Violation == nil {
		t.Fatal("starvation cycle not found")
	}
	if len(res.Violation.Trace) == 0 {
		t.Error("no cycle trace")
	}
	joined := ""
	for _, s := range res.Violation.Trace {
		joined += s.Desc + "\n"
	}
	if !strings.Contains(joined, "chatC") && !strings.Contains(joined, "chatBackC") {
		t.Errorf("cycle trace does not mention the chatter channels:\n%s", joined)
	}
}

func TestProgressOnChatterClears(t *testing.T) {
	// Declaring the chatter itself as progress: every cycle now contains
	// a progress step, so no violation.
	prog := compileSrc(t, chatterSrc)
	res := mc.CheckProgress(prog, []string{"chatC"}, mc.Options{})
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	if res.States < 2 {
		t.Errorf("suspiciously few states: %d", res.States)
	}
}

func TestProgressServerLoop(t *testing.T) {
	// A served request loop: progress on the reply channel holds (every
	// cycle passes through a reply).
	prog := compileSrc(t, `
channel req: int
channel rep: int
process server {
    while (true) {
        in( req, $v);
        out( rep, v + 1);
    }
}
process client {
    while (true) {
        out( req, 1);
        in( rep, $r);
    }
}
`)
	res := mc.CheckProgress(prog, []string{"rep"}, mc.Options{})
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	// With an unrelated channel as the progress label, the whole loop is
	// a non-progress cycle.
	prog2 := compileSrc(t, `
channel req: int
channel rep: int
channel never: int
process server {
    while (true) {
        in( req, $v);
        out( rep, v + 1);
    }
}
process client {
    while (true) {
        out( req, 1);
        in( rep, $r);
    }
}
process idle {
    in( never, $x);
}
`)
	res2 := mc.CheckProgress(prog2, []string{"never"}, mc.Options{})
	if res2.Violation == nil {
		t.Fatal("non-progress loop not found")
	}
}

func TestProgressUnknownChannel(t *testing.T) {
	prog := compileSrc(t, chatterSrc)
	res := mc.CheckProgress(prog, []string{"nosuch"}, mc.Options{})
	if res.Violation == nil || res.Violation.Fault == nil {
		t.Fatal("unknown progress channel not reported")
	}
}

func TestProgressTerminatingSystemHasNoCycle(t *testing.T) {
	prog := compileSrc(t, `
channel c: int
process p { $i = 0; while (i < 3) { out( c, i); i = i + 1; } }
process q { $n = 0; while (n < 3) { in( c, $v); n = n + 1; } }
`)
	res := mc.CheckProgress(prog, []string{}, mc.Options{})
	if res.Violation != nil {
		t.Fatalf("terminating system reported a cycle: %v", res.Violation)
	}
}
