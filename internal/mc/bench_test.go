package mc_test

import (
	"fmt"
	"runtime"
	"testing"

	"esplang/internal/check"
	"esplang/internal/compile"
	"esplang/internal/ir"
	"esplang/internal/mc"
	"esplang/internal/parser"
)

func parseAndCompile(src string) (*ir.Program, error) {
	tree, err := parser.Parse([]byte(src))
	if err != nil {
		return nil, err
	}
	info, err := check.Check(tree)
	if err != nil {
		return nil, err
	}
	return compile.Program(tree, info), nil
}

// benchSource builds a program whose state space is the product of
// `pairs` independent producer/consumer pipelines of `length` rendezvous
// each — (length+1)^pairs reachable states, branching `pairs` at almost
// every state. With pairs=2, length=320 that is ≈103k states, the ≥10^5
// state space the parallel-speedup acceptance criterion calls for.
func benchSource(pairs, length int) string {
	src := ""
	for p := 0; p < pairs; p++ {
		src += fmt.Sprintf(`
channel c%[1]d: int
process producer%[1]d {
    $i = 0;
    while (i < %[2]d) { out( c%[1]d, i); i = i + 1; }
}
process consumer%[1]d {
    $n = 0;
    while (n < %[2]d) { in( c%[1]d, $v); assert( v == n); n = n + 1; }
}
`, p, length)
	}
	return src
}

func compileBench(b *testing.B, pairs, length int) *ir.Program {
	b.Helper()
	prog, err := parseAndCompile(benchSource(pairs, length))
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// benchWorkerCounts covers sequential, a midpoint, and all cores.
func benchWorkerCounts() []int {
	max := runtime.GOMAXPROCS(0)
	counts := []int{1}
	if max >= 4 {
		counts = append(counts, max/2)
	}
	if max > 1 {
		counts = append(counts, max)
	}
	return counts
}

// BenchmarkExhaustiveWorkers measures the parallel frontier search over a
// ≥10^5-state space at several worker counts. Run with
//
//	go test -bench ExhaustiveWorkers -benchtime 3x ./internal/mc/
//
// and compare workers=1 against workers=GOMAXPROCS: on a multi-core
// machine the wall-clock ratio is the speedup (the work — states and
// transitions — is identical by construction, which the benchmark
// asserts).
func BenchmarkExhaustiveWorkers(b *testing.B) {
	prog := compileBench(b, 2, 320) // 321² ≈ 103k states
	want := -1
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := mc.Check(prog, mc.Options{Workers: w})
				if res.Violation != nil || res.Truncated {
					b.Fatalf("unexpected result: %v", res)
				}
				if want == -1 {
					want = res.States
				} else if res.States != want {
					b.Fatalf("workers=%d explored %d states, want %d", w, res.States, want)
				}
				b.ReportMetric(float64(res.States), "states")
				b.ReportMetric(float64(res.States)/b.Elapsed().Seconds()/float64(b.N), "states/s")
			}
		})
	}
}

// BenchmarkBitstateWorkers: the same space under bit-state hashing.
func BenchmarkBitstateWorkers(b *testing.B) {
	prog := compileBench(b, 2, 320)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := mc.Check(prog, mc.Options{Mode: mc.BitState, Workers: w})
				if res.Violation != nil {
					b.Fatalf("unexpected violation: %v", res.Violation)
				}
				b.ReportMetric(float64(res.States), "states")
			}
		})
	}
}

// TestBenchProgramEquivalence pins the benchmark program's state space:
// every worker count explores exactly (length+1)^pairs states. A smaller
// instance keeps the test fast; the benchmark asserts the big one.
func TestBenchProgramEquivalence(t *testing.T) {
	prog, err := parseAndCompile(benchSource(2, 40))
	if err != nil {
		t.Fatal(err)
	}
	const want = 41 * 41
	for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		res := mc.Check(prog, mc.Options{Workers: w})
		if res.Violation != nil || res.Truncated {
			t.Fatalf("workers=%d unexpected result: %v", w, res)
		}
		if res.States != want {
			t.Errorf("workers=%d states = %d, want %d", w, res.States, want)
		}
	}
}
