package promela_test

import (
	"strings"
	"testing"

	"esplang/internal/ast"
	"esplang/internal/check"
	"esplang/internal/parser"
	"esplang/internal/promela"
)

func generate(t *testing.T, src string, opts promela.Options) string {
	t.Helper()
	prog, err := parser.Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := check.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return promela.Generate(prog, info, opts)
}

func wantContains(t *testing.T, got string, subs ...string) {
	t.Helper()
	for _, s := range subs {
		if !strings.Contains(got, s) {
			t.Errorf("generated Promela missing %q\n---\n%s", s, got)
		}
	}
}

func TestGenerateAdd5(t *testing.T) {
	out := generate(t, `
channel chan1: int
channel chan2: int
process add5 {
    while (true) {
        in( chan1, $i);
        out( chan2, i+5);
    }
}
process driver {
    out( chan1, 37);
    in( chan2, $r);
    assert( r == 42);
}
`, promela.Options{})
	wantContains(t, out,
		"chan chan1 = [0] of { int }",
		"chan chan2 = [0] of { int }",
		"proctype add5()",
		"proctype driver()",
		"chan1?i_0;",
		"chan2!(i_0 + 5);",
		"assert((r_0 == 42));",
		"run add5();",
		"run driver();",
		"init {",
	)
}

func TestGenerateObjectTables(t *testing.T) {
	out := generate(t, `
type dataT = array of int [8]
type msgT = record of { tag: int, data: dataT}
channel c: msgT
process p {
    $d: dataT = { 4 -> 0};
    out( c, { 1, d});
    unlink( d);
}
process q {
    in( c, { $tag, $data});
    unlink( data);
}
`, promela.Options{DefaultBound: 8})
	wantContains(t, out,
		"#define dataT_MAX 8",
		"#define dataT_BOUND 8",
		"typedef dataT_row",
		"byte dataT_rc[dataT_MAX+1];",
		"bit dataT_live[dataT_MAX+1];",
		"inline alloc_dataT(h)",
		"assert(h != 0); /* out of objectIds: memory leak (§5.2) */",
		"inline unlink_dataT(h)",
		"inline unlink_msgT(h)",
		"unlink_dataT(msgT_f1[h]);", // recursive child unlink
		"link_dataT(data_",          // receive binding links the handle
	)
}

func TestGenerateUnionDispatch(t *testing.T) {
	out := generate(t, `
type sendT = record of { dest: int, vAddr: int, size: int}
type updateT = record of { vAddr: int, pAddr: int}
type userT = union of { send: sendT, update: updateT}
channel userReqC: userT
process a {
    while (true) { in( userReqC, { send |> { $dest, $vAddr, $size}}); }
}
process b {
    while (true) { in( userReqC, { update |> { $vAddr, $pAddr}}); }
}
process w {
    out( userReqC, { send |> { 5, 10000, 512}});
    out( userReqC, { update |> { 1, 2}});
}
`, promela.Options{})
	wantContains(t, out,
		"chan userReqC = [0] of { byte, int, int }",
		"userReqC?eval(0),", // tag dispatch for 'send'
		"userReqC?eval(1),", // tag dispatch for 'update'
		"alloc_sendT(",
		"userReqC!0,", // send with tag 0
		"userReqC!1,", // send with tag 1
	)
}

func TestGenerateSelfPattern(t *testing.T) {
	out := generate(t, `
type reqT = record of { ret: int, v: int}
channel req: reqT
process server {
    while (true) {
        in( req, { $ret, $v});
        skip;
    }
}
process client {
    out( req, { @, 1});
}
`, promela.Options{})
	wantContains(t, out, "req!_pid, 1;", "req?ret_0, v_1;")
}

func TestGenerateAlt(t *testing.T) {
	out := generate(t, `
const CAP = 4;
channel c1: int
channel c2: int
process fifo {
    $q: #array of int = #{ CAP -> 0};
    $hd = 0;
    $tl = 0;
    while (true) {
        alt {
            case( !(tl - hd == CAP), in( c1, $v)) { q[tl % CAP] = v; tl = tl + 1; }
            case( !(tl == hd), out( c2, q[hd % CAP])) { hd = hd + 1; }
        }
    }
}
process src { $i = 0; while (i < 8) { out( c1, i); i = i + 1; } }
process dst { $n = 0; while (n < 8) { in( c2, $x); n = n + 1; } }
`, promela.Options{})
	wantContains(t, out,
		"#define CAP 4",
		":: (!(((tl_2 - hd_1) == CAP))) ->",
		"c1?v_3;",
		":: (!((tl_2 == hd_1))) ->",
	)
}

func TestGenerateIsStable(t *testing.T) {
	src := `
channel c: int
process p { out( c, 1); }
process q { in( c, $v); }
`
	a := generate(t, src, promela.Options{})
	b := generate(t, src, promela.Options{})
	if a != b {
		t.Error("generation is not deterministic")
	}
}

func TestGenerateMultiInstanceDefine(t *testing.T) {
	out := generate(t, `
channel c: int
process p { out( c, 1); }
process q { in( c, $v); }
`, promela.Options{Instances: 4})
	wantContains(t, out, "#define INSTANCES 4")
}

func TestGenerateLocalDestructure(t *testing.T) {
	out := generate(t, `
type sendT = record of { dest: int, vAddr: int, size: int}
type userT = union of { send: sendT}
process p {
    $ur: userT = { send |> { 5, 10000, 512}};
    { send |> { $dest, $vAddr, $size}} = ur;
    assert( dest == 5);
    unlink( ur);
}
`, promela.Options{})
	wantContains(t, out,
		"assert(userT_live[ur_0]);",
		"assert(userT_tag[ur_0] == 0);",
		"dest_1 = sendT_f0[userT_f0[ur_0]];",
	)
}

func TestExternalChannelsAnnotated(t *testing.T) {
	out := generate(t, `
channel inC: int external writer
channel outC: int external reader
process p { in( inC, $v); out( outC, v); }
`, promela.Options{})
	wantContains(t, out,
		"/* external writer: test driver produces */",
		"/* external reader: test driver consumes */",
	)
}

var _ = ast.Program{} // keep the import for documentation references
