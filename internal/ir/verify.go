package ir

import (
	"fmt"
)

// StackEffect returns the net operand-stack effect of executing in: the
// number of values pushed minus the number popped. The compiler uses it
// to track stack depth while emitting code; Verify uses it to prove the
// depths stay balanced over every control-flow path.
func StackEffect(in Instr) int {
	switch in.Op {
	case Const, SelfID, LoadLocal, Dup:
		return 1
	case StoreLocal, Pop, JumpIfFalse, JumpIfTrue,
		Link, Unlink, Assert, Send, SendCommit,
		Add, Sub, Mul, Div, Mod,
		Eq, Ne, Lt, Le, Gt, Ge,
		NewArray, GetIndex:
		return -1
	case NewRecord:
		return 1 - in.B
	case SetField:
		return -2
	case SetIndex:
		return -3
	default:
		// Neg, Not, GetField, UnionGet, CastCopy, CastReuse, NewUnion,
		// Jump, Nop, Halt, Recv, Alt: net zero.
		return 0
	}
}

// StackIn returns how many operands in pops (its minimum entry depth).
// StackEffect alone cannot distinguish "pops 1, pushes 1" from "touches
// nothing", so Verify checks both.
func StackIn(in Instr) int {
	switch in.Op {
	case Dup, StoreLocal, Pop, JumpIfFalse, JumpIfTrue,
		Neg, Not, GetField, UnionGet, CastCopy, CastReuse, NewUnion,
		Link, Unlink, Assert, Send, SendCommit:
		return 1
	case Add, Sub, Mul, Div, Mod, Eq, Ne, Lt, Le, Gt, Ge,
		NewArray, GetIndex, SetField:
		return 2
	case SetIndex:
		return 3
	case NewRecord:
		return in.B
	default:
		// Const, SelfID, LoadLocal, Jump, Nop, Halt, Recv, Alt.
		return 0
	}
}

// VerifyError describes one structural violation found by Verify.
type VerifyError struct {
	Proc string // offending process ("" for program-level problems)
	PC   int    // offending instruction (-1 when not instruction-specific)
	Msg  string
}

func (e *VerifyError) Error() string {
	switch {
	case e.Proc == "":
		return fmt.Sprintf("ir: %s", e.Msg)
	case e.PC < 0:
		return fmt.Sprintf("ir: process %s: %s", e.Proc, e.Msg)
	}
	return fmt.Sprintf("ir: process %s: pc %d: %s", e.Proc, e.PC, e.Msg)
}

// Verify checks the structural invariants every compiled (and optimized)
// program must satisfy, returning the first violation found:
//
//   - process and channel IDs match their table positions;
//   - jump and patch targets land inside the code;
//   - channel, port, alt, assert, and local-slot operands are in range;
//   - receive patterns reference valid slots and well-formed union arms;
//   - blocking instructions have a resume point (they are never the last
//     instruction) and alt arms have valid body/eval entry points;
//   - operand-stack depths balance: over every control-flow path each
//     instruction is entered at one consistent depth, never underflows,
//     and never exceeds the process's declared MaxStack.
//
// The optimizer runs Verify after every pass when verification is
// enabled, so a pass that corrupts any of these invariants is caught at
// the pass boundary instead of as a downstream VM fault or miscompile.
func Verify(prog *Program) error {
	for i, ch := range prog.Channels {
		if ch.ID != i {
			return &VerifyError{Msg: fmt.Sprintf("channel %s: ID %d at table index %d", ch.Name, ch.ID, i)}
		}
	}
	for i, p := range prog.Procs {
		if p.ID != i {
			return &VerifyError{Msg: fmt.Sprintf("process %s: ID %d at table index %d", p.Name, p.ID, i)}
		}
		if err := verifyProc(prog, p); err != nil {
			return err
		}
	}
	return nil
}

func verifyProc(prog *Program, p *Proc) error {
	bad := func(pc int, format string, args ...any) error {
		return &VerifyError{Proc: p.Name, PC: pc, Msg: fmt.Sprintf(format, args...)}
	}
	n := len(p.Code)

	// Ports: channel IDs and pattern slots.
	for i, port := range p.Ports {
		if port.Chan < 0 || port.Chan >= len(prog.Channels) {
			return bad(-1, "port %d: channel id %d out of range [0,%d)", i, port.Chan, len(prog.Channels))
		}
		if err := verifyPat(port.Pat, p); err != nil {
			return bad(-1, "port %d: %v", i, err)
		}
	}

	// Alt tables: arm targets, guards, ports.
	for ai, alt := range p.Alts {
		if len(alt.Arms) == 0 {
			return bad(-1, "alt %d has no arms", ai)
		}
		for j, arm := range alt.Arms {
			if arm.Chan < 0 || arm.Chan >= len(prog.Channels) {
				return bad(-1, "alt %d arm %d: channel id %d out of range", ai, j, arm.Chan)
			}
			if arm.GuardSlot < -1 || arm.GuardSlot >= p.NumLocals {
				return bad(-1, "alt %d arm %d: guard slot %d out of range [0,%d)", ai, j, arm.GuardSlot, p.NumLocals)
			}
			if arm.BodyPC < 0 || arm.BodyPC >= n {
				return bad(-1, "alt %d arm %d: body pc %d out of range [0,%d)", ai, j, arm.BodyPC, n)
			}
			if arm.IsSend {
				if arm.EvalPC < 0 || arm.EvalPC >= n {
					return bad(-1, "alt %d arm %d: eval pc %d out of range [0,%d)", ai, j, arm.EvalPC, n)
				}
			} else {
				if arm.Port < 0 || arm.Port >= len(p.Ports) {
					return bad(-1, "alt %d arm %d: port %d out of range [0,%d)", ai, j, arm.Port, len(p.Ports))
				}
				if p.Ports[arm.Port].Chan != arm.Chan {
					return bad(-1, "alt %d arm %d: port %d is on channel %d, arm on %d",
						ai, j, arm.Port, p.Ports[arm.Port].Chan, arm.Chan)
				}
			}
		}
	}

	// Per-instruction operand validity.
	for pc, in := range p.Code {
		switch in.Op {
		case LoadLocal, StoreLocal:
			if in.A < 0 || in.A >= p.NumLocals {
				return bad(pc, "%s: slot %d out of range [0,%d)", in.Op, in.A, p.NumLocals)
			}
		case Jump, JumpIfFalse, JumpIfTrue:
			if in.A < 0 || in.A >= n {
				return bad(pc, "%s: target %d out of range [0,%d)", in.Op, in.A, n)
			}
		case Send, SendCommit:
			if in.A < 0 || in.A >= len(prog.Channels) {
				return bad(pc, "%s: channel id %d out of range [0,%d)", in.Op, in.A, len(prog.Channels))
			}
			if in.Op == Send && pc+1 >= n {
				return bad(pc, "send has no resume point (last instruction)")
			}
		case Recv:
			if in.A < 0 || in.A >= len(prog.Channels) {
				return bad(pc, "recv: channel id %d out of range [0,%d)", in.A, len(prog.Channels))
			}
			if in.B < 0 || in.B >= len(p.Ports) {
				return bad(pc, "recv: port %d out of range [0,%d)", in.B, len(p.Ports))
			}
			if p.Ports[in.B].Chan != in.A {
				return bad(pc, "recv: port %d is on channel %d, instruction names %d", in.B, p.Ports[in.B].Chan, in.A)
			}
			if pc+1 >= n {
				return bad(pc, "recv has no resume point (last instruction)")
			}
		case Alt:
			if in.A < 0 || in.A >= len(p.Alts) {
				return bad(pc, "alt: table index %d out of range [0,%d)", in.A, len(p.Alts))
			}
		case Assert:
			if in.A < 0 || in.A >= len(prog.Asserts) {
				return bad(pc, "assert: id %d out of range [0,%d)", in.A, len(prog.Asserts))
			}
		case NewRecord:
			if in.B < 0 {
				return bad(pc, "newrecord: negative field count %d", in.B)
			}
		}
	}

	return verifyStack(p, bad)
}

// verifyStack propagates operand-stack depths over the control-flow
// graph and reports underflow, overflow past MaxStack, or an instruction
// reachable at two different depths.
func verifyStack(p *Proc, bad func(pc int, format string, args ...any) error) error {
	n := len(p.Code)
	if n == 0 {
		return nil
	}
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1 // unvisited
	}
	var work []int
	visit := func(pc, d int) error {
		if pc < 0 || pc >= n {
			return bad(pc, "control flows past the end of code")
		}
		if depth[pc] == -1 {
			depth[pc] = d
			work = append(work, pc)
			return nil
		}
		if depth[pc] != d {
			return bad(pc, "inconsistent stack depth: entered at %d and %d", depth[pc], d)
		}
		return nil
	}
	// Entry points all start at depth 0: process start, and alt arm
	// body/eval resume points (alts sit at statement boundaries, where
	// the operand stack is empty).
	if err := visit(0, 0); err != nil {
		return err
	}
	for _, alt := range p.Alts {
		for _, arm := range alt.Arms {
			if arm.IsSend {
				if err := visit(arm.EvalPC, 0); err != nil {
					return err
				}
			}
			if err := visit(arm.BodyPC, 0); err != nil {
				return err
			}
		}
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		in := p.Code[pc]
		d := depth[pc]
		if need := StackIn(in); d < need {
			return bad(pc, "stack underflow: %s needs %d operands, depth is %d", in.Op, need, d)
		}
		after := d + StackEffect(in)
		if after > p.MaxStack {
			return bad(pc, "stack overflow: depth %d exceeds MaxStack %d", after, p.MaxStack)
		}
		var err error
		switch in.Op {
		case Jump:
			err = visit(in.A, after)
		case JumpIfFalse, JumpIfTrue:
			if err = visit(in.A, after); err == nil {
				err = visit(pc+1, after)
			}
		case Halt, Alt:
			// No fall-through; alt arms were seeded as entry points.
		default:
			err = visit(pc+1, after)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func verifyPat(pat *Pat, p *Proc) error {
	if pat == nil {
		return fmt.Errorf("nil pattern")
	}
	switch pat.Kind {
	case PatBind, PatDynEq:
		if pat.Slot < 0 || pat.Slot >= p.NumLocals {
			return fmt.Errorf("pattern slot %d out of range [0,%d)", pat.Slot, p.NumLocals)
		}
	case PatUnion:
		if len(pat.Elems) != 1 {
			return fmt.Errorf("union pattern with %d payloads", len(pat.Elems))
		}
		if pat.Tag < 0 {
			return fmt.Errorf("union pattern with negative tag %d", pat.Tag)
		}
	}
	for _, e := range pat.Elems {
		if err := verifyPat(e, p); err != nil {
			return err
		}
	}
	return nil
}
