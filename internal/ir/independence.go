// Static transition-independence facts: the result of the whole-program
// independence analysis (analysis.ComputeIndependence). The table
// records, per channel, every process that can ever stand on either side
// of a rendezvous on it, and, per process, whether the process follows
// the exclusive-ownership discipline (§4.4) that keeps its heap region
// disjoint from every other process's at quiescent states. From those
// facts it derives a conservative per-process-pair commutation relation:
// two enabled transitions of independent processes can be fired in
// either order without changing the reachable states, the enabledness of
// other transitions, or which faults fire.
//
// The model checker's ample-set partial-order reduction consumes the
// table (mc.Options.Reduction), and the espvet diagnostics ESPV013
// (always-independent alt arms) and ESPV014 (totally ordered channel
// pair) are read straight off the pair relation.
package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Independence is the whole-program transition-independence side table
// (the analogue of Schedule for the search, rather than the scheduler).
type Independence struct {
	// Touch[ch] lists the processes with a reachable communication site
	// on channel ch, either direction, alt arms included — sorted
	// ascending. A process not in Touch[ch] can never block on ch, so it
	// can never be the counterparty of a transition on ch.
	Touch [][]int
	// ChanExt[ch] marks channels with an external binding: the
	// environment may supply a counterparty the program text cannot see,
	// so transitions on them are never classified independent.
	ChanExt []bool
	// Clean[p] reports that process p follows the exclusive-ownership
	// discipline: every object it sends (or embeds in a sent value) stops
	// being referenced by p before p's next blocking point, and it never
	// creates intra-process aliases the per-slot model cannot follow. In
	// a program whose processes are all clean, every heap object is
	// referenced by exactly one non-halted process at every quiescent
	// state, so transitions of disjoint process pairs touch disjoint
	// heap regions.
	Clean []bool
	// CleanReason[p] explains why p is not clean ("" when clean).
	CleanReason []string
	// Region[p] is the ref-flow region of p: processes connected by
	// channels whose element type carries references share a region
	// (objects can only travel along such channels). -1 when p touches no
	// reference-carrying channel.
	Region []int
	// DirtyRegion[r] marks regions containing an unclean process (or a
	// reference-carrying external channel): processes of a dirty region
	// may share heap objects at quiescent states, so they are mutually
	// dependent and must stay on one side of any ample split.
	DirtyRegion []bool
	// Pairs[p][q] is the derived relation: true when every transition of
	// p commutes with every transition of q (p != q, no shared channel,
	// heap-compatible).
	Pairs [][]bool
}

// HeapCompatible reports that transitions of p and q always touch
// disjoint heap regions: they are in different ref-flow regions, or
// their common region is clean.
func (ind *Independence) HeapCompatible(p, q int) bool {
	rp := ind.Region[p]
	if rp < 0 || rp != ind.Region[q] {
		return true
	}
	return !ind.DirtyRegion[rp]
}

// Independent reports the derived pair relation (false on the diagonal).
func (ind *Independence) Independent(p, q int) bool {
	return p != q && ind.Pairs[p][q]
}

// Touches reports whether process p has a reachable site on channel ch.
func (ind *Independence) Touches(ch, p int) bool {
	i := sort.SearchInts(ind.Touch[ch], p)
	return i < len(ind.Touch[ch]) && ind.Touch[ch][i] == p
}

// FormatIndependence renders the table for espc -dump-indep:
// deterministic, one line per channel and per process, with the pair
// matrix summarized as each process's independent-partner set.
func FormatIndependence(prog *Program, ind *Independence) string {
	procName := func(i int) string {
		if i >= 0 && i < len(prog.Procs) {
			return prog.Procs[i].Name
		}
		return fmt.Sprintf("proc%d", i)
	}
	nameList := func(idx []int) string {
		if len(idx) == 0 {
			return "{}"
		}
		names := make([]string, len(idx))
		for i, p := range idx {
			names[i] = procName(p)
		}
		return "{" + strings.Join(names, " ") + "}"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "transition independence for %s\n", prog.Name)

	b.WriteString("\nchannels (procs with reachable sites):\n")
	for ch := range prog.Channels {
		ext := ""
		if ind.ChanExt[ch] {
			ext = "  [external]"
		}
		fmt.Fprintf(&b, "  %-12s %s%s\n", prog.Channels[ch].Name+":", nameList(ind.Touch[ch]), ext)
	}

	b.WriteString("\nprocesses (heap discipline):\n")
	for p := range prog.Procs {
		state := "clean"
		if !ind.Clean[p] {
			state = "unclean: " + ind.CleanReason[p]
		}
		region := "-"
		if ind.Region[p] >= 0 {
			region = fmt.Sprintf("%d", ind.Region[p])
			if ind.DirtyRegion[ind.Region[p]] {
				region += " (dirty)"
			}
		}
		fmt.Fprintf(&b, "  %-12s region=%-10s %s\n", procName(p)+":", region, state)
	}

	b.WriteString("\nindependent pairs:\n")
	any := false
	for p := range prog.Procs {
		var partners []int
		for q := range prog.Procs {
			if ind.Independent(p, q) {
				partners = append(partners, q)
			}
		}
		if len(partners) > 0 {
			any = true
			fmt.Fprintf(&b, "  %-12s %s\n", procName(p)+":", nameList(partners))
		}
	}
	if !any {
		b.WriteString("  (none)\n")
	}
	return b.String()
}
