package ir

import (
	"strings"
	"testing"
)

// twoProcProg builds a minimal well-formed program: a sender looping a
// constant into channel 0 and a receiver binding it into a local.
func twoProcProg() *Program {
	sender := &Proc{
		ID:   0,
		Name: "send",
		Code: []Instr{
			{Op: Const, Val: 7}, // 0
			{Op: Send, A: 0},    // 1
			{Op: Jump, A: 0},    // 2
			{Op: Halt},          // 3
		},
		MaxStack: 1,
	}
	recver := &Proc{
		ID:   1,
		Name: "recv",
		Code: []Instr{
			{Op: Recv, A: 0, B: 0}, // 0
			{Op: LoadLocal, A: 0},  // 1
			{Op: Pop},              // 2
			{Op: Jump, A: 0},       // 3
			{Op: Halt},             // 4
		},
		NumLocals: 1,
		LocalName: []string{"v"},
		Ports:     []Port{{Chan: 0, Pat: &Pat{Kind: PatBind, Slot: 0}}},
		MaxStack:  1,
	}
	return &Program{
		Name:     "t",
		Channels: []*Channel{{ID: 0, Name: "c"}},
		Procs:    []*Proc{sender, recver},
	}
}

func TestVerifyOK(t *testing.T) {
	if err := Verify(twoProcProg()); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(p *Program)
		want    string
	}{
		{
			"jump target out of range",
			func(p *Program) { p.Procs[0].Code[2].A = 99 },
			"target 99 out of range",
		},
		{
			"bad channel id",
			func(p *Program) { p.Procs[0].Code[1].A = 5 },
			"channel id 5 out of range",
		},
		{
			"bad port index",
			func(p *Program) { p.Procs[1].Code[0].B = 3 },
			"port 3 out of range",
		},
		{
			"port on wrong channel",
			func(p *Program) {
				p.Procs[1].Ports[0].Chan = 0
				p.Channels = append(p.Channels, &Channel{ID: 1, Name: "d"})
				p.Procs[1].Code[0].A = 1
			},
			"port 0 is on channel 0",
		},
		{
			"stack underflow",
			func(p *Program) { p.Procs[0].Code[0] = Instr{Op: Nop} },
			"stack underflow",
		},
		{
			"stack overflow past MaxStack",
			func(p *Program) { p.Procs[0].Code[1] = Instr{Op: Const, Val: 1} },
			"exceeds MaxStack",
		},
		{
			"inconsistent depth at merge",
			func(p *Program) {
				p.Procs[0].Code = []Instr{
					{Op: Const, Val: 1},    // 0: depth 0 -> 1
					{Op: JumpIfTrue, A: 4}, // 1: pops; reaches 4 at depth 0
					{Op: Const, Val: 2},    // 2: depth 0 -> 1
					{Op: Jump, A: 4},       // 3: reaches 4 at depth 1 — mismatch
					{Op: Halt},             // 4
				}
			},
			"inconsistent stack depth",
		},
		{
			"blocking op with no resume point",
			func(p *Program) {
				p.Procs[0].Code = []Instr{
					{Op: Const, Val: 1},
					{Op: Send, A: 0},
				}
			},
			"no resume point",
		},
		{
			"pattern slot out of range",
			func(p *Program) { p.Procs[1].Ports[0].Pat.Slot = 9 },
			"pattern slot 9 out of range",
		},
		{
			"bad local slot",
			func(p *Program) { p.Procs[1].Code[1].A = 4 },
			"slot 4 out of range",
		},
		{
			"channel id mismatch",
			func(p *Program) { p.Channels[0].ID = 2 },
			"ID 2 at table index 0",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := twoProcProg()
			tc.corrupt(p)
			err := Verify(p)
			if err == nil {
				t.Fatal("corruption not detected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestStackEffectMatchesInOut(t *testing.T) {
	// StackIn must never exceed what StackEffect implies is popped plus
	// what is pushed; sanity-check a few ops with known shapes.
	if StackEffect(Instr{Op: Add}) != -1 || StackIn(Instr{Op: Add}) != 2 {
		t.Error("Add: want pops 2, net -1")
	}
	if StackEffect(Instr{Op: NewRecord, B: 3}) != -2 || StackIn(Instr{Op: NewRecord, B: 3}) != 3 {
		t.Error("NewRecord(3): want pops 3, net -2")
	}
	if StackEffect(Instr{Op: Dup}) != 1 || StackIn(Instr{Op: Dup}) != 1 {
		t.Error("Dup: want pops 1, net +1")
	}
}
