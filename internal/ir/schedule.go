// Static rendezvous schedule: the result of the optimizer's
// FuseProcesses pass. The schedule records, per channel, which processes
// can ever stand on each side of a rendezvous (the candidate-narrowing
// lists the VM's scan loops use) and, for channels where exactly one
// sender process meets exactly one receiver process over plain Send/Recv
// sites, the statically-matched pair the direct-transfer instructions
// compile against. Channels that stay dynamic carry a reason string so
// `espc -dump-schedule` can explain the fallback.
package ir

import (
	"fmt"
	"sort"
	"strings"
)

// SchedPair is one statically-matched channel: every reachable send is
// in process Sender, every reachable receive in process Recv, and all
// sites are plain Send/Recv (no alt arms, no external binding).
type SchedPair struct {
	Chan    int
	Sender  int   // process index
	Recv    int   // process index
	SendPCs []int // reachable Send pcs in Sender, ascending
	RecvPCs []int // reachable Recv pcs in Recv, ascending
}

// Schedule is the whole-program static rendezvous schedule.
type Schedule struct {
	// Pairs lists the fused channels, ascending by channel id.
	Pairs []SchedPair
	// Writers[ch] / Readers[ch] are the sorted indices of processes with
	// a reachable send-side / receive-side site on channel ch (alt arms
	// included). The VM's rendezvous and poll scans iterate these instead
	// of every process; ascending order preserves the baseline's
	// first-match semantics.
	Writers [][]int
	Readers [][]int
	// Internal[ch] reports that ch has no external binding, so the
	// external-channel lookups on the rendezvous path can be skipped.
	Internal []bool
	// Reason[ch] explains why ch stays on dynamic rendezvous ("" = fused).
	Reason []string
}

// PairFor returns the fused pair for channel ch, or nil.
func (s *Schedule) PairFor(ch int) *SchedPair {
	for i := range s.Pairs {
		if s.Pairs[i].Chan == ch {
			return &s.Pairs[i]
		}
	}
	return nil
}

// FusionGroups returns the connected components of the fused-pair graph,
// each in static interleave order: senders before their receivers where
// the component is acyclic (Kahn's algorithm, ties broken by process
// index), process-index order otherwise (a ping-pong cycle has no
// sender-first order). Components are ordered by their smallest member.
func (s *Schedule) FusionGroups() [][]int {
	if len(s.Pairs) == 0 {
		return nil
	}
	// Union the pair endpoints into components.
	parent := map[int]int{}
	var find func(x int) int
	find = func(x int) int {
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, p := range s.Pairs {
		ra, rb := find(p.Sender), find(p.Recv)
		if ra != rb {
			parent[ra] = rb
		}
	}
	members := map[int][]int{}
	for x := range parent {
		r := find(x)
		members[r] = append(members[r], x)
	}
	var roots []int
	for r := range members {
		sort.Ints(members[r])
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return members[roots[i]][0] < members[roots[j]][0] })

	groups := make([][]int, 0, len(roots))
	for _, r := range roots {
		groups = append(groups, topoOrder(members[r], s.Pairs))
	}
	return groups
}

// topoOrder orders one component's members sender-first when possible.
func topoOrder(procs []int, pairs []SchedPair) []int {
	in := map[int]bool{}
	for _, p := range procs {
		in[p] = true
	}
	indeg := map[int]int{}
	succ := map[int][]int{}
	for _, pr := range pairs {
		if in[pr.Sender] && in[pr.Recv] {
			succ[pr.Sender] = append(succ[pr.Sender], pr.Recv)
			indeg[pr.Recv]++
		}
	}
	var order []int
	avail := []int{}
	for _, p := range procs {
		if indeg[p] == 0 {
			avail = append(avail, p)
		}
	}
	for len(avail) > 0 {
		sort.Ints(avail)
		p := avail[0]
		avail = avail[1:]
		order = append(order, p)
		for _, q := range succ[p] {
			indeg[q]--
			if indeg[q] == 0 {
				avail = append(avail, q)
			}
		}
	}
	if len(order) != len(procs) {
		return procs // cyclic (ping-pong): fall back to index order
	}
	return order
}

// FormatSchedule renders the schedule for espc -dump-schedule:
// deterministic (channels by id, groups by smallest member), one line per
// channel, with process names resolved against prog.
func FormatSchedule(prog *Program, s *Schedule) string {
	procName := func(i int) string {
		if i >= 0 && i < len(prog.Procs) {
			return prog.Procs[i].Name
		}
		return fmt.Sprintf("proc%d", i)
	}
	nameList := func(idx []int) string {
		if len(idx) == 0 {
			return "{}"
		}
		names := make([]string, len(idx))
		for i, p := range idx {
			names[i] = procName(p)
		}
		return "{" + strings.Join(names, " ") + "}"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "static rendezvous schedule for %s\n", prog.Name)

	b.WriteString("\nfused channels (direct transfer):\n")
	if len(s.Pairs) == 0 {
		b.WriteString("  (none)\n")
	}
	for _, p := range s.Pairs {
		fmt.Fprintf(&b, "  %-12s %s -> %s  sends@%v recvs@%v\n",
			prog.Channels[p.Chan].Name+":", procName(p.Sender), procName(p.Recv),
			p.SendPCs, p.RecvPCs)
	}

	b.WriteString("\ndynamic channels (runtime rendezvous):\n")
	any := false
	for ch := range prog.Channels {
		if ch < len(s.Reason) && s.Reason[ch] != "" {
			any = true
			fmt.Fprintf(&b, "  %-12s %-20s writers=%s readers=%s\n",
				prog.Channels[ch].Name+":", s.Reason[ch],
				nameList(s.Writers[ch]), nameList(s.Readers[ch]))
		}
	}
	if !any {
		b.WriteString("  (none)\n")
	}

	if groups := s.FusionGroups(); len(groups) > 0 {
		b.WriteString("\nfusion groups (static interleave order):\n")
		for i, g := range groups {
			names := make([]string, len(g))
			for j, p := range g {
				names[j] = procName(p)
			}
			fmt.Fprintf(&b, "  group %d: %s\n", i, strings.Join(names, " -> "))
		}
	}
	return b.String()
}
