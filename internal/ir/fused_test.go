package ir

import "testing"

// proc builds a minimal Proc around a code sequence for fusion tests.
func proc(code []Instr) *Proc {
	return &Proc{Name: "t", Code: code, NumLocals: 8, MaxStack: 8}
}

// fuse translates and sanity-checks the Map invariants every consumer
// relies on: Map[0] is an instruction, Map[len] == len(fused code), and
// every non-interior entry is within range.
func fuse(t *testing.T, p *Proc) *FusedProc {
	t.Helper()
	fp := FuseProc(p, nil)
	if len(fp.Map) != len(p.Code)+1 {
		t.Fatalf("Map length %d, want %d", len(fp.Map), len(p.Code)+1)
	}
	if fp.Map[0] != 0 {
		t.Fatalf("Map[0] = %d, want 0", fp.Map[0])
	}
	if got := fp.Map[len(p.Code)]; got != int32(len(fp.Code)) {
		t.Fatalf("Map[end] = %d, want %d", got, len(fp.Code))
	}
	for pc, idx := range fp.Map {
		if idx > int32(len(fp.Code)) {
			t.Fatalf("Map[%d] = %d out of range (%d fused instrs)", pc, idx, len(fp.Code))
		}
	}
	return fp
}

func TestFuseIncrLocal(t *testing.T) {
	// n = n + 5 on one slot collapses to a single FIncrLocal.
	fp := fuse(t, proc([]Instr{
		{Op: LoadLocal, A: 2},
		{Op: Const, Val: 5},
		{Op: Add},
		{Op: StoreLocal, A: 2},
		{Op: Halt},
	}))
	if len(fp.Code) != 2 || fp.Code[0].Op != FIncrLocal {
		t.Fatalf("want [FIncrLocal FHalt], got %v", fp.Code)
	}
	if fp.Code[0].A != 2 || fp.Code[0].Val != 5 || fp.Code[0].N != 4 {
		t.Errorf("FIncrLocal fields: %+v", fp.Code[0])
	}
}

func TestFuseIncrLocalSubNegates(t *testing.T) {
	// n = n - 5 becomes FIncrLocal with Val -5.
	fp := fuse(t, proc([]Instr{
		{Op: LoadLocal, A: 1},
		{Op: Const, Val: 5},
		{Op: Sub},
		{Op: StoreLocal, A: 1},
		{Op: Halt},
	}))
	if fp.Code[0].Op != FIncrLocal || fp.Code[0].Val != -5 {
		t.Fatalf("want FIncrLocal Val=-5, got %+v", fp.Code[0])
	}
}

func TestFuseIncrLocalDifferentSlots(t *testing.T) {
	// m = n + 5 is not an increment: it fuses to FLCBinSt instead.
	fp := fuse(t, proc([]Instr{
		{Op: LoadLocal, A: 1},
		{Op: Const, Val: 5},
		{Op: Add},
		{Op: StoreLocal, A: 3},
		{Op: Halt},
	}))
	if fp.Code[0].Op != FLCBinSt {
		t.Fatalf("want FLCBinSt, got %v", fp.Code[0].Op)
	}
	if fp.Code[0].A != 1 || fp.Code[0].Val != 5 || fp.Code[0].B != 3 || fp.Code[0].Sub != Add {
		t.Errorf("FLCBinSt fields: %+v", fp.Code[0])
	}
}

func TestFuseCompareBranchRetargets(t *testing.T) {
	// while (n < 10) { n = n + 1 } — the loop head fuses to FLCCmpBr and
	// its (remapped) branch target must land on a fused instruction.
	code := []Instr{
		{Op: LoadLocal, A: 0},   // 0: loop head
		{Op: Const, Val: 10},    // 1
		{Op: Lt},                // 2
		{Op: JumpIfFalse, A: 8}, // 3
		{Op: LoadLocal, A: 0},   // 4
		{Op: Const, Val: 1},     // 5
		{Op: Add},               // 6
		{Op: StoreLocal, A: 0},  // 7  (falls through to 8? no: loop back)
		{Op: Halt},              // 8
	}
	// Insert the back jump: body then jump to 0.
	code = append(code[:8], Instr{Op: Jump, A: 0}, Instr{Op: Halt})
	// Targets: JumpIfFalse now exits to 9.
	code[3].A = 9
	fp := fuse(t, proc(code))
	if fp.Code[0].Op != FLCCmpBr {
		t.Fatalf("loop head: want FLCCmpBr, got %v", fp.Code[0].Op)
	}
	if fp.Code[0].Sense { // JumpIfFalse: branch when the compare is false
		t.Errorf("FLCCmpBr Sense = true, want false")
	}
	if fp.Code[0].B != fp.Map[9] {
		t.Errorf("branch target %d, want Map[9]=%d", fp.Code[0].B, fp.Map[9])
	}
	// The body increment fuses, and the back jump is remapped to 0.
	var backJump *FInstr
	for i := range fp.Code {
		if fp.Code[i].Op == FJump {
			backJump = &fp.Code[i]
		}
	}
	if backJump == nil || backJump.A != fp.Map[0] {
		t.Errorf("back jump: %+v, want A=Map[0]=%d", backJump, fp.Map[0])
	}
}

func TestFuseJumpTargetSplitsGroup(t *testing.T) {
	// A jump into the middle of a would-be group forbids fusing across
	// that entry point.
	fp := fuse(t, proc([]Instr{
		{Op: Jump, A: 2},       // 0: jump between Load and Const
		{Op: LoadLocal, A: 0},  // 1
		{Op: Const, Val: 1},    // 2: entry point
		{Op: Add},              // 3
		{Op: StoreLocal, A: 0}, // 4
		{Op: Halt},             // 5
	}))
	if fp.Map[2] < 0 {
		t.Fatalf("pc 2 is a jump target but Map[2] = %d", fp.Map[2])
	}
	// pc 1 must not have fused a 4-wide group across the entry at 2.
	if idx := fp.Map[1]; idx < 0 || fp.Code[idx].N > 1 {
		t.Errorf("group at pc 1 spans the entry point at pc 2: %+v", fp.Code[fp.Map[1]])
	}
}

func TestFuseDivOnlyLastComponent(t *testing.T) {
	// Division can end a fused group (FLCBin) but never sit inside a
	// store-fused group, because it faults.
	fp := fuse(t, proc([]Instr{
		{Op: LoadLocal, A: 0},
		{Op: Const, Val: 2},
		{Op: Div},
		{Op: StoreLocal, A: 1},
		{Op: Halt},
	}))
	if fp.Code[0].Op != FLCBin || fp.Code[0].Sub != Div || fp.Code[0].N != 3 {
		t.Fatalf("want 3-wide FLCBin(Div), got %+v", fp.Code[0])
	}
	if fp.Code[1].Op != FStore {
		t.Fatalf("store must stay un-fused after a faulting op, got %v", fp.Code[1].Op)
	}
}

func TestFuseResumePCAlwaysMapped(t *testing.T) {
	// pc+1 after every Send/SendCommit/Recv is an entry point: blocked
	// processes resume there, so Map must hold a valid fused index even
	// when the next instruction would otherwise be a group interior.
	fp := fuse(t, proc([]Instr{
		{Op: Const, Val: 7},    // 0
		{Op: Send, A: 0},       // 1
		{Op: LoadLocal, A: 0},  // 2: resume point
		{Op: Const, Val: 1},    // 3
		{Op: Add},              // 4
		{Op: StoreLocal, A: 0}, // 5
		{Op: Recv, A: 0},       // 6
		{Op: Halt},             // 7: resume point
	}))
	for _, pc := range []int{2, 7} {
		if fp.Map[pc] < 0 {
			t.Errorf("resume pc %d unmapped (Map=%d)", pc, fp.Map[pc])
		}
	}
}

func TestFuseProgramCoversAllProcs(t *testing.T) {
	prog := &Program{Procs: []*Proc{
		proc([]Instr{{Op: Halt}}),
		proc([]Instr{{Op: Const, Val: 1}, {Op: StoreLocal, A: 0}, {Op: Halt}}),
	}}
	fused := FuseProgram(prog)
	if len(fused) != 2 {
		t.Fatalf("FuseProgram returned %d procs, want 2", len(fused))
	}
	if fused[1].Code[0].Op != FConstSt {
		t.Errorf("proc 1: want FConstSt, got %v", fused[1].Code[0].Op)
	}
}
