// Fused execution form: the load-time translation the VM's fused engine
// runs. Translation collapses common stack sequences into
// superinstructions (local increments, compare-and-branch, load-op-store,
// load-and-send), resolves every jump target to a fused-code index, and
// pre-resolves the type of every allocation site, so the interpreter loop
// dispatches once where the baseline dispatched three or four times.
//
// The translation is purely structural — it never changes what the
// program does or what it is charged. Every FInstr records how many base
// instructions it covers (N) and the pc of its first base instruction
// (Base), which is exactly what the fused engine needs to charge the
// identical PerInstr cost, report the identical fault pc, and honor the
// step budget at the identical instruction boundary as the baseline
// interpreter.
//
// Fusion rules that keep the two engines bit-identical:
//
//   - a group never spans a control-flow entry point (jump target, resume
//     point after Send/SendCommit/Recv, alt arm eval/body start): control
//     can only ever land on a group head, so the base-pc -> fused-index
//     map is total over reachable resume points;
//   - an instruction that can fault or emit a trace event (Div/Mod,
//     GetField, Send) may only be the LAST component of a group: all
//     preceding components are pure, so when the event fires the cycle
//     meter — bulk-charged at group entry — reads exactly what the
//     baseline's per-instruction charging would read.
package ir

import "esplang/internal/types"

// FOp is a fused-engine opcode.
type FOp uint8

// Fused opcodes. The first block mirrors the base ISA one for one; the
// second block is the superinstructions.
const (
	FNop FOp = iota
	FConst
	FSelfID
	FLoad
	FStore
	FDup
	FPop
	FNeg
	FNot
	FAdd
	FSub
	FMul
	FDiv
	FMod
	FEq
	FNe
	FLt
	FLe
	FGt
	FGe
	FJump      // A = fused target index
	FJumpFalse // A = fused target index
	FJumpTrue  // A = fused target index
	FNewRecord // Type = record type; B = nfields; Val = absorb mask
	FNewUnion  // Type = union type; B = tag; Val = absorb mask (bit 0)
	FNewArray  // Type = array type
	FGetField  // A = field index
	FSetField  // A = field index
	FGetIndex
	FSetIndex
	FUnionGet // A = expected tag
	FLink
	FUnlink
	FCastCopy  // Type = result type
	FCastReuse // Type = result type
	FAssert    // A = assert id
	FHalt
	FSend       // A = channel id; B = flags
	FSendCommit // A = channel id; B = flags
	FRecv       // A = channel id; B = port index
	FAlt        // A = alt table index

	// Superinstructions. Sub selects the arithmetic/comparison operator,
	// Sense the branch polarity (true = jump when the condition holds).
	FIncrLocal // LoadLocal A; Const; Add/Sub; StoreLocal A   => locals[A] += Val
	FLCCmpBr   // LoadLocal A; Const Val; <cmp>; branch to B
	FLLCmpBr   // LoadLocal A; LoadLocal C; <cmp>; branch to B
	FCmpBr     // <cmp>; branch to B (operands on the stack)
	FLCBin     // LoadLocal A; Const Val; <bin>                (Div/Mod allowed: last component)
	FLLBin     // LoadLocal A; LoadLocal C; <bin>
	FLCBinSt   // LoadLocal A; Const Val; <bin>; StoreLocal B  (no Div/Mod: interior faults forbidden)
	FLLBinSt   // LoadLocal A; LoadLocal C; <bin>; StoreLocal B
	FConstSt   // Const Val; StoreLocal B
	FMove      // LoadLocal A; StoreLocal B
	FLoadField // LoadLocal A; GetField B
	FLoadSend  // LoadLocal A; Send on B with flags C
	FConstSend // Const Val; Send on B with flags C

	// Direct-transfer instructions, emitted only by the schedule-aware
	// translation (FuseProgramSched). Each replaces a communication site
	// on a statically-matched channel: the schedule proves exactly one
	// process can ever stand on the other side, so the engine checks that
	// one partner's status instead of scanning every process. C names the
	// partner's process index; the dynamic fallback (Manual mode, queue
	// mode, no schedule) treats them exactly like FSend/FRecv.
	FSendDir // Send on A with flags B; partner C
	FRecvDir // Recv on A into port B; partner C
	FXferRec // NewRecord (Type, B fields, absorb Val); Send on A, FreeAfter=Sense; partner C
)

var fopNames = [...]string{
	FNop: "fnop", FConst: "fconst", FSelfID: "fselfid",
	FLoad: "fload", FStore: "fstore", FDup: "fdup", FPop: "fpop",
	FNeg: "fneg", FNot: "fnot",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv", FMod: "fmod",
	FEq: "feq", FNe: "fne", FLt: "flt", FLe: "fle", FGt: "fgt", FGe: "fge",
	FJump: "fjump", FJumpFalse: "fjumpfalse", FJumpTrue: "fjumptrue",
	FNewRecord: "fnewrecord", FNewUnion: "fnewunion", FNewArray: "fnewarray",
	FGetField: "fgetfield", FSetField: "fsetfield",
	FGetIndex: "fgetindex", FSetIndex: "fsetindex", FUnionGet: "funionget",
	FLink: "flink", FUnlink: "funlink", FCastCopy: "fcastcopy", FCastReuse: "fcastreuse",
	FAssert: "fassert", FHalt: "fhalt",
	FSend: "fsend", FSendCommit: "fsendcommit", FRecv: "frecv", FAlt: "falt",
	FIncrLocal: "fincrlocal", FLCCmpBr: "flccmpbr", FLLCmpBr: "fllcmpbr", FCmpBr: "fcmpbr",
	FLCBin: "flcbin", FLLBin: "fllbin", FLCBinSt: "flcbinst", FLLBinSt: "fllbinst",
	FConstSt: "fconstst", FMove: "fmove", FLoadField: "floadfield",
	FLoadSend: "floadsend", FConstSend: "fconstsend",
	FSendDir: "fsenddir", FRecvDir: "frecvdir", FXferRec: "fxferrec",
}

func (o FOp) String() string {
	if int(o) < len(fopNames) && fopNames[o] != "" {
		return fopNames[o]
	}
	return "fop?"
}

// FInstr is one fused instruction.
type FInstr struct {
	Op    FOp
	Sub   Op     // operator selector of arithmetic/compare superinstructions
	Sense bool   // branch superinstructions: jump when the condition is true
	N     uint16 // base instructions this FInstr covers (cost accounting)
	A     int32
	B     int32
	C     int32
	Base  int32 // pc of the first covered base instruction
	Val   int64
	Type  *types.Type // pre-resolved allocation/cast type
}

// FusedProc is the fused translation of one process.
type FusedProc struct {
	Code []FInstr
	// Map translates a base pc to its fused-code index: -1 for pcs
	// interior to a fused group (control never lands there), and
	// Map[len(base code)] = len(Code) so one-past-the-end resume points
	// translate consistently.
	Map []int32
}

// fuseEntryPoints marks every base pc control can enter other than by
// falling through inside straight-line code: process start, jump targets,
// the resume points after every communication instruction, and alt arm
// eval/body starts. Fused groups must not contain any of these as an
// interior component.
func fuseEntryPoints(p *Proc) []bool {
	entry := make([]bool, len(p.Code)+1)
	mark := func(pc int) {
		if pc >= 0 && pc < len(entry) {
			entry[pc] = true
		}
	}
	mark(0)
	for pc, in := range p.Code {
		switch in.Op {
		case Jump, JumpIfFalse, JumpIfTrue:
			mark(in.A)
		case Send, SendCommit, Recv:
			mark(pc + 1)
		}
	}
	for _, alt := range p.Alts {
		for _, arm := range alt.Arms {
			if arm.IsSend {
				mark(arm.EvalPC)
			}
			mark(arm.BodyPC)
		}
	}
	return entry
}

func isCmp(op Op) bool  { return op >= Eq && op <= Ge }
func isBin(op Op) bool  { return op >= Add && op <= Ge }
func isPure(op Op) bool { return isBin(op) && op != Div && op != Mod }

// mirror maps each base opcode to its 1:1 fused counterpart.
var mirror = [...]FOp{
	Nop: FNop, Const: FConst, SelfID: FSelfID,
	LoadLocal: FLoad, StoreLocal: FStore, Dup: FDup, Pop: FPop,
	Neg: FNeg, Not: FNot,
	Add: FAdd, Sub: FSub, Mul: FMul, Div: FDiv, Mod: FMod,
	Eq: FEq, Ne: FNe, Lt: FLt, Le: FLe, Gt: FGt, Ge: FGe,
	Jump: FJump, JumpIfFalse: FJumpFalse, JumpIfTrue: FJumpTrue,
	NewRecord: FNewRecord, NewUnion: FNewUnion, NewArray: FNewArray,
	GetField: FGetField, SetField: FSetField,
	GetIndex: FGetIndex, SetIndex: FSetIndex, UnionGet: FUnionGet,
	Link: FLink, Unlink: FUnlink, CastCopy: FCastCopy, CastReuse: FCastReuse,
	Assert: FAssert, Halt: FHalt,
	Send: FSend, SendCommit: FSendCommit, Recv: FRecv, Alt: FAlt,
}

// FuseProc translates one process. u resolves allocation-site types; it
// may be nil for hand-built test programs that allocate nothing.
func FuseProc(p *Proc, u *types.Universe) *FusedProc {
	return fuseProcWith(p, u, nil, nil)
}

// fuseProcWith is FuseProc plus the schedule-aware rewrite: dirSend maps
// the pc of a Send on a statically-matched channel to the partner's
// process index, dirRecv the same for Recv sites. Nil maps yield the
// plain translation.
func fuseProcWith(p *Proc, u *types.Universe, dirSend, dirRecv map[int]int32) *FusedProc {
	entry := fuseEntryPoints(p)
	fp := &FusedProc{Map: make([]int32, len(p.Code)+1)}
	for i := range fp.Map {
		fp.Map[i] = -1
	}

	// interiorFree reports that none of pc+1 .. pc+n-1 is an entry point,
	// so a group of n instructions starting at pc is legal.
	interiorFree := func(pc, n int) bool {
		if pc+n > len(p.Code) {
			return false
		}
		for i := pc + 1; i < pc+n; i++ {
			if entry[i] {
				return false
			}
		}
		return true
	}

	pc := 0
	for pc < len(p.Code) {
		fp.Map[pc] = int32(len(fp.Code))
		fi, n := fuseAtSched(p.Code, pc, interiorFree, dirSend, dirRecv, u)
		if fi.Op == FNewRecord || fi.Op == FNewUnion || fi.Op == FNewArray ||
			fi.Op == FCastCopy || fi.Op == FCastReuse {
			if u != nil {
				fi.Type = u.ByID(p.Code[pc].A)
			}
		}
		fi.Base = int32(pc)
		fi.N = uint16(n)
		fp.Code = append(fp.Code, fi)
		pc += n
	}
	fp.Map[len(p.Code)] = int32(len(fp.Code))

	// Second pass: retarget branches from base pcs to fused indices. Every
	// branch target is an entry point, so its Map slot is never -1.
	for i := range fp.Code {
		fi := &fp.Code[i]
		switch fi.Op {
		case FJump, FJumpFalse, FJumpTrue:
			fi.A = fp.Map[fi.A]
		case FCmpBr, FLCCmpBr, FLLCmpBr:
			fi.B = fp.Map[fi.B]
		}
	}
	return fp
}

// fuseAtSched wraps fuseAt with the direct-transfer rewrites. Scheduled
// Send/Recv sites become FSendDir/FRecvDir; a NewRecord feeding a
// scheduled Send becomes the two-wide FXferRec; and the generic
// FLoadSend/FConstSend fusions are suppressed when they would swallow a
// scheduled Send, so the site keeps its static partner.
func fuseAtSched(code []Instr, pc int, interiorFree func(pc, n int) bool,
	dirSend, dirRecv map[int]int32, u *types.Universe) (FInstr, int) {
	in := code[pc]
	if partner, ok := dirSend[pc]; ok && in.Op == Send {
		return FInstr{Op: FSendDir, A: int32(in.A), B: int32(in.B), C: partner}, 1
	}
	if partner, ok := dirRecv[pc]; ok && in.Op == Recv {
		return FInstr{Op: FRecvDir, A: int32(in.A), B: int32(in.B), C: partner}, 1
	}
	if in.Op == NewRecord && pc+1 < len(code) && code[pc+1].Op == Send && interiorFree(pc, 2) {
		if partner, ok := dirSend[pc+1]; ok {
			snd := code[pc+1]
			var t *types.Type
			if u != nil {
				t = u.ByID(in.A)
			}
			return FInstr{Op: FXferRec, Type: t, B: int32(in.B), Val: in.Val,
				A: int32(snd.A), Sense: snd.B&FlagFreeAfter != 0, C: partner}, 2
		}
	}
	fi, n := fuseAt(code, pc, interiorFree)
	if fi.Op == FLoadSend || fi.Op == FConstSend {
		if _, ok := dirSend[pc+1]; ok {
			return FInstr{Op: mirror[in.Op], A: int32(in.A), B: int32(in.B), Val: in.Val}, 1
		}
	}
	return fi, n
}

// fuseAt matches the longest superinstruction pattern starting at pc, or
// falls back to the 1:1 mirror of the single instruction. It returns the
// fused instruction (Base/N unset) and the number of base instructions
// consumed.
func fuseAt(code []Instr, pc int, interiorFree func(pc, n int) bool) (FInstr, int) {
	in := code[pc]

	// 4-wide patterns headed by LoadLocal.
	if in.Op == LoadLocal && interiorFree(pc, 4) {
		b, c, d := code[pc+1], code[pc+2], code[pc+3]
		switch {
		case b.Op == Const && (c.Op == Add || c.Op == Sub) &&
			d.Op == StoreLocal && d.A == in.A:
			v := b.Val
			if c.Op == Sub {
				v = -v
			}
			return FInstr{Op: FIncrLocal, A: int32(in.A), Val: v}, 4
		case b.Op == Const && isCmp(c.Op) && (d.Op == JumpIfFalse || d.Op == JumpIfTrue):
			return FInstr{Op: FLCCmpBr, Sub: c.Op, Sense: d.Op == JumpIfTrue,
				A: int32(in.A), Val: b.Val, B: int32(d.A)}, 4
		case b.Op == LoadLocal && isCmp(c.Op) && (d.Op == JumpIfFalse || d.Op == JumpIfTrue):
			return FInstr{Op: FLLCmpBr, Sub: c.Op, Sense: d.Op == JumpIfTrue,
				A: int32(in.A), C: int32(b.A), B: int32(d.A)}, 4
		case b.Op == Const && isPure(c.Op) && d.Op == StoreLocal:
			return FInstr{Op: FLCBinSt, Sub: c.Op, A: int32(in.A), Val: b.Val, B: int32(d.A)}, 4
		case b.Op == LoadLocal && isPure(c.Op) && d.Op == StoreLocal:
			return FInstr{Op: FLLBinSt, Sub: c.Op, A: int32(in.A), C: int32(b.A), B: int32(d.A)}, 4
		}
	}

	// 3-wide: LoadLocal; Const/LoadLocal; <bin>. Div/Mod are allowed — the
	// possibly-faulting operator is the last component.
	if in.Op == LoadLocal && interiorFree(pc, 3) {
		b, c := code[pc+1], code[pc+2]
		switch {
		case b.Op == Const && isBin(c.Op):
			return FInstr{Op: FLCBin, Sub: c.Op, A: int32(in.A), Val: b.Val}, 3
		case b.Op == LoadLocal && isBin(c.Op):
			return FInstr{Op: FLLBin, Sub: c.Op, A: int32(in.A), C: int32(b.A)}, 3
		}
	}

	// 2-wide patterns.
	if interiorFree(pc, 2) {
		b := code[pc+1]
		switch {
		case isCmp(in.Op) && (b.Op == JumpIfFalse || b.Op == JumpIfTrue):
			return FInstr{Op: FCmpBr, Sub: in.Op, Sense: b.Op == JumpIfTrue, B: int32(b.A)}, 2
		case in.Op == Const && b.Op == StoreLocal:
			return FInstr{Op: FConstSt, Val: in.Val, B: int32(b.A)}, 2
		case in.Op == LoadLocal && b.Op == StoreLocal:
			return FInstr{Op: FMove, A: int32(in.A), B: int32(b.A)}, 2
		case in.Op == LoadLocal && b.Op == GetField:
			return FInstr{Op: FLoadField, A: int32(in.A), B: int32(b.A)}, 2
		case in.Op == LoadLocal && b.Op == Send:
			return FInstr{Op: FLoadSend, A: int32(in.A), B: int32(b.A), C: int32(b.B)}, 2
		case in.Op == Const && b.Op == Send:
			return FInstr{Op: FConstSend, Val: in.Val, B: int32(b.A), C: int32(b.B)}, 2
		}
	}

	// 1:1 mirror.
	op := FNop
	if int(in.Op) < len(mirror) {
		op = mirror[in.Op]
	}
	return FInstr{Op: op, A: int32(in.A), B: int32(in.B), Val: in.Val}, 1
}

// FuseProgram translates every process. The result is independent of the
// program's Fused field; callers that cache it there must do so before
// sharing the program across machines.
func FuseProgram(prog *Program) []*FusedProc {
	out := make([]*FusedProc, len(prog.Procs))
	for i, p := range prog.Procs {
		out[i] = FuseProc(p, prog.Universe)
	}
	return out
}

// FuseProgramSched translates every process with the direct-transfer
// rewrite applied at the schedule's statically-matched communication
// sites. The result is what EngineProcFused executes; like FuseProgram,
// it is independent of the program's cached fields.
func FuseProgramSched(prog *Program, sched *Schedule) []*FusedProc {
	dirSend := make([]map[int]int32, len(prog.Procs))
	dirRecv := make([]map[int]int32, len(prog.Procs))
	if sched != nil {
		for _, pr := range sched.Pairs {
			if dirSend[pr.Sender] == nil {
				dirSend[pr.Sender] = make(map[int]int32)
			}
			for _, pc := range pr.SendPCs {
				dirSend[pr.Sender][pc] = int32(pr.Recv)
			}
			if dirRecv[pr.Recv] == nil {
				dirRecv[pr.Recv] = make(map[int]int32)
			}
			for _, pc := range pr.RecvPCs {
				dirRecv[pr.Recv][pc] = int32(pr.Sender)
			}
		}
	}
	out := make([]*FusedProc, len(prog.Procs))
	for i, p := range prog.Procs {
		out[i] = fuseProcWith(p, prog.Universe, dirSend[i], dirRecv[i])
	}
	return out
}
